// Quickstart runs the complete Figure-1 framework on a small synthetic
// world and prints what each phase produced: the seed attribute sets from
// existing KBs and the query stream, the open-Web extractions from DOM
// trees and text, and the fused, augmented knowledge base.
package main

import (
	"context"
	"fmt"
	"log"

	"akb/internal/core"
	"akb/internal/extract"
	"akb/internal/fusion"
	"akb/internal/kb"
	"akb/internal/querystream"
	"akb/internal/rdf"
	"akb/internal/webgen"
)

func main() {
	cfg := core.Config{
		Seed:     7,
		World:    kb.WorldConfig{Seed: 7, EntitiesPerClass: 20, AttrsPerEntity: 14},
		DBpedia:  kb.KBGenConfig{Seed: 8, Coverage: 0.6, ErrorRate: 0.02},
		Freebase: kb.KBGenConfig{Seed: 9, Coverage: 0.8, ErrorRate: 0.02},
		Stream: querystream.GenConfig{
			Seed: 10, TotalRecords: 8000, Threshold: 5,
			Plans: []querystream.ClassPlan{
				{Class: "Book", Relevant: 400, Credible: 12, NoncrediblePool: 10},
				{Class: "Film", Relevant: 600, Credible: 8, NoncrediblePool: 12},
				{Class: "Country", Relevant: 500, Credible: 15, NoncrediblePool: 12},
				{Class: "University", Relevant: 80, Credible: 4, NoncrediblePool: 8},
				{Class: "Hotel", Relevant: 40, Credible: 0, NoncrediblePool: 12},
			},
		},
		Sites: webgen.SiteConfig{
			Seed: 11, SitesPerClass: 3, PagesPerSite: 10, AttrsPerPage: 8,
			ValueErrorRate: 0.1, NoiseNodes: 4, JitterProb: 0.25, GeneralizeProb: 0.2,
		},
		Corpus: webgen.TextConfig{
			Seed: 12, DocsPerClass: 8, FactsPerDoc: 10,
			ValueErrorRate: 0.12, DistractorShare: 0.6, GeneralizeProb: 0.2,
		},
		Granularity: fusion.BySourceExtractor,
	}

	res, err := core.New(core.WithConfig(cfg)).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Knowledge extraction ==")
	for _, st := range res.Stats() {
		if st.Precision >= 0 {
			fmt.Printf("  %-14s %-38s %5d statements  precision %.3f\n",
				st.Stage, st.Detail, st.Statements, st.Precision)
		} else {
			fmt.Printf("  %-14s %-38s %5d statements\n", st.Stage, st.Detail, st.Statements)
		}
	}

	fmt.Println("\n== Seed sets (existing KBs + query stream) ==")
	for _, class := range res.World.Ontology.ClassNames() {
		fmt.Printf("  %-12s %3d seed attributes\n", class, res.SeedSets[class].Len())
	}

	fmt.Println("\n== Open-Web discoveries ==")
	for _, class := range res.World.Ontology.ClassNames() {
		dom := res.DOMX.PerClass[class]
		txt := res.TextX.PerClass[class]
		fmt.Printf("  %-12s DOM: %2d new attrs   text: %2d new attrs\n",
			class, dom.Discovered.Len(), txt.Discovered.Len())
	}

	fmt.Println("\n== Knowledge fusion ==")
	fmt.Printf("  method: %s\n", res.Fused().Method)
	fmt.Printf("  %s\n", res.FusionMetrics)
	fmt.Printf("  augmented KB: %d triples\n", res.Augmented.Len())

	// Show a handful of fused facts about one entity.
	entity := res.World.EntityNames("Film")[0]
	fmt.Printf("\n== Sample: fused knowledge about %q ==\n", entity)
	triples := res.Augmented.Match(extract.EntityIRI(entity), rdf.Term{}, rdf.Term{})
	for i, t := range triples {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(triples)-8)
			break
		}
		fmt.Printf("  %-28s = %s\n", extract.AttrFromIRI(t.Predicate), t.Object.Value)
	}
}
