// Domextract walks through Algorithm 1 (DOM-tree attribute extraction) on a
// generated film website: it shows the page DOM, the tag paths between the
// entity node and seed attribute labels, the induced patterns, and the new
// attributes and triples the algorithm recognises.
package main

import (
	"context"
	"fmt"
	"strings"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/extract/domx"
	"akb/internal/htmldom"
	"akb/internal/kb"
	"akb/internal/webgen"
)

func main() {
	w := kb.NewWorld(kb.WorldConfig{Seed: 21, EntitiesPerClass: 12, AttrsPerEntity: 12})
	sites := webgen.GenerateSites(w, webgen.SiteConfig{
		Seed: 22, SitesPerClass: 2, PagesPerSite: 8, AttrsPerPage: 7,
		ValueErrorRate: 0.05, NoiseNodes: 4, JitterProb: 0.3,
	})

	// Pick the first Film site and show its first page.
	var filmSite *webgen.Site
	for _, s := range sites {
		if s.Class == "Film" {
			filmSite = s
			break
		}
	}
	page := filmSite.Pages[0]
	fmt.Printf("Site %s (style %q), page %s about %q\n\n",
		filmSite.Host, filmSite.Style, page.URL, page.Entity)

	doc := htmldom.Parse(page.HTML)
	idx := extract.NewEntityIndexFromWorld(w)

	// Show the tag path from the entity node to each label node.
	fmt.Println("Tag paths from the entity node to attribute labels:")
	var entityNode *htmldom.Node
	for _, tn := range doc.TextNodes() {
		if htmldom.NormalizeSpace(tn.Text) == page.Entity {
			entityNode = tn
			break
		}
	}
	for _, tn := range doc.TextNodes() {
		text := htmldom.NormalizeSpace(tn.Text)
		if !strings.HasSuffix(text, ":") {
			continue
		}
		if p, ok := htmldom.PathBetweenFunc(entityNode, tn, htmldom.QualifiedStep); ok {
			fmt.Printf("  %-28s %s\n", text, p.Normalize())
		}
	}

	// Seed with six curated attributes per class, then run Algorithm 1.
	seeds := make(map[string]extract.AttrSet)
	for _, cls := range w.Ontology.ClassNames() {
		s := extract.NewAttrSet()
		for i, a := range w.Ontology.Class(cls).AttributeNames() {
			if i == 6 {
				break
			}
			s.Add(a, "seed")
		}
		seeds[cls] = s
	}
	res := domx.Extract(context.Background(), domx.FromWebgen(sites), idx, seeds, domx.DefaultConfig(), confidence.Default())

	fmt.Println("\nPer-class extraction outcome:")
	for _, cls := range res.Classes() {
		cr := res.PerClass[cls]
		fmt.Printf("  %-12s pages used %2d, induced patterns %2d, discovered %2d new attrs\n",
			cls, cr.PagesUsed, cr.InducedPatterns, cr.Discovered.Len())
		for _, name := range cr.Discovered.Names() {
			ev := cr.Discovered[name]
			fmt.Printf("      + %-28s support=%d sites=%d conf=%.2f\n",
				name, ev.Support, len(ev.Sources), ev.Confidence)
		}
	}

	fmt.Printf("\nExtracted statements: %d; first five:\n", len(res.Statements))
	for i, s := range res.Statements {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", s)
	}
}
