// Streammine mines attributes from a synthetic Google+AOL query stream at
// Table-3 scale: it generates the combined log, runs the pattern-based
// extractor with filtering rules and a credibility threshold, and prints
// the per-class results plus the best-supported attributes.
package main

import (
	"context"
	"fmt"
	"sort"

	"akb/internal/confidence"
	"akb/internal/eval"
	"akb/internal/extract"
	"akb/internal/extract/qsx"
	"akb/internal/kb"
	"akb/internal/querystream"
)

func main() {
	w := kb.NewWorld(kb.WorldConfig{Seed: 31, EntitiesPerClass: 60, AttrsPerEntity: 20})

	// The paper combines a Google log and an AOL log; generate two streams
	// and combine them the same way.
	cfg := querystream.DefaultGenConfig()
	cfg.Seed = 31
	cfg.TotalRecords = 60000 // 1/488 of the paper's stream, fast to mine
	for i := range cfg.Plans {
		cfg.Plans[i].Relevant /= 5
		cfg.Plans[i].Credible /= 5
	}
	full := querystream.Generate(w, cfg)
	half := full.Len() / 2
	google := &querystream.Stream{Records: full.Records[:half]}
	aol := &querystream.Stream{Records: full.Records[half:]}
	stream := querystream.Combine(google, aol)
	fmt.Printf("combined stream: %d records (%d google-half + %d aol-half)\n\n",
		stream.Len(), google.Len(), aol.Len())

	idx := extract.NewEntityIndexFromWorld(w)
	res := qsx.Extract(context.Background(), stream, idx, qsx.DefaultConfig(), confidence.Default())

	rows := make([][]string, 0, 5)
	for _, r := range res.Table3() {
		rows = append(rows, []string{r.Class, fmt.Sprintf("%d", r.RelevantRecords), eval.NA(r.CredibleAttrs)})
	}
	fmt.Println("Query stream extraction results (Table-3 shape):")
	fmt.Print(eval.FormatTable([]string{"Class", "Relevant Query Records", "Credible Attributes"}, rows))

	fmt.Println("\nBest-supported credible attributes per class:")
	for _, class := range res.Classes() {
		cr := res.PerClass[class]
		type attrSupport struct {
			name    string
			support int
		}
		var top []attrSupport
		for attr := range cr.Credible {
			top = append(top, attrSupport{attr, cr.Support[attr]})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].support != top[j].support {
				return top[i].support > top[j].support
			}
			return top[i].name < top[j].name
		})
		fmt.Printf("  %-12s", class)
		if len(top) == 0 {
			fmt.Println("(none pass the credibility threshold)")
			continue
		}
		for i, a := range top {
			if i == 3 {
				break
			}
			fmt.Printf(" %s(x%d)", a.name, a.support)
		}
		fmt.Printf("   [filtered %d meaningless mentions]\n", cr.Filtered)
	}
}
