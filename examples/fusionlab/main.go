// Fusionlab demonstrates the knowledge-fusion methods on hand-built
// conflicting claims, including the paper's own example: (Susie Fang,
// birth place, Wuhan) and (Susie Fang, birth place, China) are both true
// because values form a hierarchy. It compares VOTE, ACCU, POPACCU,
// multi-truth and the hierarchy-aware composition on the same claims.
package main

import (
	"fmt"

	"akb/internal/fusion"
	"akb/internal/hierarchy"
	"akb/internal/rdf"
)

func claim(entity, attr, value, source string, conf float64) rdf.Statement {
	return rdf.S(
		rdf.T(rdf.AKB.IRI(entity), rdf.AKB.IRI("attr/"+attr), rdf.Literal(value)),
		rdf.Provenance{Source: source, Extractor: "demo"},
		conf,
	)
}

func main() {
	forest := hierarchy.NewForest()
	forest.MustAddChain("Wuhan", "Hubei", "China")
	forest.MustAddChain("Shanghai", "China")
	forest.MustAddChain("Adelaide", "South Australia", "Australia")

	stmts := []rdf.Statement{
		// The paper's example: Susie Fang's birth place claimed at two
		// abstraction levels plus a wrong value with plurality support.
		claim("Susie_Fang", "birth place", "Wuhan", "uni-site.example", 0.9),
		claim("Susie_Fang", "birth place", "Wuhan", "cv-site.example", 0.8),
		claim("Susie_Fang", "birth place", "China", "news-a.example", 0.7),
		claim("Susie_Fang", "birth place", "China", "news-b.example", 0.7),
		claim("Susie_Fang", "birth place", "Shanghai", "scraper-1.example", 0.4),
		claim("Susie_Fang", "birth place", "Shanghai", "scraper-2.example", 0.4),
		claim("Susie_Fang", "birth place", "Shanghai", "scraper-3.example", 0.4),

		// A non-functional attribute with two true values.
		claim("Casablanca", "producer", "Hal Wallis", "films-a.example", 0.9),
		claim("Casablanca", "producer", "Hal Wallis", "films-b.example", 0.9),
		claim("Casablanca", "producer", "Jack Warner", "films-a.example", 0.8),
		claim("Casablanca", "producer", "Jack Warner", "films-c.example", 0.8),
		claim("Casablanca", "producer", "Nobody Real", "scraper-1.example", 0.3),

		// A plain functional attribute with a clear majority.
		claim("Casablanca", "director", "Michael Curtiz", "films-a.example", 0.9),
		claim("Casablanca", "director", "Michael Curtiz", "films-b.example", 0.9),
		claim("Casablanca", "director", "Woody Allen", "scraper-1.example", 0.3),
	}
	// Background items that expose the scrapers' unreliability to the
	// quality-estimating methods.
	for i := 0; i < 12; i++ {
		good := fmt.Sprintf("fact %d", i)
		bad := fmt.Sprintf("junk %d", i)
		e := fmt.Sprintf("Entity_%d", i)
		stmts = append(stmts,
			claim(e, "note", good, "films-a.example", 0.9),
			claim(e, "note", good, "films-b.example", 0.9),
			claim(e, "note", good, "news-a.example", 0.8),
			claim(e, "note", bad, "scraper-1.example", 0.4),
			claim(e, "note", bad, "scraper-2.example", 0.4),
			claim(e, "note", bad, "scraper-3.example", 0.4),
		)
	}

	claims := fusion.BuildClaims(stmts, fusion.BySource)
	fmt.Printf("%d items, %d values, %d sources\n\n",
		len(claims.Items), countValues(claims), len(claims.SourceNames))

	methods := []fusion.Method{
		&fusion.Vote{},
		&fusion.Vote{Weighted: true},
		&fusion.Accu{},
		&fusion.Accu{Popularity: true},
		&fusion.MultiTruth{},
		&fusion.Hierarchical{Base: &fusion.MultiTruth{Weighted: true}, Forest: forest},
		&fusion.Full{Forest: forest},
	}
	show := []struct{ entity, attr string }{
		{"Susie_Fang", "birth place"},
		{"Casablanca", "producer"},
		{"Casablanca", "director"},
	}
	for _, m := range methods {
		res := m.Fuse(claims)
		fmt.Printf("== %s ==\n", res.Method)
		for _, q := range show {
			key := rdf.T(rdf.AKB.IRI(q.entity), rdf.AKB.IRI("attr/"+q.attr), rdf.Term{}).ItemKey()
			d := res.Decisions[key]
			var vals []string
			for _, t := range d.Truths {
				vals = append(vals, t.Value)
			}
			fmt.Printf("  %-12s %-12s -> %v\n", q.entity, q.attr, vals)
		}
		fmt.Println()
	}
	fmt.Println("Note how the flat single-truth methods pick Shanghai (3 scraper votes),")
	fmt.Println("and how ACCU/POPACCU fall into the scrapers' echo chamber — their")
	fmt.Println("perfect mutual agreement inflates their learned accuracy. The")
	fmt.Println("hierarchy-aware methods accept both Wuhan and China, the multi-truth")
	fmt.Println("methods keep both producers, and FULL's copy detection defuses the")
	fmt.Println("scraper cluster.")
}

func countValues(c *fusion.Claims) int {
	n := 0
	for _, it := range c.Items {
		n += len(it.Values)
	}
	return n
}
