// Timeline demonstrates temporal knowledge extraction and fusion: the
// corpus states time-scoped facts ("X was the head of state of Y from 1996
// to 2003"), the extractor parses them with entity linking, and timeline
// fusion resolves conflicting spans by year-level voting.
package main

import (
	"fmt"

	"akb/internal/extract"
	"akb/internal/kb"
	"akb/internal/temporalx"
	"akb/internal/webgen"
)

func main() {
	w := kb.NewWorld(kb.WorldConfig{Seed: 41, EntitiesPerClass: 15, AttrsPerEntity: 12})
	docs := webgen.GenerateCorpus(w, webgen.TextConfig{
		Seed: 42, DocsPerClass: 15, FactsPerDoc: 2,
		ValueErrorRate: 0.15, DistractorShare: 0.4, TemporalFacts: 8,
	})
	idx := extract.NewEntityIndexFromWorld(w)

	stmts := temporalx.ExtractText(docs, idx)
	fmt.Printf("extracted %d time-scoped statements from %d documents\n", len(stmts), len(docs))
	for i, s := range stmts {
		if i == 4 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", s)
	}

	timelines := temporalx.FuseTimelines(stmts)
	correct, total := temporalx.Accuracy(w, timelines)
	fmt.Printf("\nfused %d timelines; year-level accuracy %.3f (%d/%d years)\n",
		len(timelines), float64(correct)/float64(total), correct, total)

	// Show one fused timeline next to the ground truth.
	for _, tl := range timelines {
		e, _ := w.Entity(tl.Entity)
		truth := e.Timelines[tl.Attr]
		if len(tl.Spans) < 2 || len(truth) < 2 {
			continue
		}
		fmt.Printf("\n%s / %s\n", tl.Entity, tl.Attr)
		fmt.Println("  fused:")
		for _, sp := range tl.Spans {
			fmt.Printf("    %d-%d  %s\n", sp.From, sp.To, sp.Value)
		}
		fmt.Println("  truth:")
		for _, sp := range truth {
			fmt.Printf("    %d-%d  %s\n", sp.From, sp.To, sp.Value)
		}
		break
	}
}
