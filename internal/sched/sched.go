// Package sched schedules named pipeline stages as a dependency DAG on a
// bounded worker pool. Dong et al. (VLDB'14) scale knowledge fusion by
// structuring it as independent MapReduce jobs; the Figure-1 pipeline has
// the same shape one level up — a shallow DAG of supervised stages where
// most edges are absent — so independent stages (the five substrate
// generators, KB extraction vs. query-stream extraction, the seeded
// extractors) can run concurrently instead of serially.
//
// Semantics are deliberately identical to a hand-written serial pipeline:
//
//   - Output order is fixed: reports are assembled in a stable topological
//     order (ties broken by input position), never in completion order, so
//     callers emit byte-identical results at any parallelism.
//   - A stage becomes ready when every stage it is After has finished OK
//     or Degraded; optional stages therefore degrade softly without
//     stalling their dependents.
//   - A Failed stage (a mandatory failure, or any stage killed by context
//     cancellation) cancels in-flight work, stops dispatching, and fails
//     the run with that stage's error.
//   - Each stage runs under the caller's resilience.Supervisor, so panic
//     recovery, retries, per-attempt deadlines and deterministic fault
//     injection apply per stage exactly as in the serial pipeline.
//
// With Parallelism <= 1 the scheduler runs stages on the caller's
// goroutine in topological order — byte-compatible with the legacy serial
// pipeline including span layout and hook ordering. With Parallelism > 1
// it opens one parent span ("sched") per run, nests every stage span under
// it, and tracks the in-flight stage count in the
// akb_sched_running_stages gauge.
package sched

import (
	"context"
	"fmt"
	"time"

	"akb/internal/obs"
	"akb/internal/resilience"
)

// Metric and span names the scheduler emits.
const (
	// MetricRunningStages is a gauge of stages currently executing.
	MetricRunningStages = "akb_sched_running_stages"
	// MetricStagesTotal counts stages the scheduler dispatched.
	MetricStagesTotal = "akb_sched_stages_total"
	// SpanName is the parent span opened per concurrent scheduler run.
	SpanName = "sched"
)

// Stage is one schedulable unit: a supervised stage plus its dependency
// edges.
type Stage struct {
	// Name identifies the stage; it is also the resilience supervisor's
	// stage name and therefore the FaultPlan key.
	Name string
	// After lists stages that must finish (OK or Degraded) before this
	// stage may start. Every entry must name another stage passed to the
	// same Run call.
	After []string
	// StreamAfter lists stages this stage consumes a stream from: under a
	// concurrent scheduler the stage may start as soon as every streamed
	// upstream has *started* (or already finished), overlapping consumer
	// and producers. Stream edges still participate in the topological
	// order and cycle detection, and under Parallelism <= 1 they behave
	// exactly like After edges — the serial pipeline stays byte-compatible.
	// Failure semantics are unchanged: a mandatory upstream failure cancels
	// the run (and with it the downstream stage's context), and a Degraded
	// upstream is surfaced to the consumer through Options.OnStageEnd so it
	// can drop that producer's partial stream.
	StreamAfter []string
	// Optional stages fail soft: the run continues and the stage reports
	// Degraded. Mandatory stages fail the whole run.
	Optional bool
	// Retry is the per-stage backoff schedule (zero value: one attempt).
	Retry resilience.RetryPolicy
	// Timeout bounds each attempt; 0 disables per-attempt deadlines.
	Timeout time.Duration
	// Run is the stage body. Bodies of stages with no path between them
	// may execute concurrently and must not share mutable state.
	Run func(ctx context.Context) error
}

// Options configure one scheduler run.
type Options struct {
	// Parallelism bounds how many stages run concurrently. Values <= 1
	// run strictly serially on the caller's goroutine.
	Parallelism int
	// Supervisor executes each stage; nil uses a zero supervisor.
	Supervisor *resilience.Supervisor
	// OnStageEnd, when set, is called after every stage completes (in both
	// serial and concurrent modes) with its report, before any dependent
	// stage is dispatched. Streaming consumers use it to seal or discard a
	// producer's stream when the producer ends. It runs on the scheduler
	// goroutine and must not block.
	OnStageEnd func(rep resilience.Report)
}

// Result is the outcome of a scheduler run.
type Result struct {
	// Order is the fixed topological order of stage names; input order
	// breaks ties, so a task list given in a valid topological order is
	// reported in exactly that order.
	Order []string
	// Reports holds one supervised report per stage, aligned with Order.
	// On a failed run, stages that never started carry Health Skipped.
	Reports []resilience.Report
}

// graph is the validated dependency structure over a stage list.
type graph struct {
	// topo maps topological position -> input index.
	topo []int
	// pos maps input index -> topological position.
	pos []int
	// dependents[i] lists input indices of stages that are After stage i.
	dependents [][]int
	// indeg[i] is the number of unfinished hard (After) dependencies of
	// stage i.
	indeg []int
	// streamers[i] lists input indices of stages that are StreamAfter
	// stage i; they become start-eligible once stage i starts.
	streamers [][]int
	// streamWait[i] is the number of stream dependencies of stage i.
	streamWait []int
}

// build validates names and edges and computes the stable topological
// order (Kahn's algorithm, smallest input index first). Stream edges count
// as ordinary edges for ordering and cycle detection — only the runtime
// readiness rule distinguishes them.
func build(stages []Stage) (*graph, error) {
	n := len(stages)
	byName := make(map[string]int, n)
	for i, st := range stages {
		if st.Name == "" {
			return nil, fmt.Errorf("sched: stage %d has no name", i)
		}
		if _, dup := byName[st.Name]; dup {
			return nil, fmt.Errorf("sched: duplicate stage %q", st.Name)
		}
		byName[st.Name] = i
	}
	g := &graph{
		topo:       make([]int, 0, n),
		pos:        make([]int, n),
		dependents: make([][]int, n),
		indeg:      make([]int, n),
		streamers:  make([][]int, n),
		streamWait: make([]int, n),
	}
	for i, st := range stages {
		for _, dep := range st.After {
			j, ok := byName[dep]
			if !ok {
				return nil, fmt.Errorf("sched: stage %q is after unknown stage %q", st.Name, dep)
			}
			if j == i {
				return nil, fmt.Errorf("sched: stage %q is after itself", st.Name)
			}
			g.dependents[j] = append(g.dependents[j], i)
			g.indeg[i]++
		}
		for _, dep := range st.StreamAfter {
			j, ok := byName[dep]
			if !ok {
				return nil, fmt.Errorf("sched: stage %q streams after unknown stage %q", st.Name, dep)
			}
			if j == i {
				return nil, fmt.Errorf("sched: stage %q streams after itself", st.Name)
			}
			g.streamers[j] = append(g.streamers[j], i)
			g.streamWait[i]++
		}
	}
	indeg := make([]int, n)
	for i := range indeg {
		indeg[i] = g.indeg[i] + g.streamWait[i]
	}
	var ready []int // ascending input indices with indeg 0
	for i := n - 1; i >= 0; i-- {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	// ready is kept sorted descending so the smallest index pops last.
	for len(ready) > 0 {
		i := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		g.pos[i] = len(g.topo)
		g.topo = append(g.topo, i)
		for _, edges := range [2][][]int{g.dependents, g.streamers} {
			for _, j := range edges[i] {
				indeg[j]--
				if indeg[j] == 0 {
					ready = insertDesc(ready, j)
				}
			}
		}
	}
	if len(g.topo) != n {
		return nil, fmt.Errorf("sched: dependency cycle among stages")
	}
	return g, nil
}

// insertDesc inserts v into a descending-sorted slice, keeping it sorted.
func insertDesc(s []int, v int) []int {
	s = append(s, v)
	for i := len(s) - 1; i > 0 && s[i] > s[i-1]; i-- {
		s[i], s[i-1] = s[i-1], s[i]
	}
	return s
}

// supervised converts a sched.Stage into the supervisor's stage form.
func supervised(st Stage) resilience.Stage {
	return resilience.Stage{
		Name:     st.Name,
		Optional: st.Optional,
		Retry:    st.Retry,
		Timeout:  st.Timeout,
		Run:      st.Run,
	}
}

// Run executes the stage DAG and returns reports in the fixed topological
// order. It returns a non-nil Result even on failure (unstarted stages are
// marked Skipped) together with the failing stage's error.
func Run(ctx context.Context, opts Options, stages []Stage) (*Result, error) {
	g, err := build(stages)
	if err != nil {
		return nil, err
	}
	sup := opts.Supervisor
	if sup == nil {
		sup = &resilience.Supervisor{}
	}
	if opts.Parallelism <= 1 {
		return runSerial(ctx, sup, opts.OnStageEnd, stages, g)
	}
	return runParallel(ctx, sup, opts, stages, g)
}

// runSerial executes stages one at a time in topological order on the
// caller's goroutine. It is byte-compatible with the legacy serial
// pipeline: no extra spans, no goroutines, immediate abort on failure.
func runSerial(ctx context.Context, sup *resilience.Supervisor, onEnd func(resilience.Report), stages []Stage, g *graph) (*Result, error) {
	res := newResult(stages, g)
	reg := obs.Reg(ctx)
	gauge := reg.Gauge(MetricRunningStages)
	for pos, i := range g.topo {
		reg.Counter(MetricStagesTotal).Inc()
		gauge.Set(1)
		rep := sup.Run(ctx, supervised(stages[i]))
		gauge.Set(0)
		res.Reports[pos] = rep
		if onEnd != nil {
			onEnd(rep)
		}
		if rep.Health == resilience.Failed {
			return res, rep.Err
		}
	}
	return res, nil
}

// runParallel executes ready stages on a bounded pool. Dispatch order is
// topological among ready stages, so with a pool of one it degenerates to
// the serial order; reports are always assembled in topological order
// regardless of completion interleaving.
//
// A stage is ready when its hard (After) indegree has drained to zero AND
// every stream (StreamAfter) upstream has been dispatched. Dispatching a
// producer therefore unblocks its stream consumers in the same dispatch
// loop — a consumer can never start before all of its producers, so stream
// consumers cannot starve producers of pool slots.
func runParallel(ctx context.Context, sup *resilience.Supervisor, opts Options, stages []Stage, g *graph) (*Result, error) {
	parallelism := opts.Parallelism
	res := newResult(stages, g)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	reg := obs.Reg(ctx)
	sctx, span := obs.StartSpan(cctx, SpanName)
	span.AnnotateInt("stages", int64(len(stages)))
	span.AnnotateInt("parallelism", int64(parallelism))
	defer span.End()
	gauge := reg.Gauge(MetricRunningStages)

	type done struct {
		idx int
		rep resilience.Report
	}
	doneCh := make(chan done)
	indeg := make([]int, len(stages))
	copy(indeg, g.indeg)
	streamWait := make([]int, len(stages))
	copy(streamWait, g.streamWait)
	var ready []int // input indices, descending topo position (pop from end)
	for i := range stages {
		if indeg[i] == 0 && streamWait[i] == 0 {
			ready = insertReady(ready, i, g)
		}
	}
	running := 0
	// failure is the first non-cancellation failure observed; once set,
	// dispatch stops and in-flight stages drain under the cancelled
	// context.
	var failure error
	for len(ready) > 0 || running > 0 {
		for failure == nil && len(ready) > 0 && running < parallelism {
			i := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			running++
			reg.Counter(MetricStagesTotal).Inc()
			gauge.Add(1)
			go func(i int) {
				rep := sup.Run(sctx, supervised(stages[i]))
				doneCh <- done{idx: i, rep: rep}
			}(i)
			// Starting a producer releases its stream consumers; they may
			// dispatch within this same inner loop, behind any already-ready
			// stage of smaller topological position.
			for _, j := range g.streamers[i] {
				streamWait[j]--
				if streamWait[j] == 0 && indeg[j] == 0 {
					ready = insertReady(ready, j, g)
				}
			}
		}
		if running == 0 {
			break // failure observed and nothing left in flight
		}
		d := <-doneCh
		running--
		gauge.Add(-1)
		res.Reports[g.pos[d.idx]] = d.rep
		if opts.OnStageEnd != nil {
			opts.OnStageEnd(d.rep)
		}
		if d.rep.Health == resilience.Failed {
			if failure == nil {
				failure = d.rep.Err
				cancel()
			}
			ready = nil
			continue
		}
		for _, j := range g.dependents[d.idx] {
			indeg[j]--
			if indeg[j] == 0 && streamWait[j] == 0 && failure == nil {
				ready = insertReady(ready, j, g)
			}
		}
	}
	if failure != nil {
		return res, failure
	}
	return res, nil
}

// insertReady inserts input index v keeping the slice sorted by
// descending topological position (the next stage to dispatch at the end).
func insertReady(s []int, v int, g *graph) []int {
	s = append(s, v)
	for i := len(s) - 1; i > 0 && g.pos[s[i]] > g.pos[s[i-1]]; i-- {
		s[i], s[i-1] = s[i-1], s[i]
	}
	return s
}

// newResult pre-fills a Result with Skipped reports in topological order,
// so stages that never run still appear in the output.
func newResult(stages []Stage, g *graph) *Result {
	res := &Result{
		Order:   make([]string, len(stages)),
		Reports: make([]resilience.Report, len(stages)),
	}
	for pos, i := range g.topo {
		res.Order[pos] = stages[i].Name
		res.Reports[pos] = resilience.Report{Stage: stages[i].Name, Health: resilience.Skipped}
	}
	return res
}
