package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"akb/internal/obs"
	"akb/internal/resilience"
)

// noop returns a stage body that records its completion order.
type recorder struct {
	mu    sync.Mutex
	order []string
}

func (r *recorder) body(name string, d time.Duration) func(context.Context) error {
	return func(context.Context) error {
		if d > 0 {
			time.Sleep(d)
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		r.order = append(r.order, name)
		return nil
	}
}

func names(res *Result) string { return strings.Join(res.Order, ",") }

// diamond builds a classic a -> {b, c} -> d DAG.
func diamond(rec *recorder) []Stage {
	return []Stage{
		{Name: "a", Run: rec.body("a", 0)},
		{Name: "b", After: []string{"a"}, Run: rec.body("b", 0)},
		{Name: "c", After: []string{"a"}, Run: rec.body("c", 0)},
		{Name: "d", After: []string{"b", "c"}, Run: rec.body("d", 0)},
	}
}

func TestTopologicalOrderIsInputOrder(t *testing.T) {
	for _, par := range []int{1, 4} {
		rec := &recorder{}
		res, err := Run(context.Background(), Options{Parallelism: par}, diamond(rec))
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if got := names(res); got != "a,b,c,d" {
			t.Errorf("par=%d: order = %s, want a,b,c,d", par, got)
		}
		for i, rep := range res.Reports {
			if rep.Stage != res.Order[i] || rep.Health != resilience.OK {
				t.Errorf("par=%d: report %d = %+v", par, i, rep)
			}
		}
	}
}

// TestTopologicalOrderStableForForwardEdges checks Kahn tie-breaking: a
// task list not given in dependency order still yields a deterministic
// order with ties broken by input position.
func TestTopologicalOrderStableForForwardEdges(t *testing.T) {
	rec := &recorder{}
	stages := []Stage{
		{Name: "late", After: []string{"base"}, Run: rec.body("late", 0)},
		{Name: "base", Run: rec.body("base", 0)},
		{Name: "solo", Run: rec.body("solo", 0)},
	}
	res, err := Run(context.Background(), Options{}, stages)
	if err != nil {
		t.Fatal(err)
	}
	// base unblocks late (input index 0), which then precedes solo.
	if got := names(res); got != "base,late,solo" {
		t.Errorf("order = %s, want base,late,solo", got)
	}
}

func TestValidationErrors(t *testing.T) {
	ok := func(context.Context) error { return nil }
	cases := []struct {
		name   string
		stages []Stage
		want   string
	}{
		{"unnamed", []Stage{{Run: ok}}, "has no name"},
		{"duplicate", []Stage{{Name: "x", Run: ok}, {Name: "x", Run: ok}}, "duplicate"},
		{"unknown-dep", []Stage{{Name: "x", After: []string{"y"}, Run: ok}}, "unknown stage"},
		{"self-dep", []Stage{{Name: "x", After: []string{"x"}, Run: ok}}, "after itself"},
		{"cycle", []Stage{
			{Name: "x", After: []string{"y"}, Run: ok},
			{Name: "y", After: []string{"x"}, Run: ok},
		}, "cycle"},
	}
	for _, tc := range cases {
		_, err := Run(context.Background(), Options{}, tc.stages)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestDependenciesRespectedUnderParallelism(t *testing.T) {
	var maxSeen atomic.Int64
	var base atomic.Bool
	stages := []Stage{
		{Name: "base", Run: func(context.Context) error {
			time.Sleep(5 * time.Millisecond)
			base.Store(true)
			return nil
		}},
	}
	var running atomic.Int64
	for i := 0; i < 8; i++ {
		stages = append(stages, Stage{
			Name:  fmt.Sprintf("leaf-%d", i),
			After: []string{"base"},
			Run: func(context.Context) error {
				if !base.Load() {
					t.Error("leaf started before its dependency finished")
				}
				n := running.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				running.Add(-1)
				return nil
			},
		})
	}
	res, err := Run(context.Background(), Options{Parallelism: 4}, stages)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 9 {
		t.Fatalf("got %d reports", len(res.Reports))
	}
	if m := maxSeen.Load(); m > 4 {
		t.Errorf("observed %d concurrent stages, pool bound is 4", m)
	}
	if m := maxSeen.Load(); m < 2 {
		t.Errorf("observed %d concurrent stages, expected overlap with pool of 4", m)
	}
}

func TestOptionalFailureDegradesAndDependentsRun(t *testing.T) {
	for _, par := range []int{1, 3} {
		rec := &recorder{}
		boom := errors.New("boom")
		stages := []Stage{
			{Name: "a", Run: rec.body("a", 0)},
			{Name: "flaky", After: []string{"a"}, Optional: true, Run: func(context.Context) error { return boom }},
			{Name: "after", After: []string{"flaky"}, Run: rec.body("after", 0)},
		}
		res, err := Run(context.Background(), Options{Parallelism: par}, stages)
		if err != nil {
			t.Fatalf("par=%d: optional failure failed the run: %v", par, err)
		}
		if res.Reports[1].Health != resilience.Degraded {
			t.Errorf("par=%d: flaky health = %v", par, res.Reports[1].Health)
		}
		if res.Reports[2].Health != resilience.OK {
			t.Errorf("par=%d: dependent of degraded stage did not run: %+v", par, res.Reports[2])
		}
	}
}

func TestMandatoryFailureCancelsInFlightAndSkipsRest(t *testing.T) {
	started := make(chan struct{})
	sawCancel := make(chan bool, 1)
	stages := []Stage{
		{Name: "slow", Run: func(ctx context.Context) error {
			close(started)
			select {
			case <-ctx.Done():
				sawCancel <- true
				return ctx.Err()
			case <-time.After(2 * time.Second):
				sawCancel <- false
				return nil
			}
		}},
		{Name: "doomed", Run: func(context.Context) error {
			<-started // fail only once the sibling is in flight
			return errors.New("fatal")
		}},
		{Name: "never", After: []string{"doomed"}, Run: func(context.Context) error {
			t.Error("dependent of failed stage ran")
			return nil
		}},
	}
	res, err := Run(context.Background(), Options{Parallelism: 2}, stages)
	if err == nil {
		t.Fatal("mandatory failure did not fail the run")
	}
	var se *resilience.StageError
	if !errors.As(err, &se) || se.Stage != "doomed" {
		t.Fatalf("error %v not attributed to the failing stage", err)
	}
	if !<-sawCancel {
		t.Error("in-flight stage was not cancelled")
	}
	// The never-started dependent reports Skipped in the fixed order.
	var never resilience.Report
	for i, name := range res.Order {
		if name == "never" {
			never = res.Reports[i]
		}
	}
	if never.Health != resilience.Skipped {
		t.Errorf("unreached stage health = %v, want skipped", never.Health)
	}
}

func TestSerialAbortsImmediatelyOnFailure(t *testing.T) {
	rec := &recorder{}
	stages := []Stage{
		{Name: "a", Run: rec.body("a", 0)},
		{Name: "bad", Run: func(context.Context) error { return errors.New("nope") }},
		{Name: "c", Run: rec.body("c", 0)},
	}
	res, err := Run(context.Background(), Options{Parallelism: 1}, stages)
	if err == nil {
		t.Fatal("want error")
	}
	if len(rec.order) != 1 || rec.order[0] != "a" {
		t.Errorf("ran %v after failure, want only a", rec.order)
	}
	if res.Reports[2].Health != resilience.Skipped {
		t.Errorf("stage after failure = %v, want skipped", res.Reports[2].Health)
	}
}

// TestSupervisorIntegration checks per-stage retries flow through the
// scheduler: a transiently failing body recovers within its attempt
// budget.
func TestSupervisorIntegration(t *testing.T) {
	sup := &resilience.Supervisor{Seed: 7}
	attempts := 0
	stages := []Stage{
		{Name: "flaky", Retry: resilience.RetryPolicy{MaxAttempts: 3},
			Run: func(context.Context) error {
				attempts++
				if attempts < 3 {
					return resilience.MarkTransient(errors.New("flaky attempt"))
				}
				return nil
			}},
	}
	res, err := Run(context.Background(), Options{Parallelism: 2, Supervisor: sup}, stages)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports[0].Attempts != 3 || res.Reports[0].Health != resilience.OK {
		t.Errorf("report = %+v, want OK after 3 attempts", res.Reports[0])
	}
}

// TestSchedTelemetry checks the parent span and the concurrency gauge.
func TestSchedTelemetry(t *testing.T) {
	run := obs.NewRun()
	ctx := obs.Into(context.Background(), run)
	rec := &recorder{}
	if _, err := Run(ctx, Options{Parallelism: 2}, diamond(rec)); err != nil {
		t.Fatal(err)
	}
	spans := run.Trace().Snapshot()
	var parent obs.SpanReport
	for _, s := range spans {
		if s.Name == SpanName {
			parent = s
		}
	}
	if parent.ID == 0 {
		t.Fatal("no sched parent span")
	}
	if parent.Attr("parallelism") != "2" || parent.Attr("stages") != "4" {
		t.Errorf("sched span attrs = %v", parent.Attrs)
	}
	stageSpans := 0
	for _, s := range spans {
		if s.Parent == parent.ID {
			stageSpans++
		}
	}
	if stageSpans != 4 {
		t.Errorf("%d stage spans under sched parent, want 4", stageSpans)
	}
	for _, m := range run.Registry().Snapshot() {
		switch m.Name {
		case MetricRunningStages:
			if m.Value != 0 {
				t.Errorf("running-stages gauge = %v at rest, want 0", m.Value)
			}
		case MetricStagesTotal:
			if m.Value != 4 {
				t.Errorf("stages-total = %v, want 4", m.Value)
			}
		}
	}
}

// TestSerialKeepsStageSpansAsRoots pins the serial-path telemetry
// contract the core pipeline tests rely on: no parent span, one root span
// per stage.
func TestSerialKeepsStageSpansAsRoots(t *testing.T) {
	run := obs.NewRun()
	ctx := obs.Into(context.Background(), run)
	rec := &recorder{}
	if _, err := Run(ctx, Options{Parallelism: 1}, diamond(rec)); err != nil {
		t.Fatal(err)
	}
	roots := 0
	for _, s := range run.Trace().Snapshot() {
		if s.Name == SpanName {
			t.Error("serial run opened a sched parent span")
		}
		if s.Parent == 0 {
			roots++
		}
	}
	if roots != 4 {
		t.Errorf("%d root spans, want one per stage", roots)
	}
}

// TestStreamConsumerOverlapsProducer checks the defining property of a
// stream edge: the consumer starts while the producer is still running.
func TestStreamConsumerOverlapsProducer(t *testing.T) {
	producerRunning := make(chan struct{})
	release := make(chan struct{})
	overlapped := false
	stages := []Stage{
		{Name: "producer", Run: func(context.Context) error {
			close(producerRunning)
			<-release
			return nil
		}},
		{Name: "consumer", StreamAfter: []string{"producer"}, Run: func(context.Context) error {
			select {
			case <-producerRunning:
			case <-time.After(2 * time.Second):
				t.Error("consumer started before producer")
			}
			overlapped = true
			close(release) // producer finishes only after the consumer started
			return nil
		}},
	}
	res, err := Run(context.Background(), Options{Parallelism: 2}, stages)
	if err != nil {
		t.Fatal(err)
	}
	if !overlapped {
		t.Fatal("consumer never observed the producer in flight")
	}
	if got := names(res); got != "producer,consumer" {
		t.Errorf("order = %s, want producer,consumer", got)
	}
}

// TestStreamEdgeSerialBehavesLikeAfter pins the Parallelism <= 1 contract:
// a stream edge is a hard edge, so the producer finishes before the
// consumer starts and order is byte-compatible with After.
func TestStreamEdgeSerialBehavesLikeAfter(t *testing.T) {
	rec := &recorder{}
	stages := []Stage{
		{Name: "consumer", StreamAfter: []string{"producer"}, Run: rec.body("consumer", 0)},
		{Name: "producer", Run: rec.body("producer", 0)},
	}
	res, err := Run(context.Background(), Options{Parallelism: 1}, stages)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rec.order, ","); got != "producer,consumer" {
		t.Errorf("execution order = %s, want producer,consumer", got)
	}
	if got := names(res); got != "producer,consumer" {
		t.Errorf("report order = %s, want producer,consumer", got)
	}
}

// TestStreamEdgeValidation checks StreamAfter participates in name
// validation and cycle detection exactly like After.
func TestStreamEdgeValidation(t *testing.T) {
	ok := func(context.Context) error { return nil }
	cases := []struct {
		name   string
		stages []Stage
		want   string
	}{
		{"unknown", []Stage{{Name: "x", StreamAfter: []string{"y"}, Run: ok}}, "unknown stage"},
		{"self", []Stage{{Name: "x", StreamAfter: []string{"x"}, Run: ok}}, "after itself"},
		{"cycle", []Stage{
			{Name: "x", StreamAfter: []string{"y"}, Run: ok},
			{Name: "y", After: []string{"x"}, Run: ok},
		}, "cycle"},
	}
	for _, tc := range cases {
		_, err := Run(context.Background(), Options{}, tc.stages)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

// TestStreamConsumerSkippedWhenProducerNeverStarts checks a stream
// consumer whose producer is blocked behind a mandatory failure stays
// Skipped rather than starting with no producer.
func TestStreamConsumerSkippedWhenProducerNeverStarts(t *testing.T) {
	stages := []Stage{
		{Name: "bad", Run: func(context.Context) error { return errors.New("fatal") }},
		{Name: "producer", After: []string{"bad"}, Run: func(context.Context) error { return nil }},
		{Name: "consumer", StreamAfter: []string{"producer"}, Run: func(context.Context) error {
			t.Error("consumer ran though its producer never started")
			return nil
		}},
	}
	res, err := Run(context.Background(), Options{Parallelism: 2}, stages)
	if err == nil {
		t.Fatal("mandatory failure did not fail the run")
	}
	for i, name := range res.Order {
		if name == "consumer" && res.Reports[i].Health != resilience.Skipped {
			t.Errorf("consumer health = %v, want skipped", res.Reports[i].Health)
		}
	}
}

// TestOnStageEndOrdering checks the completion hook fires for every stage,
// in both modes, before dependents of that stage are dispatched.
func TestOnStageEndOrdering(t *testing.T) {
	for _, par := range []int{1, 2} {
		var mu sync.Mutex
		var ended []string
		endedBefore := map[string]bool{}
		stages := []Stage{
			{Name: "up", Run: func(context.Context) error { return nil }},
			{Name: "down", After: []string{"up"}, Run: func(context.Context) error {
				mu.Lock()
				for _, n := range ended {
					if n == "up" {
						endedBefore["down"] = true
					}
				}
				mu.Unlock()
				return nil
			}},
		}
		_, err := Run(context.Background(), Options{
			Parallelism: par,
			OnStageEnd: func(rep resilience.Report) {
				mu.Lock()
				ended = append(ended, rep.Stage)
				mu.Unlock()
			},
		}, stages)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if !endedBefore["down"] {
			t.Errorf("par=%d: OnStageEnd(up) did not precede dependent dispatch", par)
		}
		if len(ended) != 2 {
			t.Errorf("par=%d: hook fired %d times, want 2", par, len(ended))
		}
	}
}
