package entitydisc

import (
	"testing"

	"akb/internal/extract"
	"akb/internal/kb"
)

func fact(name, class, attr, value, source string) extract.EntityFact {
	return extract.EntityFact{Name: name, Class: class, Attr: attr, Value: value, Source: source, Doc: "d"}
}

func worldIndex(t *testing.T) (*kb.World, *extract.EntityIndex) {
	t.Helper()
	w := kb.NewWorld(kb.WorldConfig{Seed: 9, EntitiesPerClass: 10, AttrsPerEntity: 8})
	return w, extract.NewEntityIndexFromWorld(w)
}

func TestDiscoverCreatesEntities(t *testing.T) {
	_, idx := worldIndex(t)
	facts := []extract.EntityFact{
		fact("Zanzibar Nights", "Film", "director", "Leo Fontaine", "site-a"),
		fact("Zanzibar Nights", "Film", "composer", "Ida Moreau", "site-b"),
		fact("Zanzibar Nights", "Film", "director", "Leo Fontaine", "site-b"),
		fact("Lonely Mention", "Film", "director", "X", "site-a"), // support 1
	}
	res := Discover(facts, idx, DefaultConfig())
	if len(res.Entities) != 1 {
		t.Fatalf("entities = %d, want 1 (%+v)", len(res.Entities), res.Entities)
	}
	e := res.Entities[0]
	if e.Name != "Zanzibar Nights" || e.Class != "Film" || e.Support != 3 {
		t.Errorf("entity = %+v", e)
	}
	if len(e.Sources) != 2 {
		t.Errorf("sources = %v", e.Sources)
	}
	if len(e.Values["director"]) != 1 || e.Values["director"][0] != "Leo Fontaine" {
		t.Errorf("values = %v", e.Values)
	}
	if res.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", res.Rejected)
	}
}

func TestDiscoverLinksNearDuplicatesOfKnown(t *testing.T) {
	w, idx := worldIndex(t)
	known := w.EntityNames("Film")[0]
	// A one-character typo of a known entity must LINK, not create.
	typo := known[:len(known)-1] + "x"
	facts := []extract.EntityFact{
		fact(typo, "Film", "director", "A", "s1"),
		fact(typo, "Film", "director", "A", "s2"),
	}
	res := Discover(facts, idx, DefaultConfig())
	if len(res.Entities) != 0 {
		t.Fatalf("typo of known entity created new entity: %+v", res.Entities)
	}
	if res.Linked[typo] != known {
		t.Errorf("linked = %v, want %q -> %q", res.Linked, typo, known)
	}
}

func TestDiscoverMergesSynonymMentions(t *testing.T) {
	_, idx := worldIndex(t)
	facts := []extract.EntityFact{
		fact("Zanzibar Nights", "Film", "director", "Leo", "s1"),
		fact("Zanzibar Nights", "Film", "genre", "Drama", "s1"),
		fact("Zanzibar Night", "Film", "director", "Leo", "s2"),    // typo variant
		fact("Zanzibar Nights 2", "Film", "director", "Leo", "s3"), // qualifier variant
	}
	res := Discover(facts, idx, DefaultConfig())
	if len(res.Entities) != 1 {
		t.Fatalf("entities = %d, want 1 merged cluster: %+v", len(res.Entities), res.Entities)
	}
	e := res.Entities[0]
	if e.Name != "Zanzibar Nights" {
		t.Errorf("canonical = %q", e.Name)
	}
	if len(e.Aliases) != 2 {
		t.Errorf("aliases = %v", e.Aliases)
	}
	if e.Support != 4 {
		t.Errorf("support = %d", e.Support)
	}
}

func TestDiscoverMinSources(t *testing.T) {
	_, idx := worldIndex(t)
	facts := []extract.EntityFact{
		fact("Solo Source Show", "Film", "director", "A", "only-site"),
		fact("Solo Source Show", "Film", "genre", "B", "only-site"),
	}
	cfg := DefaultConfig()
	cfg.MinSources = 2
	res := Discover(facts, idx, cfg)
	if len(res.Entities) != 0 || res.Rejected != 1 {
		t.Errorf("single-source candidate survived MinSources=2: %+v", res)
	}
}

func TestResultStatements(t *testing.T) {
	_, idx := worldIndex(t)
	facts := []extract.EntityFact{
		fact("Zanzibar Nights", "Film", "director", "Leo", "s1"),
		fact("Zanzibar Nights", "Film", "director", "Leo", "s2"),
	}
	res := Discover(facts, idx, DefaultConfig())
	stmts := res.Statements(0.6)
	if len(stmts) != 2 { // one value x two sources
		t.Fatalf("statements = %d, want 2", len(stmts))
	}
	for _, s := range stmts {
		if err := s.Valid(); err != nil {
			t.Fatal(err)
		}
		if s.Confidence != 0.6 || s.Provenance.Extractor != "entitydisc" {
			t.Errorf("statement = %+v", s)
		}
	}
}

func TestWithinDistance(t *testing.T) {
	cases := []struct {
		a, b string
		max  int
		want bool
	}{
		{"abc", "abc", 0, true},
		{"abc", "abd", 1, true},
		{"abc", "abd", 0, false},
		{"short", "muchlongerstring", 2, false},
		{"kitten", "sitting", 3, true},
		{"kitten", "sitting", 2, false},
	}
	for _, c := range cases {
		if got := withinDistance(c.a, c.b, c.max); got != c.want {
			t.Errorf("withinDistance(%q, %q, %d) = %v, want %v", c.a, c.b, c.max, got, c.want)
		}
	}
}

func TestNearDuplicate(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"Zanzibar Nights", "Zanzibar Night", true},
		{"Zanzibar Nights", "Zanzibar Nights 2", true},
		{"Zanzibar Nights", "Completely Different", false},
		{"A B", "A B C D", false}, // two extra tokens: not a variant
	}
	for _, c := range cases {
		if got := nearDuplicate(c.a, c.b, 2); got != c.want {
			t.Errorf("nearDuplicate(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
