// Package entitydisc implements new entity creation — the paper's §3.1
// commitment to "create new entities automatically by improving the
// existing techniques [Wick et al.], solving entity-linking and
// entity-discovery jointly". It consumes candidate entity facts from the
// DOM-tree and Web-text extractors' discovery modes and:
//
//  1. links: a candidate whose name is (a near-duplicate of) a known
//     entity is resolved to that entity instead of becoming a new one;
//  2. merges: synonym mentions of the same unknown entity (exact or
//     near-duplicate names) are clustered, fixing the redundancy problem
//     the paper attributes to lexical-level Open IE;
//  3. creates: clusters with enough independent support become new
//     entities carrying their aggregated attribute values.
package entitydisc

import (
	"sort"
	"strings"

	"akb/internal/extract"
	"akb/internal/rdf"
)

// Config tunes discovery.
type Config struct {
	// MinSupport is the number of facts a candidate needs to become an
	// entity (default 2).
	MinSupport int
	// MinSources is the number of distinct sources required (default 1).
	MinSources int
	// LinkDistance is the maximum edit distance for linking a mention to a
	// known entity (default 1).
	LinkDistance int
	// MergeDistance is the maximum edit distance for merging two unknown
	// mentions (default 2).
	MergeDistance int
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{MinSupport: 2, MinSources: 1, LinkDistance: 1, MergeDistance: 2}
}

// Entity is one discovered entity with aggregated evidence.
type Entity struct {
	// Name is the canonical mention (the most frequent surface form).
	Name string
	// Class is the majority class of the contributing facts.
	Class string
	// Support counts contributing facts.
	Support int
	// Sources is the distinct contributing sources.
	Sources []string
	// Aliases are merged non-canonical surface forms.
	Aliases []string
	// Values aggregates attribute -> distinct values.
	Values map[string][]string
}

// Result is the discovery outcome.
type Result struct {
	// Entities are the created entities, sorted by descending support then
	// name.
	Entities []*Entity
	// Linked maps candidate names that resolved to known entities.
	Linked map[string]string
	// Rejected counts candidates dropped for insufficient support.
	Rejected int
}

// Statements converts the discovered entities' aggregated values into
// confidence-annotated statements so they can join the fusion phase.
func (r *Result) Statements(conf float64) []rdf.Statement {
	var out []rdf.Statement
	for _, e := range r.Entities {
		attrs := make([]string, 0, len(e.Values))
		for a := range e.Values {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			for _, v := range e.Values[a] {
				for _, src := range e.Sources {
					out = append(out, extract.NewStatement(e.Name, a, v, src, "entitydisc", "", conf))
				}
			}
		}
	}
	return out
}

// Discover clusters candidate facts into linked, merged and new entities.
func Discover(facts []extract.EntityFact, idx *extract.EntityIndex, cfg Config) *Result {
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 2
	}
	if cfg.MinSources <= 0 {
		cfg.MinSources = 1
	}
	if cfg.LinkDistance < 0 {
		cfg.LinkDistance = 1
	}
	if cfg.MergeDistance <= 0 {
		cfg.MergeDistance = 2
	}
	res := &Result{Linked: map[string]string{}}

	// Phase 1: entity linking — resolve near-duplicates of known names.
	known := idx.Names()
	var unknownFacts []extract.EntityFact
	for _, f := range facts {
		name := strings.TrimSpace(f.Name)
		if name == "" {
			continue
		}
		if _, ok := idx.Class(name); ok {
			res.Linked[name] = name
			continue
		}
		if target := linkToKnown(name, known, cfg.LinkDistance); target != "" {
			res.Linked[name] = target
			continue
		}
		f.Name = name
		unknownFacts = append(unknownFacts, f)
	}

	// Phase 2: merge synonym mentions of unknown entities.
	nameCount := map[string]int{}
	for _, f := range unknownFacts {
		nameCount[f.Name]++
	}
	names := make([]string, 0, len(nameCount))
	for n := range nameCount {
		names = append(names, n)
	}
	sort.Strings(names)
	// Union-find gives the transitive closure: "Zanzibar Night",
	// "Zanzibar Nights" and "Zanzibar Nights 2" all join one cluster even
	// though the outer pair is not itself a near-duplicate.
	parent := map[string]string{}
	var find func(string) string
	find = func(n string) string {
		p, ok := parent[n]
		if !ok || p == n {
			parent[n] = n
			return n
		}
		r := find(p)
		parent[n] = r
		return r
	}
	for i, a := range names {
		for j := i + 1; j < len(names); j++ {
			b := names[j]
			if nearDuplicate(a, b, cfg.MergeDistance) {
				ra, rb := find(a), find(b)
				if ra != rb {
					parent[rb] = ra
				}
			}
		}
	}
	canon := map[string]string{}
	for _, n := range names {
		canon[n] = find(n)
	}
	// Canonical = most frequent member of each cluster.
	clusterMembers := map[string][]string{}
	for n, c := range canon {
		clusterMembers[c] = append(clusterMembers[c], n)
	}
	best := map[string]string{}
	for c, members := range clusterMembers {
		sort.Strings(members)
		top := members[0]
		for _, m := range members[1:] {
			if nameCount[m] > nameCount[top] {
				top = m
			}
		}
		best[c] = top
	}

	// Phase 3: aggregate and create.
	type agg struct {
		class   map[string]int
		sources map[string]struct{}
		values  map[string]map[string]struct{}
		aliases map[string]struct{}
		support int
	}
	byEntity := map[string]*agg{}
	for _, f := range unknownFacts {
		key := best[canon[f.Name]]
		a := byEntity[key]
		if a == nil {
			a = &agg{
				class:   map[string]int{},
				sources: map[string]struct{}{},
				values:  map[string]map[string]struct{}{},
				aliases: map[string]struct{}{},
			}
			byEntity[key] = a
		}
		a.support++
		a.class[f.Class]++
		a.sources[f.Source] = struct{}{}
		if f.Name != key {
			a.aliases[f.Name] = struct{}{}
		}
		if f.Attr != "" && f.Value != "" {
			vs := a.values[f.Attr]
			if vs == nil {
				vs = map[string]struct{}{}
				a.values[f.Attr] = vs
			}
			vs[f.Value] = struct{}{}
		}
	}
	keys := make([]string, 0, len(byEntity))
	for k := range byEntity {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, name := range keys {
		a := byEntity[name]
		if a.support < cfg.MinSupport || len(a.sources) < cfg.MinSources {
			res.Rejected++
			continue
		}
		e := &Entity{Name: name, Support: a.support, Values: map[string][]string{}}
		for cls, n := range a.class {
			if e.Class == "" || n > a.class[e.Class] || (n == a.class[e.Class] && cls < e.Class) {
				e.Class = cls
			}
		}
		for s := range a.sources {
			e.Sources = append(e.Sources, s)
		}
		sort.Strings(e.Sources)
		for al := range a.aliases {
			e.Aliases = append(e.Aliases, al)
		}
		sort.Strings(e.Aliases)
		for attr, vs := range a.values {
			for v := range vs {
				e.Values[attr] = append(e.Values[attr], v)
			}
			sort.Strings(e.Values[attr])
		}
		res.Entities = append(res.Entities, e)
	}
	sort.Slice(res.Entities, func(i, j int) bool {
		if res.Entities[i].Support != res.Entities[j].Support {
			return res.Entities[i].Support > res.Entities[j].Support
		}
		return res.Entities[i].Name < res.Entities[j].Name
	})
	return res
}

// linkToKnown returns the known entity within the edit-distance budget, or
// "". A mention that is a word-boundary prefix or suffix of a known name (a
// partial mention like "Enel 24" for "University of Enel 24") also links.
func linkToKnown(name string, known []string, maxDist int) string {
	for _, k := range known {
		if withinDistance(name, k, maxDist) {
			return k
		}
		if len(name) >= 4 && (strings.HasSuffix(k, " "+name) || strings.HasPrefix(k, name+" ")) {
			return k
		}
	}
	return ""
}

// nearDuplicate reports whether two unknown mentions are surface variants:
// small edit distance, or one extends the other by a single token.
func nearDuplicate(a, b string, maxDist int) bool {
	if withinDistance(a, b, maxDist) {
		return true
	}
	fa, fb := strings.Fields(a), strings.Fields(b)
	if len(fa) == len(fb)+1 && strings.HasPrefix(a, b+" ") {
		return true
	}
	if len(fb) == len(fa)+1 && strings.HasPrefix(b, a+" ") {
		return true
	}
	return false
}

// withinDistance is an early-exit bounded Levenshtein check.
func withinDistance(a, b string, max int) bool {
	if abs(len(a)-len(b)) > max {
		return false
	}
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > max {
			return false
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)] <= max
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
