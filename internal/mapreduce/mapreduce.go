// Package mapreduce is a deterministic in-process map-shuffle-reduce
// executor. Dong et al. (VLDB'14) scale data-fusion methods to knowledge
// fusion with a MapReduce framework; the fusion methods in internal/fusion
// run on this executor so the same sharded dataflow structure is exercised
// without a cluster. Mapping runs in parallel across workers; the shuffle
// groups by key; reduction runs in parallel but output order is always the
// sorted key order, so results are reproducible.
//
// Work is dispatched in contiguous input chunks of roughly
// len(inputs)/(workers*chunksPerWorker) items rather than one item at a
// time: per-item dispatch cost (channel hand-off, clock reads, histogram
// locks) used to exceed the per-item work itself, which is how the
// parallel pipeline lost to serial execution. Outputs are always written
// by input index, so chunking never changes result order.
package mapreduce

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"akb/internal/obs"
)

// Panic wraps a panic captured inside a worker goroutine. The executor
// re-raises it on the caller's goroutine, so a panicking mapper or reducer
// no longer kills the process outright: callers (such as the pipeline
// supervisor) can recover it like any synchronous panic. Value is the
// original panic value and Stack the worker's stack at capture time.
type Panic struct {
	Value any
	Stack []byte
}

func (p *Panic) Error() string { return fmt.Sprintf("mapreduce worker panic: %v", p.Value) }

func (p *Panic) String() string {
	return fmt.Sprintf("mapreduce worker panic: %v\nworker stack:\n%s", p.Value, p.Stack)
}

// capture runs fn, recording the first panic across workers into caught
// and raising the failed flag so remaining work is skipped.
func capture(once *sync.Once, failed *atomic.Bool, caught **Panic, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			failed.Store(true)
			once.Do(func() {
				if p, ok := r.(*Panic); ok {
					*caught = p // nested executor: keep the innermost capture
					return
				}
				*caught = &Panic{Value: r, Stack: debug.Stack()}
			})
		}
	}()
	fn()
}

// KV is one key/value pair emitted by a mapper.
type KV[V any] struct {
	Key   string
	Value V
}

// Config controls executor parallelism.
type Config struct {
	// Workers is the number of concurrent map (and reduce) workers;
	// defaults to GOMAXPROCS.
	Workers int
	// Obs, when set, records executor telemetry into the registry: worker
	// fanout per phase, per-chunk latency histograms, queue wait (time a
	// chunk spends between submission and worker pickup) and the number of
	// items behind those chunks. nil disables instrumentation with zero
	// overhead on the hot path.
	Obs *obs.Registry
}

// Metric names the executor emits (phase is "map" or "reduce").
const (
	metricFanout    = "akb_mapreduce_fanout"
	metricQueueWait = "akb_mapreduce_queue_wait_seconds"
)

func metricTasks(phase string) string       { return "akb_mapreduce_" + phase + "_tasks_total" }
func metricItems(phase string) string       { return "akb_mapreduce_" + phase + "_items_total" }
func metricTaskSeconds(phase string) string { return "akb_mapreduce_" + phase + "_task_seconds" }

// chunksPerWorker is the dispatch granularity: each phase is split into
// about workers*chunksPerWorker contiguous chunks. Coarse enough that
// hand-off cost amortises across many items, fine enough that an uneven
// chunk cannot leave workers idle for a whole phase tail.
const chunksPerWorker = 4

// phaseObs carries the per-phase instruments, resolved once per phase so
// workers do not hit the registry maps per chunk. A nil *phaseObs records
// nothing.
type phaseObs struct {
	tasks *obs.Counter
	items *obs.Counter
	lat   *obs.Histogram
	wait  *obs.Histogram
}

func newPhaseObs(reg *obs.Registry, phase string, fanout int) *phaseObs {
	if reg == nil {
		return nil
	}
	reg.Histogram(metricFanout, obs.FanoutBuckets()).Observe(float64(fanout))
	return &phaseObs{
		tasks: reg.Counter(metricTasks(phase)),
		items: reg.Counter(metricItems(phase)),
		lat:   reg.Histogram(metricTaskSeconds(phase), obs.TaskLatencyBuckets()),
		wait:  reg.Histogram(metricQueueWait, obs.TaskLatencyBuckets()),
	}
}

// run times one chunk when instrumentation is on; otherwise it just runs it.
func (po *phaseObs) run(enqueued time.Time, items int, fn func()) {
	if po == nil {
		fn()
		return
	}
	start := time.Now()
	po.wait.Observe(start.Sub(enqueued).Seconds())
	fn()
	po.lat.Observe(time.Since(start).Seconds())
	po.tasks.Inc()
	po.items.Add(int64(items))
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// task is one contiguous chunk of input indices [lo, hi) handed to a
// worker; enqueued is set only when the phase is instrumented, so the
// uninstrumented hot path never reads the clock.
type task struct {
	lo, hi   int
	enqueued time.Time
}

// dispatch runs item(i) for every i in [0, n), grouped into contiguous
// chunks. Chunks execute in parallel across min(cfg.Workers, n) workers;
// with one worker they run inline on the caller's goroutine (no
// goroutines, panics propagate synchronously). item is always invoked with
// ascending indices within a chunk, and chunk outputs must be written by
// index, so results are identical at any worker count.
//
// Workers are panic-safe: if item panics, in-flight chunks stop at the
// next item boundary, queued chunks are drained without working, and the
// first captured panic is re-raised on the caller's goroutine as a *Panic.
func dispatch(cfg Config, phase string, n int, item func(i int)) {
	w := cfg.workers()
	if w > n {
		w = n
	}
	po := newPhaseObs(cfg.Obs, phase, w)
	if w <= 1 {
		if po == nil {
			for i := 0; i < n; i++ {
				item(i)
			}
			return
		}
		size := chunkSize(n, 1)
		for lo := 0; lo < n; lo += size {
			hi := min(lo+size, n)
			po.run(time.Now(), hi-lo, func() {
				for i := lo; i < hi; i++ {
					item(i)
				}
			})
		}
		return
	}
	size := chunkSize(n, w)
	nchunks := (n + size - 1) / size
	var (
		wg     sync.WaitGroup
		once   sync.Once
		failed atomic.Bool
		caught *Panic
	)
	// The channel is buffered to hold every chunk: submission never blocks
	// and needs no extra goroutine, and queue wait measures real pickup
	// delay rather than producer back-pressure.
	ch := make(chan task, nchunks)
	for lo := 0; lo < n; lo += size {
		t := task{lo: lo, hi: min(lo+size, n)}
		if po != nil {
			t.enqueued = time.Now()
		}
		ch <- t
	}
	close(ch)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if failed.Load() {
					continue // a sibling panicked: drain without working
				}
				po.run(t.enqueued, t.hi-t.lo, func() {
					capture(&once, &failed, &caught, func() {
						for i := t.lo; i < t.hi; i++ {
							if failed.Load() {
								return // stop promptly mid-chunk
							}
							item(i)
						}
					})
				})
			}
		}()
	}
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
}

// chunkSize is the per-chunk item count for n items on w workers.
func chunkSize(n, w int) int {
	size := n / (w * chunksPerWorker)
	if size < 1 {
		return 1
	}
	return size
}

// Run executes a map-shuffle-reduce job: mapper is applied to every input,
// emitted pairs are grouped by key, and reducer is applied to each group.
// The returned slice concatenates reducer outputs in sorted key order.
//
// Workers are panic-safe: if a mapper or reducer panics, remaining work is
// cancelled and the first captured panic is re-raised on the caller's
// goroutine as a *Panic, instead of crashing the process from a worker.
func Run[I, V, O any](cfg Config, inputs []I, mapper func(I) []KV[V], reducer func(key string, values []V) []O) []O {
	groups := Shuffle(MapPhase(cfg, inputs, mapper))
	return ReducePhase(cfg, groups, reducer)
}

// MapPhase applies mapper to every input in parallel, preserving input
// order in the concatenated output.
func MapPhase[I, V any](cfg Config, inputs []I, mapper func(I) []KV[V]) []KV[V] {
	results := make([][]KV[V], len(inputs))
	dispatch(cfg, "map", len(inputs), func(i int) { results[i] = mapper(inputs[i]) })
	return concat(results)
}

// Map applies fn to every input in parallel and returns the outputs
// aligned with the inputs. Unlike MapPhase it is strictly one-to-one: no
// per-item KV slices exist, the only allocation is the output slice
// itself. Use it for jobs whose "reduce" would be the identity — running
// those through Run paid a full Shuffle for nothing.
func Map[I, O any](cfg Config, inputs []I, fn func(I) O) []O {
	out := make([]O, len(inputs))
	dispatch(cfg, "map", len(inputs), func(i int) { out[i] = fn(inputs[i]) })
	return out
}

// ForEach runs fn(i) for every i in [0, n) in parallel, allocating
// nothing. Callers write results into pre-allocated state indexed by i —
// the shape iterative jobs (like the fusion EM loop) want, where output
// buffers are reused across rounds.
func ForEach(cfg Config, n int, fn func(i int)) {
	dispatch(cfg, "map", n, fn)
}

// concat flattens per-input result slices into one exactly-sized slice:
// summing lengths first avoids the repeated grow-and-copy of appending
// into an unsized accumulator on the hot path.
func concat[T any](results [][]T) []T {
	n := 0
	for _, r := range results {
		n += len(r)
	}
	out := make([]T, 0, n)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// Group is one shuffled key group.
type Group[V any] struct {
	Key    string
	Values []V
}

// Shuffle groups pairs by key. Groups are returned in sorted key order and
// values preserve emission order. Grouping is two-pass: group sizes are
// counted first, then every Values slice is carved out of one shared
// backing array at exact capacity, so no per-key slice ever regrows and
// the whole shuffle costs O(keys) allocations instead of O(pairs).
func Shuffle[V any](pairs []KV[V]) []Group[V] {
	sizes := make(map[string]int, len(pairs))
	for _, p := range pairs {
		sizes[p.Key]++
	}
	keys := make([]string, 0, len(sizes))
	for k := range sizes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	backing := make([]V, 0, len(pairs))
	out := make([]Group[V], len(keys))
	at := make(map[string]int, len(sizes))
	for i, k := range keys {
		start := len(backing)
		backing = backing[:start+sizes[k]]
		out[i] = Group[V]{Key: k, Values: backing[start:len(backing):len(backing)]}
		at[k] = i
	}
	fill := make(map[string]int, len(sizes))
	for _, p := range pairs {
		g := &out[at[p.Key]]
		g.Values[fill[p.Key]] = p.Value
		fill[p.Key]++
	}
	return out
}

// ReducePhase applies reducer to each group in parallel; the concatenated
// output follows the groups' (sorted-key) order.
func ReducePhase[V, O any](cfg Config, groups []Group[V], reducer func(key string, values []V) []O) []O {
	results := make([][]O, len(groups))
	dispatch(cfg, "reduce", len(groups), func(i int) { results[i] = reducer(groups[i].Key, groups[i].Values) })
	return concat(results)
}
