// Package mapreduce is a deterministic in-process map-shuffle-reduce
// executor. Dong et al. (VLDB'14) scale data-fusion methods to knowledge
// fusion with a MapReduce framework; the fusion methods in internal/fusion
// run on this executor so the same sharded dataflow structure is exercised
// without a cluster. Mapping runs in parallel across workers; the shuffle
// groups by key; reduction runs in parallel but output order is always the
// sorted key order, so results are reproducible.
package mapreduce

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"akb/internal/obs"
)

// Panic wraps a panic captured inside a worker goroutine. The executor
// re-raises it on the caller's goroutine, so a panicking mapper or reducer
// no longer kills the process outright: callers (such as the pipeline
// supervisor) can recover it like any synchronous panic. Value is the
// original panic value and Stack the worker's stack at capture time.
type Panic struct {
	Value any
	Stack []byte
}

func (p *Panic) Error() string { return fmt.Sprintf("mapreduce worker panic: %v", p.Value) }

func (p *Panic) String() string {
	return fmt.Sprintf("mapreduce worker panic: %v\nworker stack:\n%s", p.Value, p.Stack)
}

// capture runs fn, recording the first panic across workers into caught
// and raising the failed flag so remaining work is skipped.
func capture(once *sync.Once, failed *atomic.Bool, caught **Panic, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			failed.Store(true)
			once.Do(func() {
				if p, ok := r.(*Panic); ok {
					*caught = p // nested executor: keep the innermost capture
					return
				}
				*caught = &Panic{Value: r, Stack: debug.Stack()}
			})
		}
	}()
	fn()
}

// KV is one key/value pair emitted by a mapper.
type KV[V any] struct {
	Key   string
	Value V
}

// Config controls executor parallelism.
type Config struct {
	// Workers is the number of concurrent map (and reduce) workers;
	// defaults to GOMAXPROCS.
	Workers int
	// Obs, when set, records executor telemetry into the registry: worker
	// fanout per phase, per-task latency histograms and queue wait (time a
	// task spends between submission and worker pickup). nil disables
	// instrumentation with zero overhead on the hot path.
	Obs *obs.Registry
}

// Metric names the executor emits (phase is "map" or "reduce").
const (
	metricFanout    = "akb_mapreduce_fanout"
	metricQueueWait = "akb_mapreduce_queue_wait_seconds"
)

func metricTasks(phase string) string       { return "akb_mapreduce_" + phase + "_tasks_total" }
func metricTaskSeconds(phase string) string { return "akb_mapreduce_" + phase + "_task_seconds" }

// phaseObs carries the per-phase instruments, resolved once per phase so
// workers do not hit the registry maps per task. A nil *phaseObs records
// nothing.
type phaseObs struct {
	tasks *obs.Counter
	lat   *obs.Histogram
	wait  *obs.Histogram
}

func newPhaseObs(reg *obs.Registry, phase string, fanout int) *phaseObs {
	if reg == nil {
		return nil
	}
	reg.Histogram(metricFanout, obs.FanoutBuckets()).Observe(float64(fanout))
	return &phaseObs{
		tasks: reg.Counter(metricTasks(phase)),
		lat:   reg.Histogram(metricTaskSeconds(phase), nil),
		wait:  reg.Histogram(metricQueueWait, nil),
	}
}

// run times one task when instrumentation is on; otherwise it just runs it.
func (po *phaseObs) run(enqueued time.Time, fn func()) {
	if po == nil {
		fn()
		return
	}
	start := time.Now()
	po.wait.Observe(start.Sub(enqueued).Seconds())
	fn()
	po.lat.Observe(time.Since(start).Seconds())
	po.tasks.Inc()
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes a map-shuffle-reduce job: mapper is applied to every input,
// emitted pairs are grouped by key, and reducer is applied to each group.
// The returned slice concatenates reducer outputs in sorted key order.
//
// Workers are panic-safe: if a mapper or reducer panics, remaining work is
// cancelled and the first captured panic is re-raised on the caller's
// goroutine as a *Panic, instead of crashing the process from a worker.
func Run[I, V, O any](cfg Config, inputs []I, mapper func(I) []KV[V], reducer func(key string, values []V) []O) []O {
	groups := Shuffle(MapPhase(cfg, inputs, mapper))
	return ReducePhase(cfg, groups, reducer)
}

// MapPhase applies mapper to every input in parallel, preserving input
// order in the concatenated output.
func MapPhase[I, V any](cfg Config, inputs []I, mapper func(I) []KV[V]) []KV[V] {
	w := cfg.workers()
	if w > len(inputs) {
		w = len(inputs)
	}
	po := newPhaseObs(cfg.Obs, "map", w)
	if w <= 1 {
		var out []KV[V]
		for _, in := range inputs {
			if po == nil {
				out = append(out, mapper(in)...)
				continue
			}
			in := in
			po.run(time.Now(), func() { out = append(out, mapper(in)...) })
		}
		return out
	}
	results := make([][]KV[V], len(inputs))
	var (
		wg     sync.WaitGroup
		once   sync.Once
		failed atomic.Bool
		caught *Panic
	)
	ch := make(chan task)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if failed.Load() {
					continue // a sibling panicked: drain without working
				}
				i := t.index
				po.run(t.enqueued, func() {
					capture(&once, &failed, &caught, func() { results[i] = mapper(inputs[i]) })
				})
			}
		}()
	}
	submit(ch, len(inputs), po != nil, &failed)
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
	return concat(results)
}

// concat flattens per-input result slices into one exactly-sized slice:
// summing lengths first avoids the repeated grow-and-copy of appending
// into an unsized accumulator on the hot path.
func concat[T any](results [][]T) []T {
	n := 0
	for _, r := range results {
		n += len(r)
	}
	out := make([]T, 0, n)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// task is one unit handed to a worker; enqueued is set only when the phase
// is instrumented, so the uninstrumented hot path never reads the clock.
type task struct {
	index    int
	enqueued time.Time
}

// submit feeds n task indices to the workers, stopping early once a worker
// panicked.
func submit(ch chan<- task, n int, timed bool, failed *atomic.Bool) {
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		t := task{index: i}
		if timed {
			t.enqueued = time.Now()
		}
		ch <- t
	}
	close(ch)
}

// Group is one shuffled key group.
type Group[V any] struct {
	Key    string
	Values []V
}

// Shuffle groups pairs by key. Groups are returned in sorted key order and
// values preserve emission order. Grouping is two-pass: group sizes are
// counted first, then every Values slice is carved out of one shared
// backing array at exact capacity, so no per-key slice ever regrows and
// the whole shuffle costs O(keys) allocations instead of O(pairs).
func Shuffle[V any](pairs []KV[V]) []Group[V] {
	sizes := make(map[string]int, len(pairs))
	for _, p := range pairs {
		sizes[p.Key]++
	}
	keys := make([]string, 0, len(sizes))
	for k := range sizes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	backing := make([]V, 0, len(pairs))
	out := make([]Group[V], len(keys))
	at := make(map[string]int, len(sizes))
	for i, k := range keys {
		start := len(backing)
		backing = backing[:start+sizes[k]]
		out[i] = Group[V]{Key: k, Values: backing[start:len(backing):len(backing)]}
		at[k] = i
	}
	fill := make(map[string]int, len(sizes))
	for _, p := range pairs {
		g := &out[at[p.Key]]
		g.Values[fill[p.Key]] = p.Value
		fill[p.Key]++
	}
	return out
}

// ReducePhase applies reducer to each group in parallel; the concatenated
// output follows the groups' (sorted-key) order.
func ReducePhase[V, O any](cfg Config, groups []Group[V], reducer func(key string, values []V) []O) []O {
	w := cfg.workers()
	if w > len(groups) {
		w = len(groups)
	}
	po := newPhaseObs(cfg.Obs, "reduce", w)
	if w <= 1 {
		var out []O
		for _, g := range groups {
			if po == nil {
				out = append(out, reducer(g.Key, g.Values)...)
				continue
			}
			g := g
			po.run(time.Now(), func() { out = append(out, reducer(g.Key, g.Values)...) })
		}
		return out
	}
	results := make([][]O, len(groups))
	var (
		wg     sync.WaitGroup
		once   sync.Once
		failed atomic.Bool
		caught *Panic
	)
	ch := make(chan task)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if failed.Load() {
					continue // a sibling panicked: drain without working
				}
				i := t.index
				po.run(t.enqueued, func() {
					capture(&once, &failed, &caught, func() { results[i] = reducer(groups[i].Key, groups[i].Values) })
				})
			}
		}()
	}
	submit(ch, len(groups), po != nil, &failed)
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
	return concat(results)
}
