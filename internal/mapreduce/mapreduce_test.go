package mapreduce

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRunWordCount(t *testing.T) {
	inputs := []string{"a b a", "b c", "a"}
	got := Run(Config{Workers: 4}, inputs,
		func(line string) []KV[int] {
			var out []KV[int]
			for _, w := range strings.Fields(line) {
				out = append(out, KV[int]{Key: w, Value: 1})
			}
			return out
		},
		func(key string, values []int) []string {
			sum := 0
			for _, v := range values {
				sum += v
			}
			return []string{fmt.Sprintf("%s=%d", key, sum)}
		})
	want := []string{"a=3", "b=2", "c=1"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	got := Run(Config{}, nil,
		func(int) []KV[int] { return nil },
		func(string, []int) []int { return nil })
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestShuffleOrdering(t *testing.T) {
	pairs := []KV[int]{
		{Key: "z", Value: 1}, {Key: "a", Value: 2}, {Key: "z", Value: 3}, {Key: "m", Value: 4},
	}
	groups := Shuffle(pairs)
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	if groups[0].Key != "a" || groups[1].Key != "m" || groups[2].Key != "z" {
		t.Errorf("keys not sorted: %v", groups)
	}
	if len(groups[2].Values) != 2 || groups[2].Values[0] != 1 || groups[2].Values[1] != 3 {
		t.Errorf("value order not preserved: %v", groups[2].Values)
	}
}

func TestMapPhasePreservesInputOrder(t *testing.T) {
	inputs := make([]int, 100)
	for i := range inputs {
		inputs[i] = i
	}
	pairs := MapPhase(Config{Workers: 8}, inputs, func(i int) []KV[int] {
		return []KV[int]{{Key: "k", Value: i}}
	})
	for i, p := range pairs {
		if p.Value != i {
			t.Fatalf("pair %d = %d, order not preserved", i, p.Value)
		}
	}
}

// Property: Run with 1 worker and Run with many workers produce identical
// results for a commutative-input job.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(data []uint8) bool {
		inputs := make([]int, len(data))
		for i, d := range data {
			inputs[i] = int(d) % 16
		}
		job := func(workers int) []string {
			return Run(Config{Workers: workers}, inputs,
				func(i int) []KV[int] {
					return []KV[int]{{Key: fmt.Sprintf("g%d", i%4), Value: i}}
				},
				func(key string, values []int) []string {
					sum := 0
					for _, v := range values {
						sum += v
					}
					return []string{fmt.Sprintf("%s:%d:%d", key, len(values), sum)}
				})
		}
		a, b := job(1), job(8)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// recoverPanic runs fn and returns the recovered *Panic (nil if fn
// returned normally).
func recoverPanic(fn func()) (p *Panic) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if p, ok = r.(*Panic); !ok {
				panic(r)
			}
		}
	}()
	fn()
	return nil
}

func TestPanickingMapperDoesNotKillProcess(t *testing.T) {
	inputs := make([]int, 64)
	for i := range inputs {
		inputs[i] = i
	}
	p := recoverPanic(func() {
		Run(Config{Workers: 4}, inputs,
			func(i int) []KV[int] {
				if i == 17 {
					panic("mapper boom")
				}
				return []KV[int]{{Key: "k", Value: i}}
			},
			func(key string, values []int) []int { return values })
	})
	if p == nil {
		t.Fatal("panic was swallowed instead of re-raised on the caller")
	}
	if p.Value != "mapper boom" {
		t.Errorf("panic value = %v", p.Value)
	}
	if len(p.Stack) == 0 {
		t.Error("worker stack not captured")
	}
}

func TestPanickingReducerDoesNotKillProcess(t *testing.T) {
	inputs := make([]int, 32)
	for i := range inputs {
		inputs[i] = i
	}
	p := recoverPanic(func() {
		Run(Config{Workers: 4}, inputs,
			func(i int) []KV[int] {
				return []KV[int]{{Key: fmt.Sprintf("g%d", i%8), Value: i}}
			},
			func(key string, values []int) []int {
				if key == "g3" {
					panic("reducer boom")
				}
				return values
			})
	})
	if p == nil {
		t.Fatal("reducer panic not re-raised on the caller")
	}
	if p.Value != "reducer boom" {
		t.Errorf("panic value = %v", p.Value)
	}
}

func TestPanicCancelsRemainingWork(t *testing.T) {
	// After the first panic, draining workers must skip remaining inputs;
	// with a single worker the count is deterministic.
	inputs := make([]int, 1000)
	for i := range inputs {
		inputs[i] = i
	}
	// Workers: 2 takes the parallel path (the serial path never spawns
	// goroutines); one of the two panics immediately.
	ran := make([]bool, len(inputs))
	recoverPanic(func() {
		MapPhase(Config{Workers: 2}, inputs, func(i int) []KV[int] {
			if i == 0 {
				panic("early boom")
			}
			ran[i] = true
			time.Sleep(10 * time.Microsecond) // give the capture a chance to raise the flag
			return nil
		})
	})
	count := 0
	for _, r := range ran {
		if r {
			count++
		}
	}
	if count == len(inputs)-1 {
		t.Error("no remaining work was cancelled after the panic")
	}
}

func TestPanicEveryInputStillTerminates(t *testing.T) {
	inputs := make([]int, 100)
	p := recoverPanic(func() {
		MapPhase(Config{Workers: 8}, inputs, func(i int) []KV[int] { panic(i) })
	})
	if p == nil {
		t.Fatal("no panic surfaced")
	}
}

func TestReducePhaseSingleWorker(t *testing.T) {
	groups := []Group[int]{{Key: "a", Values: []int{1, 2}}, {Key: "b", Values: []int{3}}}
	got := ReducePhase(Config{Workers: 1}, groups, func(k string, vs []int) []int {
		return []int{len(vs)}
	})
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("got %v", got)
	}
}

// TestPhaseOutputPreallocated pins the exact-capacity concatenation of
// the parallel phases: output slices are sized by summing per-input
// result lengths, never grown by repeated append, so capacity equals
// length.
func TestPhaseOutputPreallocated(t *testing.T) {
	inputs := make([]int, 64)
	for i := range inputs {
		inputs[i] = i
	}
	pairs := MapPhase(Config{Workers: 8}, inputs, func(i int) []KV[int] {
		out := make([]KV[int], (i%5)+1)
		for j := range out {
			out[j] = KV[int]{Key: fmt.Sprintf("k%d", i%7), Value: i}
		}
		return out
	})
	if cap(pairs) != len(pairs) {
		t.Errorf("MapPhase output cap %d != len %d (not preallocated)", cap(pairs), len(pairs))
	}
	groups := Shuffle(pairs)
	outs := ReducePhase(Config{Workers: 8}, groups, func(key string, values []int) []int {
		return values
	})
	if cap(outs) != len(outs) {
		t.Errorf("ReducePhase output cap %d != len %d (not preallocated)", cap(outs), len(outs))
	}
}

// TestShuffleAllocationBound is the BenchmarkClaimBuilding-style
// allocation assertion for the two-pass shuffle: grouping N pairs over K
// keys costs O(K) allocations (count map, key slice, one shared backing
// array, group headers), not one growth chain per key.
func TestShuffleAllocationBound(t *testing.T) {
	const pairsN, keysN = 4096, 16
	pairs := make([]KV[int], pairsN)
	for i := range pairs {
		pairs[i] = KV[int]{Key: fmt.Sprintf("key-%02d", i%keysN), Value: i}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if got := Shuffle(pairs); len(got) != keysN {
			t.Fatalf("got %d groups", len(got))
		}
	})
	// Three maps (sizes, at, fill) + keys + backing + groups + map
	// internals: comfortably under two allocations per key. The old
	// append-grown shuffle cost ~8 growths per key on top of the map
	// churn (>130 allocs for this shape).
	if allocs > 3*keysN {
		t.Errorf("Shuffle allocates %.0f times for %d keys, want <= %d", allocs, keysN, 3*keysN)
	}
}

// TestShuffleValuesCapped ensures appending to one group's Values cannot
// bleed into the next group's share of the pooled backing array.
func TestShuffleValuesCapped(t *testing.T) {
	groups := Shuffle([]KV[int]{{Key: "a", Value: 1}, {Key: "b", Value: 2}})
	_ = append(groups[0].Values, 99)
	if groups[1].Values[0] != 2 {
		t.Errorf("append to group a overwrote group b: %v", groups[1].Values)
	}
}

// TestForEachSerialAllocationFree pins the serial fast path: an
// uninstrumented single-worker ForEach is a bare loop with no channel,
// goroutine, or per-item allocations.
func TestForEachSerialAllocationFree(t *testing.T) {
	sum := 0
	body := func(i int) { sum += i } // hoisted so the closure itself isn't counted
	allocs := testing.AllocsPerRun(20, func() {
		ForEach(Config{Workers: 1}, 1024, body)
	})
	if allocs != 0 {
		t.Errorf("serial ForEach allocates %.0f times, want 0", allocs)
	}
}

// TestMapAllocationBound pins Map's allocation behaviour: one output
// slice plus per-chunk (not per-item) dispatch overhead.
func TestMapAllocationBound(t *testing.T) {
	inputs := make([]int, 4096)
	for i := range inputs {
		inputs[i] = i
	}
	serial := testing.AllocsPerRun(20, func() {
		Map(Config{Workers: 1}, inputs, func(i int) int { return i * 2 })
	})
	// The output slice plus the escaping per-item closure handed to
	// dispatch.
	if serial > 2 {
		t.Errorf("serial Map allocates %.0f times, want <= 2", serial)
	}
	parallel := testing.AllocsPerRun(20, func() {
		Map(Config{Workers: 4}, inputs, func(i int) int { return i * 2 })
	})
	// Output slice + task channel + worker goroutines + ~workers×4 chunk
	// tasks; far below one allocation per item (4096).
	if parallel > 64 {
		t.Errorf("parallel Map allocates %.0f times for %d items, want <= 64", parallel, len(inputs))
	}
}
