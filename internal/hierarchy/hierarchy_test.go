package hierarchy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func locationForest() *Forest {
	f := NewForest()
	f.MustAddChain("Adelaide", "South Australia", "Australia")
	f.MustAddChain("Wuhan", "Hubei", "China")
	f.MustAddChain("Melbourne", "Victoria", "Australia")
	return f
}

func TestAddEdgeRejectsSelfAndCycle(t *testing.T) {
	f := NewForest()
	if err := f.AddEdge("a", "a"); err == nil {
		t.Error("self edge accepted")
	}
	if err := f.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddEdge("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddEdge("c", "a"); err == nil {
		t.Error("cycle accepted")
	}
}

func TestAddEdgeRejectsSecondParent(t *testing.T) {
	f := NewForest()
	if err := f.AddEdge("x", "p1"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddEdge("x", "p1"); err != nil {
		t.Error("idempotent re-add rejected")
	}
	if err := f.AddEdge("x", "p2"); err == nil {
		t.Error("second parent accepted")
	}
}

func TestAncestors(t *testing.T) {
	f := locationForest()
	got := f.Ancestors("Adelaide")
	want := []string{"South Australia", "Australia"}
	if len(got) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ancestors[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if len(f.Ancestors("Australia")) != 0 {
		t.Error("root must have no ancestors")
	}
	if len(f.Ancestors("unknown")) != 0 {
		t.Error("unknown value must have no ancestors")
	}
}

func TestIsAncestorAndCompatible(t *testing.T) {
	f := locationForest()
	if !f.IsAncestor("Australia", "Adelaide") {
		t.Error("Australia should be ancestor of Adelaide")
	}
	if f.IsAncestor("Adelaide", "Australia") {
		t.Error("Adelaide is not ancestor of Australia")
	}
	if f.IsAncestor("China", "Adelaide") {
		t.Error("cross-tree ancestry")
	}
	if !f.Compatible("Wuhan", "China") || !f.Compatible("China", "Wuhan") {
		t.Error("Wuhan/China must be compatible (the paper's example)")
	}
	if f.Compatible("Adelaide", "Melbourne") {
		t.Error("siblings under Australia are not compatible")
	}
	if !f.Compatible("Adelaide", "Adelaide") {
		t.Error("value must be compatible with itself")
	}
}

func TestMostSpecific(t *testing.T) {
	f := locationForest()
	if v, ok := f.MostSpecific("Wuhan", "China"); !ok || v != "Wuhan" {
		t.Errorf("MostSpecific(Wuhan, China) = %q, %v", v, ok)
	}
	if v, ok := f.MostSpecific("China", "Wuhan"); !ok || v != "Wuhan" {
		t.Errorf("MostSpecific(China, Wuhan) = %q, %v", v, ok)
	}
	if _, ok := f.MostSpecific("Wuhan", "Adelaide"); ok {
		t.Error("incompatible values reported specific")
	}
	if v, ok := f.MostSpecific("X", "X"); !ok || v != "X" {
		t.Error("equal unknown values must be compatible")
	}
}

func TestDepthAndRoot(t *testing.T) {
	f := locationForest()
	cases := []struct {
		v     string
		depth int
		root  string
	}{
		{"Australia", 0, "Australia"},
		{"South Australia", 1, "Australia"},
		{"Adelaide", 2, "Australia"},
		{"unknown", 0, "unknown"},
	}
	for _, c := range cases {
		if d := f.Depth(c.v); d != c.depth {
			t.Errorf("Depth(%q) = %d, want %d", c.v, d, c.depth)
		}
		if r := f.Root(c.v); r != c.root {
			t.Errorf("Root(%q) = %q, want %q", c.v, r, c.root)
		}
	}
	// Depth cache must be invalidated by new edges.
	f2 := NewForest()
	if err := f2.AddEdge("b", "c"); err != nil {
		t.Fatal(err)
	}
	_ = f2.Depth("b")
	if err := f2.AddEdge("c", "d"); err != nil {
		t.Fatal(err)
	}
	if d := f2.Depth("b"); d != 2 {
		t.Errorf("Depth after new edge = %d, want 2", d)
	}
}

func TestLowestCommonAncestor(t *testing.T) {
	f := locationForest()
	if lca, ok := f.LowestCommonAncestor("Adelaide", "Melbourne"); !ok || lca != "Australia" {
		t.Errorf("LCA(Adelaide, Melbourne) = %q, %v", lca, ok)
	}
	if lca, ok := f.LowestCommonAncestor("Adelaide", "South Australia"); !ok || lca != "South Australia" {
		t.Errorf("LCA(Adelaide, South Australia) = %q, %v", lca, ok)
	}
	if lca, ok := f.LowestCommonAncestor("Adelaide", "Adelaide"); !ok || lca != "Adelaide" {
		t.Errorf("LCA self = %q, %v", lca, ok)
	}
	if _, ok := f.LowestCommonAncestor("Adelaide", "Wuhan"); ok {
		t.Error("cross-tree LCA must not exist")
	}
}

func TestClusterCompatible(t *testing.T) {
	f := locationForest()
	groups := f.ClusterCompatible([]string{"Wuhan", "Adelaide", "China", "Australia", "South Australia", "Wuhan"})
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(groups), groups)
	}
	// Groups sorted by most general member: Australia group then China group.
	if groups[0][0] != "Australia" {
		t.Errorf("first group head = %q, want Australia", groups[0][0])
	}
	if groups[1][0] != "China" {
		t.Errorf("second group head = %q, want China", groups[1][0])
	}
	if len(groups[1]) != 2 { // China, Wuhan (dedup)
		t.Errorf("China group = %v, want [China Wuhan]", groups[1])
	}
}

func TestKnownAndValues(t *testing.T) {
	f := locationForest()
	if !f.Known("Australia") || !f.Known("Adelaide") {
		t.Error("values in forest not Known")
	}
	if f.Known("Mars") {
		t.Error("unknown value reported Known")
	}
	vals := f.Values()
	if len(vals) != 8 {
		t.Errorf("Values = %d, want 8: %v", len(vals), vals)
	}
	if f.Len() != 8 {
		t.Errorf("Len = %d, want 8", f.Len())
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1] >= vals[i] {
			t.Error("Values not sorted")
		}
	}
}

func TestChildren(t *testing.T) {
	f := locationForest()
	got := f.Children("Australia")
	if len(got) != 2 || got[0] != "South Australia" || got[1] != "Victoria" {
		t.Errorf("Children(Australia) = %v", got)
	}
	if f.Children("Adelaide") != nil {
		t.Error("leaf must have no children")
	}
}

// Property: in a randomly built forest, Compatible is symmetric, and for
// compatible pairs MostSpecific returns the deeper of the two.
func TestCompatibleSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fo := NewForest()
		names := []string{"a", "b", "c", "d", "e", "g", "h", "i"}
		for i := 1; i < len(names); i++ {
			// Random parent among earlier names keeps it acyclic.
			_ = fo.AddEdge(names[i], names[r.Intn(i)])
		}
		for i := 0; i < 20; i++ {
			x, y := names[r.Intn(len(names))], names[r.Intn(len(names))]
			if fo.Compatible(x, y) != fo.Compatible(y, x) {
				return false
			}
			if fo.Compatible(x, y) {
				ms, ok := fo.MostSpecific(x, y)
				if !ok {
					return false
				}
				if fo.Depth(ms) < fo.Depth(x) || fo.Depth(ms) < fo.Depth(y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
