// Package hierarchy models hierarchical value spaces. The paper observes
// that extracted values are often organised in generalisation chains — e.g.
// Adelaide ⊂ South Australia ⊂ Australia in the location hierarchy — so even
// a functional attribute like "birth place" admits multiple simultaneously
// true values at different abstraction levels. Naive fusion treats such
// values as conflicting; hierarchy-aware fusion (internal/fusion) uses this
// package to recognise ancestor/descendant compatibility.
package hierarchy

import (
	"fmt"
	"sort"
)

// Forest is a set of rooted trees over string-identified values. Each value
// has at most one parent (a strict hierarchy). The zero Forest is not usable;
// call NewForest.
type Forest struct {
	parent   map[string]string
	children map[string][]string
	depth    map[string]int
}

// NewForest returns an empty forest.
func NewForest() *Forest {
	return &Forest{
		parent:   make(map[string]string),
		children: make(map[string][]string),
		depth:    make(map[string]int),
	}
}

// AddEdge records that child's immediate generalisation is parent
// (child ⊂ parent). It returns an error if the child already has a different
// parent or if the edge would create a cycle.
func (f *Forest) AddEdge(child, parent string) error {
	if child == parent {
		return fmt.Errorf("hierarchy: self edge %q", child)
	}
	if prev, ok := f.parent[child]; ok {
		if prev == parent {
			return nil
		}
		return fmt.Errorf("hierarchy: %q already has parent %q, cannot add %q", child, prev, parent)
	}
	// Cycle check: walk up from parent; if we reach child, reject.
	for cur := parent; cur != ""; cur = f.parent[cur] {
		if cur == child {
			return fmt.Errorf("hierarchy: edge %q -> %q would create a cycle", child, parent)
		}
	}
	f.parent[child] = parent
	f.children[parent] = append(f.children[parent], child)
	sort.Strings(f.children[parent])
	f.invalidateDepths()
	return nil
}

// MustAddChain adds a generalisation chain from most specific to most
// general, e.g. MustAddChain("Adelaide", "South Australia", "Australia").
// It panics on structural errors, which indicate programmer mistakes in
// static hierarchy definitions.
func (f *Forest) MustAddChain(values ...string) {
	for i := 0; i+1 < len(values); i++ {
		if err := f.AddEdge(values[i], values[i+1]); err != nil {
			panic(err)
		}
	}
}

func (f *Forest) invalidateDepths() {
	for k := range f.depth {
		delete(f.depth, k)
	}
}

// Known reports whether the value participates in the forest at all
// (as child or parent).
func (f *Forest) Known(v string) bool {
	if _, ok := f.parent[v]; ok {
		return true
	}
	_, ok := f.children[v]
	return ok
}

// Parent returns the immediate generalisation of v and whether one exists.
func (f *Forest) Parent(v string) (string, bool) {
	p, ok := f.parent[v]
	return p, ok
}

// Children returns the immediate specialisations of v in sorted order.
// The returned slice must not be modified.
func (f *Forest) Children(v string) []string { return f.children[v] }

// Ancestors returns the chain of generalisations of v from immediate parent
// to root, excluding v itself.
func (f *Forest) Ancestors(v string) []string {
	var out []string
	for cur, ok := f.parent[v]; ok; cur, ok = f.parent[cur] {
		out = append(out, cur)
	}
	return out
}

// IsAncestor reports whether anc is a strict ancestor (generalisation) of v.
func (f *Forest) IsAncestor(anc, v string) bool {
	for cur, ok := f.parent[v]; ok; cur, ok = f.parent[cur] {
		if cur == anc {
			return true
		}
	}
	return false
}

// Compatible reports whether two values can simultaneously be true for a
// functional attribute: they are equal, or one generalises the other.
func (f *Forest) Compatible(a, b string) bool {
	return a == b || f.IsAncestor(a, b) || f.IsAncestor(b, a)
}

// MostSpecific returns, among compatible values, the one deepest in the
// hierarchy; if the values are incompatible it returns "", false.
func (f *Forest) MostSpecific(a, b string) (string, bool) {
	switch {
	case a == b:
		return a, true
	case f.IsAncestor(a, b):
		return b, true
	case f.IsAncestor(b, a):
		return a, true
	default:
		return "", false
	}
}

// Depth returns the distance of v from its root (root has depth 0). Unknown
// values have depth 0.
func (f *Forest) Depth(v string) int {
	if d, ok := f.depth[v]; ok {
		return d
	}
	d := 0
	for cur, ok := f.parent[v]; ok; cur, ok = f.parent[cur] {
		d++
		_ = cur
	}
	f.depth[v] = d
	return d
}

// Root returns the most general ancestor of v (v itself if it has no parent).
func (f *Forest) Root(v string) string {
	cur := v
	for {
		p, ok := f.parent[cur]
		if !ok {
			return cur
		}
		cur = p
	}
}

// LowestCommonAncestor returns the deepest value that generalises both a and
// b (possibly one of them), or "", false if they are in different trees.
func (f *Forest) LowestCommonAncestor(a, b string) (string, bool) {
	onPathA := map[string]struct{}{a: {}}
	for _, anc := range f.Ancestors(a) {
		onPathA[anc] = struct{}{}
	}
	if _, ok := onPathA[b]; ok {
		return b, true
	}
	for cur, ok := b, true; ok; cur, ok = f.parent[cur] {
		if _, hit := onPathA[cur]; hit {
			return cur, true
		}
	}
	return "", false
}

// ClusterCompatible partitions values into groups of pairwise-compatible
// values (each group shares a single hierarchy path). Values unknown to the
// forest each form singleton groups unless equal. Within each group values
// are ordered most-general first. Groups are ordered by their most general
// member for determinism.
func (f *Forest) ClusterCompatible(values []string) [][]string {
	// Union values by hierarchy path: two values join the same cluster when
	// one is an ancestor of the other.
	reps := map[string]int{}
	var groups [][]string
	for _, v := range values {
		placed := false
		for gi := range groups {
			if f.Compatible(groups[gi][0], v) || f.anyCompatible(groups[gi], v) {
				groups[gi] = append(groups[gi], v)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []string{v})
			reps[v] = len(groups) - 1
		}
	}
	for gi := range groups {
		g := groups[gi]
		sort.Slice(g, func(i, j int) bool {
			di, dj := f.Depth(g[i]), f.Depth(g[j])
			if di != dj {
				return di < dj
			}
			return g[i] < g[j]
		})
		groups[gi] = dedupSorted(g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

func (f *Forest) anyCompatible(group []string, v string) bool {
	for _, g := range group {
		if f.Compatible(g, v) {
			return true
		}
	}
	return false
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Values returns every value known to the forest in sorted order.
func (f *Forest) Values() []string {
	set := map[string]struct{}{}
	for c, p := range f.parent {
		set[c] = struct{}{}
		set[p] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of distinct values known to the forest.
func (f *Forest) Len() int { return len(f.Values()) }
