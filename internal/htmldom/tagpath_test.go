package htmldom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func infoboxDoc() *Node {
	return Parse(`<html><body>
	<h1 class="entity">Casablanca</h1>
	<table class="infobox">
	  <tr><th>Director</th><td>Michael Curtiz</td></tr>
	  <tr><th>Genre</th><td><b>Drama</b></td></tr>
	</table>
	</body></html>`)
}

func TestPathBetweenSameRow(t *testing.T) {
	doc := infoboxDoc()
	ths := doc.FindAll("th")
	tds := doc.FindAll("td")
	p, ok := PathBetween(ths[0], tds[0])
	if !ok {
		t.Fatal("no path between th and td in same row")
	}
	if p.Apex != "tr" {
		t.Errorf("apex = %q, want tr", p.Apex)
	}
	if p.String() != "th^tr(td)" {
		t.Errorf("path = %q, want th^tr(td)", p.String())
	}
}

func TestPathBetweenAcrossRows(t *testing.T) {
	doc := infoboxDoc()
	h1 := doc.Find("h1")
	tds := doc.FindAll("td")
	p0, ok0 := PathBetween(h1, tds[0])
	p1, ok1 := PathBetween(h1, tds[1])
	if !ok0 || !ok1 {
		t.Fatal("paths not found")
	}
	if p0.Apex != "body" || p1.Apex != "body" {
		t.Errorf("apexes = %q, %q; want body", p0.Apex, p1.Apex)
	}
	// Second path passes through <b>; after normalisation both are equal.
	if !p0.Equal(p1) {
		t.Errorf("template paths should be equal after normalisation: %q vs %q",
			p0.Normalize().String(), p1.Normalize().String())
	}
	if Similarity(p0, p1) != 1 {
		t.Errorf("similarity = %g, want 1", Similarity(p0, p1))
	}
}

func TestPathBetweenTextNodes(t *testing.T) {
	doc := infoboxDoc()
	texts := doc.TextNodes()
	// Find the text nodes for "Director" and "Michael Curtiz".
	var dir, curtiz *Node
	for _, tn := range texts {
		switch NormalizeSpace(tn.Text) {
		case "Director":
			dir = tn
		case "Michael Curtiz":
			curtiz = tn
		}
	}
	if dir == nil || curtiz == nil {
		t.Fatal("text nodes not found")
	}
	p, ok := PathBetween(dir, curtiz)
	if !ok || p.Apex != "tr" {
		t.Fatalf("path between text nodes = %v, %v", p, ok)
	}
}

func TestPathBetweenDifferentTrees(t *testing.T) {
	a := Parse(`<p>one</p>`).Find("p")
	b := Parse(`<p>two</p>`).Find("p")
	if _, ok := PathBetween(a, b); ok {
		t.Error("path found across distinct trees")
	}
}

func TestPathSelf(t *testing.T) {
	doc := infoboxDoc()
	h1 := doc.Find("h1")
	p, ok := PathBetween(h1, h1)
	if !ok || p.Apex != "h1" || len(p.Up) != 0 || len(p.Down) != 0 {
		t.Errorf("self path = %+v, %v", p, ok)
	}
	if p.Len() != 1 {
		t.Errorf("self path Len = %d, want 1", p.Len())
	}
}

func TestNormalizeRemovesNoisyTags(t *testing.T) {
	p := TagPath{Up: []string{"b", "td"}, Apex: "tr", Down: []string{"span", "td", "i"}}
	n := p.Normalize()
	if len(n.Up) != 1 || n.Up[0] != "td" {
		t.Errorf("normalised up = %v", n.Up)
	}
	if len(n.Down) != 1 || n.Down[0] != "td" {
		t.Errorf("normalised down = %v", n.Down)
	}
}

func TestSimilarityBounds(t *testing.T) {
	a := TagPath{Up: []string{"td"}, Apex: "tr", Down: []string{"td"}}
	b := TagPath{Up: []string{"li"}, Apex: "ul", Down: []string{"li"}}
	if s := Similarity(a, a); s != 1 {
		t.Errorf("self similarity = %g", s)
	}
	if s := Similarity(a, b); s != 0 {
		t.Errorf("disjoint similarity = %g, want 0", s)
	}
	c := TagPath{Up: []string{"td"}, Apex: "tr", Down: []string{"th"}}
	s := Similarity(a, c)
	if s <= 0 || s >= 1 {
		t.Errorf("one-step-different similarity = %g, want in (0,1)", s)
	}
}

func TestSimilarityPropertyBounds(t *testing.T) {
	tags := []string{"div", "td", "tr", "table", "ul", "li", "p", "b"}
	gen := func(r *rand.Rand) TagPath {
		mk := func() []string {
			n := r.Intn(4)
			out := make([]string, n)
			for i := range out {
				out[i] = tags[r.Intn(len(tags))]
			}
			return out
		}
		return TagPath{Up: mk(), Apex: tags[r.Intn(len(tags))], Down: mk()}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := gen(r), gen(r)
		s := Similarity(p, q)
		if s < 0 || s > 1 {
			return false
		}
		// Symmetry.
		if s != Similarity(q, p) {
			return false
		}
		// Identity.
		return Similarity(p, p) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPathToRoot(t *testing.T) {
	doc := infoboxDoc()
	td := doc.FindAll("td")[0]
	got := PathToRoot(td)
	want := []string{"td", "tr", "table", "body", "html"}
	if len(got) != len(want) {
		t.Fatalf("PathToRoot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 1},
		{nil, []string{"a", "b"}, 2},
		{[]string{"a", "b", "c"}, []string{"a", "x", "c"}, 1},
		{[]string{"a", "b"}, []string{"b", "a"}, 2},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 0},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
