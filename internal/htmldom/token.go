// Package htmldom implements an HTML tokenizer, a DOM tree builder, and the
// tag-path machinery used by the DOM-tree attribute extractor (Algorithm 1 in
// the paper). It is written from scratch against a pragmatic subset of HTML:
// start/end/self-closing tags with attributes, text, comments, doctype, void
// elements, and implicit closing for common table/list/paragraph tags. That
// subset covers everything the synthetic website generator (internal/webgen)
// produces and the regular template-driven pages the paper's algorithm
// targets.
package htmldom

import (
	"strings"
)

// TokenKind enumerates the token types produced by the tokenizer.
type TokenKind uint8

const (
	// TokenText is a run of character data between tags.
	TokenText TokenKind = iota
	// TokenStartTag is an opening tag, possibly with attributes.
	TokenStartTag
	// TokenEndTag is a closing tag.
	TokenEndTag
	// TokenSelfClosing is a tag closed inline, e.g. <br/>.
	TokenSelfClosing
	// TokenComment is an HTML comment.
	TokenComment
	// TokenDoctype is a <!DOCTYPE ...> declaration.
	TokenDoctype
)

// String returns a readable token-kind name.
func (k TokenKind) String() string {
	switch k {
	case TokenText:
		return "text"
	case TokenStartTag:
		return "start"
	case TokenEndTag:
		return "end"
	case TokenSelfClosing:
		return "selfclosing"
	case TokenComment:
		return "comment"
	case TokenDoctype:
		return "doctype"
	default:
		return "unknown"
	}
}

// Attr is a single tag attribute.
type Attr struct {
	Key string
	Val string
}

// Token is one lexical unit of an HTML document.
type Token struct {
	Kind TokenKind
	// Data is the tag name (lowercased) for tag tokens, the text content for
	// text tokens, or the raw body for comments/doctype.
	Data  string
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it is present.
func (t Token) Attr(key string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Tokenize splits an HTML document into tokens. It never fails: malformed
// markup degrades to text tokens, mirroring browser resilience.
func Tokenize(src string) []Token {
	var out []Token
	i := 0
	for i < len(src) {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			out = appendText(out, src[i:])
			break
		}
		if lt > 0 {
			out = appendText(out, src[i:i+lt])
			i += lt
		}
		// src[i] == '<'
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				out = append(out, Token{Kind: TokenComment, Data: src[i+4:]})
				break
			}
			out = append(out, Token{Kind: TokenComment, Data: src[i+4 : i+4+end]})
			i += 4 + end + 3
			continue
		}
		if len(src) > i+1 && src[i+1] == '!' {
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				out = appendText(out, src[i:])
				break
			}
			out = append(out, Token{Kind: TokenDoctype, Data: strings.TrimSpace(src[i+2 : i+end])})
			i += end + 1
			continue
		}
		gt := strings.IndexByte(src[i:], '>')
		if gt < 0 {
			out = appendText(out, src[i:])
			break
		}
		raw := src[i+1 : i+gt]
		i += gt + 1
		tok, ok := parseTag(raw)
		if !ok {
			out = appendText(out, "<"+raw+">")
			continue
		}
		out = append(out, tok)
		// Raw-text elements: script and style content is opaque.
		if tok.Kind == TokenStartTag && (tok.Data == "script" || tok.Data == "style") {
			closer := "</" + tok.Data
			idx := indexFold(src[i:], closer)
			if idx < 0 {
				out = appendText(out, src[i:])
				break
			}
			if idx > 0 {
				out = append(out, Token{Kind: TokenText, Data: src[i : i+idx]})
			}
			i += idx
		}
	}
	return out
}

func appendText(out []Token, text string) []Token {
	if text == "" {
		return out
	}
	return append(out, Token{Kind: TokenText, Data: UnescapeEntities(text)})
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(haystack, needle string) int {
	h := strings.ToLower(haystack)
	return strings.Index(h, strings.ToLower(needle))
}

func parseTag(raw string) (Token, bool) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return Token{}, false
	}
	kind := TokenStartTag
	if raw[0] == '/' {
		kind = TokenEndTag
		raw = strings.TrimSpace(raw[1:])
	} else if strings.HasSuffix(raw, "/") {
		kind = TokenSelfClosing
		raw = strings.TrimSpace(raw[:len(raw)-1])
	}
	if raw == "" {
		return Token{}, false
	}
	// Tag name: letters, digits, '-'.
	n := 0
	for n < len(raw) && isTagNameChar(raw[n]) {
		n++
	}
	if n == 0 {
		return Token{}, false
	}
	tok := Token{Kind: kind, Data: strings.ToLower(raw[:n])}
	if kind == TokenEndTag {
		return tok, true
	}
	tok.Attrs = parseAttrs(raw[n:])
	return tok, true
}

func isTagNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-'
}

func parseAttrs(s string) []Attr {
	var attrs []Attr
	i := 0
	for i < len(s) {
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) {
			break
		}
		// Attribute name.
		start := i
		for i < len(s) && s[i] != '=' && !isSpace(s[i]) {
			i++
		}
		name := strings.ToLower(s[start:i])
		if name == "" {
			i++
			continue
		}
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			attrs = append(attrs, Attr{Key: name})
			continue
		}
		i++ // consume '='
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		var val string
		if i < len(s) && (s[i] == '"' || s[i] == '\'') {
			quote := s[i]
			i++
			end := strings.IndexByte(s[i:], quote)
			if end < 0 {
				val = s[i:]
				i = len(s)
			} else {
				val = s[i : i+end]
				i += end + 1
			}
		} else {
			start = i
			for i < len(s) && !isSpace(s[i]) {
				i++
			}
			val = s[start:i]
		}
		attrs = append(attrs, Attr{Key: name, Val: UnescapeEntities(val)})
	}
	return attrs
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&",
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&nbsp;", " ",
)

var escapeReplacer = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
)

// UnescapeEntities decodes the named character references produced by
// EscapeText plus &nbsp; and numeric apostrophes.
func UnescapeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	return entityReplacer.Replace(s)
}

// EscapeText encodes text so it can be embedded in an HTML document.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, `&<>"`) {
		return s
	}
	return escapeReplacer.Replace(s)
}
