package htmldom

import (
	"strings"
)

// NodeKind enumerates DOM node types.
type NodeKind uint8

const (
	// ElementNode is a tag with children.
	ElementNode NodeKind = iota
	// TextNode is character data.
	TextNode
	// CommentNode is an HTML comment.
	CommentNode
	// DocumentNode is the synthetic root of a parsed document.
	DocumentNode
)

// Node is a node of the DOM tree.
type Node struct {
	Kind NodeKind
	// Tag is the element name for ElementNode ("" otherwise).
	Tag string
	// Text is the character data for TextNode and CommentNode.
	Text string
	// Attrs are the element attributes.
	Attrs []Attr

	Parent   *Node
	Children []*Node
	// Index is the position of this node among its parent's children.
	Index int
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AppendChild attaches child as the last child of n.
func (n *Node) AppendChild(child *Node) {
	child.Parent = n
	child.Index = len(n.Children)
	n.Children = append(n.Children, child)
}

// InnerText concatenates all descendant text with single-space normalisation.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.collectText(&b)
	return NormalizeSpace(b.String())
}

func (n *Node) collectText(b *strings.Builder) {
	if n.Kind == TextNode {
		b.WriteString(n.Text)
		b.WriteByte(' ')
		return
	}
	for _, c := range n.Children {
		c.collectText(b)
	}
}

// NormalizeSpace collapses runs of whitespace into single spaces and trims.
func NormalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Walk visits n and all its descendants in document order. If fn returns
// false for a node its subtree is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// TextNodes returns every descendant text node with non-empty normalised
// content, in document order.
func (n *Node) TextNodes() []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Kind == TextNode && NormalizeSpace(c.Text) != "" {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Find returns the first descendant element with the given tag, or nil.
func (n *Node) Find(tag string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if found != nil {
			return false
		}
		if c.Kind == ElementNode && c.Tag == tag {
			found = c
			return false
		}
		return true
	})
	return found
}

// FindAll returns every descendant element with the given tag in document
// order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Kind == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// FindByAttr returns every descendant element whose attribute key equals val.
func (n *Node) FindByAttr(key, val string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Kind == ElementNode {
			if v, ok := c.Attr(key); ok && v == val {
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// Render serialises the subtree back to HTML.
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch n.Kind {
	case DocumentNode:
		for _, c := range n.Children {
			c.render(b)
		}
	case TextNode:
		// Script and style bodies are raw text in HTML: the tokenizer reads
		// them without entity decoding, so rendering must not escape them.
		if n.Parent != nil && (n.Parent.Tag == "script" || n.Parent.Tag == "style") {
			b.WriteString(n.Text)
		} else {
			b.WriteString(EscapeText(n.Text))
		}
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Text)
		b.WriteString("-->")
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			b.WriteString(`="`)
			b.WriteString(EscapeText(a.Val))
			b.WriteByte('"')
		}
		if voidElements[n.Tag] {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		for _, c := range n.Children {
			c.render(b)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}

// NewElement builds an element node with optional attributes given as
// key, value pairs.
func NewElement(tag string, kv ...string) *Node {
	n := &Node{Kind: ElementNode, Tag: tag}
	for i := 0; i+1 < len(kv); i += 2 {
		n.Attrs = append(n.Attrs, Attr{Key: kv[i], Val: kv[i+1]})
	}
	return n
}

// NewText builds a text node.
func NewText(text string) *Node { return &Node{Kind: TextNode, Text: text} }

// Depth returns the number of ancestors of n.
func (n *Node) Depth() int {
	d := 0
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		d++
	}
	return d
}

// Root returns the topmost ancestor of n.
func (n *Node) Root() *Node {
	cur := n
	for cur.Parent != nil {
		cur = cur.Parent
	}
	return cur
}
