package htmldom

// voidElements never have children; a start tag is complete by itself.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// impliedEnd lists tags whose open instance is implicitly closed when a
// sibling of the same group starts (a small practical subset of the HTML5
// tree-construction rules).
var impliedEnd = map[string]map[string]bool{
	"li":     {"li": true},
	"p":      {"p": true, "div": true, "table": true, "ul": true, "ol": true, "h1": true, "h2": true, "h3": true},
	"td":     {"td": true, "th": true, "tr": true},
	"th":     {"td": true, "th": true, "tr": true},
	"tr":     {"tr": true},
	"option": {"option": true},
	"dt":     {"dt": true, "dd": true},
	"dd":     {"dt": true, "dd": true},
}

// Parse builds a DOM tree from HTML source. The returned node is a
// DocumentNode whose children are the top-level nodes. Parsing is resilient:
// stray end tags are ignored and unclosed elements are closed at EOF.
func Parse(src string) *Node {
	doc := &Node{Kind: DocumentNode}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	for _, tok := range Tokenize(src) {
		switch tok.Kind {
		case TokenText:
			// Skip pure-whitespace runs between elements to keep trees
			// compact; meaningful text always has non-space characters.
			if NormalizeSpace(tok.Data) == "" {
				continue
			}
			top().AppendChild(&Node{Kind: TextNode, Text: tok.Data})
		case TokenComment:
			top().AppendChild(&Node{Kind: CommentNode, Text: tok.Data})
		case TokenDoctype:
			// Dropped: the tree does not model doctypes.
		case TokenSelfClosing:
			el := &Node{Kind: ElementNode, Tag: tok.Data, Attrs: tok.Attrs}
			top().AppendChild(el)
		case TokenStartTag:
			// Apply implied-end rules: e.g. a new <li> closes an open <li>.
			for len(stack) > 1 {
				open := top().Tag
				if closers, ok := impliedEnd[open]; ok && closers[tok.Data] {
					stack = stack[:len(stack)-1]
					continue
				}
				break
			}
			el := &Node{Kind: ElementNode, Tag: tok.Data, Attrs: tok.Attrs}
			top().AppendChild(el)
			if !voidElements[tok.Data] {
				stack = append(stack, el)
			}
		case TokenEndTag:
			// Pop to the matching open tag if one exists; otherwise ignore.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}
