package htmldom

import (
	"strings"
)

// TagPath is the tag-level path between two nodes in a DOM tree: the
// sequence of tags climbed from the start node up to the lowest common
// ancestor, followed by the sequence descended to the end node. It is the
// unit Algorithm 1 induces patterns over: on a template-driven page the path
// between an entity name node and each attribute node is highly regular.
type TagPath struct {
	// Up holds the tags of the nodes climbed through, starting at the start
	// node's element (for text nodes, their parent element) and ending just
	// below the common ancestor.
	Up []string
	// Apex is the tag of the lowest common ancestor.
	Apex string
	// Down holds the tags descended through, ending at the end node's
	// element.
	Down []string
}

// noisyTags are presentational tags stripped during normalisation, as
// Algorithm 1 removes "noisy tags" from extracted paths. Two paths differing
// only in <b>/<span> wrappers describe the same structural relationship.
var noisyTags = map[string]bool{
	"b": true, "i": true, "em": true, "strong": true, "u": true,
	"span": true, "small": true, "font": true, "abbr": true, "sub": true,
	"sup": true, "mark": true, "a": false, // anchors are structural: keep
}

// StepFunc renders one DOM element as a path step. TagStep uses the bare
// tag name; QualifiedStep additionally appends the element's first class
// token, which disambiguates sibling roles (label vs value cells) the way
// class-qualified XPaths do in wrapper-induction systems.
type StepFunc func(*Node) string

// TagStep is the default step renderer: the element's tag name.
func TagStep(n *Node) string { return n.Tag }

// QualifiedStep renders "tag.class" using the first token of the class
// attribute, or the bare tag when the element has no class.
func QualifiedStep(n *Node) string {
	if cls, ok := n.Attr("class"); ok {
		if fields := strings.Fields(cls); len(fields) > 0 {
			return n.Tag + "." + fields[0]
		}
	}
	return n.Tag
}

// PathBetween computes the tag path between two nodes of the same tree.
// It returns a zero path and false if the nodes are in different trees.
func PathBetween(from, to *Node) (TagPath, bool) {
	return PathBetweenFunc(from, to, TagStep)
}

// PathBetweenFunc is PathBetween with a custom step renderer.
func PathBetweenFunc(from, to *Node, step StepFunc) (TagPath, bool) {
	a, b := elementOf(from), elementOf(to)
	if a == nil || b == nil {
		return TagPath{}, false
	}
	// Collect ancestor chains (including the element itself).
	anc := map[*Node]int{}
	i := 0
	for cur := a; cur != nil; cur = cur.Parent {
		anc[cur] = i
		i++
	}
	var lca *Node
	downDepth := 0
	for cur := b; cur != nil; cur = cur.Parent {
		if _, ok := anc[cur]; ok {
			lca = cur
			break
		}
		downDepth++
	}
	if lca == nil {
		return TagPath{}, false
	}
	var p TagPath
	for cur := a; cur != lca; cur = cur.Parent {
		if cur.Kind == ElementNode {
			p.Up = append(p.Up, step(cur))
		}
	}
	if lca.Kind == ElementNode {
		p.Apex = step(lca)
	} else {
		p.Apex = "#doc"
	}
	down := make([]string, 0, downDepth)
	for cur := b; cur != lca; cur = cur.Parent {
		if cur.Kind == ElementNode {
			down = append(down, step(cur))
		}
	}
	// down was collected bottom-up; reverse to get apex-to-target order.
	for l, r := 0, len(down)-1; l < r; l, r = l+1, r-1 {
		down[l], down[r] = down[r], down[l]
	}
	p.Down = down
	return p, true
}

// elementOf returns the nearest element node: n itself, or its parent when n
// is a text node.
func elementOf(n *Node) *Node {
	if n == nil {
		return nil
	}
	if n.Kind == ElementNode {
		return n
	}
	if n.Parent != nil && n.Parent.Kind == ElementNode {
		return n.Parent
	}
	return n.Parent
}

// Normalize returns a copy of the path with presentational ("noisy") tags
// removed from the up and down legs.
func (p TagPath) Normalize() TagPath {
	out := TagPath{Apex: p.Apex}
	for _, t := range p.Up {
		if !isNoisyStep(t) {
			out.Up = append(out.Up, t)
		}
	}
	for _, t := range p.Down {
		if !isNoisyStep(t) {
			out.Down = append(out.Down, t)
		}
	}
	return out
}

// isNoisyStep strips only bare presentational tags; a class-qualified step
// like "span.k" is structural and kept.
func isNoisyStep(t string) bool {
	if strings.ContainsRune(t, '.') {
		return false
	}
	return noisyTags[t]
}

// String renders the path canonically, e.g. "td^tr^table(tr/td)" meaning:
// climb td, tr to apex table, descend tr, td.
func (p TagPath) String() string {
	var b strings.Builder
	for _, t := range p.Up {
		b.WriteString(t)
		b.WriteByte('^')
	}
	b.WriteString(p.Apex)
	if len(p.Down) > 0 {
		b.WriteByte('(')
		b.WriteString(strings.Join(p.Down, "/"))
		b.WriteByte(')')
	}
	return b.String()
}

// Steps returns the path flattened into a single step sequence used by the
// similarity metric: up tags, apex, down tags.
func (p TagPath) Steps() []string {
	steps := make([]string, 0, len(p.Up)+1+len(p.Down))
	steps = append(steps, p.Up...)
	steps = append(steps, p.Apex)
	steps = append(steps, p.Down...)
	return steps
}

// Len returns the number of steps in the path.
func (p TagPath) Len() int { return len(p.Up) + 1 + len(p.Down) }

// Equal reports whether two paths are identical after normalisation.
func (p TagPath) Equal(q TagPath) bool {
	return p.Normalize().String() == q.Normalize().String()
}

// Similarity returns a structural similarity in [0, 1] between two tag
// paths: 1 - editDistance/maxLen over the normalised step sequences. Paths
// from the same page template typically differ by zero or one step (an extra
// wrapper), scoring >= 0.8; unrelated paths score much lower.
func Similarity(p, q TagPath) float64 {
	a, b := p.Normalize().Steps(), q.Normalize().Steps()
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	if maxLen == 0 {
		return 1
	}
	d := editDistance(a, b)
	return 1 - float64(d)/float64(maxLen)
}

// editDistance is the Levenshtein distance over step sequences.
func editDistance(a, b []string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// PathToRoot returns the element tags from n's element up to the tree root,
// most-specific first (e.g. td, tr, table, body, html).
func PathToRoot(n *Node) []string {
	var out []string
	for cur := elementOf(n); cur != nil; cur = cur.Parent {
		if cur.Kind == ElementNode {
			out = append(out, cur.Tag)
		}
	}
	return out
}
