package htmldom

import (
	"strings"
	"testing"
)

func benchPage() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>Bench</title></head><body>")
	b.WriteString(`<h1 class="entity">Bench Entity</h1><table class="infobox">`)
	for i := 0; i < 60; i++ {
		b.WriteString("<tr><th>Label ")
		b.WriteString(strings.Repeat("x", i%7))
		b.WriteString(":</th><td><b>Value ")
		b.WriteString(strings.Repeat("y", i%11))
		b.WriteString("</b></td></tr>")
	}
	b.WriteString("</table>")
	for i := 0; i < 20; i++ {
		b.WriteString(`<div class="ad"><span>Advertisement</span></div><p>Some filler &amp; text.</p>`)
	}
	b.WriteString("</body></html>")
	return b.String()
}

func BenchmarkTokenize(b *testing.B) {
	page := benchPage()
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(page)
	}
}

func BenchmarkParse(b *testing.B) {
	page := benchPage()
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(page)
	}
}

func BenchmarkPathBetween(b *testing.B) {
	doc := Parse(benchPage())
	h1 := doc.Find("h1")
	tds := doc.FindAll("td")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, td := range tds {
			if _, ok := PathBetweenFunc(h1, td, QualifiedStep); !ok {
				b.Fatal("no path")
			}
		}
	}
}

func BenchmarkSimilarity(b *testing.B) {
	doc := Parse(benchPage())
	h1 := doc.Find("h1")
	ths := doc.FindAll("th")
	tds := doc.FindAll("td")
	p1, _ := PathBetweenFunc(h1, ths[0], QualifiedStep)
	p2, _ := PathBetweenFunc(h1, tds[0], QualifiedStep)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Similarity(p1, p2)
	}
}

func BenchmarkRender(b *testing.B) {
	doc := Parse(benchPage())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = doc.Render()
	}
}
