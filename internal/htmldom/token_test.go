package htmldom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize(`<html><body class="main">Hello <b>world</b></body></html>`)
	wantKinds := []TokenKind{
		TokenStartTag, TokenStartTag, TokenText, TokenStartTag,
		TokenText, TokenEndTag, TokenEndTag, TokenEndTag,
	}
	if len(toks) != len(wantKinds) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(wantKinds), toks)
	}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if v, ok := toks[1].Attr("class"); !ok || v != "main" {
		t.Errorf("body class attr = %q, %v", v, ok)
	}
}

func TestTokenizeSelfClosingAndVoid(t *testing.T) {
	toks := Tokenize(`<br/><img src="x.png"/><hr />`)
	for i, tok := range toks {
		if tok.Kind != TokenSelfClosing {
			t.Errorf("token %d kind = %v, want selfclosing", i, tok.Kind)
		}
	}
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3", len(toks))
	}
	if v, _ := toks[1].Attr("src"); v != "x.png" {
		t.Errorf("img src = %q", v)
	}
}

func TestTokenizeCommentAndDoctype(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><!-- a comment --><p>x</p>`)
	if toks[0].Kind != TokenDoctype {
		t.Errorf("first token %v, want doctype", toks[0].Kind)
	}
	if toks[1].Kind != TokenComment || !strings.Contains(toks[1].Data, "a comment") {
		t.Errorf("second token %+v, want comment", toks[1])
	}
}

func TestTokenizeAttributes(t *testing.T) {
	toks := Tokenize(`<div id=plain class='single' data-x="double quoted" disabled>`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	tok := toks[0]
	cases := map[string]string{
		"id":     "plain",
		"class":  "single",
		"data-x": "double quoted",
	}
	for k, want := range cases {
		if v, ok := tok.Attr(k); !ok || v != want {
			t.Errorf("attr %q = %q, %v; want %q", k, v, ok, want)
		}
	}
	if _, ok := tok.Attr("disabled"); !ok {
		t.Error("boolean attribute missing")
	}
	if _, ok := tok.Attr("absent"); ok {
		t.Error("absent attribute found")
	}
}

func TestTokenizeMalformed(t *testing.T) {
	// Unclosed tag degrades to text; never panics.
	cases := []string{
		"<notclosed",
		"just text",
		"< >",
		"<<>>",
		"text <b>bold",
		"<!-- unterminated comment",
		`<a href="unterminated>`,
	}
	for _, src := range cases {
		toks := Tokenize(src)
		_ = toks // must simply not panic and produce something sane
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := Tokenize(`<script>if (a < b) { x() }</script><p>after</p>`)
	if toks[0].Kind != TokenStartTag || toks[0].Data != "script" {
		t.Fatalf("first token %+v", toks[0])
	}
	if toks[1].Kind != TokenText || !strings.Contains(toks[1].Data, "a < b") {
		t.Fatalf("script body not raw text: %+v", toks[1])
	}
	if toks[2].Kind != TokenEndTag || toks[2].Data != "script" {
		t.Fatalf("expected </script>, got %+v", toks[2])
	}
}

func TestEntityRoundTrip(t *testing.T) {
	cases := []string{
		"a & b", "1 < 2", "x > y", `say "hi"`, "plain",
	}
	for _, s := range cases {
		if got := UnescapeEntities(EscapeText(s)); got != s {
			t.Errorf("entity round trip %q -> %q", s, got)
		}
	}
}

func TestEntityRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		return UnescapeEntities(EscapeText(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTokenKindString(t *testing.T) {
	kinds := []TokenKind{TokenText, TokenStartTag, TokenEndTag, TokenSelfClosing, TokenComment, TokenDoctype}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("kind %d has bad string %q", k, s)
		}
		seen[s] = true
	}
}
