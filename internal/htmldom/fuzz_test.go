package htmldom

import (
	"testing"
)

// FuzzParse asserts the parser never panics and that re-parsing the render
// of a parse is structurally stable (parse ∘ render is idempotent after one
// round).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"plain text",
		"<html><body><p>x</p></body></html>",
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"<ul><li>one<li>two</ul>",
		"<div class=\"a b\"><span>nested <b>deep</b></span></div>",
		"<!DOCTYPE html><!-- c --><p>&amp;&lt;&gt;</p>",
		"<script>if (a<b) {}</script>after",
		"</div></div><p>stray",
		"<unclosed attr='v",
		"<<<>>>",
		"<a href=x>y</a><br/><img src=z>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		r1 := doc.Render()
		doc2 := Parse(r1)
		r2 := doc2.Render()
		if r1 != r2 {
			t.Fatalf("render not stable:\n1: %q\n2: %q", r1, r2)
		}
	})
}

// FuzzTokenize asserts the tokenizer never panics and only emits valid
// token kinds.
func FuzzTokenize(f *testing.F) {
	f.Add("<p class='x'>text</p>")
	f.Add("<!doctype html><!-- x -->")
	f.Add("a < b > c & d")
	f.Fuzz(func(t *testing.T, src string) {
		for _, tok := range Tokenize(src) {
			if tok.Kind > TokenDoctype {
				t.Fatalf("invalid token kind %d", tok.Kind)
			}
		}
	})
}
