package htmldom

import (
	"strings"
	"testing"
)

const samplePage = `<!DOCTYPE html>
<html>
<head><title>Casablanca (1942)</title></head>
<body>
  <div id="content">
    <h1 class="entity">Casablanca</h1>
    <table class="infobox">
      <tr><th>Director</th><td>Michael Curtiz</td></tr>
      <tr><th>Release date</th><td>1942</td></tr>
      <tr><th>Genre</th><td><a href="/g/drama">Drama</a></td></tr>
    </table>
    <p>Plot summary here.</p>
  </div>
</body>
</html>`

func TestParseStructure(t *testing.T) {
	doc := Parse(samplePage)
	if doc.Kind != DocumentNode {
		t.Fatal("root is not a document node")
	}
	html := doc.Find("html")
	if html == nil {
		t.Fatal("no html element")
	}
	h1 := doc.Find("h1")
	if h1 == nil || h1.InnerText() != "Casablanca" {
		t.Fatalf("h1 = %v", h1)
	}
	rows := doc.FindAll("tr")
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	ths := doc.FindAll("th")
	tds := doc.FindAll("td")
	if len(ths) != 3 || len(tds) != 3 {
		t.Fatalf("got %d th, %d td; want 3, 3", len(ths), len(tds))
	}
	if tds[0].InnerText() != "Michael Curtiz" {
		t.Errorf("first td = %q", tds[0].InnerText())
	}
	if tds[2].InnerText() != "Drama" {
		t.Errorf("anchor td = %q", tds[2].InnerText())
	}
}

func TestParseImpliedEnds(t *testing.T) {
	doc := Parse(`<ul><li>one<li>two<li>three</ul>`)
	lis := doc.FindAll("li")
	if len(lis) != 3 {
		t.Fatalf("got %d li, want 3", len(lis))
	}
	for i, want := range []string{"one", "two", "three"} {
		if got := lis[i].InnerText(); got != want {
			t.Errorf("li %d = %q, want %q", i, got, want)
		}
		if lis[i].Parent.Tag != "ul" {
			t.Errorf("li %d parent = %q, want ul", i, lis[i].Parent.Tag)
		}
	}
	// td implied by next tr
	doc2 := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	if got := len(doc2.FindAll("td")); got != 3 {
		t.Errorf("got %d td, want 3", got)
	}
	if got := len(doc2.FindAll("tr")); got != 2 {
		t.Errorf("got %d tr, want 2", got)
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<p>one<br>two<img src="x"></p>`)
	p := doc.Find("p")
	if p == nil {
		t.Fatal("no p")
	}
	if br := doc.Find("br"); br == nil || len(br.Children) != 0 {
		t.Error("br missing or has children")
	}
	if got := p.InnerText(); got != "one two" {
		t.Errorf("p text = %q", got)
	}
}

func TestParseIgnoresStrayEndTags(t *testing.T) {
	doc := Parse(`</div><p>ok</p></span>`)
	if p := doc.Find("p"); p == nil || p.InnerText() != "ok" {
		t.Fatal("stray end tags broke parse")
	}
}

func TestParseUnclosedAtEOF(t *testing.T) {
	doc := Parse(`<div><p>text`)
	if p := doc.Find("p"); p == nil || p.InnerText() != "text" {
		t.Fatal("unclosed elements not recovered at EOF")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	doc := Parse(samplePage)
	rendered := doc.Render()
	doc2 := Parse(rendered)
	// Structural equality: same tags, same texts in the same order.
	var tags1, tags2, texts1, texts2 []string
	collect := func(n *Node, tags, texts *[]string) {
		n.Walk(func(c *Node) bool {
			if c.Kind == ElementNode {
				*tags = append(*tags, c.Tag)
			}
			if c.Kind == TextNode {
				*texts = append(*texts, NormalizeSpace(c.Text))
			}
			return true
		})
	}
	collect(doc, &tags1, &texts1)
	collect(doc2, &tags2, &texts2)
	if strings.Join(tags1, ",") != strings.Join(tags2, ",") {
		t.Errorf("tags differ:\n%v\n%v", tags1, tags2)
	}
	if strings.Join(texts1, "|") != strings.Join(texts2, "|") {
		t.Errorf("texts differ:\n%v\n%v", texts1, texts2)
	}
}

func TestFindByAttr(t *testing.T) {
	doc := Parse(samplePage)
	got := doc.FindByAttr("class", "infobox")
	if len(got) != 1 || got[0].Tag != "table" {
		t.Fatalf("FindByAttr = %v", got)
	}
	if len(doc.FindByAttr("class", "nope")) != 0 {
		t.Error("found nonexistent attr value")
	}
}

func TestTextNodes(t *testing.T) {
	doc := Parse(`<div> <p>alpha</p> <p> </p> <p>beta</p> </div>`)
	tn := doc.TextNodes()
	if len(tn) != 2 {
		t.Fatalf("got %d text nodes, want 2", len(tn))
	}
	if NormalizeSpace(tn[0].Text) != "alpha" || NormalizeSpace(tn[1].Text) != "beta" {
		t.Errorf("text nodes = %q, %q", tn[0].Text, tn[1].Text)
	}
}

func TestNodeHelpers(t *testing.T) {
	doc := Parse(samplePage)
	td := doc.FindAll("td")[0]
	if td.Depth() == 0 {
		t.Error("td depth should be > 0")
	}
	if td.Root() != doc {
		t.Error("Root should return the document")
	}
	h1 := doc.Find("h1")
	if v, ok := h1.Attr("class"); !ok || v != "entity" {
		t.Errorf("h1 class = %q, %v", v, ok)
	}
	if _, ok := h1.Attr("id"); ok {
		t.Error("h1 has no id")
	}
}

func TestNewElementAndText(t *testing.T) {
	el := NewElement("div", "id", "x", "class", "y")
	el.AppendChild(NewText("hello"))
	if el.Render() != `<div id="x" class="y">hello</div>` {
		t.Errorf("Render = %q", el.Render())
	}
	if el.Children[0].Parent != el || el.Children[0].Index != 0 {
		t.Error("AppendChild bookkeeping wrong")
	}
}

func TestEntityDecodingInParse(t *testing.T) {
	doc := Parse(`<p>Tom &amp; Jerry &lt;3</p>`)
	if got := doc.Find("p").InnerText(); got != "Tom & Jerry <3" {
		t.Errorf("entity decoding: %q", got)
	}
}
