package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"akb/internal/obs"
	"akb/internal/obs/logx"
	"akb/internal/resilience"
	"akb/internal/store"
)

// TestMetricsContentNegotiation is the format matrix for /metrics: JSON
// stays the default (akb report compatibility), the Prometheus text
// exposition is opt-in via ?format=prom or a scraper-style Accept
// header, and the explicit parameter beats the header.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	// Drive one query so route metrics exist before scraping.
	get(t, ts.URL+"/v1/query?class=Film")

	cases := []struct {
		name     string
		path     string
		accept   string
		wantProm bool
	}{
		{"default is JSON", "/metrics", "", false},
		{"browser accept is JSON", "/metrics", "*/*", false},
		{"explicit JSON accept", "/metrics", "application/json", false},
		{"format=prom", "/metrics?format=prom", "", true},
		{"format=prometheus", "/metrics?format=prometheus", "", true},
		{"openmetrics accept", "/metrics", "application/openmetrics-text;version=1.0.0", true},
		{"prometheus scraper accept", "/metrics",
			"application/openmetrics-text;version=1.0.0;q=0.5,text/plain;version=0.0.4;q=0.3,*/*;q=0.1", true},
		{"text/plain accept", "/metrics", "text/plain", true},
		{"format=json beats accept", "/metrics?format=json", "text/plain", false},
		{"format=prom beats accept", "/metrics?format=prom", "application/json", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest("GET", ts.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			ct := resp.Header.Get("Content-Type")
			if tc.wantProm {
				if ct != obs.PromContentType {
					t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
				}
				if !strings.Contains(string(raw), "# TYPE ") || !strings.HasSuffix(string(raw), "# EOF\n") {
					t.Errorf("not a text exposition:\n%.400s", raw)
				}
			} else {
				if !strings.HasPrefix(ct, "application/json") {
					t.Errorf("Content-Type = %q, want JSON", ct)
				}
				var body struct {
					Metrics []obs.Metric `json:"metrics"`
				}
				if err := json.Unmarshal(raw, &body); err != nil || len(body.Metrics) == 0 {
					t.Errorf("bad JSON metrics body: %v %.200s", err, raw)
				}
			}
		})
	}
}

// TestPromExpositionContent pins what a scrape must contain: the
// build-info gauge with its labels, the request counter, the uptime
// gauge, and the latency histogram over the sub-millisecond serve
// bounds with cumulative buckets and +Inf.
func TestPromExpositionContent(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	get(t, ts.URL+"/v1/query?class=Film")

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	for _, want := range []string{
		"# TYPE akb_build_info gauge",
		`akb_build_info{commit="`,
		`goversion="go`,
		"# TYPE akb_serve_requests_total counter",
		"# TYPE akb_serve_uptime_seconds gauge",
		"# TYPE akb_serve_latency_seconds histogram",
		`akb_serve_latency_seconds_bucket{le="1e-05"} `, // the tuned first bound, not the 0.0001 default
		`akb_serve_latency_seconds_bucket{le="+Inf"} `,
		"akb_serve_latency_seconds_sum ",
		"akb_serve_latency_seconds_count ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestRequestIDEchoedEverywhere asserts the X-Request-ID contract: a
// generated ID on every response class the server can produce — 200,
// 400, 404, shed 429, panic 500 — and adoption of a client-sent ID.
func TestRequestIDEchoedEverywhere(t *testing.T) {
	ctl := store.NewChaosController(&resilience.FaultPlan{
		Seed:    3,
		Default: resilience.StageFault{FailProb: 1, Transient: true},
	})
	ctl.SetEnabled(false)
	cfg := DefaultConfig()
	cfg.MaxInFlight = 4
	cfg.WrapQuerier = ctl.Wrap
	s := New(testStore(), obs.NewRegistry(), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	check := func(name, url string, wantStatus int) string {
		t.Helper()
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, wantStatus)
		}
		id := resp.Header.Get(RequestIDHeader)
		if id == "" {
			t.Errorf("%s: response without %s", name, RequestIDHeader)
		}
		return id
	}

	seen := map[string]bool{}
	for _, tc := range []struct {
		name, url string
		status    int
	}{
		{"ok", "/v1/entity/Casablanca", http.StatusOK},
		{"bad request", "/v1/query?bogus=1", http.StatusBadRequest},
		{"not found", "/v1/entity/Nobody", http.StatusNotFound},
		{"unknown route", "/v2/x", http.StatusNotFound},
		{"healthz", "/healthz", http.StatusOK},
	} {
		id := check(tc.name, tc.url, tc.status)
		if seen[id] {
			t.Errorf("%s: duplicate request ID %q", tc.name, id)
		}
		seen[id] = true
	}

	// Panic path: chaos on, the recovered 500 still carries an ID.
	ctl.SetEnabled(true)
	check("panic 500", "/v1/query?class=Film&limit=7", http.StatusInternalServerError)
	ctl.SetEnabled(false)

	// Shed path: with every in-flight slot held, the 429 carries an ID.
	for i := 0; i < cfg.MaxInFlight; i++ {
		s.inflight <- struct{}{}
	}
	check("shed 429", "/v1/query?class=Film", http.StatusTooManyRequests)
	for i := 0; i < cfg.MaxInFlight; i++ {
		<-s.inflight
	}

	// A client-supplied ID is adopted verbatim...
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "gateway-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "gateway-abc-123" {
		t.Errorf("client ID not adopted: %q", got)
	}
	// ...unless it is abusive (oversized), which gets replaced.
	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 4096))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got == "" || strings.HasPrefix(got, "xxxx") {
		t.Errorf("oversized client ID not replaced: %.40q", got)
	}
}

// TestAccessLog wires a deterministic logger + ID generator and asserts
// the structured line for a success and an error, correlated with the
// response header.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	clock := func() func() time.Time {
		base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
		return func() time.Time { return base }
	}()
	ids := 0
	cfg := DefaultConfig()
	cfg.AccessLog = logx.New(&buf, logx.WithClock(clock))
	cfg.NewRequestID = func() string { ids++; return fmt.Sprintf("req-%04d", ids) }
	s := New(testStore(), obs.NewRegistry(), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/entity/Casablanca")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	okID := resp.Header.Get(RequestIDHeader)
	get(t, ts.URL+"/v1/entity/Nobody")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %q", lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %q", lines[1])
	}
	if first["id"] != okID {
		t.Errorf("log id %v != header id %q", first["id"], okID)
	}
	if first["msg"] != "request" || first["method"] != "GET" ||
		first["path"] != "/v1/entity/Casablanca" || first["status"] != float64(200) ||
		first["gen"] != float64(1) || first["ts"] != "2026-08-08T12:00:00Z" {
		t.Errorf("unexpected access-log fields: %v", first)
	}
	if first["bytes"] == float64(0) || first["dur_us"] == nil {
		t.Errorf("missing size/duration fields: %v", first)
	}
	if second["status"] != float64(404) || second["id"] != "req-0002" {
		t.Errorf("error line fields: %v", second)
	}
}

// TestRequestSpans gives the server a telemetry run and asserts each
// request opens one span annotated with its ID and final status, capped
// by the trace limit.
func TestRequestSpans(t *testing.T) {
	run := obs.NewRun()
	run.Trace().SetLimit(3)
	ids := 0
	cfg := DefaultConfig()
	cfg.Obs = run
	cfg.NewRequestID = func() string { ids++; return fmt.Sprintf("req-%04d", ids) }
	s := New(testStore(), nil, cfg) // nil registry: the run's registry is adopted
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	spans := run.Trace().Snapshot()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3 (cap)", len(spans))
	}
	if run.Trace().Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", run.Trace().Dropped())
	}
	sp := spans[0]
	if sp.Name != "http GET /healthz" {
		t.Errorf("span name = %q", sp.Name)
	}
	if sp.Attr("request_id") != "req-0001" || sp.Attr("status") != "200" {
		t.Errorf("span attrs = %v", sp.Attrs)
	}
	// The shared registry carries the serve counters: nil-reg construction
	// adopted the run's registry.
	if n := run.Registry().Counter("akb_serve_requests_total").Value(); n != 5 {
		t.Errorf("requests_total on the run registry = %d, want 5", n)
	}
}

// TestAdminHandlerServesPprof drives the opt-in admin mux: the pprof
// index and a short profile must answer on it, and the query API's
// public mux must NOT expose /debug/pprof.
func TestAdminHandlerServesPprof(t *testing.T) {
	admin := httptest.NewServer(AdminHandler())
	defer admin.Close()

	resp, err := http.Get(admin.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "goroutine") {
		t.Errorf("pprof index: %d %.120s", resp.StatusCode, raw)
	}
	resp, err = http.Get(admin.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("heap profile status = %d", resp.StatusCode)
	}

	// The public API must not serve profiling endpoints.
	_, ts := testServer(t, DefaultConfig())
	status, _ := get(t, ts.URL+"/debug/pprof/")
	if status != http.StatusNotFound {
		t.Errorf("public mux serves pprof: %d", status)
	}
}
