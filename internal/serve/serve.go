// Package serve exposes a fused-KB store over HTTP — the read path of
// the ROADMAP's "serve heavy traffic" goal. The API is versioned under
// /v1 and multi-truth aware: attribute lookups return every accepted
// value with its fused confidence and hierarchy ancestors, not a single
// "the" answer.
//
// Routes:
//
//	GET /v1/entity/{id}              all fused knowledge about one entity
//	GET /v1/triples/{entity}/{attr}  accepted values for one attribute
//	GET /v1/query?class=&attr=&value=[&entity=&limit=]  filtered fact search
//	GET /healthz                     liveness + store summary
//	GET /metrics                     JSON dump of the obs metric registry
//
// Production hygiene: per-request timeouts, a bounded in-flight request
// count with 429 load shedding above it, a response cache over the
// immutable store, graceful shutdown draining in-flight requests, and
// akb_serve_* counters/histograms in the shared obs registry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"akb/internal/obs"
	"akb/internal/store"
)

// Config tunes the server. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Addr is the listen address, e.g. ":8080".
	Addr string
	// MaxInFlight bounds concurrently served requests; requests beyond
	// the bound are shed with 429 Too Many Requests.
	MaxInFlight int
	// RequestTimeout bounds one request's handling time; requests that
	// exceed it receive 503.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: how long in-flight requests
	// may keep running after the shutdown signal.
	DrainTimeout time.Duration
	// CacheSize bounds the response cache (entries); 0 disables caching.
	CacheSize int
	// MaxResults caps /v1/query results when the request sends no
	// explicit smaller limit.
	MaxResults int
}

// DefaultConfig returns production-leaning defaults.
func DefaultConfig() Config {
	return Config{
		Addr:           ":8080",
		MaxInFlight:    64,
		RequestTimeout: 5 * time.Second,
		DrainTimeout:   10 * time.Second,
		CacheSize:      4096,
		MaxResults:     1000,
	}
}

// Server serves one immutable store snapshot. Create with New.
type Server struct {
	st      *store.Store
	reg     *obs.Registry
	cfg     Config
	started time.Time

	inflight chan struct{}
	cache    *respCache
	handler  http.Handler
}

// New builds a server over the store. The registry may be nil (metrics
// become no-ops and /metrics returns an empty snapshot).
func New(st *store.Store, reg *obs.Registry, cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultConfig().MaxInFlight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultConfig().RequestTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultConfig().DrainTimeout
	}
	if cfg.MaxResults <= 0 {
		cfg.MaxResults = DefaultConfig().MaxResults
	}
	s := &Server{
		st:       st,
		reg:      reg,
		cfg:      cfg,
		started:  time.Now(),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		cache:    newRespCache(cfg.CacheSize),
	}
	s.handler = s.buildHandler()
	return s
}

// Handler returns the fully wrapped HTTP handler (shedding, timeout,
// metrics, routing). Tests drive it through httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// ListenAndServe runs the server until ctx is cancelled (SIGTERM wiring
// is the caller's job), then shuts down gracefully: the listener closes
// immediately, in-flight requests get up to DrainTimeout to finish.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve runs the server on an existing listener; see ListenAndServe.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		<-errc // Serve has returned ErrServerClosed
		return nil
	}
}

// buildHandler assembles the middleware chain, outermost first: metrics +
// load shedding, then the request timeout, then cache + routes.
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.jsonRoute(s.handleHealthz, false))
	mux.HandleFunc("GET /metrics", s.jsonRoute(s.handleMetrics, false))
	mux.HandleFunc("GET /v1/entity/{id}", s.jsonRoute(s.handleEntity, true))
	mux.HandleFunc("GET /v1/triples/{entity}/{attr}", s.jsonRoute(s.handleTriples, true))
	mux.HandleFunc("GET /v1/query", s.jsonRoute(s.handleQuery, true))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown route"})
	})

	var inner http.Handler = mux
	inner = http.TimeoutHandler(inner, s.cfg.RequestTimeout, `{"error":"request timed out"}`)

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.counter("akb_serve_requests_total").Inc()
		select {
		case s.inflight <- struct{}{}:
		default:
			// At capacity: shed instead of queueing, so overload degrades
			// into fast 429s rather than collapse.
			s.counter("akb_serve_shed_total").Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "server at capacity, retry later"})
			return
		}
		s.gauge("akb_serve_inflight").Add(1)
		start := time.Now()
		defer func() {
			<-s.inflight
			s.gauge("akb_serve_inflight").Add(-1)
			s.histogram("akb_serve_latency_seconds").Observe(time.Since(start).Seconds())
		}()
		inner.ServeHTTP(w, r)
	})
}

// routeResult is a handler's outcome before encoding.
type routeResult struct {
	status int
	body   any
}

type errorBody struct {
	Error string `json:"error"`
}

// jsonRoute adapts a typed handler into an http.HandlerFunc, routing
// successful cacheable responses through the response cache. The store is
// immutable, so a cached body never goes stale.
func (s *Server) jsonRoute(h func(*http.Request) routeResult, cacheable bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.RequestURI()
		if cacheable {
			if status, body, ok := s.cache.get(key); ok {
				s.counter("akb_serve_cache_hits_total").Inc()
				writeRaw(w, status, body)
				return
			}
			s.counter("akb_serve_cache_misses_total").Inc()
		}
		res := h(r)
		if res.status >= http.StatusInternalServerError {
			s.counter("akb_serve_errors_total").Inc()
		}
		raw, err := json.Marshal(res.body)
		if err != nil {
			s.counter("akb_serve_errors_total").Inc()
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "encode response"})
			return
		}
		if cacheable && res.status == http.StatusOK {
			s.cache.put(key, res.status, raw)
		}
		writeRaw(w, res.status, raw)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	raw, err := json.Marshal(body)
	if err != nil {
		raw = []byte(`{"error":"encode response"}`)
		status = http.StatusInternalServerError
	}
	writeRaw(w, status, raw)
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

// valueOut is one accepted value in an API response.
type valueOut struct {
	Value      string   `json:"value"`
	Confidence float64  `json:"confidence"`
	Sources    int      `json:"sources,omitempty"`
	Ancestors  []string `json:"ancestors,omitempty"`
}

func toValueOut(f store.Fact) valueOut {
	return valueOut{Value: f.Value, Confidence: f.Confidence, Sources: f.Sources, Ancestors: f.Ancestors}
}

// entityID decodes a path segment into a store entity name. Entity IRIs
// replace spaces with underscores, so /v1/entity/Film_3 and
// /v1/entity/Film%203 both resolve.
func (s *Server) entityID(raw string) string {
	if len(s.st.Entity(raw)) > 0 {
		return raw
	}
	return strings.ReplaceAll(raw, "_", " ")
}

func (s *Server) handleHealthz(*http.Request) routeResult {
	return routeResult{http.StatusOK, struct {
		Status   string   `json:"status"`
		Facts    int      `json:"facts"`
		Entities int      `json:"entities"`
		Classes  []string `json:"classes"`
		UptimeMS int64    `json:"uptime_ms"`
	}{"ok", s.st.Len(), s.st.EntityCount(), s.st.Classes(), time.Since(s.started).Milliseconds()}}
}

func (s *Server) handleMetrics(*http.Request) routeResult {
	snap := s.reg.Snapshot()
	if snap == nil {
		snap = []obs.Metric{}
	}
	return routeResult{http.StatusOK, struct {
		Metrics []obs.Metric `json:"metrics"`
	}{snap}}
}

func (s *Server) handleEntity(r *http.Request) routeResult {
	id := s.entityID(r.PathValue("id"))
	facts := s.st.Entity(id)
	if len(facts) == 0 {
		return routeResult{http.StatusNotFound, errorBody{Error: fmt.Sprintf("no fused knowledge about entity %q", id)}}
	}
	attrs := make(map[string][]valueOut)
	for _, f := range facts {
		attrs[f.Attr] = append(attrs[f.Attr], toValueOut(f))
	}
	return routeResult{http.StatusOK, struct {
		Entity     string                `json:"entity"`
		Class      string                `json:"class,omitempty"`
		Facts      int                   `json:"facts"`
		Attributes map[string][]valueOut `json:"attributes"`
	}{id, facts[0].Class, len(facts), attrs}}
}

func (s *Server) handleTriples(r *http.Request) routeResult {
	entity := s.entityID(r.PathValue("entity"))
	// Attribute names are canonical with spaces; accept the underscore
	// form too, mirroring how attribute IRIs are minted.
	attr := r.PathValue("attr")
	facts := s.st.Triples(entity, attr)
	if len(facts) == 0 {
		attr = strings.ReplaceAll(attr, "_", " ")
		facts = s.st.Triples(entity, attr)
	}
	if len(facts) == 0 {
		return routeResult{http.StatusNotFound, errorBody{
			Error: fmt.Sprintf("no accepted values for (%s, %s)", entity, attr)}}
	}
	values := make([]valueOut, 0, len(facts))
	for _, f := range facts {
		values = append(values, toValueOut(f))
	}
	return routeResult{http.StatusOK, struct {
		Entity string     `json:"entity"`
		Attr   string     `json:"attr"`
		Values []valueOut `json:"values"`
	}{entity, attr, values}}
}

func (s *Server) handleQuery(r *http.Request) routeResult {
	qs := r.URL.Query()
	for param := range qs {
		switch param {
		case "entity", "class", "attr", "value", "limit":
		default:
			return routeResult{http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q", param)}}
		}
	}
	q := store.Query{
		Entity: qs.Get("entity"),
		Class:  qs.Get("class"),
		Attr:   qs.Get("attr"),
		Value:  qs.Get("value"),
	}
	if q == (store.Query{}) {
		return routeResult{http.StatusBadRequest, errorBody{
			Error: "at least one of entity, class, attr, value is required"}}
	}
	limit := s.cfg.MaxResults
	if raw := qs.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return routeResult{http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid limit %q", raw)}}
		}
		if n < limit {
			limit = n
		}
	}
	facts := s.st.Lookup(q)
	total := len(facts)
	truncated := false
	if len(facts) > limit {
		facts = facts[:limit]
		truncated = true
	}
	if facts == nil {
		facts = []store.Fact{}
	}
	return routeResult{http.StatusOK, struct {
		Count     int          `json:"count"`
		Total     int          `json:"total"`
		Truncated bool         `json:"truncated,omitempty"`
		Facts     []store.Fact `json:"facts"`
	}{len(facts), total, truncated, facts}}
}

func (s *Server) counter(name string) *obs.Counter     { return s.reg.Counter(name) }
func (s *Server) gauge(name string) *obs.Gauge         { return s.reg.Gauge(name) }
func (s *Server) histogram(name string) *obs.Histogram { return s.reg.Histogram(name, nil) }

// respCache is a bounded response cache over the immutable store. It
// never evicts (the key space is finite and the store never changes);
// once full it simply stops admitting, which keeps the implementation
// free of LRU bookkeeping on the hot path.
type respCache struct {
	mu     sync.RWMutex
	max    int
	bodies map[string]cachedResp
}

type cachedResp struct {
	status int
	body   []byte
}

func newRespCache(max int) *respCache {
	return &respCache{max: max, bodies: make(map[string]cachedResp)}
}

func (c *respCache) get(key string) (int, []byte, bool) {
	if c.max <= 0 {
		return 0, nil, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.bodies[key]
	return r.status, r.body, ok
}

func (c *respCache) put(key string, status int, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.bodies) >= c.max {
		return
	}
	c.bodies[key] = cachedResp{status, body}
}

// Keys returns the cached keys in sorted order (for tests).
func (c *respCache) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.bodies))
	for k := range c.bodies {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
