// Package serve exposes a fused-KB store over HTTP — the read path of
// the ROADMAP's "serve heavy traffic" goal. The API is versioned under
// /v1 and multi-truth aware: attribute lookups return every accepted
// value with its fused confidence and hierarchy ancestors, not a single
// "the" answer.
//
// Routes:
//
//	GET  /v1/entity/{id}              all fused knowledge about one entity
//	GET  /v1/triples/{entity}/{attr}  accepted values for one attribute
//	GET  /v1/query?class=&attr=&value=[&entity=&limit=]  filtered fact search
//	POST /v1/datalog                  conjunctive queries with joins (see API.md)
//	POST /v1/admin/reload             hot-swap to a freshly loaded snapshot
//	GET  /healthz                     liveness + health state machine + version
//	GET  /readyz                      readiness (503 while starting/draining)
//	GET  /metrics                     metric registry: JSON by default, Prometheus
//	                                  text exposition via ?format=prom or an
//	                                  Accept header naming openmetrics/text-plain
//
// Production hygiene: per-request timeouts, a bounded in-flight request
// count with 429 load shedding above it, a generation-keyed response
// cache, panic isolation (a handler panic becomes a 500 and a counter,
// never a dead process), zero-downtime hot reload (SIGHUP wiring in cmd/
// akb plus the admin endpoint swap the store atomically and keep serving
// the old one if the new snapshot is bad), graceful shutdown draining
// in-flight requests, and akb_serve_* counters/histograms in the shared
// obs registry.
//
// Observability: every response carries an X-Request-ID (adopted from
// the client or generated), the optional Config.AccessLog emits one
// structured JSON line per request, and Config.Obs opens a span per
// request so traces, logs and metrics correlate on the request ID.
// AdminHandler exposes net/http/pprof for a separate, opt-in admin
// listener (`akb serve -pprof`).
//
// The server does not serve one store; it serves a *generation*: an
// atomically swappable handle bundling the store, the querier the
// handlers actually read through (possibly chaos-wrapped), the
// generation number and that generation's own response cache. A request
// loads the handle once and sees one generation end to end; a reload
// builds a fresh handle and swaps the pointer, so concurrent requests
// are torn-read-free by construction and the old cache can never leak
// stale bodies into the new generation.
//
// Every error response — 400, 404, 429, 500, 503 — uses the same JSON
// envelope: {"error": "...", "status": N}.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"akb/internal/obs"
	"akb/internal/obs/logx"
	"akb/internal/store"
)

// Config tunes the server. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Addr is the listen address, e.g. ":8080".
	Addr string
	// MaxInFlight bounds concurrently served requests; requests beyond
	// the bound are shed with 429 Too Many Requests.
	MaxInFlight int
	// RequestTimeout bounds one request's handling time; requests that
	// exceed it receive 503.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: how long in-flight requests
	// may keep running after the shutdown signal.
	DrainTimeout time.Duration
	// CacheSize bounds the response cache (entries per store generation);
	// 0 disables caching.
	CacheSize int
	// MaxResults caps /v1/query results when the request sends no
	// explicit smaller limit.
	MaxResults int
	// Reloader loads a fresh store for hot reload (SIGHUP or
	// POST /v1/admin/reload) — typically a closure re-reading the
	// snapshot file, off the serving path. It may return a flat
	// *store.Store or a *store.Sharded; either way one successful reload
	// swaps the whole serving surface — every shard included — behind a
	// single generation pointer. Nil disables reloading.
	Reloader func() (store.Querier, error)
	// WrapQuerier, when set, wraps the querier of every store generation
	// the server adopts (initial store and each reload). The chaos
	// harness injects faults here; it is also the seam for future
	// sharded or remote queriers.
	WrapQuerier func(store.Querier) store.Querier
	// AccessLog, when set, receives one structured line per request
	// (request ID, method, path, status, bytes, duration, generation).
	// Nil disables access logging with zero per-request cost.
	AccessLog *logx.Logger
	// Obs, when set, is the telemetry run the server traces requests
	// into: one span per request, correlated by request ID with reload
	// and chaos events in the same trace. Callers should cap the run's
	// trace (Trace().SetLimit) — a production server otherwise retains a
	// span per request forever.
	Obs *obs.Run
	// NewRequestID overrides request-ID generation (nil: 16 hex chars
	// from crypto/rand). Tests inject deterministic IDs.
	NewRequestID func() string
}

// DefaultConfig returns production-leaning defaults.
func DefaultConfig() Config {
	return Config{
		Addr:           ":8080",
		MaxInFlight:    64,
		RequestTimeout: 5 * time.Second,
		DrainTimeout:   10 * time.Second,
		CacheSize:      4096,
		MaxResults:     1000,
	}
}

// Health is the server's lifecycle state machine:
//
//	starting ──load──▶ serving ◀──reload ok──┐
//	                      │                  │
//	                      └──reload failed──▶ degraded
//	   any state ──shutdown──▶ draining
//
// Liveness (/healthz) is 200 in every state — the process is up.
// Readiness (/readyz) is 200 only in serving and degraded: a degraded
// server failed its last reload but still serves the previous good
// generation, so it keeps taking traffic while operators see the state.
type Health int32

const (
	// HealthStarting: constructed without a store; query routes 503
	// until the first successful reload installs one.
	HealthStarting Health = iota
	// HealthServing: a good store generation is installed.
	HealthServing
	// HealthDegraded: the last reload failed; the previous generation
	// is still serving.
	HealthDegraded
	// HealthDraining: shutdown began; in-flight requests are finishing.
	HealthDraining
)

func (h Health) String() string {
	switch h {
	case HealthStarting:
		return "starting"
	case HealthServing:
		return "serving"
	case HealthDegraded:
		return "degraded"
	case HealthDraining:
		return "draining"
	}
	return fmt.Sprintf("health(%d)", int32(h))
}

// ready reports whether the state accepts query traffic.
func (h Health) ready() bool { return h == HealthServing || h == HealthDegraded }

// generation is the atomically swappable serving handle: one immutable
// store (flat or sharded), the querier handlers read through, and a
// response cache scoped to exactly this generation. Swapping the pointer
// retires store, every shard and cache together, which is what makes
// reload sound for cached bodies and shard routing alike.
type generation struct {
	st    store.Querier
	q     store.Querier
	num   uint64
	cache *respCache
}

// Server serves atomically swappable store generations. Create with New.
type Server struct {
	reg     *obs.Registry
	cfg     Config
	started time.Time
	version string

	cur    atomic.Pointer[generation]
	genSeq atomic.Uint64
	health atomic.Int32

	// reloadMu serialises reloads; lastReloadErr carries the most recent
	// failure for /healthz (empty string pointer = none).
	reloadMu      sync.Mutex
	lastReloadErr atomic.Pointer[string]

	inflight chan struct{}
	handler  http.Handler
}

// New builds a server over the store — a flat *store.Store or a
// *store.Sharded; the handlers are agnostic. The registry may be nil
// (metrics become no-ops and /metrics returns an empty snapshot). A nil
// store is allowed: the server starts in the "starting" state, answers
// health probes, and begins serving after the first successful Reload —
// the boot sequence `akb serve` uses so a bad snapshot is a clean error,
// not a half-started process.
func New(st store.Querier, reg *obs.Registry, cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultConfig().MaxInFlight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultConfig().RequestTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultConfig().DrainTimeout
	}
	if cfg.MaxResults <= 0 {
		cfg.MaxResults = DefaultConfig().MaxResults
	}
	if reg == nil && cfg.Obs != nil {
		reg = cfg.Obs.Registry()
	}
	version, commit := obs.BuildInfo()
	s := &Server{
		reg:      reg,
		cfg:      cfg,
		started:  time.Now(),
		version:  version,
		inflight: make(chan struct{}, cfg.MaxInFlight),
	}
	// akb_build_info is the Prometheus idiom for exposing identity:
	// constant 1, the facts ride in the labels.
	reg.GaugeWith("akb_build_info", map[string]string{
		"version": version, "commit": commit, "goversion": obs.GoVersion(),
	}).Set(1)
	s.setHealth(HealthStarting)
	if st != nil {
		s.install(st)
		s.setHealth(HealthServing)
	}
	s.handler = s.buildHandler()
	return s
}

// install adopts a store as the next generation.
func (s *Server) install(st store.Querier) *generation {
	q := st
	if s.cfg.WrapQuerier != nil {
		q = s.cfg.WrapQuerier(q)
	}
	g := &generation{st: st, q: q, num: s.genSeq.Add(1), cache: newRespCache(s.cfg.CacheSize)}
	s.cur.Store(g)
	s.gauge("akb_serve_store_generation").Set(float64(g.num))
	return g
}

func (s *Server) setHealth(h Health) {
	s.health.Store(int32(h))
	s.gauge("akb_serve_health_state").Set(float64(h))
}

// Health returns the current lifecycle state.
func (s *Server) Health() Health { return Health(s.health.Load()) }

// Generation returns the serving generation number (0 before any store
// is installed).
func (s *Server) Generation() uint64 {
	if g := s.cur.Load(); g != nil {
		return g.num
	}
	return 0
}

// ReloadInfo describes the generation a successful Reload installed.
type ReloadInfo struct {
	Generation uint64 `json:"generation"`
	Facts      int    `json:"facts"`
	Entities   int    `json:"entities"`
}

// Reload loads a fresh store through Config.Reloader and swaps it in
// atomically. The load runs off the serving path: concurrent requests
// keep reading the old generation until the successful swap, and on any
// failure — no reloader, load error, empty store — the old generation
// keeps serving, the server enters the degraded state and the error is
// both returned and surfaced on /healthz. A later successful reload
// clears the degradation.
func (s *Server) Reload() (ReloadInfo, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	// A reload is a trace-worthy event: when the server carries a
	// telemetry run, the swap appears as a span alongside the request
	// spans it raced with.
	var span *obs.Span
	if s.cfg.Obs != nil {
		_, span = obs.StartSpan(obs.Into(context.Background(), s.cfg.Obs), "reload")
		defer span.End()
	}
	fail := func(err error) (ReloadInfo, error) {
		span.RecordError(err)
		s.counter("akb_serve_reload_failures_total").Inc()
		msg := err.Error()
		s.lastReloadErr.Store(&msg)
		// Only a server that ever served can be degraded; a failed first
		// load keeps it starting.
		if s.Health() == HealthServing {
			s.setHealth(HealthDegraded)
		}
		return ReloadInfo{}, err
	}
	if s.cfg.Reloader == nil {
		return fail(errors.New("serve: no reloader configured (start with a snapshot to enable hot reload)"))
	}
	st, err := s.cfg.Reloader()
	if err != nil {
		return fail(fmt.Errorf("serve: reload: %w", err))
	}
	if st == nil || st.Len() == 0 {
		return fail(errors.New("serve: reload: refusing to swap in an empty store"))
	}
	g := s.install(st)
	span.AnnotateInt("generation", int64(g.num))
	s.lastReloadErr.Store(nil)
	if h := s.Health(); h == HealthStarting || h == HealthDegraded {
		s.setHealth(HealthServing)
	}
	s.counter("akb_serve_reloads_total").Inc()
	return ReloadInfo{Generation: g.num, Facts: st.Len(), Entities: st.EntityCount()}, nil
}

// Handler returns the fully wrapped HTTP handler (recovery, shedding,
// timeout, metrics, routing). Tests drive it through httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// ListenAndServe runs the server until ctx is cancelled (SIGTERM wiring
// is the caller's job), then shuts down gracefully: the listener closes
// immediately, in-flight requests get up to DrainTimeout to finish.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve runs the server on an existing listener; see ListenAndServe.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		s.setHealth(HealthDraining)
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		<-errc // Serve has returned ErrServerClosed
		return nil
	}
}

// buildHandler assembles the middleware chain, outermost first: request
// identity + access log + tracing (observe), panic recovery, metrics +
// load shedding, the request timeout, then cache + routes (each route
// handler carries its own recovery too, so a panic inside a handler
// yields a JSON 500 instead of bubbling into the timeout wrapper's
// plainer one).
func (s *Server) buildHandler() http.Handler {
	// Routes register without a method in the pattern and enforce it via
	// methodGuard instead: the Go 1.22 mux answers a method mismatch with
	// a text/plain 405, and every /v1 response — errors included — must
	// wear the JSON envelope.
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", methodGuard(http.MethodGet, s.jsonRoute(s.handleHealthz, false)))
	mux.HandleFunc("/readyz", methodGuard(http.MethodGet, s.jsonRoute(s.handleReadyz, false)))
	mux.HandleFunc("/metrics", methodGuard(http.MethodGet, s.handleMetricsNegotiated(s.jsonRoute(s.handleMetrics, false))))
	mux.HandleFunc("/v1/entity/{id}", methodGuard(http.MethodGet, s.jsonRoute(s.handleEntity, true)))
	mux.HandleFunc("/v1/triples/{entity}/{attr}", methodGuard(http.MethodGet, s.jsonRoute(s.handleTriples, true)))
	mux.HandleFunc("/v1/query", methodGuard(http.MethodGet, s.jsonRoute(s.handleQuery, true)))
	mux.HandleFunc("/v1/datalog", methodGuard(http.MethodPost, s.jsonRoute(s.handleDatalog, false)))
	mux.HandleFunc("/v1/admin/reload", methodGuard(http.MethodPost, s.jsonRoute(s.handleReload, false)))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, errBody(http.StatusNotFound, "unknown route"))
	})

	var inner http.Handler = mux
	inner = http.TimeoutHandler(inner, s.cfg.RequestTimeout,
		`{"error":"request timed out","status":503}`)

	shed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.counter("akb_serve_requests_total").Inc()
		select {
		case s.inflight <- struct{}{}:
		default:
			// At capacity: shed instead of queueing, so overload degrades
			// into fast 429s rather than collapse.
			s.counter("akb_serve_shed_total").Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errBody(http.StatusTooManyRequests, "server at capacity, retry later"))
			return
		}
		s.gauge("akb_serve_inflight").Add(1)
		start := time.Now()
		defer func() {
			<-s.inflight
			s.gauge("akb_serve_inflight").Add(-1)
			// Route latencies are tens of microseconds off the indexed
			// store, so the histogram uses the sub-millisecond serve bounds,
			// not the coarser pipeline-stage defaults.
			s.reg.Histogram("akb_serve_latency_seconds", obs.ServeLatencyBuckets()).
				Observe(time.Since(start).Seconds())
		}()
		inner.ServeHTTP(w, r)
	})

	// Near-outermost: last-resort panic isolation. Handler panics are
	// caught per-route inside jsonRoute (where a clean JSON 500 can still
	// be written); this layer catches anything escaping the middleware
	// itself so a panic can never kill the serving goroutine's process.
	// observe wraps even that, so a recovered panic's 500 still carries a
	// request ID and lands in the access log.
	return s.observe(s.recoverPanic(shed))
}

// methodGuard enforces one HTTP method per route, answering mismatches
// with the JSON error envelope (plus an Allow header) instead of the
// mux's plain-text 405. GET routes accept HEAD too, matching what a
// method-qualified mux pattern would do.
func methodGuard(method string, h http.HandlerFunc) http.HandlerFunc {
	allow := method
	if method == http.MethodGet {
		allow = "GET, HEAD"
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method == method || (method == http.MethodGet && r.Method == http.MethodHead) {
			h(w, r)
			return
		}
		w.Header().Set("Allow", allow)
		writeJSON(w, http.StatusMethodNotAllowed,
			errBody(http.StatusMethodNotAllowed, "method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow))
	}
}

// handleMetricsNegotiated serves /metrics in two formats: the JSON
// registry dump (the default, byte-compatible with what `akb report`
// and existing tooling consume) or the Prometheus text exposition when
// the client asks for it — `?format=prom` (or `prometheus`) explicitly,
// or an Accept header naming application/openmetrics-text or text/plain
// (what Prometheus scrapers send). Browsers and bare curl send Accept:
// */*, which stays JSON.
func (s *Server) handleMetricsNegotiated(jsonHandler http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Scrape-time gauges: computed on read, not on a ticker.
		s.gauge("akb_serve_uptime_seconds").Set(time.Since(s.started).Seconds())
		if !wantsProm(r) {
			jsonHandler(w, r)
			return
		}
		w.Header().Set("Content-Type", obs.PromContentType)
		if g := s.cur.Load(); g != nil {
			w.Header().Set("X-Akb-Generation", strconv.FormatUint(g.num, 10))
		}
		if err := s.reg.WritePrometheus(w); err != nil {
			s.counter("akb_serve_errors_total").Inc()
		}
	}
}

// wantsProm decides the /metrics representation; see
// handleMetricsNegotiated. The explicit format parameter wins over the
// Accept header.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain")
}

// recoverPanic converts a panic below h into a 500 (when the response
// has not started) and an akb_serve_panics increment. ErrAbortHandler
// keeps its net/http meaning and is re-panicked.
func (s *Server) recoverPanic(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec)
			}
			s.counter("akb_serve_panics").Inc()
			writeJSON(w, http.StatusInternalServerError,
				errBody(http.StatusInternalServerError, "internal error: %v", rec))
		}()
		h.ServeHTTP(w, r)
	})
}

// routeResult is a handler's outcome before encoding.
type routeResult struct {
	status int
	body   any
}

// errorBody is the uniform error envelope every non-2xx response uses.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func errBody(status int, format string, args ...any) errorBody {
	return errorBody{Error: fmt.Sprintf(format, args...), Status: status}
}

func errRes(status int, format string, args ...any) routeResult {
	return routeResult{status, errBody(status, format, args...)}
}

// jsonRoute adapts a typed handler into an http.HandlerFunc. The handler
// reads exactly one store generation (loaded once, up front) and
// successful cacheable responses go through that generation's cache, so
// a hot swap mid-request can neither tear a response nor serve a stale
// cached body under the new generation. A panicking handler yields a
// JSON 500 and an akb_serve_panics increment.
func (s *Server) jsonRoute(h func(*generation, *http.Request) routeResult, cacheable bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g := s.cur.Load()
		if g != nil {
			w.Header().Set("X-Akb-Generation", strconv.FormatUint(g.num, 10))
		}
		if cacheable && g == nil {
			writeJSON(w, http.StatusServiceUnavailable,
				errBody(http.StatusServiceUnavailable, "no store loaded yet (state %s)", s.Health()))
			return
		}
		key := r.URL.RequestURI()
		if cacheable {
			if status, body, ok := g.cache.get(key); ok {
				s.counter("akb_serve_cache_hits_total").Inc()
				writeRaw(w, status, body)
				return
			}
			s.counter("akb_serve_cache_misses_total").Inc()
		}
		res, panicked := s.callRoute(h, g, r)
		if panicked {
			s.counter("akb_serve_panics").Inc()
		}
		if res.status >= http.StatusInternalServerError {
			s.counter("akb_serve_errors_total").Inc()
		}
		raw, err := json.Marshal(res.body)
		if err != nil {
			s.counter("akb_serve_errors_total").Inc()
			writeJSON(w, http.StatusInternalServerError, errBody(http.StatusInternalServerError, "encode response"))
			return
		}
		if cacheable && res.status == http.StatusOK {
			g.cache.put(key, res.status, raw)
		}
		writeRaw(w, res.status, raw)
	}
}

// callRoute runs one typed handler with panic isolation: a panic becomes
// a 500 routeResult instead of unwinding the connection goroutine.
func (s *Server) callRoute(h func(*generation, *http.Request) routeResult, g *generation, r *http.Request) (res routeResult, panicked bool) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
			panic(rec)
		}
		panicked = true
		res = errRes(http.StatusInternalServerError, "internal error: %v", rec)
	}()
	return h(g, r), false
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	raw, err := json.Marshal(body)
	if err != nil {
		raw = []byte(`{"error":"encode response","status":500}`)
		status = http.StatusInternalServerError
	}
	writeRaw(w, status, raw)
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

// valueOut is one accepted value in an API response.
type valueOut struct {
	Value      string   `json:"value"`
	Confidence float64  `json:"confidence"`
	Sources    int      `json:"sources,omitempty"`
	Ancestors  []string `json:"ancestors,omitempty"`
}

func toValueOut(f store.Fact) valueOut {
	return valueOut{Value: f.Value, Confidence: f.Confidence, Sources: f.Sources, Ancestors: f.Ancestors}
}

// entityID decodes a path segment into a store entity name. Entity IRIs
// replace spaces with underscores, so /v1/entity/Film_3 and
// /v1/entity/Film%203 both resolve.
func entityID(q store.Querier, raw string) string {
	if len(q.Entity(raw)) > 0 {
		return raw
	}
	return strings.ReplaceAll(raw, "_", " ")
}

// healthzBody is the /healthz (and /readyz) response shape.
type healthzBody struct {
	Status          string   `json:"status"`
	Ready           bool     `json:"ready"`
	Version         string   `json:"version"`
	Generation      uint64   `json:"generation"`
	Facts           int      `json:"facts"`
	Entities        int      `json:"entities"`
	Shards          int      `json:"shards,omitempty"`
	Classes         []string `json:"classes,omitempty"`
	UptimeMS        int64    `json:"uptime_ms"`
	LastReloadError string   `json:"last_reload_error,omitempty"`
}

func (s *Server) healthBody(g *generation) healthzBody {
	h := s.Health()
	body := healthzBody{
		Status:   h.String(),
		Ready:    h.ready(),
		Version:  s.version,
		UptimeMS: time.Since(s.started).Milliseconds(),
	}
	if g != nil {
		// Summary numbers come straight from the immutable store, not the
		// (possibly chaos-wrapped) querier: liveness must stay reliable
		// under injected faults.
		body.Generation = g.num
		body.Facts = g.st.Len()
		body.Entities = g.st.EntityCount()
		body.Classes = g.st.Classes()
		if sh, ok := g.st.(interface{ ShardCount() int }); ok {
			body.Shards = sh.ShardCount()
		}
	}
	if msg := s.lastReloadErr.Load(); msg != nil {
		body.LastReloadError = *msg
	}
	return body
}

// handleHealthz is the liveness probe: 200 in every state, because the
// process is demonstrably up; the body carries the state machine.
func (s *Server) handleHealthz(g *generation, _ *http.Request) routeResult {
	return routeResult{http.StatusOK, s.healthBody(g)}
}

// handleReadyz is the readiness probe: 200 only when query traffic is
// being served (serving or degraded), 503 while starting or draining so
// load balancers route around the instance.
func (s *Server) handleReadyz(g *generation, _ *http.Request) routeResult {
	body := s.healthBody(g)
	if !body.Ready {
		return routeResult{http.StatusServiceUnavailable, body}
	}
	return routeResult{http.StatusOK, body}
}

func (s *Server) handleReload(_ *generation, _ *http.Request) routeResult {
	info, err := s.Reload()
	if err != nil {
		return errRes(http.StatusInternalServerError, "%v", err)
	}
	return routeResult{http.StatusOK, struct {
		Status string `json:"status"`
		ReloadInfo
	}{"reloaded", info}}
}

func (s *Server) handleMetrics(_ *generation, _ *http.Request) routeResult {
	snap := s.reg.Snapshot()
	if snap == nil {
		snap = []obs.Metric{}
	}
	return routeResult{http.StatusOK, struct {
		Metrics []obs.Metric `json:"metrics"`
	}{snap}}
}

func (s *Server) handleEntity(g *generation, r *http.Request) routeResult {
	id := entityID(g.q, r.PathValue("id"))
	facts := g.q.Entity(id)
	if len(facts) == 0 {
		return errRes(http.StatusNotFound, "no fused knowledge about entity %q", id)
	}
	attrs := make(map[string][]valueOut)
	for _, f := range facts {
		attrs[f.Attr] = append(attrs[f.Attr], toValueOut(f))
	}
	return routeResult{http.StatusOK, struct {
		Entity     string                `json:"entity"`
		Class      string                `json:"class,omitempty"`
		Facts      int                   `json:"facts"`
		Attributes map[string][]valueOut `json:"attributes"`
	}{id, facts[0].Class, len(facts), attrs}}
}

func (s *Server) handleTriples(g *generation, r *http.Request) routeResult {
	entity := entityID(g.q, r.PathValue("entity"))
	// Attribute names are canonical with spaces; accept the underscore
	// form too, mirroring how attribute IRIs are minted.
	attr := r.PathValue("attr")
	facts := g.q.Triples(entity, attr)
	if len(facts) == 0 {
		attr = strings.ReplaceAll(attr, "_", " ")
		facts = g.q.Triples(entity, attr)
	}
	if len(facts) == 0 {
		return errRes(http.StatusNotFound, "no accepted values for (%s, %s)", entity, attr)
	}
	values := make([]valueOut, 0, len(facts))
	for _, f := range facts {
		values = append(values, toValueOut(f))
	}
	return routeResult{http.StatusOK, struct {
		Entity string     `json:"entity"`
		Attr   string     `json:"attr"`
		Values []valueOut `json:"values"`
	}{entity, attr, values}}
}

func (s *Server) handleQuery(g *generation, r *http.Request) routeResult {
	qs := r.URL.Query()
	for param := range qs {
		switch param {
		case "entity", "class", "attr", "value", "limit":
		default:
			return errRes(http.StatusBadRequest, "unknown query parameter %q", param)
		}
	}
	q := store.Pattern{
		Entity: qs.Get("entity"),
		Class:  qs.Get("class"),
		Attr:   qs.Get("attr"),
		Value:  qs.Get("value"),
	}
	if q == (store.Pattern{}) {
		return errRes(http.StatusBadRequest, "at least one of entity, class, attr, value is required")
	}
	limit := s.cfg.MaxResults
	if raw := qs.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return errRes(http.StatusBadRequest, "invalid limit %q", raw)
		}
		if n < limit {
			limit = n
		}
	}
	// Capped lookups push the limit into the store when it supports it —
	// a sharded querier then materialises at most limit facts per shard
	// instead of the full result set. The fallback (full Lookup, then
	// truncate) returns byte-identical responses.
	var facts []store.Fact
	var total int
	if lq, ok := g.q.(store.LimitedQuerier); ok {
		facts, total = lq.LookupN(q, limit)
	} else {
		facts = g.q.Lookup(q)
		total = len(facts)
		if len(facts) > limit {
			facts = facts[:limit]
		}
	}
	truncated := total > len(facts)
	if facts == nil {
		facts = []store.Fact{}
	}
	return routeResult{http.StatusOK, struct {
		Generation uint64       `json:"generation"`
		Count      int          `json:"count"`
		Total      int          `json:"total"`
		Truncated  bool         `json:"truncated,omitempty"`
		Facts      []store.Fact `json:"facts"`
	}{g.num, len(facts), total, truncated, facts}}
}

func (s *Server) counter(name string) *obs.Counter { return s.reg.Counter(name) }
func (s *Server) gauge(name string) *obs.Gauge     { return s.reg.Gauge(name) }

// respCache is a bounded response cache over one immutable store
// generation. It never evicts (the key space is finite and the
// generation never changes; a reload retires the whole cache with its
// generation); once full it simply stops admitting, which keeps the
// implementation free of LRU bookkeeping on the hot path.
type respCache struct {
	mu     sync.RWMutex
	max    int
	bodies map[string]cachedResp
}

type cachedResp struct {
	status int
	body   []byte
}

func newRespCache(max int) *respCache {
	return &respCache{max: max, bodies: make(map[string]cachedResp)}
}

func (c *respCache) get(key string) (int, []byte, bool) {
	if c.max <= 0 {
		return 0, nil, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.bodies[key]
	return r.status, r.body, ok
}

func (c *respCache) put(key string, status int, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.bodies) >= c.max {
		return
	}
	c.bodies[key] = cachedResp{status, body}
}

// Keys returns the cached keys in sorted order (for tests).
func (c *respCache) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.bodies))
	for k := range c.bodies {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
