package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"akb/internal/obs"
	"akb/internal/resilience"
	"akb/internal/store"
)

// markerStore builds a store whose every fact carries the marker as its
// value, so any response body reveals which store it was answered from.
func markerStore(marker string, n int) *store.Store {
	facts := make([]store.Fact, 0, n)
	for i := 0; i < n; i++ {
		facts = append(facts, store.Fact{
			Entity: fmt.Sprintf("Entity %d", i), Class: "Thing",
			Attr: "marker", Value: marker, Confidence: 1,
		})
	}
	return store.New(facts)
}

func post(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("%s: bad JSON %q: %v", url, raw, err)
	}
	return resp.StatusCode, body
}

// TestErrorEnvelopeUniform asserts every error status the API can emit
// uses the same {"error", "status"} envelope, and that the 429 carries a
// numeric Retry-After.
func TestErrorEnvelopeUniform(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInFlight = 1
	s, ts := testServer(t, cfg)

	cases := []struct {
		name, url string
		want      int
	}{
		{"bad request", "/v1/query?claas=Film", http.StatusBadRequest},
		{"missing entity", "/v1/entity/Nobody", http.StatusNotFound},
		{"unknown route", "/v2/everything", http.StatusNotFound},
		{"reload unconfigured", "POST /v1/admin/reload", http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body map[string]any
			if method, url, ok := func(u string) (string, string, bool) {
				if len(u) > 5 && u[:5] == "POST " {
					return "POST", u[5:], true
				}
				return "", u, false
			}(tc.url); ok && method == "POST" {
				status, body = post(t, ts.URL+url)
			} else {
				status, body = get(t, ts.URL+tc.url)
			}
			if status != tc.want {
				t.Fatalf("status = %d, want %d (%v)", status, tc.want, body)
			}
			if body["error"] == "" || body["error"] == nil {
				t.Errorf("missing error field: %v", body)
			}
			if body["status"] != float64(tc.want) {
				t.Errorf("envelope status = %v, want %d", body["status"], tc.want)
			}
		})
	}

	// The shed 429 uses the same envelope and a numeric Retry-After.
	s.inflight <- struct{}{}
	defer func() { <-s.inflight }()
	resp, err := http.Get(ts.URL + "/v1/query?class=Film")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if _, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil {
		t.Errorf("Retry-After %q is not numeric", resp.Header.Get("Retry-After"))
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == nil || body["status"] != float64(429) {
		t.Errorf("429 envelope = %v", body)
	}
}

// TestPanicIsolation injects a panicking querier via the chaos seam and
// asserts the server answers 500 (enveloped), counts the panic, and
// keeps serving afterwards — the process-killing panic is gone.
func TestPanicIsolation(t *testing.T) {
	ctl := store.NewChaosController(&resilience.FaultPlan{
		Seed:    3,
		Default: resilience.StageFault{FailProb: 1, Transient: true},
	})
	cfg := DefaultConfig()
	cfg.WrapQuerier = ctl.Wrap
	s := New(testStore(), obs.NewRegistry(), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := get(t, ts.URL+"/v1/query?class=Film")
	if status != http.StatusInternalServerError {
		t.Fatalf("faulted query: status = %d body = %v", status, body)
	}
	if body["error"] == nil || body["status"] != float64(500) {
		t.Errorf("500 envelope = %v", body)
	}
	if n := s.reg.Counter("akb_serve_panics").Value(); n != 1 {
		t.Errorf("akb_serve_panics = %d, want 1", n)
	}
	// Health stays live and ready: a handler panic is not a lifecycle event.
	if status, hb := get(t, ts.URL+"/healthz"); status != http.StatusOK || hb["status"] != "serving" {
		t.Errorf("healthz after panic: %d %v", status, hb)
	}
	// Chaos off → clean service, no new panics.
	ctl.SetEnabled(false)
	status, _ = get(t, ts.URL+"/v1/query?class=Film")
	if status != http.StatusOK {
		t.Errorf("recovered query: status = %d", status)
	}
	if n := s.reg.Counter("akb_serve_panics").Value(); n != 1 {
		t.Errorf("akb_serve_panics grew after chaos disabled: %d", n)
	}
}

// TestReloadSwapsGeneration exercises the happy reload path through the
// admin endpoint: new generation, new facts, invalidated cache, healthz
// back to serving.
func TestReloadSwapsGeneration(t *testing.T) {
	next := markerStore("gen2", 3)
	cfg := DefaultConfig()
	cfg.Reloader = func() (store.Querier, error) { return next, nil }
	s := New(markerStore("gen1", 3), obs.NewRegistry(), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Prime the cache on generation 1.
	if _, body := get(t, ts.URL+"/v1/query?attr=marker"); body["generation"] != float64(1) {
		t.Fatalf("first generation: %v", body)
	}
	get(t, ts.URL+"/v1/query?attr=marker")

	status, body := post(t, ts.URL+"/v1/admin/reload")
	if status != http.StatusOK || body["status"] != "reloaded" || body["generation"] != float64(2) {
		t.Fatalf("reload: %d %v", status, body)
	}
	if n := s.reg.Counter("akb_serve_reloads_total").Value(); n != 1 {
		t.Errorf("reloads counter = %d", n)
	}

	// The same query must now come from generation 2 — a stale cached
	// gen-1 body here would mean the cache survived the swap.
	_, body = get(t, ts.URL+"/v1/query?attr=marker")
	if body["generation"] != float64(2) {
		t.Errorf("query after reload still on old generation: %v", body)
	}
	facts := body["facts"].([]any)
	if v := facts[0].(map[string]any)["value"]; v != "gen2" {
		t.Errorf("stale facts after reload: %v", v)
	}
}

// TestReloadFailureKeepsServing covers the degraded path: a failing or
// empty reload leaves the old generation serving, flips healthz to
// degraded with the error, and a later good reload clears it.
func TestReloadFailureKeepsServing(t *testing.T) {
	var fail atomic.Bool
	var empty atomic.Bool
	good := markerStore("gen2", 3)
	cfg := DefaultConfig()
	cfg.Reloader = func() (store.Querier, error) {
		if fail.Load() {
			return nil, errors.New("disk on fire")
		}
		if empty.Load() {
			return store.New(nil), nil
		}
		return good, nil
	}
	s := New(markerStore("gen1", 3), obs.NewRegistry(), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fail.Store(true)
	status, body := post(t, ts.URL+"/v1/admin/reload")
	if status != http.StatusInternalServerError || body["status"] != float64(500) {
		t.Fatalf("failed reload: %d %v", status, body)
	}
	if n := s.reg.Counter("akb_serve_reload_failures_total").Value(); n != 1 {
		t.Errorf("reload failure counter = %d", n)
	}

	// Old generation still serves; health degraded but ready.
	_, qbody := get(t, ts.URL+"/v1/query?attr=marker")
	if qbody["generation"] != float64(1) {
		t.Errorf("generation after failed reload: %v", qbody["generation"])
	}
	status, hb := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || hb["status"] != "degraded" || hb["last_reload_error"] == nil {
		t.Errorf("healthz after failed reload: %d %v", status, hb)
	}
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Errorf("degraded server must stay ready, readyz = %d", status)
	}

	// An empty store is rejected the same way.
	fail.Store(false)
	empty.Store(true)
	if status, _ := post(t, ts.URL+"/v1/admin/reload"); status != http.StatusInternalServerError {
		t.Errorf("empty reload accepted: %d", status)
	}

	// A good reload heals the state machine.
	empty.Store(false)
	if status, _ := post(t, ts.URL+"/v1/admin/reload"); status != http.StatusOK {
		t.Fatalf("healing reload failed: %d", status)
	}
	_, hb = get(t, ts.URL+"/healthz")
	if hb["status"] != "serving" || hb["last_reload_error"] != nil {
		t.Errorf("healthz after healing reload: %v", hb)
	}
}

// TestStartingState covers the nil-store boot: liveness 200/"starting",
// readiness 503, query routes 503 with the envelope — then the first
// successful reload flips everything to serving.
func TestStartingState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reloader = func() (store.Querier, error) { return markerStore("gen1", 2), nil }
	s := New(nil, obs.NewRegistry(), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || body["status"] != "starting" || body["ready"] != false {
		t.Fatalf("healthz while starting: %d %v", status, body)
	}
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("readyz while starting = %d, want 503", status)
	}
	status, body = get(t, ts.URL+"/v1/query?class=Thing")
	if status != http.StatusServiceUnavailable || body["status"] != float64(503) {
		t.Errorf("query while starting: %d %v", status, body)
	}
	// The POST route bypasses jsonRoute's cacheable-path nil guard, so
	// handleDatalog carries its own: same 503 envelope, no panic-500.
	status, body = postDatalog(t, ts.URL, `{"query": "?e ?a ?v"}`)
	if status != http.StatusServiceUnavailable || body["status"] != float64(503) {
		t.Errorf("datalog while starting: %d %v", status, body)
	}

	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if s.Health() != HealthServing {
		t.Errorf("health after first reload = %v", s.Health())
	}
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Errorf("readyz after first reload = %d", status)
	}
}

// TestHotReloadUnderLoad hammers /v1/query from many goroutines while
// snapshots swap in a loop. Under -race this validates the atomic
// generation handle; the assertions validate torn-read freedom: every
// response's facts all belong to one store generation, and the reported
// generation number matches the X-Akb-Generation header.
func TestHotReloadUnderLoad(t *testing.T) {
	const swaps = 40
	gen := atomic.Int64{}
	cfg := DefaultConfig()
	cfg.Reloader = func() (store.Querier, error) {
		// Generation g serves marker "m<g>". The reloader is called with
		// gen already advanced by the swapping goroutine.
		return markerStore(fmt.Sprintf("m%d", gen.Load()), 4), nil
	}
	gen.Store(1)
	s := New(markerStore("m1", 4), obs.NewRegistry(), cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/query?attr=marker")
				if err != nil {
					t.Error(err)
					return
				}
				hdrGen := resp.Header.Get("X-Akb-Generation")
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d: %s", resp.StatusCode, raw)
					return
				}
				var body struct {
					Generation uint64 `json:"generation"`
					Facts      []struct {
						Value string `json:"value"`
					} `json:"facts"`
				}
				if err := json.Unmarshal(raw, &body); err != nil {
					t.Errorf("bad body %q: %v", raw, err)
					return
				}
				if len(body.Facts) == 0 {
					t.Error("empty response mid-swap")
					return
				}
				// Internal consistency: one generation end to end.
				want := fmt.Sprintf("m%d", body.Generation)
				for _, f := range body.Facts {
					if f.Value != want {
						t.Errorf("torn read: body generation %d carries fact %q", body.Generation, f.Value)
						return
					}
				}
				if hdrGen != strconv.FormatUint(body.Generation, 10) {
					t.Errorf("header generation %s != body generation %d", hdrGen, body.Generation)
					return
				}
			}
		}()
	}

	for i := 0; i < swaps; i++ {
		gen.Add(1)
		if _, err := s.Reload(); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if got := s.Generation(); got != uint64(swaps+1) {
		t.Errorf("final generation = %d, want %d", got, swaps+1)
	}
}
