package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"akb/internal/obs"
)

// RequestIDHeader is the header a request's identity travels in. An
// incoming value (a gateway's or client's ID) is adopted; otherwise the
// server generates one. Every response — 2xx, the 4xx/5xx envelopes,
// shed 429s, timeouts and recovered panics — echoes it, so one ID
// follows a request through access logs, traces and the client's own
// records.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds adopted inbound IDs; anything longer (or empty)
// is replaced with a generated one, so a hostile client cannot stuff
// megabytes into every log line.
const maxRequestIDLen = 128

// requestIDKey carries the request ID in the context.
type requestIDKey struct{}

// RequestID returns the request's ID, installed by the observe
// middleware ("" outside a request).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID generates a 16-hex-char random ID, or defers to the
// configured generator (tests inject a deterministic one).
func (s *Server) newRequestID() string {
	if s.cfg.NewRequestID != nil {
		return s.cfg.NewRequestID()
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// counter so requests still get distinct IDs.
		return "fallback-" + time.Now().Format("150405.000000000")
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the status code and body bytes a handler
// writes, for the access log and the request span. The first
// WriteHeader wins, mirroring net/http semantics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += n
	return n, err
}

// observe is the outermost middleware: request identity, tracing and the
// access log. It runs outside panic recovery so even a recovered panic's
// 500 carries the request ID (the header is set before anything below
// can write), and it sees the final status of every outcome — shed 429s,
// timeout 503s, envelope errors, panics.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > maxRequestIDLen {
			id = s.newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)

		// One span per request when the server carries a telemetry run, so
		// slow requests line up against reload/chaos events in the same
		// trace. The run's span cap (set by the caller) bounds retention.
		var span *obs.Span
		if s.cfg.Obs != nil {
			ctx = obs.Into(ctx, s.cfg.Obs)
			ctx, span = obs.StartSpan(ctx, "http "+r.Method+" "+r.URL.Path)
			span.Annotate("request_id", id)
		}

		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		dur := time.Since(start)

		status := rec.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http defaults the status
		}
		if span != nil {
			span.AnnotateInt("status", int64(status))
			span.AnnotateInt("bytes", int64(rec.bytes))
			span.End()
		}
		log := s.cfg.AccessLog
		if status >= http.StatusInternalServerError {
			log.Error("request",
				"id", id, "method", r.Method, "path", r.URL.RequestURI(),
				"status", status, "bytes", rec.bytes, "dur_us", dur.Microseconds(),
				"gen", s.Generation())
			return
		}
		log.Info("request",
			"id", id, "method", r.Method, "path", r.URL.RequestURI(),
			"status", status, "bytes", rec.bytes, "dur_us", dur.Microseconds(),
			"gen", s.Generation())
	})
}
