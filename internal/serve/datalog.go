package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"akb/internal/datalog"
	"akb/internal/obs"
)

// maxDatalogBody bounds the /v1/datalog request body. Queries are a few
// hundred bytes of text; a megabyte is already absurd.
const maxDatalogBody = 1 << 20

// maxDatalogParallelism bounds the per-request worker count a client may
// ask for. Results are identical at any value; only resource use varies.
const maxDatalogParallelism = 16

// datalogRequest is the POST /v1/datalog body. Exactly one of Query
// (the full surface grammar, clauses separated by '.' or newlines) and
// Clauses (one clause per element) carries the conjunction.
type datalogRequest struct {
	Query       string   `json:"query,omitempty"`
	Clauses     []string `json:"clauses,omitempty"`
	Select      []string `json:"select,omitempty"`
	Limit       int      `json:"limit,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`
	Explain     bool     `json:"explain,omitempty"`
}

// datalogResponse mirrors /v1/query's envelope: generation, count/total/
// truncated semantics, plus the variable bindings as one object per row.
type datalogResponse struct {
	Generation uint64              `json:"generation"`
	Query      string              `json:"query"`
	Plan       []string            `json:"plan,omitempty"`
	Vars       []string            `json:"vars"`
	Count      int                 `json:"count"`
	Total      int                 `json:"total"`
	Truncated  bool                `json:"truncated,omitempty"`
	Bindings   []map[string]string `json:"bindings"`
}

// handleDatalog answers conjunctive queries over the serving generation.
// The engine streams bindings off the same querier every other route
// reads, so results are consistent with /v1/query under hot reload and
// identical across flat and sharded layouts.
func (s *Server) handleDatalog(g *generation, r *http.Request) routeResult {
	// The route is registered non-cacheable (URL-keyed caching would be
	// wrong for POST bodies), so jsonRoute's g==nil 503 does not cover
	// it; guard here so a pre-first-snapshot query gets the same 503
	// envelope every other data route returns instead of a panic-500.
	if g == nil {
		return errRes(http.StatusServiceUnavailable, "no store loaded yet (state %s)", s.Health())
	}
	var req datalogRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxDatalogBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return errRes(http.StatusBadRequest, "invalid request body: %v", err)
	}
	if dec.More() {
		return errRes(http.StatusBadRequest, "invalid request body: trailing data after the JSON object")
	}

	text := req.Query
	switch {
	case text != "" && len(req.Clauses) > 0:
		return errRes(http.StatusBadRequest, "send either query or clauses, not both")
	case text == "" && len(req.Clauses) == 0:
		return errRes(http.StatusBadRequest, "one of query or clauses is required")
	case len(req.Clauses) > 0:
		text = strings.Join(req.Clauses, "\n")
	}
	q, err := datalog.Parse(text)
	if err != nil {
		return errRes(http.StatusBadRequest, "%v", err)
	}
	if req.Limit < 0 {
		return errRes(http.StatusBadRequest, "invalid limit %d", req.Limit)
	}
	if req.Parallelism < 0 || req.Parallelism > maxDatalogParallelism {
		return errRes(http.StatusBadRequest, "invalid parallelism %d (0..%d)", req.Parallelism, maxDatalogParallelism)
	}
	q.Select = req.Select
	// The response cap mirrors /v1/query: the server ceiling applies
	// unless the client asks for less; Total stays exact either way.
	q.Limit = s.cfg.MaxResults
	if req.Limit > 0 && req.Limit < q.Limit {
		q.Limit = req.Limit
	}

	plan, err := datalog.PlanQuery(q, g.q)
	if err != nil {
		return errRes(http.StatusBadRequest, "%v", err)
	}

	ctx, span := obs.StartSpan(r.Context(), "datalog")
	defer span.End()
	span.Annotate("query", q.String())
	start := time.Now()
	res, err := datalog.RunPlan(ctx, g.q, q, plan, datalog.Options{Parallelism: req.Parallelism})
	s.reg.Histogram("akb_datalog_latency_seconds", obs.ServeLatencyBuckets()).
		Observe(time.Since(start).Seconds())
	s.counter("akb_datalog_queries_total").Inc()
	if err != nil {
		span.RecordError(err)
		if errors.Is(err, ctx.Err()) {
			return errRes(http.StatusServiceUnavailable, "query cancelled: %v", err)
		}
		return errRes(http.StatusBadRequest, "%v", err)
	}
	s.counter("akb_datalog_rows_total").Add(int64(res.Total))
	s.counter("akb_datalog_probes_total").Add(res.Probes)
	span.AnnotateInt("rows", int64(res.Total))
	span.AnnotateInt("probes", res.Probes)

	out := datalogResponse{
		Generation: g.num,
		Query:      q.String(),
		Vars:       res.Vars,
		Count:      len(res.Rows),
		Total:      res.Total,
		Truncated:  res.Truncated,
		Bindings:   make([]map[string]string, 0, len(res.Rows)),
	}
	if out.Vars == nil {
		out.Vars = []string{}
	}
	if req.Explain {
		for i, st := range plan.Steps {
			out.Plan = append(out.Plan, fmt.Sprintf("%d. [%s, est %d] %s", i+1, st.Strategy, st.Estimate, st.Clause))
		}
	}
	for _, row := range res.Rows {
		b := make(map[string]string, len(res.Vars))
		for i, v := range res.Vars {
			b[v] = row[i]
		}
		out.Bindings = append(out.Bindings, b)
	}
	return routeResult{http.StatusOK, out}
}
