package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"akb/internal/store"
)

func postDatalog(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/datalog", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
	return resp.StatusCode, out
}

func TestDatalogRoute(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())

	// A join: films and their directors' other facts via shared ?f.
	status, body := postDatalog(t, ts.URL,
		`{"query": "?f director ?d . ?f language ?l", "select": ["d", "l"]}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d body = %v", status, body)
	}
	if got := body["vars"]; !reflect.DeepEqual(got, []any{"d", "l"}) {
		t.Errorf("vars = %v", got)
	}
	bindings := body["bindings"].([]any)
	if len(bindings) != 2 || body["total"] != float64(2) || body["count"] != float64(2) {
		t.Fatalf("bindings = %v total = %v", bindings, body["total"])
	}
	for _, b := range bindings {
		m := b.(map[string]any)
		if m["d"] != "Michael Curtiz" {
			t.Errorf("binding = %v", m)
		}
	}
	if _, ok := body["truncated"]; ok {
		t.Errorf("untruncated response should omit truncated, got %v", body["truncated"])
	}

	// The clauses array form is the same query.
	status2, body2 := postDatalog(t, ts.URL,
		`{"clauses": ["?f director ?d", "?f language ?l"], "select": ["d", "l"]}`)
	if status2 != http.StatusOK || !reflect.DeepEqual(body2["bindings"], body["bindings"]) {
		t.Errorf("clauses form diverges: %d %v", status2, body2)
	}

	// Parallel execution is byte-identical.
	_, body3 := postDatalog(t, ts.URL,
		`{"query": "?f director ?d . ?f language ?l", "select": ["d", "l"], "parallelism": 4}`)
	if !reflect.DeepEqual(body3["bindings"], body["bindings"]) {
		t.Errorf("parallel bindings diverge: %v", body3)
	}
}

func TestDatalogClassAndExplain(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	status, body := postDatalog(t, ts.URL, `{"query": "?e:Book ?a ?v", "explain": true}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d body = %v", status, body)
	}
	b := body["bindings"].([]any)[0].(map[string]any)
	if b["e"] != "Moby Dick" {
		t.Errorf("class-restricted binding = %v", b)
	}
	plan := body["plan"].([]any)
	if len(plan) != 1 || !strings.Contains(plan[0].(string), "scan") {
		t.Errorf("plan = %v", plan)
	}
	if body["query"] != "?e:Book ?a ?v" {
		t.Errorf("canonical query = %v", body["query"])
	}
}

func TestDatalogLimitTruncation(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	status, body := postDatalog(t, ts.URL, `{"query": "?e ?a ?v", "limit": 2}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if body["count"] != float64(2) || body["total"] != float64(5) || body["truncated"] != true {
		t.Errorf("count/total/truncated = %v/%v/%v", body["count"], body["total"], body["truncated"])
	}

	// The server ceiling caps even greedy clients.
	cfg := DefaultConfig()
	cfg.MaxResults = 3
	_, ts2 := testServer(t, cfg)
	_, body = postDatalog(t, ts2.URL, `{"query": "?e ?a ?v", "limit": 100}`)
	if body["count"] != float64(3) || body["total"] != float64(5) || body["truncated"] != true {
		t.Errorf("ceiling: count/total/truncated = %v/%v/%v", body["count"], body["total"], body["truncated"])
	}
}

func TestDatalogValidation(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	cases := []struct {
		name, body, wantSub string
	}{
		{"empty body", ``, "invalid request body"},
		{"not json", `nope`, "invalid request body"},
		{"unknown field", `{"query": "?e ?a ?v", "order_by": "e"}`, "unknown field"},
		{"trailing data", `{"query": "?e ?a ?v"} {"again": true}`, "trailing data"},
		{"neither form", `{"select": ["e"]}`, "one of query or clauses"},
		{"both forms", `{"query": "?e ?a ?v", "clauses": ["?e ?a ?v"]}`, "not both"},
		{"parse error", `{"query": "?e ?a"}`, "want 3 terms"},
		{"unbound select", `{"query": "?e ?a ?v", "select": ["ghost"]}`, "appears in no clause"},
		{"negative limit", `{"query": "?e ?a ?v", "limit": -1}`, "invalid limit"},
		{"bad parallelism", `{"query": "?e ?a ?v", "parallelism": 99}`, "invalid parallelism"},
		{"too many clauses", `{"query": "` + strings.Repeat(`?a ?b ?c . `, 17) + `"}`, "exceeds the limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := postDatalog(t, ts.URL, c.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d body = %v", status, body)
			}
			if msg, _ := body["error"].(string); !strings.Contains(msg, c.wantSub) {
				t.Errorf("error = %q, want substring %q", msg, c.wantSub)
			}
			if body["status"] != float64(http.StatusBadRequest) {
				t.Errorf("envelope status = %v", body["status"])
			}
		})
	}
}

// TestDatalogMatchesQueryRoute is the unified-API property over HTTP: a
// single-clause datalog query returns exactly the facts /v1/query
// returns for the equivalent pattern, entity by entity.
func TestDatalogMatchesQueryRoute(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())

	status, qbody := get(t, ts.URL+"/v1/query?attr=language")
	if status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	var wantValues []any
	for _, f := range qbody["facts"].([]any) {
		wantValues = append(wantValues, f.(map[string]any)["value"])
	}

	status, dbody := postDatalog(t, ts.URL, `{"query": "?e language ?v", "select": ["v"]}`)
	if status != http.StatusOK {
		t.Fatalf("datalog status = %d", status)
	}
	var gotValues []any
	for _, b := range dbody["bindings"].([]any) {
		gotValues = append(gotValues, b.(map[string]any)["v"])
	}
	if !reflect.DeepEqual(gotValues, wantValues) {
		t.Errorf("datalog values %v != /v1/query values %v", gotValues, wantValues)
	}
	if dbody["total"] != qbody["total"] {
		t.Errorf("totals diverge: %v vs %v", dbody["total"], qbody["total"])
	}
}

// TestMethodNotAllowedEnvelope pins the 405 contract on every route:
// JSON envelope, status field, Allow header — never the mux's text/plain.
func TestMethodNotAllowedEnvelope(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/healthz", "GET, HEAD"},
		{http.MethodDelete, "/readyz", "GET, HEAD"},
		{http.MethodPost, "/metrics", "GET, HEAD"},
		{http.MethodPost, "/v1/entity/Casablanca", "GET, HEAD"},
		{http.MethodPut, "/v1/triples/Casablanca/director", "GET, HEAD"},
		{http.MethodPost, "/v1/query", "GET, HEAD"},
		{http.MethodGet, "/v1/datalog", "POST"},
		{http.MethodGet, "/v1/admin/reload", "POST"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d", c.method, c.path, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s %s: Content-Type = %q, want JSON envelope", c.method, c.path, ct)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
		var body map[string]any
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Errorf("%s %s: non-JSON 405 body %q", c.method, c.path, raw)
			continue
		}
		if body["status"] != float64(http.StatusMethodNotAllowed) || body["error"] == "" {
			t.Errorf("%s %s: envelope = %v", c.method, c.path, body)
		}
	}

	// HEAD keeps working on GET routes through the guard.
	resp, err := http.Head(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD /healthz = %d", resp.StatusCode)
	}
}

// TestQueryRouteByteEquivalence pins the /v1/query adapter after the
// Pattern refactor: the handler's wire bytes are exactly a hand-built
// response from the store's own LookupN — the URL form is a thin
// adapter over store.Pattern, nothing more.
func TestQueryRouteByteEquivalence(t *testing.T) {
	s, ts := testServer(t, DefaultConfig())

	for _, u := range []string{
		"/v1/query?attr=language",
		"/v1/query?class=Film",
		"/v1/query?entity=Casablanca&attr=director",
		"/v1/query?value=China",
		"/v1/query?attr=language&limit=1",
	} {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		req, _ := http.NewRequest(http.MethodGet, u, nil)
		qs := req.URL.Query()
		p := store.Pattern{
			Entity: qs.Get("entity"),
			Class:  qs.Get("class"),
			Attr:   qs.Get("attr"),
			Value:  qs.Get("value"),
		}
		limit := s.cfg.MaxResults
		if raw := qs.Get("limit"); raw != "" {
			if n, err := strconv.Atoi(raw); err == nil && n > 0 && n < limit {
				limit = n
			}
		}
		facts, total := testStore().LookupN(p, limit)
		if facts == nil {
			facts = []store.Fact{}
		}
		want, err := json.Marshal(struct {
			Generation uint64       `json:"generation"`
			Count      int          `json:"count"`
			Total      int          `json:"total"`
			Truncated  bool         `json:"truncated,omitempty"`
			Facts      []store.Fact `json:"facts"`
		}{s.Generation(), len(facts), total, total > len(facts), facts})
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimRight(string(raw), "\n"); got != string(want) {
			t.Errorf("%s:\n got %s\nwant %s", u, got, want)
		}
	}
}
