package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"akb/internal/obs"
	"akb/internal/store"
)

func testStore() *store.Store {
	return store.New([]store.Fact{
		{Entity: "Casablanca", Class: "Film", Attr: "director", Value: "Michael Curtiz", Confidence: 0.97, Sources: 5},
		{Entity: "Casablanca", Class: "Film", Attr: "language", Value: "English", Confidence: 0.92, Sources: 4},
		{Entity: "Casablanca", Class: "Film", Attr: "language", Value: "French", Confidence: 0.71, Sources: 2},
		{Entity: "Susie Fang", Class: "Person", Attr: "birth place", Value: "Wuhan", Confidence: 0.88, Sources: 3,
			Ancestors: []string{"Hubei", "China"}},
		{Entity: "Moby Dick", Class: "Book", Attr: "author", Value: "Herman Melville", Confidence: 0.99, Sources: 7},
	})
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(testStore(), obs.NewRegistry(), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") && resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("%s: Content-Type = %q", url, ct)
	}
	var body map[string]any
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("%s: bad JSON %q: %v", url, raw, err)
	}
	return resp.StatusCode, body
}

func TestEntityRoute(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())

	status, body := get(t, ts.URL+"/v1/entity/Casablanca")
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v", status, body)
	}
	if body["class"] != "Film" || body["facts"] != float64(3) {
		t.Errorf("body = %v", body)
	}
	attrs := body["attributes"].(map[string]any)
	if len(attrs["language"].([]any)) != 2 {
		t.Errorf("multi-truth language values missing: %v", attrs)
	}

	// Underscore form resolves to the same entity.
	status, _ = get(t, ts.URL+"/v1/entity/Susie_Fang")
	if status != http.StatusOK {
		t.Errorf("underscored entity id: status = %d", status)
	}

	status, body = get(t, ts.URL+"/v1/entity/Nobody")
	if status != http.StatusNotFound || body["error"] == "" {
		t.Errorf("missing entity: status = %d body = %v", status, body)
	}
}

func TestTriplesRouteMultiTruth(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())

	status, body := get(t, ts.URL+"/v1/triples/Casablanca/language")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	values := body["values"].([]any)
	if len(values) != 2 {
		t.Fatalf("want both accepted languages, got %v", values)
	}
	first := values[0].(map[string]any)
	if first["value"] != "English" || first["confidence"] != 0.92 {
		t.Errorf("first value = %v", first)
	}

	// Hierarchy ancestors ride along on place-valued attributes, and the
	// underscored attribute path form works.
	status, body = get(t, ts.URL+"/v1/triples/Susie_Fang/birth_place")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	v := body["values"].([]any)[0].(map[string]any)
	anc := v["ancestors"].([]any)
	if len(anc) != 2 || anc[1] != "China" {
		t.Errorf("ancestors = %v", anc)
	}

	status, _ = get(t, ts.URL+"/v1/triples/Casablanca/budget")
	if status != http.StatusNotFound {
		t.Errorf("missing attr: status = %d", status)
	}
}

func TestQueryRoute(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())

	status, body := get(t, ts.URL+"/v1/query?class=Film")
	if status != http.StatusOK || body["count"] != float64(3) {
		t.Errorf("class query: status %d body %v", status, body)
	}

	// Hierarchy-aware value query: China matches the Wuhan fact.
	status, body = get(t, ts.URL+"/v1/query?value=China")
	if status != http.StatusOK || body["count"] != float64(1) {
		t.Errorf("value query: status %d body %v", status, body)
	}

	status, body = get(t, ts.URL+"/v1/query?class=Film&attr=language&limit=1")
	if status != http.StatusOK || body["count"] != float64(1) || body["total"] != float64(2) || body["truncated"] != true {
		t.Errorf("limited query: %v", body)
	}

	// 400 paths: no filter, bad limit, unknown parameter.
	for _, u := range []string{"/v1/query", "/v1/query?limit=5", "/v1/query?class=Film&limit=x", "/v1/query?claas=Film"} {
		status, body = get(t, ts.URL+u)
		if status != http.StatusBadRequest || body["error"] == "" {
			t.Errorf("%s: status = %d body = %v", u, status, body)
		}
	}

	// Empty result is 200 with an empty list, not 404.
	status, body = get(t, ts.URL+"/v1/query?class=Opera")
	if status != http.StatusOK || body["count"] != float64(0) {
		t.Errorf("empty query: status %d body %v", status, body)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())

	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || body["status"] != "serving" || body["facts"] != float64(5) {
		t.Errorf("healthz = %d %v", status, body)
	}
	if body["ready"] != true || body["generation"] != float64(1) {
		t.Errorf("healthz readiness fields: %v", body)
	}
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Errorf("readyz while serving = %d", status)
	}

	// Drive one query so serve counters exist, then check /metrics.
	get(t, ts.URL+"/v1/query?class=Film")
	status, body = get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	names := map[string]bool{}
	for _, m := range body["metrics"].([]any) {
		names[m.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"akb_serve_requests_total", "akb_serve_latency_seconds", "akb_serve_cache_misses_total"} {
		if !names[want] {
			t.Errorf("metric %s missing from /metrics (got %v)", want, names)
		}
	}
}

func TestUnknownRoute404(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	status, body := get(t, ts.URL+"/v2/everything")
	if status != http.StatusNotFound || body["error"] == "" {
		t.Errorf("status = %d body = %v", status, body)
	}
}

// TestLoadShedding fills the in-flight bound and asserts the next request
// is shed with 429 and counted.
func TestLoadShedding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInFlight = 2
	s, ts := testServer(t, cfg)

	// Occupy every in-flight slot directly; requests must now shed.
	s.inflight <- struct{}{}
	s.inflight <- struct{}{}
	defer func() { <-s.inflight; <-s.inflight }()

	resp, err := http.Get(ts.URL + "/v1/query?class=Film")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if n := s.reg.Counter("akb_serve_shed_total").Value(); n != 1 {
		t.Errorf("shed counter = %d", n)
	}
}

// TestResponseCache asserts the second identical query is served from the
// cache and counted as a hit.
func TestResponseCache(t *testing.T) {
	s, ts := testServer(t, DefaultConfig())
	url := ts.URL + "/v1/query?class=Book"

	s1, b1 := get(t, url)
	s2, b2 := get(t, url)
	if s1 != s2 || fmt.Sprint(b1) != fmt.Sprint(b2) {
		t.Fatalf("cached response differs: %v vs %v", b1, b2)
	}
	if hits := s.reg.Counter("akb_serve_cache_hits_total").Value(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	// Error responses are not cached.
	get(t, ts.URL+"/v1/entity/Nobody")
	get(t, ts.URL+"/v1/entity/Nobody")
	for _, k := range s.cur.Load().cache.Keys() {
		if strings.Contains(k, "Nobody") {
			t.Errorf("404 response cached: %v", s.cur.Load().cache.Keys())
		}
	}
}

// TestConcurrentRequests hammers every route from many goroutines; under
// -race it validates the lock-free store reads and the cache's locking.
func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	urls := []string{
		"/v1/entity/Casablanca",
		"/v1/triples/Casablanca/language",
		"/v1/query?class=Film",
		"/v1/query?value=China",
		"/healthz",
		"/metrics",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Get(ts.URL + urls[(g+i)%len(urls)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("%s: status %d", urls[(g+i)%len(urls)], resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestGracefulShutdownDrains starts a real listener, parks a slow request
// in flight, cancels the serve context and asserts the in-flight request
// still completes while new connections are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DrainTimeout = 5 * time.Second
	s := New(testStore(), obs.NewRegistry(), cfg)

	// Wrap the handler to make one request observably slow.
	slow := make(chan struct{})
	arrived := make(chan struct{})
	base := s.Handler()
	s.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(arrived)
			<-slow
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"slow":true}`))
			return
		}
		base.ServeHTTP(w, r)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	slowResp := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			slowResp <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowResp <- resp.StatusCode
	}()

	// Wait until the slow request is in flight, then trigger shutdown.
	select {
	case <-arrived:
	case <-time.After(2 * time.Second):
		t.Fatal("slow request never arrived")
	}
	cancel()
	time.Sleep(50 * time.Millisecond) // let Shutdown close the listener
	close(slow)

	if status := <-slowResp; status != http.StatusOK {
		t.Errorf("in-flight request not drained: status %d", status)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestRequestTimeout503 asserts a handler exceeding the request timeout
// yields 503, not a hung connection.
func TestRequestTimeout503(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RequestTimeout = 30 * time.Millisecond
	s := New(testStore(), obs.NewRegistry(), cfg)

	// Rebuild the handler with an artificial slow route inside the
	// timeout wrapper: easiest is to wrap the store route path through a
	// stalling middleware at the mux level, so exercise it via a stalled
	// cacheable handler instead — patch the handler chain directly.
	stall := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
		w.WriteHeader(http.StatusOK)
	})
	s.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.TimeoutHandler(stall, cfg.RequestTimeout, `{"error":"request timed out"}`).ServeHTTP(w, r)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/query?class=Film")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}
