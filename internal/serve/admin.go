package serve

import (
	"net/http"
	"net/http/pprof"
)

// AdminHandler returns the opt-in admin mux: the net/http/pprof
// endpoints under /debug/pprof/. It is deliberately a separate handler
// from the query API — `akb serve -pprof` binds it to its own
// (typically loopback) listener so profiling and goroutine dumps are
// never reachable on the public port, and none of the query-path
// middleware (shedding, timeouts, caching) interferes with long-running
// profile captures.
func AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
