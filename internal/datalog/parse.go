package datalog

import (
	"fmt"
	"strings"
)

// Parse reads the surface grammar for conjunctive queries:
//
//	?f:Film director ?d . ?f "country of origin" ?c
//
// One clause is three whitespace-separated terms — entity, attribute,
// value. A term starting with '?' is a variable (letters, digits and
// underscores); anything else is a constant, double-quoted when it
// contains spaces or metacharacters (inside quotes, \" \\ and \n are
// the escapes). An entity variable may carry a class restriction after a
// colon (?f:Film). Clauses are separated by a free-standing '.' or a
// newline; a trailing separator is allowed.
//
// Parse returns only the conjunction; Select and Limit are carried
// out-of-band (flags on akb query, fields of the /v1/datalog body).
func Parse(text string) (Query, error) {
	toks, err := lex(text)
	if err != nil {
		return Query{}, err
	}
	var q Query
	var terms []token
	clauseNum := 1
	flush := func() error {
		if len(terms) == 0 {
			return nil
		}
		if len(terms) != 3 {
			return fmt.Errorf("datalog: clause %d: want 3 terms (entity attr value), got %d", clauseNum, len(terms))
		}
		c, err := clauseOf(terms, clauseNum)
		if err != nil {
			return err
		}
		q.Clauses = append(q.Clauses, c)
		terms = terms[:0]
		clauseNum++
		return nil
	}
	for _, t := range toks {
		if t.sep {
			if err := flush(); err != nil {
				return Query{}, err
			}
			continue
		}
		terms = append(terms, t)
	}
	if err := flush(); err != nil {
		return Query{}, err
	}
	if len(q.Clauses) == 0 {
		return Query{}, fmt.Errorf("datalog: empty query")
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// token is one lexed unit: a term's text or a clause separator.
type token struct {
	text   string
	quoted bool
	sep    bool
}

// lex splits the input into term and separator tokens. A '.' separates
// clauses only when it stands alone (whitespace-delimited), so constants
// like 3.5 survive unquoted; newlines always separate.
func lex(text string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(text) {
		switch c := text[i]; {
		case c == '\n':
			toks = append(toks, token{sep: true})
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '"':
			word, rest, err := lexQuoted(text[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{text: word, quoted: true})
			i += rest
		default:
			start := i
			for i < len(text) && !strings.ContainsRune(" \t\r\n", rune(text[i])) {
				i++
			}
			word := text[start:i]
			if word == "." {
				toks = append(toks, token{sep: true})
			} else {
				toks = append(toks, token{text: word})
			}
		}
	}
	return toks, nil
}

// lexQuoted reads a double-quoted constant starting at s[0] == '"'. It
// returns the unescaped text and how many input bytes were consumed.
func lexQuoted(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("datalog: dangling escape at end of input")
			}
			i++
			switch e := s[i]; e {
			case '"', '\\':
				b.WriteByte(e)
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("datalog: unsupported escape \\%c in quoted constant", e)
			}
		case '\n':
			return "", 0, fmt.Errorf("datalog: newline inside quoted constant")
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("datalog: unterminated quoted constant")
}

// clauseOf builds a clause from three term tokens, handling variable
// syntax and the entity position's class restriction.
func clauseOf(terms []token, n int) (Clause, error) {
	var c Clause
	for pos, t := range terms {
		term, class, err := termOf(t, pos, n)
		if err != nil {
			return Clause{}, err
		}
		switch pos {
		case 0:
			c.Entity, c.Class = term, class
		case 1:
			c.Attr = term
		case 2:
			c.Value = term
		}
	}
	return c, nil
}

// termOf interprets one token at clause position pos (0=entity, 1=attr,
// 2=value).
func termOf(t token, pos, n int) (Term, string, error) {
	if t.quoted || !strings.HasPrefix(t.text, "?") {
		if t.text == "" && !t.quoted {
			return Term{}, "", fmt.Errorf("datalog: clause %d: empty %s term", n, posName(pos))
		}
		return C(t.text), "", nil
	}
	name := t.text[1:]
	class := ""
	if at := strings.IndexByte(name, ':'); at >= 0 {
		if pos != 0 {
			return Term{}, "", fmt.Errorf("datalog: clause %d: class restriction %q only allowed on the entity position", n, t.text)
		}
		name, class = name[:at], name[at+1:]
		if class == "" {
			return Term{}, "", fmt.Errorf("datalog: clause %d: empty class restriction in %q", n, t.text)
		}
	}
	if name == "" {
		return Term{}, "", fmt.Errorf("datalog: clause %d: bare '?' is not a variable name", n)
	}
	for _, r := range name {
		if !isVarRune(r) {
			return Term{}, "", fmt.Errorf("datalog: clause %d: invalid variable character %q in %q", n, r, t.text)
		}
	}
	return V(name), class, nil
}

func isVarRune(r rune) bool {
	return r == '_' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}
