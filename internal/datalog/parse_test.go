package datalog_test

import (
	"reflect"
	"strings"
	"testing"

	"akb/internal/datalog"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want datalog.Query
	}{
		{
			"?f director ?d",
			datalog.Query{Clauses: []datalog.Clause{
				{Entity: datalog.V("f"), Attr: datalog.C("director"), Value: datalog.V("d")},
			}},
		},
		{
			`?f:Film "country of origin" ?c . ?g "country of origin" ?c`,
			datalog.Query{Clauses: []datalog.Clause{
				{Entity: datalog.V("f"), Attr: datalog.C("country of origin"), Value: datalog.V("c"), Class: "Film"},
				{Entity: datalog.V("g"), Attr: datalog.C("country of origin"), Value: datalog.V("c")},
			}},
		},
		{
			// Newlines separate clauses; a trailing separator is allowed.
			"?e rating 3.5\n?e ?a ?v .",
			datalog.Query{Clauses: []datalog.Clause{
				{Entity: datalog.V("e"), Attr: datalog.C("rating"), Value: datalog.C("3.5")},
				{Entity: datalog.V("e"), Attr: datalog.V("a"), Value: datalog.V("v")},
			}},
		},
		{
			// Quoted constants carry spaces, escapes, and grammar chars.
			`"Casa \"Blanca\"" has "a . dot\nand \\ slash"`,
			datalog.Query{Clauses: []datalog.Clause{
				{Entity: datalog.C(`Casa "Blanca"`), Attr: datalog.C("has"), Value: datalog.C("a . dot\nand \\ slash")},
			}},
		},
	}
	for _, c := range cases {
		got, err := datalog.Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) =\n%+v, want\n%+v", c.in, got, c.want)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	ins := []string{
		"?f director ?d",
		`?f:Film "country of origin" ?c . ?f award ?a`,
		`"we?ird" "." "?notavar"`,
		`e a "multi\nline \\ \" value"`,
		"?x ?x ?x",
	}
	for _, in := range ins {
		q, err := datalog.Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		again, err := datalog.Parse(q.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q.String(), err)
		}
		if !reflect.DeepEqual(q, again) {
			t.Errorf("round trip of %q via %q changed the query:\n%+v vs %+v", in, q.String(), q, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"", "empty query"},
		{"   \n  ", "empty query"},
		{"?a ?b", "want 3 terms"},
		{"?a ?b ?c ?d", "want 3 terms"},
		{"? a b", "bare '?'"},
		{"?x a ?y:Film", "only allowed on the entity position"},
		{"?x: a b", "empty class restriction"},
		{"?x-y a b", "invalid variable character"},
		{`a b "unterminated`, "unterminated"},
		{`a b "bad \q escape"`, `unsupported escape`},
		{`a b "dangling\`, "dangling escape"},
		{"a b \"newline\ninside\"", "newline inside quoted"},
		{`a "" b`, "empty attr term"},
		{strings.Repeat("?a ?b ?c . ", datalog.MaxClauses+1), "exceeds the limit"},
	}
	for _, c := range cases {
		if _, err := datalog.Parse(c.in); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.in, err, c.wantSub)
		}
	}
}

func TestValidate(t *testing.T) {
	base := datalog.Query{Clauses: []datalog.Clause{
		{Entity: datalog.V("e"), Attr: datalog.C("a"), Value: datalog.V("v")},
	}}

	q := base
	q.Select = []string{"e", "v"}
	if err := q.Validate(); err != nil {
		t.Errorf("valid select rejected: %v", err)
	}
	q.Select = []string{"ghost"}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "appears in no clause") {
		t.Errorf("unbound select error = %v", err)
	}
	q = base
	q.Limit = -1
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "negative limit") {
		t.Errorf("negative limit error = %v", err)
	}
	q = datalog.Query{Clauses: []datalog.Clause{{Entity: datalog.C("e"), Attr: datalog.C(""), Value: datalog.C("v")}}}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "empty attr term") {
		t.Errorf("empty term error = %v", err)
	}
	if err := (datalog.Query{}).Validate(); err == nil {
		t.Error("empty query passed Validate")
	}
}

func TestVarsOrder(t *testing.T) {
	q, err := datalog.Parse("?b x ?a . ?a y ?c")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.Vars(), []string{"b", "a", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Vars() = %v, want %v", got, want)
	}
}
