package datalog

import (
	"fmt"
	"strings"

	"akb/internal/store"
)

// Strategy is how one planned clause is evaluated.
type Strategy int

const (
	// StrategyScan streams the clause's pattern straight off the store
	// indexes — the plan's first clause, which seeds the binding stream.
	StrategyScan Strategy = iota
	// StrategyProbe runs an index-nested-loop join: per binding, the
	// bound variables are substituted into the pattern (entity or attr
	// position) and the store's most selective postings list is walked
	// in place.
	StrategyProbe
	// StrategyHash builds the clause's base relation once, hashed on
	// the join key, and probes the table per binding. Chosen when the
	// only join positions are values (whose postings are
	// hierarchy-inflated supersets, so per-binding walks re-filter the
	// same lists) or when the clause shares no variable with the bound
	// prefix (the key degenerates to the empty tuple: a cross product
	// that still builds its side only once).
	StrategyHash
)

func (s Strategy) String() string {
	switch s {
	case StrategyScan:
		return "scan"
	case StrategyProbe:
		return "probe"
	case StrategyHash:
		return "hash"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Step is one planned clause.
type Step struct {
	// Clause is the pattern this step evaluates.
	Clause Clause
	// Strategy is the join strategy the executor will use.
	Strategy Strategy
	// Estimate is the postings-based upper bound on the clause's base
	// relation size at plan time — the number greedy ordering ranked
	// it by.
	Estimate int
	// Index is the clause's position in the original query.
	Index int
}

// Plan is an ordered clause sequence with per-clause join strategies.
type Plan struct {
	Steps []Step
}

// String renders the plan one step per line, for explain output.
func (p *Plan) String() string {
	var b strings.Builder
	for i, st := range p.Steps {
		fmt.Fprintf(&b, "%d. [%s, est %d] %s\n", i+1, st.Strategy, st.Estimate, st.Clause)
	}
	return b.String()
}

// basePattern is the clause's constant skeleton: every constant term
// becomes a Pattern field, variables stay wildcards. This is both the
// unit of selectivity estimation and the pattern the executor scans or
// builds hash relations from.
func basePattern(c Clause) store.Pattern {
	var p store.Pattern
	if !c.Entity.IsVar() {
		p.Entity = c.Entity.Const
	}
	if !c.Attr.IsVar() {
		p.Attr = c.Attr.Const
	}
	if !c.Value.IsVar() {
		p.Value = c.Value.Const
	}
	p.Class = c.Class
	return p
}

// estimate returns the clause's selectivity upper bound: the store's
// postings-based CountEstimate when available (Store and Sharded both
// provide it), otherwise a fixed preference order over the bound
// positions so planning still works against opaque queriers.
func estimate(src store.Querier, c Clause) int {
	p := basePattern(c)
	if est, ok := src.(store.CountEstimator); ok {
		return est.CountEstimate(p)
	}
	// Heuristic fallback mirroring the index preference in
	// store.candidates: more specific patterns rank earlier.
	switch {
	case p.Entity != "" && p.Attr != "":
		return 4
	case p.Entity != "":
		return 32
	case p.Class != "" && p.Attr != "":
		return 1 << 10
	case p.Value != "":
		return 1 << 12
	case p.Class != "":
		return 1 << 14
	case p.Attr != "":
		return 1 << 16
	default:
		return 1 << 20
	}
}

// PlanQuery orders the query's clauses greedily by selectivity: start
// with the cheapest clause, then repeatedly take the cheapest clause
// connected to the variables bound so far, falling back to the cheapest
// disconnected clause (a cross product) only when nothing is connected.
// Estimates come from the store's own postings lists — no statistics
// catalog, following the janus-datalog result that greedy ordering on
// index cardinalities matches or beats cost-based planning for
// pattern-shaped queries while planning in microseconds.
//
// Ties break on the clause's position in the query, so plans are
// deterministic for a given store.
func PlanQuery(q Query, src store.Querier) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	type cand struct {
		clause Clause
		index  int
		est    int
	}
	remaining := make([]cand, len(q.Clauses))
	for i, c := range q.Clauses {
		remaining[i] = cand{clause: c, index: i, est: estimate(src, c)}
	}
	bound := make(map[string]bool)
	plan := &Plan{Steps: make([]Step, 0, len(q.Clauses))}
	for len(remaining) > 0 {
		best, bestConnected := -1, false
		for i, c := range remaining {
			conn := len(bound) > 0 && connected(c.clause, bound)
			switch {
			case best < 0,
				conn && !bestConnected,
				conn == bestConnected && c.est < remaining[best].est:
				best, bestConnected = i, conn
			}
		}
		chosen := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		plan.Steps = append(plan.Steps, Step{
			Clause:   chosen.clause,
			Strategy: strategyFor(chosen.clause, bound, len(plan.Steps) == 0),
			Estimate: chosen.est,
			Index:    chosen.index,
		})
		bindVars(chosen.clause, bound)
	}
	return plan, nil
}

// NaivePlan keeps the clauses in query order — the left-to-right
// baseline the greedy planner is benchmarked against. Strategies are
// still assigned per connectivity, so the comparison isolates ordering.
func NaivePlan(q Query, src store.Querier) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Steps: make([]Step, 0, len(q.Clauses))}
	bound := make(map[string]bool)
	for i, c := range q.Clauses {
		plan.Steps = append(plan.Steps, Step{
			Clause:   c,
			Strategy: strategyFor(c, bound, i == 0),
			Estimate: estimate(src, c),
			Index:    i,
		})
		bindVars(c, bound)
	}
	return plan, nil
}

// connected reports whether the clause shares a variable with the bound
// set.
func connected(c Clause, bound map[string]bool) bool {
	return (c.Entity.IsVar() && bound[c.Entity.Var]) ||
		(c.Attr.IsVar() && bound[c.Attr.Var]) ||
		(c.Value.IsVar() && bound[c.Value.Var])
}

// bindVars adds the clause's variables to the bound set.
func bindVars(c Clause, bound map[string]bool) {
	for _, t := range []Term{c.Entity, c.Attr, c.Value} {
		if t.IsVar() {
			bound[t.Var] = true
		}
	}
}

// strategyFor picks the join strategy for a clause given the variables
// bound before it runs. Entity- or attr-position joins probe (those
// postings are exact and tiny); value-only joins and disconnected
// clauses hash (the value postings include hierarchy specialisations,
// so building the exact-keyed relation once beats re-filtering the
// superset per binding — and a disconnected clause would otherwise be
// re-scanned per binding). Both strategies emit in identical
// nested-loop order, so the choice never changes results.
func strategyFor(c Clause, bound map[string]bool, first bool) Strategy {
	if first {
		return StrategyScan
	}
	entBound := c.Entity.IsVar() && bound[c.Entity.Var]
	attrBound := c.Attr.IsVar() && bound[c.Attr.Var]
	valBound := c.Value.IsVar() && bound[c.Value.Var]
	switch {
	case entBound || attrBound:
		return StrategyProbe
	case valBound:
		return StrategyHash
	case !c.Entity.IsVar() && !c.Attr.IsVar() && !c.Value.IsVar():
		// Fully ground clause: a constant existence filter, probed once
		// per binding off the exact indexes.
		return StrategyProbe
	default:
		return StrategyHash
	}
}
