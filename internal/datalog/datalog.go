// Package datalog answers conjunctive queries over the fused KB — the
// "actionable" half of the paper's promise. A query is a conjunction of
// triple patterns with shared variables ("find entities whose director
// also won an award"), evaluated against any store.Querier: the flat
// immutable Store, the entity-hash Sharded layout, or a wrapped querier
// such as the chaos injector, with byte-identical results across all of
// them.
//
// The design follows the janus-datalog line of work (SNIPPETS papers
// 1–3) in two deliberate simplifications:
//
//   - Greedy, statistics-free planning. Clauses are ordered by
//     selectivity estimated directly from the postings lists the store
//     already maintains (store.CountEstimator); there is no statistics
//     catalog to build, refresh or mistrust. Greedy ordering is provably
//     good enough for pattern-shaped queries and plans in microseconds.
//
//   - Streaming iterator execution. The plan runs as a left-deep chain
//     of index-nested-loop joins: bindings flow depth-first through the
//     clauses, each probe substituting the bound variables into a
//     store.Pattern and walking a postings list in place. No
//     intermediate relation is ever materialised; peak memory is one
//     binding row plus the result page. Joins that index probing cannot
//     serve well — value-position equijoins (the value postings are
//     hierarchy-inflated supersets) and clauses disconnected from the
//     bound prefix — fall back to a hash join that builds the clause's
//     base relation once, keyed exactly, and probes it per binding.
//
// Execution is deterministic at any parallelism: results always arrive
// in left-deep nested-loop order (first clause in canonical fact order,
// probe results in canonical order per binding), and the parallel path
// partitions the first clause's stream into fixed-size batches whose
// decomposition does not depend on the worker count.
package datalog

import (
	"fmt"
	"strings"
)

// MaxClauses bounds a query's clause count. Sixteen conjuncts is far
// beyond any real pattern query and keeps adversarial requests from
// turning the planner's O(n²) greedy loop or the executor's recursion
// into a resource sink.
const MaxClauses = 16

// Term is one position of a clause: a constant or a variable. Exactly
// one of Const and Var is meaningful; a Term with a non-empty Var is a
// variable (named without the '?' sigil).
type Term struct {
	// Const is the constant text the position must match.
	Const string
	// Var names the variable this position binds or joins on. Non-empty
	// Var wins over Const.
	Var string
}

// V returns a variable term (name without the '?' sigil).
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(text string) Term { return Term{Const: text} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term in the surface grammar: variables with the
// '?' sigil, constants quoted when they contain whitespace or grammar
// metacharacters. The rendering parses back to the same term.
func (t Term) String() string {
	if t.IsVar() {
		return "?" + t.Var
	}
	if t.Const == "" || strings.ContainsAny(t.Const, " \t\r\n\"?.") {
		return quoteConst(t.Const)
	}
	return t.Const
}

// quoteConst wraps a constant in the grammar's double quotes, escaping
// exactly what lexQuoted unescapes: '"', '\' and newline.
func quoteConst(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Clause is one triple pattern: entity, attribute and value positions,
// each a constant or a variable, plus an optional class restriction on
// the entity. Constant value positions match hierarchically (like
// store.Pattern: "Australia" finds Adelaide); variable value positions
// join exactly.
type Clause struct {
	Entity Term
	Attr   Term
	Value  Term
	// Class restricts the clause's entity to one ontology class
	// (surface form: ?e:Film). Empty means unrestricted.
	Class string
}

// String renders the clause in the surface grammar.
func (c Clause) String() string {
	e := c.Entity.String()
	if c.Class != "" && c.Entity.IsVar() {
		e += ":" + c.Class
	}
	return e + " " + c.Attr.String() + " " + c.Value.String()
}

// Query is a conjunctive datalog query: every clause must hold
// simultaneously under one assignment of the variables. Select projects
// the result rows onto a subset of the variables (empty: all variables
// in first-appearance order); Limit caps the materialised rows while the
// total match count stays exact, mirroring /v1/query's truncation
// semantics.
type Query struct {
	Clauses []Clause
	Select  []string
	Limit   int
}

// String renders the query in the surface grammar, clauses joined with
// " . ".
func (q Query) String() string {
	parts := make([]string, len(q.Clauses))
	for i, c := range q.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " . ")
}

// Vars returns the query's variables in first-appearance order (clause
// by clause, entity then attribute then value) — the default projection
// and the column order of Result.Rows when Select is empty.
func (q Query) Vars() []string {
	var vars []string
	seen := make(map[string]bool)
	for _, c := range q.Clauses {
		for _, t := range []Term{c.Entity, c.Attr, c.Value} {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				vars = append(vars, t.Var)
			}
		}
	}
	return vars
}

// Validate checks the query's shape: clause count within bounds, no
// empty terms, class restrictions only alongside entity terms, selected
// variables actually bound by some clause, and a non-negative limit.
func (q Query) Validate() error {
	if len(q.Clauses) == 0 {
		return fmt.Errorf("datalog: query has no clauses")
	}
	if len(q.Clauses) > MaxClauses {
		return fmt.Errorf("datalog: %d clauses exceeds the limit of %d", len(q.Clauses), MaxClauses)
	}
	if q.Limit < 0 {
		return fmt.Errorf("datalog: negative limit %d", q.Limit)
	}
	for i, c := range q.Clauses {
		for pos, t := range []Term{c.Entity, c.Attr, c.Value} {
			if !t.IsVar() && t.Const == "" {
				return fmt.Errorf("datalog: clause %d: empty %s term", i+1, posName(pos))
			}
			if strings.ContainsAny(t.Var, " \t\n") {
				return fmt.Errorf("datalog: clause %d: variable %q contains whitespace", i+1, t.Var)
			}
		}
	}
	bound := make(map[string]bool)
	for _, v := range q.Vars() {
		bound[v] = true
	}
	for _, s := range q.Select {
		if !bound[s] {
			return fmt.Errorf("datalog: selected variable ?%s appears in no clause", s)
		}
	}
	return nil
}

// Result is one query's answer: Rows are the variable bindings (columns
// aligned with Vars), at most Limit of them, while Total counts every
// match and Truncated reports whether the cap cut the row set.
type Result struct {
	// Vars names the columns of Rows: the selected variables, or every
	// query variable in first-appearance order.
	Vars []string
	// Rows are the bindings in deterministic left-deep nested-loop
	// order.
	Rows [][]string
	// Total is the exact number of matching bindings, counted past any
	// limit.
	Total int
	// Truncated reports Total > len(Rows).
	Truncated bool
	// Probes counts index probes the executor issued — the executor's
	// work metric, exposed for tests, explain output and the
	// akb_datalog_probes_total counter.
	Probes int64
}

func posName(pos int) string {
	switch pos {
	case 0:
		return "entity"
	case 1:
		return "attr"
	default:
		return "value"
	}
}
