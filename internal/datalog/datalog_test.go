package datalog_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"akb/internal/core"
	"akb/internal/datalog"
	"akb/internal/store"
)

// pipelineFacts runs the real extraction/fusion pipeline once and shares
// the fused facts across every test in the package: the property tests
// run against live-pipeline data, not a hand-picked fixture.
var pipelineFacts = sync.OnceValue(func() []store.Fact {
	res, err := core.New().Run(context.Background())
	if err != nil {
		panic(err)
	}
	return store.FromResult(res).Facts()
})

// layouts returns every store layout the engine must answer identically
// on: the flat store and entity-hash-sharded stores of several widths.
func layouts(facts []store.Fact) map[string]store.Querier {
	return map[string]store.Querier{
		"flat":      store.New(facts),
		"sharded-2": store.NewSharded(facts, 2),
		"sharded-7": store.NewSharded(facts, 7),
	}
}

// refEval is an independent brute-force evaluator: left-to-right
// backtracking over store.Scan (the store's own reference read path),
// with bound variables substituted exactly. It is the ground truth the
// streaming executor is checked against.
func refEval(st *store.Store, q datalog.Query) [][]string {
	sel := q.Select
	if len(sel) == 0 {
		sel = q.Vars()
	}
	env := map[string]string{}
	var rows [][]string
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Clauses) {
			row := make([]string, len(sel))
			for j, v := range sel {
				row[j] = env[v]
			}
			rows = append(rows, row)
			return
		}
		c := q.Clauses[i]
		p := store.Pattern{Class: c.Class}
		if !c.Entity.IsVar() {
			p.Entity = c.Entity.Const
		} else if v, ok := env[c.Entity.Var]; ok {
			p.Entity = v
		}
		if !c.Attr.IsVar() {
			p.Attr = c.Attr.Const
		} else if v, ok := env[c.Attr.Var]; ok {
			p.Attr = v
		}
		if !c.Value.IsVar() {
			p.Value = c.Value.Const
		} else if v, ok := env[c.Value.Var]; ok {
			p.Value, p.Exact = v, true
		}
		for _, f := range st.Scan(p) {
			var added []string
			ok := true
			for _, tf := range []struct {
				t datalog.Term
				v string
			}{{c.Entity, f.Entity}, {c.Attr, f.Attr}, {c.Value, f.Value}} {
				if !tf.t.IsVar() {
					continue
				}
				if cur, bound := env[tf.t.Var]; bound {
					if cur != tf.v {
						ok = false
						break
					}
					continue
				}
				env[tf.t.Var] = tf.v
				added = append(added, tf.t.Var)
			}
			if ok {
				rec(i + 1)
			}
			for _, v := range added {
				delete(env, v)
			}
		}
	}
	rec(0)
	return rows
}

func sortedRows(rows [][]string) [][]string {
	out := make([][]string, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

func rowsEqual(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// singleClausePatterns derives the pattern matrix from the data itself,
// covering every index the store picks from.
func singleClausePatterns(st *store.Store) []store.Pattern {
	facts := st.Facts()
	f0 := facts[0]
	pats := []store.Pattern{
		{},
		{Entity: f0.Entity},
		{Entity: f0.Entity, Attr: f0.Attr},
		{Entity: f0.Entity, Attr: f0.Attr, Value: f0.Value},
		{Attr: f0.Attr},
		{Class: st.Classes()[0]},
		{Class: st.Classes()[0], Attr: f0.Attr},
		{Value: f0.Value},
		{Entity: "no such entity"},
	}
	for _, f := range facts {
		if len(f.Ancestors) > 0 {
			pats = append(pats, store.Pattern{Value: f.Ancestors[len(f.Ancestors)-1]})
			break
		}
	}
	return pats
}

// clauseFor lifts a pattern into a single-clause query: constant terms
// where the pattern is constrained, fresh variables elsewhere.
func clauseFor(p store.Pattern) datalog.Clause {
	c := datalog.Clause{Class: p.Class}
	if p.Entity != "" {
		c.Entity = datalog.C(p.Entity)
	} else {
		c.Entity = datalog.V("e")
	}
	if p.Attr != "" {
		c.Attr = datalog.C(p.Attr)
	} else {
		c.Attr = datalog.V("a")
	}
	if p.Value != "" {
		c.Value = datalog.C(p.Value)
	} else {
		c.Value = datalog.V("v")
	}
	return c
}

// TestSingleClauseMatchesLookup is the API-equivalence property from the
// issue: a one-clause datalog query is store.Lookup — same facts, same
// order, byte-identical across the flat and sharded layouts.
func TestSingleClauseMatchesLookup(t *testing.T) {
	facts := pipelineFacts()
	flat := store.New(facts)
	for name, src := range layouts(facts) {
		t.Run(name, func(t *testing.T) {
			for _, p := range singleClausePatterns(flat) {
				clause := clauseFor(p)
				q := datalog.Query{Clauses: []datalog.Clause{clause}}
				res, err := datalog.Run(context.Background(), src, q, datalog.Options{})
				if err != nil {
					t.Fatalf("Run(%s): %v", q, err)
				}
				want := flat.Lookup(p)
				if res.Total != len(want) || res.Truncated {
					t.Fatalf("%s: total=%d truncated=%v, want %d facts untruncated", q, res.Total, res.Truncated, len(want))
				}
				if len(res.Rows) != len(want) {
					t.Fatalf("%s: %d rows, want %d", q, len(res.Rows), len(want))
				}
				for i, f := range want {
					got := map[string]string{}
					for j, v := range res.Vars {
						got[v] = res.Rows[i][j]
					}
					for v, fv := range bindingsOf(clause, f) {
						if got[v] != fv {
							t.Fatalf("%s row %d: ?%s = %q, want %q (fact %+v)", q, i, v, got[v], fv, f)
						}
					}
				}
			}
		})
	}
}

// bindingsOf maps the clause's variables to the fact's fields.
func bindingsOf(c datalog.Clause, f store.Fact) map[string]string {
	out := map[string]string{}
	if c.Entity.IsVar() {
		out[c.Entity.Var] = f.Entity
	}
	if c.Attr.IsVar() {
		out[c.Attr.Var] = f.Attr
	}
	if c.Value.IsVar() {
		out[c.Value.Var] = f.Value
	}
	return out
}

// multiClauseQueries builds join queries from whatever the pipeline
// produced: entity joins, value joins, a disconnected conjunction, a
// ground filter, and a class-restricted sweep.
func multiClauseQueries(st *store.Store) []datalog.Query {
	facts := st.Facts()
	// An entity with at least two attributes.
	var ent, attr1, attr2 string
	byEnt := map[string][]store.Fact{}
	for _, f := range facts {
		byEnt[f.Entity] = append(byEnt[f.Entity], f)
	}
	for e, fs := range byEnt {
		if len(fs) >= 2 && fs[0].Attr != fs[1].Attr {
			ent, attr1, attr2 = e, fs[0].Attr, fs[1].Attr
			break
		}
	}
	if ent == "" {
		panic("pipeline data has no entity with two attributes")
	}
	class := st.Classes()[0]
	v := datalog.V
	c := datalog.C
	return []datalog.Query{
		// Entity join: two attributes of the same entity.
		{Clauses: []datalog.Clause{
			{Entity: v("x"), Attr: c(attr1), Value: v("v1")},
			{Entity: v("x"), Attr: c(attr2), Value: v("v2")},
		}},
		// Value join: entities sharing a value for one attribute.
		{Clauses: []datalog.Clause{
			{Entity: v("a"), Attr: c(attr1), Value: v("shared")},
			{Entity: v("b"), Attr: c(attr1), Value: v("shared")},
		}, Select: []string{"a", "b"}},
		// Disconnected clauses: a cross product.
		{Clauses: []datalog.Clause{
			{Entity: c(ent), Attr: c(attr1), Value: v("v1")},
			{Entity: v("e"), Attr: c(attr2), Value: v("v2"), Class: class},
		}},
		// Ground first clause as an existence filter.
		{Clauses: []datalog.Clause{
			{Entity: c(ent), Attr: c(attr1), Value: v("w")},
			{Entity: v("e"), Attr: c(attr1), Value: v("w")},
		}},
		// Three-clause chain: value join then an entity probe.
		{Clauses: []datalog.Clause{
			{Entity: v("a"), Attr: c(attr1), Value: v("shared")},
			{Entity: v("b"), Attr: c(attr1), Value: v("shared")},
			{Entity: v("b"), Attr: c(attr2), Value: v("w")},
		}},
		// Class-restricted sweep with a repeated variable inside one
		// clause (entity equals value). Usually empty on pipeline data;
		// TestRepeatedVariableWithinClause pins the non-empty case on a
		// seeded fixture.
		{Clauses: []datalog.Clause{
			{Entity: v("e"), Attr: v("a"), Value: v("e"), Class: class},
		}},
	}
}

// TestMultiClauseMatchesReference checks every join query against the
// brute-force evaluator on every layout, pins the naive plan's row order
// to the reference's left-to-right nested-loop order, and requires
// byte-identical results at parallelism 1, 2 and 4.
func TestMultiClauseMatchesReference(t *testing.T) {
	facts := pipelineFacts()
	flat := store.New(facts)
	ctx := context.Background()
	for qi, q := range multiClauseQueries(flat) {
		want := refEval(flat, q)
		wantSorted := sortedRows(want)
		for name, src := range layouts(facts) {
			t.Run(fmt.Sprintf("q%d/%s", qi, name), func(t *testing.T) {
				// The naive plan IS the reference's clause order, so even
				// its row order must match exactly.
				naive, err := datalog.Run(ctx, src, q, datalog.Options{Naive: true})
				if err != nil {
					t.Fatalf("naive: %v", err)
				}
				if !rowsEqual(naive.Rows, want) {
					t.Fatalf("naive rows diverge from reference:\n got %v\nwant %v", naive.Rows, want)
				}
				// The greedy plan may emit another nested-loop order but
				// must agree as a bag.
				greedy, err := datalog.Run(ctx, src, q, datalog.Options{})
				if err != nil {
					t.Fatalf("greedy: %v", err)
				}
				if greedy.Total != len(want) {
					t.Fatalf("greedy total = %d, want %d", greedy.Total, len(want))
				}
				if !rowsEqual(sortedRows(greedy.Rows), wantSorted) {
					t.Fatalf("greedy rows diverge from reference as a bag:\n got %v\nwant %v", sortedRows(greedy.Rows), wantSorted)
				}
				// Parallel execution is byte-identical to serial at every
				// worker count.
				for _, par := range []int{2, 4} {
					res, err := datalog.Run(ctx, src, q, datalog.Options{Parallelism: par})
					if err != nil {
						t.Fatalf("parallelism %d: %v", par, err)
					}
					if !rowsEqual(res.Rows, greedy.Rows) || res.Total != greedy.Total || res.Truncated != greedy.Truncated {
						t.Fatalf("parallelism %d diverges from serial", par)
					}
				}
			})
		}
	}
}

// TestRepeatedVariableWithinClause pins the bind-before-check order for
// a variable repeated inside one clause. The seeded fixture is
// adversarial on both sides: facts whose entity equals their own value,
// so the correct result is non-empty and an executor comparing against
// a stale slot returns zero rows; and facts whose value equals the
// PREVIOUS canonical-order fact's entity, so a stale-slot comparison
// would also admit false positives, not just miss matches.
func TestRepeatedVariableWithinClause(t *testing.T) {
	facts := []store.Fact{
		{Entity: "a", Class: "person", Attr: "knows", Value: "z"},
		{Entity: "b", Class: "person", Attr: "knows", Value: "b"}, // self-loop
		// Follows (b,knows,b) in canonical order with value equal to that
		// fact's entity — the false-positive trap.
		{Entity: "c", Class: "person", Attr: "knows", Value: "b"},
		{Entity: "d", Class: "person", Attr: "knows", Value: "d"}, // self-loop
		{Entity: "e", Class: "person", Attr: "knows", Value: "d"},
	}
	queries := []datalog.Query{
		{Clauses: []datalog.Clause{
			{Entity: datalog.V("x"), Attr: datalog.C("knows"), Value: datalog.V("x")},
		}},
		// The class-restricted sweep shape from multiClauseQueries, here
		// guaranteed non-empty.
		{Clauses: []datalog.Clause{
			{Entity: datalog.V("e"), Attr: datalog.V("a"), Value: datalog.V("e"), Class: "person"},
		}, Select: []string{"e"}},
	}
	flat := store.New(facts)
	ctx := context.Background()
	for qi, q := range queries {
		want := refEval(flat, q)
		if !rowsEqual(sortedRows(want), [][]string{{"b"}, {"d"}}) {
			t.Fatalf("q%d: reference result %v, want the two self-loops [[b] [d]]", qi, want)
		}
		for name, src := range layouts(facts) {
			for _, opts := range []datalog.Options{{Naive: true}, {}, {Parallelism: 2}, {Parallelism: 4}} {
				res, err := datalog.Run(ctx, src, q, opts)
				if err != nil {
					t.Fatalf("q%d/%s/%+v: %v", qi, name, opts, err)
				}
				if res.Total != len(want) || !rowsEqual(sortedRows(res.Rows), sortedRows(want)) {
					t.Fatalf("q%d/%s/%+v: got total=%d rows=%v, want %v", qi, name, opts, res.Total, res.Rows, want)
				}
			}
		}
	}
}

// TestLimitSemantics pins /v1/query-style truncation: rows are a prefix
// of the unlimited run, the total stays exact, Truncated flips on.
func TestLimitSemantics(t *testing.T) {
	facts := pipelineFacts()
	flat := store.New(facts)
	// Entity self-join: every entity contributes degree² rows, so the
	// result is guaranteed dense on any pipeline output.
	q := datalog.Query{Clauses: []datalog.Clause{
		{Entity: datalog.V("x"), Attr: datalog.V("a"), Value: datalog.V("v")},
		{Entity: datalog.V("x"), Attr: datalog.V("b"), Value: datalog.V("w")},
	}}
	ctx := context.Background()
	full, err := datalog.Run(ctx, flat, q, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Total < 10 {
		t.Fatalf("fixture too small: total=%d", full.Total)
	}
	for _, par := range []int{1, 4} {
		lim := q
		lim.Limit = 5
		res, err := datalog.Run(ctx, flat, lim, datalog.Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 || !res.Truncated || res.Total != full.Total {
			t.Fatalf("par=%d: rows=%d truncated=%v total=%d, want 5/true/%d", par, len(res.Rows), res.Truncated, res.Total, full.Total)
		}
		if !rowsEqual(res.Rows, full.Rows[:5]) {
			t.Fatalf("par=%d: limited rows are not a prefix of the full run", par)
		}
	}
}

// plainQuerier hides every fast-path interface, forcing the executor
// and planner onto the Querier-only fallbacks (the chaos wrapper shape).
type plainQuerier struct{ s *store.Store }

func (p plainQuerier) Len() int                            { return p.s.Len() }
func (p plainQuerier) EntityCount() int                    { return p.s.EntityCount() }
func (p plainQuerier) Classes() []string                   { return p.s.Classes() }
func (p plainQuerier) Entity(id string) []store.Fact       { return p.s.Entity(id) }
func (p plainQuerier) Triples(e, a string) []store.Fact    { return p.s.Triples(e, a) }
func (p plainQuerier) Lookup(q store.Pattern) []store.Fact { return p.s.Lookup(q) }

// TestPlainQuerierFallback proves the engine needs nothing beyond
// store.Querier: results over a fast-path-less wrapper are byte-identical
// to the flat store's, serial and parallel.
func TestPlainQuerierFallback(t *testing.T) {
	facts := pipelineFacts()
	flat := store.New(facts)
	ctx := context.Background()
	for qi, q := range multiClauseQueries(flat) {
		want, err := datalog.Run(ctx, flat, q, datalog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 3} {
			got, err := datalog.Run(ctx, plainQuerier{flat}, q, datalog.Options{Parallelism: par})
			if err != nil {
				t.Fatalf("q%d par=%d: %v", qi, par, err)
			}
			if !rowsEqual(got.Rows, want.Rows) || got.Total != want.Total {
				t.Fatalf("q%d par=%d: fallback diverges from fast path", qi, par)
			}
		}
	}
}

// TestGreedyPlanOrdersBySelectivity builds an adversarial store — one
// huge postings list, one tiny one — and checks the greedy plan leads
// with the rare clause while the naive plan pays for the big one, with
// the probe counts to show it.
func TestGreedyPlanOrdersBySelectivity(t *testing.T) {
	var facts []store.Fact
	for i := 0; i < 3000; i++ {
		facts = append(facts, store.Fact{Entity: fmt.Sprintf("e%04d", i), Attr: "big", Value: fmt.Sprintf("b%04d", i)})
	}
	for i := 0; i < 3; i++ {
		facts = append(facts, store.Fact{Entity: fmt.Sprintf("e%04d", i), Attr: "rare", Value: "r"})
	}
	st := store.New(facts)
	q, err := datalog.Parse("?x big ?v . ?x rare ?w")
	if err != nil {
		t.Fatal(err)
	}

	plan, err := datalog.PlanQuery(q, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Steps[0].Clause.Attr.Const; got != "rare" {
		t.Fatalf("greedy plan leads with %q, want the rare clause:\n%s", got, plan)
	}
	if plan.Steps[0].Strategy != datalog.StrategyScan || plan.Steps[1].Strategy != datalog.StrategyProbe {
		t.Fatalf("strategies = %v/%v, want scan/probe", plan.Steps[0].Strategy, plan.Steps[1].Strategy)
	}

	ctx := context.Background()
	greedy, err := datalog.Run(ctx, st, q, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := datalog.Run(ctx, st, q, datalog.Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Total != 3 || naive.Total != 3 {
		t.Fatalf("totals = %d/%d, want 3", greedy.Total, naive.Total)
	}
	if !rowsEqual(sortedRows(greedy.Rows), sortedRows(naive.Rows)) {
		t.Fatal("greedy and naive disagree on the result bag")
	}
	if greedy.Probes*100 > naive.Probes {
		t.Fatalf("greedy probes = %d vs naive %d: want >=100x fewer", greedy.Probes, naive.Probes)
	}
}

// TestPlanStrategies pins the strategy chooser: value-position joins and
// disconnected clauses hash, entity joins probe.
func TestPlanStrategies(t *testing.T) {
	st := store.New([]store.Fact{{Entity: "e", Attr: "a", Value: "v"}})
	cases := []struct {
		query string
		want  []datalog.Strategy
	}{
		{"?x a ?v . ?x b ?w", []datalog.Strategy{datalog.StrategyScan, datalog.StrategyProbe}},
		{"?x a ?v . ?y b ?v", []datalog.Strategy{datalog.StrategyScan, datalog.StrategyHash}},
		{"?x a ?v . ?y b ?w", []datalog.Strategy{datalog.StrategyScan, datalog.StrategyHash}},
		{"e a v . ?x b ?w", []datalog.Strategy{datalog.StrategyScan, datalog.StrategyHash}},
	}
	for _, c := range cases {
		q, err := datalog.Parse(c.query)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := datalog.NaivePlan(q, st)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range c.want {
			if plan.Steps[i].Strategy != want {
				t.Errorf("%q step %d strategy = %v, want %v", c.query, i, plan.Steps[i].Strategy, want)
			}
		}
	}
}

// TestCancellation proves a cancelled context aborts a long-running join
// instead of finishing it.
func TestCancellation(t *testing.T) {
	var facts []store.Fact
	for i := 0; i < 5000; i++ {
		e := fmt.Sprintf("e%05d", i)
		facts = append(facts, store.Fact{Entity: e, Attr: "a", Value: "shared"})
	}
	st := store.New(facts)
	// shared-value self join: 25M bindings, far beyond any deadline.
	q, err := datalog.Parse("?x a ?v . ?y a ?v")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		if _, err := datalog.Run(ctx, st, q, datalog.Options{Parallelism: par}); err == nil {
			t.Fatalf("par=%d: cancelled run returned no error", par)
		}
	}
}

// TestStreamingDoesNotMaterialize is the issue's memory criterion: a
// join with tens of thousands of matches, capped at 10 rows, must not
// allocate anything like an intermediate relation. The threshold is far
// below the >3 MB a materialised result (or intermediate) would cost,
// but leaves room for fixed executor setup.
func TestStreamingDoesNotMaterialize(t *testing.T) {
	const n = 20000
	facts := make([]store.Fact, 0, 2*n)
	for i := 0; i < n; i++ {
		e := fmt.Sprintf("e%05d", i)
		facts = append(facts, store.Fact{Entity: e, Attr: "a", Value: fmt.Sprintf("v%05d", i)})
		facts = append(facts, store.Fact{Entity: e, Attr: "b", Value: "w"})
	}
	st := store.New(facts)
	q, err := datalog.Parse("?x a ?v . ?x b ?w")
	if err != nil {
		t.Fatal(err)
	}
	q.Limit = 10

	ctx := context.Background()
	// Warm once so lazy initialisation is off the books.
	if _, err := datalog.Run(ctx, st, q, datalog.Options{}); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := datalog.Run(ctx, st, q, datalog.Options{})
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != n || len(res.Rows) != 10 || !res.Truncated {
		t.Fatalf("total=%d rows=%d truncated=%v, want %d/10/true", res.Total, len(res.Rows), res.Truncated, n)
	}
	delta := after.TotalAlloc - before.TotalAlloc
	const budget = 256 << 10
	if delta > budget {
		t.Fatalf("executor allocated %d bytes across a %d-match join; budget %d — is an intermediate relation being materialised?", delta, n, budget)
	}
}

// TestRunRejectsInvalid covers the executor's validation surface.
func TestRunRejectsInvalid(t *testing.T) {
	st := store.New([]store.Fact{{Entity: "e", Attr: "a", Value: "v"}})
	bad := []datalog.Query{
		{},
		{Clauses: []datalog.Clause{{Entity: datalog.V("x"), Attr: datalog.C("a"), Value: datalog.V("v")}}, Limit: -2},
		{Clauses: []datalog.Clause{{Entity: datalog.V("x"), Attr: datalog.C("a"), Value: datalog.V("v")}}, Select: []string{"nope"}},
	}
	for i, q := range bad {
		if _, err := datalog.Run(context.Background(), st, q, datalog.Options{}); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
	if !strings.Contains(datalog.StrategyScan.String(), "scan") {
		t.Error("Strategy.String broken")
	}
}
