package datalog_test

import (
	"reflect"
	"testing"

	"akb/internal/datalog"
)

// FuzzParse drives the surface-grammar parser with arbitrary input and
// holds two invariants on every accepted query: it validates, and it
// round-trips through String — rendering and re-parsing yields the
// identical Query. Run the finder with:
//
//	go test -fuzz FuzzParse ./internal/datalog
func FuzzParse(f *testing.F) {
	seeds := []string{
		"?f director ?d",
		`?f:Film "country of origin" ?c . ?f award ?a`,
		"?x a ?v\n?y a ?v .",
		`"Casa \"Blanca\"" has "a . dot\nand \\ slash"`,
		"?e rating 3.5",
		"?x ?x ?x",
		"e a v",
		`"" a v`,
		"? a b",
		"?x:",
		`a b "unterminated`,
		"?a ?b ?c . ?d ?e ?f . ?g ?h ?i",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := datalog.Parse(input)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted a query that fails Validate: %v", input, err)
		}
		rendered := q.String()
		again, err := datalog.Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) = %+v, whose rendering %q does not re-parse: %v", input, q, rendered, err)
		}
		if !reflect.DeepEqual(q, again) {
			t.Fatalf("round trip changed the query:\n in: %q\n 1st: %+v\n via: %q\n 2nd: %+v", input, q, rendered, again)
		}
	})
}
