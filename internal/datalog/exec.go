package datalog

import (
	"context"
	"sync"

	"akb/internal/store"
)

// Options tunes one query execution.
type Options struct {
	// Parallelism is the number of workers the batched executor uses.
	// Values <= 1 run the serial path. Any value yields byte-identical
	// results: work is split into fixed-size batches of the first
	// clause's stream and reassembled in batch order.
	Parallelism int
	// Naive executes the clauses in query order instead of the greedy
	// plan — the benchmark baseline. Both plans produce the same bag of
	// rows and the same Total, but each emits its own nested-loop
	// order, so cross-plan comparisons should sort.
	Naive bool
}

// batchSize is the number of first-clause facts per parallel work unit.
// The decomposition is a function of the stream alone — never of the
// worker count — which is what makes parallel execution deterministic.
const batchSize = 256

// Run plans and executes the query against the store. It returns every
// binding of the query's variables (projected onto q.Select when set),
// capped at q.Limit rows with the total match count exact.
func Run(ctx context.Context, src store.Querier, q Query, opts Options) (*Result, error) {
	var (
		plan *Plan
		err  error
	)
	if opts.Naive {
		plan, err = NaivePlan(q, src)
	} else {
		plan, err = PlanQuery(q, src)
	}
	if err != nil {
		return nil, err
	}
	return RunPlan(ctx, src, q, plan, opts)
}

// RunPlan executes a pre-built plan. The plan must come from PlanQuery
// or NaivePlan over the same query.
func RunPlan(ctx context.Context, src store.Querier, q Query, plan *Plan, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sh, err := compile(ctx, src, q, plan)
	if err != nil {
		return nil, err
	}
	if opts.Parallelism > 1 {
		return runParallel(sh, opts.Parallelism)
	}
	r := newRunner(sh)
	r.scan()
	if r.err != nil {
		return nil, r.err
	}
	return &Result{
		Vars:      sh.outVars,
		Rows:      r.rows,
		Total:     r.total,
		Truncated: r.total > len(r.rows),
		Probes:    r.probes + sh.buildProbes,
	}, nil
}

// shared is the per-execution read-only state: the compiled steps
// (including any hash relations, built once), the store handles and the
// projection. Parallel workers share one instance.
type shared struct {
	ctx     context.Context
	src     store.Querier
	it      store.Iterator // nil when src has no push fast path
	steps   []execStep
	nvars   int
	selIdx  []int
	outVars []string
	limit   int
	// buildProbes counts the index reads spent building hash relations,
	// charged once to the final result rather than per worker.
	buildProbes int64
}

// execStep is one compiled plan step: the clause's constant skeleton
// plus, per position (entity, attr, value), what to do with a variable
// there — substitute a bound slot into the pattern before probing
// (subs), bind the fact's field into a slot (binds), or equality-check
// the field against a slot bound earlier in the same clause (checks).
// Slots are indices into the runner's binding row; -1 means inactive.
type execStep struct {
	base     store.Pattern
	strategy Strategy
	subs     [3]int
	binds    [3]int
	checks   [3]int
	// keySlot is the binding slot whose value keys the hash relation;
	// -1 on a cross-product hash step (single bucket under "").
	keySlot int
	// buckets is the hash relation for StrategyHash steps: the clause's
	// base relation grouped by exact value, facts in canonical store
	// order within each bucket so probing emits nested-loop order.
	buckets map[string][]store.Fact
}

// compile lowers the plan to executable steps and builds the hash
// relations. Variable slots are assigned in first-appearance order over
// the PLAN's step order (projection still reports the query's own
// variable order).
func compile(ctx context.Context, src store.Querier, q Query, plan *Plan) (*shared, error) {
	sh := &shared{
		ctx:   ctx,
		src:   src,
		steps: make([]execStep, len(plan.Steps)),
		limit: q.Limit,
	}
	sh.it, _ = src.(store.Iterator)

	slot := make(map[string]int)
	slotOf := func(v string) int {
		s, ok := slot[v]
		if !ok {
			s = len(slot)
			slot[v] = s
		}
		return s
	}
	bound := make(map[string]bool)
	for i, ps := range plan.Steps {
		st := &sh.steps[i]
		st.base = basePattern(ps.Clause)
		st.strategy = ps.Strategy
		st.subs = [3]int{-1, -1, -1}
		st.binds = [3]int{-1, -1, -1}
		st.checks = [3]int{-1, -1, -1}
		st.keySlot = -1
		inClause := make(map[string]bool)
		for pos, t := range []Term{ps.Clause.Entity, ps.Clause.Attr, ps.Clause.Value} {
			if !t.IsVar() {
				continue
			}
			s := slotOf(t.Var)
			switch {
			case bound[t.Var]:
				st.subs[pos] = s
			case inClause[t.Var]:
				st.checks[pos] = s
			default:
				st.binds[pos] = s
				inClause[t.Var] = true
			}
		}
		for _, t := range []Term{ps.Clause.Entity, ps.Clause.Attr, ps.Clause.Value} {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
		if st.strategy == StrategyHash {
			st.keySlot = st.subs[2]
			st.buckets = make(map[string][]store.Fact)
			sh.buildProbes++
			complete := sh.iterate(st.base, func(f store.Fact) bool {
				k := ""
				if st.keySlot >= 0 {
					k = f.Value
				}
				st.buckets[k] = append(st.buckets[k], f)
				return ctx.Err() == nil
			})
			if !complete {
				return nil, ctx.Err()
			}
		}
	}
	sh.nvars = len(slot)

	vars := q.Vars()
	sel := q.Select
	if len(sel) == 0 {
		sel = vars
	}
	sh.outVars = sel
	sh.selIdx = make([]int, len(sel))
	for i, v := range sel {
		sh.selIdx[i] = slot[v]
	}
	return sh, nil
}

// iterate streams the pattern's facts in canonical order: the store's
// push fast path when available, otherwise a materialising Lookup
// fallback (plain Queriers such as the chaos wrapper).
func (sh *shared) iterate(p store.Pattern, yield func(store.Fact) bool) bool {
	if sh.it != nil {
		return sh.it.Iterate(p, yield)
	}
	for _, f := range sh.src.Lookup(p) {
		if !yield(f) {
			return false
		}
	}
	return true
}

// runner is the mutable side of one execution stream: the single
// reusable binding row, the DFS closures (hoisted once per runner, not
// per probe), and the output accumulator. The serial path uses one
// runner over the whole first-clause stream; each parallel worker has
// its own and is fed batches.
type runner struct {
	sh     *shared
	row    []string
	yields []func(store.Fact) bool
	rows   [][]string
	total  int
	probes int64
	tick   int
	err    error
}

func newRunner(sh *shared) *runner {
	r := &runner{
		sh:     sh,
		row:    make([]string, sh.nvars),
		yields: make([]func(store.Fact) bool, len(sh.steps)),
	}
	last := len(sh.steps) - 1
	for d := range sh.steps {
		d := d
		st := &sh.steps[d]
		r.yields[d] = func(f store.Fact) bool {
			// Binds run before checks: a repeated variable's first
			// occurrence (the bind) is always at an earlier position than
			// its re-occurrence (the check), so the check must see THIS
			// fact's binding, not whatever the previous fact left in the
			// slot. A slot written before a failing check is harmless —
			// the next fact's bind overwrites it before any deeper read.
			if b := st.binds[0]; b >= 0 {
				r.row[b] = f.Entity
			}
			if b := st.binds[1]; b >= 0 {
				r.row[b] = f.Attr
			}
			if b := st.binds[2]; b >= 0 {
				r.row[b] = f.Value
			}
			if c := st.checks[0]; c >= 0 && r.row[c] != f.Entity {
				return true
			}
			if c := st.checks[1]; c >= 0 && r.row[c] != f.Attr {
				return true
			}
			if c := st.checks[2]; c >= 0 && r.row[c] != f.Value {
				return true
			}
			if d == last {
				return r.emit()
			}
			return r.advance(d + 1)
		}
	}
	return r
}

// scan runs the whole plan from the first clause's full stream — the
// serial entry point.
func (r *runner) scan() {
	r.probes++
	r.sh.iterate(r.sh.steps[0].base, r.yields[0])
}

// advance evaluates step d under the current binding row: substitute
// the bound slots into the pattern and stream the matches (probe), or
// fetch the pre-built hash bucket. Returns false only to abort on
// context cancellation — matches are never cut short, so Total stays
// exact.
func (r *runner) advance(d int) bool {
	r.tick++
	if r.tick&1023 == 0 && r.sh.ctx.Err() != nil {
		r.err = r.sh.ctx.Err()
		return false
	}
	st := &r.sh.steps[d]
	if st.strategy == StrategyHash {
		k := ""
		if st.keySlot >= 0 {
			k = r.row[st.keySlot]
		}
		r.probes++
		for _, f := range st.buckets[k] {
			if !r.yields[d](f) {
				return false
			}
		}
		return true
	}
	p := st.base
	if s := st.subs[0]; s >= 0 {
		p.Entity = r.row[s]
	}
	if s := st.subs[1]; s >= 0 {
		p.Attr = r.row[s]
	}
	if s := st.subs[2]; s >= 0 {
		// Bound variables join on the accepted value verbatim;
		// hierarchical generalisation applies only to constants.
		p.Value, p.Exact = r.row[s], true
	}
	r.probes++
	return r.sh.iterate(p, r.yields[d])
}

// emit records one complete binding: the total is always counted, the
// projected row is kept only while under the limit.
func (r *runner) emit() bool {
	r.total++
	if r.sh.limit > 0 && len(r.rows) >= r.sh.limit {
		return true
	}
	out := make([]string, len(r.sh.selIdx))
	for i, s := range r.sh.selIdx {
		out[i] = r.row[s]
	}
	r.rows = append(r.rows, out)
	return true
}

// runParallel splits the first clause's stream into fixed-size batches,
// fans them out to workers, and reassembles the per-batch results in
// batch order. Because the batch decomposition depends only on the
// stream and each batch runs the same DFS the serial path would, the
// assembled rows are byte-identical to the serial result at any worker
// count.
func runParallel(sh *shared, workers int) (*Result, error) {
	type batch struct {
		seq   int
		facts []store.Fact
	}
	type batchResult struct {
		seq    int
		rows   [][]string
		total  int
		probes int64
		err    error
	}

	in := make(chan batch, workers)
	out := make(chan batchResult, workers)

	var nbatch int
	go func() {
		defer close(in)
		seq := 0
		cur := firstCursor(sh)
		buf := make([]store.Fact, 0, batchSize)
		for {
			f, ok := cur.Next()
			if ok {
				buf = append(buf, f)
			}
			if (!ok || len(buf) == batchSize) && len(buf) > 0 {
				select {
				case in <- batch{seq: seq, facts: buf}:
					seq++
					buf = make([]store.Fact, 0, batchSize)
				case <-sh.ctx.Done():
					return
				}
			}
			if !ok {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := newRunner(sh)
			for b := range in {
				r.rows, r.total, r.probes, r.err = nil, 0, 0, nil
				for _, f := range b.facts {
					if !r.yields[0](f) {
						break
					}
				}
				out <- batchResult{seq: b.seq, rows: r.rows, total: r.total, probes: r.probes, err: r.err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	bySeq := make(map[int]batchResult)
	for br := range out {
		bySeq[br.seq] = br
		if br.seq >= nbatch {
			nbatch = br.seq + 1
		}
	}
	if err := sh.ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{Vars: sh.outVars, Probes: 1 + sh.buildProbes}
	for seq := 0; seq < nbatch; seq++ {
		br, ok := bySeq[seq]
		if !ok {
			// A batch vanished without a context error: impossible unless
			// cancellation raced the producer; report cancellation.
			return nil, context.Canceled
		}
		if br.err != nil {
			return nil, br.err
		}
		res.Total += br.total
		res.Probes += br.probes
		for _, row := range br.rows {
			if sh.limit > 0 && len(res.Rows) >= sh.limit {
				break
			}
			res.Rows = append(res.Rows, row)
		}
	}
	res.Truncated = res.Total > len(res.Rows)
	return res, nil
}

// firstCursor pulls the first clause's stream: the store's pull cursor
// when available, else a materialised Lookup.
func firstCursor(sh *shared) store.FactCursor {
	base := sh.steps[0].base
	if sel, ok := sh.src.(store.Selector); ok {
		return sel.Select(base)
	}
	return &sliceFactCursor{facts: sh.src.Lookup(base)}
}

type sliceFactCursor struct {
	facts []store.Fact
	pos   int
}

func (c *sliceFactCursor) Next() (store.Fact, bool) {
	if c.pos >= len(c.facts) {
		return store.Fact{}, false
	}
	f := c.facts[c.pos]
	c.pos++
	return f, true
}
