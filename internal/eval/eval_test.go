package eval

import (
	"strings"
	"testing"

	"akb/internal/extract"
	"akb/internal/fusion"
	"akb/internal/kb"
	"akb/internal/rdf"
)

func TestMetricsMath(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, FN: 2}
	if p := m.Precision(); p != 0.8 {
		t.Errorf("P = %g", p)
	}
	if r := m.Recall(); r != 0.8 {
		t.Errorf("R = %g", r)
	}
	if f := m.F1(); f < 0.799999 || f > 0.800001 {
		t.Errorf("F1 = %g", f)
	}
	var zero Metrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero metrics must not divide by zero")
	}
	m2 := Metrics{TP: 1, FP: 1, FN: 1}
	m2.Add(m)
	if m2.TP != 9 || m2.FP != 3 || m2.FN != 3 {
		t.Errorf("Add = %+v", m2)
	}
	if !strings.Contains(m.String(), "P=0.800") {
		t.Errorf("String = %q", m.String())
	}
}

func testWorldAndEntity(t *testing.T) (*kb.World, *kb.Entity, string, string) {
	t.Helper()
	w := kb.NewWorld(kb.WorldConfig{Seed: 1, EntitiesPerClass: 5, AttrsPerEntity: 10})
	e := w.EntitiesOf("Film")[0]
	for attr, vals := range e.Values {
		if len(vals) > 0 {
			return w, e, attr, vals[0]
		}
	}
	t.Fatal("entity has no values")
	return nil, nil, "", ""
}

func TestScoreStatements(t *testing.T) {
	w, e, attr, val := testWorldAndEntity(t)
	sc := &Scorer{World: w}
	stmts := []rdf.Statement{
		extract.NewStatement(e.Name, attr, val, "src", "x", "", 0.9),                // correct
		extract.NewStatement(e.Name, attr, "definitely wrong", "src", "x", "", 0.9), // wrong
		extract.NewStatement("Ghost Entity", attr, val, "src", "x", "", 0.9),        // unknown entity
	}
	m := sc.ScoreStatements(stmts)
	if m.TP != 1 || m.FP != 2 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestScoreStatementsHierarchyAware(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 1, EntitiesPerClass: 20, AttrsPerEntity: 14})
	sc := &Scorer{World: w}
	// Find a hierarchical attribute value and claim its ancestor.
	for _, e := range w.EntitiesOf("Film") {
		for attr, vals := range e.Values {
			a, _ := w.Ontology.Class("Film").Attribute(attr)
			if !a.Hierarchical || len(vals) == 0 {
				continue
			}
			ancs := w.Hier.Ancestors(vals[0])
			if len(ancs) == 0 {
				continue
			}
			m := sc.ScoreStatements([]rdf.Statement{
				extract.NewStatement(e.Name, attr, ancs[len(ancs)-1], "src", "x", "", 0.9),
			})
			if m.TP != 1 {
				t.Errorf("generalisation scored wrong: %+v", m)
			}
			return
		}
	}
	t.Skip("no hierarchical value found")
}

func TestScoreFusion(t *testing.T) {
	w, e, attr, val := testWorldAndEntity(t)
	sc := &Scorer{World: w}
	stmts := []rdf.Statement{
		extract.NewStatement(e.Name, attr, val, "s1", "x", "", 0.9),
		extract.NewStatement(e.Name, attr, val, "s2", "x", "", 0.9),
		extract.NewStatement(e.Name, attr, "wrong", "s3", "x", "", 0.9),
	}
	claims := fusion.BuildClaims(stmts, fusion.BySource)
	res := (&fusion.Vote{}).Fuse(claims)
	m := sc.ScoreFusion(res)
	if m.TP != 1 || m.FP != 0 {
		t.Errorf("fusion metrics = %+v", m)
	}
}

func TestScoreFusionCountsMissingTruths(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 1, EntitiesPerClass: 10, AttrsPerEntity: 12})
	sc := &Scorer{World: w}
	// Find a non-functional attribute with 2+ values.
	for _, e := range w.EntitiesOf("Film") {
		for attr, vals := range e.Values {
			if len(vals) != 2 {
				continue
			}
			stmts := []rdf.Statement{
				extract.NewStatement(e.Name, attr, vals[0], "s1", "x", "", 0.9),
				extract.NewStatement(e.Name, attr, vals[1], "s2", "x", "", 0.9),
			}
			claims := fusion.BuildClaims(stmts, fusion.BySource)
			res := (&fusion.Vote{}).Fuse(claims) // single truth: misses one
			m := sc.ScoreFusion(res)
			if m.TP != 1 || m.FN != 1 {
				t.Errorf("multi-truth miss not counted: %+v", m)
			}
			return
		}
	}
	t.Skip("no multi-valued attribute found")
}

func TestCompareFusionMethods(t *testing.T) {
	w, e, attr, val := testWorldAndEntity(t)
	sc := &Scorer{World: w}
	stmts := []rdf.Statement{
		extract.NewStatement(e.Name, attr, val, "s1", "x", "", 0.9),
		extract.NewStatement(e.Name, attr, "wrong", "s2", "x", "", 0.4),
	}
	scores := sc.CompareFusionMethods(stmts, []fusion.Method{&fusion.Vote{}, &fusion.Accu{}}, fusion.BySource)
	if len(scores) != 2 {
		t.Fatalf("got %d scores", len(scores))
	}
	if scores[0].Method != "VOTE" || scores[1].Method != "ACCU" {
		t.Errorf("method order: %v", scores)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"Class", "N"}, [][]string{{"Book", "60"}, {"University", "518"}})
	if !strings.Contains(out, "| Class      | N   |") {
		t.Errorf("table formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("table has %d lines, want 6:\n%s", len(lines), out)
	}
	width := len(lines[0])
	for i, l := range lines {
		if len(l) != width {
			t.Errorf("line %d width %d != %d", i, len(l), width)
		}
	}
}

func TestNA(t *testing.T) {
	if NA(-1) != "N/A" || NA(5) != "5" || NA(0) != "0" {
		t.Error("NA rendering wrong")
	}
}
