// Package eval scores extraction and fusion output against the synthetic
// world's ground truth and renders the experiment tables. Scoring is
// hierarchy-aware: a claimed generalisation of a true value (China for a
// Wuhan birth place) counts as true, matching the paper's multiple-truth
// semantics for hierarchical value spaces.
package eval

import (
	"fmt"
	"strings"

	"akb/internal/extract"
	"akb/internal/fusion"
	"akb/internal/kb"
	"akb/internal/rdf"
)

// Metrics is a precision/recall summary.
type Metrics struct {
	TP, FP, FN int
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add accumulates another metrics value.
func (m *Metrics) Add(o Metrics) {
	m.TP += o.TP
	m.FP += o.FP
	m.FN += o.FN
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		m.Precision(), m.Recall(), m.F1(), m.TP, m.FP, m.FN)
}

// Scorer scores against a world's ground truth.
type Scorer struct {
	World *kb.World
}

// statementFact decodes an extracted statement into (entity, attr, value).
func statementFact(s rdf.Statement) (entity, attr, value string) {
	return extract.AttrFromIRI(s.Subject), extract.AttrFromIRI(s.Predicate), s.Object.Value
}

// ScoreStatements computes extraction precision over statements: a
// statement is correct when its value is true (or a generalisation of a
// true value) for its entity and attribute. Recall is not defined at this
// level (FN stays 0): the extraction target set is open.
func (sc *Scorer) ScoreStatements(stmts []rdf.Statement) Metrics {
	var m Metrics
	for _, s := range stmts {
		entity, attr, value := statementFact(s)
		e, ok := sc.World.Entity(entity)
		if !ok {
			m.FP++
			continue
		}
		if sc.World.IsTrue(e, attr, value) {
			m.TP++
		} else {
			m.FP++
		}
	}
	return m
}

// ScoreFusion scores a fusion result: accepted values are checked against
// ground truth (TP/FP), and each item's true leaf values not covered by any
// accepted value count as FN. Items about unknown entities or attributes
// the entity lacks score all accepted values as FP.
func (sc *Scorer) ScoreFusion(res *fusion.Result) Metrics {
	var m Metrics
	for _, d := range res.Decisions {
		entity := extract.AttrFromIRI(d.Item.Subject)
		attr := extract.AttrFromIRI(d.Item.Predicate)
		e, ok := sc.World.Entity(entity)
		if !ok {
			m.FP += len(d.Truths)
			continue
		}
		trueLeaves := sc.World.TrueLeafValues(e, attr)
		covered := make([]bool, len(trueLeaves))
		for _, t := range d.Truths {
			v := t.Value
			if sc.World.IsTrue(e, attr, v) {
				m.TP++
				for i, leaf := range trueLeaves {
					if leaf == v || sc.World.Hier.IsAncestor(v, leaf) {
						covered[i] = true
					}
				}
			} else {
				m.FP++
			}
		}
		for _, c := range covered {
			if !c {
				m.FN++
			}
		}
	}
	return m
}

// MethodScore pairs a fusion method with its metrics.
type MethodScore struct {
	Method  string
	Metrics Metrics
}

// CompareFusionMethods runs every method over the same claims and scores
// each, in input order.
func (sc *Scorer) CompareFusionMethods(stmts []rdf.Statement, methods []fusion.Method, g fusion.Granularity) []MethodScore {
	claims := fusion.BuildClaims(stmts, g)
	out := make([]MethodScore, 0, len(methods))
	for _, m := range methods {
		res := m.Fuse(claims)
		out = append(out, MethodScore{Method: res.Method, Metrics: sc.ScoreFusion(res)})
	}
	return out
}

// FormatTable renders an ASCII table with aligned columns, used by cmd/akb
// to print the paper's tables.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", w, cell)
		}
		b.WriteByte('\n')
	}
	sep := func() {
		b.WriteString("+")
		for _, w := range widths {
			b.WriteString(strings.Repeat("-", w+2))
			b.WriteString("+")
		}
		b.WriteByte('\n')
	}
	sep()
	writeRow(headers)
	sep()
	for _, row := range rows {
		writeRow(row)
	}
	sep()
	return b.String()
}

// NA renders -1 counts as the paper's "N/A".
func NA(n int) string {
	if n < 0 {
		return "N/A"
	}
	return fmt.Sprintf("%d", n)
}
