package temporalx

import (
	"testing"

	"akb/internal/extract"
	"akb/internal/kb"
	"akb/internal/webgen"
)

func setup(t *testing.T) (*kb.World, []*webgen.Document, *extract.EntityIndex) {
	t.Helper()
	w := kb.NewWorld(kb.WorldConfig{Seed: 14, EntitiesPerClass: 20, AttrsPerEntity: 12})
	docs := webgen.GenerateCorpus(w, webgen.TextConfig{
		Seed: 14, DocsPerClass: 10, FactsPerDoc: 4,
		ValueErrorRate: 0.1, DistractorShare: 0.4, TemporalFacts: 6,
	})
	return w, docs, extract.NewEntityIndexFromWorld(w)
}

func TestWorldHasTimelines(t *testing.T) {
	w, _, _ := setup(t)
	found := 0
	for _, cls := range []string{"Country", "University", "Hotel"} {
		for _, e := range w.EntitiesOf(cls) {
			for attr, spans := range e.Timelines {
				found++
				if len(spans) < 2 {
					t.Errorf("%s/%s: timeline too short: %v", e.Name, attr, spans)
				}
				// Spans are consecutive and end at the present.
				for i := 1; i < len(spans); i++ {
					if spans[i].From != spans[i-1].To+1 {
						t.Errorf("%s/%s: gap between spans %v", e.Name, attr, spans)
					}
				}
				if spans[len(spans)-1].To != 2015 {
					t.Errorf("%s/%s: timeline does not reach present: %v", e.Name, attr, spans)
				}
				// Current value mirrors the last span.
				if e.Value(attr) != spans[len(spans)-1].Value {
					t.Errorf("%s/%s: current value %q != last span %q",
						e.Name, attr, e.Value(attr), spans[len(spans)-1].Value)
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no timelines generated")
	}
}

func TestExtractTextFindsTemporalFacts(t *testing.T) {
	w, docs, idx := setup(t)
	stmts := ExtractText(docs, idx)
	if len(stmts) == 0 {
		t.Fatal("no temporal statements extracted")
	}
	correctYears, totalYears := 0, 0
	for _, s := range stmts {
		e, ok := w.Entity(s.Entity)
		if !ok {
			t.Fatalf("unknown entity %q", s.Entity)
		}
		if s.From > s.To || !plausibleYear(s.From) {
			t.Errorf("bad span %+v", s)
		}
		for y := s.From; y <= s.To; y++ {
			totalYears++
			if e.ValueAt(s.Attr, y) == s.Value {
				correctYears++
			}
		}
	}
	acc := float64(correctYears) / float64(totalYears)
	if acc < 0.8 {
		t.Errorf("raw extraction year accuracy = %.3f (corpus error 10%%)", acc)
	}
}

func TestMatchTemporalForms(t *testing.T) {
	w, _, idx := setup(t)
	e := w.EntityNames("Country")[0]
	uni := w.EntityNames("University")[0]
	cases := []struct {
		sent string
		ok   bool
		from int
		to   int
		attr string
	}{
		{"Jane Doe was the head of state of " + e + " from 1990 to 1999.", true, 1990, 1999, "head of state"},
		{"Jane Doe has been the head of state of " + e + " since 2004.", true, 2004, PresentYear, "head of state"},
		{"John Roe was the chancellor of " + uni + " from 1971 to 1980.", true, 1971, 1980, "chancellor"},
		{"Jane Doe was the head of state of Atlantis from 1990 to 1999.", false, 0, 0, ""},
		{"Jane Doe was the head of state of " + e + " from 1999 to 1990.", false, 0, 0, ""}, // reversed
		{"Jane Doe was the head of state of " + e + " from then to now.", false, 0, 0, ""},
		{"Just a plain sentence.", false, 0, 0, ""},
	}
	for _, c := range cases {
		st, ok := matchTemporal(c.sent, idx)
		if ok != c.ok {
			t.Errorf("matchTemporal(%q) ok = %v, want %v", c.sent, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if st.From != c.from || st.To != c.to || st.Attr != c.attr {
			t.Errorf("matchTemporal(%q) = %+v", c.sent, st)
		}
	}
}

func TestFuseTimelinesMajority(t *testing.T) {
	stmts := []Statement{
		// Two sources agree on the early span; one noisy source disagrees.
		{Entity: "E", Attr: "head of state", Value: "Alice", From: 1990, To: 1999, Source: "s1"},
		{Entity: "E", Attr: "head of state", Value: "Alice", From: 1990, To: 1999, Source: "s2"},
		{Entity: "E", Attr: "head of state", Value: "Mallory", From: 1990, To: 1999, Source: "s3"},
		{Entity: "E", Attr: "head of state", Value: "Bob", From: 2000, To: 2015, Source: "s1"},
	}
	tls := FuseTimelines(stmts)
	if len(tls) != 1 {
		t.Fatalf("timelines = %d", len(tls))
	}
	tl := tls[0]
	if len(tl.Spans) != 2 {
		t.Fatalf("spans = %v", tl.Spans)
	}
	if tl.Spans[0].Value != "Alice" || tl.Spans[0].From != 1990 || tl.Spans[0].To != 1999 {
		t.Errorf("span 0 = %+v", tl.Spans[0])
	}
	if tl.Spans[1].Value != "Bob" || tl.Spans[1].To != 2015 {
		t.Errorf("span 1 = %+v", tl.Spans[1])
	}
}

func TestFuseTimelinesOverlapResolution(t *testing.T) {
	stmts := []Statement{
		{Entity: "E", Attr: "owner", Value: "Alice", From: 1990, To: 2005, Source: "s1"},
		{Entity: "E", Attr: "owner", Value: "Bob", From: 2000, To: 2015, Source: "s2"},
		{Entity: "E", Attr: "owner", Value: "Bob", From: 2000, To: 2015, Source: "s3"},
	}
	tls := FuseTimelines(stmts)
	tl := tls[0]
	// In the overlap (2000-2005) Bob has two sources vs Alice's one.
	if len(tl.Spans) != 2 {
		t.Fatalf("spans = %v", tl.Spans)
	}
	if tl.Spans[0].Value != "Alice" || tl.Spans[0].To != 1999 {
		t.Errorf("span 0 = %+v", tl.Spans[0])
	}
	if tl.Spans[1].Value != "Bob" || tl.Spans[1].From != 2000 {
		t.Errorf("span 1 = %+v", tl.Spans[1])
	}
}

func TestEndToEndTemporalAccuracy(t *testing.T) {
	w, docs, idx := setup(t)
	stmts := ExtractText(docs, idx)
	tls := FuseTimelines(stmts)
	if len(tls) == 0 {
		t.Fatal("no fused timelines")
	}
	correct, total := Accuracy(w, tls)
	if total == 0 {
		t.Fatal("no years scored")
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("fused timeline accuracy = %.3f (%d/%d)", acc, correct, total)
	}
}

func TestFuseTimelinesDeterministic(t *testing.T) {
	_, docs, idx := setup(t)
	a := FuseTimelines(ExtractText(docs, idx))
	b := FuseTimelines(ExtractText(docs, idx))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Entity != b[i].Entity || len(a[i].Spans) != len(b[i].Spans) {
			t.Fatalf("timeline %d differs", i)
		}
		for j := range a[i].Spans {
			if a[i].Spans[j] != b[i].Spans[j] {
				t.Fatalf("span %d/%d differs", i, j)
			}
		}
	}
}
