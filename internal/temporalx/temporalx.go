// Package temporalx implements temporal knowledge extraction and fusion —
// the fourth extractor family in the paper's taxonomy (after Alonso et al.
// and Berberich et al.): identifying "the facts on given relations at
// different time points" and the valid time spans of those facts.
//
// Extraction matches time-scoped sentence patterns ("V was the A of E from
// Y1 to Y2.", "V has been the A of E since Y1.") against the corpus with
// dictionary-validated entity slots. Fusion resolves conflicting timelines
// per (entity, attribute) by year-level weighted voting, then compresses
// the per-year winners back into spans.
package temporalx

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"akb/internal/extract"
	"akb/internal/kb"
	"akb/internal/webgen"
)

// PresentYear is the "now" horizon for open-ended spans ("since 1996"),
// fixed to the paper's era so runs are deterministic.
const PresentYear = 2015

// Statement is one time-scoped claim.
type Statement struct {
	Entity string
	Attr   string
	Value  string
	From   int
	To     int
	Source string
	Doc    string
}

// Key identifies the statement's data item.
func (s Statement) Key() string { return s.Entity + "|" + s.Attr }

// String renders the statement for logs.
func (s Statement) String() string {
	return fmt.Sprintf("(%s, %s, %s) @ [%d, %d] from %s", s.Entity, s.Attr, s.Value, s.From, s.To, s.Source)
}

// ExtractText mines time-scoped statements from the corpus. Patterns:
//
//	⟨V⟩ was the ⟨A⟩ of ⟨E⟩ from ⟨Y1⟩ to ⟨Y2⟩.
//	⟨V⟩ has been the ⟨A⟩ of ⟨E⟩ since ⟨Y1⟩.
//
// The entity slot is validated against the index; years must parse and be
// ordered.
func ExtractText(docs []*webgen.Document, idx *extract.EntityIndex) []Statement {
	var out []Statement
	for _, doc := range docs {
		for _, sent := range splitSentences(doc.Text) {
			st, ok := matchTemporal(sent, idx)
			if !ok {
				continue
			}
			st.Source = doc.Source
			st.Doc = doc.ID
			out = append(out, st)
		}
	}
	return out
}

func splitSentences(text string) []string {
	var out []string
	for {
		i := strings.Index(text, ". ")
		if i < 0 {
			break
		}
		out = append(out, strings.TrimSpace(text[:i+1]))
		text = text[i+2:]
	}
	if t := strings.TrimSpace(text); t != "" {
		out = append(out, t)
	}
	return out
}

// matchTemporal parses one sentence against the temporal patterns.
func matchTemporal(sent string, idx *extract.EntityIndex) (Statement, bool) {
	sent = strings.TrimSuffix(sent, ".")
	// Closed span: "... from Y1 to Y2".
	if i := strings.LastIndex(sent, " from "); i > 0 {
		head, tail := sent[:i], sent[i+len(" from "):]
		parts := strings.Split(tail, " to ")
		if len(parts) == 2 {
			from, errF := strconv.Atoi(strings.TrimSpace(parts[0]))
			to, errT := strconv.Atoi(strings.TrimSpace(parts[1]))
			if errF == nil && errT == nil && plausibleYear(from) && plausibleYear(to) && from <= to {
				if st, ok := parseVofE(head, idx); ok {
					st.From, st.To = from, to
					return st, true
				}
			}
		}
	}
	// Open span: "... since Y1".
	if i := strings.LastIndex(sent, " since "); i > 0 {
		head, tail := sent[:i], sent[i+len(" since "):]
		from, err := strconv.Atoi(strings.TrimSpace(tail))
		if err == nil && plausibleYear(from) {
			if st, ok := parseVofE(head, idx); ok {
				st.From, st.To = from, PresentYear
				return st, true
			}
		}
	}
	return Statement{}, false
}

// parseVofE parses "V was|has been the A of E" with entity validation.
func parseVofE(head string, idx *extract.EntityIndex) (Statement, bool) {
	var v, rest string
	if i := strings.Index(head, " was the "); i > 0 {
		v, rest = head[:i], head[i+len(" was the "):]
	} else if i := strings.Index(head, " has been the "); i > 0 {
		v, rest = head[:i], head[i+len(" has been the "):]
	} else {
		return Statement{}, false
	}
	// rest = "A of E"; scan " of " splits for a known entity suffix.
	j := 0
	for {
		k := strings.Index(rest[j:], " of ")
		if k < 0 {
			return Statement{}, false
		}
		attr := rest[:j+k]
		entity := rest[j+k+len(" of "):]
		if _, ok := idx.Class(entity); ok {
			attr = extract.NormalizeLabel(attr)
			if v != "" && extract.ValidAttributeLabel(attr) {
				return Statement{Entity: entity, Attr: attr, Value: v}, true
			}
			return Statement{}, false
		}
		j += k + len(" of ")
	}
}

func plausibleYear(y int) bool { return y >= 1000 && y <= 2100 }

// --- Timeline fusion ------------------------------------------------------

// Timeline is a fused attribute history.
type Timeline struct {
	Entity string
	Attr   string
	Spans  []kb.Span
}

// FuseTimelines resolves conflicting temporal claims: for every year in the
// claimed range of an item, the value asserted by the most (distinct)
// sources covering that year wins; consecutive years with the same winner
// compress into spans. Ties break to the lexicographically smaller value so
// fusion is deterministic.
func FuseTimelines(stmts []Statement) []Timeline {
	type item struct{ entity, attr string }
	type claimSpan struct {
		value    string
		from, to int
		sources  map[string]struct{}
	}
	grouped := map[item]map[string]*claimSpan{} // item -> value+span key -> claim

	keyOf := func(s Statement) string {
		return s.Value + "\x00" + strconv.Itoa(s.From) + "\x00" + strconv.Itoa(s.To)
	}
	for _, s := range stmts {
		it := item{s.Entity, s.Attr}
		m := grouped[it]
		if m == nil {
			m = map[string]*claimSpan{}
			grouped[it] = m
		}
		c := m[keyOf(s)]
		if c == nil {
			c = &claimSpan{value: s.Value, from: s.From, to: s.To, sources: map[string]struct{}{}}
			m[keyOf(s)] = c
		}
		c.sources[s.Source] = struct{}{}
	}

	items := make([]item, 0, len(grouped))
	for it := range grouped {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].entity != items[j].entity {
			return items[i].entity < items[j].entity
		}
		return items[i].attr < items[j].attr
	})

	var out []Timeline
	for _, it := range items {
		claims := grouped[it]
		lo, hi := 1<<31, 0
		for _, c := range claims {
			if c.from < lo {
				lo = c.from
			}
			if c.to > hi {
				hi = c.to
			}
		}
		// Year-level weighted vote.
		winners := make([]string, hi-lo+1)
		for y := lo; y <= hi; y++ {
			best, bestN := "", 0
			for _, c := range claims {
				if y < c.from || y > c.to {
					continue
				}
				n := len(c.sources)
				if n > bestN || (n == bestN && (best == "" || c.value < best)) {
					best, bestN = c.value, n
				}
			}
			winners[y-lo] = best
		}
		// Compress runs.
		tl := Timeline{Entity: it.entity, Attr: it.attr}
		for y := 0; y < len(winners); {
			v := winners[y]
			z := y
			for z < len(winners) && winners[z] == v {
				z++
			}
			if v != "" {
				tl.Spans = append(tl.Spans, kb.Span{Value: v, From: lo + y, To: lo + z - 1})
			}
			y = z
		}
		if len(tl.Spans) > 0 {
			out = append(out, tl)
		}
	}
	return out
}

// --- Evaluation ------------------------------------------------------------

// Accuracy measures year-level agreement between fused timelines and the
// world's ground truth over the years the fused timeline covers. It returns
// (correct years, total years).
func Accuracy(w *kb.World, timelines []Timeline) (correct, total int) {
	for _, tl := range timelines {
		e, ok := w.Entity(tl.Entity)
		if !ok {
			for _, sp := range tl.Spans {
				total += sp.To - sp.From + 1
			}
			continue
		}
		for _, sp := range tl.Spans {
			for y := sp.From; y <= sp.To; y++ {
				total++
				if e.ValueAt(tl.Attr, y) == sp.Value {
					correct++
				}
			}
		}
	}
	return correct, total
}
