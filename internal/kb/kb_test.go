package kb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalAttributeName(t *testing.T) {
	cases := []struct {
		raw, class, want string
	}{
		{"birthPlace", "", "birth place"},
		{"/film/film/directed_by", "Film", "directed by"},
		{"/film/film/birth_place", "Film", "birth place"},
		{"release_date", "", "release date"},
		{"boxOffice", "", "box office"},
		{"film_running_time", "Film", "running time"},
		{"simple", "", "simple"},
		{"Check-In-Time", "", "check in time"},
		{"totalArea", "Country", "total area"},
	}
	for _, c := range cases {
		if got := CanonicalAttributeName(c.raw, c.class); got != c.want {
			t.Errorf("CanonicalAttributeName(%q, %q) = %q, want %q", c.raw, c.class, got, c.want)
		}
	}
}

func TestStyleNamesRoundTrip(t *testing.T) {
	canonicals := []string{"birth place", "total adjusted budget", "gdp", "running time"}
	for _, c := range canonicals {
		db := DBpediaStyleName(c)
		if got := CanonicalAttributeName(db, ""); got != c {
			t.Errorf("DBpedia round trip %q -> %q -> %q", c, db, got)
		}
		fb := FreebaseStyleName(c, "Film")
		if got := CanonicalAttributeName(fb, "Film"); got != c {
			t.Errorf("Freebase round trip %q -> %q -> %q", c, fb, got)
		}
	}
}

func TestStyleRoundTripProperty(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "rate", "count"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[r.Intn(len(words))]
		}
		c := strings.Join(parts, " ")
		return CanonicalAttributeName(DBpediaStyleName(c), "") == c &&
			CanonicalAttributeName(FreebaseStyleName(c, "Book"), "Book") == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAttributeUniverseSizesAndUniqueness(t *testing.T) {
	for _, spec := range FiveClasses() {
		attrs := AttributeUniverse(spec.Name, spec.Combined)
		if len(attrs) != spec.Combined {
			t.Errorf("%s: universe size %d, want %d", spec.Name, len(attrs), spec.Combined)
		}
		seen := map[string]bool{}
		for _, a := range attrs {
			if seen[a.Canonical] {
				t.Errorf("%s: duplicate attribute %q", spec.Name, a.Canonical)
			}
			seen[a.Canonical] = true
			if a.Canonical == "" {
				t.Errorf("%s: empty attribute name", spec.Name)
			}
		}
	}
}

func TestAttributeUniverseDeterministic(t *testing.T) {
	a := AttributeUniverse("Film", 92)
	b := AttributeUniverse("Film", 92)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("universe not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFiveClassesSpecsMatchPaper(t *testing.T) {
	// Table 2 of the paper, exactly.
	want := map[string][5]int{
		"Book":       {21, 48, 5, 19, 60},
		"Film":       {53, 53, 54, 54, 92},
		"Country":    {191, 360, 22, 150, 489},
		"University": {21, 484, 9, 57, 518},
		"Hotel":      {18, 216, 7, 56, 255},
	}
	for _, s := range FiveClasses() {
		w := want[s.Name]
		got := [5]int{s.DBpediaRaw, s.DBpediaExpanded, s.FreebaseRaw, s.FreebaseExpanded, s.Combined}
		if got != w {
			t.Errorf("%s spec = %v, want %v", s.Name, got, w)
		}
		if s.Overlap() <= 0 {
			t.Errorf("%s overlap = %d, want > 0", s.Name, s.Overlap())
		}
	}
}

func TestNewWorldDeterministic(t *testing.T) {
	w1 := NewWorld(WorldConfig{Seed: 7, EntitiesPerClass: 10, AttrsPerEntity: 12})
	w2 := NewWorld(WorldConfig{Seed: 7, EntitiesPerClass: 10, AttrsPerEntity: 12})
	for _, cls := range w1.Ontology.ClassNames() {
		n1, n2 := w1.EntityNames(cls), w2.EntityNames(cls)
		if len(n1) != len(n2) {
			t.Fatalf("%s: entity counts differ", cls)
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("%s: entity %d differs: %q vs %q", cls, i, n1[i], n2[i])
			}
		}
	}
}

func TestWorldStructure(t *testing.T) {
	w := NewWorld(DefaultWorldConfig())
	if w.Ontology.Len() != 5 {
		t.Fatalf("ontology has %d classes, want 5", w.Ontology.Len())
	}
	for _, cls := range w.Ontology.ClassNames() {
		es := w.EntitiesOf(cls)
		if len(es) != w.Config.EntitiesPerClass {
			t.Errorf("%s: %d entities, want %d", cls, len(es), w.Config.EntitiesPerClass)
		}
		for _, e := range es {
			if len(e.Values) == 0 {
				t.Errorf("%s/%s has no values", cls, e.Name)
			}
			if len(e.Values) > w.Config.AttrsPerEntity {
				t.Errorf("%s/%s has %d attrs, cap %d", cls, e.Name, len(e.Values), w.Config.AttrsPerEntity)
			}
			if got, ok := w.Entity(e.Name); !ok || got != e {
				t.Errorf("entity lookup failed for %q", e.Name)
			}
		}
	}
}

func TestWorldValueKinds(t *testing.T) {
	w := NewWorld(DefaultWorldConfig())
	cls := w.Ontology.Class("Film")
	for _, e := range w.EntitiesOf("Film") {
		for attr, vals := range e.Values {
			a, ok := cls.Attribute(attr)
			if !ok {
				t.Fatalf("entity value for unknown attribute %q", attr)
			}
			if a.Functional && len(vals) != 1 {
				t.Errorf("functional %q has %d values", attr, len(vals))
			}
			if a.Hierarchical {
				for _, v := range vals {
					if !w.Hier.Known(v) {
						t.Errorf("hierarchical value %q not in hierarchy", v)
					}
				}
			}
		}
	}
}

func TestWorldIsTrueWithHierarchy(t *testing.T) {
	w := NewWorld(DefaultWorldConfig())
	// Find an entity with a hierarchical place value.
	for _, e := range w.EntitiesOf("Film") {
		for attr, vals := range e.Values {
			a, _ := w.Ontology.Class("Film").Attribute(attr)
			if !a.Hierarchical || len(vals) == 0 {
				continue
			}
			city := vals[0]
			if !w.IsTrue(e, attr, city) {
				t.Fatalf("exact value not true")
			}
			for _, anc := range w.Hier.Ancestors(city) {
				if !w.IsTrue(e, attr, anc) {
					t.Fatalf("generalisation %q of %q not accepted as true", anc, city)
				}
			}
			if w.IsTrue(e, attr, "definitely wrong") {
				t.Fatal("wrong value accepted")
			}
			return
		}
	}
	t.Skip("no hierarchical value found (unexpected)")
}

func TestGenerateSourceKBsMatchTable2RawCounts(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 3, EntitiesPerClass: 20, AttrsPerEntity: 16})
	db := GenerateDBpedia(w, KBGenConfig{Seed: 3, Coverage: 0.7})
	fb := GenerateFreebase(w, KBGenConfig{Seed: 3, Coverage: 0.9})
	for _, spec := range FiveClasses() {
		if got := db.RawPropertyCount(spec.Name); got != spec.DBpediaRaw {
			t.Errorf("DBpedia %s raw = %d, want %d", spec.Name, got, spec.DBpediaRaw)
		}
		if got := fb.RawPropertyCount(spec.Name); got != spec.FreebaseRaw {
			t.Errorf("Freebase %s raw = %d, want %d", spec.Name, got, spec.FreebaseRaw)
		}
	}
}

func TestSourceKBExpandedCoverage(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 3, EntitiesPerClass: 20, AttrsPerEntity: 16})
	db := GenerateDBpedia(w, KBGenConfig{Seed: 3})
	fb := GenerateFreebase(w, KBGenConfig{Seed: 3})
	for _, spec := range FiveClasses() {
		dbSet := canonicalSet(db.Properties[spec.Name])
		fbSet := canonicalSet(fb.Properties[spec.Name])
		if len(dbSet) != spec.DBpediaExpanded {
			t.Errorf("DBpedia %s expanded = %d, want %d", spec.Name, len(dbSet), spec.DBpediaExpanded)
		}
		if len(fbSet) != spec.FreebaseExpanded {
			t.Errorf("Freebase %s expanded = %d, want %d", spec.Name, len(fbSet), spec.FreebaseExpanded)
		}
		union := map[string]bool{}
		overlap := 0
		for c := range dbSet {
			union[c] = true
		}
		for c := range fbSet {
			if union[c] {
				overlap++
			}
			union[c] = true
		}
		if len(union) != spec.Combined {
			t.Errorf("%s union = %d, want %d", spec.Name, len(union), spec.Combined)
		}
		if overlap != spec.Overlap() {
			t.Errorf("%s overlap = %d, want %d", spec.Name, overlap, spec.Overlap())
		}
	}
}

func canonicalSet(props []Property) map[string]bool {
	out := map[string]bool{}
	for _, p := range props {
		for _, f := range p.Fields {
			out[f.Canonical] = true
		}
	}
	return out
}

func TestSourceKBSurfaceNamesRecoverCanonicals(t *testing.T) {
	// The extractor must be able to recover canonical names from surface
	// names alone — verify the generator keeps that invariant.
	w := NewWorld(WorldConfig{Seed: 3, EntitiesPerClass: 5, AttrsPerEntity: 10})
	for _, src := range []*SourceKB{
		GenerateDBpedia(w, KBGenConfig{Seed: 3}),
		GenerateFreebase(w, KBGenConfig{Seed: 3}),
	} {
		for cls, props := range src.Properties {
			for _, p := range props {
				for _, f := range p.Fields {
					surface := f.Name
					if surface == "" {
						surface = p.Name
					}
					if got := CanonicalAttributeName(surface, cls); got != f.Canonical {
						t.Errorf("%s/%s: surface %q -> %q, want %q", src.Name, cls, surface, got, f.Canonical)
					}
				}
			}
		}
	}
}

func TestSourceKBFacts(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 11, EntitiesPerClass: 30, AttrsPerEntity: 20})
	db := GenerateDBpedia(w, KBGenConfig{Seed: 11, Coverage: 0.5})
	for _, cls := range w.Ontology.ClassNames() {
		covered := db.CoveredEntities[cls]
		if len(covered) == 0 {
			t.Errorf("%s: no covered entities", cls)
		}
		wantCover := int(float64(w.Config.EntitiesPerClass)*0.5 + 0.5)
		if len(covered) != wantCover {
			t.Errorf("%s: covered %d, want %d", cls, len(covered), wantCover)
		}
		if len(db.Facts[cls]) == 0 {
			t.Errorf("%s: no facts", cls)
		}
		coveredSet := map[string]bool{}
		for _, n := range covered {
			coveredSet[n] = true
		}
		for _, f := range db.Facts[cls] {
			if !coveredSet[f.Entity] {
				t.Errorf("%s: fact for uncovered entity %q", cls, f.Entity)
			}
			if len(f.FieldValues) == 0 {
				t.Errorf("%s: empty fact", cls)
			}
		}
	}
}

func TestGenerateStatsKBsMatchTable1(t *testing.T) {
	kbs := GenerateStatsKBs(1)
	want := map[string][2]int{
		"YAGO":     {10000, 100},
		"DBpedia":  {4000, 6000},
		"Freebase": {25000, 4000},
		"NELL":     {300, 500},
	}
	if len(kbs) != 4 {
		t.Fatalf("got %d stats KBs, want 4", len(kbs))
	}
	for _, s := range kbs {
		p := s.Profile()
		w := want[p.Name]
		if p.Entities != w[0] || p.Attributes != w[1] {
			t.Errorf("%s profile = %d/%d, want %d/%d", p.Name, p.Entities, p.Attributes, w[0], w[1])
		}
		seen := map[string]bool{}
		for _, a := range s.Attributes {
			if seen[a] {
				t.Errorf("%s: duplicate attribute %q", p.Name, a)
			}
			seen[a] = true
		}
	}
}

func TestEntityNamesUnique(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 5, EntitiesPerClass: 100, AttrsPerEntity: 10})
	seen := map[string]bool{}
	for _, cls := range w.Ontology.ClassNames() {
		for _, n := range w.EntityNames(cls) {
			if seen[n] {
				t.Errorf("duplicate entity name %q", n)
			}
			seen[n] = true
		}
	}
}

func TestValueKindString(t *testing.T) {
	for _, k := range []ValueKind{KindText, KindName, KindPlace, KindNumber, KindDate} {
		if strings.Contains(k.String(), "ValueKind") {
			t.Errorf("kind %d missing name", k)
		}
	}
}

func TestClassAttributeLookup(t *testing.T) {
	w := NewWorld(DefaultWorldConfig())
	cls := w.Ontology.Class("Book")
	if cls == nil {
		t.Fatal("Book class missing")
	}
	if a, ok := cls.Attribute("author"); !ok || a.Canonical != "author" {
		t.Error("author attribute lookup failed")
	}
	if _, ok := cls.Attribute("no such attr"); ok {
		t.Error("bogus attribute found")
	}
	if len(cls.AttributeNames()) != len(cls.Attributes) {
		t.Error("AttributeNames length mismatch")
	}
}
