package kb

import (
	"math/rand"
	"testing"
)

func TestSampleEntitiesBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	names := []string{"a", "b", "c", "d", "e"}
	if got := sampleEntities(names, 1.0, r); len(got) != 5 {
		t.Errorf("full coverage = %d, want 5", len(got))
	}
	got := sampleEntities(names, 0.4, r)
	if len(got) != 2 {
		t.Errorf("0.4 coverage = %d, want 2", len(got))
	}
	// Results keep original order (sorted indices).
	for i := 1; i < len(got); i++ {
		if indexOf(names, got[i-1]) >= indexOf(names, got[i]) {
			t.Error("sampled entities out of order")
		}
	}
}

func indexOf(s []string, v string) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func TestCorruptValue(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if got := corruptValue("12345", r); got == "12345" {
		t.Error("numeric value not corrupted")
	}
	if got := corruptValue("Jane Doe", r); got != "Jane Doe (disputed)" {
		t.Errorf("text corruption = %q", got)
	}
}

func TestPropertyComposite(t *testing.T) {
	simple := Property{Name: "x", Fields: []Field{{Canonical: "x"}}}
	composite := Property{Name: "y", Fields: []Field{{Canonical: "a"}, {Canonical: "b"}}}
	if simple.Composite() || !composite.Composite() {
		t.Error("Composite() wrong")
	}
}

func TestKBGenConfigDefaults(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 3, EntitiesPerClass: 10, AttrsPerEntity: 10})
	// Coverage outside (0,1] falls back to 0.7.
	kb := GenerateDBpedia(w, KBGenConfig{Seed: 3, Coverage: 1.5})
	for _, cls := range w.Ontology.ClassNames() {
		want := int(float64(w.Config.EntitiesPerClass)*0.7 + 0.5)
		if got := len(kb.CoveredEntities[cls]); got != want {
			t.Errorf("%s coverage fallback = %d, want %d", cls, got, want)
		}
	}
}

func TestValueAtAndSpanContains(t *testing.T) {
	e := &Entity{
		Name: "X", Class: "Country",
		Values:    map[string][]string{"head of state": {"Bob"}},
		Timelines: map[string][]Span{"head of state": {{Value: "Alice", From: 1990, To: 1999}, {Value: "Bob", From: 2000, To: 2015}}},
	}
	cases := []struct {
		year int
		want string
	}{
		{1989, ""}, {1990, "Alice"}, {1999, "Alice"}, {2000, "Bob"}, {2015, "Bob"}, {2016, ""},
	}
	for _, c := range cases {
		if got := e.ValueAt("head of state", c.year); got != c.want {
			t.Errorf("ValueAt(%d) = %q, want %q", c.year, got, c.want)
		}
	}
	if e.ValueAt("unknown attr", 2000) != "" {
		t.Error("unknown attribute timeline")
	}
	sp := Span{Value: "v", From: 5, To: 10}
	if sp.Contains(4) || !sp.Contains(5) || !sp.Contains(10) || sp.Contains(11) {
		t.Error("Span.Contains wrong")
	}
}

func TestTimelinesExcludedFromExtraAttrs(t *testing.T) {
	// Temporal attributes must always have both a current value and a
	// timeline, consistently.
	w := NewWorld(WorldConfig{Seed: 6, EntitiesPerClass: 20, AttrsPerEntity: 14})
	for _, cls := range w.Ontology.ClassNames() {
		class := w.Ontology.Class(cls)
		for _, e := range w.EntitiesOf(cls) {
			for attr := range e.Timelines {
				a, ok := class.Attribute(attr)
				if !ok || !a.Temporal {
					t.Errorf("%s/%s: timeline on non-temporal attribute", e.Name, attr)
				}
				if !e.HasAttr(attr) {
					t.Errorf("%s/%s: timeline without current value", e.Name, attr)
				}
			}
		}
	}
}

func TestGlobalAttributeNamesUnique(t *testing.T) {
	names := globalAttributeNames(2000)
	if len(names) != 2000 {
		t.Fatalf("got %d names", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate %q", n)
		}
		seen[n] = true
	}
}
