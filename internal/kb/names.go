package kb

import (
	"fmt"
	"math/rand"
	"strings"
)

// curatedAttributes is a hand-written core of realistic attribute names per
// class. The generated attribute universe starts with these and is padded
// with modifier+noun combinations to reach the class's target size.
var curatedAttributes = map[string][]Attribute{
	"Book": {
		{Canonical: "author", Kind: KindName, Functional: false},
		{Canonical: "publisher", Kind: KindName, Functional: true},
		{Canonical: "publication date", Kind: KindDate, Functional: true},
		{Canonical: "isbn", Kind: KindText, Functional: true},
		{Canonical: "genre", Kind: KindText, Functional: false},
		{Canonical: "page count", Kind: KindNumber, Functional: true},
		{Canonical: "language", Kind: KindText, Functional: false},
		{Canonical: "country of origin", Kind: KindPlace, Functional: true, Hierarchical: true},
		{Canonical: "series", Kind: KindText, Functional: true},
		{Canonical: "translator", Kind: KindName, Functional: false},
		{Canonical: "illustrator", Kind: KindName, Functional: false},
		{Canonical: "editor", Kind: KindName, Functional: false},
	},
	"Film": {
		{Canonical: "director", Kind: KindName, Functional: true},
		{Canonical: "producer", Kind: KindName, Functional: false},
		{Canonical: "release date", Kind: KindDate, Functional: true},
		{Canonical: "running time", Kind: KindNumber, Functional: true},
		{Canonical: "genre", Kind: KindText, Functional: false},
		{Canonical: "cast member", Kind: KindName, Functional: false},
		{Canonical: "screenwriter", Kind: KindName, Functional: false},
		{Canonical: "composer", Kind: KindName, Functional: true},
		{Canonical: "budget", Kind: KindNumber, Functional: true},
		{Canonical: "box office", Kind: KindNumber, Functional: true},
		{Canonical: "filming location", Kind: KindPlace, Functional: false, Hierarchical: true},
		{Canonical: "country of origin", Kind: KindPlace, Functional: true, Hierarchical: true},
	},
	"Country": {
		{Canonical: "capital", Kind: KindPlace, Functional: true, Hierarchical: true},
		{Canonical: "population", Kind: KindNumber, Functional: true},
		{Canonical: "area", Kind: KindNumber, Functional: true},
		{Canonical: "currency", Kind: KindText, Functional: true},
		{Canonical: "official language", Kind: KindText, Functional: false},
		{Canonical: "head of state", Kind: KindName, Functional: true, Temporal: true},
		{Canonical: "national anthem", Kind: KindText, Functional: true},
		{Canonical: "calling code", Kind: KindText, Functional: true},
		{Canonical: "gdp", Kind: KindNumber, Functional: true},
		{Canonical: "time zone", Kind: KindText, Functional: false},
		{Canonical: "founding date", Kind: KindDate, Functional: true},
	},
	"University": {
		{Canonical: "chancellor", Kind: KindName, Functional: true, Temporal: true},
		{Canonical: "founding date", Kind: KindDate, Functional: true},
		{Canonical: "student count", Kind: KindNumber, Functional: true},
		{Canonical: "campus location", Kind: KindPlace, Functional: false, Hierarchical: true},
		{Canonical: "motto", Kind: KindText, Functional: true},
		{Canonical: "endowment", Kind: KindNumber, Functional: true},
		{Canonical: "faculty count", Kind: KindNumber, Functional: true},
		{Canonical: "mascot", Kind: KindText, Functional: true},
		{Canonical: "acceptance rate", Kind: KindNumber, Functional: true},
	},
	"Hotel": {
		{Canonical: "star rating", Kind: KindNumber, Functional: true},
		{Canonical: "room count", Kind: KindNumber, Functional: true},
		{Canonical: "location", Kind: KindPlace, Functional: true, Hierarchical: true},
		{Canonical: "check in time", Kind: KindText, Functional: true},
		{Canonical: "check out time", Kind: KindText, Functional: true},
		{Canonical: "opening date", Kind: KindDate, Functional: true},
		{Canonical: "owner", Kind: KindName, Functional: true, Temporal: true},
	},
}

var attrModifiers = []string{
	"total", "annual", "official", "former", "original", "current", "primary",
	"secondary", "average", "estimated", "gross", "net", "minimum", "maximum",
	"local", "international", "national", "regional", "historic", "projected",
	"male", "female", "urban", "rural", "adjusted", "recorded", "combined",
	"initial", "final", "peak",
}

var attrNouns = map[string][]string{
	"Book": {
		"edition", "format", "award", "review score", "print run", "binding",
		"dedication", "subject", "audience", "chapter count", "volume",
		"sales figure", "adaptation", "preface author", "cover artist",
		"reading level", "catalog number", "revision", "excerpt", "royalty rate",
	},
	"Film": {
		"rating", "award", "revenue", "screening", "distributor", "studio",
		"sequel", "soundtrack", "aspect ratio", "sound format", "premiere",
		"certification", "attendance", "trailer", "poster artist", "gaffer",
		"stunt coordinator", "casting director", "color process", "negative cost",
	},
	"Country": {
		"population", "area", "gdp", "export", "import", "tax rate",
		"literacy rate", "birth rate", "death rate", "growth rate",
		"unemployment rate", "inflation rate", "debt", "budget", "reserve",
		"coastline", "border length", "forest cover", "water area",
		"military spending", "life expectancy", "median age", "density",
		"electricity production", "energy consumption", "road network",
		"railway length", "airport count", "port count", "holiday",
		"emission level", "rainfall", "temperature", "elevation", "income",
	},
	"University": {
		"enrollment", "tuition", "ranking", "faculty ratio", "graduation rate",
		"retention rate", "research budget", "library volume count",
		"campus area", "dormitory capacity", "alumni count", "professor count",
		"department count", "program count", "scholarship fund", "sports title",
		"publication count", "patent count", "laboratory count", "grant income",
		"admission score", "applicant count", "degree count", "staff count",
		"course count", "exchange partner", "accreditation", "housing cost",
		"student fee", "club count", "lecture hall count", "budget",
	},
	"Hotel": {
		"rate", "suite count", "floor count", "restaurant count", "pool count",
		"conference capacity", "parking capacity", "staff count", "guest score",
		"amenity", "occupancy rate", "renovation date", "bar count",
		"spa service", "gym area", "banquet capacity", "loyalty program",
		"pet policy", "wifi speed", "breakfast price", "tax", "deposit",
		"cancellation fee", "airport distance", "beach distance",
	},
}

// AttributeUniverse deterministically generates n distinct canonical
// attributes for the class: the curated core first, then modifier+noun
// combinations. It panics if the class has no vocabulary.
func AttributeUniverse(class string, n int) []Attribute {
	curated, ok := curatedAttributes[class]
	if !ok {
		panic(fmt.Sprintf("kb: unknown class %q", class))
	}
	nouns := attrNouns[class]
	out := make([]Attribute, 0, n)
	seen := make(map[string]bool, n)
	for _, a := range curated {
		if len(out) == n {
			break
		}
		if !seen[a.Canonical] {
			seen[a.Canonical] = true
			out = append(out, a)
		}
	}
	// Plain nouns next, then modifier+noun, then double-modifier+noun: the
	// combination space is far larger than any class's target size.
	emit := func(name string, kind ValueKind) {
		if len(out) < n && !seen[name] {
			seen[name] = true
			out = append(out, Attribute{Canonical: name, Kind: kind, Functional: true})
		}
	}
	for _, noun := range nouns {
		emit(noun, nounKind(noun))
	}
	for _, mod := range attrModifiers {
		for _, noun := range nouns {
			if len(out) == n {
				return out
			}
			emit(mod+" "+noun, nounKind(noun))
		}
	}
	for _, mod1 := range attrModifiers {
		for _, mod2 := range attrModifiers {
			if mod1 == mod2 {
				continue
			}
			for _, noun := range nouns {
				if len(out) == n {
					return out
				}
				emit(mod1+" "+mod2+" "+noun, nounKind(noun))
			}
		}
	}
	if len(out) < n {
		panic(fmt.Sprintf("kb: vocabulary for %q exhausted at %d of %d attributes", class, len(out), n))
	}
	return out
}

// nounKind guesses a value kind from the noun's surface form.
func nounKind(noun string) ValueKind {
	switch {
	case strings.HasSuffix(noun, "count") || strings.HasSuffix(noun, "rate") ||
		strings.HasSuffix(noun, "capacity") || strings.HasSuffix(noun, "area") ||
		strings.HasSuffix(noun, "length") || strings.HasSuffix(noun, "score") ||
		strings.HasSuffix(noun, "ratio") || strings.HasSuffix(noun, "price") ||
		strings.HasSuffix(noun, "fee") || strings.HasSuffix(noun, "cost") ||
		strings.HasSuffix(noun, "distance") || strings.HasSuffix(noun, "speed"):
		return KindNumber
	case strings.HasSuffix(noun, "date"):
		return KindDate
	case strings.HasSuffix(noun, "author") || strings.HasSuffix(noun, "artist") ||
		strings.HasSuffix(noun, "director") || strings.HasSuffix(noun, "coordinator"):
		return KindName
	default:
		return KindText
	}
}

var nameSyllables = []string{
	"al", "an", "ar", "bel", "ber", "bo", "ca", "cas", "da", "del", "den",
	"do", "el", "en", "fa", "fer", "ga", "gran", "ha", "hel", "il", "ka",
	"kor", "la", "lan", "len", "lo", "ma", "mar", "mel", "mi", "mon", "na",
	"nor", "ol", "or", "pa", "per", "ra", "ren", "ro", "sa", "sel", "ta",
	"tor", "va", "ver", "vi", "wes", "zan",
}

var firstNames = []string{
	"Alice", "Benjamin", "Clara", "Daniel", "Elena", "Frederick", "Grace",
	"Henry", "Isabel", "James", "Katherine", "Leon", "Maria", "Nathan",
	"Olivia", "Peter", "Quentin", "Rosa", "Samuel", "Teresa", "Ulrich",
	"Victoria", "Walter", "Ximena", "Yusuf", "Zelda",
}

var lastNames = []string{
	"Anderson", "Baranov", "Castellan", "Dimitrov", "Eriksson", "Fontaine",
	"Galloway", "Hartmann", "Ibanez", "Jansen", "Kovacs", "Lindqvist",
	"Moreau", "Novak", "Okafor", "Petrova", "Quintero", "Rossi", "Sandoval",
	"Takahashi", "Ueda", "Vasquez", "Whitfield", "Xu", "Yamamoto", "Zhukov",
}

// RandomPersonName draws a deterministic person name from the rng.
func RandomPersonName(r *rand.Rand) string {
	return firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
}

// RandomProperNoun draws a capitalised multi-syllable proper noun, used for
// entity names, place names and titles.
func RandomProperNoun(r *rand.Rand, syllables int) string {
	var b strings.Builder
	for i := 0; i < syllables; i++ {
		b.WriteString(nameSyllables[r.Intn(len(nameSyllables))])
	}
	s := b.String()
	return strings.ToUpper(s[:1]) + s[1:]
}

// EntityName generates a deterministic entity name for a class and index,
// unique within the class.
func EntityName(class string, r *rand.Rand, idx int) string {
	switch class {
	case "Book", "Film":
		words := 1 + r.Intn(3)
		parts := make([]string, words)
		for i := range parts {
			parts[i] = RandomProperNoun(r, 2+r.Intn(2))
		}
		return strings.Join(parts, " ") + fmt.Sprintf(" %c%d", 'A'+idx%26, idx)
	case "Country":
		return RandomProperNoun(r, 2+r.Intn(2)) + fmt.Sprintf("ia %d", idx)
	case "University":
		return "University of " + RandomProperNoun(r, 2+r.Intn(2)) + fmt.Sprintf(" %d", idx)
	case "Hotel":
		return "Hotel " + RandomProperNoun(r, 2+r.Intn(2)) + fmt.Sprintf(" %d", idx)
	default:
		return RandomProperNoun(r, 3) + fmt.Sprintf(" %d", idx)
	}
}
