// Package kb models ontologies, entities and knowledge bases, and generates
// the synthetic stand-ins for Freebase, DBpedia, YAGO and NELL that the
// pipeline extracts from. The paper's Tables 1 and 2 are computed over these
// synthetic KBs; entity counts are scaled down 1000x from the paper's
// figures while attribute structures are modelled exactly (see DESIGN.md).
//
// The key structural idea reproduced here is that a KB's *raw* attribute
// (property) set understates the knowledge it contains: composite
// properties — Freebase compound value types, DBpedia record-valued
// properties — bundle several logical sub-attributes into one. The kbx
// extractor flattens those composites, which is why "Extrac.(Freebase)"
// exceeds "Freebase" in Table 2.
package kb

import (
	"fmt"
	"sort"
	"strings"
)

// ValueKind describes the value space of an attribute, which drives both
// synthetic value generation and extraction-time type checks.
type ValueKind uint8

const (
	// KindText is a short free-text value.
	KindText ValueKind = iota
	// KindName is a proper-noun value (person, organisation).
	KindName
	// KindPlace is a location drawn from the value hierarchy.
	KindPlace
	// KindNumber is a numeric value.
	KindNumber
	// KindDate is a year or date value.
	KindDate
)

// String names the kind.
func (k ValueKind) String() string {
	switch k {
	case KindText:
		return "text"
	case KindName:
		return "name"
	case KindPlace:
		return "place"
	case KindNumber:
		return "number"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Attribute is a canonical (KB-independent) attribute of a class.
type Attribute struct {
	// Canonical is the canonical lower-case, space-separated name,
	// e.g. "birth place".
	Canonical string
	// Kind is the attribute's value space.
	Kind ValueKind
	// Functional is true when the attribute has a single true value per
	// entity (modulo hierarchical generalisations).
	Functional bool
	// Hierarchical is true when values live in the value hierarchy and
	// ancestors of a true value are also true.
	Hierarchical bool
	// Temporal is true when the attribute's value changes over time; the
	// world records a timeline of (value, from, to) spans and the current
	// value doubles as the plain value.
	Temporal bool
}

// Class is a type in the ontology (Freebase "type", DBpedia "class").
type Class struct {
	// Name is the class name, e.g. "Film".
	Name string
	// Attributes is the canonical attribute universe of the class, in a
	// fixed deterministic order.
	Attributes []Attribute

	byName map[string]int
}

// Attribute returns the class's attribute with the given canonical name.
func (c *Class) Attribute(canonical string) (Attribute, bool) {
	if c.byName == nil {
		c.index()
	}
	i, ok := c.byName[canonical]
	if !ok {
		return Attribute{}, false
	}
	return c.Attributes[i], true
}

func (c *Class) index() {
	c.byName = make(map[string]int, len(c.Attributes))
	for i, a := range c.Attributes {
		c.byName[a.Canonical] = i
	}
}

// AttributeNames returns the canonical names in order.
func (c *Class) AttributeNames() []string {
	out := make([]string, len(c.Attributes))
	for i, a := range c.Attributes {
		out[i] = a.Canonical
	}
	return out
}

// Ontology is a set of classes.
type Ontology struct {
	classes map[string]*Class
}

// NewOntology returns an empty ontology.
func NewOntology() *Ontology {
	return &Ontology{classes: make(map[string]*Class)}
}

// AddClass registers a class, replacing any class with the same name.
func (o *Ontology) AddClass(c *Class) {
	c.index()
	o.classes[c.Name] = c
}

// Class returns the named class, or nil.
func (o *Ontology) Class(name string) *Class { return o.classes[name] }

// ClassNames returns the class names in sorted order.
func (o *Ontology) ClassNames() []string {
	out := make([]string, 0, len(o.classes))
	for n := range o.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of classes.
func (o *Ontology) Len() int { return len(o.classes) }

// Span is one segment of a temporal attribute's timeline: Value held from
// year From through year To inclusive.
type Span struct {
	Value    string
	From, To int
}

// Contains reports whether the span covers the year.
func (s Span) Contains(year int) bool { return year >= s.From && year <= s.To }

// Entity is an instance of a class with ground-truth attribute values.
type Entity struct {
	// Name is the entity's surface name, e.g. "Casablanca".
	Name string
	// Class is the owning class name.
	Class string
	// Values maps canonical attribute name to the set of true values.
	// Functional attributes have one entry (plus hierarchy generalisations
	// are implicitly true); non-functional attributes may have several.
	// For temporal attributes the entry is the current (latest) value.
	Values map[string][]string
	// Timelines maps temporal attribute names to their historical spans in
	// chronological order.
	Timelines map[string][]Span
}

// ValueAt returns the temporal attribute's value in the given year, or "".
func (e *Entity) ValueAt(attr string, year int) string {
	for _, s := range e.Timelines[attr] {
		if s.Contains(year) {
			return s.Value
		}
	}
	return ""
}

// Value returns the first true value of the attribute, or "".
func (e *Entity) Value(attr string) string {
	vs := e.Values[attr]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// HasAttr reports whether the entity has any value for the attribute.
func (e *Entity) HasAttr(attr string) bool { return len(e.Values[attr]) > 0 }

// CanonicalAttributeName normalises a KB-specific property name (camelCase
// DBpedia style, snake_case Freebase style, slash-qualified paths) into the
// canonical lower-case space-separated form. Class-name prefixes are
// stripped when the class is supplied.
func CanonicalAttributeName(raw, class string) string {
	raw = strings.TrimPrefix(raw, "/")
	// Keep only the last path segment of Freebase-style paths.
	if i := strings.LastIndexByte(raw, '/'); i >= 0 {
		raw = raw[i+1:]
	}
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range raw {
		switch {
		case r == '_' || r == '-' || r == ' ' || r == '.':
			flush()
		case r >= 'A' && r <= 'Z':
			flush()
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	// Drop leading class-name tokens ("film directed by" -> "directed by").
	if class != "" {
		cls := strings.ToLower(class)
		for len(words) > 0 && words[0] == cls {
			words = words[1:]
		}
	}
	return strings.Join(words, " ")
}

// DBpediaStyleName renders a canonical attribute name in DBpedia's
// camelCase property style, e.g. "birth place" -> "birthPlace".
func DBpediaStyleName(canonical string) string {
	words := strings.Fields(canonical)
	if len(words) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(words[0])
	for _, w := range words[1:] {
		if w == "" {
			continue
		}
		b.WriteString(strings.ToUpper(w[:1]))
		b.WriteString(w[1:])
	}
	return b.String()
}

// FreebaseStyleName renders a canonical attribute name in Freebase's
// slash-qualified snake_case property style,
// e.g. ("birth place", "Film") -> "/film/film/birth_place".
func FreebaseStyleName(canonical, class string) string {
	cls := strings.ToLower(class)
	return "/" + cls + "/" + cls + "/" + strings.ReplaceAll(canonical, " ", "_")
}
