package kb

import (
	"fmt"
	"math/rand"
	"sort"

	"akb/internal/hierarchy"
)

// ClassSpec parameterises one of the paper's five representative classes:
// the size of its canonical attribute universe and how that universe is
// carved into the raw property sets of DBpedia and Freebase. The numbers
// come straight from Table 2 of the paper.
type ClassSpec struct {
	Name string
	// DBpediaRaw is the number of raw DBpedia properties for the class.
	DBpediaRaw int
	// DBpediaExpanded is the number of canonical attributes those raw
	// properties cover once composites are flattened ("Extrac.(DBpedia)").
	DBpediaExpanded int
	// FreebaseRaw is the number of raw Freebase properties.
	FreebaseRaw int
	// FreebaseExpanded is the number of canonical attributes they cover.
	FreebaseExpanded int
	// Combined is the size of the union of the two expanded sets
	// ("Combine(Freebase&DBpedia)") and the class's attribute-universe size.
	Combined int
}

// Overlap returns the number of canonical attributes covered by both KBs.
func (s ClassSpec) Overlap() int { return s.DBpediaExpanded + s.FreebaseExpanded - s.Combined }

// FiveClasses are the representative classes of the paper's Table 2 with
// the paper's exact attribute statistics.
func FiveClasses() []ClassSpec {
	return []ClassSpec{
		{Name: "Book", DBpediaRaw: 21, DBpediaExpanded: 48, FreebaseRaw: 5, FreebaseExpanded: 19, Combined: 60},
		{Name: "Film", DBpediaRaw: 53, DBpediaExpanded: 53, FreebaseRaw: 54, FreebaseExpanded: 54, Combined: 92},
		{Name: "Country", DBpediaRaw: 191, DBpediaExpanded: 360, FreebaseRaw: 22, FreebaseExpanded: 150, Combined: 489},
		{Name: "University", DBpediaRaw: 21, DBpediaExpanded: 484, FreebaseRaw: 9, FreebaseExpanded: 57, Combined: 518},
		{Name: "Hotel", DBpediaRaw: 18, DBpediaExpanded: 216, FreebaseRaw: 7, FreebaseExpanded: 56, Combined: 255},
	}
}

// WorldConfig controls synthetic-world generation.
type WorldConfig struct {
	// Seed drives all randomness; equal seeds produce identical worlds.
	Seed int64
	// EntitiesPerClass is the number of ground-truth entities per class.
	EntitiesPerClass int
	// AttrsPerEntity caps how many attributes of the universe each entity
	// has values for (the curated core is always included).
	AttrsPerEntity int
	// ExtraAttrsPerClass extends each class's attribute universe beyond the
	// ClassSpec's KB-covered span: attributes that exist in the world (and
	// appear on websites, in texts and in queries) but that no existing KB
	// records. They are what the open-Web extractors can genuinely
	// discover. Negative disables; zero uses the default of 15.
	ExtraAttrsPerClass int
	// Classes defaults to FiveClasses().
	Classes []ClassSpec
}

// DefaultWorldConfig returns a moderate-size world suitable for tests and
// examples.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{Seed: 1, EntitiesPerClass: 60, AttrsPerEntity: 24}
}

// World is the synthetic ground truth: an ontology, entities with true
// attribute values, and the value hierarchy. Extractors never see the world
// directly — they see KBs, query streams, websites and text corpora derived
// from it — while the evaluation harness scores extractions against it.
type World struct {
	Config   WorldConfig
	Ontology *Ontology
	// Hier is the value hierarchy for place-valued attributes.
	Hier *hierarchy.Forest

	entities map[string][]*Entity // class -> entities
	byName   map[string]*Entity
	places   []placeChain
	specs    map[string]ClassSpec
}

type placeChain struct{ city, region, country string }

// NewWorld generates a world from the configuration.
func NewWorld(cfg WorldConfig) *World {
	if cfg.Classes == nil {
		cfg.Classes = FiveClasses()
	}
	if cfg.EntitiesPerClass <= 0 {
		cfg.EntitiesPerClass = 60
	}
	if cfg.AttrsPerEntity <= 0 {
		cfg.AttrsPerEntity = 24
	}
	if cfg.ExtraAttrsPerClass == 0 {
		cfg.ExtraAttrsPerClass = 15
	} else if cfg.ExtraAttrsPerClass < 0 {
		cfg.ExtraAttrsPerClass = 0
	}
	w := &World{
		Config:   cfg,
		Ontology: NewOntology(),
		Hier:     hierarchy.NewForest(),
		entities: make(map[string][]*Entity),
		byName:   make(map[string]*Entity),
		specs:    make(map[string]ClassSpec),
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	w.buildPlaces(r)
	for _, spec := range cfg.Classes {
		w.specs[spec.Name] = spec
		cls := &Class{Name: spec.Name, Attributes: AttributeUniverse(spec.Name, spec.Combined+cfg.ExtraAttrsPerClass)}
		w.Ontology.AddClass(cls)
		w.populateClass(cls, r)
	}
	return w
}

// buildPlaces creates a three-level location hierarchy:
// city ⊂ region ⊂ country.
func (w *World) buildPlaces(r *rand.Rand) {
	seen := map[string]bool{}
	fresh := func(sylls int, suffix string) string {
		for {
			name := RandomProperNoun(r, sylls) + suffix
			if !seen[name] {
				seen[name] = true
				return name
			}
		}
	}
	for c := 0; c < 10; c++ {
		country := fresh(2, " Land")
		for g := 0; g < 3; g++ {
			region := fresh(2, " Province")
			if err := w.Hier.AddEdge(region, country); err != nil {
				panic(err)
			}
			for t := 0; t < 4; t++ {
				city := fresh(3, "")
				if err := w.Hier.AddEdge(city, region); err != nil {
					panic(err)
				}
				w.places = append(w.places, placeChain{city: city, region: region, country: country})
			}
		}
	}
}

func (w *World) populateClass(cls *Class, r *rand.Rand) {
	curatedN := len(curatedAttributes[cls.Name])
	for i := 0; i < w.Config.EntitiesPerClass; i++ {
		e := &Entity{
			Name:      EntityName(cls.Name, r, i),
			Class:     cls.Name,
			Values:    make(map[string][]string),
			Timelines: make(map[string][]Span),
		}
		// Every entity carries the curated core; the long tail is sampled.
		attrs := make([]int, 0, w.Config.AttrsPerEntity)
		for j := 0; j < curatedN && j < len(cls.Attributes); j++ {
			attrs = append(attrs, j)
		}
		for len(attrs) < w.Config.AttrsPerEntity && len(attrs) < len(cls.Attributes) {
			j := r.Intn(len(cls.Attributes))
			dup := false
			for _, k := range attrs {
				if k == j {
					dup = true
					break
				}
			}
			if !dup {
				attrs = append(attrs, j)
			}
		}
		sort.Ints(attrs)
		for _, j := range attrs {
			a := cls.Attributes[j]
			if a.Temporal {
				spans := w.randomTimeline(a, r)
				e.Timelines[a.Canonical] = spans
				e.Values[a.Canonical] = []string{spans[len(spans)-1].Value}
				continue
			}
			n := 1
			if !a.Functional {
				n = 1 + r.Intn(3)
			}
			vals := make([]string, 0, n)
			for k := 0; k < n; k++ {
				v := w.randomValue(a, r)
				dup := false
				for _, prev := range vals {
					if prev == v {
						dup = true
						break
					}
				}
				if !dup {
					vals = append(vals, v)
				}
			}
			e.Values[a.Canonical] = vals
		}
		w.entities[cls.Name] = append(w.entities[cls.Name], e)
		w.byName[e.Name] = e
	}
}

// randomTimeline builds 2-4 consecutive spans covering recent decades for
// a temporal attribute (e.g. successive heads of state).
func (w *World) randomTimeline(a Attribute, r *rand.Rand) []Span {
	n := 2 + r.Intn(3)
	start := 1970 + r.Intn(20)
	spans := make([]Span, 0, n)
	year := start
	for i := 0; i < n; i++ {
		length := 3 + r.Intn(10)
		to := year + length
		if i == n-1 {
			to = 2015 // "present" for the paper's era
		}
		v := w.randomValue(Attribute{Kind: a.Kind}, r)
		spans = append(spans, Span{Value: v, From: year, To: to})
		year = to + 1
		if year >= 2014 {
			spans[len(spans)-1].To = 2015
			break
		}
	}
	return spans
}

func (w *World) randomValue(a Attribute, r *rand.Rand) string {
	switch a.Kind {
	case KindName:
		return RandomPersonName(r)
	case KindPlace:
		pc := w.places[r.Intn(len(w.places))]
		// Hierarchical attributes store the most specific truth (the city);
		// generalisations are implied via the hierarchy.
		if a.Hierarchical {
			return pc.city
		}
		return pc.country
	case KindNumber:
		return fmt.Sprintf("%d", 1+r.Intn(999999))
	case KindDate:
		return fmt.Sprintf("%d", 1850+r.Intn(170))
	default:
		return RandomProperNoun(r, 2) + " " + RandomProperNoun(r, 2)
	}
}

// EntitiesOf returns the ground-truth entities of a class.
func (w *World) EntitiesOf(class string) []*Entity { return w.entities[class] }

// Entity looks an entity up by name.
func (w *World) Entity(name string) (*Entity, bool) {
	e, ok := w.byName[name]
	return e, ok
}

// EntityNames returns the names of a class's entities in generation order.
func (w *World) EntityNames(class string) []string {
	es := w.entities[class]
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	return out
}

// Spec returns the ClassSpec for a class.
func (w *World) Spec(class string) (ClassSpec, bool) {
	s, ok := w.specs[class]
	return s, ok
}

// Cities returns every leaf place name (used by value-noise injection).
func (w *World) Cities() []string {
	out := make([]string, len(w.places))
	for i, p := range w.places {
		out[i] = p.city
	}
	return out
}

// IsTrue reports whether value is a true value for (entity, attr), counting
// hierarchy generalisations of a true value as true — the paper's
// (Susie Fang, birth place, China) example.
func (w *World) IsTrue(e *Entity, attr, value string) bool {
	for _, v := range e.Values[attr] {
		if v == value {
			return true
		}
		if w.Hier.IsAncestor(value, v) {
			return true
		}
	}
	return false
}

// TrueLeafValues returns the most specific true values for (entity, attr).
func (w *World) TrueLeafValues(e *Entity, attr string) []string {
	return e.Values[attr]
}
