package kb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// NamingStyle selects how a source KB surfaces property names.
type NamingStyle uint8

const (
	// StyleDBpedia renders properties in camelCase ("birthPlace").
	StyleDBpedia NamingStyle = iota
	// StyleFreebase renders slash-qualified snake_case
	// ("/film/film/birth_place").
	StyleFreebase
)

// Field is one sub-field of a (possibly composite) KB property. Simple
// properties have a single field with an empty Name. Composite properties —
// Freebase compound value types, DBpedia record-valued properties — carry
// several named fields, each corresponding to one canonical attribute.
type Field struct {
	// Name is the KB-surface sub-field name; empty for simple properties.
	Name string
	// Canonical is the underlying canonical attribute. Extractors must not
	// read it (they recover it by normalising surface names); it exists for
	// evaluation.
	Canonical string
}

// Property is a raw property of a source KB.
type Property struct {
	// Name is the KB-surface property name in the KB's naming style.
	Name string
	// Class is the owning class.
	Class string
	// Fields are the property's sub-fields (len >= 1).
	Fields []Field
}

// Composite reports whether the property bundles multiple sub-attributes.
func (p Property) Composite() bool { return len(p.Fields) > 1 }

// Fact is one property assertion about an entity in a source KB.
type Fact struct {
	Entity   string
	Property string
	// FieldValues maps sub-field name -> values; simple properties use the
	// "" key.
	FieldValues map[string][]string
}

// SourceKB is a synthetic stand-in for an existing knowledge base
// (Freebase or DBpedia) restricted to the world's classes.
type SourceKB struct {
	Name  string
	Style NamingStyle
	// Properties lists the raw property schema per class.
	Properties map[string][]Property
	// Facts lists assertions per class.
	Facts map[string][]Fact
	// CoveredEntities is the subset of world entities the KB describes,
	// per class.
	CoveredEntities map[string][]string
}

// RawPropertyCount returns the number of raw properties for a class —
// the "DBpedia"/"Freebase" columns of Table 2.
func (k *SourceKB) RawPropertyCount(class string) int { return len(k.Properties[class]) }

// KBGenConfig controls source-KB generation.
type KBGenConfig struct {
	Seed int64
	// Coverage is the fraction of world entities the KB has facts for.
	Coverage float64
	// ErrorRate is the probability a stored value is corrupted; existing
	// KBs are "generally more accurate" (paper §3.1) so this is small.
	ErrorRate float64
}

// GenerateDBpedia builds the synthetic DBpedia from the world per the Table-2
// class specs: for each class, DBpediaRaw raw properties covering the first
// DBpediaExpanded canonical attributes.
func GenerateDBpedia(w *World, cfg KBGenConfig) *SourceKB {
	return generateSourceKB(w, "DBpedia", StyleDBpedia, cfg, func(s ClassSpec) (lo, hi, raw int) {
		return 0, s.DBpediaExpanded, s.DBpediaRaw
	})
}

// GenerateFreebase builds the synthetic Freebase: FreebaseRaw raw properties
// covering the last FreebaseExpanded canonical attributes, overlapping
// DBpedia's span by exactly ClassSpec.Overlap().
func GenerateFreebase(w *World, cfg KBGenConfig) *SourceKB {
	return generateSourceKB(w, "Freebase", StyleFreebase, cfg, func(s ClassSpec) (lo, hi, raw int) {
		return s.Combined - s.FreebaseExpanded, s.Combined, s.FreebaseRaw
	})
}

func generateSourceKB(w *World, name string, style NamingStyle, cfg KBGenConfig, span func(ClassSpec) (lo, hi, raw int)) *SourceKB {
	if cfg.Coverage <= 0 || cfg.Coverage > 1 {
		cfg.Coverage = 0.7
	}
	r := rand.New(rand.NewSource(cfg.Seed ^ int64(len(name))))
	out := &SourceKB{
		Name:            name,
		Style:           style,
		Properties:      make(map[string][]Property),
		Facts:           make(map[string][]Fact),
		CoveredEntities: make(map[string][]string),
	}
	for _, class := range w.Ontology.ClassNames() {
		spec, ok := w.Spec(class)
		if !ok {
			continue
		}
		cls := w.Ontology.Class(class)
		lo, hi, raw := span(spec)
		props := buildProperties(cls, style, lo, hi, raw)
		out.Properties[class] = props
		covered := sampleEntities(w.EntityNames(class), cfg.Coverage, r)
		out.CoveredEntities[class] = covered
		out.Facts[class] = buildFacts(w, cls, props, covered, cfg.ErrorRate, r)
	}
	return out
}

// buildProperties partitions the canonical attribute span [lo, hi) into raw
// property groups. Groups of size one become simple properties; larger
// groups become composite properties with named sub-fields.
func buildProperties(cls *Class, style NamingStyle, lo, hi, raw int) []Property {
	n := hi - lo
	if raw > n {
		raw = n
	}
	props := make([]Property, 0, raw)
	// Distribute n canonical attributes over raw groups as evenly as
	// possible; the first (n mod raw) groups get one extra member.
	base, extra := n/raw, n%raw
	idx := lo
	for g := 0; g < raw; g++ {
		size := base
		if g < extra {
			size++
		}
		members := cls.Attributes[idx : idx+size]
		idx += size
		props = append(props, makeProperty(cls.Name, style, members))
	}
	return props
}

func makeProperty(class string, style NamingStyle, members []Attribute) Property {
	render := func(canonical string) string {
		if style == StyleDBpedia {
			return DBpediaStyleName(canonical)
		}
		return FreebaseStyleName(canonical, class)
	}
	if len(members) == 1 {
		return Property{
			Name:   render(members[0].Canonical),
			Class:  class,
			Fields: []Field{{Name: "", Canonical: members[0].Canonical}},
		}
	}
	// Composite: the property is named after its first member plus a
	// "record" marker (mirroring Freebase CVT type names); each sub-field
	// carries the style-rendered canonical name.
	p := Property{
		Name:  render(members[0].Canonical + " record"),
		Class: class,
	}
	for _, m := range members {
		p.Fields = append(p.Fields, Field{Name: render(m.Canonical), Canonical: m.Canonical})
	}
	return p
}

func sampleEntities(names []string, coverage float64, r *rand.Rand) []string {
	want := int(float64(len(names))*coverage + 0.5)
	if want > len(names) {
		want = len(names)
	}
	perm := r.Perm(len(names))[:want]
	sort.Ints(perm)
	out := make([]string, want)
	for i, j := range perm {
		out[i] = names[j]
	}
	return out
}

func buildFacts(w *World, cls *Class, props []Property, covered []string, errRate float64, r *rand.Rand) []Fact {
	var facts []Fact
	for _, name := range covered {
		e, ok := w.Entity(name)
		if !ok {
			continue
		}
		for _, p := range props {
			fv := make(map[string][]string)
			for _, f := range p.Fields {
				vals := e.Values[f.Canonical]
				if len(vals) == 0 {
					continue
				}
				stored := make([]string, len(vals))
				copy(stored, vals)
				for i := range stored {
					if errRate > 0 && r.Float64() < errRate {
						stored[i] = corruptValue(stored[i], r)
					}
				}
				fv[f.Name] = stored
			}
			if len(fv) > 0 {
				facts = append(facts, Fact{Entity: name, Property: p.Name, FieldValues: fv})
			}
		}
	}
	return facts
}

// corruptValue produces a plausible wrong value, modelling the residual
// errors in curated KBs.
func corruptValue(v string, r *rand.Rand) string {
	if len(v) > 0 && v[0] >= '0' && v[0] <= '9' {
		return fmt.Sprintf("%d", r.Intn(999999)+1)
	}
	return v + " (disputed)"
}

// --- Table 1: statistics of representative KBs --------------------------

// KBProfile is the per-KB statistic reported in Table 1.
type KBProfile struct {
	Name string
	// Entities is the generated entity count (the paper's counts scaled
	// down 1000x: millions become thousands).
	Entities int
	// Attributes is the generated attribute count (unscaled).
	Attributes int
}

// StatsKB is a lightweight KB materialisation used only for Table 1: entity
// and attribute name lists of realistic sizes.
type StatsKB struct {
	Name       string
	Entities   []string
	Attributes []string
}

// Profile counts the materialised KB.
func (s *StatsKB) Profile() KBProfile {
	return KBProfile{Name: s.Name, Entities: len(s.Entities), Attributes: len(s.Attributes)}
}

// table1Targets reproduces the paper's Table 1 with entities scaled 1000x
// down (10M -> 10k etc.; NELL's 0.3M -> 300).
var table1Targets = []struct {
	name            string
	entities, attrs int
}{
	{"YAGO", 10000, 100},
	{"DBpedia", 4000, 6000},
	{"Freebase", 25000, 4000},
	{"NELL", 300, 500},
}

// GenerateStatsKBs materialises the four representative KBs of Table 1.
func GenerateStatsKBs(seed int64) []*StatsKB {
	out := make([]*StatsKB, 0, len(table1Targets))
	for i, t := range table1Targets {
		r := rand.New(rand.NewSource(seed + int64(i)))
		kb := &StatsKB{Name: t.name}
		seen := map[string]bool{}
		for len(kb.Entities) < t.entities {
			name := RandomProperNoun(r, 2+r.Intn(3)) + fmt.Sprintf(" (%s %d)", strings.ToLower(t.name), len(kb.Entities))
			if !seen[name] {
				seen[name] = true
				kb.Entities = append(kb.Entities, name)
			}
		}
		kb.Attributes = globalAttributeNames(t.attrs)
		out = append(out, kb)
	}
	return out
}

// globalAttributeNames produces n distinct attribute names drawn from the
// cross-class vocabulary.
func globalAttributeNames(n int) []string {
	classes := []string{"Country", "University", "Hotel", "Film", "Book"}
	seen := map[string]bool{}
	var out []string
	// Round-robin over per-class universes, qualifying duplicates.
	per := n/len(classes) + 1
	for _, cls := range classes {
		universe := AttributeUniverse(cls, maxUniverse(cls, per))
		for _, a := range universe {
			if len(out) == n {
				return out
			}
			name := a.Canonical
			if seen[name] {
				name = strings.ToLower(cls) + " " + name
			}
			if seen[name] {
				continue
			}
			seen[name] = true
			out = append(out, name)
		}
	}
	// Pad with indexed names if the vocabulary runs short.
	for i := 0; len(out) < n; i++ {
		name := fmt.Sprintf("auxiliary attribute %d", i)
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

func maxUniverse(cls string, want int) int {
	// Cap per-class draw at a size the vocabulary certainly supports.
	caps := map[string]int{"Country": 1000, "University": 950, "Hotel": 750, "Film": 600, "Book": 600}
	if want < caps[cls] {
		return want
	}
	return caps[cls]
}
