// Package textx extracts attributes and triples from Web text. Following
// the paper's design, it learns "regular lexical patterns — unified syntax
// rules over the Web" from sentences whose attribute is already in the seed
// set (seeded by the query-stream and existing-KB extractors), then applies
// the learned patterns across the corpus to extract new attributes and
// (entity, attribute, value) statements.
//
// A pattern is a token template with three slots, e.g.
//
//	the ⟨A⟩ of ⟨E⟩ is ⟨V⟩ .
//
// Learning abstracts seed sentences into templates; application matches
// templates against sentences with backtracking, validating the ⟨E⟩ slot
// against the entity index (entity linking) and the ⟨A⟩ slot against
// attribute-label plausibility rules.
package textx

import (
	"context"
	"sort"
	"strings"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/mapreduce"
	"akb/internal/obs"
	"akb/internal/rdf"
	"akb/internal/webgen"
)

// Slot markers inside token templates.
const (
	slotE = "⟨E⟩"
	slotA = "⟨A⟩"
	slotV = "⟨V⟩"
)

// glueWords are function words assumed to belong to the template, not to
// the value span, during pattern abstraction.
var glueWords = map[string]bool{
	"the": true, "of": true, "is": true, "was": true, "has": true,
	"have": true, "a": true, "an": true, "its": true, "are": true,
	"'s": true, ".": true, ",": true,
}

// Config controls text extraction.
type Config struct {
	// MinPatternSupport is the number of independent seed sentences a
	// template needs before it is trusted for application.
	MinPatternSupport int
	// MaxSlotTokens bounds how many tokens a slot may capture.
	MaxSlotTokens int
	// DiscoverEntities also records candidate new entities: well-formed
	// matches whose ⟨E⟩ binding is capitalised but unknown to the index.
	DiscoverEntities bool
	// Workers bounds intra-extractor parallelism. Template learning is a
	// per-document count aggregation and template application is pure per
	// document given the learned templates, so both phases run through the
	// mapreduce executor; match events are replayed in document order, so
	// output is byte-identical at any worker count. <= 1 runs serially.
	Workers int
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{MinPatternSupport: 2, MaxSlotTokens: 6}
}

// ClassResult is the per-class outcome.
type ClassResult struct {
	Class string
	// All is the enriched attribute set (seeds plus discoveries).
	All extract.AttrSet
	// Discovered holds attributes found by pattern application that were
	// not in the seeds.
	Discovered extract.AttrSet
}

// Result is the extraction outcome.
type Result struct {
	PerClass map[string]*ClassResult
	// Patterns are the learned templates (canonical token strings) in
	// descending support order.
	Patterns []string
	// Statements are extracted claims with per-document provenance.
	Statements []rdf.Statement
	// NewEntities maps candidate new entity names to their support, when
	// Config.DiscoverEntities is set.
	NewEntities map[string]int
	// NewEntityFacts holds the full facts matched for unknown entities.
	NewEntityFacts []extract.EntityFact
}

// Classes returns class names in sorted order.
func (r *Result) Classes() []string {
	out := make([]string, 0, len(r.PerClass))
	for c := range r.PerClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

type claim struct{ entity, attr, value string }

// docWork is one document plus its sentence segmentation and per-sentence
// tokens, computed once and shared by both extraction phases.
type docWork struct {
	doc   *webgen.Document
	sents []string
	toks  [][]string
}

// matchEvent is one template match captured during the parallel map of
// phase 2; entity == "" marks an unknown-entity candidate. Events replay
// serially in document order.
type matchEvent struct {
	class, entity, rawEntity, attr, value, source, doc string
}

type claimEvidence struct {
	count   int
	sources map[string]struct{}
	provs   []rdf.Provenance
}

// Extract learns patterns from seed-bearing sentences and applies them over
// the corpus.
func Extract(ctx context.Context, docs []*webgen.Document, idx *extract.EntityIndex, seeds map[string]extract.AttrSet, cfg Config, crit *confidence.Criterion) *Result {
	if cfg.MinPatternSupport <= 0 {
		cfg.MinPatternSupport = 2
	}
	if cfg.MaxSlotTokens <= 0 {
		cfg.MaxSlotTokens = 6
	}
	res := &Result{PerClass: make(map[string]*ClassResult), NewEntities: make(map[string]int)}
	for class, s := range seeds {
		res.PerClass[class] = &ClassResult{Class: class, All: s.Clone(), Discovered: extract.NewAttrSet()}
	}

	// Pre-pass: segment and tokenize every document exactly once. Both
	// phases used to re-split the corpus (and phase 2 re-tokenized it);
	// sharing the per-doc sentence and token slices halves that work and
	// removes the duplicate allocations.
	mrCfg := mapreduce.Config{Workers: max(cfg.Workers, 1), Obs: obs.Reg(ctx)}
	works := mapreduce.Map(mrCfg, docs, func(doc *webgen.Document) docWork {
		sents := SplitSentences(doc.Text)
		toks := make([][]string, len(sents))
		for i, s := range sents {
			toks[i] = TokenizeSentence(s)
		}
		return docWork{doc: doc, sents: sents, toks: toks}
	})

	// Phase 1: learn templates from sentences containing a known entity and
	// a seed attribute. Support counting is additive per document, so the
	// per-doc abstraction maps in parallel and the counts aggregate
	// serially in document order; the attribute sets are only read here.
	entityNames := idx.Names()
	templateSupport := map[string]int{}
	seedTmpls := mapreduce.Map(mrCfg, works, func(w docWork) []string {
		var out []string
		for _, sent := range w.sents {
			e := findEntity(sent, entityNames)
			if e == "" {
				continue
			}
			class, _ := idx.Class(e)
			cr := res.PerClass[class]
			if cr == nil {
				continue
			}
			attr := findSeedAttr(sent, e, cr.All)
			if attr == "" {
				continue
			}
			if tmpl, ok := abstractSentence(sent, e, attr); ok {
				out = append(out, tmpl)
			}
		}
		return out
	})
	for _, tmpls := range seedTmpls {
		for _, tmpl := range tmpls {
			templateSupport[tmpl]++
		}
	}
	var templates []template
	for tmpl, n := range templateSupport {
		if n >= cfg.MinPatternSupport {
			templates = append(templates, parseTemplate(tmpl))
			res.Patterns = append(res.Patterns, tmpl)
		}
	}
	sort.Slice(res.Patterns, func(i, j int) bool {
		si, sj := templateSupport[res.Patterns[i]], templateSupport[res.Patterns[j]]
		if si != sj {
			return si > sj
		}
		return res.Patterns[i] < res.Patterns[j]
	})
	sort.Slice(templates, func(i, j int) bool { return templates[i].canon < templates[j].canon })

	// Phase 2: apply templates across the corpus. Matching never reads the
	// growing attribute sets (cr.All only gates whether a matched attribute
	// counts as a discovery), so each document is matched independently and
	// the resulting events are replayed in document order — byte-identical
	// to the serial pass. res.PerClass is read-only during mapping: only
	// key existence is consulted, and keys are fixed at construction.
	known := func(class string) bool { return res.PerClass[class] != nil }
	perDoc := mapreduce.Map(mrCfg, works, func(w docWork) []matchEvent {
		return matchDoc(w, templates, idx, cfg, known)
	})
	claims := make(map[claim]*claimEvidence)
	for _, events := range perDoc {
		for _, ev := range events {
			foldEvent(res, claims, ev)
		}
	}
	if crit != nil {
		for _, cr := range res.PerClass {
			crit.ScoreAttrSet(extract.ExtractorText, cr.Discovered)
			crit.ScoreAttrSet(extract.ExtractorText, cr.All)
		}
	}
	res.Statements = buildStatements(claims, crit)
	reg := obs.Reg(ctx)
	reg.Counter("akb_textx_statements_total").Add(int64(len(res.Statements)))
	reg.Counter("akb_textx_patterns_total").Add(int64(len(res.Patterns)))
	return res
}

// matchDoc applies the learned templates to one document's tokenized
// sentences and returns its match events in sentence order. known reports
// whether a class has a result bucket (fixed at construction, so it is
// safe to consult from worker goroutines). Factored out of Extract so the
// AllocsPerRun regression test can bound the per-doc matching path.
func matchDoc(w docWork, templates []template, idx *extract.EntityIndex, cfg Config, known func(class string) bool) []matchEvent {
	var out []matchEvent
	var m matcher
	m.idx = idx
	m.maxSlot = cfg.MaxSlotTokens
	m.discover = cfg.DiscoverEntities
	for _, toks := range w.toks {
		for _, tmpl := range templates {
			b, ok := m.match(tmpl, toks)
			if !ok {
				continue
			}
			if b.entity == "" {
				// Unknown-entity candidate (new entity creation).
				if cfg.DiscoverEntities && b.rawEntity != "" {
					out = append(out, matchEvent{
						class: w.doc.Class, rawEntity: b.rawEntity,
						attr: b.attr, value: b.value, source: w.doc.Source, doc: w.doc.ID,
					})
				}
				continue
			}
			class, _ := idx.Class(b.entity)
			if !known(class) {
				continue
			}
			out = append(out, matchEvent{
				class: class, entity: b.entity,
				attr: b.attr, value: b.value, source: w.doc.Source, doc: w.doc.ID,
			})
			break // one match per sentence
		}
	}
	return out
}

// foldEvent replays one match event into the result and claim state, in
// document order — the serial aggregation step of phase 2.
func foldEvent(res *Result, claims map[claim]*claimEvidence, ev matchEvent) {
	if ev.entity == "" {
		res.NewEntities[ev.rawEntity]++
		res.NewEntityFacts = append(res.NewEntityFacts, extract.EntityFact{
			Name: ev.rawEntity, Class: ev.class,
			Attr: extract.NormalizeLabel(ev.attr), Value: ev.value,
			Source: ev.source, Doc: ev.doc,
		})
		return
	}
	cr := res.PerClass[ev.class]
	attr := extract.NormalizeLabel(ev.attr)
	if !cr.All.Has(attr) {
		cr.Discovered.Add(attr, ev.source)
		cr.All.Add(attr, ev.source)
	}
	c := claim{entity: ev.entity, attr: attr, value: ev.value}
	cev := claims[c]
	if cev == nil {
		cev = &claimEvidence{sources: make(map[string]struct{})}
		claims[c] = cev
	}
	cev.count++
	if _, dup := cev.sources[ev.source]; !dup {
		cev.sources[ev.source] = struct{}{}
		cev.provs = append(cev.provs, rdf.Provenance{
			Source: ev.source, Extractor: extract.ExtractorText, Document: ev.doc,
		})
	}
}

// SplitSentences segments text into sentences on ". " boundaries, keeping
// the final period with each sentence.
func SplitSentences(text string) []string {
	var out []string
	for {
		i := strings.Index(text, ". ")
		if i < 0 {
			break
		}
		out = append(out, strings.TrimSpace(text[:i+1]))
		text = text[i+2:]
	}
	if t := strings.TrimSpace(text); t != "" {
		out = append(out, t)
	}
	return out
}

// TokenizeSentence splits a sentence into tokens, separating "'s" clitics
// and the trailing period into their own tokens.
func TokenizeSentence(s string) []string {
	s = strings.ReplaceAll(s, "'s ", " 's ")
	if strings.HasSuffix(s, "'s") {
		s = s[:len(s)-2] + " 's"
	}
	if strings.HasSuffix(s, ".") {
		s = s[:len(s)-1] + " ."
	}
	return strings.Fields(s)
}

// findEntity returns the longest known entity name contained in the
// sentence, or "".
func findEntity(sent string, names []string) string {
	best := ""
	for _, n := range names {
		if len(n) > len(best) && containsWord(sent, n) {
			best = n
		}
	}
	return best
}

// findSeedAttr returns a seed attribute mentioned in the sentence outside
// the entity span, or "".
func findSeedAttr(sent, entity string, seeds extract.AttrSet) string {
	masked := strings.Replace(sent, entity, "", 1)
	best := ""
	for attr := range seeds {
		if len(attr) > len(best) && containsWord(masked, attr) {
			best = attr
		}
	}
	return best
}

// containsWord reports whether needle occurs in haystack at word
// boundaries.
func containsWord(haystack, needle string) bool {
	for start := 0; ; {
		i := strings.Index(haystack[start:], needle)
		if i < 0 {
			return false
		}
		i += start
		leftOK := i == 0 || haystack[i-1] == ' '
		j := i + len(needle)
		rightOK := j == len(haystack) || haystack[j] == ' ' || haystack[j] == '.' ||
			haystack[j] == ',' || haystack[j] == '\''
		if leftOK && rightOK {
			return true
		}
		start = i + 1
	}
}

// abstractSentence turns a seed sentence into a token template by replacing
// the entity and attribute spans with slots and the longest remaining
// non-glue token run with the value slot.
func abstractSentence(sent, entity, attr string) (string, bool) {
	s := strings.Replace(sent, entity, slotE, 1)
	s = strings.Replace(s, attr, slotA, 1)
	toks := TokenizeSentence(s)
	// Find the longest run of non-glue, non-slot tokens.
	bestStart, bestLen := -1, 0
	curStart, curLen := -1, 0
	for i, t := range toks {
		lower := strings.ToLower(t)
		if t == slotE || t == slotA || glueWords[lower] {
			curStart, curLen = -1, 0
			continue
		}
		if curStart < 0 {
			curStart = i
		}
		curLen++
		if curLen > bestLen {
			bestStart, bestLen = curStart, curLen
		}
	}
	if bestStart < 0 {
		return "", false
	}
	out := make([]string, 0, len(toks)-bestLen+1)
	for i := 0; i < len(toks); i++ {
		if i == bestStart {
			out = append(out, slotV)
			i += bestLen - 1
			continue
		}
		if t := toks[i]; t == slotE || t == slotA {
			out = append(out, t)
		} else {
			out = append(out, strings.ToLower(t))
		}
	}
	// A usable template mentions all three slots.
	joined := strings.Join(out, " ")
	if !strings.Contains(joined, slotE) || !strings.Contains(joined, slotA) || !strings.Contains(joined, slotV) {
		return "", false
	}
	return joined, true
}

// template is a parsed token template.
type template struct {
	canon  string
	tokens []string
}

func parseTemplate(canon string) template {
	return template{canon: canon, tokens: strings.Fields(canon)}
}

// binding is a successful template match.
type binding struct {
	entity    string // resolved known entity ("" if unknown)
	rawEntity string // raw ⟨E⟩ span
	attr      string
	value     string
}

// matcher aligns templates against sentence tokens with backtracking. One
// matcher is reused across every (sentence, template) pair of a document:
// the slot bindings live in three fixed fields (sub-slices of the sentence
// tokens) instead of the per-call map[string][]string the first
// implementation allocated, so the matching hot path only allocates when a
// candidate binding actually completes.
type matcher struct {
	idx      *extract.EntityIndex
	maxSlot  int
	discover bool

	tokens  []string // current template tokens
	toks    []string // current sentence tokens
	e, a, v []string // slot bindings (sub-slices of toks)

	out, unknown binding
	haveUnknown  bool
}

// match aligns one template against one sentence. Slots capture
// 1..maxSlot tokens; literals compare case-insensitively. The ⟨E⟩ binding
// must resolve against the entity index for a full match; otherwise the
// best-effort raw binding is returned with ok=true and entity=="" only
// when every other constraint holds.
func (m *matcher) match(tmpl template, toks []string) (binding, bool) {
	m.tokens, m.toks = tmpl.tokens, toks
	m.e, m.a, m.v = nil, nil, nil
	m.out, m.unknown = binding{}, binding{}
	m.haveUnknown = false
	if m.rec(0, 0) {
		return m.out, true
	}
	if m.haveUnknown {
		return m.unknown, true
	}
	return binding{}, false
}

// matchTemplate matches one template against one sentence with a fresh
// matcher; matchDoc reuses a matcher instead.
func matchTemplate(tmpl template, toks []string, idx *extract.EntityIndex, cfg Config) (binding, bool) {
	m := matcher{idx: idx, maxSlot: cfg.MaxSlotTokens, discover: cfg.DiscoverEntities}
	return m.match(tmpl, toks)
}

func (m *matcher) rec(ti, si int) bool {
	if ti == len(m.tokens) {
		if si != len(m.toks) {
			return false
		}
		if len(m.e) == 0 || len(m.a) == 0 || len(m.v) == 0 {
			return false
		}
		// Value spans never contain glue words; rejecting them forces
		// the backtracker to extend the attribute slot instead (e.g.
		// "country of origin" rather than value "origin of X").
		for _, vt := range m.v {
			if glueWords[strings.ToLower(vt)] {
				return false
			}
		}
		cand := binding{
			rawEntity: strings.Join(m.e, " "),
			attr:      strings.Join(m.a, " "),
			value:     strings.Join(m.v, " "),
		}
		if !extract.ValidAttributeLabel(extract.NormalizeLabel(cand.attr)) {
			return false
		}
		if _, known := m.idx.Class(cand.rawEntity); known {
			cand.entity = cand.rawEntity
			m.out = cand
			return true
		}
		if m.discover && isCapitalizedSpan(cand.rawEntity) && !m.haveUnknown {
			m.unknown = cand
			m.haveUnknown = true
		}
		return false
	}
	tok := m.tokens[ti]
	switch tok {
	case slotE, slotA, slotV:
		var slot *[]string
		switch tok {
		case slotE:
			slot = &m.e
		case slotA:
			slot = &m.a
		default:
			slot = &m.v
		}
		for n := 1; n <= m.maxSlot && si+n <= len(m.toks); n++ {
			*slot = m.toks[si : si+n]
			if m.rec(ti+1, si+n) {
				return true
			}
		}
		*slot = nil
		return false
	default:
		if si >= len(m.toks) || !strings.EqualFold(m.toks[si], tok) {
			return false
		}
		return m.rec(ti+1, si+1)
	}
}

// isCapitalizedSpan accepts proper-noun spans: every word starts with an
// upper-case letter or digit, except lower-case connectors ("of", "the",
// "and") in the middle; the first and last word must be capitalised
// ("University of Enel 24" qualifies, "motto of University" does not).
func isCapitalizedSpan(s string) bool {
	words := strings.Fields(s)
	if len(words) == 0 {
		return false
	}
	capitalized := func(w string) bool {
		c := w[0]
		return c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
	}
	if !capitalized(words[0]) || !capitalized(words[len(words)-1]) {
		return false
	}
	if len(words) < 3 {
		return true
	}
	for _, w := range words[1 : len(words)-1] {
		if capitalized(w) {
			continue
		}
		switch w {
		case "of", "the", "and":
		default:
			return false
		}
	}
	return true
}

func buildStatements(claims map[claim]*claimEvidence, crit *confidence.Criterion) []rdf.Statement {
	keys := make([]claim, 0, len(claims))
	for c := range claims {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.entity != b.entity {
			return a.entity < b.entity
		}
		if a.attr != b.attr {
			return a.attr < b.attr
		}
		return a.value < b.value
	})
	var out []rdf.Statement
	for _, c := range keys {
		ev := claims[c]
		conf := 0.5
		if crit != nil {
			conf = crit.Score(extract.ExtractorText, ev.count, len(ev.sources))
		}
		for _, prov := range ev.provs {
			out = append(out, rdf.S(
				rdf.T(extract.EntityIRI(c.entity), extract.AttrIRI(c.attr), rdf.Literal(c.value)),
				prov, conf))
		}
	}
	return out
}
