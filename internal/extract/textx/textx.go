// Package textx extracts attributes and triples from Web text. Following
// the paper's design, it learns "regular lexical patterns — unified syntax
// rules over the Web" from sentences whose attribute is already in the seed
// set (seeded by the query-stream and existing-KB extractors), then applies
// the learned patterns across the corpus to extract new attributes and
// (entity, attribute, value) statements.
//
// A pattern is a token template with three slots, e.g.
//
//	the ⟨A⟩ of ⟨E⟩ is ⟨V⟩ .
//
// Learning abstracts seed sentences into templates; application matches
// templates against sentences with backtracking, validating the ⟨E⟩ slot
// against the entity index (entity linking) and the ⟨A⟩ slot against
// attribute-label plausibility rules.
package textx

import (
	"context"
	"sort"
	"strings"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/mapreduce"
	"akb/internal/obs"
	"akb/internal/rdf"
	"akb/internal/webgen"
)

// Slot markers inside token templates.
const (
	slotE = "⟨E⟩"
	slotA = "⟨A⟩"
	slotV = "⟨V⟩"
)

// glueWords are function words assumed to belong to the template, not to
// the value span, during pattern abstraction.
var glueWords = map[string]bool{
	"the": true, "of": true, "is": true, "was": true, "has": true,
	"have": true, "a": true, "an": true, "its": true, "are": true,
	"'s": true, ".": true, ",": true,
}

// Config controls text extraction.
type Config struct {
	// MinPatternSupport is the number of independent seed sentences a
	// template needs before it is trusted for application.
	MinPatternSupport int
	// MaxSlotTokens bounds how many tokens a slot may capture.
	MaxSlotTokens int
	// DiscoverEntities also records candidate new entities: well-formed
	// matches whose ⟨E⟩ binding is capitalised but unknown to the index.
	DiscoverEntities bool
	// Workers bounds intra-extractor parallelism. Template learning is a
	// per-document count aggregation and template application is pure per
	// document given the learned templates, so both phases run through the
	// mapreduce executor; match events are replayed in document order, so
	// output is byte-identical at any worker count. <= 1 runs serially.
	Workers int
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{MinPatternSupport: 2, MaxSlotTokens: 6}
}

// ClassResult is the per-class outcome.
type ClassResult struct {
	Class string
	// All is the enriched attribute set (seeds plus discoveries).
	All extract.AttrSet
	// Discovered holds attributes found by pattern application that were
	// not in the seeds.
	Discovered extract.AttrSet
}

// Result is the extraction outcome.
type Result struct {
	PerClass map[string]*ClassResult
	// Patterns are the learned templates (canonical token strings) in
	// descending support order.
	Patterns []string
	// Statements are extracted claims with per-document provenance.
	Statements []rdf.Statement
	// NewEntities maps candidate new entity names to their support, when
	// Config.DiscoverEntities is set.
	NewEntities map[string]int
	// NewEntityFacts holds the full facts matched for unknown entities.
	NewEntityFacts []extract.EntityFact
}

// Classes returns class names in sorted order.
func (r *Result) Classes() []string {
	out := make([]string, 0, len(r.PerClass))
	for c := range r.PerClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

type claim struct{ entity, attr, value string }

// matchEvent is one template match captured during the parallel map of
// phase 2; entity == "" marks an unknown-entity candidate. Events replay
// serially in document order.
type matchEvent struct {
	class, entity, rawEntity, attr, value, source, doc string
}

type claimEvidence struct {
	count   int
	sources map[string]struct{}
	provs   []rdf.Provenance
}

// Extract learns patterns from seed-bearing sentences and applies them over
// the corpus.
func Extract(ctx context.Context, docs []*webgen.Document, idx *extract.EntityIndex, seeds map[string]extract.AttrSet, cfg Config, crit *confidence.Criterion) *Result {
	if cfg.MinPatternSupport <= 0 {
		cfg.MinPatternSupport = 2
	}
	if cfg.MaxSlotTokens <= 0 {
		cfg.MaxSlotTokens = 6
	}
	res := &Result{PerClass: make(map[string]*ClassResult), NewEntities: make(map[string]int)}
	for class, s := range seeds {
		res.PerClass[class] = &ClassResult{Class: class, All: s.Clone(), Discovered: extract.NewAttrSet()}
	}

	// Phase 1: learn templates from sentences containing a known entity and
	// a seed attribute. Support counting is additive per document, so it is
	// a true map-shuffle job; the attribute sets are only read here.
	mrCfg := mapreduce.Config{Workers: max(cfg.Workers, 1), Obs: obs.Reg(ctx)}
	entityNames := idx.Names()
	templateSupport := map[string]int{}
	seedSents := mapreduce.MapPhase(mrCfg, docs, func(doc *webgen.Document) []mapreduce.KV[int] {
		var out []mapreduce.KV[int]
		for _, sent := range SplitSentences(doc.Text) {
			e := findEntity(sent, entityNames)
			if e == "" {
				continue
			}
			class, _ := idx.Class(e)
			cr := res.PerClass[class]
			if cr == nil {
				continue
			}
			attr := findSeedAttr(sent, e, cr.All)
			if attr == "" {
				continue
			}
			if tmpl, ok := abstractSentence(sent, e, attr); ok {
				out = append(out, mapreduce.KV[int]{Key: tmpl, Value: 1})
			}
		}
		return out
	})
	for _, g := range mapreduce.Shuffle(seedSents) {
		templateSupport[g.Key] = len(g.Values)
	}
	var templates []template
	for tmpl, n := range templateSupport {
		if n >= cfg.MinPatternSupport {
			templates = append(templates, parseTemplate(tmpl))
			res.Patterns = append(res.Patterns, tmpl)
		}
	}
	sort.Slice(res.Patterns, func(i, j int) bool {
		si, sj := templateSupport[res.Patterns[i]], templateSupport[res.Patterns[j]]
		if si != sj {
			return si > sj
		}
		return res.Patterns[i] < res.Patterns[j]
	})
	sort.Slice(templates, func(i, j int) bool { return templates[i].canon < templates[j].canon })

	// Phase 2: apply templates across the corpus. Matching never reads the
	// growing attribute sets (cr.All only gates whether a matched attribute
	// counts as a discovery), so each document is matched independently and
	// the resulting events are replayed in document order — byte-identical
	// to the serial pass. res.PerClass is read-only during mapping: only
	// key existence is consulted, and keys are fixed at construction.
	events := mapreduce.MapPhase(mrCfg, docs, func(doc *webgen.Document) []mapreduce.KV[matchEvent] {
		var out []mapreduce.KV[matchEvent]
		for _, sent := range SplitSentences(doc.Text) {
			toks := TokenizeSentence(sent)
			for _, tmpl := range templates {
				b, ok := matchTemplate(tmpl, toks, idx, cfg)
				if !ok {
					continue
				}
				if b.entity == "" {
					// Unknown-entity candidate (new entity creation).
					if cfg.DiscoverEntities && b.rawEntity != "" {
						out = append(out, mapreduce.KV[matchEvent]{Value: matchEvent{
							class: doc.Class, rawEntity: b.rawEntity,
							attr: b.attr, value: b.value, source: doc.Source, doc: doc.ID,
						}})
					}
					continue
				}
				class, _ := idx.Class(b.entity)
				if res.PerClass[class] == nil {
					continue
				}
				out = append(out, mapreduce.KV[matchEvent]{Value: matchEvent{
					class: class, entity: b.entity,
					attr: b.attr, value: b.value, source: doc.Source, doc: doc.ID,
				}})
				break // one match per sentence
			}
		}
		return out
	})
	claims := make(map[claim]*claimEvidence)
	for _, kv := range events {
		ev := kv.Value
		if ev.entity == "" {
			res.NewEntities[ev.rawEntity]++
			res.NewEntityFacts = append(res.NewEntityFacts, extract.EntityFact{
				Name: ev.rawEntity, Class: ev.class,
				Attr: extract.NormalizeLabel(ev.attr), Value: ev.value,
				Source: ev.source, Doc: ev.doc,
			})
			continue
		}
		cr := res.PerClass[ev.class]
		attr := extract.NormalizeLabel(ev.attr)
		if !cr.All.Has(attr) {
			cr.Discovered.Add(attr, ev.source)
			cr.All.Add(attr, ev.source)
		}
		c := claim{entity: ev.entity, attr: attr, value: ev.value}
		cev := claims[c]
		if cev == nil {
			cev = &claimEvidence{sources: make(map[string]struct{})}
			claims[c] = cev
		}
		cev.count++
		if _, dup := cev.sources[ev.source]; !dup {
			cev.sources[ev.source] = struct{}{}
			cev.provs = append(cev.provs, rdf.Provenance{
				Source: ev.source, Extractor: extract.ExtractorText, Document: ev.doc,
			})
		}
	}
	if crit != nil {
		for _, cr := range res.PerClass {
			crit.ScoreAttrSet(extract.ExtractorText, cr.Discovered)
			crit.ScoreAttrSet(extract.ExtractorText, cr.All)
		}
	}
	res.Statements = buildStatements(claims, crit)
	reg := obs.Reg(ctx)
	reg.Counter("akb_textx_statements_total").Add(int64(len(res.Statements)))
	reg.Counter("akb_textx_patterns_total").Add(int64(len(res.Patterns)))
	return res
}

// SplitSentences segments text into sentences on ". " boundaries, keeping
// the final period with each sentence.
func SplitSentences(text string) []string {
	var out []string
	for {
		i := strings.Index(text, ". ")
		if i < 0 {
			break
		}
		out = append(out, strings.TrimSpace(text[:i+1]))
		text = text[i+2:]
	}
	if t := strings.TrimSpace(text); t != "" {
		out = append(out, t)
	}
	return out
}

// TokenizeSentence splits a sentence into tokens, separating "'s" clitics
// and the trailing period into their own tokens.
func TokenizeSentence(s string) []string {
	s = strings.ReplaceAll(s, "'s ", " 's ")
	if strings.HasSuffix(s, "'s") {
		s = s[:len(s)-2] + " 's"
	}
	if strings.HasSuffix(s, ".") {
		s = s[:len(s)-1] + " ."
	}
	return strings.Fields(s)
}

// findEntity returns the longest known entity name contained in the
// sentence, or "".
func findEntity(sent string, names []string) string {
	best := ""
	for _, n := range names {
		if len(n) > len(best) && containsWord(sent, n) {
			best = n
		}
	}
	return best
}

// findSeedAttr returns a seed attribute mentioned in the sentence outside
// the entity span, or "".
func findSeedAttr(sent, entity string, seeds extract.AttrSet) string {
	masked := strings.Replace(sent, entity, "", 1)
	best := ""
	for attr := range seeds {
		if len(attr) > len(best) && containsWord(masked, attr) {
			best = attr
		}
	}
	return best
}

// containsWord reports whether needle occurs in haystack at word
// boundaries.
func containsWord(haystack, needle string) bool {
	for start := 0; ; {
		i := strings.Index(haystack[start:], needle)
		if i < 0 {
			return false
		}
		i += start
		leftOK := i == 0 || haystack[i-1] == ' '
		j := i + len(needle)
		rightOK := j == len(haystack) || haystack[j] == ' ' || haystack[j] == '.' ||
			haystack[j] == ',' || haystack[j] == '\''
		if leftOK && rightOK {
			return true
		}
		start = i + 1
	}
}

// abstractSentence turns a seed sentence into a token template by replacing
// the entity and attribute spans with slots and the longest remaining
// non-glue token run with the value slot.
func abstractSentence(sent, entity, attr string) (string, bool) {
	s := strings.Replace(sent, entity, slotE, 1)
	s = strings.Replace(s, attr, slotA, 1)
	toks := TokenizeSentence(s)
	// Find the longest run of non-glue, non-slot tokens.
	bestStart, bestLen := -1, 0
	curStart, curLen := -1, 0
	for i, t := range toks {
		lower := strings.ToLower(t)
		if t == slotE || t == slotA || glueWords[lower] {
			curStart, curLen = -1, 0
			continue
		}
		if curStart < 0 {
			curStart = i
		}
		curLen++
		if curLen > bestLen {
			bestStart, bestLen = curStart, curLen
		}
	}
	if bestStart < 0 {
		return "", false
	}
	out := make([]string, 0, len(toks)-bestLen+1)
	for i := 0; i < len(toks); i++ {
		if i == bestStart {
			out = append(out, slotV)
			i += bestLen - 1
			continue
		}
		if t := toks[i]; t == slotE || t == slotA {
			out = append(out, t)
		} else {
			out = append(out, strings.ToLower(t))
		}
	}
	// A usable template mentions all three slots.
	joined := strings.Join(out, " ")
	if !strings.Contains(joined, slotE) || !strings.Contains(joined, slotA) || !strings.Contains(joined, slotV) {
		return "", false
	}
	return joined, true
}

// template is a parsed token template.
type template struct {
	canon  string
	tokens []string
}

func parseTemplate(canon string) template {
	return template{canon: canon, tokens: strings.Fields(canon)}
}

// binding is a successful template match.
type binding struct {
	entity    string // resolved known entity ("" if unknown)
	rawEntity string // raw ⟨E⟩ span
	attr      string
	value     string
}

// matchTemplate aligns the template against sentence tokens with
// backtracking. Slots capture 1..MaxSlotTokens tokens; literals compare
// case-insensitively. The ⟨E⟩ binding must resolve against the entity index
// for a full match; otherwise the best-effort raw binding is returned with
// ok=true and entity=="" only when every other constraint holds.
func matchTemplate(tmpl template, toks []string, idx *extract.EntityIndex, cfg Config) (binding, bool) {
	var out binding
	var unknown binding
	var haveUnknown bool

	var rec func(ti, si int, b map[string][]string) bool
	rec = func(ti, si int, b map[string][]string) bool {
		if ti == len(tmpl.tokens) {
			if si != len(toks) {
				return false
			}
			cand := binding{
				rawEntity: strings.Join(b[slotE], " "),
				attr:      strings.Join(b[slotA], " "),
				value:     strings.Join(b[slotV], " "),
			}
			if cand.attr == "" || cand.value == "" || cand.rawEntity == "" {
				return false
			}
			// Value spans never contain glue words; rejecting them forces
			// the backtracker to extend the attribute slot instead (e.g.
			// "country of origin" rather than value "origin of X").
			for _, vt := range b[slotV] {
				if glueWords[strings.ToLower(vt)] {
					return false
				}
			}
			if !extract.ValidAttributeLabel(extract.NormalizeLabel(cand.attr)) {
				return false
			}
			if _, known := idx.Class(cand.rawEntity); known {
				cand.entity = cand.rawEntity
				out = cand
				return true
			}
			if cfg.DiscoverEntities && isCapitalizedSpan(cand.rawEntity) && !haveUnknown {
				unknown = cand
				haveUnknown = true
			}
			return false
		}
		tok := tmpl.tokens[ti]
		switch tok {
		case slotE, slotA, slotV:
			for n := 1; n <= cfg.MaxSlotTokens && si+n <= len(toks); n++ {
				b[tok] = toks[si : si+n]
				if rec(ti+1, si+n, b) {
					return true
				}
			}
			delete(b, tok)
			return false
		default:
			if si >= len(toks) || !strings.EqualFold(toks[si], tok) {
				return false
			}
			return rec(ti+1, si+1, b)
		}
	}
	if rec(0, 0, map[string][]string{}) {
		return out, true
	}
	if haveUnknown {
		return unknown, true
	}
	return binding{}, false
}

// isCapitalizedSpan accepts proper-noun spans: every word starts with an
// upper-case letter or digit, except lower-case connectors ("of", "the",
// "and") in the middle; the first and last word must be capitalised
// ("University of Enel 24" qualifies, "motto of University" does not).
func isCapitalizedSpan(s string) bool {
	words := strings.Fields(s)
	if len(words) == 0 {
		return false
	}
	capitalized := func(w string) bool {
		c := w[0]
		return c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
	}
	if !capitalized(words[0]) || !capitalized(words[len(words)-1]) {
		return false
	}
	if len(words) < 3 {
		return true
	}
	for _, w := range words[1 : len(words)-1] {
		if capitalized(w) {
			continue
		}
		switch w {
		case "of", "the", "and":
		default:
			return false
		}
	}
	return true
}

func buildStatements(claims map[claim]*claimEvidence, crit *confidence.Criterion) []rdf.Statement {
	keys := make([]claim, 0, len(claims))
	for c := range claims {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.entity != b.entity {
			return a.entity < b.entity
		}
		if a.attr != b.attr {
			return a.attr < b.attr
		}
		return a.value < b.value
	})
	var out []rdf.Statement
	for _, c := range keys {
		ev := claims[c]
		conf := 0.5
		if crit != nil {
			conf = crit.Score(extract.ExtractorText, ev.count, len(ev.sources))
		}
		for _, prov := range ev.provs {
			out = append(out, rdf.S(
				rdf.T(extract.EntityIRI(c.entity), extract.AttrIRI(c.attr), rdf.Literal(c.value)),
				prov, conf))
		}
	}
	return out
}
