package textx

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/kb"
	"akb/internal/webgen"
)

func setup(t *testing.T) (*kb.World, []*webgen.Document, *extract.EntityIndex, map[string]extract.AttrSet) {
	t.Helper()
	w := kb.NewWorld(kb.WorldConfig{Seed: 3, EntitiesPerClass: 20, AttrsPerEntity: 12})
	docs := webgen.GenerateCorpus(w, webgen.TextConfig{
		Seed: 3, DocsPerClass: 8, FactsPerDoc: 10, ValueErrorRate: 0.1, DistractorShare: 0.6,
	})
	idx := extract.NewEntityIndexFromWorld(w)
	seeds := make(map[string]extract.AttrSet)
	for _, cls := range w.Ontology.ClassNames() {
		s := extract.NewAttrSet()
		attrs := w.Ontology.Class(cls).AttributeNames()
		for i := 0; i < 6 && i < len(attrs); i++ {
			s.Add(attrs[i], "seed")
		}
		seeds[cls] = s
	}
	return w, docs, idx, seeds
}

func TestExtractLearnsPatterns(t *testing.T) {
	_, docs, idx, seeds := setup(t)
	res := Extract(context.Background(), docs, idx, seeds, DefaultConfig(), confidence.Default())
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns learned")
	}
	// The corpus instantiates four sentence shapes; with enough seeds all
	// four should be learned.
	if len(res.Patterns) != 4 {
		t.Errorf("learned %d patterns, want 4: %v", len(res.Patterns), res.Patterns)
	}
	for _, p := range res.Patterns {
		if !strings.Contains(p, slotE) || !strings.Contains(p, slotA) || !strings.Contains(p, slotV) {
			t.Errorf("pattern %q missing a slot", p)
		}
	}
}

func TestExtractDiscoversAttributes(t *testing.T) {
	w, docs, idx, seeds := setup(t)
	res := Extract(context.Background(), docs, idx, seeds, DefaultConfig(), confidence.Default())
	totalDiscovered := 0
	for _, cls := range w.Ontology.ClassNames() {
		cr := res.PerClass[cls]
		if cr == nil {
			t.Fatalf("no result for %s", cls)
		}
		totalDiscovered += cr.Discovered.Len()
		class := w.Ontology.Class(cls)
		for attr := range cr.Discovered {
			if _, ok := class.Attribute(attr); !ok {
				t.Errorf("%s: discovered non-ontology attribute %q", cls, attr)
			}
		}
	}
	if totalDiscovered == 0 {
		t.Fatal("no attributes discovered beyond seeds")
	}
}

func TestExtractStatementsQuality(t *testing.T) {
	w, docs, idx, seeds := setup(t)
	res := Extract(context.Background(), docs, idx, seeds, DefaultConfig(), confidence.Default())
	if len(res.Statements) == 0 {
		t.Fatal("no statements")
	}
	correct, total := 0, 0
	for _, s := range res.Statements {
		if err := s.Valid(); err != nil {
			t.Fatalf("invalid statement: %v", err)
		}
		entity := extract.AttrFromIRI(s.Subject)
		e, ok := w.Entity(entity)
		if !ok {
			t.Fatalf("unknown entity %q", entity)
		}
		total++
		if w.IsTrue(e, extract.AttrFromIRI(s.Predicate), s.Object.Value) {
			correct++
		}
	}
	prec := float64(correct) / float64(total)
	if prec < 0.75 {
		t.Errorf("precision = %.3f (%d/%d), want >= 0.75 at 10%% corpus error", prec, correct, total)
	}
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("One fact. Another fact here. Last.")
	if len(got) != 3 {
		t.Fatalf("got %d sentences: %v", len(got), got)
	}
	if got[0] != "One fact." || got[2] != "Last." {
		t.Errorf("sentences = %v", got)
	}
	if n := len(SplitSentences("")); n != 0 {
		t.Errorf("empty text gave %d sentences", n)
	}
	if n := len(SplitSentences("No trailing period")); n != 1 {
		t.Errorf("unterminated text gave %d sentences", n)
	}
}

func TestTokenizeSentence(t *testing.T) {
	got := TokenizeSentence("Casablanca A7's director is Jane Doe.")
	want := []string{"Casablanca", "A7", "'s", "director", "is", "Jane", "Doe", "."}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAbstractSentence(t *testing.T) {
	tmpl, ok := abstractSentence("The director of Casablanca A7 is Jane Doe.", "Casablanca A7", "director")
	if !ok {
		t.Fatal("abstraction failed")
	}
	if tmpl != "the ⟨A⟩ of ⟨E⟩ is ⟨V⟩ ." {
		t.Errorf("template = %q", tmpl)
	}
	tmpl2, ok2 := abstractSentence("Casablanca A7's composer is John Smith.", "Casablanca A7", "composer")
	if !ok2 || tmpl2 != "⟨E⟩ 's ⟨A⟩ is ⟨V⟩ ." {
		t.Errorf("clitic template = %q, ok=%v", tmpl2, ok2)
	}
	if _, ok3 := abstractSentence("The director of X is.", "X", "director"); ok3 {
		t.Error("valueless sentence abstracted")
	}
}

func TestMatchTemplateAttributeContainingOf(t *testing.T) {
	w, _, idx, _ := setup(t)
	e := w.EntityNames("Film")[0]
	tmpl := parseTemplate("the ⟨A⟩ of ⟨E⟩ is ⟨V⟩ .")
	toks := TokenizeSentence("The country of origin of " + e + " is Fooland.")
	b, ok := matchTemplate(tmpl, toks, idx, DefaultConfig())
	if !ok {
		t.Fatal("no match")
	}
	if b.attr != "country of origin" {
		t.Errorf("attr = %q, want country of origin", b.attr)
	}
	if b.entity != e {
		t.Errorf("entity = %q, want %q", b.entity, e)
	}
	if b.value != "Fooland" {
		t.Errorf("value = %q", b.value)
	}
}

func TestMatchTemplateEntityContainingOf(t *testing.T) {
	w, _, idx, _ := setup(t)
	uni := w.EntityNames("University")[0]
	tmpl := parseTemplate("the ⟨A⟩ of ⟨E⟩ is ⟨V⟩ .")
	toks := TokenizeSentence("The motto of " + uni + " is Excelsior.")
	b, ok := matchTemplate(tmpl, toks, idx, Config{MaxSlotTokens: 8, MinPatternSupport: 2})
	if !ok {
		t.Fatal("no match")
	}
	if b.entity != uni || b.attr != "motto" || b.value != "Excelsior" {
		t.Errorf("binding = %+v", b)
	}
}

func TestMatchTemplateRejectsUnknownEntity(t *testing.T) {
	_, _, idx, _ := setup(t)
	tmpl := parseTemplate("the ⟨A⟩ of ⟨E⟩ is ⟨V⟩ .")
	toks := TokenizeSentence("The capital of Atlantis is Poseidonia.")
	if _, ok := matchTemplate(tmpl, toks, idx, DefaultConfig()); ok {
		t.Error("unknown entity accepted without DiscoverEntities")
	}
	cfg := DefaultConfig()
	cfg.DiscoverEntities = true
	b, ok := matchTemplate(tmpl, toks, idx, cfg)
	if !ok || b.entity != "" || b.rawEntity != "Atlantis" {
		t.Errorf("entity discovery binding = %+v, ok=%v", b, ok)
	}
}

func TestDiscoverEntitiesEndToEnd(t *testing.T) {
	_, docs, idx, seeds := setup(t)
	// Plant sentences about an unknown entity using a seed attribute.
	planted := &webgen.Document{
		ID: "planted", Source: "planted.example.org", Class: "Film",
		Text: "The composer of Zanzibar Nights is Leo Fontaine. The composer of Zanzibar Nights is Leo Fontaine.",
	}
	docs = append(docs, planted)
	cfg := DefaultConfig()
	cfg.DiscoverEntities = true
	res := Extract(context.Background(), docs, idx, seeds, cfg, nil)
	if res.NewEntities["Zanzibar Nights"] < 2 {
		t.Errorf("new entity support = %d, want >= 2 (map: %v)", res.NewEntities["Zanzibar Nights"], res.NewEntities)
	}
}

func TestMinPatternSupportFiltersRareTemplates(t *testing.T) {
	_, docs, idx, seeds := setup(t)
	strict := Extract(context.Background(), docs, idx, seeds, Config{MinPatternSupport: 100000, MaxSlotTokens: 6}, nil)
	if len(strict.Patterns) != 0 {
		t.Errorf("impossible support threshold still learned %d patterns", len(strict.Patterns))
	}
	if len(strict.Statements) != 0 {
		t.Error("statements extracted without patterns")
	}
}

func TestContainsWord(t *testing.T) {
	cases := []struct {
		hay, needle string
		want        bool
	}{
		{"the director of X", "director", true},
		{"the codirector of X", "director", false},
		{"director", "director", true},
		{"a directors cut", "director", false},
		{"X's director.", "director", true},
	}
	for _, c := range cases {
		if got := containsWord(c.hay, c.needle); got != c.want {
			t.Errorf("containsWord(%q, %q) = %v, want %v", c.hay, c.needle, got, c.want)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	_, docs, idx, seeds := setup(t)
	a := Extract(context.Background(), docs, idx, seeds, DefaultConfig(), confidence.Default())
	b := Extract(context.Background(), docs, idx, seeds, DefaultConfig(), confidence.Default())
	if len(a.Statements) != len(b.Statements) {
		t.Fatal("statement counts differ")
	}
	for i := range a.Statements {
		if a.Statements[i].String() != b.Statements[i].String() {
			t.Fatalf("statement %d differs", i)
		}
	}
}

// TestParallelMatchesSerial pins the determinism contract of per-document
// parallelism: any worker count yields byte-identical results, including
// pattern order, statements, and discovery output.
func TestParallelMatchesSerial(t *testing.T) {
	_, docs, idx, seeds := setup(t)
	cfg := DefaultConfig()
	cfg.DiscoverEntities = true
	serial := Extract(context.Background(), docs, idx, seeds, cfg, confidence.Default())
	for _, workers := range []int{2, 8} {
		pcfg := cfg
		pcfg.Workers = workers
		par := Extract(context.Background(), docs, idx, seeds, pcfg, confidence.Default())
		if !reflect.DeepEqual(par.Patterns, serial.Patterns) {
			t.Errorf("workers=%d: patterns differ from serial", workers)
		}
		if !reflect.DeepEqual(par.Statements, serial.Statements) {
			t.Errorf("workers=%d: statements differ from serial", workers)
		}
		if !reflect.DeepEqual(par.NewEntities, serial.NewEntities) {
			t.Errorf("workers=%d: new entities differ from serial", workers)
		}
		if !reflect.DeepEqual(par.NewEntityFacts, serial.NewEntityFacts) {
			t.Errorf("workers=%d: entity facts differ from serial", workers)
		}
		for cls, scr := range serial.PerClass {
			pcr := par.PerClass[cls]
			if !reflect.DeepEqual(pcr.All, scr.All) || !reflect.DeepEqual(pcr.Discovered, scr.Discovered) {
				t.Errorf("workers=%d: class %s attribute sets differ from serial", workers, cls)
			}
		}
	}
}

// TestMatchDocAllocationBound pins the per-document matching path's
// allocation behaviour: the matcher's slot buffers are reused across
// every (sentence, template) pair, so allocations are dominated by the
// accepted matches' joined strings and the event slice — a small constant
// per sentence — instead of the per-call binding maps the first
// implementation paid (one map plus per-slot slices for every pair).
func TestMatchDocAllocationBound(t *testing.T) {
	_, docs, idx, seeds := setup(t)
	cfg := DefaultConfig()
	res := Extract(context.Background(), docs, idx, seeds, cfg, confidence.Default())
	if len(res.Patterns) == 0 {
		t.Fatal("fixture learned no patterns")
	}
	var templates []template
	for _, p := range res.Patterns {
		templates = append(templates, parseTemplate(p))
	}
	cfg.MinPatternSupport = 2
	cfg.MaxSlotTokens = 6
	known := func(string) bool { return true }
	w := docWork{doc: docs[0], sents: SplitSentences(docs[0].Text)}
	for _, s := range w.sents {
		w.toks = append(w.toks, TokenizeSentence(s))
	}
	allocs := testing.AllocsPerRun(50, func() { matchDoc(w, templates, idx, cfg, known) })
	// Currently ~4.5 allocations per sentence on this fixture; 8 leaves
	// headroom without letting per-pair allocations back in (those cost
	// ≥ len(templates) per sentence on their own).
	if limit := float64(8 * len(w.sents)); allocs > limit {
		t.Errorf("matchDoc allocates %.0f times for %d sentences, want <= %.0f", allocs, len(w.sents), limit)
	}
}
