package qsx

import (
	"context"
	"testing"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/kb"
	"akb/internal/querystream"
)

func world() *kb.World {
	return kb.NewWorld(kb.WorldConfig{Seed: 2, EntitiesPerClass: 20, AttrsPerEntity: 12})
}

func streamConfig() querystream.GenConfig {
	return querystream.GenConfig{
		Seed:         2,
		TotalRecords: 6000,
		Threshold:    5,
		Plans: []querystream.ClassPlan{
			{Class: "Book", Relevant: 300, Credible: 10, NoncrediblePool: 8},
			{Class: "Film", Relevant: 400, Credible: 6, NoncrediblePool: 10},
			{Class: "Country", Relevant: 350, Credible: 15, NoncrediblePool: 10},
			{Class: "University", Relevant: 80, Credible: 4, NoncrediblePool: 6},
			{Class: "Hotel", Relevant: 40, Credible: 0, NoncrediblePool: 15},
		},
	}
}

func runExtraction(t *testing.T) (*kb.World, querystream.GenConfig, *Result) {
	t.Helper()
	w := world()
	cfg := streamConfig()
	stream := querystream.Generate(w, cfg)
	idx := extract.NewEntityIndexFromWorld(w)
	res := Extract(context.Background(), stream, idx, DefaultConfig(), confidence.Default())
	return w, cfg, res
}

func TestExtractRelevantCounts(t *testing.T) {
	_, cfg, res := runExtraction(t)
	for _, plan := range cfg.Plans {
		cr := res.PerClass[plan.Class]
		if cr == nil {
			t.Fatalf("no result for %s", plan.Class)
		}
		if cr.RelevantRecords != plan.Relevant {
			t.Errorf("%s relevant = %d, want %d", plan.Class, cr.RelevantRecords, plan.Relevant)
		}
	}
}

func TestExtractCredibleCounts(t *testing.T) {
	_, cfg, res := runExtraction(t)
	for _, plan := range cfg.Plans {
		cr := res.PerClass[plan.Class]
		if got := cr.Credible.Len(); got != plan.Credible {
			t.Errorf("%s credible = %d, want %d (support=%v)", plan.Class, got, plan.Credible, len(cr.Support))
		}
	}
}

func TestExtractFiltersMeaningless(t *testing.T) {
	_, _, res := runExtraction(t)
	total := 0
	for _, cr := range res.PerClass {
		total += cr.Filtered
		for attr := range cr.Credible {
			if meaningless[attr] {
				t.Errorf("meaningless attribute %q survived filtering", attr)
			}
		}
	}
	if total == 0 {
		t.Error("no records filtered; generator plants ~5% meaningless mentions")
	}
}

func TestExtractConfidences(t *testing.T) {
	_, _, res := runExtraction(t)
	cr := res.PerClass["Book"]
	for attr, ev := range cr.Credible {
		if ev.Confidence <= 0 || ev.Confidence > confidence.MaxConfidence {
			t.Errorf("%s confidence = %g", attr, ev.Confidence)
		}
	}
}

func TestTable3Rendering(t *testing.T) {
	_, _, res := runExtraction(t)
	rows := res.Table3()
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	order := []string{"Book", "Film", "Country", "University", "Hotel"}
	for i, c := range order {
		if rows[i].Class != c {
			t.Errorf("row %d = %s, want %s", i, rows[i].Class, c)
		}
	}
	// Hotel yields N/A (-1), the paper's Table 3 result.
	if rows[4].CredibleAttrs != -1 {
		t.Errorf("Hotel credible = %d, want -1 (N/A)", rows[4].CredibleAttrs)
	}
	if rows[0].CredibleAttrs != 10 {
		t.Errorf("Book credible = %d, want 10", rows[0].CredibleAttrs)
	}
}

func TestMatchPatternForms(t *testing.T) {
	w := world()
	idx := extract.NewEntityIndexFromWorld(w)
	e := w.EntityNames("Film")[0]
	uni := w.EntityNames("University")[0] // contains " of "
	cases := []struct {
		q          string
		attr, ent  string
		shouldPass bool
	}{
		{"what is the director of " + e, "director", e, true},
		{"what is the director of the " + e, "director", e, true},
		{"who is the head of state of " + e, "head of state", e, true},
		{"the tuition of " + uni, "tuition", uni, true},
		{"what is the head of state of " + uni, "head of state", uni, true},
		{e + "'s budget", "budget", e, true},
		{uni + "'s motto", "motto", uni, true},
		{"what is the capital of Atlantis", "", "", false},
		{"download movies free", "", "", false},
		{e + " reviews", "", "", false},
		{"the  of " + e, "", e, true}, // empty attr matches but normalises away downstream
	}
	for _, c := range cases {
		attr, ent, ok := MatchPattern(c.q, idx)
		if ok != c.shouldPass {
			t.Errorf("MatchPattern(%q) ok = %v, want %v", c.q, ok, c.shouldPass)
			continue
		}
		if !ok {
			continue
		}
		if c.attr != "" && attr != c.attr {
			t.Errorf("MatchPattern(%q) attr = %q, want %q", c.q, attr, c.attr)
		}
		if ent != c.ent {
			t.Errorf("MatchPattern(%q) entity = %q, want %q", c.q, ent, c.ent)
		}
	}
}

func TestFailsFilterRules(t *testing.T) {
	cases := map[string]bool{
		"gdp":                   false,
		"ab":                    true, // too short
		"1942":                  true, // pure number
		"a b c d e f":           true, // too many words
		"head of state":         false,
		"total adjusted budget": false,
	}
	for attr, want := range cases {
		if got := failsFilterRules(attr); got != want {
			t.Errorf("failsFilterRules(%q) = %v, want %v", attr, got, want)
		}
	}
}

func TestMinEntitiesRule(t *testing.T) {
	w := world()
	idx := extract.NewEntityIndexFromWorld(w)
	e := w.EntityNames("Film")[0]
	// 10 mentions, all for one entity: support passes, entity diversity
	// fails at MinEntities=2.
	var recs []querystream.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, querystream.Record{Text: "what is the director of " + e, Origin: "google"})
	}
	stream := &querystream.Stream{Records: recs}
	res := Extract(context.Background(), stream, idx, Config{Threshold: 5, MinEntities: 2}, nil)
	if res.PerClass["Film"].Credible.Len() != 0 {
		t.Error("single-entity attribute passed MinEntities=2")
	}
	res = Extract(context.Background(), stream, idx, Config{Threshold: 5, MinEntities: 1}, nil)
	if res.PerClass["Film"].Credible.Len() != 1 {
		t.Error("attribute should pass with MinEntities=1")
	}
}

func TestExtraFilters(t *testing.T) {
	w := world()
	idx := extract.NewEntityIndexFromWorld(w)
	e1, e2 := w.EntityNames("Film")[0], w.EntityNames("Film")[1]
	var recs []querystream.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, querystream.Record{Text: "what is the director of " + e1})
		recs = append(recs, querystream.Record{Text: "what is the director of " + e2})
	}
	stream := &querystream.Stream{Records: recs}
	res := Extract(context.Background(), stream, idx, Config{Threshold: 5, MinEntities: 2, ExtraFilters: []string{"Director"}}, nil)
	if res.PerClass["Film"].Credible.Len() != 0 {
		t.Error("extra filter did not apply")
	}
}
