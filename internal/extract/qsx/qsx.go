// Package qsx implements the paper's improved query-stream attribute
// extraction: it matches query records against the attribute-question
// patterns "what/how/when/who is the A of (the/a/an) E", "the A of
// (the/a/an) E" and "E's A", recognises entities against a class-specified
// entity set, applies filtering rules to exclude meaningless attributes, and
// keeps attributes whose support passes a credibility threshold — the
// procedure behind Table 3.
package qsx

import (
	"context"
	"sort"
	"strings"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/obs"
	"akb/internal/querystream"
)

// Config controls query-stream extraction.
type Config struct {
	// Threshold is the minimum well-formed mention count for an attribute
	// to be credible.
	Threshold int
	// MinEntities is the minimum number of distinct entities an attribute
	// must be asked about (guards against single-entity idiosyncrasies).
	MinEntities int
	// ExtraFilters extends the built-in meaningless-attribute filter.
	ExtraFilters []string
}

// DefaultConfig matches the generator's defaults.
func DefaultConfig() Config { return Config{Threshold: 5, MinEntities: 2} }

// ClassResult is the per-class outcome: the Table 3 row plus evidence.
type ClassResult struct {
	Class string
	// RelevantRecords counts query records that matched a pattern with a
	// recognised entity of this class ("Relevant Query Records").
	RelevantRecords int
	// Support maps each surfaced attribute to its mention count.
	Support map[string]int
	// EntitySupport maps each attribute to the distinct entities asked.
	EntitySupport map[string]map[string]struct{}
	// Credible is the filtered, thresholded attribute set
	// ("Credible Attributes"; empty models the paper's N/A).
	Credible extract.AttrSet
	// Filtered counts attribute mentions dropped by the filtering rules.
	Filtered int
}

// Result is the extraction outcome over all classes.
type Result struct {
	PerClass map[string]*ClassResult
	// TotalRecords is the stream size scanned.
	TotalRecords int
}

// Classes returns class names in sorted order.
func (r *Result) Classes() []string {
	out := make([]string, 0, len(r.PerClass))
	for c := range r.PerClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// patternHeads are the question-prefixes of the "… the A of E" pattern
// family. Order matters: longer heads first so "what is the" wins over
// "the".
var patternHeads = []string{
	"what is the ", "how is the ", "when is the ", "who is the ", "the ",
}

// meaningless is the built-in filter list: surface attributes that carry no
// ontological content. It mirrors querystream.MeaninglessAttributes plus
// common navigational words, but is maintained independently because a real
// deployment curates these rules by hand.
var meaningless = map[string]bool{
	"photos": true, "pictures": true, "images": true, "lyrics": true,
	"meaning": true, "wiki": true, "review": true, "reviews": true,
	"trailer": true, "wallpaper": true, "news": true, "quotes": true,
	"cast photos": true, "full movie": true, "pdf": true, "summary": true,
	"website": true, "homepage": true, "video": true, "videos": true,
}

// Extract scans the stream and produces per-class attribute extractions.
// Entity recognition uses idx; classes with no recognised entities simply
// yield empty results.
func Extract(ctx context.Context, stream *querystream.Stream, idx *extract.EntityIndex, cfg Config, crit *confidence.Criterion) *Result {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.MinEntities <= 0 {
		cfg.MinEntities = 1
	}
	extraFilter := make(map[string]bool, len(cfg.ExtraFilters))
	for _, f := range cfg.ExtraFilters {
		extraFilter[extract.NormalizeLabel(f)] = true
	}

	res := &Result{PerClass: make(map[string]*ClassResult), TotalRecords: stream.Len()}
	classResult := func(class string) *ClassResult {
		cr, ok := res.PerClass[class]
		if !ok {
			cr = &ClassResult{
				Class:         class,
				Support:       make(map[string]int),
				EntitySupport: make(map[string]map[string]struct{}),
				Credible:      extract.NewAttrSet(),
			}
			res.PerClass[class] = cr
		}
		return cr
	}

	for _, rec := range stream.Records {
		attr, entity, ok := MatchPattern(rec.Text, idx)
		if !ok {
			continue
		}
		class, _ := idx.Class(entity)
		cr := classResult(class)
		cr.RelevantRecords++
		norm := extract.NormalizeLabel(attr)
		if norm == "" {
			continue
		}
		if meaningless[norm] || extraFilter[norm] || failsFilterRules(norm) {
			cr.Filtered++
			continue
		}
		cr.Support[norm]++
		es := cr.EntitySupport[norm]
		if es == nil {
			es = make(map[string]struct{})
			cr.EntitySupport[norm] = es
		}
		es[entity] = struct{}{}
	}

	// Credibility thresholding.
	for _, cr := range res.PerClass {
		for attr, n := range cr.Support {
			if n >= cfg.Threshold && len(cr.EntitySupport[attr]) >= cfg.MinEntities {
				for i := 0; i < n; i++ {
					cr.Credible.Add(attr, "querystream")
				}
			}
		}
		if crit != nil {
			for attr, ev := range cr.Credible {
				ev.Confidence = crit.Score(extract.ExtractorQuery, cr.Support[attr], len(cr.EntitySupport[attr]))
			}
		}
	}
	reg := obs.Reg(ctx)
	reg.Counter("akb_qsx_records_total").Add(int64(stream.Len()))
	credible := 0
	for _, cr := range res.PerClass {
		credible += len(cr.Credible)
	}
	reg.Counter("akb_qsx_credible_attrs_total").Add(int64(credible))
	return res
}

// failsFilterRules applies structural filtering rules beyond the word list:
// too-short tokens, pure numbers, and overly long phrases are excluded.
func failsFilterRules(attr string) bool {
	if len(attr) < 3 {
		return true
	}
	words := strings.Fields(attr)
	if len(words) > 5 {
		return true
	}
	digits := 0
	for _, r := range attr {
		if r >= '0' && r <= '9' {
			digits++
		}
	}
	return digits == len(attr)
}

// MatchPattern tries the attribute-question patterns against a query and
// returns the raw attribute phrase and recognised entity. Entity recognition
// scans " of "-split points left to right and accepts the first suffix
// (after stripping a "the/a/an" determiner) that is a known entity, which
// correctly handles attributes and entities that themselves contain "of".
func MatchPattern(q string, idx *extract.EntityIndex) (attr, entity string, ok bool) {
	// Family 1: "<head> A of (the|a|an) E".
	for _, head := range patternHeads {
		if !strings.HasPrefix(q, head) {
			continue
		}
		rest := q[len(head):]
		if a, e, found := splitAttrOfEntity(rest, idx); found {
			return a, e, true
		}
		// Only the longest matching head is tried: "what is the ..." must
		// not fall back to the bare "the " head with "is" inside the
		// attribute.
		break
	}
	// Family 2: "E's A".
	if i := strings.Index(q, "'s "); i > 0 {
		if _, known := idx.Class(q[:i]); known {
			a := q[i+len("'s "):]
			if a != "" {
				return a, q[:i], true
			}
		}
	}
	return "", "", false
}

func splitAttrOfEntity(rest string, idx *extract.EntityIndex) (attr, entity string, ok bool) {
	j := 0
	for {
		k := strings.Index(rest[j:], " of ")
		if k < 0 {
			return "", "", false
		}
		attr = rest[:j+k]
		suffix := rest[j+k+len(" of "):]
		for _, det := range []string{"the ", "a ", "an "} {
			if strings.HasPrefix(suffix, det) {
				if _, known := idx.Class(suffix[len(det):]); known {
					return attr, suffix[len(det):], true
				}
			}
		}
		if _, known := idx.Class(suffix); known {
			return attr, suffix, true
		}
		j += k + len(" of ")
	}
}

// Table3Row is one row of the paper's Table 3 as computed by the extractor.
type Table3Row struct {
	Class           string
	RelevantRecords int
	// CredibleAttrs is the credible attribute count; -1 renders as the
	// paper's "N/A".
	CredibleAttrs int
}

// Table3 renders rows in the paper's class order. Classes whose credible
// set is empty report -1 (N/A), as the paper does for Hotel.
func (r *Result) Table3() []Table3Row {
	order := []string{"Book", "Film", "Country", "University", "Hotel"}
	var rows []Table3Row
	emit := func(c string) {
		cr, ok := r.PerClass[c]
		if !ok {
			return
		}
		n := cr.Credible.Len()
		if n == 0 {
			n = -1
		}
		rows = append(rows, Table3Row{Class: c, RelevantRecords: cr.RelevantRecords, CredibleAttrs: n})
	}
	seen := map[string]bool{}
	for _, c := range order {
		emit(c)
		seen[c] = true
	}
	for _, c := range r.Classes() {
		if !seen[c] {
			emit(c)
		}
	}
	return rows
}
