package extract

import (
	"testing"

	"akb/internal/kb"
	"akb/internal/rdf"
)

func TestAttrSetAddAndEvidence(t *testing.T) {
	s := NewAttrSet()
	s.Add("director", "a")
	s.Add("director", "b")
	s.Add("director", "a")
	s.Add("genre", "")
	if !s.Has("director") || !s.Has("genre") || s.Has("absent") {
		t.Fatal("membership wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	d := s["director"]
	if d.Support != 3 {
		t.Errorf("support = %d, want 3", d.Support)
	}
	if len(d.Sources) != 2 {
		t.Errorf("sources = %d, want 2", len(d.Sources))
	}
	if len(s["genre"].Sources) != 0 {
		t.Error("empty source should not be recorded")
	}
}

func TestAttrSetNamesSorted(t *testing.T) {
	s := NewAttrSet()
	for _, a := range []string{"zeta", "alpha", "mid"} {
		s.Add(a, "src")
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestAttrSetUnion(t *testing.T) {
	a := NewAttrSet()
	a.Add("x", "s1")
	b := NewAttrSet()
	b.Add("x", "s2")
	b.Add("y", "s2")
	b["y"].Confidence = 0.7
	a.Union(b)
	if a.Len() != 2 {
		t.Fatalf("union Len = %d", a.Len())
	}
	if a["x"].Support != 2 || len(a["x"].Sources) != 2 {
		t.Errorf("union evidence wrong: %+v", a["x"])
	}
	if a["y"].Confidence != 0.7 {
		t.Errorf("union confidence = %g", a["y"].Confidence)
	}
}

func TestAttrSetCloneIsDeep(t *testing.T) {
	a := NewAttrSet()
	a.Add("x", "s1")
	c := a.Clone()
	c.Add("x", "s2")
	c.Add("y", "s1")
	if a.Len() != 1 || a["x"].Support != 1 || len(a["x"].Sources) != 1 {
		t.Error("clone mutated the original")
	}
}

func TestEntityIndex(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 1, EntitiesPerClass: 5, AttrsPerEntity: 8})
	idx := NewEntityIndexFromWorld(w)
	if idx.Len() != 25 {
		t.Fatalf("index Len = %d, want 25", idx.Len())
	}
	name := w.EntityNames("Film")[0]
	if c, ok := idx.Class(name); !ok || c != "Film" {
		t.Errorf("Class(%q) = %q, %v", name, c, ok)
	}
	if _, ok := idx.Class("nobody"); ok {
		t.Error("unknown entity resolved")
	}
	names := idx.Names()
	if len(names) != 25 {
		t.Errorf("Names = %d", len(names))
	}
}

func TestEntityIndexFromSourceKB(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 1, EntitiesPerClass: 10, AttrsPerEntity: 8})
	fb := kb.GenerateFreebase(w, kb.KBGenConfig{Seed: 1, Coverage: 0.5})
	idx := NewEntityIndex(fb)
	if idx.Len() == 0 || idx.Len() >= 50 {
		t.Fatalf("index Len = %d, want partial coverage", idx.Len())
	}
	for _, n := range fb.CoveredEntities["Book"] {
		if c, ok := idx.Class(n); !ok || c != "Book" {
			t.Errorf("covered entity %q missing from index", n)
		}
	}
}

func TestNormalizeLabel(t *testing.T) {
	cases := map[string]string{
		"Release Date:":  "release date",
		"  Director :":   "director", // trailing colon dropped even when space-separated
		"GENRE":          "genre",
		"star   rating:": "star rating",
		"":               "",
	}
	for in, want := range cases {
		if got := NormalizeLabel(in); got != want {
			t.Errorf("NormalizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAttrIRIRoundTrip(t *testing.T) {
	attrs := []string{"director", "release date", "total adjusted budget"}
	for _, a := range attrs {
		if got := AttrFromIRI(AttrIRI(a)); got != a {
			t.Errorf("attr IRI round trip %q -> %q", a, got)
		}
	}
}

func TestNewStatement(t *testing.T) {
	s := NewStatement("Casablanca", "director", "Michael Curtiz", "imdb.example", ExtractorDOM, "page1", 0.8)
	if err := s.Valid(); err != nil {
		t.Fatalf("statement invalid: %v", err)
	}
	if s.Object != rdf.Literal("Michael Curtiz") {
		t.Errorf("object = %v", s.Object)
	}
	if s.Provenance.Source != "imdb.example" || s.Provenance.Extractor != ExtractorDOM {
		t.Errorf("provenance = %+v", s.Provenance)
	}
	if AttrFromIRI(s.Predicate) != "director" {
		t.Errorf("predicate attr = %q", AttrFromIRI(s.Predicate))
	}
}
