package kbx

import (
	"context"
	"testing"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/kb"
)

func setup() (*kb.World, *kb.SourceKB, *kb.SourceKB) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 6, EntitiesPerClass: 15, AttrsPerEntity: 14})
	db := kb.GenerateDBpedia(w, kb.KBGenConfig{Seed: 6, Coverage: 0.6})
	fb := kb.GenerateFreebase(w, kb.KBGenConfig{Seed: 6, Coverage: 0.8})
	return w, db, fb
}

func TestExtractAttributesReproducesTable2(t *testing.T) {
	_, db, fb := setup()
	res := ExtractAttributes(context.Background(), confidence.Default(), db, fb)
	rows := res.Table2()
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	// The paper's Table 2, exactly.
	want := map[string]Table2Row{
		"Book":       {Class: "Book", DBpediaRaw: 21, DBpediaExtracted: 48, FreebaseRaw: 5, FreebaseExtract: 19, Combined: 60},
		"Film":       {Class: "Film", DBpediaRaw: 53, DBpediaExtracted: 53, FreebaseRaw: 54, FreebaseExtract: 54, Combined: 92},
		"Country":    {Class: "Country", DBpediaRaw: 191, DBpediaExtracted: 360, FreebaseRaw: 22, FreebaseExtract: 150, Combined: 489},
		"University": {Class: "University", DBpediaRaw: 21, DBpediaExtracted: 484, FreebaseRaw: 9, FreebaseExtract: 57, Combined: 518},
		"Hotel":      {Class: "Hotel", DBpediaRaw: 18, DBpediaExtracted: 216, FreebaseRaw: 7, FreebaseExtract: 56, Combined: 255},
	}
	for _, row := range rows {
		if row != want[row.Class] {
			t.Errorf("%s row = %+v, want %+v", row.Class, row, want[row.Class])
		}
	}
	// Paper's class order.
	order := []string{"Book", "Film", "Country", "University", "Hotel"}
	for i, c := range order {
		if rows[i].Class != c {
			t.Errorf("row %d class = %s, want %s", i, rows[i].Class, c)
		}
	}
}

func TestExtractAttributesShapeInvariants(t *testing.T) {
	_, db, fb := setup()
	res := ExtractAttributes(context.Background(), nil, db, fb)
	for _, cls := range res.Classes() {
		cr := res.PerClass[cls]
		dbe := cr.Expanded["DBpedia"].Len()
		fbe := cr.Expanded["Freebase"].Len()
		// Extraction can only grow a KB's attribute set.
		if dbe < cr.Raw["DBpedia"] {
			t.Errorf("%s: DBpedia expanded %d < raw %d", cls, dbe, cr.Raw["DBpedia"])
		}
		if fbe < cr.Raw["Freebase"] {
			t.Errorf("%s: Freebase expanded %d < raw %d", cls, fbe, cr.Raw["Freebase"])
		}
		// Union bounds.
		maxSide := dbe
		if fbe > maxSide {
			maxSide = fbe
		}
		if cr.Combined.Len() < maxSide || cr.Combined.Len() > dbe+fbe {
			t.Errorf("%s: combined %d outside [%d, %d]", cls, cr.Combined.Len(), maxSide, dbe+fbe)
		}
	}
}

func TestExtractAttributesConfidence(t *testing.T) {
	_, db, fb := setup()
	res := ExtractAttributes(context.Background(), confidence.Default(), db, fb)
	cr := res.PerClass["Film"]
	overlapSeen := false
	for name, ev := range cr.Combined {
		if ev.Confidence < confidence.MinConfidence || ev.Confidence > confidence.MaxConfidence {
			t.Errorf("%s confidence %g out of range", name, ev.Confidence)
		}
		if len(ev.Sources) == 2 {
			overlapSeen = true
			// Two-KB attributes must not score below a single-KB attribute
			// with the same support.
			for n2, e2 := range cr.Combined {
				if len(e2.Sources) == 1 && e2.Support == ev.Support && e2.Confidence > ev.Confidence {
					t.Errorf("single-source %s outscores double-source %s", n2, name)
				}
			}
		}
	}
	if !overlapSeen {
		t.Error("no overlapping attribute found in Film (spec overlap is 15)")
	}
}

func TestSeedSet(t *testing.T) {
	_, db, fb := setup()
	res := ExtractAttributes(context.Background(), nil, db, fb)
	seeds := res.SeedSet("Book")
	if seeds.Len() != 60 {
		t.Fatalf("Book seed set = %d, want 60", seeds.Len())
	}
	if res.SeedSet("NoSuchClass").Len() != 0 {
		t.Error("unknown class seed set should be empty")
	}
	if !seeds.Has("author") {
		t.Error("curated attribute 'author' missing from seeds")
	}
}

func TestExtractStatements(t *testing.T) {
	w, db, _ := setup()
	stmts := ExtractStatements(context.Background(), confidence.Default(), db)
	if len(stmts) == 0 {
		t.Fatal("no statements extracted")
	}
	correct, total := 0, 0
	for _, s := range stmts {
		if err := s.Valid(); err != nil {
			t.Fatalf("invalid statement: %v", err)
		}
		if s.Provenance.Extractor != extract.ExtractorKB || s.Provenance.Source != "dbpedia" {
			t.Fatalf("bad provenance %+v", s.Provenance)
		}
		entity := extract.AttrFromIRI(s.Subject) // local name back to entity
		e, ok := w.Entity(entity)
		if !ok {
			t.Fatalf("statement about unknown entity %q", entity)
		}
		attr := extract.AttrFromIRI(s.Predicate)
		total++
		if w.IsTrue(e, attr, s.Object.Value) {
			correct++
		}
	}
	// The KB generator's error rate is 0 here, so everything must be true.
	if correct != total {
		t.Errorf("KB statements correct %d/%d, want all true at zero error rate", correct, total)
	}
}

func TestExtractStatementsWithErrors(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 6, EntitiesPerClass: 15, AttrsPerEntity: 14})
	db := kb.GenerateDBpedia(w, kb.KBGenConfig{Seed: 6, Coverage: 0.6, ErrorRate: 0.3})
	stmts := ExtractStatements(context.Background(), confidence.Default(), db)
	wrong := 0
	for _, s := range stmts {
		entity := extract.AttrFromIRI(s.Subject)
		e, _ := w.Entity(entity)
		if e == nil {
			continue
		}
		if !w.IsTrue(e, extract.AttrFromIRI(s.Predicate), s.Object.Value) {
			wrong++
		}
	}
	if wrong == 0 {
		t.Error("expected some wrong statements at 0.3 KB error rate")
	}
}

func TestExtractAttributesSingleKB(t *testing.T) {
	_, db, _ := setup()
	res := ExtractAttributes(context.Background(), nil, db)
	cr := res.PerClass["Film"]
	if cr.Combined.Len() != cr.Expanded["DBpedia"].Len() {
		t.Error("single-KB combine must equal that KB's expansion")
	}
	if _, ok := cr.Expanded["Freebase"]; ok {
		t.Error("Freebase present without input")
	}
}
