// Package kbx extracts attributes and triples from existing knowledge bases
// (the synthetic Freebase and DBpedia of internal/kb). It implements the
// paper's first extraction source: raw KB properties are flattened
// (composite properties expand into their sub-attributes), surface names are
// normalised to canonical form, duplicates are removed, and finally the two
// KBs' attribute sets are combined — the procedure behind Table 2.
package kbx

import (
	"context"
	"sort"
	"strings"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/kb"
	"akb/internal/obs"
	"akb/internal/rdf"
)

// ClassResult holds the per-class attribute extraction outcome for Table 2.
type ClassResult struct {
	Class string
	// Raw maps KB name to its raw property count (columns "DBpedia" and
	// "Freebase").
	Raw map[string]int
	// Expanded maps KB name to the canonical attributes recovered from it
	// (columns "Extrac.(DBpedia)" and "Extrac.(Freebase)").
	Expanded map[string]extract.AttrSet
	// Combined is the union after cross-KB alignment (column
	// "Combine(Freebase&DBpedia)").
	Combined extract.AttrSet
}

// Result is the full attribute-extraction outcome across classes.
type Result struct {
	// PerClass maps class name to its result.
	PerClass map[string]*ClassResult
}

// Classes returns the class names in sorted order.
func (r *Result) Classes() []string {
	out := make([]string, 0, len(r.PerClass))
	for c := range r.PerClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// SeedSet returns the combined attribute set for a class — the seed set
// consumed by the DOM-tree and Web-text extractors.
func (r *Result) SeedSet(class string) extract.AttrSet {
	cr, ok := r.PerClass[class]
	if !ok {
		return extract.NewAttrSet()
	}
	return cr.Combined
}

// ExtractAttributes runs attribute extraction over the given source KBs and
// combines their per-class attribute sets. Only surface property names are
// consulted; canonical names are recovered by normalisation, so the
// extraction is honest to what a real system could do.
func ExtractAttributes(ctx context.Context, crit *confidence.Criterion, kbs ...*kb.SourceKB) *Result {
	res := &Result{PerClass: make(map[string]*ClassResult)}
	for _, src := range kbs {
		for class, props := range src.Properties {
			cr := res.PerClass[class]
			if cr == nil {
				cr = &ClassResult{
					Class:    class,
					Raw:      make(map[string]int),
					Expanded: make(map[string]extract.AttrSet),
					Combined: extract.NewAttrSet(),
				}
				res.PerClass[class] = cr
			}
			cr.Raw[src.Name] = len(props)
			expanded := expandProperties(class, src, props)
			cr.Expanded[src.Name] = expanded
			cr.Combined.Union(expanded)
		}
	}
	if crit != nil {
		for _, cr := range res.PerClass {
			for _, set := range cr.Expanded {
				crit.ScoreAttrSet(extract.ExtractorKB, set)
			}
			crit.ScoreAttrSet(extract.ExtractorKB, cr.Combined)
		}
	}
	attrs := 0
	for _, cr := range res.PerClass {
		attrs += cr.Combined.Len()
	}
	obs.Reg(ctx).Counter("akb_kbx_attrs_total").Add(int64(attrs))
	return res
}

// expandProperties flattens a KB's raw properties for one class into a
// deduplicated canonical attribute set: simple properties contribute their
// own normalised name; composite properties contribute one attribute per
// sub-field.
func expandProperties(class string, src *kb.SourceKB, props []kb.Property) extract.AttrSet {
	out := extract.NewAttrSet()
	source := strings.ToLower(src.Name)
	for _, p := range props {
		for _, f := range p.Fields {
			surface := f.Name
			if surface == "" {
				surface = p.Name
			}
			canonical := kb.CanonicalAttributeName(surface, class)
			if canonical == "" {
				continue
			}
			out.Add(canonical, source)
		}
	}
	return out
}

// ExtractStatements converts a source KB's facts into confidence-annotated
// RDF statements for the fusion phase. Composite facts emit one statement
// per sub-field value.
func ExtractStatements(ctx context.Context, crit *confidence.Criterion, src *kb.SourceKB) []rdf.Statement {
	source := strings.ToLower(src.Name)
	conf := confidence.MaxConfidence
	if crit != nil {
		// KB facts are single-source claims with full extractor support.
		conf = crit.Score(extract.ExtractorKB, 3, 1)
	}
	var out []rdf.Statement
	classes := make([]string, 0, len(src.Facts))
	for c := range src.Facts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		// Index property field names once per class.
		for _, fact := range src.Facts[class] {
			fieldNames := make([]string, 0, len(fact.FieldValues))
			for fn := range fact.FieldValues {
				fieldNames = append(fieldNames, fn)
			}
			sort.Strings(fieldNames)
			for _, fn := range fieldNames {
				surface := fn
				if surface == "" {
					surface = fact.Property
				}
				canonical := kb.CanonicalAttributeName(surface, class)
				if canonical == "" {
					continue
				}
				for _, v := range fact.FieldValues[fn] {
					out = append(out, extract.NewStatement(
						fact.Entity, canonical, v, source, extract.ExtractorKB, "", conf))
				}
			}
		}
	}
	obs.Reg(ctx).Counter("akb_kbx_statements_total").Add(int64(len(out)))
	return out
}

// Table2Row is one row of the paper's Table 2 as computed by the extractor.
type Table2Row struct {
	Class            string
	DBpediaRaw       int
	DBpediaExtracted int
	FreebaseRaw      int
	FreebaseExtract  int
	Combined         int
}

// Table2 renders the result as Table 2 rows in the paper's class order
// (Book, Film, Country, University, Hotel; other classes follow sorted).
func (r *Result) Table2() []Table2Row {
	order := []string{"Book", "Film", "Country", "University", "Hotel"}
	seen := map[string]bool{}
	var classes []string
	for _, c := range order {
		if _, ok := r.PerClass[c]; ok {
			classes = append(classes, c)
			seen[c] = true
		}
	}
	for _, c := range r.Classes() {
		if !seen[c] {
			classes = append(classes, c)
		}
	}
	rows := make([]Table2Row, 0, len(classes))
	for _, c := range classes {
		cr := r.PerClass[c]
		rows = append(rows, Table2Row{
			Class:            c,
			DBpediaRaw:       cr.Raw["DBpedia"],
			DBpediaExtracted: cr.Expanded["DBpedia"].Len(),
			FreebaseRaw:      cr.Raw["Freebase"],
			FreebaseExtract:  cr.Expanded["Freebase"].Len(),
			Combined:         cr.Combined.Len(),
		})
	}
	return rows
}
