// Package extract defines the shared vocabulary of the four knowledge
// extractors (kbx, qsx, domx, textx): discovered attribute sets with
// support evidence, extractor result records, and the entity index used for
// entity recognition. Each concrete extractor lives in a subpackage.
package extract

import (
	"sort"
	"strings"

	"akb/internal/kb"
	"akb/internal/rdf"
)

// Extractor names, used in provenance records and confidence priors.
const (
	ExtractorKB    = "kbx"
	ExtractorQuery = "qsx"
	ExtractorDOM   = "domx"
	ExtractorText  = "textx"
)

// AttrEvidence accumulates support for one discovered attribute.
type AttrEvidence struct {
	// Support counts independent observations (mentions, pages, properties).
	Support int
	// Sources is the set of distinct origins that contributed.
	Sources map[string]struct{}
	// Confidence is the unified confidence score assigned by
	// internal/confidence once scoring runs; zero until then.
	Confidence float64
}

// AttrSet is a set of discovered canonical attributes with evidence.
type AttrSet map[string]*AttrEvidence

// NewAttrSet returns an empty attribute set.
func NewAttrSet() AttrSet { return make(AttrSet) }

// Add records one observation of the attribute from a source.
func (s AttrSet) Add(attr, source string) {
	ev, ok := s[attr]
	if !ok {
		ev = &AttrEvidence{Sources: make(map[string]struct{})}
		s[attr] = ev
	}
	ev.Support++
	if source != "" {
		ev.Sources[source] = struct{}{}
	}
}

// Has reports membership.
func (s AttrSet) Has(attr string) bool {
	_, ok := s[attr]
	return ok
}

// Names returns the attribute names in sorted order.
func (s AttrSet) Names() []string {
	out := make([]string, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of attributes.
func (s AttrSet) Len() int { return len(s) }

// Union merges other into s (evidence is combined).
func (s AttrSet) Union(other AttrSet) {
	for a, ev := range other {
		dst, ok := s[a]
		if !ok {
			dst = &AttrEvidence{Sources: make(map[string]struct{})}
			s[a] = dst
		}
		dst.Support += ev.Support
		for src := range ev.Sources {
			dst.Sources[src] = struct{}{}
		}
		if ev.Confidence > dst.Confidence {
			dst.Confidence = ev.Confidence
		}
	}
}

// Clone returns a deep copy.
func (s AttrSet) Clone() AttrSet {
	out := make(AttrSet, len(s))
	for a, ev := range s {
		cp := &AttrEvidence{Support: ev.Support, Confidence: ev.Confidence, Sources: make(map[string]struct{}, len(ev.Sources))}
		for src := range ev.Sources {
			cp.Sources[src] = struct{}{}
		}
		out[a] = cp
	}
	return out
}

// EntityIndex maps entity surface names to their class, implementing the
// paper's entity recognition: "each class is specified as a set of
// representative entities of Freebase".
type EntityIndex struct {
	byName map[string]string
}

// NewEntityIndex builds an index from a source KB's covered entities.
func NewEntityIndex(src *kb.SourceKB) *EntityIndex {
	idx := &EntityIndex{byName: make(map[string]string)}
	for class, names := range src.CoveredEntities {
		for _, n := range names {
			idx.byName[n] = class
		}
	}
	return idx
}

// NewEntityIndexFromWorld builds an index covering every world entity.
func NewEntityIndexFromWorld(w *kb.World) *EntityIndex {
	idx := &EntityIndex{byName: make(map[string]string)}
	for _, class := range w.Ontology.ClassNames() {
		for _, n := range w.EntityNames(class) {
			idx.byName[n] = class
		}
	}
	return idx
}

// Class returns the class of a known entity name.
func (idx *EntityIndex) Class(name string) (string, bool) {
	c, ok := idx.byName[name]
	return c, ok
}

// Len returns the number of indexed entities.
func (idx *EntityIndex) Len() int { return len(idx.byName) }

// Names returns all indexed entity names in sorted order.
func (idx *EntityIndex) Names() []string {
	out := make([]string, 0, len(idx.byName))
	for n := range idx.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NormalizeLabel canonicalises an on-page or in-query attribute surface
// form: lower-cases, trims punctuation decoration (trailing colon) and
// collapses whitespace.
func NormalizeLabel(label string) string {
	label = strings.TrimSpace(label)
	label = strings.TrimSuffix(label, ":")
	label = strings.ToLower(label)
	return strings.Join(strings.Fields(label), " ")
}

// EntityFact is one extracted fact about a candidate new entity, produced
// by an extractor's entity-discovery mode and consumed by
// internal/entitydisc.
type EntityFact struct {
	Name   string
	Class  string
	Attr   string
	Value  string
	Source string
	Doc    string
}

// ValidAttributeLabel reports whether a normalised label is plausible as an
// attribute name: at least three characters, at most five words, and not
// purely numeric. Extractors apply it before admitting discovered labels.
func ValidAttributeLabel(label string) bool {
	if len(label) < 3 {
		return false
	}
	if len(strings.Fields(label)) > 5 {
		return false
	}
	digits := 0
	for _, r := range label {
		if r >= '0' && r <= '9' {
			digits++
		}
	}
	return digits != len(label)
}

// EntityIRI mints the IRI for an entity name.
func EntityIRI(name string) rdf.Term { return rdf.AKB.IRI(name) }

// AttrIRI mints the IRI for a canonical attribute name.
func AttrIRI(attr string) rdf.Term { return rdf.AKB.IRI("attr/" + attr) }

// AttrFromIRI recovers the canonical attribute name from an attribute IRI.
func AttrFromIRI(t rdf.Term) string {
	name := rdf.LocalName(t)
	return strings.ReplaceAll(name, "_", " ")
}

// NewStatement builds a confidence-annotated statement for an extracted
// (entity, attribute, value) triple.
func NewStatement(entity, attr, value, source, extractor, doc string, conf float64) rdf.Statement {
	return rdf.S(
		rdf.T(EntityIRI(entity), AttrIRI(attr), rdf.Literal(value)),
		rdf.Provenance{Source: source, Extractor: extractor, Document: doc},
		conf,
	)
}
