// Package domx implements Algorithm 1 of the paper: attribute extraction
// from DOM trees. For each website, pages that contain a recognised entity
// node and at least one attribute label from the seed set induce tag-path
// patterns (the paths between the entity node and the seed label nodes,
// normalised of noisy tags). Other text nodes whose entity-relative tag path
// is similar to an induced pattern are recognised as new attribute labels
// and added to the seed set, which grows monotonically as sites are
// traversed. The extractor additionally pairs every recognised label with
// its adjacent value node to emit (entity, attribute, value) statements for
// the fusion phase.
//
// Because tag paths learned on one site do not transfer to pages with other
// styles and formats (the paper's motivating observation), patterns are
// induced per page and never reused across sites.
package domx

import (
	"context"
	"sort"
	"strings"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/htmldom"
	"akb/internal/mapreduce"
	"akb/internal/obs"
	"akb/internal/rdf"
	"akb/internal/webgen"
)

// Page is one parsed web page.
type Page struct {
	URL string
	Doc *htmldom.Node
}

// Site groups the parsed pages of one website.
type Site struct {
	Host  string
	Class string
	Pages []Page
}

// FromWebgen parses generated websites into extraction input.
func FromWebgen(sites []*webgen.Site) []Site {
	out := make([]Site, 0, len(sites))
	for _, s := range sites {
		site := Site{Host: s.Host, Class: s.Class}
		for _, p := range s.Pages {
			site.Pages = append(site.Pages, Page{URL: p.URL, Doc: htmldom.Parse(p.HTML)})
		}
		out = append(out, site)
	}
	return out
}

// Config controls Algorithm 1.
type Config struct {
	// SimilarityThreshold is the minimum tag-path similarity to an induced
	// pattern for a text node to be recognised as an attribute label.
	SimilarityThreshold float64
	// SeedCap stops traversing a site once the class's attribute set
	// reaches this size ("the algorithm turns to another Website when the
	// number of attributes reaches a certain threshold"). Zero disables it.
	SeedCap int
	// MaxPasses bounds the per-site fixpoint iteration.
	MaxPasses int
	// Step renders tag-path steps; defaults to htmldom.QualifiedStep.
	Step htmldom.StepFunc
	// DiscoverEntities harvests candidate new entities from pages whose
	// entity node matches no known entity: the page's first body text node
	// is proposed as a new entity of the site's class, and attribute/value
	// pairs are extracted against the patterns induced on the site's
	// recognised pages (an extension of Algorithm 1 towards the paper's
	// joint entity-linking-and-discovery goal).
	DiscoverEntities bool
	// Workers bounds intra-extractor parallelism. Algorithm 1's seed set
	// grows monotonically across the sites of one class, so sites cannot
	// be processed independently — but classes can: sites are sharded by
	// class, each shard runs serially in input order, and shards execute
	// concurrently. Results merge deterministically, so output is
	// byte-identical at any worker count. <= 1 runs fully serial.
	Workers int
	// Emit, when set, receives each class shard's finished statement batch
	// as soon as that shard completes — from the extraction worker
	// goroutine, so it must be safe for concurrent use. Batches are
	// disjoint across shards and concatenate (in any order) to exactly the
	// statements of Result.Statements; downstream consumers (the fusion
	// claim stream) can therefore start folding claims before the slowest
	// class finishes.
	Emit func([]rdf.Statement)
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{SimilarityThreshold: 0.9, MaxPasses: 3}
}

// ClassResult is the per-class outcome.
type ClassResult struct {
	Class string
	// All is the enriched attribute set (seeds plus discoveries).
	All extract.AttrSet
	// Discovered holds only the attributes not present in the seeds.
	Discovered extract.AttrSet
	// PagesUsed counts pages that induced at least one pattern.
	PagesUsed int
	// InducedPatterns counts distinct normalised patterns across pages.
	InducedPatterns int

	patternSet map[string]struct{}
	// entityPaths records the qualified path-to-root signatures of entity
	// nodes on recognised pages, used to locate candidate entity nodes on
	// unrecognised pages during discovery.
	entityPaths map[string]struct{}
}

// EntityFact is one extracted fact about a candidate new entity.
type EntityFact = extract.EntityFact

// Result is the extraction outcome.
type Result struct {
	PerClass map[string]*ClassResult
	// Statements are the (entity, attribute, value) claims with
	// per-site provenance.
	Statements []rdf.Statement
	// NewEntityFacts holds facts about unrecognised page entities when
	// Config.DiscoverEntities is set.
	NewEntityFacts []EntityFact
}

// Classes returns class names in sorted order.
func (r *Result) Classes() []string {
	out := make([]string, 0, len(r.PerClass))
	for c := range r.PerClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// claim is an aggregated (entity, attr, value) observation.
type claim struct {
	entity, attr, value string
}

type claimEvidence struct {
	hosts map[string]struct{}
	pages int
	// firstProv is the first (host, url) that asserted the claim per host.
	provs []rdf.Provenance
}

// shard is the unit of domx parallelism: all sites of one class, kept in
// input order, plus their original input indices so per-site output can be
// reassembled in the serial order.
type shard struct {
	class   string
	sites   []Site
	indices []int
}

// shardOut is one shard's complete, self-contained extraction state.
type shardOut struct {
	cr *ClassResult
	// stmts holds the shard's confidence-scored statements in canonical
	// claim-key order; stmtKeys is aligned with it (one key per statement,
	// repeated across a claim's per-site provenance statements) so the
	// cross-shard merge can reproduce the global order without re-sorting.
	stmts    []rdf.Statement
	stmtKeys []claim
	// facts is aligned with shard.sites: the entity facts each site
	// produced, in that site's generation order.
	facts [][]EntityFact
}

// seenKey dedups (attribute, host, page) support counts without building a
// concatenated string key on every lookup.
type seenKey struct {
	label, host, url string
}

// shardByClass groups sites by class in class-first-appearance order.
func shardByClass(sites []Site) []shard {
	at := make(map[string]int)
	var out []shard
	for i, s := range sites {
		j, ok := at[s.Class]
		if !ok {
			j = len(out)
			at[s.Class] = j
			out = append(out, shard{class: s.Class})
		}
		out[j].sites = append(out[j].sites, s)
		out[j].indices = append(out[j].indices, i)
	}
	return out
}

// runShard executes Algorithm 1 serially over one class's sites. All
// mutable state (attribute set, claims, dedup keys) is shard-local:
// entities resolve to exactly one class, so no claim, host, or attribute
// set is ever shared between shards. The shard's statements are built (and
// emitted, when cfg.Emit is set) here in the worker, so the caller's merge
// is a cheap ordered interleave instead of a global sort.
func runShard(sh shard, idx *extract.EntityIndex, seeds map[string]extract.AttrSet, cfg Config, crit *confidence.Criterion) shardOut {
	seedSet := extract.NewAttrSet()
	if s, ok := seeds[sh.class]; ok {
		seedSet = s.Clone()
	}
	out := shardOut{
		cr: &ClassResult{
			Class:       sh.class,
			All:         seedSet,
			Discovered:  extract.NewAttrSet(),
			patternSet:  make(map[string]struct{}),
			entityPaths: make(map[string]struct{}),
		},
		facts: make([][]EntityFact, len(sh.sites)),
	}
	claims := make(map[claim]*claimEvidence)
	seen := make(map[seenKey]struct{}) // (attr, host, url) dedup for support counts
	var scratch pageScratch
	for i, site := range sh.sites {
		if cfg.SeedCap > 0 && out.cr.All.Len() >= cfg.SeedCap {
			continue
		}
		out.facts[i] = extractSite(site, idx, out.cr, cfg, claims, seen, &scratch)
	}
	out.stmts, out.stmtKeys = buildStatements(claims, crit)
	if cfg.Emit != nil && len(out.stmts) > 0 {
		cfg.Emit(out.stmts)
	}
	return out
}

// Extract runs Algorithm 1 over the sites. Seeds map class name to the seed
// attribute set extracted from the query stream and existing KBs; the passed
// sets are cloned, never mutated.
func Extract(ctx context.Context, sites []Site, idx *extract.EntityIndex, seeds map[string]extract.AttrSet, cfg Config, crit *confidence.Criterion) *Result {
	if cfg.SimilarityThreshold <= 0 {
		cfg.SimilarityThreshold = 0.9
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = 3
	}
	if cfg.Step == nil {
		cfg.Step = htmldom.QualifiedStep
	}
	res := &Result{PerClass: make(map[string]*ClassResult)}
	shards := shardByClass(sites)
	outs := mapreduce.Map(mapreduce.Config{Workers: max(cfg.Workers, 1), Obs: obs.Reg(ctx)},
		shards, func(sh shard) shardOut { return runShard(sh, idx, seeds, cfg, crit) })
	factsBySite := make([][]EntityFact, len(sites))
	for s, out := range outs { // outs[s] aligns with shards[s]
		res.PerClass[out.cr.Class] = out.cr
		for k, fs := range out.facts {
			factsBySite[shards[s].indices[k]] = fs
		}
	}
	// Reassembling facts by original site index reproduces the serial
	// site-by-site append order exactly.
	for _, fs := range factsBySite {
		res.NewEntityFacts = append(res.NewEntityFacts, fs...)
	}
	for _, cr := range res.PerClass {
		cr.InducedPatterns = len(cr.patternSet)
		if crit != nil {
			crit.ScoreAttrSet(extract.ExtractorDOM, cr.Discovered)
			crit.ScoreAttrSet(extract.ExtractorDOM, cr.All)
		}
	}
	res.Statements = mergeStatements(outs)
	reg := obs.Reg(ctx)
	reg.Counter("akb_domx_statements_total").Add(int64(len(res.Statements)))
	discovered := 0
	for _, cr := range res.PerClass {
		discovered += cr.Discovered.Len()
	}
	reg.Counter("akb_domx_attrs_discovered_total").Add(int64(discovered))
	return res
}

// pageState is one recognised page plus every per-text derivation the
// fixpoint passes need. All cached fields are pure functions of the page
// and its entity node, so passes 2..MaxPasses reuse them instead of
// re-normalising text and re-walking the DOM — the dominant cost of the
// original per-pass recomputation.
type pageState struct {
	page     Page
	entity   string
	entLower string
	eNode    *htmldom.Node
	texts    []*htmldom.Node
	norm     []string // NormalizeSpace(texts[i].Text)
	label    []string // NormalizeLabel(norm[i])
	// Lazy caches, filled on first use: the entity-relative tag path per
	// text node, its normalised pattern (and canonical string), and the
	// adjacent value per position.
	path         []htmldom.TagPath
	pathOK       []bool
	pathDone     []bool
	normPath     []htmldom.TagPath
	normPathStr  []string
	normPathDone []bool
	value        []string
	valueDone    []bool
	counted      bool
}

// pathTo returns the cached tag path from the entity node to texts[i].
func (st *pageState) pathTo(i int, step htmldom.StepFunc) (htmldom.TagPath, bool) {
	if !st.pathDone[i] {
		st.pathDone[i] = true
		st.path[i], st.pathOK[i] = htmldom.PathBetweenFunc(st.eNode, st.texts[i], step)
	}
	return st.path[i], st.pathOK[i]
}

// normPathAt returns the cached normalised pattern (and its canonical
// string) of the path to texts[i]; ok mirrors pathTo.
func (st *pageState) normPathAt(i int, step htmldom.StepFunc) (htmldom.TagPath, string, bool) {
	if !st.normPathDone[i] {
		st.normPathDone[i] = true
		if p, ok := st.pathTo(i, step); ok {
			st.normPath[i] = p.Normalize()
			st.normPathStr[i] = st.normPath[i].String()
		}
	}
	_, ok := st.pathTo(i, step)
	return st.normPath[i], st.normPathStr[i], ok
}

// valueAt returns the cached adjacent value for the label at position i.
func (st *pageState) valueAt(i int) string {
	if !st.valueDone[i] {
		st.valueDone[i] = true
		for j := i + 1; j < len(st.texts); j++ {
			raw := st.norm[j]
			if raw == "" {
				continue
			}
			if !strings.HasSuffix(raw, ":") {
				st.value[i] = raw
			}
			break // adjacent label: the expected value is missing
		}
	}
	return st.value[i]
}

// pageScratch holds per-shard reusable buffers for extractPage, so the
// per-pass known/candidate partitions and induced-pattern list stop
// allocating on every (page, pass) visit.
type pageScratch struct {
	known, cand []int // text indices
	induced     []htmldom.TagPath
}

func extractSite(site Site, idx *extract.EntityIndex, cr *ClassResult, cfg Config, claims map[claim]*claimEvidence, seen map[seenKey]struct{}, scratch *pageScratch) []EntityFact {
	states := make([]*pageState, 0, len(site.Pages))
	var unknown []Page
	for _, p := range site.Pages {
		// One traversal serves both entity recognition and label caching;
		// findEntityNode used to walk and normalise the same text nodes a
		// second time.
		texts := bodyTextNodes(p.Doc)
		norm := make([]string, len(texts))
		for i, tn := range texts {
			norm[i] = htmldom.NormalizeSpace(tn.Text)
		}
		entity := ""
		var eNode *htmldom.Node
		for i, tn := range texts {
			if c, ok := idx.Class(norm[i]); ok && c == site.Class {
				entity, eNode = norm[i], tn
				break
			}
		}
		if eNode == nil {
			unknown = append(unknown, p)
			continue
		}
		n := len(texts)
		st := &pageState{
			page: p, entity: entity, entLower: strings.ToLower(entity),
			eNode: eNode, texts: texts, norm: norm,
			label:    make([]string, n),
			path:     make([]htmldom.TagPath, n),
			pathOK:   make([]bool, n),
			pathDone: make([]bool, n),
			normPath: make([]htmldom.TagPath, n), normPathStr: make([]string, n), normPathDone: make([]bool, n),
			value: make([]string, n), valueDone: make([]bool, n),
		}
		for i := range texts {
			st.label[i] = extract.NormalizeLabel(norm[i])
		}
		states = append(states, st)
	}

	for pass := 0; pass < cfg.MaxPasses; pass++ {
		grew := false
		for _, st := range states {
			if cfg.SeedCap > 0 && cr.All.Len() >= cfg.SeedCap {
				return nil
			}
			if extractPage(site, st, cr, cfg, claims, seen, scratch) {
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	if cfg.DiscoverEntities {
		return discoverOnSite(site, unknown, cr, cfg)
	}
	return nil
}

// discoverOnSite proposes new entities from pages whose entity node matched
// nothing known, extracting their attributes against the site's induced
// pattern set. Site templates keep label paths regular across pages, which
// is what makes cross-page pattern application sound here even though
// Algorithm 1 proper induces patterns per page.
func discoverOnSite(site Site, unknown []Page, cr *ClassResult, cfg Config) []EntityFact {
	if len(cr.patternSet) == 0 {
		return nil
	}
	var facts []EntityFact
	sitePatterns := make([]htmldom.TagPath, 0, len(cr.patternSet))
	for _, st := range sortedPatternKeys(cr.patternSet) {
		sitePatterns = append(sitePatterns, parsePatternKey(st))
	}
	for _, p := range unknown {
		texts := bodyTextNodes(p.Doc)
		// The candidate entity node is the first text node standing at a
		// position where recognised pages carried their entity node — nav
		// links and ads live elsewhere in the template.
		var candNode *htmldom.Node
		for _, tn := range texts {
			if _, ok := cr.entityPaths[pathSignature(tn, cfg.Step)]; ok {
				candNode = tn
				break
			}
		}
		if candNode == nil {
			continue
		}
		name := htmldom.NormalizeSpace(candNode.Text)
		if !plausibleEntityName(name) {
			continue
		}
		for i, tn := range texts {
			if tn == candNode {
				continue
			}
			label := extract.NormalizeLabel(htmldom.NormalizeSpace(tn.Text))
			if label == "" || !extract.ValidAttributeLabel(label) {
				continue
			}
			path, ok := htmldom.PathBetweenFunc(candNode, tn, cfg.Step)
			if !ok || bestSimilarity(path, sitePatterns) < cfg.SimilarityThreshold {
				continue
			}
			value := valueAfter(texts, i)
			if value == "" {
				continue
			}
			facts = append(facts, EntityFact{
				Name: name, Class: site.Class, Attr: label, Value: value,
				Source: site.Host, Doc: p.URL,
			})
		}
	}
	return facts
}

// pathSignature renders a text node's qualified element path to the root,
// most specific first, as a comparable string.
func pathSignature(n *htmldom.Node, step htmldom.StepFunc) string {
	var b strings.Builder
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		if cur.Kind == htmldom.ElementNode {
			b.WriteString(step(cur))
			b.WriteByte('/')
		}
	}
	return b.String()
}

// sortedPatternKeys returns pattern strings deterministically.
func sortedPatternKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// parsePatternKey reconstructs a TagPath from its canonical string
// "a^b^apex(c/d)".
func parsePatternKey(s string) htmldom.TagPath {
	var p htmldom.TagPath
	if i := strings.IndexByte(s, '('); i >= 0 {
		down := strings.TrimSuffix(s[i+1:], ")")
		if down != "" {
			p.Down = strings.Split(down, "/")
		}
		s = s[:i]
	}
	parts := strings.Split(s, "^")
	p.Apex = parts[len(parts)-1]
	p.Up = parts[:len(parts)-1]
	return p
}

// plausibleEntityName accepts capitalised multi-word names of sane length.
func plausibleEntityName(name string) bool {
	words := strings.Fields(name)
	if len(words) == 0 || len(words) > 8 || len(name) < 3 {
		return false
	}
	c := name[0]
	return c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// extractPage runs one Algorithm-1 step on a page and reports whether the
// class attribute set grew.
func extractPage(site Site, st *pageState, cr *ClassResult, cfg Config, claims map[claim]*claimEvidence, seen map[seenKey]struct{}, scratch *pageScratch) bool {
	// Step 1: induced tag path pattern set — paths from the entity node to
	// every node whose label is already a known attribute. The known /
	// candidate partition depends on the growing attribute set, so it is
	// recomputed per pass — into reused scratch buffers.
	known := scratch.known[:0]
	candidates := scratch.cand[:0]
	for i, tn := range st.texts {
		if tn == st.eNode {
			continue
		}
		label := st.label[i]
		if label == "" || label == st.entLower {
			continue
		}
		if cr.All.Has(label) {
			known = append(known, i)
		} else {
			candidates = append(candidates, i)
		}
	}
	scratch.known, scratch.cand = known, candidates
	if len(known) == 0 {
		return false
	}
	induced := scratch.induced[:0]
	for _, i := range known {
		if norm, str, ok := st.normPathAt(i, cfg.Step); ok {
			induced = append(induced, norm)
			cr.patternSet[str] = struct{}{}
		}
	}
	scratch.induced = induced
	if len(induced) == 0 {
		return false
	}
	if !st.counted {
		cr.PagesUsed++
		st.counted = true
	}
	cr.entityPaths[pathSignature(st.eNode, cfg.Step)] = struct{}{}

	grew := false
	// Step 2: recognise known labels' values and new attribute labels.
	emit := func(pos int) {
		value := st.valueAt(pos)
		if value == "" {
			return
		}
		c := claim{entity: st.entity, attr: st.label[pos], value: value}
		ev := claims[c]
		if ev == nil {
			ev = &claimEvidence{hosts: make(map[string]struct{})}
			claims[c] = ev
		}
		if _, ok := ev.hosts[site.Host]; !ok {
			ev.hosts[site.Host] = struct{}{}
			ev.provs = append(ev.provs, rdf.Provenance{
				Source: site.Host, Extractor: extract.ExtractorDOM, Document: st.page.URL,
			})
		}
		ev.pages++
	}
	for _, i := range known {
		label := st.label[i]
		// A previously discovered attribute reappearing on another page or
		// host is further evidence; keep its support growing.
		if cr.Discovered.Has(label) {
			key := seenKey{label: label, host: site.Host, url: st.page.URL}
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				cr.Discovered.Add(label, site.Host)
				cr.All.Add(label, site.Host)
			}
		}
		emit(i)
	}
	for _, i := range candidates {
		label := st.label[i]
		if !extract.ValidAttributeLabel(label) {
			continue
		}
		p, ok := st.pathTo(i, cfg.Step)
		if !ok {
			continue
		}
		if bestSimilarity(p, induced) < cfg.SimilarityThreshold {
			continue
		}
		key := seenKey{label: label, host: site.Host, url: st.page.URL}
		if _, dup := seen[key]; !dup {
			seen[key] = struct{}{}
			if !cr.All.Has(label) {
				grew = true
			}
			cr.All.Add(label, site.Host)
			cr.Discovered.Add(label, site.Host)
		}
		emit(i)
	}
	return grew
}

func bestSimilarity(p htmldom.TagPath, induced []htmldom.TagPath) float64 {
	best := 0.0
	for _, q := range induced {
		if s := htmldom.Similarity(p, q); s > best {
			best = s
		}
	}
	return best
}

// findEntityNode locates the first body text node whose content is a known
// entity of the wanted class.
func findEntityNode(doc *htmldom.Node, idx *extract.EntityIndex, class string) (string, *htmldom.Node) {
	for _, tn := range bodyTextNodes(doc) {
		name := htmldom.NormalizeSpace(tn.Text)
		if c, ok := idx.Class(name); ok && c == class {
			return name, tn
		}
	}
	return "", nil
}

// bodyTextNodes returns document-order text nodes outside <head>.
func bodyTextNodes(doc *htmldom.Node) []*htmldom.Node {
	var out []*htmldom.Node
	for _, tn := range doc.TextNodes() {
		if !underHead(tn) {
			out = append(out, tn)
		}
	}
	return out
}

func underHead(n *htmldom.Node) bool {
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		if cur.Kind == htmldom.ElementNode && cur.Tag == "head" {
			return true
		}
	}
	return false
}

// valueAfter returns the normalised text of the first node after pos that
// does not itself look like a label (labels end with a colon on styled
// sites).
func valueAfter(texts []*htmldom.Node, pos int) string {
	for i := pos + 1; i < len(texts); i++ {
		raw := htmldom.NormalizeSpace(texts[i].Text)
		if raw == "" {
			continue
		}
		if strings.HasSuffix(raw, ":") {
			return "" // adjacent label: the expected value is missing
		}
		return raw
	}
	return ""
}

// claimLess orders claims by (entity, attr, value) — the canonical
// statement order.
func claimLess(a, b claim) bool {
	if a.entity != b.entity {
		return a.entity < b.entity
	}
	if a.attr != b.attr {
		return a.attr < b.attr
	}
	return a.value < b.value
}

// buildStatements converts one shard's aggregated claims into
// confidence-scored statements in canonical claim order, one statement per
// contributing site. The returned keys slice is aligned with the
// statements (a claim's key repeats across its per-site statements) so the
// cross-shard merge can interleave runs without re-deriving sort keys from
// minted IRIs — IRI minting rewrites spaces, so IRI order and claim order
// disagree.
func buildStatements(claims map[claim]*claimEvidence, crit *confidence.Criterion) ([]rdf.Statement, []claim) {
	keys := make([]claim, 0, len(claims))
	for c := range claims {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return claimLess(keys[i], keys[j]) })
	n := 0
	for _, ev := range claims {
		n += len(ev.provs)
	}
	out := make([]rdf.Statement, 0, n)
	outKeys := make([]claim, 0, n)
	for _, c := range keys {
		ev := claims[c]
		conf := 0.5
		if crit != nil {
			conf = crit.Score(extract.ExtractorDOM, ev.pages, len(ev.hosts))
		}
		for _, prov := range ev.provs {
			out = append(out, rdf.S(
				rdf.T(extract.EntityIRI(c.entity), extract.AttrIRI(c.attr), rdf.Literal(c.value)),
				prov, conf))
			outKeys = append(outKeys, c)
		}
	}
	return out, outKeys
}

// mergeStatements interleaves the per-shard statement runs into the single
// globally sorted claim order the serial implementation produced. Shards
// partition entities by class, so claim keys never collide across runs and
// the merge is a plain k-way interleave; equal-key statements (one claim's
// several provenances) stay contiguous within their run.
func mergeStatements(outs []shardOut) []rdf.Statement {
	total := 0
	for _, o := range outs {
		total += len(o.stmts)
	}
	out := make([]rdf.Statement, 0, total)
	heads := make([]int, len(outs))
	for {
		best := -1
		for s := range outs {
			if heads[s] >= len(outs[s].stmts) {
				continue
			}
			if best < 0 || claimLess(outs[s].stmtKeys[heads[s]], outs[best].stmtKeys[heads[best]]) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		o := &outs[best]
		h := heads[best]
		k := o.stmtKeys[h]
		j := h + 1
		for j < len(o.stmts) && o.stmtKeys[j] == k {
			j++
		}
		out = append(out, o.stmts[h:j]...)
		heads[best] = j
	}
	return out
}
