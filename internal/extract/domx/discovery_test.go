package domx

import (
	"context"
	"testing"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/htmldom"
	"akb/internal/kb"
	"akb/internal/webgen"
)

// partialIndex covers only the first half of each class's entities, leaving
// the rest for discovery.
func partialIndex(w *kb.World) *extract.EntityIndex {
	fb := kb.GenerateFreebase(w, kb.KBGenConfig{Seed: 5, Coverage: 0.5})
	return extract.NewEntityIndex(fb)
}

func TestDiscoverOnSiteHarvestsUnknownEntities(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 5, EntitiesPerClass: 25, AttrsPerEntity: 14})
	gen := webgen.GenerateSites(w, webgen.SiteConfig{
		Seed: 5, SitesPerClass: 3, PagesPerSite: 12, AttrsPerPage: 8,
		ValueErrorRate: 0.05, NoiseNodes: 4,
	})
	idx := partialIndex(w)
	seeds := map[string]extract.AttrSet{}
	for _, cls := range w.Ontology.ClassNames() {
		s := extract.NewAttrSet()
		for i, a := range w.Ontology.Class(cls).AttributeNames() {
			if i == 6 {
				break
			}
			s.Add(a, "seed")
		}
		seeds[cls] = s
	}
	cfg := DefaultConfig()
	cfg.DiscoverEntities = true
	res := Extract(context.Background(), FromWebgen(gen), idx, seeds, cfg, confidence.Default())
	if len(res.NewEntityFacts) == 0 {
		t.Fatal("no new-entity facts at 50% coverage")
	}
	for _, f := range res.NewEntityFacts {
		// The candidate must be a real world entity of the site's class and
		// genuinely unknown to the index.
		e, ok := w.Entity(f.Name)
		if !ok {
			t.Errorf("candidate %q is not a world entity", f.Name)
			continue
		}
		if e.Class != f.Class {
			t.Errorf("candidate %q class %q, want %q", f.Name, f.Class, e.Class)
		}
		if _, known := idx.Class(f.Name); known {
			t.Errorf("candidate %q is already known", f.Name)
		}
		if f.Attr == "" || f.Value == "" {
			t.Errorf("incomplete fact %+v", f)
		}
	}
	// Disabled mode harvests nothing.
	cfg.DiscoverEntities = false
	res2 := Extract(context.Background(), FromWebgen(gen), idx, seeds, cfg, nil)
	if len(res2.NewEntityFacts) != 0 {
		t.Error("facts harvested with discovery disabled")
	}
}

func TestParsePatternKeyRoundTrip(t *testing.T) {
	paths := []htmldom.TagPath{
		{Up: []string{"h1.entity-name"}, Apex: "body", Down: []string{"table.infobox", "tr", "th"}},
		{Apex: "body"},
		{Up: []string{"a", "b"}, Apex: "c"},
	}
	for _, p := range paths {
		got := parsePatternKey(p.String())
		if got.String() != p.String() {
			t.Errorf("round trip %q -> %q", p.String(), got.String())
		}
	}
}

func TestPlausibleEntityName(t *testing.T) {
	cases := map[string]bool{
		"Casablanca":          true,
		"University of Foo 3": true,
		"42nd Street":         true,
		"advertisement":       false,
		"ab":                  false,
		"One Two Three Four Five Six Seven Eight Nine": false,
	}
	for in, want := range cases {
		if got := plausibleEntityName(in); got != want {
			t.Errorf("plausibleEntityName(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestResultClasses(t *testing.T) {
	res := &Result{PerClass: map[string]*ClassResult{"B": {}, "A": {}}}
	got := res.Classes()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Classes = %v", got)
	}
}
