package domx

import (
	"context"
	"sort"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/htmldom"
	"akb/internal/obs"
	"akb/internal/rdf"
	"akb/internal/webgen"
)

// This file implements data-record extraction from list pages — the
// multi-record setting of the wrapper-induction literature the paper
// surveys (Liu et al. KDD'03, Bing et al. CIKM'11): a table whose rows each
// describe one entity, with a header row naming the attribute columns. The
// extractor detects record regions by repetition (several sibling rows with
// the same cell signature, each containing a recognised entity), pairs
// cells to header labels, and emits one statement per cell.

// ListPage is one parsed multi-record page.
type ListPage struct {
	URL string
	Doc *htmldom.Node
}

// ListSite groups list pages per host.
type ListSite struct {
	Host  string
	Class string
	Pages []ListPage
}

// ListsFromWebgen adapts generated list pages for extraction.
func ListsFromWebgen(w map[string][]*webgen.ListPage, classOf func(host string) string) []ListSite {
	hosts := make([]string, 0, len(w))
	for h := range w {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	out := make([]ListSite, 0, len(hosts))
	for _, h := range hosts {
		site := ListSite{Host: h, Class: classOf(h)}
		for _, p := range w[h] {
			site.Pages = append(site.Pages, ListPage{URL: p.URL, Doc: htmldom.Parse(p.HTML)})
		}
		out = append(out, site)
	}
	return out
}

// ListResult is the list-extraction outcome.
type ListResult struct {
	// Statements are the extracted claims.
	Statements []rdf.Statement
	// Records counts extracted entity rows.
	Records int
	// Regions counts detected record regions (tables).
	Regions int
	// HeaderAttrs is the set of attribute labels seen in headers, per class.
	HeaderAttrs map[string]extract.AttrSet
}

// ListConfig controls list extraction.
type ListConfig struct {
	// MinRecordRows is the repetition threshold for a record region
	// (default 3).
	MinRecordRows int
}

// ExtractLists mines record regions from list pages.
func ExtractLists(ctx context.Context, sites []ListSite, idx *extract.EntityIndex, cfg ListConfig, crit *confidence.Criterion) *ListResult {
	if cfg.MinRecordRows <= 0 {
		cfg.MinRecordRows = 3
	}
	res := &ListResult{HeaderAttrs: map[string]extract.AttrSet{}}
	type cl struct{ entity, attr, value string }
	type ev struct {
		count int
		hosts map[string]struct{}
		provs []rdf.Provenance
	}
	claims := map[cl]*ev{}

	for _, site := range sites {
		set := res.HeaderAttrs[site.Class]
		if set == nil {
			set = extract.NewAttrSet()
			res.HeaderAttrs[site.Class] = set
		}
		for _, p := range site.Pages {
			for _, table := range p.Doc.FindAll("table") {
				rows := directRows(table)
				if len(rows) < cfg.MinRecordRows+1 {
					continue
				}
				header, ok := headerLabels(rows[0])
				if !ok {
					continue
				}
				// Record rows: same cell count, first cell a known entity.
				records := 0
				for _, row := range rows[1:] {
					cells := cellTexts(row)
					if len(cells) != len(header) {
						continue
					}
					entity := cells[0]
					if c, known := idx.Class(entity); !known || c != site.Class {
						continue
					}
					records++
					for i := 1; i < len(cells); i++ {
						attr := header[i]
						value := cells[i]
						if attr == "" || value == "" || value == "-" {
							continue
						}
						set.Add(attr, site.Host)
						c := cl{entity: entity, attr: attr, value: value}
						e := claims[c]
						if e == nil {
							e = &ev{hosts: map[string]struct{}{}}
							claims[c] = e
						}
						e.count++
						if _, dup := e.hosts[site.Host]; !dup {
							e.hosts[site.Host] = struct{}{}
							e.provs = append(e.provs, rdf.Provenance{
								Source: site.Host, Extractor: extract.ExtractorDOM, Document: p.URL,
							})
						}
					}
				}
				if records >= cfg.MinRecordRows {
					res.Regions++
					res.Records += records
				}
			}
		}
	}
	// Deterministic statement order.
	keys := make([]cl, 0, len(claims))
	for c := range claims {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.entity != b.entity {
			return a.entity < b.entity
		}
		if a.attr != b.attr {
			return a.attr < b.attr
		}
		return a.value < b.value
	})
	for _, c := range keys {
		e := claims[c]
		conf := 0.5
		if crit != nil {
			conf = crit.Score(extract.ExtractorDOM, e.count, len(e.hosts))
		}
		for _, prov := range e.provs {
			res.Statements = append(res.Statements, rdf.S(
				rdf.T(extract.EntityIRI(c.entity), extract.AttrIRI(c.attr), rdf.Literal(c.value)),
				prov, conf))
		}
	}
	reg := obs.Reg(ctx)
	reg.Counter("akb_domx_list_records_total").Add(int64(res.Records))
	reg.Counter("akb_domx_list_statements_total").Add(int64(len(res.Statements)))
	return res
}

// directRows returns the table's tr descendants that belong to this table
// (not to a nested table).
func directRows(table *htmldom.Node) []*htmldom.Node {
	var rows []*htmldom.Node
	table.Walk(func(n *htmldom.Node) bool {
		if n != table && n.Kind == htmldom.ElementNode && n.Tag == "table" {
			return false
		}
		if n.Kind == htmldom.ElementNode && n.Tag == "tr" {
			rows = append(rows, n)
		}
		return true
	})
	return rows
}

// headerLabels extracts normalised labels from a header row of th cells.
// The first column is the record-name column and stays empty.
func headerLabels(row *htmldom.Node) ([]string, bool) {
	ths := row.FindAll("th")
	if len(ths) < 2 {
		return nil, false
	}
	out := make([]string, len(ths))
	for i, th := range ths {
		if i == 0 {
			continue // name column
		}
		label := extract.NormalizeLabel(th.InnerText())
		if !extract.ValidAttributeLabel(label) {
			return nil, false
		}
		out[i] = label
	}
	return out, true
}

// cellTexts returns the normalised texts of a row's td cells.
func cellTexts(row *htmldom.Node) []string {
	tds := row.FindAll("td")
	out := make([]string, len(tds))
	for i, td := range tds {
		out[i] = td.InnerText()
	}
	return out
}
