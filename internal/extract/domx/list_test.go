package domx

import (
	"context"
	"strings"
	"testing"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/htmldom"
	"akb/internal/kb"
	"akb/internal/webgen"
)

func listSetup(t *testing.T) (*kb.World, []ListSite, *extract.EntityIndex) {
	t.Helper()
	w := kb.NewWorld(kb.WorldConfig{Seed: 12, EntitiesPerClass: 20, AttrsPerEntity: 12})
	pages := webgen.GenerateListPages(w, 2, webgen.ListConfig{
		PagesPerSite: 2, RowsPerPage: 8, Columns: 4, ValueErrorRate: 0.1,
	})
	classOf := func(host string) string {
		name := strings.SplitN(host, "-", 2)[0]
		for _, c := range w.Ontology.ClassNames() {
			if strings.ToLower(c) == name {
				return c
			}
		}
		return ""
	}
	sites := ListsFromWebgen(pages, classOf)
	return w, sites, extract.NewEntityIndexFromWorld(w)
}

func TestExtractListsFindsRecords(t *testing.T) {
	w, sites, idx := listSetup(t)
	res := ExtractLists(context.Background(), sites, idx, ListConfig{}, confidence.Default())
	if res.Regions == 0 || res.Records == 0 {
		t.Fatalf("no record regions found: %+v", res)
	}
	if len(res.Statements) == 0 {
		t.Fatal("no statements")
	}
	correct, total := 0, 0
	for _, s := range res.Statements {
		if err := s.Valid(); err != nil {
			t.Fatal(err)
		}
		entity := extract.AttrFromIRI(s.Subject)
		e, ok := w.Entity(entity)
		if !ok {
			t.Fatalf("statement about unknown entity %q", entity)
		}
		total++
		if w.IsTrue(e, extract.AttrFromIRI(s.Predicate), s.Object.Value) {
			correct++
		}
	}
	if prec := float64(correct) / float64(total); prec < 0.8 {
		t.Errorf("list extraction precision = %.3f (%d/%d)", prec, correct, total)
	}
}

func TestExtractListsHeaderAttrs(t *testing.T) {
	w, sites, idx := listSetup(t)
	res := ExtractLists(context.Background(), sites, idx, ListConfig{}, nil)
	for _, cls := range w.Ontology.ClassNames() {
		set := res.HeaderAttrs[cls]
		if set == nil || set.Len() == 0 {
			t.Errorf("%s: no header attributes", cls)
			continue
		}
		class := w.Ontology.Class(cls)
		for attr := range set {
			if _, ok := class.Attribute(attr); !ok {
				t.Errorf("%s: header attribute %q not in ontology", cls, attr)
			}
		}
	}
}

func TestExtractListsIgnoresSmallTables(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 12, EntitiesPerClass: 5, AttrsPerEntity: 8})
	idx := extract.NewEntityIndexFromWorld(w)
	e := w.EntityNames("Film")[0]
	// A two-row table is below the repetition threshold.
	html := `<table><tr><th>Name</th><th>Director:</th></tr><tr><td>` + e + `</td><td>X</td></tr></table>`
	sites := []ListSite{{Host: "h", Class: "Film", Pages: []ListPage{{URL: "/l", Doc: htmldom.Parse(html)}}}}
	res := ExtractLists(context.Background(), sites, idx, ListConfig{MinRecordRows: 3}, nil)
	if res.Regions != 0 {
		t.Errorf("small table counted as record region")
	}
}

func TestExtractListsSkipsHeaderlessTables(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 12, EntitiesPerClass: 8, AttrsPerEntity: 8})
	idx := extract.NewEntityIndexFromWorld(w)
	var b strings.Builder
	b.WriteString("<table>")
	for _, e := range w.EntityNames("Film")[:5] {
		b.WriteString("<tr><td>" + e + "</td><td>x</td></tr>")
	}
	b.WriteString("</table>")
	sites := []ListSite{{Host: "h", Class: "Film", Pages: []ListPage{{URL: "/l", Doc: htmldom.Parse(b.String())}}}}
	res := ExtractLists(context.Background(), sites, idx, ListConfig{}, nil)
	if len(res.Statements) != 0 {
		t.Error("headerless table produced statements")
	}
}

func TestGeneratedListPagesParse(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 12, EntitiesPerClass: 10, AttrsPerEntity: 10})
	pages := webgen.GenerateListPages(w, 1, webgen.DefaultListConfig())
	if len(pages) != 5 {
		t.Fatalf("hosts = %d, want 5", len(pages))
	}
	for host, ps := range pages {
		for _, p := range ps {
			doc := htmldom.Parse(p.HTML)
			if doc.Find("table") == nil {
				t.Errorf("%s%s: no table", host, p.URL)
			}
			if len(p.Rows) == 0 {
				t.Errorf("%s%s: no truth rows", host, p.URL)
			}
			for _, row := range p.Rows {
				if _, ok := w.Entity(row.Entity); !ok {
					t.Errorf("%s: row entity %q unknown", host, row.Entity)
				}
			}
		}
	}
}
