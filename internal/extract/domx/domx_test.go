package domx

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"akb/internal/confidence"
	"akb/internal/extract"
	"akb/internal/htmldom"
	"akb/internal/kb"
	"akb/internal/webgen"
)

func setup(t *testing.T) (*kb.World, []Site, *extract.EntityIndex, map[string]extract.AttrSet) {
	t.Helper()
	w := kb.NewWorld(kb.WorldConfig{Seed: 5, EntitiesPerClass: 25, AttrsPerEntity: 14})
	gen := webgen.GenerateSites(w, webgen.SiteConfig{
		Seed: 5, SitesPerClass: 4, PagesPerSite: 10, AttrsPerPage: 8,
		ValueErrorRate: 0.1, NoiseNodes: 5, JitterProb: 0.3,
	})
	sites := FromWebgen(gen)
	idx := extract.NewEntityIndexFromWorld(w)
	// Seeds: the curated core attributes only — the DOM extractor must
	// discover the rest.
	seeds := make(map[string]extract.AttrSet)
	for _, cls := range w.Ontology.ClassNames() {
		s := extract.NewAttrSet()
		attrs := w.Ontology.Class(cls).AttributeNames()
		for i := 0; i < 6 && i < len(attrs); i++ {
			s.Add(attrs[i], "seed")
		}
		seeds[cls] = s
	}
	return w, sites, idx, seeds
}

func TestExtractDiscoversNewAttributes(t *testing.T) {
	w, sites, idx, seeds := setup(t)
	res := Extract(context.Background(), sites, idx, seeds, DefaultConfig(), confidence.Default())
	for _, cls := range w.Ontology.ClassNames() {
		cr := res.PerClass[cls]
		if cr == nil {
			t.Fatalf("no result for %s", cls)
		}
		if cr.Discovered.Len() == 0 {
			t.Errorf("%s: no attributes discovered", cls)
		}
		if cr.All.Len() <= seeds[cls].Len() {
			t.Errorf("%s: attribute set did not grow (%d <= %d)", cls, cr.All.Len(), seeds[cls].Len())
		}
		if cr.PagesUsed == 0 || cr.InducedPatterns == 0 {
			t.Errorf("%s: no pages/patterns used (%d, %d)", cls, cr.PagesUsed, cr.InducedPatterns)
		}
	}
}

func TestDiscoveredAttributesAreReal(t *testing.T) {
	w, sites, idx, seeds := setup(t)
	res := Extract(context.Background(), sites, idx, seeds, DefaultConfig(), nil)
	for _, cls := range w.Ontology.ClassNames() {
		class := w.Ontology.Class(cls)
		cr := res.PerClass[cls]
		bogus := 0
		for attr := range cr.Discovered {
			if _, ok := class.Attribute(attr); !ok {
				bogus++
				t.Logf("%s: discovered non-ontology attribute %q", cls, attr)
			}
		}
		// Structural matching must keep precision perfect on template
		// pages: every discovery is a genuine ontology attribute.
		if bogus > 0 {
			t.Errorf("%s: %d bogus discoveries out of %d", cls, bogus, cr.Discovered.Len())
		}
	}
}

func TestExtractStatementsQuality(t *testing.T) {
	w, sites, idx, seeds := setup(t)
	res := Extract(context.Background(), sites, idx, seeds, DefaultConfig(), confidence.Default())
	if len(res.Statements) == 0 {
		t.Fatal("no statements")
	}
	correct, total := 0, 0
	for _, s := range res.Statements {
		if err := s.Valid(); err != nil {
			t.Fatalf("invalid statement: %v", err)
		}
		if s.Provenance.Extractor != extract.ExtractorDOM {
			t.Fatalf("wrong extractor %q", s.Provenance.Extractor)
		}
		entity := extract.AttrFromIRI(s.Subject)
		e, ok := w.Entity(entity)
		if !ok {
			t.Fatalf("unknown entity %q", entity)
		}
		total++
		if w.IsTrue(e, extract.AttrFromIRI(s.Predicate), s.Object.Value) {
			correct++
		}
	}
	prec := float64(correct) / float64(total)
	// Pages carry a 10% value error rate; extraction should track it.
	if prec < 0.8 {
		t.Errorf("statement precision = %.3f (%d/%d), want >= 0.8", prec, correct, total)
	}
}

func TestSimilarityThresholdAblation(t *testing.T) {
	_, sites, idx, seeds := setup(t)
	strict := Extract(context.Background(), sites, idx, seeds, Config{SimilarityThreshold: 0.999, MaxPasses: 3}, nil)
	loose := Extract(context.Background(), sites, idx, seeds, Config{SimilarityThreshold: 0.55, MaxPasses: 3}, nil)
	var strictN, looseN int
	for _, cr := range strict.PerClass {
		strictN += cr.Discovered.Len()
	}
	for _, cr := range loose.PerClass {
		looseN += cr.Discovered.Len()
	}
	if looseN < strictN {
		t.Errorf("loose threshold discovered fewer attributes (%d) than strict (%d)", looseN, strictN)
	}
	// A loose threshold admits value nodes as attributes: recall up,
	// precision down. Verify it actually admits more junk.
	if looseN == strictN {
		t.Logf("threshold ablation flat: strict=%d loose=%d", strictN, looseN)
	}
}

func TestSeedCapStopsGrowth(t *testing.T) {
	_, sites, idx, seeds := setup(t)
	cap := seeds["Film"].Len() + 2
	res := Extract(context.Background(), sites, idx, seeds, Config{SimilarityThreshold: 0.9, MaxPasses: 3, SeedCap: cap}, nil)
	if got := res.PerClass["Film"].All.Len(); got > cap+8 {
		t.Errorf("Film attribute set = %d, want near cap %d", got, cap)
	}
	uncapped := Extract(context.Background(), sites, idx, seeds, DefaultConfig(), nil)
	if uncapped.PerClass["Film"].All.Len() <= res.PerClass["Film"].All.Len() {
		t.Error("seed cap did not reduce discovery")
	}
}

func TestNoSeedsNoDiscovery(t *testing.T) {
	_, sites, idx, _ := setup(t)
	empty := map[string]extract.AttrSet{}
	res := Extract(context.Background(), sites, idx, empty, DefaultConfig(), nil)
	for cls, cr := range res.PerClass {
		if cr.Discovered.Len() != 0 {
			t.Errorf("%s: discovered %d attributes without seeds", cls, cr.Discovered.Len())
		}
	}
}

func TestSeedGrowthTransfersAcrossSites(t *testing.T) {
	// An attribute discovered on site A becomes a seed for site B of the
	// same class: B can then induce patterns from pages where only that
	// attribute (and no original seed) appears.
	_, sites, idx, seeds := setup(t)
	res := Extract(context.Background(), sites, idx, seeds, DefaultConfig(), nil)
	film := res.PerClass["Film"]
	multiHost := 0
	for _, ev := range film.Discovered {
		if len(ev.Sources) > 1 {
			multiHost++
		}
	}
	if multiHost == 0 {
		t.Error("no discovered attribute observed on multiple hosts")
	}
}

func TestFindEntityNodeSkipsHead(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 5, EntitiesPerClass: 3, AttrsPerEntity: 8})
	idx := extract.NewEntityIndexFromWorld(w)
	name := w.EntityNames("Book")[0]
	doc := htmldom.Parse("<html><head><title>" + name + "</title></head><body><h1>" + name + "</h1></body></html>")
	got, node := findEntityNode(doc, idx, "Book")
	if got != name || node == nil {
		t.Fatalf("entity not found: %q", got)
	}
	if underHead(node) {
		t.Error("entity node found inside head")
	}
}

func TestValueAfter(t *testing.T) {
	doc := htmldom.Parse(`<div><p>Director:</p><p>Jane Doe</p><p>Genre:</p><p></p></div>`)
	texts := doc.TextNodes()
	if got := valueAfter(texts, 0); got != "Jane Doe" {
		t.Errorf("valueAfter label = %q, want Jane Doe", got)
	}
	// The node after "Genre:" is missing; adjacent labels yield nothing.
	doc2 := htmldom.Parse(`<div><p>Director:</p><p>Genre:</p><p>Drama</p></div>`)
	texts2 := doc2.TextNodes()
	if got := valueAfter(texts2, 0); got != "" {
		t.Errorf("adjacent-label valueAfter = %q, want empty", got)
	}
	if got := valueAfter(texts2, len(texts2)-1); got != "" {
		t.Errorf("last-node valueAfter = %q, want empty", got)
	}
}

func TestExtractDeterministic(t *testing.T) {
	_, sites, idx, seeds := setup(t)
	a := Extract(context.Background(), sites, idx, seeds, DefaultConfig(), confidence.Default())
	b := Extract(context.Background(), sites, idx, seeds, DefaultConfig(), confidence.Default())
	if len(a.Statements) != len(b.Statements) {
		t.Fatalf("statement counts differ: %d vs %d", len(a.Statements), len(b.Statements))
	}
	for i := range a.Statements {
		if a.Statements[i].String() != b.Statements[i].String() {
			t.Fatalf("statement %d differs", i)
		}
	}
}

func TestStatementValuesComeFromPages(t *testing.T) {
	w, sites, idx, seeds := setup(t)
	gen := webgen.GenerateSites(w, webgen.SiteConfig{
		Seed: 5, SitesPerClass: 4, PagesPerSite: 10, AttrsPerPage: 8,
		ValueErrorRate: 0.1, NoiseNodes: 5, JitterProb: 0.3,
	})
	// Build the set of values rendered anywhere.
	rendered := map[string]bool{}
	for _, s := range gen {
		for _, p := range s.Pages {
			for _, pair := range p.Truth {
				rendered[pair.Value] = true
			}
		}
	}
	res := Extract(context.Background(), sites, idx, seeds, DefaultConfig(), nil)
	for _, s := range res.Statements {
		v := s.Object.Value
		if !rendered[v] && !strings.HasSuffix(v, ":") {
			t.Errorf("extracted value %q never rendered on any page", v)
		}
	}
}

// TestParallelMatchesSerial pins the determinism contract of per-class
// sharding: any worker count yields byte-identical results, including
// entity discovery output order.
func TestParallelMatchesSerial(t *testing.T) {
	_, sites, idx, seeds := setup(t)
	cfg := DefaultConfig()
	cfg.DiscoverEntities = true
	serial := Extract(context.Background(), sites, idx, seeds, cfg, confidence.Default())
	for _, workers := range []int{2, 8} {
		pcfg := cfg
		pcfg.Workers = workers
		par := Extract(context.Background(), sites, idx, seeds, pcfg, confidence.Default())
		if !reflect.DeepEqual(par.Statements, serial.Statements) {
			t.Errorf("workers=%d: statements differ from serial", workers)
		}
		if !reflect.DeepEqual(par.NewEntityFacts, serial.NewEntityFacts) {
			t.Errorf("workers=%d: entity facts differ from serial", workers)
		}
		if !reflect.DeepEqual(par.Classes(), serial.Classes()) {
			t.Fatalf("workers=%d: classes differ", workers)
		}
		for cls, scr := range serial.PerClass {
			pcr := par.PerClass[cls]
			if pcr.All.Len() != scr.All.Len() || pcr.Discovered.Len() != scr.Discovered.Len() ||
				pcr.PagesUsed != scr.PagesUsed || pcr.InducedPatterns != scr.InducedPatterns {
				t.Errorf("workers=%d: class %s result differs from serial", workers, cls)
			}
		}
	}
}

// TestRunShardAllocationBound pins the shard extraction path's allocation
// behaviour: per-page text, label, tag-path and value caches are built
// once per page and shared across the fixpoint passes, so allocations per
// page stay bounded instead of growing with MaxPasses × candidate-set
// sweeps as the uncached implementation did.
func TestRunShardAllocationBound(t *testing.T) {
	_, sites, idx, seeds := setup(t)
	cfg := DefaultConfig()
	cfg.SimilarityThreshold = 0.9
	cfg.MaxPasses = 3
	cfg.Step = htmldom.QualifiedStep
	crit := confidence.Default()
	sh := shardByClass(sites)[0]
	pages := 0
	for _, s := range sh.sites {
		pages += len(s.Pages)
	}
	allocs := testing.AllocsPerRun(10, func() { runShard(sh, idx, seeds, cfg, crit) })
	// Currently ~2.7k allocations per page on this fixture (cache
	// construction plus claim assembly); 4k leaves headroom while still
	// tripping if a pass stops reusing the caches (each uncached pass
	// re-derives every node's path and normalised text).
	if limit := float64(4000 * pages); allocs > limit {
		t.Errorf("runShard allocates %.0f times for %d pages, want <= %.0f", allocs, pages, limit)
	}
}
