package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// RunReportSchemaVersion is the current RunReport JSON layout version.
// Version history:
//
//	0 (implicit) — original layout, no schema_version field
//	1 — schema_version stamped; layout otherwise identical to 0
const RunReportSchemaVersion = 1

// RunReport is the machine-readable record of one pipeline run: every
// span, every metric, and the caller's health report (serialised as raw
// JSON so obs stays dependency-free). It is the artifact `akb pipeline
// -report` writes, `akb report` renders, and the benchmark run appends to
// the perf trajectory.
type RunReport struct {
	// SchemaVersion identifies the report layout. Zero means a legacy
	// (pre-versioning) report; readers accept 0..RunReportSchemaVersion.
	SchemaVersion int `json:"schema_version,omitempty"`
	// Started is when the telemetry run was created.
	Started time.Time `json:"started"`
	// DurationNS is wall time from run start to export.
	DurationNS int64 `json:"duration_ns"`
	// Spans lists every recorded span in start order; parent id 0 marks a
	// root (stage-level) span.
	Spans []SpanReport `json:"spans"`
	// Metrics is the sorted registry snapshot.
	Metrics []Metric `json:"metrics"`
	// Health is the embedded health report (e.g. core.HealthReport), if
	// the caller supplied one.
	Health json.RawMessage `json:"health,omitempty"`
}

// Report exports the run: a snapshot of all spans and metrics plus the
// marshalled health value (nil health is omitted).
func (r *Run) Report(health any) (*RunReport, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: Report on nil Run")
	}
	rr := &RunReport{
		SchemaVersion: RunReportSchemaVersion,
		Started:       r.started,
		DurationNS:    r.trace.clock().Sub(r.started).Nanoseconds(),
		Spans:         r.trace.Snapshot(),
		Metrics:       r.reg.Snapshot(),
	}
	if health != nil {
		raw, err := json.Marshal(health)
		if err != nil {
			return nil, fmt.Errorf("obs: marshal health: %w", err)
		}
		rr.Health = raw
	}
	return rr, nil
}

// RootSpans returns the report's root spans (parent id 0) in start order —
// one per supervised pipeline stage.
func (rr *RunReport) RootSpans() []SpanReport {
	var out []SpanReport
	for _, s := range rr.Spans {
		if s.Parent == 0 {
			out = append(out, s)
		}
	}
	return out
}

// Children returns the direct children of the span with the given id, in
// start order.
func (rr *RunReport) Children(id int) []SpanReport {
	var out []SpanReport
	for _, s := range rr.Spans {
		if s.Parent == id {
			out = append(out, s)
		}
	}
	return out
}

// Metric returns the named metric from the snapshot.
func (rr *RunReport) Metric(name string) (Metric, bool) {
	for _, m := range rr.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// WriteJSON serialises the report as stable, indented JSON.
func (rr *RunReport) WriteJSON(w io.Writer) error { return WriteJSON(w, rr) }

// ReadRunReport decodes a report previously written with WriteJSON. Both
// versioned reports and legacy ones without a schema_version field (read
// back as version 0) are accepted; reports from a future layout are
// rejected so old tooling fails loudly instead of misrendering them.
func ReadRunReport(r io.Reader) (*RunReport, error) {
	var rr RunReport
	if err := json.NewDecoder(r).Decode(&rr); err != nil {
		return nil, fmt.Errorf("obs: decode run report: %w", err)
	}
	if rr.SchemaVersion < 0 || rr.SchemaVersion > RunReportSchemaVersion {
		return nil, fmt.Errorf("obs: unsupported run report schema_version %d (this build reads 0..%d)",
			rr.SchemaVersion, RunReportSchemaVersion)
	}
	return &rr, nil
}

// WriteJSON is the shared JSON exporter: two-space indented, key-stable
// (maps marshal with sorted keys), newline-terminated. Every diffable
// artifact the CLI writes (run reports, chaos sweeps, bench records) goes
// through it so outputs stay comparable across PRs.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
