package obs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a deterministic clock that advances a fixed step per call,
// so span timings (and exported JSON) are exactly reproducible.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{
		now:  time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		step: time.Millisecond,
	}
}

func (c *fakeClock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// TestSpanNesting walks the context plumbing end to end: a root span, a
// child started from the root's context, and a sibling root — checking
// parent ids, Current, and start-order ids in the snapshot.
func TestSpanNesting(t *testing.T) {
	run := NewRunAt(newFakeClock().Now)
	ctx := Into(context.Background(), run)

	rootCtx, root := StartSpan(ctx, "stage")
	if Current(rootCtx) != root {
		t.Fatal("root span is not current in its derived context")
	}
	childCtx, child := StartSpan(rootCtx, "stage/attempt")
	child.AnnotateInt("attempt", 1)
	if Current(childCtx) != child {
		t.Fatal("child span is not current in its derived context")
	}
	child.End()
	root.End()
	// A span started from the original context is a new root, not a child
	// of the ended stage.
	_, sibling := StartSpan(ctx, "stage2")
	sibling.End()

	spans := run.Trace().Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "stage" || spans[0].Parent != 0 || spans[0].ID != 1 {
		t.Fatalf("root = %+v", spans[0])
	}
	if spans[1].Name != "stage/attempt" || spans[1].Parent != spans[0].ID {
		t.Fatalf("child = %+v, want parent %d", spans[1], spans[0].ID)
	}
	if spans[1].Attr("attempt") != "1" {
		t.Fatalf("child attrs = %v", spans[1].Attrs)
	}
	if spans[2].Name != "stage2" || spans[2].Parent != 0 {
		t.Fatalf("sibling = %+v, want a root span", spans[2])
	}
	for _, s := range spans {
		if s.Duration() <= 0 {
			t.Fatalf("span %q has non-positive duration %v", s.Name, s.Duration())
		}
	}
}

// TestStartSpanWithoutRun checks the disabled-telemetry path: the context
// comes back unchanged, the span is nil, and every span method no-ops.
func TestStartSpanWithoutRun(t *testing.T) {
	ctx := context.Background()
	got, span := StartSpan(ctx, "stage")
	if got != ctx {
		t.Fatal("context changed without a telemetry run")
	}
	if span != nil {
		t.Fatal("got a span without a telemetry run")
	}
	span.Annotate("k", "v")
	span.AnnotateInt("n", 1)
	span.RecordError(errors.New("boom"))
	span.End()
	if Current(ctx) != nil {
		t.Fatal("Current on a bare context is non-nil")
	}
	if FromContext(nil) != nil || Current(nil) != nil {
		t.Fatal("nil context lookups are non-nil")
	}
}

// TestSpanEndTwice checks the first End wins.
func TestSpanEndTwice(t *testing.T) {
	clk := newFakeClock()
	run := NewRunAt(clk.Now)
	_, span := StartSpan(Into(context.Background(), run), "stage")
	span.End()
	first := run.Trace().Snapshot()[0].DurationNS
	clk.now = clk.now.Add(time.Hour)
	span.End()
	if again := run.Trace().Snapshot()[0].DurationNS; again != first {
		t.Fatalf("second End moved duration from %d to %d", first, again)
	}
}

// TestOpenSpanDuration checks that a snapshot reports duration-so-far for
// spans still open at export time.
func TestOpenSpanDuration(t *testing.T) {
	run := NewRunAt(newFakeClock().Now)
	_, span := StartSpan(Into(context.Background(), run), "open")
	sr := run.Trace().Snapshot()[0]
	if sr.Duration() <= 0 {
		t.Fatalf("open span duration = %v, want > 0", sr.Duration())
	}
	span.End()
}

// TestRecordError annotates and exports the error string; nil errors are
// ignored.
func TestRecordError(t *testing.T) {
	run := NewRunAt(newFakeClock().Now)
	_, span := StartSpan(Into(context.Background(), run), "stage")
	span.RecordError(nil)
	span.RecordError(errors.New("stage exploded"))
	span.End()
	if got := run.Trace().Snapshot()[0].Error; got != "stage exploded" {
		t.Fatalf("error = %q", got)
	}
}

// TestSpanRetentionLimit caps the trace and checks spans past the cap are
// handed out detached: usable, uncounted, not exported.
func TestSpanRetentionLimit(t *testing.T) {
	run := NewRunAt(newFakeClock().Now)
	run.Trace().SetLimit(2)
	ctx := Into(context.Background(), run)
	for i := 0; i < 5; i++ {
		_, span := StartSpan(ctx, "req")
		span.Annotate("k", "v") // must not panic on a detached span
		span.End()
	}
	if got := len(run.Trace().Snapshot()); got != 2 {
		t.Fatalf("retained %d spans, want 2", got)
	}
	if got := run.Trace().Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	run.Trace().SetLimit(0)
	_, span := StartSpan(ctx, "more")
	span.End()
	if got := len(run.Trace().Snapshot()); got != 3 {
		t.Fatalf("after lifting the limit retained %d spans, want 3", got)
	}
}
