package obs

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRun replays a fixed miniature pipeline on the fake clock: two
// stages (one with a child attempt and an error), a counter, a gauge and
// a histogram. Every timestamp comes from the deterministic clock, so the
// exported JSON is byte-stable.
func goldenRun() *Run {
	run := NewRunAt(newFakeClock().Now)
	ctx := Into(context.Background(), run)

	stageCtx, stage := StartSpan(ctx, "extract/kbx")
	_, attempt := StartSpan(stageCtx, "extract/kbx/attempt")
	attempt.AnnotateInt("attempt", 1)
	attempt.AnnotateInt("statements", 42)
	attempt.End()
	stage.AnnotateInt("attempts", 1)
	stage.Annotate("health", "ok")
	stage.End()

	_, failed := StartSpan(ctx, "fusion")
	failed.RecordError(errors.New("injected fault"))
	failed.End()

	reg := Reg(ctx)
	reg.Counter("akb_kbx_statements_total").Add(42)
	reg.Gauge("akb_fusion_sources").Set(7)
	h := reg.Histogram("akb_resilience_stage_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	return run
}

type goldenHealth struct {
	Stages []string `json:"stages"`
}

// TestRunReportGolden pins the full RunReport JSON shape — span fields,
// metric encoding, embedded health — against a checked-in golden file.
// Run with -update to regenerate after an intentional format change.
func TestRunReportGolden(t *testing.T) {
	rr, err := goldenRun().Report(goldenHealth{Stages: []string{"extract/kbx", "fusion"}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "runreport.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with go test ./internal/obs -run Golden -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("RunReport JSON drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestRunReportRoundTrip checks WriteJSON/ReadRunReport symmetry and the
// report accessors used by the akb report renderer.
func TestRunReportRoundTrip(t *testing.T) {
	rr, err := goldenRun().Report(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRunReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	roots := back.RootSpans()
	if len(roots) != 2 || roots[0].Name != "extract/kbx" || roots[1].Name != "fusion" {
		t.Fatalf("roots = %+v", roots)
	}
	kids := back.Children(roots[0].ID)
	if len(kids) != 1 || kids[0].Attr("statements") != "42" {
		t.Fatalf("children = %+v", kids)
	}
	if len(back.Children(roots[1].ID)) != 0 {
		t.Fatal("fusion span has unexpected children")
	}
	m, ok := back.Metric("akb_kbx_statements_total")
	if !ok || m.Value != 42 || m.Kind != "counter" {
		t.Fatalf("metric = %+v ok=%v", m, ok)
	}
	hist, ok := back.Metric("akb_resilience_stage_seconds")
	if !ok || hist.Count != 3 || hist.Overflow != 1 {
		t.Fatalf("histogram = %+v ok=%v", hist, ok)
	}
	if roots[1].Error != "injected fault" {
		t.Fatalf("error = %q", roots[1].Error)
	}
	if back.DurationNS <= 0 {
		t.Fatal("non-positive run duration")
	}
	if back.SchemaVersion != RunReportSchemaVersion {
		t.Fatalf("schema version = %d, want %d", back.SchemaVersion, RunReportSchemaVersion)
	}
}

// TestReadRunReportVersions pins the compatibility contract: legacy
// reports without a schema_version field read as version 0; future
// versions are rejected.
func TestReadRunReportVersions(t *testing.T) {
	legacy := `{"started":"2025-01-01T00:00:00Z","duration_ns":5,"spans":[],"metrics":[]}`
	rr, err := ReadRunReport(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy report rejected: %v", err)
	}
	if rr.SchemaVersion != 0 {
		t.Fatalf("legacy schema version = %d, want 0", rr.SchemaVersion)
	}

	future := `{"schema_version":99,"started":"2025-01-01T00:00:00Z"}`
	if _, err := ReadRunReport(strings.NewReader(future)); err == nil ||
		!strings.Contains(err.Error(), "unsupported run report schema_version") {
		t.Fatalf("future report err = %v", err)
	}
}

// TestReportOnNilRun checks the one obs entry point that is not nil-safe
// by design: exporting a report requires a run.
func TestReportOnNilRun(t *testing.T) {
	var run *Run
	if _, err := run.Report(nil); err == nil {
		t.Fatal("Report on nil run did not error")
	}
	if run.Registry() != nil || run.Trace() != nil {
		t.Fatal("nil run handed out non-nil components")
	}
}
