// Package obs is the pipeline's dependency-free telemetry layer: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms), lightweight span tracing with parent/child nesting, and a
// JSON exporter that serialises a full run — spans, metrics and the
// caller's health report — into a machine-readable RunReport.
//
// Instrumented code never checks whether telemetry is enabled: every
// accessor is nil-safe, so `obs.Reg(ctx).Counter("akb_x_total").Inc()` and
// `ctx, span := obs.StartSpan(ctx, "stage")` are no-ops (and allocation
// free on the metrics side) when the context carries no *Run. Metric names
// follow the `akb_<layer>_<name>` convention (DESIGN.md §8).
//
// The package imports only the standard library so every layer — the
// resilience supervisor, the mapreduce executor, the extractors, fusion
// and the CLI — can depend on it without cycles.
package obs

import (
	"context"
	"time"
)

// Run owns one pipeline run's telemetry: a metrics registry and a span
// trace sharing a clock. The zero value is not usable; use NewRun.
type Run struct {
	reg     *Registry
	trace   *Trace
	started time.Time
}

// NewRun builds a telemetry run using the wall clock.
func NewRun() *Run { return NewRunAt(time.Now) }

// NewRunAt builds a telemetry run on a caller-supplied clock. Tests use a
// fake clock so span timings — and therefore exported JSON — are exactly
// reproducible.
func NewRunAt(clock func() time.Time) *Run {
	if clock == nil {
		clock = time.Now
	}
	return &Run{
		reg:     NewRegistry(),
		trace:   &Trace{clock: clock},
		started: clock(),
	}
}

// Registry returns the run's metrics registry; nil-safe (a nil *Run yields
// a nil *Registry whose methods are all no-ops).
func (r *Run) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Trace returns the run's span trace; nil-safe.
func (r *Run) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// --- context plumbing -----------------------------------------------------

type runKey struct{}
type spanKey struct{}

// Into attaches a telemetry run to the context. Everything downstream that
// uses obs.Reg or obs.StartSpan on the derived context records into run.
func Into(ctx context.Context, run *Run) context.Context {
	if run == nil {
		return ctx
	}
	return context.WithValue(ctx, runKey{}, run)
}

// FromContext returns the context's telemetry run, or nil when telemetry
// is not enabled.
func FromContext(ctx context.Context) *Run {
	if ctx == nil {
		return nil
	}
	run, _ := ctx.Value(runKey{}).(*Run)
	return run
}

// Reg returns the context's metrics registry (nil, and therefore no-op,
// when telemetry is off).
func Reg(ctx context.Context) *Registry {
	return FromContext(ctx).Registry()
}

// StartSpan opens a span named name as a child of the context's current
// span (a root span when there is none) and returns a derived context in
// which the new span is current. When the context carries no telemetry run
// it returns the context unchanged and a nil span whose methods no-op.
// Callers must End the span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	run := FromContext(ctx)
	if run == nil {
		return ctx, nil
	}
	parent := 0
	if cur := Current(ctx); cur != nil {
		parent = cur.id
	}
	span := run.trace.start(name, parent)
	return context.WithValue(ctx, spanKey{}, span), span
}

// Current returns the context's innermost open span, or nil.
func Current(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	span, _ := ctx.Value(spanKey{}).(*Span)
	return span
}
