package obs

import (
	"sync"
	"testing"
)

// TestCounterBasics checks monotonic counter semantics: Inc and positive
// Add accumulate, zero and negative deltas are ignored.
func TestCounterBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("akb_test_total")
	c.Inc()
	c.Add(4)
	c.Add(0)
	c.Add(-10)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("akb_test_total") != c {
		t.Fatal("repeated lookup returned a different counter instance")
	}
}

func TestGaugeBasics(t *testing.T) {
	g := NewRegistry().Gauge("akb_test_gauge")
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-4)
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
}

// TestHistogramBucketBoundaries pins the bucketing rule: an observation
// lands in the first bucket whose inclusive upper bound is >= the value,
// and values above every bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("akb_test_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3.9, 4, 5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	m, ok := snapshotMetric(reg, "akb_test_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// 0.5 and 1 -> le=1; 1.0000001 and 2 -> le=2; 3.9 and 4 -> le=4;
	// 5 and 100 -> overflow.
	want := map[float64]int64{1: 2, 2: 2, 4: 2}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want bounds %v", m.Buckets, want)
	}
	for _, b := range m.Buckets {
		if want[b.LE] != b.Count {
			t.Errorf("bucket le=%v count=%d, want %d", b.LE, b.Count, want[b.LE])
		}
	}
	if m.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", m.Overflow)
	}
	if m.Sum != 0.5+1+1.0000001+2+3.9+4+5+100 {
		t.Errorf("sum = %v", m.Sum)
	}
}

// TestHistogramUnsortedBoundsAreSorted checks that bounds are copied and
// sorted on creation, so callers can pass literals in any order.
func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	reg := NewRegistry()
	bounds := []float64{4, 1, 2}
	h := reg.Histogram("akb_test_unsorted", bounds)
	h.Observe(1.5)
	m, _ := snapshotMetric(reg, "akb_test_unsorted")
	if len(m.Buckets) != 1 || m.Buckets[0].LE != 2 {
		t.Fatalf("observation of 1.5 landed in %+v, want le=2", m.Buckets)
	}
	if bounds[0] != 4 {
		t.Fatal("caller's bounds slice was mutated")
	}
}

// TestNilSafety exercises every method on nil receivers and a nil
// registry: instrumented code must never branch on telemetry being on.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Counter("x").Add(3)
	reg.Gauge("x").Set(1)
	reg.Gauge("x").Add(1)
	reg.Histogram("x", nil).Observe(1)
	if reg.Counter("x").Value() != 0 || reg.Gauge("x").Value() != 0 {
		t.Fatal("nil metrics returned non-zero values")
	}
	if reg.Histogram("x", nil).Count() != 0 || reg.Histogram("x", nil).Sum() != 0 {
		t.Fatal("nil histogram returned non-zero values")
	}
	if got := reg.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %v, want empty", got)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// creating, updating and snapshotting the same names — and relies on the
// race detector (CI runs go test -race) to catch unsynchronised access.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("akb_test_total").Inc()
				reg.Gauge("akb_test_gauge").Add(1)
				reg.Histogram("akb_test_seconds", FanoutBuckets()).Observe(float64(i % 10))
				if i%100 == 0 {
					reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("akb_test_total").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := reg.Gauge("akb_test_gauge").Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := reg.Histogram("akb_test_seconds", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestSnapshotSortedAndFiltered checks the export contract: metrics sort
// by name and only non-empty histogram buckets are emitted.
func TestSnapshotSortedAndFiltered(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("akb_z_total").Inc()
	reg.Counter("akb_a_total").Inc()
	reg.Histogram("akb_m_seconds", []float64{1, 2, 3}).Observe(2.5)
	snap := reg.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	m, _ := snapshotMetric(reg, "akb_m_seconds")
	if len(m.Buckets) != 1 || m.Buckets[0].LE != 3 || m.Buckets[0].Count != 1 {
		t.Fatalf("buckets = %+v, want only le=3 count=1", m.Buckets)
	}
}

func snapshotMetric(reg *Registry, name string) (Metric, bool) {
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}
