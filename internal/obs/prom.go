package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the exposition WritePrometheus
// emits: the classic Prometheus text format, which every Prometheus
// server and the OpenMetrics-era scrapers both accept.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4):
//
//   - one `# TYPE` line per metric family, families sorted by name,
//     series within a family sorted by label set;
//   - counters and gauges as single samples, with their label sets
//     rendered and escaped;
//   - histograms as cumulative `_bucket{le="..."}` samples over every
//     configured bound plus the `+Inf` bucket, then `_sum` and `_count`;
//   - a trailing `# EOF` marker so strict OpenMetrics parsers see a
//     complete exposition.
//
// Output is deterministic for a fixed metric state, which is what lets a
// golden test pin the whole format. A nil registry writes only the EOF
// marker. Metric and label names are sanitised to the Prometheus
// grammar; label values are escaped per the exposition spec.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, fam := range r.promFamilies() {
		b.WriteString("# TYPE ")
		b.WriteString(fam.name)
		b.WriteByte(' ')
		b.WriteString(fam.kind)
		b.WriteByte('\n')
		for _, s := range fam.series {
			if fam.kind == "histogram" {
				writePromHistogram(&b, fam.name, s)
				continue
			}
			b.WriteString(fam.name)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(formatPromValue(s.value))
			b.WriteByte('\n')
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// promSeries is one sample (or, for histograms, one series) ready to
// render: labels are already sorted, escaped and wrapped in braces.
type promSeries struct {
	key    string // registry series key, the within-family sort key
	labels string // rendered label set, "" when unlabeled
	value  float64

	// histogram-only fields
	bounds []float64
	cum    []int64 // cumulative count at each bound
	count  int64
	sum    float64
}

// promFamily groups every series sharing a (sanitised) name and kind.
type promFamily struct {
	name   string
	kind   string
	series []promSeries
}

// promFamilies snapshots the registry into render-ready families. Unlike
// Snapshot it keeps zero-count histogram buckets: the exposition format
// wants every bound present so cumulative counts parse unambiguously.
func (r *Registry) promFamilies() []promFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make(map[string]*promFamily)
	add := func(name, kind string, s promSeries) {
		name = sanitizeMetricName(name)
		fkey := name + " " + kind
		fam, ok := fams[fkey]
		if !ok {
			fam = &promFamily{name: name, kind: kind}
			fams[fkey] = fam
		}
		fam.series = append(fam.series, s)
	}
	for key, s := range r.counters {
		add(s.name, "counter", promSeries{key: key, labels: renderLabels(s.labels), value: float64(s.c.Value())})
	}
	for key, s := range r.gauges {
		add(s.name, "gauge", promSeries{key: key, labels: renderLabels(s.labels), value: s.g.Value()})
	}
	for key, s := range r.hists {
		h := s.h
		h.mu.Lock()
		ps := promSeries{key: key, count: h.count, sum: h.sum}
		ps.bounds = append(ps.bounds, h.bounds...)
		var cum int64
		for i := range h.bounds {
			cum += h.counts[i]
			ps.cum = append(ps.cum, cum)
		}
		h.mu.Unlock()
		add(s.name, "histogram", ps)
	}
	out := make([]promFamily, 0, len(fams))
	for _, fam := range fams {
		sort.Slice(fam.series, func(i, j int) bool { return fam.series[i].key < fam.series[j].key })
		out = append(out, *fam)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].kind < out[j].kind
	})
	return out
}

// writePromHistogram renders one histogram series: cumulative buckets
// over every bound, the +Inf bucket (== _count), then _sum and _count.
func writePromHistogram(b *strings.Builder, name string, s promSeries) {
	for i, bound := range s.bounds {
		b.WriteString(name)
		b.WriteString(`_bucket{le="`)
		b.WriteString(formatPromValue(bound))
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatInt(s.cum[i], 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString(`_bucket{le="+Inf"} `)
	b.WriteString(strconv.FormatInt(s.count, 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_sum ")
	b.WriteString(formatPromValue(s.sum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count ")
	b.WriteString(strconv.FormatInt(s.count, 10))
	b.WriteByte('\n')
}

// renderLabels renders a label set as {k="v",...} with keys sorted,
// names sanitised and values escaped; "" for an empty set.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelValueEscaper implements the exposition format's label-value
// escaping: backslash, double quote and line feed.
var labelValueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelValueEscaper.Replace(v) }

// sanitizeMetricName maps a name onto the metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing invalid runes with '_'.
func sanitizeMetricName(name string) string {
	return sanitizeName(name, true)
}

// sanitizeLabelName maps a name onto the label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	return sanitizeName(name, false)
}

func sanitizeName(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0) || (allowColon && c == ':')
		if ok {
			b = append(b, c)
		} else {
			b = append(b, '_')
		}
	}
	return string(b)
}

// formatPromValue renders a float the way Prometheus expositions
// conventionally do: shortest round-trip representation.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
