// Package logx is the serving path's structured logger: leveled JSON
// lines with deterministic key order, an injectable clock and writer,
// and bound fields for per-component context. One log call emits exactly
// one newline-terminated JSON object:
//
//	{"ts":"2026-08-08T12:00:00Z","level":"info","msg":"request","id":"ab12","status":200}
//
// Keys appear in emission order — ts, level, msg, then bound fields,
// then the call's own pairs — not sorted, so a human tailing the log and
// a parser ingesting it see the same stable shape. With a fixed clock
// the output is byte-reproducible, which is how the access-log tests pin
// whole lines.
//
// Like the rest of internal/obs, every method is safe on a nil *Logger:
// a disabled access log is a nil pointer, not a branch at every call
// site. The package imports only the standard library.
package logx

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	Debug Level = iota
	Info
	Warn
	Error
)

func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int8(l))
}

// ParseLevel maps a level name ("debug", "info", "warn", "error",
// case-insensitive) to its Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return Debug, nil
	case "info":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("logx: unknown level %q", s)
}

// Logger emits leveled JSON lines. Create with New; derive scoped
// loggers with With. All methods are safe for concurrent use (one
// mutex serialises writes across a logger and everything derived from
// it) and no-ops on a nil receiver.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	clock func() time.Time
	base  []field
}

type field struct {
	key string
	val any
}

// Option configures a Logger at construction.
type Option func(*Logger)

// WithLevel drops log calls below min.
func WithLevel(min Level) Option { return func(l *Logger) { l.min = min } }

// WithClock substitutes the timestamp source; tests inject a fixed
// clock for byte-stable lines.
func WithClock(clock func() time.Time) Option {
	return func(l *Logger) {
		if clock != nil {
			l.clock = clock
		}
	}
}

// New builds a logger writing to w at Info level by default.
func New(w io.Writer, opts ...Option) *Logger {
	l := &Logger{mu: &sync.Mutex{}, w: w, min: Info, clock: time.Now}
	for _, opt := range opts {
		opt(l)
	}
	return l
}

// With returns a derived logger whose lines always carry the given
// key/value pairs (after ts/level/msg, before per-call pairs). The
// derived logger shares the parent's writer, level and mutex.
func (l *Logger) With(keyvals ...any) *Logger {
	if l == nil {
		return nil
	}
	d := &Logger{mu: l.mu, w: l.w, min: l.min, clock: l.clock}
	d.base = append(append([]field{}, l.base...), pairFields(keyvals)...)
	return d
}

// Debugf-style helpers are deliberately absent: one message string plus
// key/value pairs keeps lines parseable.

// Debug logs at debug level.
func (l *Logger) Debug(msg string, keyvals ...any) { l.log(Debug, msg, keyvals) }

// Info logs at info level.
func (l *Logger) Info(msg string, keyvals ...any) { l.log(Info, msg, keyvals) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, keyvals ...any) { l.log(Warn, msg, keyvals) }

// Error logs at error level.
func (l *Logger) Error(msg string, keyvals ...any) { l.log(Error, msg, keyvals) }

func (l *Logger) log(lvl Level, msg string, keyvals []any) {
	if l == nil || lvl < l.min || l.w == nil {
		return
	}
	var b []byte
	b = append(b, `{"ts":`...)
	b = appendJSONString(b, l.clock().UTC().Format(time.RFC3339Nano))
	b = append(b, `,"level":`...)
	b = appendJSONString(b, lvl.String())
	b = append(b, `,"msg":`...)
	b = appendJSONString(b, msg)
	for _, f := range l.base {
		b = appendField(b, f)
	}
	for _, f := range pairFields(keyvals) {
		b = appendField(b, f)
	}
	b = append(b, '}', '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(b)
}

// pairFields folds a variadic key/value list into fields: keys are
// stringified, a trailing key without a value gets "(MISSING)".
func pairFields(keyvals []any) []field {
	out := make([]field, 0, (len(keyvals)+1)/2)
	for i := 0; i < len(keyvals); i += 2 {
		key, ok := keyvals[i].(string)
		if !ok {
			key = fmt.Sprint(keyvals[i])
		}
		var val any = "(MISSING)"
		if i+1 < len(keyvals) {
			val = keyvals[i+1]
		}
		out = append(out, field{key, val})
	}
	return out
}

func appendField(b []byte, f field) []byte {
	b = append(b, ',')
	b = appendJSONString(b, f.key)
	b = append(b, ':')
	return appendJSONValue(b, f.val)
}

// appendJSONValue marshals one field value. Errors and Stringers become
// their message text; anything json.Marshal rejects falls back to its
// fmt representation, so a log call can never fail.
func appendJSONValue(b []byte, v any) []byte {
	switch t := v.(type) {
	case error:
		return appendJSONString(b, t.Error())
	case time.Duration:
		return appendJSONString(b, t.String())
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return appendJSONString(b, fmt.Sprint(v))
	}
	return append(b, raw...)
}

func appendJSONString(b []byte, s string) []byte {
	raw, err := json.Marshal(s)
	if err != nil { // unreachable: a string always marshals
		return append(b, `""`...)
	}
	return append(b, raw...)
}
