package logx

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a deterministic, advancing clock (locked, since the
// logger may read it from many goroutines).
func fixedClock() func() time.Time {
	var mu sync.Mutex
	t := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Second)
		return t
	}
}

func TestLineFormatDeterministic(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, WithClock(fixedClock()))
	log.Info("request", "id", "ab12", "status", 200, "dur", 1500*time.Microsecond)
	want := `{"ts":"2026-08-08T12:00:01Z","level":"info","msg":"request","id":"ab12","status":200,"dur":"1.5ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("line =\n%q\nwant\n%q", got, want)
	}
}

func TestEveryLineIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, WithClock(fixedClock()), WithLevel(Debug))
	log.Debug("debugging", "deep", map[string]int{"a": 1})
	log.Info("quotes", "k", `va"l\ue`+"\n")
	log.Warn("odd pair", "lonely")
	log.Error("failed", "err", errors.New("boom"), 42, "non-string key")
	log.Info("unmarshalable", "ch", make(chan int))
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %q is not valid JSON: %v", line, err)
			continue
		}
		for _, k := range []string{"ts", "level", "msg"} {
			if _, ok := m[k]; !ok {
				t.Errorf("line %q missing %q", line, k)
			}
		}
	}
	var odd map[string]any
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	json.Unmarshal([]byte(lines[2]), &odd)
	if odd["lonely"] != "(MISSING)" {
		t.Errorf("odd trailing key = %v", odd["lonely"])
	}
	var withErr map[string]any
	json.Unmarshal([]byte(lines[3]), &withErr)
	if withErr["err"] != "boom" {
		t.Errorf("error field = %v", withErr["err"])
	}
	if withErr["42"] != "non-string key" {
		t.Errorf("non-string key handling = %v", withErr)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, WithClock(fixedClock()), WithLevel(Warn))
	log.Debug("nope")
	log.Info("nope")
	log.Warn("yes")
	log.Error("yes")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("emitted %d lines, want 2:\n%s", got, buf.String())
	}
}

func TestWithBindsFields(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, WithClock(fixedClock())).With("component", "serve")
	log.Info("reload", "generation", 3)
	want := `{"ts":"2026-08-08T12:00:01Z","level":"info","msg":"reload","component":"serve","generation":3}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("line =\n%q\nwant\n%q", got, want)
	}
}

func TestNilLoggerNoOps(t *testing.T) {
	var log *Logger
	log.Info("into the void", "k", "v")
	log.With("a", "b").Error("still nothing")
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": Debug, "INFO": Info, "Warn": Warn, "warning": Warn, "error": Error,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestConcurrentLogging(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, WithClock(fixedClock()))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				log.Info("tick", "worker", i, "j", j)
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved write produced bad JSON: %q", line)
		}
	}
}
