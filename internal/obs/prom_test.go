package obs

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// promTestRegistry builds the fixture behind the golden exposition: one
// plain counter, a labeled counter family with two series, a labeled
// gauge (the build_info shape), a plain gauge, and a histogram whose
// observations are exact binary fractions so the golden file is stable
// across platforms.
func promTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("akb_serve_requests_total").Add(42)
	reg.CounterWith("akb_reqs_by_route", map[string]string{"route": "/v1/query"}).Add(7)
	reg.CounterWith("akb_reqs_by_route", map[string]string{"route": "/healthz"}).Add(3)
	reg.GaugeWith("akb_build_info", map[string]string{"version": "v1.2.3", "commit": "abc123"}).Set(1)
	reg.Gauge("akb_serve_inflight").Set(2)
	h := reg.Histogram("akb_latency_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.0078125, 0.0625, 0.5, 8} {
		h.Observe(v)
	}
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := promTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "metrics.prom.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b strings.Builder
	reg := promTestRegistry()
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two expositions of the same state differ")
	}
}

func TestNilRegistryPrometheus(t *testing.T) {
	var b strings.Builder
	var reg *Registry
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "# EOF\n" {
		t.Errorf("nil registry exposition = %q", b.String())
	}
}

func TestPromLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeWith("akb_esc", map[string]string{
		"path":      `C:\temp\"quoted"`,
		"multiline": "line1\nline2",
		"weird-key": "v",
	}).Set(1)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`path="C:\\temp\\\"quoted\""`,
		`multiline="line1\nline2"`,
		`weird_key="v"`, // invalid label-name rune sanitised
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %s:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\nline2") {
		t.Errorf("raw newline leaked into a label value:\n%s", got)
	}
}

func TestPromNameSanitisation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bad name.total").Inc()
	reg.Counter("7leading").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{"bad_name_total 1", "_leading 1"} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

// TestPromHistogramCumulativity is the property test: for a pile of
// deterministic pseudo-random observations, the exposed buckets must be
// cumulative and monotonically non-decreasing, +Inf must equal _count,
// and _sum/_count must round-trip the histogram's own accounting.
func TestPromHistogramCumulativity(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("akb_serve_latency_seconds", ServeLatencyBuckets())
	n := 0
	for i := 0; i < 500; i++ {
		// Spread across and beyond the bucket range, deterministically.
		v := float64(i*i%997) / 997 * 0.01
		if i%97 == 0 {
			v = 7 // past the last bound: overflow-bucket territory
		}
		h.Observe(v)
		n++
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	var (
		cum      []int64
		infCount = int64(-1)
		sum      = -1.0
		count    = int64(-1)
	)
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, `akb_serve_latency_seconds_bucket{le="+Inf"} `):
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad +Inf line %q: %v", line, err)
			}
			infCount = v
		case strings.HasPrefix(line, `akb_serve_latency_seconds_bucket{le="`):
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			cum = append(cum, v)
		case strings.HasPrefix(line, "akb_serve_latency_seconds_sum "):
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad sum line %q: %v", line, err)
			}
			sum = v
		case strings.HasPrefix(line, "akb_serve_latency_seconds_count "):
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}
	if len(cum) != len(ServeLatencyBuckets()) {
		t.Fatalf("exposed %d bucket lines, want %d (every bound, including empty buckets)",
			len(cum), len(ServeLatencyBuckets()))
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("bucket counts not cumulative at %d: %v", i, cum)
		}
	}
	if cum[len(cum)-1] > infCount {
		t.Errorf("last finite bucket %d exceeds +Inf %d", cum[len(cum)-1], infCount)
	}
	if infCount != int64(n) || count != int64(n) {
		t.Errorf("+Inf = %d, _count = %d, want both %d", infCount, count, n)
	}
	if want := h.Sum(); sum != want {
		t.Errorf("_sum = %v, want %v", sum, want)
	}
}

func TestLabeledSeriesIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.CounterWith("akb_x", map[string]string{"k": "a"})
	b := reg.CounterWith("akb_x", map[string]string{"k": "b"})
	a2 := reg.CounterWith("akb_x", map[string]string{"k": "a"})
	if a == b {
		t.Error("distinct label sets share a counter")
	}
	if a != a2 {
		t.Error("same label set yields a different counter")
	}
	a.Add(5)
	b.Add(1)

	// Mutating the caller's map after registration must not change the
	// series identity.
	labels := map[string]string{"k": "c"}
	g := reg.GaugeWith("akb_y", labels)
	g.Set(3)
	labels["k"] = "mutated"
	snap := reg.Snapshot()
	var names []string
	for _, m := range snap {
		names = append(names, seriesKey(m.Name, m.Labels))
	}
	want := []string{
		seriesKey("akb_x", map[string]string{"k": "a"}),
		seriesKey("akb_x", map[string]string{"k": "b"}),
		seriesKey("akb_y", map[string]string{"k": "c"}),
	}
	if len(names) != len(want) {
		t.Fatalf("snapshot series = %q", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("snapshot[%d] = %q, want %q", i, names[i], want[i])
		}
	}

	// Nil registry: labeled accessors stay no-ops.
	var nilReg *Registry
	nilReg.CounterWith("x", map[string]string{"a": "b"}).Inc()
	nilReg.GaugeWith("x", map[string]string{"a": "b"}).Set(1)
}
