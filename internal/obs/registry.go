package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; negative n is ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. An observation lands in the
// first bucket whose upper bound is >= the value; values above every bound
// land in the implicit overflow bucket. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending inclusive upper bounds
	counts []int64   // len(bounds)+1; last is overflow
	count  int64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// LatencyBuckets returns the default latency bounds in seconds: 100µs to
// 10s, roughly log-spaced — wide enough for both a single mapreduce task
// and a whole pipeline stage.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// FanoutBuckets returns power-of-two bounds for parallelism and fanout
// distributions (worker counts, group sizes).
func FanoutBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// Registry is a concurrency-safe, name-keyed metric store. Metrics are
// created on first use; repeated lookups return the same instance. All
// methods are nil-safe: a nil *Registry hands out nil metrics whose
// methods no-op, so instrumented code never branches on telemetry being
// enabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds default to LatencyBuckets). The
// bounds of an existing histogram are never changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// Bucket is one exported histogram bucket: the inclusive upper bound and
// the number of observations that landed in it.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Metric is one exported metric sample.
type Metric struct {
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value holds counter and gauge values.
	Value float64 `json:"value,omitempty"`
	// Count, Sum, Buckets and Overflow describe histograms; Overflow
	// counts observations above the last bucket bound.
	Count    int64    `json:"count,omitempty"`
	Sum      float64  `json:"sum,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow int64    `json:"overflow,omitempty"`
}

// Snapshot exports every metric, sorted by name for stable output. It is
// safe to call concurrently with metric updates and returns an empty slice
// on a nil registry.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		m := Metric{Name: name, Kind: "histogram", Count: h.count, Sum: h.sum}
		for i, b := range h.bounds {
			if h.counts[i] > 0 {
				m.Buckets = append(m.Buckets, Bucket{LE: b, Count: h.counts[i]})
			}
		}
		m.Overflow = h.counts[len(h.bounds)]
		h.mu.Unlock()
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
