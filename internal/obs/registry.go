package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; negative n is ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. An observation lands in the
// first bucket whose upper bound is >= the value; values above every bound
// land in the implicit overflow bucket. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending inclusive upper bounds
	counts []int64   // len(bounds)+1; last is overflow
	count  int64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// LatencyBuckets returns the default latency bounds in seconds: 100µs to
// 10s, roughly log-spaced — wide enough for both a single mapreduce task
// and a whole pipeline stage.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// FanoutBuckets returns power-of-two bounds for parallelism and fanout
// distributions (worker counts, group sizes).
func FanoutBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// TaskLatencyBuckets returns executor task bounds in seconds. Mapreduce
// chunks complete in single-digit microseconds once granularity is
// coarsened, and queue wait on a buffered channel is often sub-microsecond;
// the default LatencyBuckets — which start at 100µs — collapsed every
// observation into the first bucket and hid exactly the dispatch overhead
// the parallelism work attacks. These bounds start at 1µs and stay
// log-spaced up to 1s so both a tiny chunk and a whole coarse shard resolve.
func TaskLatencyBuckets() []float64 {
	return []float64{
		0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 1,
	}
}

// ServeLatencyBuckets returns the HTTP route latency bounds in seconds.
// The indexed store answers most routes in tens of microseconds
// (BENCH_serve.json), so the default LatencyBuckets — which start at
// 100µs — collapsed nearly every observation into the first bucket.
// These bounds start at 10µs and stay log-spaced up to 5s so both the
// fast path and timeout-bound stragglers resolve.
func ServeLatencyBuckets() []float64 {
	return []float64{
		0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.01, 0.05, 0.25, 1, 5,
	}
}

// Registry is a concurrency-safe, name-keyed metric store. Metrics are
// created on first use; repeated lookups return the same instance. A
// metric series is identified by its name plus an optional label set
// (CounterWith/GaugeWith), mirroring the Prometheus data model. All
// methods are nil-safe: a nil *Registry hands out nil metrics whose
// methods no-op, so instrumented code never branches on telemetry being
// enabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*counterSeries
	gauges   map[string]*gaugeSeries
	hists    map[string]*histSeries
}

// counterSeries, gaugeSeries and histSeries bind one metric instance to
// its identity (name + immutable label set). The registry map key is
// seriesKey(name, labels), so every distinct label combination is its
// own series.
type counterSeries struct {
	name   string
	labels map[string]string
	c      *Counter
}

type gaugeSeries struct {
	name   string
	labels map[string]string
	g      *Gauge
}

type histSeries struct {
	name string
	h    *Histogram
}

// seriesKey builds the registry map key for a labeled series: the name,
// then label pairs sorted by key, joined with separators that cannot
// appear in metric names. Keys therefore sort by name first, then by
// label set, which is the export order.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	b = append(b, name...)
	for _, k := range keys {
		b = append(b, 0)
		b = append(b, k...)
		b = append(b, 1)
		b = append(b, labels[k]...)
	}
	return string(b)
}

// copyLabels snapshots a caller-supplied label map so later mutation by
// the caller cannot change a registered series' identity.
func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*counterSeries),
		gauges:   make(map[string]*gaugeSeries),
		hists:    make(map[string]*histSeries),
	}
}

// Counter returns the named (unlabeled) counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter { return r.CounterWith(name, nil) }

// CounterWith returns the counter series for name plus the given label
// set, creating it on first use. The labels are copied; each distinct
// label combination is an independent series.
func (r *Registry) CounterWith(name string, labels map[string]string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	s, ok := r.counters[key]
	if !ok {
		s = &counterSeries{name: name, labels: copyLabels(labels), c: &Counter{}}
		r.counters[key] = s
	}
	return s.c
}

// Gauge returns the named (unlabeled) gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeWith(name, nil) }

// GaugeWith returns the gauge series for name plus the given label set,
// creating it on first use; see CounterWith.
func (r *Registry) GaugeWith(name string, labels map[string]string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	s, ok := r.gauges[key]
	if !ok {
		s = &gaugeSeries{name: name, labels: copyLabels(labels), g: &Gauge{}}
		r.gauges[key] = s
	}
	return s.g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds default to LatencyBuckets). The
// bounds of an existing histogram are never changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		s = &histSeries{name: name, h: &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}}
		r.hists[name] = s
	}
	return s.h
}

// Bucket is one exported histogram bucket: the inclusive upper bound and
// the number of observations that landed in it.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Metric is one exported metric sample.
type Metric struct {
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Labels identify a labeled series (CounterWith/GaugeWith); empty for
	// plain metrics, so pre-label JSON output is unchanged.
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds counter and gauge values.
	Value float64 `json:"value,omitempty"`
	// Count, Sum, Buckets and Overflow describe histograms; Overflow
	// counts observations above the last bucket bound.
	Count    int64    `json:"count,omitempty"`
	Sum      float64  `json:"sum,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow int64    `json:"overflow,omitempty"`
}

// Snapshot exports every metric, sorted by name (then label set) for
// stable output. It is safe to call concurrently with metric updates and
// returns an empty slice on a nil registry.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	type keyed struct {
		key string
		m   Metric
	}
	out := make([]keyed, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for key, s := range r.counters {
		out = append(out, keyed{key, Metric{Name: s.name, Kind: "counter", Labels: copyLabels(s.labels), Value: float64(s.c.Value())}})
	}
	for key, s := range r.gauges {
		out = append(out, keyed{key, Metric{Name: s.name, Kind: "gauge", Labels: copyLabels(s.labels), Value: s.g.Value()}})
	}
	for key, s := range r.hists {
		h := s.h
		h.mu.Lock()
		m := Metric{Name: s.name, Kind: "histogram", Count: h.count, Sum: h.sum}
		for i, b := range h.bounds {
			if h.counts[i] > 0 {
				m.Buckets = append(m.Buckets, Bucket{LE: b, Count: h.counts[i]})
			}
		}
		m.Overflow = h.counts[len(h.bounds)]
		h.mu.Unlock()
		out = append(out, keyed{key, m})
	}
	// The series key leads with the name, so sorting by it orders by name
	// first and label set second.
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	ms := make([]Metric, len(out))
	for i, k := range out {
		ms[i] = k.m
	}
	return ms
}
