package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Trace collects one run's spans. Spans are appended in start order and
// identified by 1-based ids; parent id 0 marks a root span. All methods
// are safe for concurrent use and nil-safe.
type Trace struct {
	mu      sync.Mutex
	clock   func() time.Time
	spans   []*Span
	limit   int   // max retained spans; 0 means unlimited
	dropped int64 // spans discarded because the limit was reached
}

// SetLimit caps how many spans the trace retains; 0 restores unlimited
// retention. A long-running server that opens a span per request would
// otherwise grow its trace without bound, so the serve layer sets a cap:
// spans started past it still work (Annotate/End are safe no-ops onto a
// detached span) but are not retained or exported.
func (t *Trace) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.limit = n
}

// Dropped returns how many spans the retention limit discarded.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Span is one timed unit of work: a supervised stage, a single stage
// attempt, or any instrumented sub-step. Spans carry ordered string
// attributes and an error annotation. Methods are nil-safe so callers can
// ignore whether telemetry is enabled.
type Span struct {
	tr     *Trace
	id     int
	parent int
	name   string
	start  time.Time
	end    time.Time
	ended  bool
	attrs  map[string]string
	err    string
}

func (t *Trace) start(name string, parent int) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && len(t.spans) >= t.limit {
		// Past the retention cap: hand back a detached span (id 0, never
		// appended) so callers still get a working Span without the trace
		// growing without bound.
		t.dropped++
		return &Span{tr: t, parent: parent, name: name, start: t.clock()}
	}
	s := &Span{tr: t, id: len(t.spans) + 1, parent: parent, name: name, start: t.clock()}
	t.spans = append(t.spans, s)
	return s
}

// Annotate sets a string attribute on the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
}

// AnnotateInt sets an integer attribute on the span.
func (s *Span) AnnotateInt(key string, n int64) {
	s.Annotate(key, strconv.FormatInt(n, 10))
}

// RecordError annotates the span with err; a nil err is ignored.
func (s *Span) RecordError(err error) {
	if s == nil || err == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.err = err.Error()
}

// End closes the span, fixing its duration. Ending twice keeps the first
// end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if !s.ended {
		s.end = s.tr.clock()
		s.ended = true
	}
}

// SpanReport is the exported form of one span. Attrs marshal with sorted
// keys, so serialised reports are byte-stable for a fixed clock.
type SpanReport struct {
	ID     int       `json:"id"`
	Parent int       `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// DurationNS is the span's wall time in nanoseconds; for a span still
	// open at export time it is the time from start to the export.
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Duration returns the span's wall time.
func (sr SpanReport) Duration() time.Duration { return time.Duration(sr.DurationNS) }

// Attr returns a span attribute ("" when absent).
func (sr SpanReport) Attr(key string) string { return sr.Attrs[key] }

// Snapshot exports every span in start order. Open spans are reported
// with the duration accumulated so far.
func (t *Trace) Snapshot() []SpanReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	out := make([]SpanReport, len(t.spans))
	for i, s := range t.spans {
		end := s.end
		if !s.ended {
			end = now
		}
		sr := SpanReport{
			ID:         s.id,
			Parent:     s.parent,
			Name:       s.name,
			Start:      s.start,
			DurationNS: end.Sub(s.start).Nanoseconds(),
			Error:      s.err,
		}
		if len(s.attrs) > 0 {
			sr.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				sr.Attrs[k] = v
			}
		}
		out[i] = sr
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
