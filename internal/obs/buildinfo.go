package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo reports the binary's identity for the akb_build_info metric
// and /healthz: the main module version and the VCS revision (truncated
// to 12 hex chars), both read from the build info baked into the binary
// by the Go toolchain. Either falls back to "unknown" when the binary
// was built without that information (go test binaries, non-VCS builds).
func BuildInfo() (version, commit string) {
	version, commit = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if v := bi.Main.Version; v != "" {
		version = v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			commit = s.Value
			if len(commit) > 12 {
				commit = commit[:12]
			}
		}
	}
	return
}

// GoVersion returns the running toolchain's version string, a third
// label on akb_build_info so scrapes record what compiled the binary.
func GoVersion() string { return runtime.Version() }
