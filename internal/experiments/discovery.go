package experiments

import (
	"fmt"

	"akb/internal/core"
	"akb/internal/extract"
	"akb/internal/webgen"
)

// DiscoveryRow is one coverage point of the entity-discovery experiment
// (E9): how well the pipeline creates new entities as KB coverage shrinks.
type DiscoveryRow struct {
	// Coverage is the Freebase entity coverage fraction.
	Coverage float64
	// UncoveredOnWeb counts world entities absent from the entity index but
	// present on at least one generated web page.
	UncoveredOnWeb int
	// Discovered is the number of entities created.
	Discovered int
	// Linked is the number of candidate mentions resolved to known
	// entities instead.
	Linked int
	// Precision is the fraction of discovered entities that are genuine
	// world entities of the right class.
	Precision float64
	// Recall is the fraction of uncovered on-Web entities that were
	// discovered.
	Recall float64
}

// EntityDiscovery sweeps Freebase coverage and measures the joint
// entity-linking-and-discovery extension (paper §3.1: "create new entities
// automatically ... solve entity-linking and entity-discovery jointly").
func EntityDiscovery(seed int64) []DiscoveryRow {
	var rows []DiscoveryRow
	for _, coverage := range []float64{0.9, 0.7, 0.5, 0.3} {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Freebase.Coverage = coverage
		cfg.DiscoverEntities = true
		res := core.Run(cfg)

		// Ground truth: entities on the Web but outside the index.
		idxNames := map[string]bool{}
		fb := coveredEntitySet(cfg)
		for n := range fb {
			idxNames[n] = true
		}
		sites := webgen.GenerateSites(res.World, cfg.Sites)
		uncovered := map[string]bool{}
		for _, s := range sites {
			for _, p := range s.Pages {
				if !idxNames[p.Entity] {
					uncovered[p.Entity] = true
				}
			}
		}

		row := DiscoveryRow{
			Coverage:       coverage,
			UncoveredOnWeb: len(uncovered),
			Discovered:     len(res.Discovered.Entities),
			Linked:         len(res.Discovered.Linked),
		}
		genuine, recalled := 0, 0
		for _, e := range res.Discovered.Entities {
			if we, ok := res.World.Entity(e.Name); ok && we.Class == e.Class {
				genuine++
				if uncovered[e.Name] {
					recalled++
				}
			}
		}
		if row.Discovered > 0 {
			row.Precision = float64(genuine) / float64(row.Discovered)
		}
		if len(uncovered) > 0 {
			row.Recall = float64(recalled) / float64(len(uncovered))
		}
		rows = append(rows, row)
	}
	return rows
}

// coveredEntitySet reproduces the entity index contents for a config (the
// pipeline builds it from Freebase's covered entities).
func coveredEntitySet(cfg core.Config) map[string]string {
	res := map[string]string{}
	// Regenerate world and Freebase deterministically, as core.Run does.
	w := reworld(cfg)
	fb := refreebase(cfg, w)
	idx := extract.NewEntityIndex(fb)
	for _, n := range idx.Names() {
		c, _ := idx.Class(n)
		res[n] = c
	}
	return res
}

// String renders the row compactly for logs.
func (r DiscoveryRow) String() string {
	return fmt.Sprintf("coverage=%.1f uncovered=%d discovered=%d linked=%d P=%.3f R=%.3f",
		r.Coverage, r.UncoveredOnWeb, r.Discovered, r.Linked, r.Precision, r.Recall)
}
