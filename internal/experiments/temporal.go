package experiments

import (
	"akb/internal/core"
	"akb/internal/extract"
	"akb/internal/kb"
	"akb/internal/temporalx"
	"akb/internal/webgen"
)

// TemporalRow is one noise point of the temporal-extraction experiment
// (E11): year-level timeline accuracy as corpus noise grows, raw
// (per-statement) vs fused.
type TemporalRow struct {
	// ErrorRate is the corpus value-error rate.
	ErrorRate float64
	// Statements is the number of time-scoped statements extracted.
	Statements int
	// Timelines is the number of fused (entity, attribute) timelines.
	Timelines int
	// RawAccuracy is the year-level accuracy of raw statements.
	RawAccuracy float64
	// FusedAccuracy is the year-level accuracy after timeline fusion.
	FusedAccuracy float64
}

// Temporal sweeps corpus noise and measures temporal extraction and fusion.
// The expected shape: fusion recovers accuracy lost to noise, because
// majority voting per year suppresses the minority wrong spans.
func Temporal(seed int64) []TemporalRow {
	var rows []TemporalRow
	for _, rate := range []float64{0.0, 0.1, 0.2, 0.3} {
		w := kb.NewWorld(kb.WorldConfig{Seed: seed, EntitiesPerClass: 30, AttrsPerEntity: 14})
		docs := webgen.GenerateCorpus(w, webgen.TextConfig{
			Seed: seed + 1, DocsPerClass: 20, FactsPerDoc: 3,
			ValueErrorRate: rate, DistractorShare: 0.4, TemporalFacts: 8,
		})
		idx := extract.NewEntityIndexFromWorld(w)
		stmts := temporalx.ExtractText(docs, idx)
		tls := temporalx.FuseTimelines(stmts)

		rawCorrect, rawTotal := 0, 0
		for _, s := range stmts {
			e, ok := w.Entity(s.Entity)
			if !ok {
				continue
			}
			for y := s.From; y <= s.To; y++ {
				rawTotal++
				if e.ValueAt(s.Attr, y) == s.Value {
					rawCorrect++
				}
			}
		}
		fc, ft := temporalx.Accuracy(w, tls)
		row := TemporalRow{ErrorRate: rate, Statements: len(stmts), Timelines: len(tls)}
		if rawTotal > 0 {
			row.RawAccuracy = float64(rawCorrect) / float64(rawTotal)
		}
		if ft > 0 {
			row.FusedAccuracy = float64(fc) / float64(ft)
		}
		rows = append(rows, row)
	}
	return rows
}

// TemporalPipeline runs the full pipeline with temporal extraction enabled
// and returns its fused timelines plus year accuracy.
func TemporalPipeline(seed int64) (timelines int, accuracy float64) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Temporal = true
	res := core.Run(cfg)
	c, t := temporalx.Accuracy(res.World, res.Timelines)
	if t == 0 {
		return len(res.Timelines), 0
	}
	return len(res.Timelines), float64(c) / float64(t)
}
