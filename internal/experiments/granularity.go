package experiments

import (
	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/fusion"
)

// GranularityRow is one (granularity, method) outcome of the provenance
// experiment (E13).
type GranularityRow struct {
	Granularity string
	Method      string
	P, R, F1    float64
}

// Granularity compares fusion quality across provenance granularities. The
// paper criticises relation-based fusion for "referring to the extractors
// as data sources, only considering the correlations among extractors and
// ignoring the correlations among original data sources"; Dong et al. found
// finer-granularity provenance beneficial. The expected shape: ByExtractor
// (four mega-sources) loses to the per-source granularities because a
// source-quality model with four sources cannot separate good sites from
// bad ones.
func Granularity(seed int64) []GranularityRow {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	// Heterogeneous site quality: some sites are 2.5x noisier than the
	// base rate, others 5x cleaner. Extractor-level provenance averages
	// them away; source-level provenance lets fusion discount bad sites.
	cfg.Sites.HeterogeneousSites = true
	cfg.Sites.ValueErrorRate = 0.3
	cfg.Sites.SitesPerClass = 8
	res := core.Run(cfg)
	scorer := &eval.Scorer{World: res.World}

	grans := []struct {
		name string
		g    fusion.Granularity
	}{
		{"by-extractor", fusion.ByExtractor},
		{"by-source", fusion.BySource},
		{"by-source+extractor", fusion.BySourceExtractor},
	}
	methods := []fusion.Method{
		&fusion.Accu{Weighted: true},
		&fusion.MultiTruth{Weighted: true},
	}
	var rows []GranularityRow
	for _, gr := range grans {
		for _, ms := range scorer.CompareFusionMethods(res.Statements, methods, gr.g) {
			rows = append(rows, GranularityRow{
				Granularity: gr.name,
				Method:      ms.Method,
				P:           ms.Metrics.Precision(),
				R:           ms.Metrics.Recall(),
				F1:          ms.Metrics.F1(),
			})
		}
	}
	return rows
}
