// Package experiments implements the reproduction of every table and figure
// in the paper, plus the design-choice ablations DESIGN.md calls out. Each
// experiment is a pure function from a configuration to structured rows;
// cmd/akb renders them as tables and the repository-root benchmarks measure
// them. See EXPERIMENTS.md for the paper-vs-measured record.
package experiments

import (
	"context"
	"fmt"

	"akb/internal/confidence"
	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/extract"
	"akb/internal/extract/kbx"
	"akb/internal/extract/qsx"
	"akb/internal/fusion"
	"akb/internal/kb"
	"akb/internal/querystream"
)

// --- E1: Table 1 — statistics of representative KBs ---------------------

// Table1Row is one row of Table 1 (entities scaled 1000x down).
type Table1Row struct {
	KB         string
	Entities   int
	Attributes int
}

// Table1 materialises the four representative KBs and counts them.
func Table1(seed int64) []Table1Row {
	kbs := kb.GenerateStatsKBs(seed)
	rows := make([]Table1Row, 0, len(kbs))
	for _, s := range kbs {
		p := s.Profile()
		rows = append(rows, Table1Row{KB: p.Name, Entities: p.Entities, Attributes: p.Attributes})
	}
	return rows
}

// --- E2: Table 2 — attribute extraction from existing KBs ---------------

// Table2 generates the synthetic DBpedia and Freebase and runs the
// existing-KB attribute extractor over them.
func Table2(seed int64) []kbx.Table2Row {
	w := kb.NewWorld(kb.WorldConfig{Seed: seed, EntitiesPerClass: 20, AttrsPerEntity: 16})
	dbp := kb.GenerateDBpedia(w, kb.KBGenConfig{Seed: seed + 1, Coverage: 0.6})
	fb := kb.GenerateFreebase(w, kb.KBGenConfig{Seed: seed + 2, Coverage: 0.8})
	res := kbx.ExtractAttributes(context.Background(), confidence.Default(), dbp, fb)
	return res.Table2()
}

// --- E3: Table 3 — attribute extraction from the query stream -----------

// Table3Config controls the query-stream experiment scale.
type Table3Config struct {
	Seed int64
	// Scale divides the paper's record counts; 100 gives the default
	// 292,839-record stream (the paper used 29,283,918 records).
	Scale int
}

// Table3 generates the scaled Google+AOL stream and runs query-stream
// extraction.
func Table3(cfg Table3Config) []qsx.Table3Row {
	if cfg.Scale <= 0 {
		cfg.Scale = 100
	}
	w := kb.NewWorld(kb.WorldConfig{Seed: cfg.Seed, EntitiesPerClass: 60, AttrsPerEntity: 20})
	plans := querystream.DefaultPlans()
	total := 29283918 / cfg.Scale
	for i := range plans {
		plans[i].Relevant = plans[i].Relevant * 100 / cfg.Scale
		if cfg.Scale > 100 {
			// With fewer records the support budget shrinks, so the number
			// of attributes that can clear the credibility threshold
			// shrinks proportionally (attribute interest saturates in the
			// other direction, so scales below 100 keep the paper's
			// credible counts).
			plans[i].Credible = plans[i].Credible * 100 / cfg.Scale
			if plans[i].Credible == 0 && plans[i].Relevant > 60 {
				plans[i].Credible = 1
			}
		}
	}
	stream := querystream.Generate(w, querystream.GenConfig{
		Seed: cfg.Seed + 1, TotalRecords: total, Threshold: 5, Plans: plans,
	})
	idx := extract.NewEntityIndexFromWorld(w)
	res := qsx.Extract(context.Background(), stream, idx, qsx.DefaultConfig(), confidence.Default())
	return res.Table3()
}

// --- E4: Figure 1 — the end-to-end pipeline -----------------------------

// PipelineReport is the structured outcome of the Figure-1 experiment.
type PipelineReport struct {
	Stages []core.StageStat
	Growth []core.AttributeGrowth
	Fusion eval.Metrics
	// AugmentedTriples is the size of the final KB.
	AugmentedTriples int
	// TotalStatements is the pre-fusion claim volume.
	TotalStatements int
	// Health reports supervised stage outcomes; Degraded lists the stages
	// that failed soft (empty on a fault-free run).
	Health   core.HealthReport
	Degraded []string
}

// Pipeline runs the full framework and summarises it.
func Pipeline(cfg core.Config) PipelineReport {
	rep, err := PipelineContext(context.Background(), cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments.Pipeline: %v", err))
	}
	return rep
}

// PipelineContext runs the full framework under the resilience supervisor
// and summarises it; it errors when a mandatory stage fails or the context
// is cancelled.
func PipelineContext(ctx context.Context, cfg core.Config) (PipelineReport, error) {
	res, err := core.New(core.WithConfig(cfg)).Run(ctx)
	if err != nil {
		return PipelineReport{}, err
	}
	return Summarize(res), nil
}

// Summarize condenses a pipeline Result into the report the CLI renders.
// Callers that already hold a Result (e.g. because they also snapshot it
// for serving) use this instead of re-running the pipeline.
func Summarize(res *core.Result) PipelineReport {
	return PipelineReport{
		Stages:           res.Stats(),
		Growth:           res.Growth(),
		Fusion:           res.FusionMetrics,
		AugmentedTriples: res.Augmented.Len(),
		TotalStatements:  len(res.Statements),
		Health:           res.Health(),
		Degraded:         res.Health().Degraded(),
	}
}

// --- E5: Algorithm 1 behaviour sweeps ------------------------------------

// DOMSweepRow is one configuration point of the Algorithm-1 sweep.
type DOMSweepRow struct {
	// Param names the swept parameter; Value is its setting.
	Param string
	Value string
	// Discovered is the number of newly discovered attributes (beyond
	// seeds) across classes.
	Discovered int
	// Precision is the fraction of discoveries that are genuine ontology
	// attributes.
	Precision float64
	// StmtPrecision is the precision of emitted statements.
	StmtPrecision float64
}

// DOMSweep exercises Algorithm 1 across sites-per-class, seed-set size and
// similarity threshold, reporting discovery volume and precision for each
// point (the paper reports Algorithm 1 qualitatively; this is its
// quantitative behaviour).
func DOMSweep(seed int64) []DOMSweepRow {
	var rows []DOMSweepRow
	for _, sites := range []int{1, 2, 4, 8} {
		r := runDOMPoint(seed, sites, 6, 0.9)
		r.Param, r.Value = "sites/class", fmt.Sprintf("%d", sites)
		rows = append(rows, r)
	}
	for _, seedN := range []int{2, 6, 12, 24} {
		r := runDOMPoint(seed, 4, seedN, 0.9)
		r.Param, r.Value = "seed attrs", fmt.Sprintf("%d", seedN)
		rows = append(rows, r)
	}
	for _, thr := range []float64{0.5, 0.7, 0.9, 0.999} {
		r := runDOMPoint(seed, 4, 6, thr)
		r.Param, r.Value = "similarity", fmt.Sprintf("%.3f", thr)
		rows = append(rows, r)
	}
	return rows
}

// --- E6: fusion method comparison ----------------------------------------

// FusionRow is one method's score on one workload.
type FusionRow struct {
	Workload string
	Method   string
	P, R, F1 float64
}

// FusionComparison compares every fusion method on two workloads: the
// end-to-end pipeline statements, and a stress workload with injected
// copier sources and a multi-truth-heavy world.
func FusionComparison(seed int64) []FusionRow {
	var rows []FusionRow

	// Workload 1: pipeline statements.
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	res := core.Run(cfg)
	scorer := &eval.Scorer{World: res.World}
	methods := append(fusion.AllMethods(res.World.Hier), fusion.FactFinders()...)
	methods = append(methods, &fusion.Adaptive{})
	for _, ms := range scorer.CompareFusionMethods(res.Statements, methods, fusion.BySourceExtractor) {
		rows = append(rows, FusionRow{
			Workload: "pipeline",
			Method:   ms.Method,
			P:        ms.Metrics.Precision(),
			R:        ms.Metrics.Recall(),
			F1:       ms.Metrics.F1(),
		})
	}

	// Workload 2: pipeline plus copier sources replicating the noisiest
	// site of each class.
	stress := InjectCopiers(res, 2)
	for _, ms := range scorer.CompareFusionMethods(stress, methods, fusion.BySourceExtractor) {
		rows = append(rows, FusionRow{
			Workload: "with-copiers",
			Method:   ms.Method,
			P:        ms.Metrics.Precision(),
			R:        ms.Metrics.Recall(),
			F1:       ms.Metrics.F1(),
		})
	}
	return rows
}

// --- E7: ablations of the paper's fusion design choices ------------------

// AblationRow is one ablation outcome.
type AblationRow struct {
	Ablation string
	Variant  string
	P, R, F1 float64
}

// Ablations isolates each design choice of §3.2: hierarchy reasoning on
// hierarchy-heavy claims, correlation discounting under copiers, and
// confidence weighting with a deliberately degraded extractor.
func Ablations(seed int64) []AblationRow {
	var rows []AblationRow
	add := func(abl, variant string, m eval.Metrics) {
		rows = append(rows, AblationRow{Ablation: abl, Variant: variant, P: m.Precision(), R: m.Recall(), F1: m.F1()})
	}

	// Hierarchy ablation: a generalisation-heavy Web, scored on the items
	// with hierarchical value spaces (the mechanism's target; elsewhere the
	// wrapper is a no-op and only adds EM noise).
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Sites.GeneralizeProb = 0.45
	cfg.Corpus.GeneralizeProb = 0.45
	res := core.Run(cfg)
	scorer := &eval.Scorer{World: res.World}
	hierStmts := HierarchicalStatements(res)
	flat := &fusion.Vote{Weighted: true}
	hier := &fusion.Hierarchical{Base: &fusion.Vote{Weighted: true}, Forest: res.World.Hier}
	for _, ms := range scorer.CompareFusionMethods(hierStmts, []fusion.Method{flat, hier}, fusion.BySourceExtractor) {
		add("hierarchy", ms.Method, ms.Metrics)
	}

	// Correlation ablation: copier-injected claims.
	stress := InjectCopiers(res, 3)
	claims := fusion.BuildClaims(stress, fusion.BySourceExtractor)
	noCorr := (&fusion.MultiTruth{Weighted: true}).Fuse(claims)
	add("correlation", "off", scorer.ScoreFusion(noCorr))
	corr := fusion.DetectCorrelations(claims, fusion.DefaultCorrelationConfig())
	withCorr := (&fusion.MultiTruth{Weighted: true, Discount: corr}).Fuse(claims)
	add("correlation", "on", scorer.ScoreFusion(withCorr))

	// Confidence ablation: degrade DOM confidence validity by zeroing the
	// criterion (all statements equally trusted) vs honouring scores.
	for _, ms := range scorer.CompareFusionMethods(res.Statements,
		[]fusion.Method{&fusion.MultiTruth{}, &fusion.MultiTruth{Weighted: true}}, fusion.BySourceExtractor) {
		add("confidence", ms.Method, ms.Metrics)
	}

	// Alignment ablation: a Web with synonym labels and value typos, fused
	// with and without the pre-fusion normalisation step.
	acfg := core.DefaultConfig()
	acfg.Seed = seed
	acfg.Sites.SynonymProb = 0.3
	acfg.Sites.TypoProb = 0.1
	acfg.Method = &fusion.MultiTruth{Weighted: true}
	off := core.Run(acfg)
	offScorer := &eval.Scorer{World: off.World}
	add("alignment", "off", offScorer.ScoreFusion(off.Fused()))
	acfg.Align = true
	on := core.Run(acfg)
	onScorer := &eval.Scorer{World: on.World}
	add("alignment", "on", onScorer.ScoreFusion(on.Fused()))
	return rows
}
