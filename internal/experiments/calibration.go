package experiments

import (
	"akb/internal/core"
	"akb/internal/extract"
	"akb/internal/fusion"
)

// CalibrationRow is one belief bucket of the calibration experiment: if the
// fused beliefs are well calibrated, the empirical precision of claims in a
// bucket tracks the bucket's mean belief (the diagnostic plot popularised
// by the Knowledge Vault paper the paper builds on).
type CalibrationRow struct {
	// Low and High bound the belief bucket [Low, High).
	Low, High float64
	// Count is the number of (item, value) pairs in the bucket.
	Count int
	// MeanBelief is the average belief of the bucket's pairs.
	MeanBelief float64
	// Precision is the fraction of the bucket's pairs that are true.
	Precision float64
}

// Calibration runs the pipeline, fuses with the FULL method (the default)
// and buckets every claimed (item, value) pair by fused belief.
func Calibration(seed int64, buckets int) []CalibrationRow {
	return CalibrationMethod(seed, buckets, nil)
}

// CalibrationMethod is Calibration for a caller-chosen fusion method (nil
// uses the pipeline default), enabling calibration comparisons.
func CalibrationMethod(seed int64, buckets int, m fusion.Method) []CalibrationRow {
	if buckets <= 0 {
		buckets = 10
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Method = m
	res := core.Run(cfg)
	type acc struct {
		count   int
		beliefs float64
		correct int
	}
	accs := make([]acc, buckets)
	for _, d := range res.Fused().Decisions {
		entity := extract.AttrFromIRI(d.Item.Subject)
		e, ok := res.World.Entity(entity)
		if !ok {
			continue
		}
		attr := extract.AttrFromIRI(d.Item.Predicate)
		for _, vc := range d.Item.Values {
			b, ok := d.Belief[vc.Value.Key()]
			if !ok {
				continue
			}
			bi := int(b * float64(buckets))
			if bi >= buckets {
				bi = buckets - 1
			}
			if bi < 0 {
				bi = 0
			}
			accs[bi].count++
			accs[bi].beliefs += b
			if res.World.IsTrue(e, attr, vc.Value.Value) {
				accs[bi].correct++
			}
		}
	}
	rows := make([]CalibrationRow, 0, buckets)
	for i, a := range accs {
		row := CalibrationRow{Low: float64(i) / float64(buckets), High: float64(i+1) / float64(buckets), Count: a.count}
		if a.count > 0 {
			row.MeanBelief = a.beliefs / float64(a.count)
			row.Precision = float64(a.correct) / float64(a.count)
		}
		rows = append(rows, row)
	}
	return rows
}
