package experiments

import (
	"time"

	"akb/internal/core"
	"akb/internal/fusion"
)

// ScaleRow is one world-size point of the scalability experiment (E14).
type ScaleRow struct {
	// Entities is the per-class entity count.
	Entities int
	// Statements is the pre-fusion claim volume.
	Statements int
	// Items is the number of fused data items.
	Items int
	// ExtractMS and FuseMS are wall-clock milliseconds for the extraction
	// and fusion phases.
	ExtractMS int64
	FuseMS    int64
	// ThroughputKCps is fused claims per second, in thousands.
	ThroughputKCps float64
}

// Scalability grows the world and measures extraction and fusion cost. The
// paper names scalability as the first challenge of KB construction and
// adopts a MapReduce dataflow for fusion; the expected shape is near-linear
// growth of both phases with claim volume (the per-item fusion work is
// constant and the map-reduce executor parallelises it).
func Scalability(seed int64) []ScaleRow {
	var rows []ScaleRow
	for _, n := range []int{20, 40, 80, 160} {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.World.EntitiesPerClass = n
		// Web volume grows with the world.
		cfg.Sites.PagesPerSite = n / 2
		cfg.Corpus.DocsPerClass = n / 4

		// Extraction phase (everything up to fusion) is measured by running
		// with the cheapest possible fusion...
		cfg.Method = &fusion.Vote{}
		t0 := time.Now()
		res := core.Run(cfg)
		extractAndVote := time.Since(t0)

		// ...then fusion cost is measured standalone on the same claims.
		claims := fusion.BuildClaims(res.Statements, fusion.BySourceExtractor)
		full := &fusion.Full{Forest: res.World.Hier}
		t1 := time.Now()
		full.Fuse(claims)
		fuse := time.Since(t1)

		row := ScaleRow{
			Entities:   n,
			Statements: len(res.Statements),
			Items:      len(claims.Items),
			ExtractMS:  extractAndVote.Milliseconds(),
			FuseMS:     fuse.Milliseconds(),
		}
		if fuse > 0 {
			row.ThroughputKCps = float64(claims.NumClaims()) / fuse.Seconds() / 1000
		}
		rows = append(rows, row)
	}
	return rows
}
