package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"akb/internal/confidence"
	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/extract"
	"akb/internal/extract/domx"
	"akb/internal/kb"
	"akb/internal/rdf"
	"akb/internal/webgen"
)

// reworld regenerates the world for a pipeline config, as core.Run does.
func reworld(cfg core.Config) *kb.World { return kb.NewWorld(cfg.World) }

// refreebase regenerates the synthetic Freebase for a pipeline config.
func refreebase(cfg core.Config, w *kb.World) *kb.SourceKB {
	return kb.GenerateFreebase(w, cfg.Freebase)
}

// runDOMPoint measures Algorithm 1 at one configuration point.
func runDOMPoint(seed int64, sitesPerClass, seedAttrs int, threshold float64) DOMSweepRow {
	w := kb.NewWorld(kb.WorldConfig{Seed: seed, EntitiesPerClass: 25, AttrsPerEntity: 14})
	gen := webgen.GenerateSites(w, webgen.SiteConfig{
		Seed: seed + 1, SitesPerClass: sitesPerClass, PagesPerSite: 10, AttrsPerPage: 8,
		ValueErrorRate: 0.1, NoiseNodes: 5, JitterProb: 0.3,
	})
	idx := extract.NewEntityIndexFromWorld(w)
	seeds := make(map[string]extract.AttrSet)
	for _, cls := range w.Ontology.ClassNames() {
		s := extract.NewAttrSet()
		attrs := w.Ontology.Class(cls).AttributeNames()
		for i := 0; i < seedAttrs && i < len(attrs); i++ {
			s.Add(attrs[i], "seed")
		}
		seeds[cls] = s
	}
	res := domx.Extract(context.Background(), domx.FromWebgen(gen), idx, seeds,
		domx.Config{SimilarityThreshold: threshold, MaxPasses: 3}, confidence.Default())

	discovered, genuine := 0, 0
	for _, cls := range w.Ontology.ClassNames() {
		cr := res.PerClass[cls]
		if cr == nil {
			continue
		}
		class := w.Ontology.Class(cls)
		for attr := range cr.Discovered {
			discovered++
			if _, ok := class.Attribute(attr); ok {
				genuine++
			}
		}
	}
	prec := 1.0
	if discovered > 0 {
		prec = float64(genuine) / float64(discovered)
	}
	scorer := &eval.Scorer{World: w}
	sp := scorer.ScoreStatements(res.Statements).Precision()
	return DOMSweepRow{Discovered: discovered, Precision: prec, StmtPrecision: sp}
}

// HierarchicalStatements filters the pipeline's statements down to claims
// about hierarchical-value attributes (place-valued), the items where
// hierarchy-aware fusion applies.
func HierarchicalStatements(res *core.Result) []rdf.Statement {
	var out []rdf.Statement
	for _, s := range res.Statements {
		entity := extract.AttrFromIRI(s.Subject)
		e, ok := res.World.Entity(entity)
		if !ok {
			continue
		}
		cls := res.World.Ontology.Class(e.Class)
		if cls == nil {
			continue
		}
		a, ok := cls.Attribute(extract.AttrFromIRI(s.Predicate))
		if ok && a.Hierarchical {
			out = append(out, s)
		}
	}
	return out
}

// InjectCopiers returns the pipeline's statements plus nCopies exact
// replicas of the statements of each class's noisiest DOM source,
// published under fresh copier source names. This builds the copy-
// correlation stress workload of E6/E7: an unweighted fuser sees the
// copied (partly wrong) claims as a large corroborating majority.
func InjectCopiers(res *core.Result, nCopies int) []rdf.Statement {
	// Group DOM statements by source.
	bySource := map[string][]rdf.Statement{}
	for _, s := range res.Statements {
		if s.Provenance.Extractor == extract.ExtractorDOM {
			bySource[s.Provenance.Source] = append(bySource[s.Provenance.Source], s)
		}
	}
	if len(bySource) == 0 {
		return res.Statements
	}
	// Pick one source per class prefix (hosts look like "film-0.example.com").
	chosen := map[string]string{}
	var hosts []string
	for h := range bySource {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		prefix := strings.SplitN(h, "-", 2)[0]
		if _, ok := chosen[prefix]; !ok {
			chosen[prefix] = h
		}
	}
	out := make([]rdf.Statement, 0, len(res.Statements)+nCopies*len(chosen)*64)
	out = append(out, res.Statements...)
	prefixes := make([]string, 0, len(chosen))
	for p := range chosen {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		orig := chosen[prefix]
		for c := 0; c < nCopies; c++ {
			copier := fmt.Sprintf("mirror%d.%s", c, orig)
			for _, s := range bySource[orig] {
				dup := s
				dup.Provenance.Source = copier
				out = append(out, dup)
			}
		}
	}
	return out
}
