package experiments

import (
	"testing"

	"akb/internal/core"
	"akb/internal/extract"
)

func TestTable1MatchesPaperScaled(t *testing.T) {
	rows := Table1(1)
	want := map[string][2]int{
		"YAGO": {10000, 100}, "DBpedia": {4000, 6000},
		"Freebase": {25000, 4000}, "NELL": {300, 500},
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		w := want[r.KB]
		if r.Entities != w[0] || r.Attributes != w[1] {
			t.Errorf("%s = %d/%d, want %d/%d", r.KB, r.Entities, r.Attributes, w[0], w[1])
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2(1)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot-check the University row, the paper's motivating case (9
	// Freebase properties expand to 57; combined 518).
	for _, r := range rows {
		if r.Class == "University" {
			if r.FreebaseRaw != 9 || r.FreebaseExtract != 57 || r.Combined != 518 {
				t.Errorf("University row = %+v", r)
			}
		}
	}
}

func TestTable3ShapeAtSmallScale(t *testing.T) {
	rows := Table3(Table3Config{Seed: 1, Scale: 1000})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byClass := map[string]int{}
	rel := map[string]int{}
	for _, r := range rows {
		byClass[r.Class] = r.CredibleAttrs
		rel[r.Class] = r.RelevantRecords
	}
	if byClass["Hotel"] != -1 {
		t.Errorf("Hotel credible = %d, want N/A", byClass["Hotel"])
	}
	// Relevant-record ordering follows the paper: Film > Country > Book >
	// University > Hotel.
	if !(rel["Film"] > rel["Country"] && rel["Country"] > rel["Book"] &&
		rel["Book"] > rel["University"] && rel["University"] > rel["Hotel"]) {
		t.Errorf("relevant ordering broken: %v", rel)
	}
	// Credible ordering: Country > Book > Film > University.
	if !(byClass["Country"] > byClass["Book"] && byClass["Book"] > byClass["Film"] &&
		byClass["Film"] > byClass["University"] && byClass["University"] > 0) {
		t.Errorf("credible ordering broken: %v", byClass)
	}
}

func TestPipelineReport(t *testing.T) {
	rep := Pipeline(core.DefaultConfig())
	if len(rep.Stages) < 6 {
		t.Fatalf("stages = %d", len(rep.Stages))
	}
	if rep.AugmentedTriples == 0 || rep.TotalStatements == 0 {
		t.Fatal("empty pipeline report")
	}
	if rep.Fusion.Precision() < 0.85 {
		t.Errorf("fusion precision = %.3f", rep.Fusion.Precision())
	}
	if len(rep.Growth) != 5 {
		t.Errorf("growth rows = %d", len(rep.Growth))
	}
}

func TestDOMSweepShape(t *testing.T) {
	rows := DOMSweep(1)
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	bySites := map[string]DOMSweepRow{}
	bySeeds := map[string]DOMSweepRow{}
	byThr := map[string]DOMSweepRow{}
	for _, r := range rows {
		switch r.Param {
		case "sites/class":
			bySites[r.Value] = r
		case "seed attrs":
			bySeeds[r.Value] = r
		case "similarity":
			byThr[r.Value] = r
		}
	}
	// More sites discover at least as much as fewer sites.
	if bySites["8"].Discovered < bySites["1"].Discovered {
		t.Errorf("more sites discovered less: %+v vs %+v", bySites["8"], bySites["1"])
	}
	// Strict threshold keeps precision at least as high as loose.
	if byThr["0.999"].Precision < byThr["0.500"].Precision {
		t.Errorf("strict threshold less precise: %+v vs %+v", byThr["0.999"], byThr["0.500"])
	}
	// Loose threshold discovers at least as many (junk included).
	if byThr["0.500"].Discovered < byThr["0.999"].Discovered {
		t.Errorf("loose threshold discovered less: %+v vs %+v", byThr["0.500"], byThr["0.999"])
	}
}

func TestFusionComparisonShape(t *testing.T) {
	rows := FusionComparison(1)
	if len(rows) != 24 { // (7 core + 4 fact-finders + adaptive) x 2 workloads
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	score := map[string]map[string]float64{}
	for _, r := range rows {
		if score[r.Workload] == nil {
			score[r.Workload] = map[string]float64{}
		}
		score[r.Workload][r.Method] = r.F1
		if r.P < 0 || r.P > 1 || r.R < 0 || r.R > 1 {
			t.Errorf("%s/%s out-of-range metrics: %+v", r.Workload, r.Method, r)
		}
	}
	// The composed method must at least match VOTE on the clean pipeline...
	if score["pipeline"]["FULL(multi+conf+corr+hier)"] < score["pipeline"]["VOTE"] {
		t.Errorf("FULL below VOTE on pipeline: %v", score["pipeline"])
	}
	// ...and clearly beat it under copiers (the crossover the paper's
	// correlation bullet predicts).
	if score["with-copiers"]["FULL(multi+conf+corr+hier)"] <= score["with-copiers"]["VOTE"] {
		t.Errorf("FULL not ahead of VOTE under copiers: %v", score["with-copiers"])
	}
}

func TestAblationsShape(t *testing.T) {
	rows := Ablations(1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	by := map[string]map[string]float64{}
	for _, r := range rows {
		if by[r.Ablation] == nil {
			by[r.Ablation] = map[string]float64{}
		}
		by[r.Ablation][r.Variant] = r.F1
	}
	if by["hierarchy"]["VOTE+conf+hier"] < by["hierarchy"]["VOTE+conf"] {
		t.Errorf("hierarchy ablation inverted: %v", by["hierarchy"])
	}
	if by["correlation"]["on"] < by["correlation"]["off"] {
		t.Errorf("correlation ablation inverted: %v", by["correlation"])
	}
	if by["alignment"]["on"] < by["alignment"]["off"] {
		t.Errorf("alignment ablation inverted: %v", by["alignment"])
	}
}

func TestInjectCopiers(t *testing.T) {
	res := core.Run(core.DefaultConfig())
	stress := InjectCopiers(res, 2)
	if len(stress) <= len(res.Statements) {
		t.Fatal("no copier statements injected")
	}
	mirrors := map[string]int{}
	for _, s := range stress {
		if len(s.Provenance.Source) > 6 && s.Provenance.Source[:6] == "mirror" {
			mirrors[s.Provenance.Source]++
		}
	}
	if len(mirrors) != 2*5 { // 2 copies x 5 classes
		t.Errorf("mirror sources = %d, want 10 (%v)", len(mirrors), mirrors)
	}
	for _, s := range stress {
		if s.Provenance.Extractor == extract.ExtractorDOM && s.Confidence <= 0 {
			t.Error("copied statement lost confidence")
		}
	}
}

func TestEntityDiscoverySweep(t *testing.T) {
	rows := EntityDiscovery(1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Precision < 0.9 {
			t.Errorf("coverage %.1f: discovery precision = %.3f, want >= 0.9", r.Coverage, r.Precision)
		}
		if r.Coverage <= 0.5 && r.Discovered == 0 {
			t.Errorf("coverage %.1f: nothing discovered", r.Coverage)
		}
	}
	// Lower coverage leaves more entities to find: discovery volume must
	// not shrink as coverage drops.
	for i := 1; i < len(rows); i++ {
		if rows[i].Discovered < rows[i-1].Discovered {
			t.Errorf("discovery volume dropped: %v then %v", rows[i-1], rows[i])
		}
	}
}

func TestCalibrationDiscriminates(t *testing.T) {
	rows := Calibration(1, 10)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	var lowC, lowT, highC, highT float64
	for _, r := range rows {
		if r.High <= 0.5 {
			lowC += float64(r.Count)
			lowT += r.Precision * float64(r.Count)
		} else {
			highC += float64(r.Count)
			highT += r.Precision * float64(r.Count)
		}
	}
	if lowC == 0 || highC == 0 {
		t.Fatal("empty belief half")
	}
	lowP, highP := lowT/lowC, highT/highC
	if highP <= lowP {
		t.Errorf("beliefs not discriminative: precision above 0.5 = %.3f, below = %.3f", highP, lowP)
	}
	if highP < 0.85 {
		t.Errorf("high-belief precision = %.3f, want >= 0.85", highP)
	}
}

func TestTemporalSweep(t *testing.T) {
	rows := Temporal(1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Statements == 0 || r.Timelines == 0 {
			t.Fatalf("empty row %+v", r)
		}
		// Fusion never hurts year accuracy (majority voting per year).
		if r.FusedAccuracy < r.RawAccuracy-0.01 {
			t.Errorf("fusion hurt accuracy at rate %.1f: raw=%.3f fused=%.3f",
				r.ErrorRate, r.RawAccuracy, r.FusedAccuracy)
		}
		// Accuracy decreases with noise.
		if i > 0 && r.FusedAccuracy > rows[i-1].FusedAccuracy+0.01 {
			t.Errorf("accuracy rose with noise: %+v after %+v", r, rows[i-1])
		}
	}
	if rows[0].FusedAccuracy < 0.999 {
		t.Errorf("noiseless fused accuracy = %.3f, want 1.0", rows[0].FusedAccuracy)
	}
}

func TestGranularityShape(t *testing.T) {
	rows := Granularity(1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	f1 := map[string]map[string]float64{}
	for _, r := range rows {
		if f1[r.Method] == nil {
			f1[r.Method] = map[string]float64{}
		}
		f1[r.Method][r.Granularity] = r.F1
	}
	for method, byGran := range f1 {
		if byGran["by-source"] < byGran["by-extractor"] {
			t.Errorf("%s: extractor-level provenance outperformed source-level: %v", method, byGran)
		}
	}
}

func TestScalabilityShape(t *testing.T) {
	rows := Scalability(1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		// Claim volume grows with the world.
		if rows[i].Statements <= rows[i-1].Statements {
			t.Errorf("statements did not grow: %+v then %+v", rows[i-1], rows[i])
		}
		// Fusion cost grows no worse than quadratically in claim volume
		// (correlation detection is quadratic in sources, everything else
		// linear in claims).
		ratio := float64(rows[i].Statements) / float64(rows[i-1].Statements)
		if rows[i-1].FuseMS > 0 {
			cost := float64(rows[i].FuseMS) / float64(rows[i-1].FuseMS)
			if cost > ratio*ratio*1.5 {
				t.Errorf("fusion cost superquadratic: volume x%.1f, cost x%.1f", ratio, cost)
			}
		}
	}
}
