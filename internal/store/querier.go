package store

// Querier is the read surface of a store that the HTTP layer
// (internal/serve) depends on. *Store implements it natively; wrappers
// such as the chaos-injecting querier in chaos.go implement it by
// delegation, so the serving path can be composed with fault injection
// (or, later, sharding and remote stores) without the handlers knowing.
//
// Every method must be safe for unsynchronised concurrent use, like the
// immutable *Store it usually wraps.
type Querier interface {
	// Len returns the number of facts.
	Len() int
	// EntityCount returns the number of distinct entities.
	EntityCount() int
	// Classes returns the distinct entity classes in sorted order.
	Classes() []string
	// Entity returns every fact about the entity in canonical order.
	Entity(id string) []Fact
	// Triples returns the accepted values for (entity, attr).
	Triples(entity, attr string) []Fact
	// Lookup answers a query; empty fields are wildcards.
	Lookup(q Query) []Fact
}

// LimitedQuerier is the optional fast path for capped queries: LookupN
// returns at most limit facts (the first in canonical order) plus the
// true total match count. The serving layer type-asserts for it so a
// sharded store can push the result cap down to every shard; queriers
// that do not implement it (e.g. the chaos wrapper) fall back to a full
// Lookup plus truncation, with identical output.
type LimitedQuerier interface {
	Querier
	// LookupN answers q with at most limit facts and the total match
	// count; limit <= 0 means unlimited.
	LookupN(q Query, limit int) (facts []Fact, total int)
}

var (
	_ LimitedQuerier = (*Store)(nil)
	_ LimitedQuerier = (*Sharded)(nil)
)
