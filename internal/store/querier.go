package store

// Querier is the read surface of a store that the HTTP layer
// (internal/serve) depends on. *Store implements it natively; wrappers
// such as the chaos-injecting querier in chaos.go implement it by
// delegation, so the serving path can be composed with fault injection
// (or, later, sharding and remote stores) without the handlers knowing.
//
// Every method must be safe for unsynchronised concurrent use, like the
// immutable *Store it usually wraps.
type Querier interface {
	// Len returns the number of facts.
	Len() int
	// EntityCount returns the number of distinct entities.
	EntityCount() int
	// Classes returns the distinct entity classes in sorted order.
	Classes() []string
	// Entity returns every fact about the entity in canonical order.
	Entity(id string) []Fact
	// Triples returns the accepted values for (entity, attr).
	Triples(entity, attr string) []Fact
	// Lookup answers a query; empty fields are wildcards.
	Lookup(q Query) []Fact
}

var _ Querier = (*Store)(nil)
