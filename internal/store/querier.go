package store

// Querier is the read surface of a store that the HTTP layer
// (internal/serve) depends on. *Store implements it natively; wrappers
// such as the chaos-injecting querier in chaos.go implement it by
// delegation, so the serving path can be composed with fault injection
// (or, later, sharding and remote stores) without the handlers knowing.
//
// Every method must be safe for unsynchronised concurrent use, like the
// immutable *Store it usually wraps.
type Querier interface {
	// Len returns the number of facts.
	Len() int
	// EntityCount returns the number of distinct entities.
	EntityCount() int
	// Classes returns the distinct entity classes in sorted order.
	Classes() []string
	// Entity returns every fact about the entity in canonical order.
	Entity(id string) []Fact
	// Triples returns the accepted values for (entity, attr).
	Triples(entity, attr string) []Fact
	// Lookup answers a pattern; empty fields are wildcards.
	Lookup(q Pattern) []Fact
}

// LimitedQuerier is the optional fast path for capped queries: LookupN
// returns at most limit facts (the first in canonical order) plus the
// true total match count. The serving layer type-asserts for it so a
// sharded store can push the result cap down to every shard; queriers
// that do not implement it (e.g. the chaos wrapper) fall back to a full
// Lookup plus truncation, with identical output.
type LimitedQuerier interface {
	Querier
	// LookupN answers q with at most limit facts and the total match
	// count; limit <= 0 means unlimited.
	LookupN(q Pattern, limit int) (facts []Fact, total int)
}

// FactCursor pulls matching facts one at a time, in canonical order.
// Next returns false when the stream is exhausted; cursors are
// single-consumer and not safe for concurrent use (create one per
// consumer — creation is cheap, the underlying store is shared).
type FactCursor interface {
	Next() (Fact, bool)
}

// Iterator is the optional streaming read: Iterate pushes every fact
// matching q, in the order Lookup would return them, without allocating
// a result slice. The datalog executor (internal/datalog) type-asserts
// for it on the hot probe path; queriers that lack it fall back to
// Lookup with identical output.
type Iterator interface {
	// Iterate calls yield for each match until yield returns false;
	// reports whether the walk completed.
	Iterate(q Pattern, yield func(Fact) bool) bool
}

// CountEstimator is the optional selectivity oracle: CountEstimate
// returns an upper bound on the matches for q straight from the
// postings-list lengths, in O(1) and with zero allocation. It powers the
// datalog planner's greedy clause ordering — statistics-free in the
// janus-datalog sense, because the index is the statistic.
type CountEstimator interface {
	CountEstimate(q Pattern) int
}

// Selector is the optional pull-based read: Select opens a cursor over
// the matches for q. The datalog executor uses it to batch the first
// clause's stream for deterministic parallel execution.
type Selector interface {
	Select(q Pattern) FactCursor
}

var (
	_ LimitedQuerier = (*Store)(nil)
	_ LimitedQuerier = (*Sharded)(nil)

	_ Iterator       = (*Store)(nil)
	_ Iterator       = (*Sharded)(nil)
	_ CountEstimator = (*Store)(nil)
	_ CountEstimator = (*Sharded)(nil)
	_ Selector       = (*Store)(nil)
	_ Selector       = (*Sharded)(nil)
)
