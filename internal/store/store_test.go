package store

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"akb/internal/core"
	"akb/internal/kb"
)

// testFacts is a small hand-built KB exercising every index dimension:
// multiple classes, multi-truth attributes, hierarchy ancestors and an
// uncovered (classless) entity.
func testFacts() []Fact {
	return []Fact{
		{Entity: "Casablanca", Class: "Film", Attr: "director", Value: "Michael Curtiz", Confidence: 0.97, Sources: 5},
		{Entity: "Casablanca", Class: "Film", Attr: "language", Value: "English", Confidence: 0.92, Sources: 4},
		{Entity: "Casablanca", Class: "Film", Attr: "language", Value: "French", Confidence: 0.71, Sources: 2},
		{Entity: "Susie Fang", Class: "", Attr: "birth place", Value: "Wuhan", Confidence: 0.88, Sources: 3,
			Ancestors: []string{"Hubei", "China"}},
		{Entity: "Moby Dick", Class: "Book", Attr: "author", Value: "Herman Melville", Confidence: 0.99, Sources: 7},
		{Entity: "Moby Dick", Class: "Book", Attr: "setting", Value: "Nantucket", Confidence: 0.64, Sources: 1,
			Ancestors: []string{"Massachusetts", "United States"}},
		{Entity: "Adelaide Uni", Class: "University", Attr: "location", Value: "Adelaide", Confidence: 0.93, Sources: 4,
			Ancestors: []string{"South Australia", "Australia"}},
	}
}

func TestLookupMatchesScan(t *testing.T) {
	s := New(testFacts())
	queries := []Query{
		{},
		{Entity: "Casablanca"},
		{Entity: "Casablanca", Attr: "language"},
		{Entity: "missing"},
		{Entity: "Casablanca", Attr: "missing"},
		{Class: "Film"},
		{Class: "Book", Attr: "author"},
		{Attr: "language"},
		{Attr: "language", Value: "French"},
		{Value: "China"},     // hierarchy: matches Wuhan via ancestors
		{Value: "Australia"}, // hierarchy: matches Adelaide
		{Value: "Adelaide"},  // exact leaf
		{Value: "missing"},
		{Class: "Film", Value: "English"},
		{Class: "University", Attr: "location", Value: "Australia"},
	}
	for _, q := range queries {
		got, want := s.Lookup(q), s.Scan(q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Lookup(%+v) != Scan:\n got: %+v\nwant: %+v", q, got, want)
		}
	}
}

func TestMultiTruthTriples(t *testing.T) {
	s := New(testFacts())
	vals := s.Triples("Casablanca", "language")
	if len(vals) != 2 {
		t.Fatalf("Triples = %+v, want both accepted languages", vals)
	}
	if vals[0].Value != "English" || vals[1].Value != "French" {
		t.Errorf("values out of canonical order: %+v", vals)
	}
	if vals[0].Confidence != 0.92 || vals[0].Sources != 4 {
		t.Errorf("annotations lost: %+v", vals[0])
	}
}

func TestEntityAndCounts(t *testing.T) {
	s := New(testFacts())
	if s.Len() != 7 {
		t.Errorf("Len = %d, want 7", s.Len())
	}
	if s.EntityCount() != 4 {
		t.Errorf("EntityCount = %d, want 4", s.EntityCount())
	}
	if got := s.Classes(); !reflect.DeepEqual(got, []string{"Book", "Film", "University"}) {
		t.Errorf("Classes = %v", got)
	}
	if facts := s.Entity("Moby Dick"); len(facts) != 2 {
		t.Errorf("Entity(Moby Dick) = %+v", facts)
	}
	if facts := s.Entity("nobody"); facts != nil {
		t.Errorf("unknown entity returned %+v", facts)
	}
}

func TestNewDeduplicatesAndSorts(t *testing.T) {
	dup := append(testFacts(), testFacts()...)
	s := New(dup)
	if s.Len() != 7 {
		t.Fatalf("dedup failed: %d facts", s.Len())
	}
	facts := s.Facts()
	for i := 1; i < len(facts); i++ {
		if factLess(facts[i], facts[i-1]) {
			t.Fatalf("facts out of order at %d: %+v before %+v", i, facts[i-1], facts[i])
		}
	}
}

// TestLookupN pins the capped-lookup contract on the flat store: the
// returned facts are the first `limit` of Lookup's answer, the total is
// the full match count, and non-positive limits mean unlimited.
func TestLookupN(t *testing.T) {
	s := New(testFacts())
	queries := []Query{
		{}, {Entity: "Casablanca"}, {Class: "Film"}, {Attr: "language"},
		{Value: "China"}, {Entity: "missing"},
	}
	for _, q := range queries {
		full := s.Lookup(q)
		for _, limit := range []int{-1, 0, 1, 2, len(full), len(full) + 10} {
			got, total := s.LookupN(q, limit)
			if total != len(full) {
				t.Errorf("LookupN(%+v, %d) total = %d, want %d", q, limit, total, len(full))
			}
			want := full
			if limit > 0 && limit < len(full) {
				want = full[:limit]
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("LookupN(%+v, %d) = %+v, want %+v", q, limit, got, want)
			}
		}
	}
}

// smallPipeline runs a scaled-down end-to-end pipeline for integration
// tests; the result is cached per test binary since multiple tests want it.
var smallPipeline = sync.OnceValues(func() (*core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.World = kb.WorldConfig{Seed: 1, EntitiesPerClass: 10, AttrsPerEntity: 8}
	cfg.Stream.TotalRecords = 3000
	cfg.Sites.SitesPerClass = 2
	cfg.Sites.PagesPerSite = 5
	cfg.Corpus.DocsPerClass = 5
	return core.New(core.WithConfig(cfg)).Run(context.Background())
})

// TestFromResultAgainstFusion cross-checks the snapshot against the live
// fusion result it came from: every accepted truth appears exactly once
// with its belief, and the indexed store answers the same as a scan.
func TestFromResultAgainstFusion(t *testing.T) {
	res, err := smallPipeline()
	if err != nil {
		t.Fatal(err)
	}
	s := FromResult(res)
	if s.Len() == 0 {
		t.Fatal("empty store from live pipeline")
	}
	truths := 0
	for _, d := range res.Fused().Decisions {
		truths += len(d.Truths)
	}
	if s.Len() != truths {
		t.Errorf("store has %d facts, fusion accepted %d truths", s.Len(), truths)
	}
	// Every fact must carry the entity's real class and a confidence.
	for _, f := range s.Facts() {
		if f.Class == "" {
			t.Errorf("fact without class: %+v", f)
		}
		if f.Confidence <= 0 {
			t.Errorf("fact without belief: %+v", f)
		}
	}
	// Index answers must equal scan answers on live data too.
	for _, class := range s.Classes() {
		q := Query{Class: class}
		if !reflect.DeepEqual(s.Lookup(q), s.Scan(q)) {
			t.Errorf("Lookup != Scan for class %q", class)
		}
	}
	ent := s.Facts()[0].Entity
	for _, q := range []Query{{Entity: ent}, {Entity: ent, Attr: s.Facts()[0].Attr}} {
		if !reflect.DeepEqual(s.Lookup(q), s.Scan(q)) {
			t.Errorf("Lookup != Scan for %+v", q)
		}
	}
}

// TestConcurrentReaders hammers a shared store from many goroutines; run
// under -race it proves the lock-free read path is actually lock-free
// safe (nothing is written after New).
func TestConcurrentReaders(t *testing.T) {
	s := New(testFacts())
	queries := []Query{
		{Entity: "Casablanca"},
		{Class: "Film"},
		{Value: "Australia"},
		{Attr: "language"},
		{},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := queries[(g+i)%len(queries)]
				if got, want := s.Lookup(q), s.Scan(q); len(got) != len(want) {
					t.Errorf("goroutine %d: Lookup/%d Scan/%d for %+v", g, len(got), len(want), q)
					return
				}
				s.Entity("Moby Dick")
				s.Triples("Casablanca", "language")
				s.Classes()
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkLookupVsScanSmall(b *testing.B) {
	// A quick sanity benchmark on synthetic data; the real criterion
	// benchmark (BenchmarkStoreLookup) runs on pipeline-scale data at the
	// repo root and writes BENCH_serve.json.
	facts := make([]Fact, 0, 5000)
	for i := 0; i < 5000; i++ {
		facts = append(facts, Fact{
			Entity: fmt.Sprintf("E%d", i%500),
			Class:  fmt.Sprintf("C%d", i%5),
			Attr:   fmt.Sprintf("a%d", i%20),
			Value:  fmt.Sprintf("v%d", i),
		})
	}
	s := New(facts)
	q := Query{Entity: "E42", Attr: "a2"}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Lookup(q)
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Scan(q)
		}
	})
}
