package store

import (
	"fmt"
	"reflect"
	"testing"
)

// patternMatrix is shardedQueries plus Exact variants of every pattern
// that names a value: the matrix the streaming-read equivalence tests
// (Iterate, Select, CountEstimate) run against both layouts.
func patternMatrix(s *Store) []Pattern {
	qs := shardedQueries(s)
	for _, q := range qs {
		if q.Value != "" {
			e := q
			e.Exact = true
			qs = append(qs, e)
		}
	}
	return qs
}

// TestExactValueMatching pins the join semantics: Exact patterns match the
// accepted value verbatim, never via hierarchy generalisation, on Lookup,
// Scan, LookupN, Iterate and Select alike.
func TestExactValueMatching(t *testing.T) {
	s := New(testFacts())

	// "Australia" is an ancestor of Adelaide, not an accepted value:
	// hierarchical matching finds the Adelaide fact, exact matching must
	// not.
	if got := s.Lookup(Pattern{Value: "Australia"}); len(got) != 1 {
		t.Fatalf("hierarchical Lookup(Australia) = %d facts, want 1", len(got))
	}
	if got := s.Lookup(Pattern{Value: "Australia", Exact: true}); len(got) != 0 {
		t.Errorf("exact Lookup(Australia) = %+v, want none", got)
	}
	// A leaf value matches both ways.
	for _, exact := range []bool{false, true} {
		got := s.Lookup(Pattern{Value: "Adelaide", Exact: exact})
		if len(got) != 1 || got[0].Entity != "Adelaide Uni" {
			t.Errorf("Lookup(Adelaide, exact=%v) = %+v, want the Adelaide Uni fact", exact, got)
		}
	}
	// Exact composes with other fields, whichever index answers.
	if got := s.Lookup(Pattern{Class: "University", Value: "Australia", Exact: true}); len(got) != 0 {
		t.Errorf("exact class+value lookup = %+v, want none", got)
	}
	if got := s.Lookup(Pattern{Entity: "Susie Fang", Value: "China", Exact: true}); len(got) != 0 {
		t.Errorf("exact entity+value lookup = %+v, want none", got)
	}
	if got := s.Lookup(Pattern{Entity: "Susie Fang", Value: "Wuhan", Exact: true}); len(got) != 1 {
		t.Errorf("exact entity+leaf lookup = %+v, want the Wuhan fact", got)
	}

	// Lookup == Scan must keep holding with Exact set.
	for _, q := range patternMatrix(s) {
		if got, want := s.Lookup(q), s.Scan(q); !reflect.DeepEqual(got, want) {
			t.Errorf("Lookup(%+v) != Scan:\n got: %+v\nwant: %+v", q, got, want)
		}
	}
}

// TestIterateAndSelectMatchLookup proves the streaming reads are the same
// relation Lookup materialises — same facts, same canonical order — on
// the flat store and on every sharded layout.
func TestIterateAndSelectMatchLookup(t *testing.T) {
	facts := testFacts()
	flat := New(facts)
	queriers := map[string]interface {
		Lookup(Pattern) []Fact
		Iterate(Pattern, func(Fact) bool) bool
		Select(Pattern) FactCursor
		CountEstimate(Pattern) int
	}{
		"flat": flat,
	}
	for _, n := range []int{1, 3, 8} {
		queriers[fmt.Sprintf("sharded-%d", n)] = NewSharded(facts, n)
	}
	for name, q := range queriers {
		t.Run(name, func(t *testing.T) {
			for _, p := range patternMatrix(flat) {
				want := q.Lookup(p)

				var pushed []Fact
				if !q.Iterate(p, func(f Fact) bool {
					pushed = append(pushed, f)
					return true
				}) {
					t.Errorf("Iterate(%+v) reported early stop without one", p)
				}
				if !factsEqual(pushed, want) {
					t.Errorf("Iterate(%+v):\n got: %+v\nwant: %+v", p, pushed, want)
				}

				var pulled []Fact
				cur := q.Select(p)
				for {
					f, ok := cur.Next()
					if !ok {
						break
					}
					pulled = append(pulled, f)
				}
				if !factsEqual(pulled, want) {
					t.Errorf("Select(%+v):\n got: %+v\nwant: %+v", p, pulled, want)
				}

				// The estimate is a free upper bound: never below the true
				// cardinality, never above the store size.
				if est := q.CountEstimate(p); est < len(want) || est > flat.Len() {
					t.Errorf("CountEstimate(%+v) = %d outside [%d, %d]", p, est, len(want), flat.Len())
				}
			}
		})
	}
}

// TestIterateEarlyStop pins the yield contract: returning false stops the
// walk immediately and Iterate reports the incomplete traversal.
func TestIterateEarlyStop(t *testing.T) {
	s := New(testFacts())
	seen := 0
	completed := s.Iterate(Pattern{}, func(Fact) bool {
		seen++
		return seen < 3
	})
	if completed || seen != 3 {
		t.Fatalf("early stop: completed=%v seen=%d, want false/3", completed, seen)
	}
}

// TestCountEstimateUsesPostings pins the estimator to the index it
// advertises: entity-constrained patterns estimate from the entity
// postings even when a broad residual field is present.
func TestCountEstimateUsesPostings(t *testing.T) {
	s := New(testFacts())
	cases := []struct {
		p    Pattern
		want int
	}{
		{Pattern{}, s.Len()},
		{Pattern{Entity: "Casablanca"}, 3},
		{Pattern{Entity: "Casablanca", Attr: "language"}, 2},
		{Pattern{Entity: "missing"}, 0},
		{Pattern{Class: "Film"}, 3},
		{Pattern{Attr: "language"}, 2},
		// Value postings include hierarchy generalisations, so the exact
		// pattern's estimate stays the superset length — an upper bound.
		{Pattern{Value: "Australia"}, 1},
		{Pattern{Value: "Australia", Exact: true}, 1},
	}
	for _, c := range cases {
		if got := s.CountEstimate(c.p); got != c.want {
			t.Errorf("CountEstimate(%+v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func factsEqual(a, b []Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
