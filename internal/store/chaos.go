package store

import (
	"fmt"
	"sync/atomic"
	"time"

	"akb/internal/resilience"
)

// ChaosController drives deterministic fault injection on the serving
// path. It reuses the pipeline's resilience.FaultPlan — the same seeded
// (stage, attempt) decisions that chaos-test extraction stages — but
// aims it at store reads: each query method consults the plan under the
// stage name "store/<method>" and may be slowed (StageFault.Latency) or
// blown up (StageFault.FailProb) before the real store answers.
//
// Injected failures surface as panics, not error returns: the Querier
// interface is error-free by design (reads of an immutable store cannot
// organically fail), so a chaos failure models the only failure shape
// left — a bug — and must be absorbed by the server's recovery
// middleware, never by the store. Transient plan entries panic with an
// error value (errors.Is(..., resilience.ErrInjected) holds), permanent
// entries panic with a plain string; both exercise the same recovery
// path while staying distinguishable in tests.
//
// One controller can wrap any number of store generations (hot reload
// swaps stores under a running server), sharing a single on/off switch,
// call sequence and fault counters across all of them.
type ChaosController struct {
	plan    *resilience.FaultPlan
	enabled atomic.Bool
	calls   atomic.Int64
	slowed  atomic.Int64
	panics  atomic.Int64
}

// Stage names the chaos querier consults the plan under, one per
// faultable Querier method. Summary methods (Len, EntityCount, Classes)
// are never faulted: they back the health endpoints, and liveness
// reporting must stay reliable even under full chaos.
const (
	ChaosStageEntity  = "store/entity"
	ChaosStageTriples = "store/triples"
	ChaosStageLookup  = "store/lookup"
)

// NewChaosController builds a controller over the plan. The controller
// starts enabled; SetEnabled(false) turns injection off without
// unwrapping queriers, which is how the chaos harness proves a faulted
// server returns to clean service.
func NewChaosController(plan *resilience.FaultPlan) *ChaosController {
	c := &ChaosController{plan: plan}
	c.enabled.Store(true)
	return c
}

// Wrap returns a Querier that injects the controller's faults in front
// of q. The signature matches serve.Config.WrapQuerier, so the same
// controller re-wraps every store generation a hot-reloading server
// swaps in.
func (c *ChaosController) Wrap(q Querier) Querier { return &chaosQuerier{ctl: c, base: q} }

// SetEnabled switches injection on or off for every querier the
// controller has wrapped.
func (c *ChaosController) SetEnabled(on bool) { c.enabled.Store(on) }

// Calls returns how many faultable store reads passed through wrapped
// queriers while injection was enabled.
func (c *ChaosController) Calls() int64 { return c.calls.Load() }

// Slowed returns how many reads had latency injected.
func (c *ChaosController) Slowed() int64 { return c.slowed.Load() }

// Panics returns how many reads were failed by injection.
func (c *ChaosController) Panics() int64 { return c.panics.Load() }

// inject applies the plan to one read. The global call sequence is the
// plan's attempt number, so a single-threaded request stream replays
// byte-identically for a given seed.
func (c *ChaosController) inject(stage string) {
	if !c.enabled.Load() {
		return
	}
	attempt := int(c.calls.Add(1))
	delay, err := c.plan.Inject(stage, attempt)
	if delay > 0 {
		c.slowed.Add(1)
		time.Sleep(delay)
	}
	if err != nil {
		c.panics.Add(1)
		if resilience.IsTransient(err) {
			panic(err)
		}
		panic(fmt.Sprintf("chaos: %v", err))
	}
}

// chaosQuerier is one wrapped store generation; see ChaosController.
type chaosQuerier struct {
	ctl  *ChaosController
	base Querier
}

func (q *chaosQuerier) Len() int          { return q.base.Len() }
func (q *chaosQuerier) EntityCount() int  { return q.base.EntityCount() }
func (q *chaosQuerier) Classes() []string { return q.base.Classes() }

func (q *chaosQuerier) Entity(id string) []Fact {
	q.ctl.inject(ChaosStageEntity)
	return q.base.Entity(id)
}

func (q *chaosQuerier) Triples(entity, attr string) []Fact {
	q.ctl.inject(ChaosStageTriples)
	return q.base.Triples(entity, attr)
}

func (q *chaosQuerier) Lookup(p Pattern) []Fact {
	q.ctl.inject(ChaosStageLookup)
	return q.base.Lookup(p)
}
