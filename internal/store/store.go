// Package store turns a pipeline result into a servable knowledge base:
// an immutable, indexed snapshot of the fused triples with their
// confidences, support counts and hierarchy context.
//
// The pipeline (internal/core) ends where the paper's Figure 1 ends — an
// augmented KB in process memory — but the ROADMAP's north star is a
// system that answers queries long after the fusion run finished. Store
// is the bridge: it is built once from a *core.Result (or loaded from a
// snapshot written earlier), never mutated afterwards, and therefore safe
// for lock-free concurrent reads from any number of server goroutines.
//
// Four inverted indexes back the query shapes the HTTP API
// (internal/serve) exposes: by entity, by (entity, attribute), by class,
// and by value. The by-value index is hierarchy-aware: a fact is indexed
// under its accepted value and under every generalisation of that value,
// so querying value=Australia also finds entities whose accepted birth
// place is Adelaide — the paper's hierarchical-value-space semantics
// carried through to serving.
package store

import (
	"sort"

	"akb/internal/core"
	"akb/internal/extract"
	"akb/internal/kb"
)

// Fact is one accepted (entity, attribute, value) triple of the fused KB,
// annotated with what a consumer needs to act on it: the fused belief,
// the number of supporting sources, the entity's class and the value's
// hierarchy ancestors. Field order is fixed by the snapshot codec.
type Fact struct {
	// Entity is the subject's surface name, e.g. "Film 12".
	Entity string `json:"entity"`
	// Class is the entity's ontology class; empty when the entity is not
	// covered by the ground-truth world (e.g. a discovered entity).
	Class string `json:"class,omitempty"`
	// Attr is the canonical attribute name.
	Attr string `json:"attr"`
	// Value is the accepted value's lexical form.
	Value string `json:"value"`
	// Confidence is the fusion method's belief that the value is true.
	Confidence float64 `json:"confidence"`
	// Sources is the number of sources that asserted the value.
	Sources int `json:"sources,omitempty"`
	// Ancestors are the value's hierarchy generalisations from immediate
	// parent to root, when the value participates in a hierarchy.
	Ancestors []string `json:"ancestors,omitempty"`
}

// Pattern selects facts. Empty fields are wildcards; set fields must all
// match. Value matches hierarchically by default: a fact matches when its
// accepted value equals Value or specialises it (Value is one of the
// fact's ancestors). Exact disables the hierarchy expansion so Value must
// match the accepted value verbatim — the semantics a join needs when a
// variable binding is substituted into the value position.
//
// Pattern is the one query currency of the read path: Lookup/LookupN/
// Iterate/Select on Store and Sharded, the /v1/query URL-parameter
// adapter in internal/serve, and every clause of a datalog query
// (internal/datalog) all speak it.
type Pattern struct {
	Entity string
	Attr   string
	Class  string
	Value  string
	// Exact requires Value to equal the fact's accepted value verbatim,
	// with no hierarchical generalisation match.
	Exact bool
}

// Query is the former name of Pattern.
//
// Deprecated: use Pattern. The type was renamed when the read surface
// grew multi-clause datalog queries, where "query" means a conjunction of
// patterns rather than one of them.
type Query = Pattern

// Store is the immutable, indexed snapshot. All methods are safe for
// unsynchronised concurrent use: nothing is written after New returns.
type Store struct {
	facts []Fact

	byEntity     map[string][]int32
	byEntityAttr map[string][]int32
	byAttr       map[string][]int32
	byClass      map[string][]int32
	byValue      map[string][]int32

	classes []string
	nEntity int
}

// New builds a store over the facts. The input is copied, sorted into the
// canonical (entity, attr, value, class) order and deduplicated, so every
// lookup — indexed or scanned — returns facts in the same deterministic
// order.
func New(facts []Fact) *Store {
	fs := make([]Fact, len(facts))
	copy(fs, facts)
	sort.Slice(fs, func(i, j int) bool { return factLess(fs[i], fs[j]) })
	// Deduplicate on the identity key; the first (highest-sorted) wins.
	dedup := fs[:0]
	for i, f := range fs {
		if i > 0 && sameFactKey(f, fs[i-1]) {
			continue
		}
		dedup = append(dedup, f)
	}
	fs = dedup

	s := &Store{
		facts:        fs,
		byEntity:     make(map[string][]int32),
		byEntityAttr: make(map[string][]int32),
		byAttr:       make(map[string][]int32),
		byClass:      make(map[string][]int32),
		byValue:      make(map[string][]int32),
	}
	for i, f := range fs {
		idx := int32(i)
		s.byEntity[f.Entity] = append(s.byEntity[f.Entity], idx)
		s.byEntityAttr[entityAttrKey(f.Entity, f.Attr)] = append(s.byEntityAttr[entityAttrKey(f.Entity, f.Attr)], idx)
		s.byAttr[f.Attr] = append(s.byAttr[f.Attr], idx)
		if f.Class != "" {
			s.byClass[f.Class] = append(s.byClass[f.Class], idx)
		}
		s.byValue[f.Value] = append(s.byValue[f.Value], idx)
		for _, anc := range f.Ancestors {
			s.byValue[anc] = append(s.byValue[anc], idx)
		}
	}
	s.nEntity = len(s.byEntity)
	for c := range s.byClass {
		s.classes = append(s.classes, c)
	}
	sort.Strings(s.classes)
	return s
}

// FromResult snapshots a pipeline result: one fact per accepted truth of
// every fusion decision, annotated with the entity's class and the
// value's hierarchy ancestors from the result's world.
func FromResult(res *core.Result) *Store {
	return New(ResultFacts(res))
}

// ResultFacts extracts the fused facts of a pipeline result without
// building indexes — the shared input of FromResult and
// ShardedFromResult.
func ResultFacts(res *core.Result) []Fact {
	fused := res.Fused()
	if fused == nil {
		return nil
	}
	var facts []Fact
	for _, d := range fused.Decisions {
		entity := extract.AttrFromIRI(d.Item.Subject)
		attr := extract.AttrFromIRI(d.Item.Predicate)
		class := ""
		if res.World != nil {
			if e, ok := res.World.Entity(entity); ok {
				class = e.Class
			}
		}
		for _, tr := range d.Truths {
			sources := 0
			if vc := d.Item.Value(tr); vc != nil {
				sources = vc.SupportCount()
			}
			var anc []string
			if res.World != nil && res.World.Hier != nil {
				anc = res.World.Hier.Ancestors(tr.Value)
			}
			facts = append(facts, Fact{
				Entity:     entity,
				Class:      class,
				Attr:       attr,
				Value:      tr.Value,
				Confidence: d.Belief[tr.Key()],
				Sources:    sources,
				Ancestors:  anc,
			})
		}
	}
	return facts
}

// WorldFacts materialises a ground-truth world as store facts: one fact
// per true (entity, attribute, value) with full confidence and the
// value's hierarchy ancestors. It bypasses extraction and fusion, so
// benchmarks and load tests can build KB-scale stores in milliseconds —
// a store of *true* facts, shaped exactly like a fused one.
func WorldFacts(w *kb.World) []Fact {
	var facts []Fact
	for _, class := range w.Ontology.ClassNames() {
		for _, e := range w.EntitiesOf(class) {
			attrs := make([]string, 0, len(e.Values))
			for a := range e.Values {
				attrs = append(attrs, a)
			}
			sort.Strings(attrs)
			for _, a := range attrs {
				for _, v := range e.Values[a] {
					facts = append(facts, Fact{
						Entity:     e.Name,
						Class:      class,
						Attr:       a,
						Value:      v,
						Confidence: 1,
						Sources:    1,
						Ancestors:  w.Hier.Ancestors(v),
					})
				}
			}
		}
	}
	return facts
}

// FromWorld builds a store over a world's ground-truth facts; see
// WorldFacts.
func FromWorld(w *kb.World) *Store { return New(WorldFacts(w)) }

// Len returns the number of facts.
func (s *Store) Len() int { return len(s.facts) }

// EntityCount returns the number of distinct entities.
func (s *Store) EntityCount() int { return s.nEntity }

// Classes returns the distinct entity classes in sorted order. The
// returned slice must not be modified.
func (s *Store) Classes() []string { return s.classes }

// Facts returns every fact in canonical order. The returned slice must
// not be modified.
func (s *Store) Facts() []Fact { return s.facts }

// Entity returns every fact about the entity in canonical order, nil when
// the entity is unknown.
func (s *Store) Entity(id string) []Fact {
	return s.gather(s.byEntity[id], Pattern{})
}

// Triples returns the accepted values for (entity, attr) — all of them,
// with confidences and ancestors, since multi-truth attributes accept
// several values at once.
func (s *Store) Triples(entity, attr string) []Fact {
	return s.gather(s.byEntityAttr[entityAttrKey(entity, attr)], Pattern{})
}

// candidates resolves the most selective postings list for q and strips
// the fields that list already guarantees. all reports the wildcard
// query, whose answer is every fact.
func (s *Store) candidates(q Pattern) (cand []int32, rest Pattern, all bool) {
	rest = q
	switch {
	case q.Entity != "" && q.Attr != "":
		cand = s.byEntityAttr[entityAttrKey(q.Entity, q.Attr)]
		rest.Entity, rest.Attr = "", ""
	case q.Entity != "":
		cand = s.byEntity[q.Entity]
		rest.Entity = ""
	case q.Class != "":
		cand = s.byClass[q.Class]
		rest.Class = ""
	case q.Attr != "":
		cand = s.byAttr[q.Attr]
		rest.Attr = ""
	case q.Value != "":
		// The by-value postings already encode the hierarchy semantics
		// (facts are posted under their value and every ancestor), so no
		// residual value filter is needed — unless the pattern is Exact,
		// where the postings are a superset (they include specialisations)
		// and the verbatim check stays in the residual.
		cand = s.byValue[q.Value]
		if !q.Exact {
			rest.Value = ""
		}
	default:
		return nil, rest, true
	}
	return cand, rest, false
}

// Lookup answers a query through the most selective index available, then
// filters the candidate list on the remaining fields. Its output is
// always identical to Scan's; only the cost differs.
func (s *Store) Lookup(q Pattern) []Fact {
	cand, rest, all := s.candidates(q)
	if all {
		out := make([]Fact, len(s.facts))
		copy(out, s.facts)
		return out
	}
	return s.gather(cand, rest)
}

// LookupN answers a query like Lookup but materialises at most limit
// facts (the first ones in canonical order) while still counting every
// match. limit <= 0 means unlimited. It backs the serving layer's
// result cap: the response needs only the first page plus the true
// total, so the tail is counted, never copied.
func (s *Store) LookupN(q Pattern, limit int) (out []Fact, total int) {
	if limit <= 0 {
		out = s.Lookup(q)
		return out, len(out)
	}
	cand, rest, all := s.candidates(q)
	if all {
		total = len(s.facts)
		n := limit
		if n > total {
			n = total
		}
		out = make([]Fact, n)
		copy(out, s.facts[:n])
		return out, total
	}
	for _, i := range cand {
		f := s.facts[i]
		if !matches(f, rest) {
			continue
		}
		total++
		if len(out) < limit {
			out = append(out, f)
		}
	}
	return out, total
}

// Scan answers a query by brute force over every fact. It is the
// reference semantics for Lookup — tests assert equivalence and the
// BenchmarkStoreLookup baseline measures the index advantage against it.
func (s *Store) Scan(q Pattern) []Fact {
	var out []Fact
	for _, f := range s.facts {
		if matches(f, q) {
			out = append(out, f)
		}
	}
	return out
}

// Iterate streams the facts matching q — the same facts Lookup returns,
// in the same canonical order — into yield without materialising a
// result slice. Iteration stops early when yield returns false; the
// return value reports whether the walk ran to completion. It is the
// allocation-free read the datalog executor's index-nested-loop probes
// are built on: a probe per binding costs postings-walk time and zero
// heap.
func (s *Store) Iterate(q Pattern, yield func(Fact) bool) bool {
	cand, rest, all := s.candidates(q)
	if all {
		for _, f := range s.facts {
			if !yield(f) {
				return false
			}
		}
		return true
	}
	for _, i := range cand {
		if f := s.facts[i]; matches(f, rest) {
			if !yield(f) {
				return false
			}
		}
	}
	return true
}

// CountEstimate returns an upper bound on how many facts match q,
// computed in O(1) from the postings list Lookup would walk — the length
// of the most selective index entry, or the store size for the wildcard
// pattern. No statistics catalog backs it: the indexes that answer the
// query are themselves the statistic, which is exactly what the datalog
// planner's greedy clause ordering needs (estimates that are free,
// deterministic and never stale).
func (s *Store) CountEstimate(q Pattern) int {
	cand, _, all := s.candidates(q)
	if all {
		return len(s.facts)
	}
	return len(cand)
}

// Select returns a pull cursor over the facts matching q, in canonical
// order — the same sequence Lookup materialises and Iterate pushes.
// Cursors let a consumer interleave several streams (the sharded store's
// k-way merge, the datalog executor's batch dispatcher) without buffering
// whole relations.
func (s *Store) Select(q Pattern) FactCursor {
	cand, rest, all := s.candidates(q)
	if all {
		return &sliceCursor{facts: s.facts}
	}
	return &postingsCursor{facts: s.facts, cand: cand, rest: rest}
}

// postingsCursor walks one postings list applying the residual filter.
type postingsCursor struct {
	facts []Fact
	cand  []int32
	rest  Pattern
	pos   int
}

func (c *postingsCursor) Next() (Fact, bool) {
	for c.pos < len(c.cand) {
		f := c.facts[c.cand[c.pos]]
		c.pos++
		if matches(f, c.rest) {
			return f, true
		}
	}
	return Fact{}, false
}

// sliceCursor walks a fact slice that needs no filtering.
type sliceCursor struct {
	facts []Fact
	pos   int
}

func (c *sliceCursor) Next() (Fact, bool) {
	if c.pos >= len(c.facts) {
		return Fact{}, false
	}
	f := c.facts[c.pos]
	c.pos++
	return f, true
}

// gather materialises the facts at the candidate positions that survive
// the residual filter. Postings are ascending, so output stays in
// canonical order.
func (s *Store) gather(cand []int32, rest Pattern) []Fact {
	var out []Fact
	for _, i := range cand {
		if f := s.facts[i]; matches(f, rest) {
			out = append(out, f)
		}
	}
	return out
}

func matches(f Fact, q Pattern) bool {
	if q.Entity != "" && f.Entity != q.Entity {
		return false
	}
	if q.Attr != "" && f.Attr != q.Attr {
		return false
	}
	if q.Class != "" && f.Class != q.Class {
		return false
	}
	if q.Value != "" && f.Value != q.Value {
		if q.Exact {
			return false
		}
		matched := false
		for _, anc := range f.Ancestors {
			if anc == q.Value {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

func entityAttrKey(entity, attr string) string { return entity + "\x00" + attr }

func factLess(a, b Fact) bool {
	if a.Entity != b.Entity {
		return a.Entity < b.Entity
	}
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.Class < b.Class
}

func sameFactKey(a, b Fact) bool {
	return a.Entity == b.Entity && a.Attr == b.Attr && a.Value == b.Value && a.Class == b.Class
}
