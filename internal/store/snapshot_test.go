package store

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(testFacts())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Facts(), s.Facts()) {
		t.Fatalf("round trip changed facts:\n got: %+v\nwant: %+v", back.Facts(), s.Facts())
	}
	// The codec is deterministic: re-serialising the loaded store must be
	// byte-identical (and therefore keep the same checksum).
	var again bytes.Buffer
	if err := back.WriteSnapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("snapshot serialisation is not deterministic")
	}
}

// TestSnapshotGolden pins the snapshot JSON layout against a checked-in
// golden file, so accidental codec changes fail loudly instead of
// silently orphaning saved snapshots. Regenerate with -update.
func TestSnapshotGolden(t *testing.T) {
	s := New(testFacts())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot differs from golden:\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSnapshotReadsV1 pins backwards compatibility: a version-1 snapshot
// (written before the checksum existed) must still load, checksum-free.
// The golden is the actual v1 output frozen when the codec moved to v2.
func TestSnapshotReadsV1(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "snapshot.v1.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v1 snapshot no longer loads: %v", err)
	}
	if !reflect.DeepEqual(back.Facts(), New(testFacts()).Facts()) {
		t.Fatal("v1 snapshot loaded different facts")
	}
}

func TestReadSnapshotRejectsBadFiles(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"not json", "hello", "decode"},
		{"wrong format", `{"format":"something-else","version":1,"count":0}`, "not an akb snapshot"},
		{"future version", `{"format":"akb-snapshot","version":99,"count":0}`, "unsupported snapshot version"},
		{"zero version", `{"format":"akb-snapshot","version":0,"count":0}`, "unsupported snapshot version"},
		{"truncated", `{"format":"akb-snapshot","version":1,"count":3,"facts":[]}`, "truncated"},
		{"v2 without checksum", `{"format":"akb-snapshot","version":2,"count":0,"facts":[]}`, "no checksum"},
		{"v2 wrong checksum", `{"format":"akb-snapshot","version":2,"count":0,"checksum":"sha256:beef","facts":[]}`, "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSnapshot(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestSnapshotDetectsBitFlip corrupts one byte of a valid v2 snapshot's
// payload and asserts the checksum, not luck, rejects it: the flipped
// file is still well-formed JSON with the right count, so only the
// integrity check stands between it and being served.
func TestSnapshotDetectsBitFlip(t *testing.T) {
	s := New(testFacts())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	i := bytes.Index(raw, []byte("Casablanca"))
	if i < 0 {
		t.Fatal("test fact missing from snapshot")
	}
	flipped := append([]byte(nil), raw...)
	flipped[i] = 'K' // "Kasablanca": valid JSON, wrong knowledge
	_, err := ReadSnapshot(bytes.NewReader(flipped))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("bit flip not caught by checksum: err = %v", err)
	}
}

func TestSnapshotFileHelpers(t *testing.T) {
	s := New(testFacts())
	path := filepath.Join(t.TempDir(), "kb.akb")
	if err := s.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("loaded %d facts, want %d", back.Len(), s.Len())
	}
	// The atomic write must leave no temp litter behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestReadSnapshotFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadSnapshotFile(filepath.Join(dir, "missing.akb")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want ErrNotExist", err)
	}
	if _, err := ReadSnapshotFile(dir); err == nil {
		t.Error("directory-as-path accepted")
	}
}

// TestWriteSnapshotFileAtomic simulates the crash-mid-write scenario: a
// replacement write that dies before the rename must leave the existing
// snapshot byte-identical and loadable, and the torn temp bytes must
// never verify as a snapshot at any truncation point.
func TestWriteSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.akb")
	old := New(testFacts())
	if err := old.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The replacement store the interrupted writer was saving.
	replacement := New([]Fact{{Entity: "New World", Attr: "status", Value: "half written", Confidence: 1}})
	var full bytes.Buffer
	if err := replacement.WriteSnapshot(&full); err != nil {
		t.Fatal(err)
	}

	// Interrupt the write at every possible point: a torn temp file
	// holding a strict prefix of the new snapshot must either fail
	// verification or be the complete payload (a crash after the last
	// payload byte but before the trailing newline loses nothing). What
	// can never happen is a prefix that verifies yet holds different
	// facts — loadable-but-wrong.
	wantSum, err := factsChecksum(replacement.Facts())
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "kb.akb.tmp-crashed")
	for n := 1; n < full.Len(); n++ {
		if err := os.WriteFile(torn, full.Bytes()[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		info, err := VerifySnapshotFile(torn)
		if err == nil && info.Checksum != wantSum {
			t.Errorf("torn snapshot (%d/%d bytes) verified with wrong payload: %+v", n, full.Len(), info)
		}
	}

	// A writer that fails before finishing must not touch the target.
	if err := writeInterrupted(t, replacement, path); err == nil {
		t.Fatal("interrupted write reported success")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("interrupted write modified the existing snapshot")
	}
	if _, err := ReadSnapshotFile(path); err != nil {
		t.Fatalf("existing snapshot unreadable after interrupted write: %v", err)
	}
}

// writeInterrupted drives the snapshot-file write path but kills the
// stream partway, standing in for a crash mid-write.
func writeInterrupted(t *testing.T, s *Store, path string) error {
	t.Helper()
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(f.Name())
	err = writeSyncClose(f, func(w io.Writer) error {
		return s.WriteSnapshot(&limitWriter{w: w, n: 64})
	})
	// No rename: the "process died" before publishing — exactly the
	// sequence WriteSnapshotFile guarantees leaves path untouched.
	return err
}

// limitWriter fails after n bytes, like a full disk or a killed process.
type limitWriter struct {
	w io.Writer
	n int
}

func (lw *limitWriter) Write(p []byte) (int, error) {
	if len(p) > lw.n {
		p = p[:lw.n]
		lw.w.Write(p)
		lw.n = 0
		return len(p), errors.New("write interrupted")
	}
	lw.n -= len(p)
	return lw.w.Write(p)
}

// TestWriteSnapshotFileTargetErrors covers the paths where the atomic
// write can't even start or can't publish.
func TestWriteSnapshotFileTargetErrors(t *testing.T) {
	s := New(testFacts())
	if err := s.WriteSnapshotFile(filepath.Join(t.TempDir(), "no", "such", "dir", "kb.akb")); err == nil {
		t.Error("write into missing directory accepted")
	}
	// Renaming over a directory fails after the temp write; the temp file
	// must be cleaned up.
	dir := t.TempDir()
	target := filepath.Join(dir, "kb.akb")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshotFile(target); err == nil {
		t.Error("rename over directory accepted")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp files left after failed publish: %v", entries)
	}
}

// failingFile fails Write, Sync and Close independently, to prove every
// error surfaces.
type failingFile struct{ werr, serr, cerr error }

func (f *failingFile) Write(p []byte) (int, error) {
	if f.werr != nil {
		return 0, f.werr
	}
	return len(p), nil
}
func (f *failingFile) Sync() error  { return f.serr }
func (f *failingFile) Close() error { return f.cerr }

// TestWriteSyncCloseJoinsErrors is the regression test for the old
// WriteSnapshotFile bug where an encode error swallowed the close error:
// both must now appear in the joined error, and a sync failure must not
// hide behind a clean write either.
func TestWriteSyncCloseJoinsErrors(t *testing.T) {
	werr := errors.New("encode exploded")
	serr := errors.New("sync exploded")
	cerr := errors.New("close exploded")

	err := writeSyncClose(&failingFile{werr: werr, cerr: cerr}, func(w io.Writer) error {
		_, e := w.Write([]byte("x"))
		return e
	})
	if !errors.Is(err, werr) || !errors.Is(err, cerr) {
		t.Fatalf("write+close join lost a cause: %v", err)
	}

	err = writeSyncClose(&failingFile{serr: serr, cerr: cerr}, func(w io.Writer) error { return nil })
	if !errors.Is(err, serr) || !errors.Is(err, cerr) {
		t.Fatalf("sync+close join lost a cause: %v", err)
	}

	if err := writeSyncClose(&failingFile{}, func(w io.Writer) error { return nil }); err != nil {
		t.Fatalf("clean path errored: %v", err)
	}
}

func TestVerifySnapshotFile(t *testing.T) {
	s := New(testFacts())
	path := filepath.Join(t.TempDir(), "kb.akb")
	if err := s.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := VerifySnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != SnapshotVersion || info.Facts != s.Len() || !strings.HasPrefix(info.Checksum, "sha256:") {
		t.Errorf("info = %+v", info)
	}
	// Corrupt in place; verification must now fail with the checksum error.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[bytes.Index(raw, []byte("Casablanca"))] = 'X'
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySnapshotFile(path); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("corrupt file verified: %v", err)
	}
	if _, err := VerifySnapshotFile(filepath.Join(t.TempDir(), "nope.akb")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: %v", err)
	}
}
