package store

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(testFacts())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Facts(), s.Facts()) {
		t.Fatalf("round trip changed facts:\n got: %+v\nwant: %+v", back.Facts(), s.Facts())
	}
	// The codec is deterministic: re-serialising the loaded store must be
	// byte-identical.
	var again bytes.Buffer
	if err := back.WriteSnapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("snapshot serialisation is not deterministic")
	}
}

// TestSnapshotGolden pins the snapshot JSON layout against a checked-in
// golden file, so accidental codec changes fail loudly instead of
// silently orphaning saved snapshots. Regenerate with -update.
func TestSnapshotGolden(t *testing.T) {
	s := New(testFacts())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot differs from golden:\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestReadSnapshotRejectsBadFiles(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"not json", "hello", "decode"},
		{"wrong format", `{"format":"something-else","version":1,"count":0}`, "not an akb snapshot"},
		{"future version", `{"format":"akb-snapshot","version":99,"count":0}`, "unsupported snapshot version"},
		{"zero version", `{"format":"akb-snapshot","version":0,"count":0}`, "unsupported snapshot version"},
		{"truncated", `{"format":"akb-snapshot","version":1,"count":3,"facts":[]}`, "truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSnapshot(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestSnapshotFileHelpers(t *testing.T) {
	s := New(testFacts())
	path := filepath.Join(t.TempDir(), "kb.akb")
	if err := s.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("loaded %d facts, want %d", back.Len(), s.Len())
	}
}
