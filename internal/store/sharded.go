package store

import (
	"hash/fnv"
	"sort"

	"akb/internal/core"
)

// DefaultShards is the shard count NewSharded uses when the caller does
// not pick one. Eight shards keep per-shard index maps small enough to
// stay cache-friendly while giving the scatter-gather path real
// parallelism headroom on typical server core counts.
const DefaultShards = 8

// ShardOf returns the shard an entity's facts live in: FNV-1a over the
// entity name modulo n. Every route that names an entity — /v1/entity,
// /v1/triples, entity-constrained /v1/query — therefore touches exactly
// one shard, and the assignment is stable across processes and runs, so
// the same snapshot always shards the same way.
func ShardOf(entity string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(entity))
	return int(h.Sum64() % uint64(n))
}

// Sharded partitions the fused KB by entity hash into independent
// Stores, each with its own postings-list indexes. It implements Querier
// with the exact semantics of one big Store — Lookup results are
// byte-identical, ordering included — while bounding per-shard index
// size and creating the seam for multi-process deployment: a shard is
// self-contained, so peeling one onto another machine changes routing,
// not semantics.
//
// Entity-keyed reads route to exactly one shard. Wildcard reads
// scatter to every shard and merge the per-shard results — each already
// in canonical order — with a k-way merge, so the global order equals
// the single-store order without a post-merge sort. Like Store, a
// Sharded is immutable after construction and safe for unsynchronised
// concurrent use.
type Sharded struct {
	shards  []*Store
	classes []string
	nFacts  int
	nEntity int
}

// NewSharded partitions facts by entity hash into n shards (DefaultShards
// when n <= 0) and indexes each independently. Deduplication is global
// even though each shard dedups locally: facts with the same identity key
// share an entity and therefore a shard.
func NewSharded(facts []Fact, n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	parts := make([][]Fact, n)
	for _, f := range facts {
		i := ShardOf(f.Entity, n)
		parts[i] = append(parts[i], f)
	}
	s := &Sharded{shards: make([]*Store, n)}
	classSet := make(map[string]bool)
	for i, part := range parts {
		sh := New(part)
		s.shards[i] = sh
		s.nFacts += sh.Len()
		s.nEntity += sh.EntityCount()
		for _, c := range sh.Classes() {
			classSet[c] = true
		}
	}
	s.classes = make([]string, 0, len(classSet))
	for c := range classSet {
		s.classes = append(s.classes, c)
	}
	sort.Strings(s.classes)
	return s
}

// ShardedFromResult snapshots a pipeline result into n shards; the
// sharded counterpart of FromResult.
func ShardedFromResult(res *core.Result, n int) *Sharded {
	return NewSharded(ResultFacts(res), n)
}

// ShardCount returns the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// Shard returns one shard's store (for the snapshot codec and tests).
func (s *Sharded) Shard(i int) *Store { return s.shards[i] }

// Len returns the total fact count across shards.
func (s *Sharded) Len() int { return s.nFacts }

// EntityCount returns the total distinct-entity count. Shards partition
// entities, so the per-shard counts sum without overlap.
func (s *Sharded) EntityCount() int { return s.nEntity }

// Classes returns the distinct entity classes across all shards in
// sorted order. The returned slice must not be modified.
func (s *Sharded) Classes() []string { return s.classes }

// Facts returns every fact in global canonical order (merged across
// shards). Unlike Store.Facts this allocates; it exists for the codec
// and for equivalence tests, not the serving hot path.
func (s *Sharded) Facts() []Fact {
	lists := make([][]Fact, len(s.shards))
	for i, sh := range s.shards {
		lists[i] = sh.Facts()
	}
	return mergeFacts(lists, -1)
}

// Flatten rebuilds the equivalent single Store.
func (s *Sharded) Flatten() *Store { return New(s.Facts()) }

// Entity returns every fact about the entity; exactly one shard is
// consulted.
func (s *Sharded) Entity(id string) []Fact {
	return s.shards[ShardOf(id, len(s.shards))].Entity(id)
}

// Triples returns the accepted values for (entity, attr); exactly one
// shard is consulted.
func (s *Sharded) Triples(entity, attr string) []Fact {
	return s.shards[ShardOf(entity, len(s.shards))].Triples(entity, attr)
}

// Lookup answers a query with output byte-identical to the equivalent
// single Store's Lookup. Entity-constrained queries route to one shard;
// everything else scatter-gathers and merges.
func (s *Sharded) Lookup(q Pattern) []Fact {
	if q.Entity != "" {
		return s.shards[ShardOf(q.Entity, len(s.shards))].Lookup(q)
	}
	lists := make([][]Fact, len(s.shards))
	for i, sh := range s.shards {
		lists[i] = sh.Lookup(q)
	}
	return mergeFacts(lists, -1)
}

// LookupN answers a query with at most limit facts plus the true total,
// identical to what the equivalent single Store's LookupN returns. The
// scatter passes the limit down to every shard: the global first-limit
// facts in canonical order draw at most limit from any one shard, so
// each shard materialises a bounded prefix while still counting its full
// total — the per-shard-limit property that keeps wildcard queries cheap
// as shards multiply.
func (s *Sharded) LookupN(q Pattern, limit int) (out []Fact, total int) {
	if q.Entity != "" {
		return s.shards[ShardOf(q.Entity, len(s.shards))].LookupN(q, limit)
	}
	if limit <= 0 {
		// Store.LookupN treats non-positive limits as unlimited; mergeFacts
		// spells unlimited as a negative limit.
		limit = -1
	}
	lists := make([][]Fact, len(s.shards))
	for i, sh := range s.shards {
		part, n := sh.LookupN(q, limit)
		lists[i] = part
		total += n
	}
	return mergeFacts(lists, limit), total
}

// Iterate streams the facts matching q in global canonical order, like
// Store.Iterate. Entity-constrained patterns stream straight off one
// shard; everything else merges the per-shard cursors lazily, so no
// shard's result set is materialised.
func (s *Sharded) Iterate(q Pattern, yield func(Fact) bool) bool {
	if q.Entity != "" {
		return s.shards[ShardOf(q.Entity, len(s.shards))].Iterate(q, yield)
	}
	cur := s.Select(q)
	for {
		f, ok := cur.Next()
		if !ok {
			return true
		}
		if !yield(f) {
			return false
		}
	}
}

// CountEstimate returns an upper bound on the matches for q: one shard's
// estimate for entity-constrained patterns, the sum of every shard's
// otherwise. Like Store.CountEstimate it reads postings-list lengths
// only — no statistics catalog, no scan.
func (s *Sharded) CountEstimate(q Pattern) int {
	if q.Entity != "" {
		return s.shards[ShardOf(q.Entity, len(s.shards))].CountEstimate(q)
	}
	total := 0
	for _, sh := range s.shards {
		total += sh.CountEstimate(q)
	}
	return total
}

// Select returns a pull cursor over the facts matching q in global
// canonical order: one shard's cursor when the pattern names an entity, a
// lazy k-way merge of every shard's cursor otherwise. Merging compares
// with factLess alone, which is deterministic because identity keys pin
// entities to shards (see mergeFacts).
func (s *Sharded) Select(q Pattern) FactCursor {
	if q.Entity != "" {
		return s.shards[ShardOf(q.Entity, len(s.shards))].Select(q)
	}
	m := &mergeCursor{
		cursors: make([]FactCursor, len(s.shards)),
		heads:   make([]Fact, len(s.shards)),
		ok:      make([]bool, len(s.shards)),
	}
	for i, sh := range s.shards {
		m.cursors[i] = sh.Select(q)
		m.heads[i], m.ok[i] = m.cursors[i].Next()
	}
	return m
}

// mergeCursor k-way merges per-shard cursors, pulling one fact ahead per
// shard. Linear minimum selection over the shard count beats heap
// bookkeeping at the 8–64 shard sizes this store runs at.
type mergeCursor struct {
	cursors []FactCursor
	heads   []Fact
	ok      []bool
}

func (m *mergeCursor) Next() (Fact, bool) {
	best := -1
	for i := range m.cursors {
		if !m.ok[i] {
			continue
		}
		if best < 0 || factLess(m.heads[i], m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return Fact{}, false
	}
	f := m.heads[best]
	m.heads[best], m.ok[best] = m.cursors[best].Next()
	return f, true
}

// Scan answers a query by brute force over every shard, merged; the
// reference semantics for Sharded.Lookup, mirroring Store.Scan.
func (s *Sharded) Scan(q Pattern) []Fact {
	lists := make([][]Fact, len(s.shards))
	for i, sh := range s.shards {
		lists[i] = sh.Scan(q)
	}
	return mergeFacts(lists, -1)
}

// mergeFacts k-way merges canonically-sorted fact lists into one
// canonically-sorted list, stopping after limit facts (limit < 0 merges
// everything). Keys never tie across lists — a fact's identity key pins
// its entity, and entities are partitioned — so comparing with factLess
// alone is deterministic.
func mergeFacts(lists [][]Fact, limit int) []Fact {
	total := 0
	live := 0
	for _, l := range lists {
		total += len(l)
		if len(l) > 0 {
			live++
		}
	}
	if limit >= 0 && total > limit {
		total = limit
	}
	if total == 0 {
		return nil
	}
	out := make([]Fact, 0, total)
	if live == 1 {
		for _, l := range lists {
			if len(l) > 0 {
				return append(out, l[:total]...)
			}
		}
	}
	pos := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best < 0 || factLess(l[pos[i]], lists[best][pos[best]]) {
				best = i
			}
		}
		out = append(out, lists[best][pos[best]])
		pos[best]++
	}
	return out
}

var _ Querier = (*Sharded)(nil)
