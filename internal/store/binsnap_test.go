package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"akb/internal/kb"
)

// binTestSharded builds the live-pipeline store most binary-codec tests
// round-trip.
func binTestSharded(t *testing.T) *Sharded {
	t.Helper()
	res, err := smallPipeline()
	if err != nil {
		t.Fatal(err)
	}
	return ShardedFromResult(res, 4)
}

// TestBinarySnapshotRoundTrip pins the codec's determinism both ways:
// write → read rebuilds an equivalent store, and re-writing that store
// reproduces the original bytes exactly.
func TestBinarySnapshotRoundTrip(t *testing.T) {
	sh := binTestSharded(t)
	var buf bytes.Buffer
	if err := sh.WriteBinarySnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	got, err := ReadBinarySnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.ShardCount() != sh.ShardCount() || got.Len() != sh.Len() || got.EntityCount() != sh.EntityCount() {
		t.Fatalf("reloaded store shape: shards %d/%d facts %d/%d entities %d/%d",
			got.ShardCount(), sh.ShardCount(), got.Len(), sh.Len(), got.EntityCount(), sh.EntityCount())
	}
	if !reflect.DeepEqual(got.Facts(), sh.Facts()) {
		t.Fatal("reloaded facts differ from source")
	}

	var again bytes.Buffer
	if err := got.WriteBinarySnapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Fatalf("write→read→write not byte-identical: %d vs %d bytes", len(raw), again.Len())
	}
}

// TestBinarySnapshotEmptyAndTiny covers degenerate stores: zero facts,
// one fact, empty-string class.
func TestBinarySnapshotEmptyAndTiny(t *testing.T) {
	for name, sh := range map[string]*Sharded{
		"empty": NewSharded(nil, 2),
		"one":   NewSharded([]Fact{{Entity: "E", Attr: "a", Value: "v", Confidence: 0.5}}, 3),
		"ancestors": NewSharded([]Fact{
			{Entity: "E", Class: "C", Attr: "a", Value: "Wuhan", Confidence: 1, Sources: 9,
				Ancestors: []string{"Hubei", "China"}},
		}, 2),
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := sh.WriteBinarySnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadBinarySnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Facts(), sh.Facts()) {
				t.Errorf("round trip differs: %+v vs %+v", got.Facts(), sh.Facts())
			}
		})
	}
}

// TestBinarySnapshotRejectsCorruption is the acceptance criterion's
// corruption suite: bit flips anywhere and torn prefixes of any length
// must be rejected, never silently misread.
func TestBinarySnapshotRejectsCorruption(t *testing.T) {
	sh := binTestSharded(t)
	var buf bytes.Buffer
	if err := sh.WriteBinarySnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bit flips", func(t *testing.T) {
		// Flip a bit in every region: magic, header counts, string table,
		// keys, confidences, varint columns, trailer.
		offsets := []int{
			0, 9, binHeaderLen - 1, binHeaderLen + 3,
			len(raw) / 4, len(raw) / 2, 3 * len(raw) / 4,
			len(raw) - binTrailerLen - 1, len(raw) - 1,
		}
		for _, off := range offsets {
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0x10
			if _, err := ReadBinarySnapshot(bytes.NewReader(mut)); err == nil {
				t.Errorf("bit flip at offset %d/%d accepted", off, len(raw))
			}
		}
	})

	t.Run("torn prefixes", func(t *testing.T) {
		for _, n := range []int{0, 1, len(binMagic), binHeaderLen,
			binHeaderLen + binTrailerLen, len(raw) / 3, len(raw) - 1} {
			if _, err := ReadBinarySnapshot(bytes.NewReader(raw[:n])); err == nil {
				t.Errorf("torn prefix of %d/%d bytes accepted", n, len(raw))
			}
		}
	})

	t.Run("trailing garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), raw...), 0xFF)
		if _, err := ReadBinarySnapshot(bytes.NewReader(mut)); err == nil {
			t.Error("trailing byte accepted")
		}
	})

	t.Run("wrong magic", func(t *testing.T) {
		if _, err := ReadBinarySnapshot(strings.NewReader("notasnap" + string(raw[8:]))); err == nil {
			t.Error("wrong magic accepted")
		}
	})
}

// TestBinarySnapshotFileAndOpen exercises the file-level paths: atomic
// write, sniffing in ReadSnapshotFile, layout selection in
// OpenSnapshotFile and the uniform VerifySnapshotFile description.
func TestBinarySnapshotFileAndOpen(t *testing.T) {
	sh := binTestSharded(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.akb3")
	if err := sh.WriteBinarySnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	info, err := VerifySnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Codec != SnapshotCodecBinary || info.Version != BinarySnapshotVersion ||
		info.Facts != sh.Len() || info.Shards != sh.ShardCount() || info.ChecksumStatus() != "verified" {
		t.Errorf("VerifySnapshotFile info = %+v", info)
	}

	// ReadSnapshotFile flattens transparently.
	flat, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flat.Facts(), sh.Facts()) {
		t.Error("ReadSnapshotFile(binary) differs from source facts")
	}

	// OpenSnapshotFile layout knob: 0 keeps segments, 1 flattens, N re-shards.
	for _, tc := range []struct {
		shards    int
		wantCount int
		flat      bool
	}{
		{0, sh.ShardCount(), false},
		{1, 1, true},
		{6, 6, false},
	} {
		q, _, err := OpenSnapshotFile(path, tc.shards)
		if err != nil {
			t.Fatalf("OpenSnapshotFile(shards=%d): %v", tc.shards, err)
		}
		if got, ok := q.(*Sharded); ok != !tc.flat {
			t.Errorf("OpenSnapshotFile(shards=%d) flat=%v, want flat=%v", tc.shards, !ok, tc.flat)
		} else if ok && got.ShardCount() != tc.wantCount {
			t.Errorf("OpenSnapshotFile(shards=%d) has %d shards, want %d", tc.shards, got.ShardCount(), tc.wantCount)
		}
		if q.Len() != sh.Len() {
			t.Errorf("OpenSnapshotFile(shards=%d) Len = %d, want %d", tc.shards, q.Len(), sh.Len())
		}
	}
}

// TestBinaryVsJSONSizeAtScale is the acceptance criterion's compression
// proof: at ~×100 KB scale the binary snapshot must be at least 3× smaller
// than the JSON codec on the same facts. Ground-truth world facts stand in
// for a ×100 pipeline run so the test stays fast.
func TestBinaryVsJSONSizeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large synthetic world")
	}
	// DefaultConfig serves ~3k facts; 2000 entities/class × 6 attrs ≈ 130k
	// facts — two orders of magnitude up.
	w := kb.NewWorld(kb.WorldConfig{Seed: 1, EntitiesPerClass: 2000, AttrsPerEntity: 6})
	facts := WorldFacts(w)
	if len(facts) < 100_000 {
		t.Fatalf("scaled world produced only %d facts; not a ×100 test", len(facts))
	}
	sh := NewSharded(facts, DefaultShards)

	var binSize, jsonSize countingWriter
	if err := sh.WriteBinarySnapshot(&binSize); err != nil {
		t.Fatal(err)
	}
	if err := sh.Flatten().WriteSnapshot(&jsonSize); err != nil {
		t.Fatal(err)
	}
	ratio := float64(jsonSize) / float64(binSize)
	t.Logf("%d facts: JSON %d bytes, binary %d bytes, ratio %.1fx", len(facts), jsonSize, binSize, ratio)
	if ratio < 3 {
		t.Errorf("binary snapshot only %.2fx smaller than JSON, want >= 3x", ratio)
	}
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

func BenchmarkBinarySnapshot(b *testing.B) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 1, EntitiesPerClass: 400, AttrsPerEntity: 6})
	sh := NewSharded(WorldFacts(w), DefaultShards)
	var buf bytes.Buffer
	if err := sh.WriteBinarySnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.Run(fmt.Sprintf("write/facts=%d", sh.Len()), func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			var c countingWriter
			if err := sh.WriteBinarySnapshot(&c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("read/facts=%d", sh.Len()), func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := ReadBinarySnapshot(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
