package store

import (
	"errors"
	"testing"
	"time"

	"akb/internal/resilience"
)

func TestChaosQuerierInjectsPanics(t *testing.T) {
	base := New(testFacts())
	ctl := NewChaosController(&resilience.FaultPlan{
		Seed:    7,
		Default: resilience.StageFault{FailProb: 1, Transient: true},
	})
	q := ctl.Wrap(base)

	recovered := func(fn func()) (rec any) {
		defer func() { rec = recover() }()
		fn()
		return nil
	}
	rec := recovered(func() { q.Lookup(Query{Class: "Film"}) })
	if rec == nil {
		t.Fatal("FailProb=1 did not panic")
	}
	err, ok := rec.(error)
	if !ok || !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("transient fault panicked with %v, want ErrInjected error", rec)
	}
	if rec := recovered(func() { q.Entity("Casablanca") }); rec == nil {
		t.Fatal("Entity not faulted")
	}
	if rec := recovered(func() { q.Triples("Casablanca", "language") }); rec == nil {
		t.Fatal("Triples not faulted")
	}
	if ctl.Panics() != 3 || ctl.Calls() != 3 {
		t.Errorf("panics=%d calls=%d, want 3/3", ctl.Panics(), ctl.Calls())
	}

	// Permanent faults panic with a string, not an error value.
	ctl2 := NewChaosController(&resilience.FaultPlan{Seed: 7, Default: resilience.StageFault{FailProb: 1}})
	rec = recovered(func() { ctl2.Wrap(base).Lookup(Query{Class: "Film"}) })
	if _, isErr := rec.(error); rec == nil || isErr {
		t.Fatalf("permanent fault panicked with %v, want plain string", rec)
	}
}

func TestChaosQuerierDisableRestoresCleanReads(t *testing.T) {
	base := New(testFacts())
	ctl := NewChaosController(&resilience.FaultPlan{
		Seed:    1,
		Default: resilience.StageFault{FailProb: 1, Latency: time.Millisecond},
	})
	q := ctl.Wrap(base)
	ctl.SetEnabled(false)

	// With injection off the wrapper is transparent: same answers, no
	// panics, no latency bookkeeping.
	got := q.Lookup(Query{Class: "Film"})
	want := base.Lookup(Query{Class: "Film"})
	if len(got) != len(want) {
		t.Fatalf("disabled chaos changed results: %d vs %d", len(got), len(want))
	}
	if ctl.Calls() != 0 || ctl.Panics() != 0 || ctl.Slowed() != 0 {
		t.Errorf("disabled chaos still counted: calls=%d panics=%d slowed=%d", ctl.Calls(), ctl.Panics(), ctl.Slowed())
	}

	// Summary methods are never faulted even when enabled — they back
	// the health endpoints.
	ctl.SetEnabled(true)
	if q.Len() != base.Len() || q.EntityCount() != base.EntityCount() || len(q.Classes()) != len(base.Classes()) {
		t.Error("summary methods disagree with base store")
	}
	if ctl.Calls() != 0 {
		t.Errorf("summary methods consumed fault budget: calls=%d", ctl.Calls())
	}
}

func TestChaosQuerierLatency(t *testing.T) {
	base := New(testFacts())
	ctl := NewChaosController(&resilience.FaultPlan{
		Seed:    1,
		Default: resilience.StageFault{Latency: 5 * time.Millisecond},
	})
	q := ctl.Wrap(base)
	start := time.Now()
	q.Lookup(Query{Class: "Film"})
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("latency fault not applied: took %v", d)
	}
	if ctl.Slowed() != 1 {
		t.Errorf("slowed = %d, want 1", ctl.Slowed())
	}
}
