package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Snapshot format constants. The codec is deterministic: facts serialise
// in the store's canonical order with stable field order and two-space
// indentation, so two snapshots of the same run are byte-identical and
// diffable.
const (
	// SnapshotFormat identifies the file as an akb store snapshot.
	SnapshotFormat = "akb-snapshot"
	// SnapshotVersion is the current codec version. ReadSnapshot accepts
	// any version from 1 up to this and rejects newer files, so old
	// binaries fail loudly instead of misreading future snapshots.
	SnapshotVersion = 1
)

// snapshotFile is the on-disk layout. The fact count is recorded so a
// truncated file is detected even though JSON decoding would "succeed".
type snapshotFile struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Count   int    `json:"count"`
	Facts   []Fact `json:"facts"`
}

// WriteSnapshot serialises the store.
func (s *Store) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snapshotFile{
		Format:  SnapshotFormat,
		Version: SnapshotVersion,
		Count:   len(s.facts),
		Facts:   s.facts,
	})
}

// ReadSnapshot loads a snapshot written by WriteSnapshot and rebuilds the
// indexes. The snapshot stores only facts; indexes are always derived, so
// codec and index layout can evolve independently.
func ReadSnapshot(r io.Reader) (*Store, error) {
	var sf snapshotFile
	if err := json.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	if sf.Format != SnapshotFormat {
		return nil, fmt.Errorf("store: not an akb snapshot (format %q, want %q)", sf.Format, SnapshotFormat)
	}
	if sf.Version < 1 || sf.Version > SnapshotVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (this build reads 1..%d)", sf.Version, SnapshotVersion)
	}
	if sf.Count != len(sf.Facts) {
		return nil, fmt.Errorf("store: snapshot truncated: header says %d facts, found %d", sf.Count, len(sf.Facts))
	}
	return New(sf.Facts), nil
}

// WriteSnapshotFile writes the snapshot to a file.
func (s *Store) WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshotFile loads a snapshot from a file.
func ReadSnapshotFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
