package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Snapshot format constants. The codec is deterministic: facts serialise
// in the store's canonical order with stable field order and two-space
// indentation, so two snapshots of the same run are byte-identical and
// diffable.
const (
	// SnapshotFormat identifies the file as an akb store snapshot.
	SnapshotFormat = "akb-snapshot"
	// SnapshotVersion is the current codec version. ReadSnapshot accepts
	// any version from 1 up to this and rejects newer files, so old
	// binaries fail loudly instead of misreading future snapshots.
	//
	// Version history:
	//   1  format/version/count header + facts
	//   2  adds a SHA-256 checksum over the fact payload, so corruption
	//      (torn writes, bit rot, hand edits) is detected instead of
	//      served; v1 files without a checksum still load
	SnapshotVersion = 2
)

// checksumPrefix tags the hash algorithm in the checksum field, leaving
// room to rotate algorithms in a later codec version.
const checksumPrefix = "sha256:"

// snapshotFile is the on-disk layout. The fact count is recorded so a
// truncated file is detected even though JSON decoding would "succeed";
// the checksum (v2+) catches every other byte-level corruption of the
// payload.
type snapshotFile struct {
	Format   string `json:"format"`
	Version  int    `json:"version"`
	Count    int    `json:"count"`
	Checksum string `json:"checksum,omitempty"`
	Facts    []Fact `json:"facts"`
}

// factsChecksum hashes the canonical (compact JSON) encoding of the fact
// payload. Hashing the re-marshalled facts rather than raw file bytes
// makes the checksum independent of indentation, so it survives
// pretty-printing — but any change to fact *content* fails verification.
func factsChecksum(facts []Fact) (string, error) {
	raw, err := json.Marshal(facts)
	if err != nil {
		return "", fmt.Errorf("store: checksum facts: %w", err)
	}
	sum := sha256.Sum256(raw)
	return checksumPrefix + hex.EncodeToString(sum[:]), nil
}

// Snapshot codec names, as reported by SnapshotInfo.Codec.
const (
	// SnapshotCodecJSON is the versions-1-and-2 JSON codec.
	SnapshotCodecJSON = "json"
	// SnapshotCodecBinary is the version-3 columnar binary codec.
	SnapshotCodecBinary = "binary"
)

// SnapshotInfo describes a verified snapshot uniformly across every
// codec version; see VerifySnapshotFile.
type SnapshotInfo struct {
	Path    string `json:"path,omitempty"`
	Codec   string `json:"codec"`
	Version int    `json:"version"`
	Facts   int    `json:"facts"`
	// Shards is the stored shard count: 1 for JSON snapshots (a single
	// store), the segment count for binary ones.
	Shards   int    `json:"shards"`
	Checksum string `json:"checksum,omitempty"`
}

// ChecksumStatus renders the integrity outcome uniformly: "verified"
// when the codec carries a checksum that matched, "none" for version-1
// files that predate checksums. (A mismatch never reaches an info — the
// verify path errors instead.)
func (i SnapshotInfo) ChecksumStatus() string {
	if i.Checksum == "" {
		return "none"
	}
	return "verified"
}

// WriteSnapshot serialises the store.
func (s *Store) WriteSnapshot(w io.Writer) error {
	sum, err := factsChecksum(s.facts)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snapshotFile{
		Format:   SnapshotFormat,
		Version:  SnapshotVersion,
		Count:    len(s.facts),
		Checksum: sum,
		Facts:    s.facts,
	})
}

// validate checks a decoded snapshot's header, count and (v2+) checksum,
// returning its description. Shared by ReadSnapshot and the verify path.
func (sf *snapshotFile) validate() (SnapshotInfo, error) {
	info := SnapshotInfo{Codec: SnapshotCodecJSON, Version: sf.Version, Facts: len(sf.Facts), Shards: 1, Checksum: sf.Checksum}
	if sf.Format != SnapshotFormat {
		return info, fmt.Errorf("store: not an akb snapshot (format %q, want %q)", sf.Format, SnapshotFormat)
	}
	if sf.Version < 1 || sf.Version > SnapshotVersion {
		return info, fmt.Errorf("store: unsupported snapshot version %d (this build reads 1..%d)", sf.Version, SnapshotVersion)
	}
	if sf.Count != len(sf.Facts) {
		return info, fmt.Errorf("store: snapshot truncated: header says %d facts, found %d", sf.Count, len(sf.Facts))
	}
	if sf.Version >= 2 {
		if sf.Checksum == "" {
			return info, fmt.Errorf("store: snapshot version %d has no checksum", sf.Version)
		}
		sum, err := factsChecksum(sf.Facts)
		if err != nil {
			return info, err
		}
		if sum != sf.Checksum {
			return info, fmt.Errorf("store: snapshot checksum mismatch: header %s, payload %s — file is corrupt", sf.Checksum, sum)
		}
	}
	return info, nil
}

// ReadSnapshot loads a snapshot written by WriteSnapshot and rebuilds the
// indexes. The snapshot stores only facts; indexes are always derived, so
// codec and index layout can evolve independently. Version 2 files are
// checksum-verified; version 1 files (no checksum) still load.
func ReadSnapshot(r io.Reader) (*Store, error) {
	var sf snapshotFile
	if err := json.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	if _, err := sf.validate(); err != nil {
		return nil, err
	}
	return New(sf.Facts), nil
}

// WriteSnapshotFile writes the snapshot to path atomically: the bytes go
// to a temporary file in the target directory, are fsynced, and the temp
// file is renamed over path only once it is durably complete. A crash at
// any point leaves either the previous file intact or a stray .tmp file
// that can never pass verification as the target — never a torn or
// half-new snapshot under the real name.
func (s *Store) WriteSnapshotFile(path string) error {
	return atomicWriteFile(path, s.WriteSnapshot)
}

// syncWriteCloser is the slice of *os.File the snapshot writer needs;
// tests substitute failing fakes to pin the error-joining contract.
type syncWriteCloser interface {
	io.WriteCloser
	Sync() error
}

// writeSyncClose runs write against f, fsyncs, and closes it, joining
// every error instead of letting a failed close vanish behind a failed
// write (or vice versa) — the fd-leak/error-swallow bug the old
// WriteSnapshotFile had.
func writeSyncClose(f syncWriteCloser, write func(io.Writer) error) error {
	werr := write(f)
	var serr error
	if werr == nil {
		serr = f.Sync()
	}
	return errors.Join(werr, serr, f.Close())
}

// sniffBinarySnapshot reports whether the file starts with the binary
// codec's magic. JSON snapshots start with '{', so the 8-byte magic
// disambiguates every valid snapshot; a file too short to carry either
// is simply "not binary" and fails in the JSON decoder with a clear
// error.
func sniffBinarySnapshot(f *os.File) (bool, error) {
	var magic [len(binMagic)]byte
	n, err := f.ReadAt(magic[:], 0)
	if err != nil && n < len(magic) {
		return false, nil
	}
	return string(magic[:]) == binMagic, nil
}

// ReadSnapshotFile loads a snapshot from a file into a single flat
// store, whichever codec version wrote it: JSON (versions 1 and 2)
// directly, binary (version 3) by merging the shard segments. Callers
// that want to preserve — or impose — a sharded layout use
// OpenSnapshotFile instead.
func ReadSnapshotFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if bin, _ := sniffBinarySnapshot(f); bin {
		sh, err := ReadBinarySnapshot(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return sh.Flatten(), nil
	}
	st, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

// OpenSnapshotFile loads any snapshot version into a servable querier.
// shards picks the serving layout: 0 keeps the snapshot's own layout (a
// binary file's stored segments; DefaultShards for a JSON file), 1
// forces a single flat store, and any larger value re-partitions into
// that many shards. The returned info describes the file as stored, not
// the serving layout.
func OpenSnapshotFile(path string, shards int) (Querier, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{Path: path}, err
	}
	defer f.Close()
	bin, _ := sniffBinarySnapshot(f)
	if bin {
		sh, err := ReadBinarySnapshot(f)
		if err != nil {
			return nil, SnapshotInfo{Path: path}, fmt.Errorf("%s: %w", path, err)
		}
		info := SnapshotInfo{
			Path: path, Codec: SnapshotCodecBinary, Version: BinarySnapshotVersion,
			Facts: sh.Len(), Shards: sh.ShardCount(),
		}
		switch {
		case shards == 1:
			return sh.Flatten(), info, nil
		case shards > 1 && shards != sh.ShardCount():
			return NewSharded(sh.Facts(), shards), info, nil
		default:
			return sh, info, nil
		}
	}
	var sf snapshotFile
	if err := json.NewDecoder(f).Decode(&sf); err != nil {
		return nil, SnapshotInfo{Path: path}, fmt.Errorf("%s: store: decode snapshot: %w", path, err)
	}
	info, err := sf.validate()
	info.Path = path
	if err != nil {
		return nil, info, fmt.Errorf("%s: %w", path, err)
	}
	if shards == 0 {
		shards = DefaultShards
	}
	if shards == 1 {
		return New(sf.Facts), info, nil
	}
	return NewSharded(sf.Facts, shards), info, nil
}

// VerifySnapshotFile checks a snapshot's integrity — header, fact count
// and checksum, whichever codec version wrote it — without building
// indexes, and reports what it found uniformly (codec, version, fact
// count, shard count, checksum). It backs `akb snapshot verify|info` and
// the pre-swap validation of the server's hot reload.
func VerifySnapshotFile(path string) (SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotInfo{Path: path}, err
	}
	defer f.Close()
	if bin, _ := sniffBinarySnapshot(f); bin {
		data, err := io.ReadAll(f)
		if err != nil {
			return SnapshotInfo{Path: path}, fmt.Errorf("%s: store: read snapshot: %w", path, err)
		}
		info, err := verifyBinarySnapshot(data)
		info.Path = path
		if err != nil {
			return info, fmt.Errorf("%s: %w", path, err)
		}
		return info, nil
	}
	var sf snapshotFile
	if err := json.NewDecoder(f).Decode(&sf); err != nil {
		return SnapshotInfo{Path: path}, fmt.Errorf("%s: store: decode snapshot: %w", path, err)
	}
	info, err := sf.validate()
	info.Path = path
	if err != nil {
		return info, fmt.Errorf("%s: %w", path, err)
	}
	return info, nil
}
