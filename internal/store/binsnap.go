package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Binary snapshot codec (version 3). The JSON codec (versions 1 and 2)
// is diffable and hand-editable but pays ~20x in bytes and a full JSON
// parse on load; at the ROADMAP's millions-of-facts scale neither is
// acceptable. Version 3 is a compact columnar layout:
//
//	magic   "akbsnap3"                                  8 bytes
//	header  version u32 | shards u32 | facts u64 | strings u64   (big-endian)
//	strings sorted unique string table: uvarint len + raw bytes each
//	shard×N u64 fact count, then columns:
//	          keys        16 bytes/fact: entity,attr,value,class u32 IDs
//	          confidence  8 bytes/fact: IEEE-754 bits
//	          sources     uvarint/fact
//	          ancestors   uvarint count + uvarint IDs per fact
//	trailer sha256 over every preceding byte                32 bytes
//
// String IDs are assigned in sorted-string order, so the fixed-width
// big-endian key tuples sort bytewise exactly like the store's canonical
// (entity, attr, value, class) fact order — the sort-order-preserving
// key encoding janus-datalog uses for its storage layer. A shard's key
// section is therefore sorted flat fixed-width records: binary-searchable
// in place, mmap-friendly, no decode needed to navigate. The current
// reader materialises facts eagerly; the layout is what makes a future
// zero-copy reader possible without a codec bump.
//
// Facts are segmented per shard by entity hash (ShardOf), so a loader
// can reconstruct the sharded store without re-partitioning and a future
// multi-process deployment can ship individual segments to shard owners.
const (
	// BinarySnapshotVersion is the codec version binary snapshots carry.
	// It continues the JSON codec's version line: ReadSnapshotFile and
	// VerifySnapshotFile accept 1 and 2 as JSON and 3 as binary.
	BinarySnapshotVersion = 3

	binMagic      = "akbsnap3"
	binHeaderLen  = len(binMagic) + 4 + 4 + 8 + 8
	binTrailerLen = sha256.Size
	binKeyWidth   = 16
)

// WriteBinarySnapshot serialises the sharded store in the version-3
// binary layout. The encoding is deterministic: equal stores produce
// byte-identical snapshots.
func (s *Sharded) WriteBinarySnapshot(w io.Writer) error {
	strs, ids, err := binStringTable(s)
	if err != nil {
		return err
	}
	h := sha256.New()
	bw := bufio.NewWriter(w)
	out := io.MultiWriter(bw, h)

	var hdr bytes.Buffer
	hdr.WriteString(binMagic)
	be := binary.BigEndian
	var u32 [4]byte
	var u64 [8]byte
	be.PutUint32(u32[:], BinarySnapshotVersion)
	hdr.Write(u32[:])
	be.PutUint32(u32[:], uint32(len(s.shards)))
	hdr.Write(u32[:])
	be.PutUint64(u64[:], uint64(s.Len()))
	hdr.Write(u64[:])
	be.PutUint64(u64[:], uint64(len(strs)))
	hdr.Write(u64[:])
	if _, err := out.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("store: write binary header: %w", err)
	}

	var varint [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(varint[:], v)
		_, err := out.Write(varint[:n])
		return err
	}
	for _, str := range strs {
		if err := writeUvarint(uint64(len(str))); err != nil {
			return fmt.Errorf("store: write string table: %w", err)
		}
		if _, err := io.WriteString(out, str); err != nil {
			return fmt.Errorf("store: write string table: %w", err)
		}
	}

	for _, sh := range s.shards {
		facts := sh.Facts()
		be.PutUint64(u64[:], uint64(len(facts)))
		if _, err := out.Write(u64[:]); err != nil {
			return fmt.Errorf("store: write shard header: %w", err)
		}
		var key [binKeyWidth]byte
		for _, f := range facts {
			be.PutUint32(key[0:4], ids[f.Entity])
			be.PutUint32(key[4:8], ids[f.Attr])
			be.PutUint32(key[8:12], ids[f.Value])
			be.PutUint32(key[12:16], ids[f.Class])
			if _, err := out.Write(key[:]); err != nil {
				return fmt.Errorf("store: write keys: %w", err)
			}
		}
		for _, f := range facts {
			be.PutUint64(u64[:], math.Float64bits(f.Confidence))
			if _, err := out.Write(u64[:]); err != nil {
				return fmt.Errorf("store: write confidences: %w", err)
			}
		}
		for _, f := range facts {
			if f.Sources < 0 {
				return fmt.Errorf("store: negative source count %d for %q", f.Sources, f.Entity)
			}
			if err := writeUvarint(uint64(f.Sources)); err != nil {
				return fmt.Errorf("store: write sources: %w", err)
			}
		}
		for _, f := range facts {
			if err := writeUvarint(uint64(len(f.Ancestors))); err != nil {
				return fmt.Errorf("store: write ancestors: %w", err)
			}
			for _, anc := range f.Ancestors {
				if err := writeUvarint(uint64(ids[anc])); err != nil {
					return fmt.Errorf("store: write ancestors: %w", err)
				}
			}
		}
	}

	if _, err := bw.Write(h.Sum(nil)); err != nil {
		return fmt.Errorf("store: write checksum: %w", err)
	}
	return bw.Flush()
}

// binStringTable collects every distinct string of the store — entities,
// classes, attributes, values, ancestors — sorted, and maps each to its
// ID. Sorted assignment is what makes the fixed-width keys sortable.
func binStringTable(s *Sharded) ([]string, map[string]uint32, error) {
	set := make(map[string]bool)
	for _, sh := range s.shards {
		for _, f := range sh.Facts() {
			set[f.Entity] = true
			set[f.Class] = true
			set[f.Attr] = true
			set[f.Value] = true
			for _, anc := range f.Ancestors {
				set[anc] = true
			}
		}
	}
	if uint64(len(set)) > math.MaxUint32 {
		return nil, nil, fmt.Errorf("store: %d distinct strings exceed the u32 ID space", len(set))
	}
	strs := make([]string, 0, len(set))
	for str := range set {
		strs = append(strs, str)
	}
	sort.Strings(strs)
	ids := make(map[string]uint32, len(strs))
	for i, str := range strs {
		ids[str] = uint32(i)
	}
	return strs, ids, nil
}

// WriteBinarySnapshotFile writes the binary snapshot to path with the
// same crash-safety contract as Store.WriteSnapshotFile: temp file in
// the target directory, fsync, atomic rename.
func (s *Sharded) WriteBinarySnapshotFile(path string) error {
	return atomicWriteFile(path, s.WriteBinarySnapshot)
}

// binReader walks a fully-read snapshot with bounds-checked cursors so a
// truncated or bit-flipped file (that somehow passed the checksum —
// impossible — or a logic error here) fails loudly, never misparses.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, fmt.Errorf("store: binary snapshot truncated at offset %d (need %d more bytes)", r.off, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("store: binary snapshot: bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// binHeader is the parsed fixed header of a binary snapshot.
type binHeader struct {
	shards  int
	facts   int
	strings int
}

// binVerify checks magic, version and checksum of a whole binary
// snapshot and parses the fixed header. Shared by the reader and the
// verify path.
func binVerify(data []byte) (binHeader, *binReader, error) {
	var hdr binHeader
	if len(data) < binHeaderLen+binTrailerLen {
		return hdr, nil, fmt.Errorf("store: binary snapshot truncated: %d bytes, need at least %d", len(data), binHeaderLen+binTrailerLen)
	}
	payload, trailer := data[:len(data)-binTrailerLen], data[len(data)-binTrailerLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], trailer) {
		return hdr, nil, fmt.Errorf("store: binary snapshot checksum mismatch: trailer %s, payload %s — file is corrupt",
			hex.EncodeToString(trailer), hex.EncodeToString(sum[:]))
	}
	r := &binReader{data: payload}
	magic, _ := r.take(len(binMagic))
	if string(magic) != binMagic {
		return hdr, nil, fmt.Errorf("store: not a binary akb snapshot (magic %q)", magic)
	}
	be := binary.BigEndian
	b, _ := r.take(4 + 4 + 8 + 8)
	version := be.Uint32(b[0:4])
	if version != BinarySnapshotVersion {
		return hdr, nil, fmt.Errorf("store: unsupported binary snapshot version %d (this build reads %d)", version, BinarySnapshotVersion)
	}
	hdr.shards = int(be.Uint32(b[4:8]))
	hdr.facts = int(be.Uint64(b[8:16]))
	hdr.strings = int(be.Uint64(b[16:24]))
	if hdr.shards <= 0 {
		return hdr, nil, fmt.Errorf("store: binary snapshot declares %d shards", hdr.shards)
	}
	return hdr, r, nil
}

// ReadBinarySnapshot loads a version-3 snapshot written by
// WriteBinarySnapshot, rebuilding every shard's indexes. The checksum is
// verified over the whole file before any parsing, so a torn or
// bit-flipped snapshot is rejected up front.
func ReadBinarySnapshot(rd io.Reader) (*Sharded, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("store: read binary snapshot: %w", err)
	}
	hdr, r, err := binVerify(data)
	if err != nil {
		return nil, err
	}
	strs := make([]string, hdr.strings)
	for i := range strs {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		strs[i] = string(b)
	}
	str := func(id uint64) (string, error) {
		if id >= uint64(len(strs)) {
			return "", fmt.Errorf("store: binary snapshot references string %d of %d", id, len(strs))
		}
		return strs[id], nil
	}

	be := binary.BigEndian
	total := 0
	parts := make([][]Fact, hdr.shards)
	for si := range parts {
		nb, err := r.take(8)
		if err != nil {
			return nil, err
		}
		n := int(be.Uint64(nb))
		if n < 0 || total+n > hdr.facts {
			return nil, fmt.Errorf("store: binary snapshot shard %d overflows declared fact count %d", si, hdr.facts)
		}
		total += n
		facts := make([]Fact, n)
		keys, err := r.take(n * binKeyWidth)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			k := keys[i*binKeyWidth:]
			f := &facts[i]
			if f.Entity, err = str(uint64(be.Uint32(k[0:4]))); err != nil {
				return nil, err
			}
			if f.Attr, err = str(uint64(be.Uint32(k[4:8]))); err != nil {
				return nil, err
			}
			if f.Value, err = str(uint64(be.Uint32(k[8:12]))); err != nil {
				return nil, err
			}
			if f.Class, err = str(uint64(be.Uint32(k[12:16]))); err != nil {
				return nil, err
			}
			if got := ShardOf(f.Entity, hdr.shards); got != si {
				return nil, fmt.Errorf("store: binary snapshot misplaces entity %q in shard %d (hashes to %d)", f.Entity, si, got)
			}
		}
		confs, err := r.take(n * 8)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			facts[i].Confidence = math.Float64frombits(be.Uint64(confs[i*8:]))
		}
		for i := 0; i < n; i++ {
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			facts[i].Sources = int(v)
		}
		for i := 0; i < n; i++ {
			cnt, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if cnt > uint64(len(strs)) {
				return nil, fmt.Errorf("store: binary snapshot fact claims %d ancestors", cnt)
			}
			if cnt == 0 {
				continue
			}
			anc := make([]string, cnt)
			for j := range anc {
				id, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if anc[j], err = str(id); err != nil {
					return nil, err
				}
			}
			facts[i].Ancestors = anc
		}
		parts[si] = facts
	}
	if total != hdr.facts {
		return nil, fmt.Errorf("store: binary snapshot truncated: header says %d facts, found %d", hdr.facts, total)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("store: binary snapshot has %d trailing bytes", len(r.data)-r.off)
	}

	s := &Sharded{shards: make([]*Store, hdr.shards)}
	classSet := make(map[string]bool)
	for i, part := range parts {
		sh := New(part)
		s.shards[i] = sh
		s.nFacts += sh.Len()
		s.nEntity += sh.EntityCount()
		for _, c := range sh.Classes() {
			classSet[c] = true
		}
	}
	s.classes = make([]string, 0, len(classSet))
	for c := range classSet {
		s.classes = append(s.classes, c)
	}
	sort.Strings(s.classes)
	return s, nil
}

// ReadBinarySnapshotFile loads a binary snapshot from a file.
func ReadBinarySnapshotFile(path string) (*Sharded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadBinarySnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// verifyBinarySnapshot checks a binary snapshot's integrity without
// building stores: the checksum over the whole file plus the fixed
// header. The checksum covers every payload byte, so a deeper structural
// walk cannot find corruption the trailer missed. Backs
// VerifySnapshotFile for version-3 files.
func verifyBinarySnapshot(data []byte) (SnapshotInfo, error) {
	info := SnapshotInfo{Codec: SnapshotCodecBinary}
	hdr, _, err := binVerify(data)
	if err != nil {
		return info, err
	}
	info.Version = BinarySnapshotVersion
	info.Facts = hdr.facts
	info.Shards = hdr.shards
	info.Checksum = checksumPrefix + hex.EncodeToString(data[len(data)-binTrailerLen:])
	return info, nil
}

// atomicWriteFile writes via a temp file in the target directory, fsyncs
// and renames — the shared crash-safety path of both snapshot codecs.
func atomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if err = writeSyncClose(f, write); err != nil {
		return fmt.Errorf("store: write snapshot %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
