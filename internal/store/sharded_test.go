package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// shardedQueries is the query matrix every equivalence test runs: single
// routes, every index dimension, hierarchy values and misses.
func shardedQueries(s *Store) []Query {
	qs := []Query{
		{}, // full wildcard: the widest scatter-gather merge
		{Entity: "missing"},
		{Attr: "language"},
		{Attr: "language", Value: "French"},
		{Value: "missing"},
	}
	for _, class := range s.Classes() {
		qs = append(qs, Query{Class: class})
	}
	if facts := s.Facts(); len(facts) > 0 {
		f := facts[len(facts)/2]
		qs = append(qs,
			Query{Entity: f.Entity},
			Query{Entity: f.Entity, Attr: f.Attr},
			Query{Class: f.Class, Attr: f.Attr},
			Query{Value: f.Value},
		)
		for _, anc := range f.Ancestors {
			qs = append(qs, Query{Value: anc})
		}
	}
	return qs
}

// TestShardedMatchesStore is the tentpole's core invariant: for any shard
// count, every read answers byte-identically to the single flat Store —
// facts, ordering, annotations, everything.
func TestShardedMatchesStore(t *testing.T) {
	facts := testFacts()
	flat := New(facts)
	for _, n := range []int{1, 2, 3, 8, 16} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			sh := NewSharded(facts, n)
			if sh.ShardCount() != n {
				t.Fatalf("ShardCount = %d, want %d", sh.ShardCount(), n)
			}
			assertShardedEqual(t, flat, sh)
		})
	}
}

// TestShardedMatchesStoreLivePipeline runs the same equivalence on real
// fused-pipeline output, where value hierarchies, multi-truth attributes
// and class skew all occur naturally.
func TestShardedMatchesStoreLivePipeline(t *testing.T) {
	res, err := smallPipeline()
	if err != nil {
		t.Fatal(err)
	}
	flat := FromResult(res)
	if flat.Len() == 0 {
		t.Fatal("empty store from live pipeline")
	}
	for _, n := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			sh := ShardedFromResult(res, n)
			assertShardedEqual(t, flat, sh)
		})
	}
}

// assertShardedEqual checks every Querier method plus LookupN and Facts
// against the flat reference store.
func assertShardedEqual(t *testing.T, flat *Store, sh *Sharded) {
	t.Helper()
	if sh.Len() != flat.Len() {
		t.Errorf("Len = %d, want %d", sh.Len(), flat.Len())
	}
	if sh.EntityCount() != flat.EntityCount() {
		t.Errorf("EntityCount = %d, want %d", sh.EntityCount(), flat.EntityCount())
	}
	if !reflect.DeepEqual(sh.Classes(), flat.Classes()) {
		t.Errorf("Classes = %v, want %v", sh.Classes(), flat.Classes())
	}
	if !reflect.DeepEqual(sh.Facts(), flat.Facts()) {
		t.Error("global Facts() merge differs from flat store")
	}
	for _, q := range shardedQueries(flat) {
		if got, want := sh.Lookup(q), flat.Lookup(q); !reflect.DeepEqual(got, want) {
			t.Errorf("Lookup(%+v):\n got %+v\nwant %+v", q, got, want)
		}
		if got, want := sh.Scan(q), flat.Scan(q); !reflect.DeepEqual(got, want) {
			t.Errorf("Scan(%+v) differs", q)
		}
		for _, limit := range []int{0, 1, 2, 5, 1 << 20} {
			gotF, gotN := sh.LookupN(q, limit)
			wantF, wantN := flat.LookupN(q, limit)
			if gotN != wantN || !reflect.DeepEqual(gotF, wantF) {
				t.Errorf("LookupN(%+v, %d) = (%d facts, total %d), want (%d facts, total %d)",
					q, limit, len(gotF), gotN, len(wantF), wantN)
			}
		}
	}
	for _, f := range flat.Facts() {
		if got, want := sh.Entity(f.Entity), flat.Entity(f.Entity); !reflect.DeepEqual(got, want) {
			t.Errorf("Entity(%q) differs", f.Entity)
		}
		if got, want := sh.Triples(f.Entity, f.Attr), flat.Triples(f.Entity, f.Attr); !reflect.DeepEqual(got, want) {
			t.Errorf("Triples(%q, %q) differs", f.Entity, f.Attr)
		}
	}
}

// TestShardedConcurrentReaders hammers the scatter-gather path from many
// goroutines under -race: the sharded store is immutable after
// construction, so concurrent merged reads must be data-race free and
// deterministic.
func TestShardedConcurrentReaders(t *testing.T) {
	res, err := smallPipeline()
	if err != nil {
		t.Fatal(err)
	}
	flat := FromResult(res)
	sh := ShardedFromResult(res, 8)
	queries := shardedQueries(flat)
	want := make([][]Fact, len(queries))
	for i, q := range queries {
		want[i] = flat.Lookup(q)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				qi := (g + i) % len(queries)
				if got := sh.Lookup(queries[qi]); !reflect.DeepEqual(got, want[qi]) {
					t.Errorf("goroutine %d: concurrent Lookup(%+v) diverged", g, queries[qi])
					return
				}
				if facts, total := sh.LookupN(queries[qi], 3); total != len(want[qi]) || len(facts) > 3 {
					t.Errorf("goroutine %d: concurrent LookupN total %d want %d", g, total, len(want[qi]))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedEmptyAndDegenerate covers the edges: empty store, empty
// query on empty store, all facts hashing into few shards.
func TestShardedEmptyAndDegenerate(t *testing.T) {
	empty := NewSharded(nil, 4)
	if empty.Len() != 0 || empty.EntityCount() != 0 {
		t.Errorf("empty sharded store: Len=%d EntityCount=%d", empty.Len(), empty.EntityCount())
	}
	if got := empty.Lookup(Query{}); got != nil {
		t.Errorf("wildcard on empty store = %+v, want nil", got)
	}
	if facts, total := empty.LookupN(Query{}, 10); facts != nil || total != 0 {
		t.Errorf("LookupN on empty store = %+v, %d", facts, total)
	}
	if got := empty.Entity("nobody"); got != nil {
		t.Errorf("Entity on empty store = %+v", got)
	}
	if got := empty.Classes(); len(got) != 0 {
		t.Errorf("Classes on empty store = %v", got)
	}

	// One entity: everything lands in a single shard, the merge's
	// single-live-list fast path.
	one := NewSharded([]Fact{
		{Entity: "E", Class: "C", Attr: "a", Value: "v1", Confidence: 1},
		{Entity: "E", Class: "C", Attr: "a", Value: "v2", Confidence: 1},
	}, 8)
	if got := one.Lookup(Query{}); len(got) != 2 {
		t.Errorf("single-shard wildcard = %+v", got)
	}
	if facts, total := one.LookupN(Query{}, 1); len(facts) != 1 || total != 2 {
		t.Errorf("single-shard LookupN = %d facts, total %d", len(facts), total)
	}
}

// TestShardedValueHierarchyAcrossShards pins the hierarchy-aware value
// index under sharding: facts whose ancestor chains share a value but
// whose entities hash to different shards must all surface, merged in
// canonical order.
func TestShardedValueHierarchyAcrossShards(t *testing.T) {
	facts := []Fact{
		{Entity: "Alice", Class: "Person", Attr: "born", Value: "Wuhan", Confidence: 1,
			Ancestors: []string{"Hubei", "China"}},
		{Entity: "Bob", Class: "Person", Attr: "born", Value: "Chengdu", Confidence: 1,
			Ancestors: []string{"Sichuan", "China"}},
		{Entity: "Carol", Class: "Person", Attr: "born", Value: "Paris", Confidence: 1,
			Ancestors: []string{"France"}},
	}
	// Pick a shard count where Alice and Bob actually separate, so the
	// ancestor query must merge across shards.
	n := 2
	for ; n <= 64; n++ {
		if ShardOf("Alice", n) != ShardOf("Bob", n) {
			break
		}
	}
	sh := NewSharded(facts, n)
	flat := New(facts)
	got := sh.Lookup(Query{Value: "China"})
	if !reflect.DeepEqual(got, flat.Lookup(Query{Value: "China"})) {
		t.Fatalf("ancestor query across shards = %+v", got)
	}
	if len(got) != 2 || got[0].Entity != "Alice" || got[1].Entity != "Bob" {
		t.Errorf("ancestor merge order wrong: %+v", got)
	}
}

// TestShardedDedupWithinShard pins that duplicate facts — and distinct
// entities that collide into the same shard — dedup exactly as the flat
// store does: per-shard dedup is globally sufficient because identical
// fact keys always share a shard.
func TestShardedDedupWithinShard(t *testing.T) {
	// Find two distinct entities that collide in a 2-shard layout.
	a := "Entity A"
	b := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("Entity B%d", i)
		if ShardOf(cand, 2) == ShardOf(a, 2) {
			b = cand
			break
		}
	}
	if b == "" {
		t.Fatal("no colliding entity found")
	}
	facts := []Fact{
		{Entity: a, Class: "C", Attr: "x", Value: "1", Confidence: 0.9},
		{Entity: a, Class: "C", Attr: "x", Value: "1", Confidence: 0.9}, // duplicate
		{Entity: b, Class: "C", Attr: "x", Value: "1", Confidence: 0.8}, // same key fields, different entity
	}
	sh := NewSharded(facts, 2)
	flat := New(facts)
	if sh.Len() != flat.Len() {
		t.Fatalf("sharded Len %d != flat %d", sh.Len(), flat.Len())
	}
	if sh.Len() != 2 {
		t.Errorf("dedup kept %d facts, want 2 (one per entity)", sh.Len())
	}
	if !reflect.DeepEqual(sh.Lookup(Query{Attr: "x"}), flat.Lookup(Query{Attr: "x"})) {
		t.Error("colliding-entity lookup differs from flat store")
	}
}

// TestShardOfStable pins the hash assignment: a change here would
// silently invalidate every existing binary snapshot's segment layout.
func TestShardOfStable(t *testing.T) {
	cases := map[string]int{
		"Casablanca": ShardOf("Casablanca", 8),
		"Moby Dick":  ShardOf("Moby Dick", 8),
	}
	for entity, want := range cases {
		for i := 0; i < 3; i++ {
			if got := ShardOf(entity, 8); got != want {
				t.Fatalf("ShardOf(%q) unstable: %d then %d", entity, want, got)
			}
		}
	}
	if ShardOf("anything", 1) != 0 {
		t.Error("single shard must absorb everything")
	}
}
