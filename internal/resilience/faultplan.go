package resilience

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected fault, so callers
// can distinguish chaos-harness failures from organic ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// StageFault configures injection for one stage.
type StageFault struct {
	// FailProb is the per-attempt probability in [0,1] that the attempt
	// fails with an injected error.
	FailProb float64
	// Transient marks injected errors transient, so retryable stages
	// re-roll the failure on the next attempt; permanent injected errors
	// abort retrying immediately.
	Transient bool
	// Latency is injected before each attempt's body runs (and counts
	// against the stage's per-attempt deadline).
	Latency time.Duration
}

// FaultPlan is a deterministic chaos schedule: which stages fail, how
// often, and with what latency. All decisions are pure functions of
// (Seed, stage, attempt), so a chaos run is exactly reproducible.
type FaultPlan struct {
	// Seed drives every injection decision.
	Seed int64
	// Default applies to stages without an explicit entry; the zero value
	// injects nothing.
	Default StageFault
	// Stages maps stage names to their fault configuration.
	Stages map[string]StageFault
}

// For returns the fault configuration effective for a stage.
func (p *FaultPlan) For(stage string) StageFault {
	if p == nil {
		return StageFault{}
	}
	if f, ok := p.Stages[stage]; ok {
		return f
	}
	return p.Default
}

// Inject decides what the plan does to the given attempt (1-based): the
// latency to impose and the error to inject (nil for none). Deterministic
// in (Seed, stage, attempt).
func (p *FaultPlan) Inject(stage string, attempt int) (time.Duration, error) {
	f := p.For(stage)
	var err error
	if f.FailProb > 0 && unit(p.Seed, stage, attempt, saltFault) < f.FailProb {
		err = fmt.Errorf("stage %s attempt %d: %w", stage, attempt, ErrInjected)
		if f.Transient {
			err = MarkTransient(err)
		}
	}
	return f.Latency, err
}

// String renders the plan compactly ("seed=7 extract/textx=1.00T+10ms").
func (p *FaultPlan) String() string {
	if p == nil {
		return "<no faults>"
	}
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	render := func(name string, f StageFault) string {
		s := fmt.Sprintf("%s=%.2f", name, f.FailProb)
		if f.Transient {
			s += "T"
		}
		if f.Latency > 0 {
			s += "+" + f.Latency.String()
		}
		return s
	}
	if p.Default != (StageFault{}) {
		parts = append(parts, render("all", p.Default))
	}
	names := make([]string, 0, len(p.Stages))
	for n := range p.Stages {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		parts = append(parts, render(n, p.Stages[n]))
	}
	return strings.Join(parts, " ")
}

// ParseFaultPlan parses a comma-separated fault spec into a plan. Each
// entry is "stage=prob"; the stage name "all" sets the plan default. Probs
// are in [0,1]. Example: "all=0.1,extract/textx=1,discover=0.5".
func ParseFaultPlan(spec string, seed int64) (*FaultPlan, error) {
	plan := &FaultPlan{Seed: seed, Stages: map[string]StageFault{}}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, probStr, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("fault entry %q: want stage=prob", entry)
		}
		name = strings.TrimSpace(name)
		prob, err := strconv.ParseFloat(strings.TrimSpace(probStr), 64)
		if err != nil {
			return nil, fmt.Errorf("fault entry %q: bad probability: %v", entry, err)
		}
		if prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault entry %q: probability %v outside [0,1]", entry, prob)
		}
		if name == "all" {
			plan.Default = StageFault{FailProb: prob}
		} else {
			plan.Stages[name] = StageFault{FailProb: prob}
		}
	}
	return plan, nil
}

// SetTransient marks every configured fault (including the default)
// transient or permanent; it returns the plan for chaining.
func (p *FaultPlan) SetTransient(transient bool) *FaultPlan {
	p.Default.Transient = transient
	for n, f := range p.Stages {
		f.Transient = transient
		p.Stages[n] = f
	}
	return p
}

// SetLatency injects the given latency on every configured fault entry;
// the default entry only gains latency when it already injects failures
// (otherwise every unlisted stage would slow down too). Returns the plan
// for chaining.
func (p *FaultPlan) SetLatency(d time.Duration) *FaultPlan {
	if p.Default.FailProb > 0 {
		p.Default.Latency = d
	}
	for n, f := range p.Stages {
		f.Latency = d
		p.Stages[n] = f
	}
	return p
}
