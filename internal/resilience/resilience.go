// Package resilience supervises pipeline stages. Dong et al. run knowledge
// fusion as MapReduce jobs precisely because extraction at Web scale must
// tolerate partial failure; this package brings the same discipline to the
// in-process Figure-1 pipeline. A Supervisor executes named stages with
// panic recovery, per-attempt deadlines, retry with capped exponential
// backoff and deterministic seeded jitter, and an optional fault-injection
// plan so chaos runs are reproducible bit for bit.
//
// Everything stochastic (jitter, injected faults) is derived by hashing
// (seed, stage, attempt), never from a shared RNG, so outcomes do not
// depend on goroutine scheduling or on how many stages ran before.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"akb/internal/obs"
)

// Metric names the supervisor emits into the run's obs registry (all
// no-ops when the context carries no telemetry).
const (
	metricAttempts     = "akb_resilience_stage_attempts_total"
	metricRetries      = "akb_resilience_retries_total"
	metricFaults       = "akb_resilience_faults_injected_total"
	metricPanics       = "akb_resilience_panics_total"
	metricStagesOK     = "akb_resilience_stages_ok_total"
	metricStagesDeg    = "akb_resilience_stages_degraded_total"
	metricStagesFailed = "akb_resilience_stages_failed_total"
	metricStageSeconds = "akb_resilience_stage_seconds"
)

// Health classifies a supervised stage's outcome.
type Health int

const (
	// OK: the stage completed (possibly after retries).
	OK Health = iota
	// Degraded: an optional stage failed soft; the pipeline continued
	// without its output.
	Degraded
	// Failed: a mandatory stage failed hard, or the run's context was
	// cancelled; the pipeline aborted.
	Failed
	// Skipped: the stage was disabled by configuration or not reached.
	Skipped
)

func (h Health) String() string {
	switch h {
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	case Skipped:
		return "skipped"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// MarshalJSON serialises Health as its lowercase string form ("ok",
// "degraded", ...), so health reports embedded in RunReport JSON read
// stably instead of as opaque enum integers.
func (h Health) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON accepts the string forms produced by MarshalJSON.
func (h *Health) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"ok"`:
		*h = OK
	case `"degraded"`:
		*h = Degraded
	case `"failed"`:
		*h = Failed
	case `"skipped"`:
		*h = Skipped
	default:
		return fmt.Errorf("resilience: unknown health %s", b)
	}
	return nil
}

// StageError is the typed error a supervised stage surfaces: which stage,
// how many attempts were spent, the final cause, and — when the stage
// panicked — the recovered value.
type StageError struct {
	// Stage is the supervised stage name.
	Stage string
	// Attempts is the number of attempts made before giving up.
	Attempts int
	// Err is the final attempt's error.
	Err error
	// PanicValue is the recovered value when the failure was a panic; nil
	// for ordinary errors.
	PanicValue any
}

func (e *StageError) Error() string {
	if e.PanicValue != nil {
		return fmt.Sprintf("stage %s: panic after %d attempt(s): %v", e.Stage, e.Attempts, e.PanicValue)
	}
	return fmt.Sprintf("stage %s: failed after %d attempt(s): %v", e.Stage, e.Attempts, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// transientErr marks an error as transient (worth retrying).
type transientErr struct{ err error }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() error   { return e.err }
func (e *transientErr) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether any error in err's chain declares itself
// transient via a `Transient() bool` method.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy is a capped exponential backoff schedule. The zero value
// disables retries (a single attempt, no sleeping).
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget; values below 1 mean one
	// attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values below 1 default
	// to 2.
	Multiplier float64
	// Jitter in [0,1) scales each delay by a deterministic factor drawn
	// from [1-Jitter, 1+Jitter].
	Jitter float64
}

// DefaultRetry is the policy used for retryable pipeline stages: three
// attempts, 25ms base delay doubling to a 250ms cap, 50% jitter.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the backoff to sleep after the given failed attempt
// (1-based). It is a pure function of (policy, seed, stage, attempt), so a
// fixed seed always yields the same schedule.
func (p RetryPolicy) Delay(seed int64, stage string, attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		u := unit(seed, stage, attempt, saltJitter) // [0,1)
		d *= 1 + p.Jitter*(2*u-1)
	}
	return time.Duration(d)
}

// Stage describes one supervised unit of work.
type Stage struct {
	// Name identifies the stage in errors, fault plans and health reports.
	Name string
	// Optional stages fail soft: the supervisor reports Degraded and the
	// caller continues. Mandatory stages report Failed.
	Optional bool
	// Retry is the backoff schedule; the zero value runs one attempt.
	Retry RetryPolicy
	// Timeout bounds each attempt; 0 means no per-attempt deadline.
	Timeout time.Duration
	// Run is the stage body. It must be safe to call again after an error
	// (attempts re-run it from scratch).
	Run func(ctx context.Context) error
}

// Report is the supervised outcome of one stage.
type Report struct {
	Stage    string
	Health   Health
	Attempts int
	// Err is the *StageError when Health is Degraded or Failed, nil on OK.
	Err error
	// Duration is wall-clock time across all attempts, including backoff.
	Duration time.Duration
}

// Supervisor executes stages with recovery, retries and fault injection.
// The zero value is usable; set Seed for reproducible jitter and Faults to
// inject failures.
type Supervisor struct {
	// Seed drives backoff jitter (and, combined with the plan's own seed,
	// nothing else: fault decisions use FaultPlan.Seed).
	Seed int64
	// Faults optionally injects deterministic failures; nil disables
	// injection.
	Faults *FaultPlan
	// Sleep replaces the context-aware sleep between attempts and for
	// injected latency; tests substitute a recorder so schedules are
	// asserted without real waiting. nil uses a timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnStage, when set, observes every stage start (before the first
	// attempt). Used for logging and by tests to cancel mid-pipeline.
	OnStage func(stage string)
	// OnRetry, when set, observes each failed attempt that will be
	// retried.
	OnRetry func(stage string, attempt int, err error, backoff time.Duration)
}

// Run executes one stage under supervision and reports its outcome. A
// cancelled context always yields Failed (even for optional stages) with an
// error chain containing the context error.
//
// When the context carries an obs telemetry run, Run opens one root span
// per stage (annotated with health and attempt count), one child span per
// attempt, and emits akb_resilience_* retry/fault/panic/outcome counters
// plus a stage-duration histogram.
func (s *Supervisor) Run(ctx context.Context, st Stage) Report {
	rep := Report{Stage: st.Name, Health: OK}
	start := time.Now()
	reg := obs.Reg(ctx)
	sctx, span := obs.StartSpan(ctx, st.Name)
	if st.Optional {
		span.Annotate("optional", "true")
	}
	finish := func() {
		span.AnnotateInt("attempts", int64(rep.Attempts))
		span.Annotate("health", rep.Health.String())
		span.RecordError(rep.Err)
		span.End()
		reg.Histogram(metricStageSeconds, nil).Observe(rep.Duration.Seconds())
		switch rep.Health {
		case OK:
			reg.Counter(metricStagesOK).Inc()
		case Degraded:
			reg.Counter(metricStagesDeg).Inc()
		default:
			reg.Counter(metricStagesFailed).Inc()
		}
	}
	if s.OnStage != nil {
		s.OnStage(st.Name)
	}
	max := st.Retry.attempts()
	var last error
	var panicValue any
	for attempt := 1; attempt <= max; attempt++ {
		rep.Attempts = attempt
		if err := ctx.Err(); err != nil {
			last = fmt.Errorf("cancelled before attempt %d: %w", attempt, err)
			panicValue = nil
			break
		}
		reg.Counter(metricAttempts).Inc()
		err, pv := s.attempt(sctx, st, attempt)
		if err == nil {
			rep.Duration = time.Since(start)
			finish()
			return rep
		}
		last, panicValue = err, pv
		if pv != nil {
			reg.Counter(metricPanics).Inc()
			break // panics are bugs, not transient conditions: do not retry
		}
		if ctx.Err() != nil {
			break // the run's context died; retrying cannot help
		}
		retryable := IsTransient(err) || errors.Is(err, context.DeadlineExceeded)
		if !retryable || attempt == max {
			break
		}
		backoff := st.Retry.Delay(s.Seed, st.Name, attempt)
		reg.Counter(metricRetries).Inc()
		if s.OnRetry != nil {
			s.OnRetry(st.Name, attempt, err, backoff)
		}
		if backoff > 0 {
			if serr := s.sleep(ctx, backoff); serr != nil {
				last = fmt.Errorf("cancelled during backoff after attempt %d: %w", attempt, serr)
				break
			}
		}
	}
	rep.Duration = time.Since(start)
	rep.Err = &StageError{Stage: st.Name, Attempts: rep.Attempts, Err: last, PanicValue: panicValue}
	if st.Optional && ctx.Err() == nil {
		rep.Health = Degraded
	} else {
		rep.Health = Failed
	}
	finish()
	return rep
}

// attempt runs one attempt: per-attempt deadline, fault injection, panic
// recovery. It returns the attempt error and, for panics, the recovered
// value. The attempt runs under its own child span (nested inside the
// stage span), so the stage body's instrumentation nests under it.
func (s *Supervisor) attempt(ctx context.Context, st Stage, attempt int) (err error, panicValue any) {
	actx, aspan := obs.StartSpan(ctx, st.Name+"/attempt")
	aspan.AnnotateInt("attempt", int64(attempt))
	// Registered before the recover defer so it runs after it (LIFO) and
	// sees the panic-derived err.
	defer func() {
		aspan.RecordError(err)
		aspan.End()
	}()
	if st.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(actx, st.Timeout)
		defer cancel()
	}
	if s.Faults != nil {
		latency, ferr := s.Faults.Inject(st.Name, attempt)
		if latency > 0 {
			aspan.Annotate("injected_latency", latency.String())
			if serr := s.sleep(actx, latency); serr != nil {
				return fmt.Errorf("injected latency interrupted: %w", serr), nil
			}
		}
		if ferr != nil {
			obs.Reg(ctx).Counter(metricFaults).Inc()
			aspan.Annotate("injected_fault", "true")
			return ferr, nil
		}
	}
	defer func() {
		if r := recover(); r != nil {
			panicValue = r
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return st.Run(actx), nil
}

func (s *Supervisor) sleep(ctx context.Context, d time.Duration) error {
	if s.Sleep != nil {
		return s.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// --- deterministic hashing ------------------------------------------------

const (
	saltJitter uint64 = 0x9e3779b97f4a7c15
	saltFault  uint64 = 0xbf58476d1ce4e5b9
)

// unit hashes (seed, stage, attempt, salt) to a uniform float64 in [0,1).
func unit(seed int64, stage string, attempt int, salt uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(stage))
	x := h.Sum64() ^ uint64(seed)*0x94d049bb133111eb ^ uint64(attempt)<<32 ^ salt
	// splitmix64 finalizer for avalanche.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
