package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// recordingSleep captures requested sleeps without waiting.
func recordingSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestRunSucceedsFirstAttempt(t *testing.T) {
	sup := &Supervisor{Seed: 1}
	calls := 0
	rep := sup.Run(context.Background(), Stage{
		Name:  "ok",
		Retry: DefaultRetry(),
		Run:   func(context.Context) error { calls++; return nil },
	})
	if rep.Health != OK || rep.Attempts != 1 || rep.Err != nil || calls != 1 {
		t.Fatalf("rep=%+v calls=%d", rep, calls)
	}
}

func TestRetryRecoversFromTransientErrors(t *testing.T) {
	var delays []time.Duration
	sup := &Supervisor{Seed: 1}
	sup.Sleep = recordingSleep(&delays)
	calls := 0
	rep := sup.Run(context.Background(), Stage{
		Name:  "flaky",
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
		Run: func(context.Context) error {
			calls++
			if calls < 3 {
				return MarkTransient(errors.New("blip"))
			}
			return nil
		},
	})
	if rep.Health != OK || rep.Attempts != 3 || calls != 3 {
		t.Fatalf("rep=%+v calls=%d", rep, calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2: %v", len(delays), delays)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	sup := &Supervisor{Seed: 1}
	calls := 0
	boom := errors.New("permanent")
	rep := sup.Run(context.Background(), Stage{
		Name:  "perm",
		Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Run:   func(context.Context) error { calls++; return boom },
	})
	if rep.Health != Failed || calls != 1 || rep.Attempts != 1 {
		t.Fatalf("rep=%+v calls=%d", rep, calls)
	}
	var se *StageError
	if !errors.As(rep.Err, &se) || se.Stage != "perm" || !errors.Is(rep.Err, boom) {
		t.Fatalf("want StageError wrapping cause, got %v", rep.Err)
	}
}

func TestPanicBecomesStageError(t *testing.T) {
	sup := &Supervisor{Seed: 1}
	calls := 0
	rep := sup.Run(context.Background(), Stage{
		Name:     "bomb",
		Optional: true,
		Retry:    RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Run:      func(context.Context) error { calls++; panic("kaboom") },
	})
	if rep.Health != Degraded {
		t.Fatalf("health = %v, want Degraded", rep.Health)
	}
	if calls != 1 {
		t.Fatalf("panicking stage retried %d times; panics must not retry", calls)
	}
	var se *StageError
	if !errors.As(rep.Err, &se) {
		t.Fatalf("want StageError, got %T", rep.Err)
	}
	if se.PanicValue != "kaboom" {
		t.Fatalf("PanicValue = %v", se.PanicValue)
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	var a, b []time.Duration
	for attempt := 1; attempt <= 5; attempt++ {
		a = append(a, p.Delay(42, "stage", attempt))
		b = append(b, p.Delay(42, "stage", attempt))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Jitter stays within ±50% of the capped exponential curve.
	base := []time.Duration{10, 20, 40, 80, 100}
	for i, d := range a {
		lo := time.Duration(float64(base[i]) * 0.5 * float64(time.Millisecond))
		hi := time.Duration(float64(base[i]) * 1.5 * float64(time.Millisecond))
		if d < lo || d > hi {
			t.Errorf("attempt %d delay %v outside [%v,%v]", i+1, d, lo, hi)
		}
	}
	// A different seed perturbs at least one delay.
	diff := false
	for attempt := 1; attempt <= 5; attempt++ {
		if p.Delay(43, "stage", attempt) != a[attempt-1] {
			diff = true
		}
	}
	if !diff {
		t.Error("seed change did not perturb the jittered schedule")
	}
}

func TestCancelledContextFailsEvenOptionalStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sup := &Supervisor{Seed: 1}
	rep := sup.Run(ctx, Stage{
		Name:     "opt",
		Optional: true,
		Run:      func(context.Context) error { t.Fatal("body must not run"); return nil },
	})
	if rep.Health != Failed {
		t.Fatalf("health = %v, want Failed on cancelled context", rep.Health)
	}
	if !errors.Is(rep.Err, context.Canceled) {
		t.Fatalf("err %v does not wrap context.Canceled", rep.Err)
	}
}

func TestCancellationDuringBackoffStopsRetrying(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sup := &Supervisor{Seed: 1}
	sup.Sleep = func(context.Context, time.Duration) error {
		cancel()
		return ctx.Err()
	}
	calls := 0
	rep := sup.Run(ctx, Stage{
		Name:  "s",
		Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Run:   func(context.Context) error { calls++; return MarkTransient(errors.New("blip")) },
	})
	if calls != 1 {
		t.Fatalf("ran %d attempts after cancellation, want 1", calls)
	}
	if rep.Health != Failed || !errors.Is(rep.Err, context.Canceled) {
		t.Fatalf("rep=%+v", rep)
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	sup := &Supervisor{Seed: 1}
	rep := sup.Run(context.Background(), Stage{
		Name:    "slow",
		Timeout: 5 * time.Millisecond,
		Run: func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		},
	})
	if rep.Health != Failed || !errors.Is(rep.Err, context.DeadlineExceeded) {
		t.Fatalf("rep=%+v", rep)
	}
}

func TestOnStageAndOnRetryHooksFire(t *testing.T) {
	var stages []string
	var retries []int
	var delays []time.Duration
	sup := &Supervisor{Seed: 1}
	sup.Sleep = recordingSleep(&delays)
	sup.OnStage = func(s string) { stages = append(stages, s) }
	sup.OnRetry = func(_ string, attempt int, _ error, _ time.Duration) { retries = append(retries, attempt) }
	calls := 0
	sup.Run(context.Background(), Stage{
		Name:  "hooked",
		Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Run: func(context.Context) error {
			calls++
			if calls == 1 {
				return MarkTransient(errors.New("blip"))
			}
			return nil
		},
	})
	if len(stages) != 1 || stages[0] != "hooked" {
		t.Errorf("OnStage saw %v", stages)
	}
	if len(retries) != 1 || retries[0] != 1 {
		t.Errorf("OnRetry saw %v", retries)
	}
}

func TestIsTransientWalksChain(t *testing.T) {
	err := fmt.Errorf("outer: %w", MarkTransient(errors.New("inner")))
	if !IsTransient(err) {
		t.Error("wrapped transient not detected")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error reported transient")
	}
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
}
