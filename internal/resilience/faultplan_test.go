package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultPlanDeterministic(t *testing.T) {
	plan := &FaultPlan{Seed: 7, Stages: map[string]StageFault{
		"a": {FailProb: 0.5},
		"b": {FailProb: 0.5, Transient: true},
	}}
	for trial := 0; trial < 3; trial++ {
		for _, stage := range []string{"a", "b"} {
			for attempt := 1; attempt <= 10; attempt++ {
				_, e1 := plan.Inject(stage, attempt)
				_, e2 := plan.Inject(stage, attempt)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("%s attempt %d: non-deterministic injection", stage, attempt)
				}
			}
		}
	}
}

func TestFaultPlanSeedChangesDecisions(t *testing.T) {
	a := &FaultPlan{Seed: 1, Default: StageFault{FailProb: 0.5}}
	b := &FaultPlan{Seed: 2, Default: StageFault{FailProb: 0.5}}
	diff := false
	for attempt := 1; attempt <= 32; attempt++ {
		_, e1 := a.Inject("stage", attempt)
		_, e2 := b.Inject("stage", attempt)
		if (e1 == nil) != (e2 == nil) {
			diff = true
		}
	}
	if !diff {
		t.Error("32 attempts under two seeds produced identical decisions")
	}
}

func TestFaultPlanProbabilityEndpoints(t *testing.T) {
	always := &FaultPlan{Seed: 3, Default: StageFault{FailProb: 1}}
	never := &FaultPlan{Seed: 3, Default: StageFault{FailProb: 0}}
	for attempt := 1; attempt <= 20; attempt++ {
		if _, err := always.Inject("s", attempt); err == nil {
			t.Fatalf("FailProb=1 did not fail attempt %d", attempt)
		} else if !errors.Is(err, ErrInjected) {
			t.Fatalf("injected error %v does not wrap ErrInjected", err)
		}
		if _, err := never.Inject("s", attempt); err != nil {
			t.Fatalf("FailProb=0 failed attempt %d: %v", attempt, err)
		}
	}
}

func TestFaultPlanTransientMarking(t *testing.T) {
	plan := &FaultPlan{Seed: 1, Stages: map[string]StageFault{
		"t": {FailProb: 1, Transient: true},
		"p": {FailProb: 1},
	}}
	_, terr := plan.Inject("t", 1)
	_, perr := plan.Inject("p", 1)
	if !IsTransient(terr) {
		t.Errorf("transient fault not marked: %v", terr)
	}
	if IsTransient(perr) {
		t.Errorf("permanent fault marked transient: %v", perr)
	}
}

func TestSupervisorRecoversFromTransientInjection(t *testing.T) {
	// FailProb below 1 with enough attempts must eventually let the stage
	// through; the schedule is deterministic, so this either always passes
	// or always fails for a given seed.
	var delays []time.Duration
	sup := &Supervisor{
		Seed:   5,
		Faults: &FaultPlan{Seed: 5, Default: StageFault{FailProb: 0.5, Transient: true}},
	}
	sup.Sleep = recordingSleep(&delays)
	rep := sup.Run(context.Background(), Stage{
		Name:  "roll",
		Retry: RetryPolicy{MaxAttempts: 16, BaseDelay: time.Millisecond},
		Run:   func(context.Context) error { return nil },
	})
	if rep.Health != OK {
		t.Fatalf("16 attempts at p=0.5 never passed: %+v", rep)
	}
}

func TestInjectedLatencyGoesThroughSleep(t *testing.T) {
	var delays []time.Duration
	sup := &Supervisor{
		Seed:   1,
		Faults: &FaultPlan{Seed: 1, Stages: map[string]StageFault{"slow": {Latency: 42 * time.Millisecond}}},
	}
	sup.Sleep = recordingSleep(&delays)
	rep := sup.Run(context.Background(), Stage{Name: "slow", Run: func(context.Context) error { return nil }})
	if rep.Health != OK {
		t.Fatalf("rep=%+v", rep)
	}
	if len(delays) != 1 || delays[0] != 42*time.Millisecond {
		t.Fatalf("latency sleeps = %v", delays)
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("all=0.1, extract/textx=1,discover=0.5", 9)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 9 || plan.Default.FailProb != 0.1 {
		t.Fatalf("plan=%+v", plan)
	}
	if plan.Stages["extract/textx"].FailProb != 1 || plan.Stages["discover"].FailProb != 0.5 {
		t.Fatalf("stages=%+v", plan.Stages)
	}
	if f := plan.For("anything-else"); f.FailProb != 0.1 {
		t.Errorf("default not applied: %+v", f)
	}
	for _, bad := range []string{"x", "a=", "a=2", "a=-1", "a=zz"} {
		if _, err := ParseFaultPlan(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	plan.SetTransient(true).SetLatency(5 * time.Millisecond)
	if !plan.Default.Transient || !plan.Stages["discover"].Transient {
		t.Error("SetTransient did not propagate")
	}
	if plan.Default.Latency != 5*time.Millisecond || plan.Stages["discover"].Latency != 5*time.Millisecond {
		t.Error("SetLatency did not propagate")
	}
	if s := plan.String(); s == "" || s == "<no faults>" {
		t.Errorf("String() = %q", s)
	}
}
