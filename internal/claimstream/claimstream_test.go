package claimstream

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"akb/internal/fusion"
	"akb/internal/rdf"
)

// stmt builds a test statement.
func stmt(item, value, source string, conf float64) rdf.Statement {
	return rdf.S(
		rdf.T(rdf.AKB.IRI("e/"+item), rdf.AKB.IRI("attr/p"), rdf.Literal(value)),
		rdf.Provenance{Source: source, Extractor: "x"},
		conf,
	)
}

// synth generates a deterministic pile of overlapping statements: several
// sources claim values of shared items with duplicate (item, value,
// source) assertions at different confidences, so max-confidence merging
// is exercised.
func synth(seed int64, n int) []rdf.Statement {
	r := rand.New(rand.NewSource(seed))
	out := make([]rdf.Statement, 0, n)
	for i := 0; i < n; i++ {
		item := fmt.Sprintf("item%02d", r.Intn(20))
		value := fmt.Sprintf("v%d", r.Intn(4))
		source := fmt.Sprintf("src%d", r.Intn(5))
		out = append(out, stmt(item, value, source, 0.1+0.8*r.Float64()))
	}
	return out
}

// TestFinalizeMatchesBuildClaims is the streaming-correctness contract:
// for any partition of the statements into producers and batches, emitted
// concurrently in any order, Finalize returns claims deeply equal to
// BuildClaims over the whole statement list.
func TestFinalizeMatchesBuildClaims(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		stmts := synth(seed, 400)
		want := fusion.BuildClaims(stmts, fusion.BySourceExtractor)

		producers := []string{"a", "b", "c"}
		s := New(fusion.BySourceExtractor, producers...)
		r := rand.New(rand.NewSource(seed * 100))
		// Partition statements round-robin-ish across producers, then
		// split each producer's share into random batches.
		shares := make([][]rdf.Statement, len(producers))
		for _, st := range stmts {
			i := r.Intn(len(producers))
			shares[i] = append(shares[i], st)
		}
		var wg sync.WaitGroup
		for i, name := range producers {
			wg.Add(1)
			go func(name string, share []rdf.Statement) {
				defer wg.Done()
				s.Begin(name)
				for len(share) > 0 {
					k := 1 + rand.Intn(len(share))
					s.Emit(name, share[:k])
					share = share[k:]
				}
				s.Seal(name)
			}(name, shares[i])
		}
		got, err := s.Finalize(context.Background())
		wg.Wait()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: streamed claims differ from BuildClaims", seed)
		}
	}
}

// TestBeginDiscardsFailedAttempt checks the retry contract: batches from
// an attempt that failed before sealing vanish when the next attempt
// begins.
func TestBeginDiscardsFailedAttempt(t *testing.T) {
	s := New(fusion.BySource, "p")
	s.Begin("p")
	s.Emit("p", []rdf.Statement{stmt("i", "stale", "s1", 0.9)})
	// Attempt fails; the supervisor retries and the body begins again.
	s.Begin("p")
	fresh := []rdf.Statement{stmt("i", "fresh", "s1", 0.9)}
	s.Emit("p", fresh)
	s.Seal("p")
	got, err := s.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := fusion.BuildClaims(fresh, fusion.BySource); !reflect.DeepEqual(got, want) {
		t.Errorf("claims after retry = %+v, want only the fresh batch", got.Items)
	}
}

// TestDiscardExcludesProducer checks a degraded producer's partial stream
// never reaches the merged claims — mirroring how the union skips
// degraded extractors.
func TestDiscardExcludesProducer(t *testing.T) {
	s := New(fusion.BySource, "ok", "bad")
	s.Begin("ok")
	okStmts := []rdf.Statement{stmt("i", "good", "s1", 0.9)}
	s.Emit("ok", okStmts)
	s.Seal("ok")
	s.Begin("bad")
	s.Emit("bad", []rdf.Statement{stmt("i", "poison", "s2", 0.9)})
	s.Discard("bad") // the scheduler hook fires on the degraded stage
	got, err := s.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := fusion.BuildClaims(okStmts, fusion.BySource); !reflect.DeepEqual(got, want) {
		t.Errorf("discarded producer leaked into claims: %+v", got.Items)
	}
}

// TestFinalizeFoldsBeforeSeal checks Finalize makes progress on batches
// emitted before any producer seals — the overlap that makes streaming
// pay — by emitting from a goroutine that only seals after the batch has
// had time to be folded. Functional check only: the batch must arrive.
func TestFinalizeFoldsBeforeSeal(t *testing.T) {
	s := New(fusion.BySource, "p")
	stmts := []rdf.Statement{stmt("i", "v", "s1", 0.9)}
	go func() {
		s.Begin("p")
		s.Emit("p", stmts)
		time.Sleep(10 * time.Millisecond)
		s.Seal("p")
	}()
	got, err := s.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != 1 {
		t.Errorf("got %d items, want 1", len(got.Items))
	}
}

// TestFinalizeCancelled checks a cancelled context unblocks Finalize with
// the context's error while a producer is still outstanding.
func TestFinalizeCancelled(t *testing.T) {
	s := New(fusion.BySource, "never")
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Finalize(ctx)
		errCh <- err
	}()
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Finalize did not unblock on cancellation")
	}
}

// TestFinalizeRepeatedReturnsCached checks a retried consumer attempt
// gets the first attempt's claims back instead of re-merging consumed
// builders.
func TestFinalizeRepeatedReturnsCached(t *testing.T) {
	s := New(fusion.BySource, "p")
	s.Begin("p")
	s.Emit("p", []rdf.Statement{stmt("i", "v", "s1", 0.9)})
	s.Seal("p")
	first, err := s.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("repeated Finalize did not return the cached claims")
	}
}
