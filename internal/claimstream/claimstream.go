// Package claimstream hands extractor statements to fusion while the
// extractors are still running. Dong et al. (VLDB'14) keep knowledge
// fusion scalable by structuring it as MapReduce passes over claim
// batches; the same idea applies one level up in this pipeline: claim
// building — grouping statements into (item, value, source) assertions —
// commutes with batching (fusion.ClaimBuilder produces the same sorted
// *Claims for any partition and arrival order), so the fusion stage can
// fold each producer's batches the moment they are emitted instead of
// waiting for the statement union to complete.
//
// A Stream is created with the set of producer stage names. Each producer
// wraps its supervised body with Begin (start of an attempt — discards any
// partial batches from a previous failed attempt) and Seal (successful
// end). The scheduler's OnStageEnd hook calls Discard for stages that end
// non-OK, so a degraded producer's partial stream never reaches fusion —
// exactly mirroring how the statement union skips degraded extractors.
// The consumer calls Finalize, which folds batches into per-producer
// claim builders as they arrive, blocks until every producer is sealed or
// discarded, and merges the survivors into the canonical *fusion.Claims.
//
// Producers never block: Emit appends under a mutex and returns. Finalize
// is the only waiter, so the stream cannot deadlock the stage scheduler
// regardless of pool size or failure order.
package claimstream

import (
	"context"
	"sort"
	"sync"

	"akb/internal/fusion"
	"akb/internal/rdf"
)

// producer tracks one upstream stage's batches and lifecycle.
type producer struct {
	// epoch counts Begin calls; a fold started under an older epoch lands
	// in a builder that has already been replaced and is simply dropped.
	epoch     int
	batches   [][]rdf.Statement
	sealed    bool
	discarded bool
	builder   *fusion.ClaimBuilder
}

// Stream is a bounded hand-off of claim batches from named producer
// stages to a single Finalize caller. All methods are safe for concurrent
// use.
type Stream struct {
	mu        sync.Mutex
	cond      *sync.Cond
	g         fusion.Granularity
	producers map[string]*producer
	cancelled bool
	// result caches the first successful Finalize so a retried consumer
	// attempt (the merge is destructive) gets the identical claims back.
	result *fusion.Claims
}

// New returns a stream expecting exactly the named producers. Finalize
// returns only after every one of them has been sealed or discarded.
func New(g fusion.Granularity, producers ...string) *Stream {
	s := &Stream{g: g, producers: make(map[string]*producer, len(producers))}
	s.cond = sync.NewCond(&s.mu)
	for _, name := range producers {
		s.producers[name] = &producer{builder: fusion.NewClaimBuilder(g)}
	}
	return s
}

// Expects reports whether the stream was created with the named producer.
func (s *Stream) Expects(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.producers[name]
	return ok
}

// Begin marks the start of a producer attempt, discarding any batches a
// previous attempt of the same stage emitted before failing. Unknown
// names are ignored.
func (s *Stream) Begin(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.producers[name]
	if !ok {
		return
	}
	p.epoch++
	p.batches = nil
	p.sealed = false
	p.discarded = false
	p.builder = fusion.NewClaimBuilder(s.g)
}

// Emit appends a batch of statements from the named producer. It never
// blocks beyond the mutex and is safe to call from a producer's internal
// worker goroutines. Empty batches and unknown or discarded producers are
// no-ops.
func (s *Stream) Emit(name string, stmts []rdf.Statement) {
	if len(stmts) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.producers[name]
	if !ok || p.discarded {
		return
	}
	p.batches = append(p.batches, stmts)
	s.cond.Broadcast()
}

// Seal marks the named producer's stream complete: every batch has been
// emitted and the stage succeeded.
func (s *Stream) Seal(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.producers[name]
	if !ok {
		return
	}
	p.sealed = true
	s.cond.Broadcast()
}

// Discard drops the named producer's stream: its batches are released and
// Finalize excludes it, exactly as the statement union excludes a
// degraded extractor. Unknown names are ignored, so the scheduler hook
// may call it for every non-OK stage.
func (s *Stream) Discard(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.producers[name]
	if !ok {
		return
	}
	p.discarded = true
	p.sealed = false
	p.batches = nil
	s.cond.Broadcast()
}

// Finalize folds batches into per-producer claim builders as they arrive,
// waits until every producer is sealed or discarded, and merges the
// sealed producers into the canonical *fusion.Claims — byte-identical to
// fusion.BuildClaims over the concatenation of the surviving producers'
// statements, in any arrival order. It returns ctx.Err() if the context
// is cancelled while producers are still outstanding. A repeated call
// (a retried consumer attempt) returns the first call's claims.
func (s *Stream) Finalize(ctx context.Context) (*fusion.Claims, error) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cancelled = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	if s.result != nil {
		res := s.result
		s.mu.Unlock()
		return res, nil
	}
	for {
		if p := s.pendingLocked(); p != nil {
			// Fold outside the lock: Begin replaces the builder rather than
			// reusing it, so a fold racing a retry lands in an orphaned
			// builder and is dropped with it.
			batches := p.batches
			p.batches = nil
			b := p.builder
			s.mu.Unlock()
			for _, batch := range batches {
				b.Add(batch...)
			}
			s.mu.Lock()
			continue
		}
		if s.settledLocked() {
			break
		}
		if s.cancelled {
			s.mu.Unlock()
			return nil, ctx.Err()
		}
		s.cond.Wait()
	}
	names := make([]string, 0, len(s.producers))
	for name, p := range s.producers {
		if p.sealed {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	merged := fusion.NewClaimBuilder(s.g)
	for _, name := range names {
		merged.Merge(s.producers[name].builder)
		s.producers[name].builder = nil
	}
	s.result = merged.Build()
	res := s.result
	s.mu.Unlock()
	return res, nil
}

// pendingLocked returns a live producer with unfolded batches, or nil.
func (s *Stream) pendingLocked() *producer {
	for _, p := range s.producers {
		if !p.discarded && len(p.batches) > 0 {
			return p
		}
	}
	return nil
}

// settledLocked reports whether every producer has been sealed or
// discarded with no batches left to fold.
func (s *Stream) settledLocked() bool {
	for _, p := range s.producers {
		if !p.sealed && !p.discarded {
			return false
		}
	}
	return true
}
