// Package confidence implements the unified confidence-assignment criterion
// the paper proposes for extraction uncertainty: every extractor scores its
// triples on the same [0, 1] scale so the fusion phase can compare and
// weight claims across extractors.
//
// The criterion combines three monotone factors:
//
//		confidence = prior(extractor) * supportFactor(support) * agreementFactor(sources)
//
//	  - prior(extractor): the extractor family's intrinsic reliability
//	    (curated-KB extraction is more reliable than open-Web DOM induction);
//	  - supportFactor: how often the pattern/claim was observed, saturating
//	    via s/(s+k) so early observations matter most;
//	  - agreementFactor: how many distinct sources contributed, likewise
//	    saturating.
//
// The output is clamped to [MinConfidence, MaxConfidence] so no claim is
// ever treated as impossible or certain — fusion methods rely on that.
package confidence

import (
	"akb/internal/extract"
)

// Bounds of assigned confidence scores.
const (
	MinConfidence = 0.05
	MaxConfidence = 0.99
)

// Criterion is the unified scoring configuration shared by all extractors.
type Criterion struct {
	// Priors maps extractor name to its intrinsic reliability prior.
	Priors map[string]float64
	// SupportHalf is the support count at which supportFactor reaches 1/2.
	SupportHalf float64
	// SourceHalf is the distinct-source count at which agreementFactor
	// reaches 1/2 of its range above the floor.
	SourceHalf float64
}

// Default returns the standard criterion. Priors order the extractor
// families by the reliability the paper attributes to them: existing KBs >
// query stream > Web text > DOM trees (open-Web structural induction is the
// noisiest).
func Default() *Criterion {
	return &Criterion{
		Priors: map[string]float64{
			extract.ExtractorKB:    0.95,
			extract.ExtractorQuery: 0.85,
			extract.ExtractorText:  0.75,
			extract.ExtractorDOM:   0.70,
		},
		SupportHalf: 2,
		SourceHalf:  1.5,
	}
}

// Prior returns the extractor's reliability prior (0.5 for unknown
// extractors, a neutral default).
func (c *Criterion) Prior(extractor string) float64 {
	if p, ok := c.Priors[extractor]; ok {
		return p
	}
	return 0.5
}

// Score assigns the unified confidence for a claim observed `support` times
// across `sources` distinct origins by `extractor`.
func (c *Criterion) Score(extractor string, support, sources int) float64 {
	if support < 1 {
		support = 1
	}
	if sources < 1 {
		sources = 1
	}
	prior := c.Prior(extractor)
	sf := float64(support) / (float64(support) + c.SupportHalf)
	// agreementFactor has a floor of 0.6 at one source so single-source
	// claims are discounted but not destroyed.
	af := 0.6 + 0.4*float64(sources-1)/(float64(sources-1)+c.SourceHalf)
	conf := prior * sf * af
	return clamp(conf)
}

// ScoreAttrSet assigns confidences to every attribute in the set in place
// and returns the set for chaining.
func (c *Criterion) ScoreAttrSet(extractor string, s extract.AttrSet) extract.AttrSet {
	for _, ev := range s {
		ev.Confidence = c.Score(extractor, ev.Support, len(ev.Sources))
	}
	return s
}

func clamp(v float64) float64 {
	if v < MinConfidence {
		return MinConfidence
	}
	if v > MaxConfidence {
		return MaxConfidence
	}
	return v
}
