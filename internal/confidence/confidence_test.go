package confidence

import (
	"testing"
	"testing/quick"

	"akb/internal/extract"
)

func TestScoreBounds(t *testing.T) {
	c := Default()
	f := func(support, sources uint8) bool {
		v := c.Score(extract.ExtractorDOM, int(support), int(sources))
		return v >= MinConfidence && v <= MaxConfidence
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestScoreMonotoneInSupport(t *testing.T) {
	c := Default()
	prev := 0.0
	for s := 1; s <= 50; s++ {
		v := c.Score(extract.ExtractorText, s, 2)
		if v < prev {
			t.Fatalf("score decreased at support %d: %g < %g", s, v, prev)
		}
		prev = v
	}
}

func TestScoreMonotoneInSources(t *testing.T) {
	c := Default()
	prev := 0.0
	for s := 1; s <= 20; s++ {
		v := c.Score(extract.ExtractorText, 10, s)
		if v < prev {
			t.Fatalf("score decreased at sources %d: %g < %g", s, v, prev)
		}
		prev = v
	}
}

func TestPriorsOrderExtractors(t *testing.T) {
	c := Default()
	// Same evidence, different extractors: KB > query > text > DOM.
	kbv := c.Score(extract.ExtractorKB, 5, 3)
	qv := c.Score(extract.ExtractorQuery, 5, 3)
	tv := c.Score(extract.ExtractorText, 5, 3)
	dv := c.Score(extract.ExtractorDOM, 5, 3)
	if !(kbv > qv && qv > tv && tv > dv) {
		t.Errorf("prior ordering broken: kb=%g q=%g text=%g dom=%g", kbv, qv, tv, dv)
	}
}

func TestUnknownExtractorNeutralPrior(t *testing.T) {
	c := Default()
	if got := c.Prior("mystery"); got != 0.5 {
		t.Errorf("unknown prior = %g, want 0.5", got)
	}
}

func TestScoreClampsDegenerateInputs(t *testing.T) {
	c := Default()
	if v := c.Score(extract.ExtractorKB, 0, 0); v < MinConfidence || v > MaxConfidence {
		t.Errorf("degenerate score = %g", v)
	}
	if v := c.Score(extract.ExtractorKB, -5, -5); v < MinConfidence || v > MaxConfidence {
		t.Errorf("negative-input score = %g", v)
	}
}

func TestScoreAttrSet(t *testing.T) {
	c := Default()
	s := extract.NewAttrSet()
	s.Add("director", "siteA")
	s.Add("director", "siteB")
	s.Add("director", "siteB")
	s.Add("rare attr", "siteA")
	c.ScoreAttrSet(extract.ExtractorDOM, s)
	d := s["director"]
	r := s["rare attr"]
	if d.Confidence <= r.Confidence {
		t.Errorf("better-supported attribute should score higher: %g vs %g", d.Confidence, r.Confidence)
	}
	for name, ev := range s {
		if ev.Confidence < MinConfidence || ev.Confidence > MaxConfidence {
			t.Errorf("%s confidence %g out of bounds", name, ev.Confidence)
		}
	}
}
