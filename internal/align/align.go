// Package align implements the normalisation step the paper places at the
// start of the fusion phase: "the misspellings, synonyms, and sub-attributes
// are identified at this stage". It detects attribute synonyms (the same
// logical attribute surfacing under different names on different sites),
// corrects misspelled values against their well-supported variants, and
// identifies sub-attribute relations between attribute names. Fusion runs
// on the normalised statements; without alignment, synonym attributes split
// items and misspellings split votes.
package align

import (
	"sort"
	"strings"

	"akb/internal/extract"
	"akb/internal/rdf"
)

// Config tunes the alignment heuristics.
type Config struct {
	// MinValueAgreement is the fraction of shared entities on which two
	// attribute names must carry equal values to be merged as synonyms
	// (used for names whose token signatures differ).
	MinValueAgreement float64
	// MinSharedEntities is the number of entities two names must share
	// before value agreement is meaningful.
	MinSharedEntities int
	// MisspellMaxDistance is the maximum edit distance for a low-support
	// value to be folded into a high-support one.
	MisspellMaxDistance int
	// MisspellSupportRatio is how many times better supported the target
	// value must be.
	MisspellSupportRatio float64
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{
		MinValueAgreement:    0.8,
		MinSharedEntities:    3,
		MisspellMaxDistance:  2,
		MisspellSupportRatio: 2,
	}
}

// Report summarises what alignment changed.
type Report struct {
	// Synonyms maps merged attribute names to their canonical name.
	Synonyms map[string]string
	// SubAttributes maps sub-attribute names to their parent attribute.
	SubAttributes map[string]string
	// CorrectedValues counts misspelled value occurrences folded.
	CorrectedValues int
}

// tokenSignature canonicalises an attribute name to an order-insensitive
// token signature, dropping connective words: "date of release" and
// "release date" share the signature "date release".
func tokenSignature(attr string) string {
	fields := strings.Fields(attr)
	kept := fields[:0]
	for _, f := range fields {
		switch f {
		case "of", "the", "a", "an":
		default:
			kept = append(kept, f)
		}
	}
	sort.Strings(kept)
	return strings.Join(kept, " ")
}

// DetectSynonyms finds attribute names that denote the same attribute.
// Two signals are combined:
//
//  1. equal token signatures ("release date" ~ "date of release");
//  2. different signatures but (nearly) always equal values on shared
//     entities.
//
// The returned map sends every non-canonical variant to the canonical name
// (the variant with the most supporting statements, ties to the shorter
// then lexicographically smaller name).
func DetectSynonyms(stmts []rdf.Statement, cfg Config) map[string]string {
	if cfg.MinValueAgreement <= 0 {
		cfg.MinValueAgreement = 0.8
	}
	if cfg.MinSharedEntities <= 0 {
		cfg.MinSharedEntities = 3
	}
	// Support and per-entity values per attribute name.
	support := map[string]int{}
	values := map[string]map[string]string{} // attr -> entity -> first value
	for _, s := range stmts {
		attr := extract.AttrFromIRI(s.Predicate)
		entity := extract.AttrFromIRI(s.Subject)
		support[attr]++
		ev := values[attr]
		if ev == nil {
			ev = map[string]string{}
			values[attr] = ev
		}
		if _, ok := ev[entity]; !ok {
			ev[entity] = s.Object.Value
		}
	}
	names := make([]string, 0, len(support))
	for a := range support {
		names = append(names, a)
	}
	sort.Strings(names)

	parent := map[string]string{}
	var find func(string) string
	find = func(a string) string {
		p, ok := parent[a]
		if !ok || p == a {
			parent[a] = a
			return a
		}
		r := find(p)
		parent[a] = r
		return r
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Signal 1: identical token signatures.
	bySig := map[string][]string{}
	for _, a := range names {
		sig := tokenSignature(a)
		bySig[sig] = append(bySig[sig], a)
	}
	for _, group := range bySig {
		for i := 1; i < len(group); i++ {
			union(group[0], group[i])
		}
	}
	// Signal 2: value agreement on shared entities.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := names[i], names[j]
			if find(a) == find(b) {
				continue
			}
			shared, agree := 0, 0
			va, vb := values[a], values[b]
			if len(vb) < len(va) {
				va, vb = vb, va
			}
			for e, v := range va {
				if w, ok := vb[e]; ok {
					shared++
					if v == w {
						agree++
					}
				}
			}
			if shared >= cfg.MinSharedEntities &&
				float64(agree)/float64(shared) >= cfg.MinValueAgreement {
				union(a, b)
			}
		}
	}

	// Pick canonical representatives per cluster.
	clusters := map[string][]string{}
	for _, a := range names {
		r := find(a)
		clusters[r] = append(clusters[r], a)
	}
	out := map[string]string{}
	for _, members := range clusters {
		if len(members) < 2 {
			continue
		}
		canon := members[0]
		for _, m := range members[1:] {
			if support[m] > support[canon] ||
				(support[m] == support[canon] && (len(m) < len(canon) || (len(m) == len(canon) && m < canon))) {
				canon = m
			}
		}
		for _, m := range members {
			if m != canon {
				out[m] = canon
			}
		}
	}
	return out
}

// DetectSubAttributes identifies name-level sub-attribute relations: an
// attribute whose token set strictly contains another attribute's tokens is
// its sub-attribute ("total urban population" ⊂ "population"). Each
// sub-attribute maps to its most general parent.
func DetectSubAttributes(attrs []string) map[string]string {
	tokens := make(map[string]map[string]bool, len(attrs))
	for _, a := range attrs {
		set := map[string]bool{}
		for _, t := range strings.Fields(a) {
			set[t] = true
		}
		tokens[a] = set
	}
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	out := map[string]string{}
	for _, sub := range sorted {
		var best string
		for _, parent := range sorted {
			if parent == sub || len(tokens[parent]) >= len(tokens[sub]) {
				continue
			}
			contained := true
			for t := range tokens[parent] {
				if !tokens[sub][t] {
					contained = false
					break
				}
			}
			if !contained {
				continue
			}
			// Most general parent: fewest tokens, then lexicographic.
			if best == "" || len(tokens[parent]) < len(tokens[best]) ||
				(len(tokens[parent]) == len(tokens[best]) && parent < best) {
				best = parent
			}
		}
		if best != "" {
			out[sub] = best
		}
	}
	return out
}

// CorrectMisspellings folds, within each (entity, attribute) item,
// low-support values lying within a small edit distance of a much better
// supported value. It returns rewritten statements and the fold count.
func CorrectMisspellings(stmts []rdf.Statement, cfg Config) ([]rdf.Statement, int) {
	if cfg.MisspellMaxDistance <= 0 {
		cfg.MisspellMaxDistance = 2
	}
	if cfg.MisspellSupportRatio <= 0 {
		cfg.MisspellSupportRatio = 2
	}
	// Count support per (item, value).
	type itemVal struct {
		item  string
		value string
	}
	support := map[itemVal]int{}
	itemValues := map[string]map[string]int{}
	for _, s := range stmts {
		ik := s.ItemKey()
		support[itemVal{ik, s.Object.Value}]++
		m := itemValues[ik]
		if m == nil {
			m = map[string]int{}
			itemValues[ik] = m
		}
		m[s.Object.Value]++
	}
	// Build per-item correction maps.
	corrections := map[itemVal]string{}
	for ik, vals := range itemValues {
		names := make([]string, 0, len(vals))
		for v := range vals {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, low := range names {
			// Numeric values a digit apart are genuine conflicts, not
			// typos; leave them for fusion to resolve.
			if mostlyDigits(low) {
				continue
			}
			lowN := vals[low]
			var best string
			bestN := 0
			for _, high := range names {
				highN := vals[high]
				if high == low || float64(highN) < float64(lowN)*cfg.MisspellSupportRatio {
					continue
				}
				if editDistance(low, high) > cfg.MisspellMaxDistance {
					continue
				}
				if highN > bestN || (highN == bestN && high < best) {
					best, bestN = high, highN
				}
			}
			if best != "" {
				corrections[itemVal{ik, low}] = best
			}
		}
	}
	if len(corrections) == 0 {
		return stmts, 0
	}
	out := make([]rdf.Statement, len(stmts))
	folded := 0
	for i, s := range stmts {
		if target, ok := corrections[itemVal{s.ItemKey(), s.Object.Value}]; ok {
			s.Object = rdf.Literal(target)
			folded++
		}
		out[i] = s
	}
	return out, folded
}

// Normalize applies synonym merging and misspelling correction to the
// statements, returning the rewritten statements and a report. Sub-attribute
// relations are detected and reported but values are left in place (a
// sub-attribute is a distinct, more specific attribute, not a duplicate).
func Normalize(stmts []rdf.Statement, cfg Config) ([]rdf.Statement, Report) {
	rep := Report{}
	rep.Synonyms = DetectSynonyms(stmts, cfg)
	if len(rep.Synonyms) > 0 {
		rewritten := make([]rdf.Statement, len(stmts))
		for i, s := range stmts {
			attr := extract.AttrFromIRI(s.Predicate)
			if canon, ok := rep.Synonyms[attr]; ok {
				s.Predicate = extract.AttrIRI(canon)
			}
			rewritten[i] = s
		}
		stmts = rewritten
	}
	var folded int
	stmts, folded = CorrectMisspellings(stmts, cfg)
	rep.CorrectedValues = folded

	attrSet := map[string]bool{}
	for _, s := range stmts {
		attrSet[extract.AttrFromIRI(s.Predicate)] = true
	}
	attrs := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	rep.SubAttributes = DetectSubAttributes(attrs)
	return stmts, rep
}

// mostlyDigits reports whether more than half the characters are digits.
func mostlyDigits(s string) bool {
	if s == "" {
		return false
	}
	d := 0
	for _, r := range s {
		if r >= '0' && r <= '9' {
			d++
		}
	}
	return d*2 > len(s)
}

// editDistance is the rune-level Levenshtein distance.
func editDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}
