package align

import (
	"testing"

	"akb/internal/extract"
	"akb/internal/rdf"
)

func st(entity, attr, value, source string) rdf.Statement {
	return extract.NewStatement(entity, attr, value, source, "x", "", 0.8)
}

func TestTokenSignature(t *testing.T) {
	cases := map[string]string{
		"release date":     "date release",
		"date of release":  "date release",
		"the release date": "date release",
		"director":         "director",
	}
	for in, want := range cases {
		if got := tokenSignature(in); got != want {
			t.Errorf("tokenSignature(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDetectSynonymsBySignature(t *testing.T) {
	stmts := []rdf.Statement{
		st("e1", "release date", "1942", "s1"),
		st("e2", "release date", "1950", "s1"),
		st("e1", "date of release", "1942", "s2"),
		st("e3", "director", "Jane", "s1"),
	}
	syn := DetectSynonyms(stmts, DefaultConfig())
	if syn["date of release"] != "release date" {
		t.Errorf("synonyms = %v, want date of release -> release date", syn)
	}
	if _, ok := syn["director"]; ok {
		t.Error("director wrongly merged")
	}
}

func TestDetectSynonymsByValueAgreement(t *testing.T) {
	// "runtime" and "length" share no tokens but agree on values across
	// enough entities.
	var stmts []rdf.Statement
	for i, v := range []string{"102", "95", "120", "88"} {
		e := string(rune('a' + i))
		stmts = append(stmts,
			st(e, "runtime", v, "s1"),
			st(e, "length", v, "s2"),
		)
	}
	stmts = append(stmts, st("a", "runtime", "102", "s3")) // runtime better supported
	syn := DetectSynonyms(stmts, DefaultConfig())
	if syn["length"] != "runtime" {
		t.Errorf("synonyms = %v, want length -> runtime", syn)
	}
}

func TestDetectSynonymsRespectsDisagreement(t *testing.T) {
	var stmts []rdf.Statement
	for i, v := range []string{"102", "95", "120", "88"} {
		e := string(rune('a' + i))
		stmts = append(stmts,
			st(e, "runtime", v, "s1"),
			st(e, "budget", v+"000", "s2"),
		)
	}
	syn := DetectSynonyms(stmts, DefaultConfig())
	if len(syn) != 0 {
		t.Errorf("disagreeing attributes merged: %v", syn)
	}
}

func TestDetectSubAttributes(t *testing.T) {
	attrs := []string{"population", "total population", "total urban population", "area", "director"}
	sub := DetectSubAttributes(attrs)
	if sub["total population"] != "population" {
		t.Errorf("sub = %v", sub)
	}
	if sub["total urban population"] != "population" {
		t.Errorf("deep sub should map to most general parent: %v", sub)
	}
	if _, ok := sub["population"]; ok {
		t.Error("root attribute marked as sub-attribute")
	}
	if _, ok := sub["director"]; ok {
		t.Error("unrelated attribute marked as sub-attribute")
	}
}

func TestCorrectMisspellings(t *testing.T) {
	stmts := []rdf.Statement{
		st("e", "director", "Michael Curtiz", "s1"),
		st("e", "director", "Michael Curtiz", "s2"),
		st("e", "director", "Michael Curtiz", "s3"),
		st("e", "director", "Michael Curtis", "s4"), // typo, support 1
		st("e", "director", "Woody Allen", "s5"),    // distinct, not a typo
	}
	out, folded := CorrectMisspellings(stmts, DefaultConfig())
	if folded != 1 {
		t.Fatalf("folded = %d, want 1", folded)
	}
	count := 0
	for _, s := range out {
		switch s.Object.Value {
		case "Michael Curtiz":
			count++
		case "Michael Curtis":
			t.Error("typo survived")
		}
	}
	if count != 4 {
		t.Errorf("corrected support = %d, want 4", count)
	}
}

func TestCorrectMisspellingsRequiresSupportRatio(t *testing.T) {
	stmts := []rdf.Statement{
		st("e", "director", "Jane Doe", "s1"),
		st("e", "director", "Jane Do", "s2"),
	}
	_, folded := CorrectMisspellings(stmts, DefaultConfig())
	if folded != 0 {
		t.Error("equal-support values must not be folded")
	}
}

func TestNormalizeEndToEnd(t *testing.T) {
	stmts := []rdf.Statement{
		st("e1", "release date", "1942", "s1"),
		st("e1", "release date", "1942", "s2"),
		st("e1", "date of release", "1942", "s3"),
		st("e1", "release date", "1943", "s4"), // close but numeric variant
		st("e2", "population", "100", "s1"),
		st("e2", "total population", "100", "s2"),
	}
	out, rep := Normalize(stmts, DefaultConfig())
	if len(out) != len(stmts) {
		t.Fatalf("statement count changed: %d", len(out))
	}
	if rep.Synonyms["date of release"] != "release date" {
		t.Errorf("synonyms = %v", rep.Synonyms)
	}
	// After merging, no statement keeps the variant predicate.
	for _, s := range out {
		if extract.AttrFromIRI(s.Predicate) == "date of release" {
			t.Error("variant predicate survived normalisation")
		}
	}
	if rep.SubAttributes["total population"] != "population" {
		t.Errorf("sub-attributes = %v", rep.SubAttributes)
	}
	// Numeric near-misses are conflicts, not typos.
	for _, s := range out {
		if s.Object.Value == "1943" {
			return
		}
	}
	t.Error("numeric value 1943 was wrongly folded as a misspelling")
}

func TestMostlyDigits(t *testing.T) {
	cases := map[string]bool{
		"1942": true, "abc": false, "a1": false, "12a": true, "": false,
	}
	for in, want := range cases {
		if got := mostlyDigits(in); got != want {
			t.Errorf("mostlyDigits(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "ab", 2},
		{"kitten", "sitting", 3},
		{"Curtiz", "Curtis", 1},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Normalize is idempotent — a second pass finds nothing more to
// merge or correct.
func TestNormalizeIdempotent(t *testing.T) {
	stmts := []rdf.Statement{
		st("e1", "release date", "1942", "s1"),
		st("e1", "release date", "1942", "s2"),
		st("e1", "date of release", "1942", "s3"),
		st("e2", "director", "Michael Curtiz", "s1"),
		st("e2", "director", "Michael Curtiz", "s2"),
		st("e2", "director", "Michael Curtis", "s3"),
	}
	once, rep1 := Normalize(stmts, DefaultConfig())
	twice, rep2 := Normalize(once, DefaultConfig())
	if len(rep2.Synonyms) != 0 {
		t.Errorf("second pass found synonyms: %v", rep2.Synonyms)
	}
	if rep2.CorrectedValues != 0 {
		t.Errorf("second pass corrected %d values", rep2.CorrectedValues)
	}
	if len(once) != len(twice) {
		t.Fatal("statement count changed")
	}
	for i := range once {
		if once[i].Triple != twice[i].Triple {
			t.Errorf("statement %d changed on second pass", i)
		}
	}
	if len(rep1.Synonyms) == 0 || rep1.CorrectedValues == 0 {
		t.Error("first pass did nothing")
	}
}
