// Package webgen generates the synthetic Web the extraction pipeline runs
// against: template-driven entity websites (DOM trees for Algorithm 1) and a
// natural-language text corpus (for the lexical-pattern extractor). Both are
// derived from the ground-truth world with controlled noise, replacing the
// live websites (imdb.com etc.) and Web crawl the paper used.
package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"akb/internal/kb"
)

// Page is one generated web page about a single entity.
type Page struct {
	// URL is the page's address within its site.
	URL string
	// Entity is the described entity's name.
	Entity string
	// HTML is the page markup.
	HTML string
	// Truth records the (attribute, value) pairs rendered on the page,
	// including injected errors, for test assertions. Extractors must not
	// read it.
	Truth []PairTruth
}

// PairTruth is one rendered attribute/value pair with its correctness flag.
type PairTruth struct {
	Attr    string
	Value   string
	Correct bool
}

// Site is a generated website: a set of entity pages sharing one template
// style with per-page jitter, mirroring the paper's observation that tag
// path patterns transfer poorly even within a site.
type Site struct {
	// Host is the site's hostname, e.g. "films-7.example.com".
	Host string
	// Class is the entity class the site covers.
	Class string
	// Style names the infobox layout used by the template.
	Style string
	Pages []*Page
}

// SiteConfig controls website generation.
type SiteConfig struct {
	Seed int64
	// SitesPerClass is the number of websites generated per class.
	SitesPerClass int
	// PagesPerSite is the number of entity pages per site.
	PagesPerSite int
	// AttrsPerPage caps the attribute rows rendered per page.
	AttrsPerPage int
	// ValueErrorRate is the probability a rendered value is wrong,
	// modelling unreliable Web sources.
	ValueErrorRate float64
	// NoiseNodes is the number of irrelevant text nodes injected per page
	// (navigation, ads, related links).
	NoiseNodes int
	// JitterProb is the probability an attribute row gains an extra
	// presentational wrapper, perturbing its tag path.
	JitterProb float64
	// GeneralizeProb is the probability a hierarchical value is rendered at
	// a coarser level (the region or country instead of the city). The
	// rendered value is still true — it exercises the paper's hierarchical
	// value spaces, where flat fusion wrongly treats such values as
	// conflicting.
	GeneralizeProb float64
	// SynonymProb is the probability an attribute label is rendered under a
	// synonymous surface form ("date of release" for "release date"),
	// exercising the fusion phase's synonym identification.
	SynonymProb float64
	// TypoProb is the probability a rendered value carries a one-character
	// transposition, exercising misspelling correction.
	TypoProb float64
	// HeterogeneousSites scales each site's value-error rate by a factor
	// cycling through {0.2, 0.6, 1.0, 2.5}, so some sites are far more
	// reliable than others — the condition under which per-source
	// provenance beats extractors-as-sources fusion.
	HeterogeneousSites bool
}

// DefaultSiteConfig returns a moderate configuration for tests and examples.
func DefaultSiteConfig() SiteConfig {
	return SiteConfig{
		Seed: 1, SitesPerClass: 4, PagesPerSite: 12, AttrsPerPage: 10,
		ValueErrorRate: 0.1, NoiseNodes: 6, JitterProb: 0.25, GeneralizeProb: 0.2,
	}
}

// layoutStyles are the site template families. Each renders an attribute
// row as (label node, value node) under a distinct DOM shape, so tag-path
// patterns induced on one site do not transfer to another.
var layoutStyles = []string{"table", "dl", "ul", "divgrid"}

// GenerateSites builds SitesPerClass websites for every class in the world.
func GenerateSites(w *kb.World, cfg SiteConfig) []*Site {
	if cfg.SitesPerClass <= 0 {
		cfg.SitesPerClass = 4
	}
	if cfg.PagesPerSite <= 0 {
		cfg.PagesPerSite = 12
	}
	if cfg.AttrsPerPage <= 0 {
		cfg.AttrsPerPage = 10
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	var sites []*Site
	for _, class := range w.Ontology.ClassNames() {
		for si := 0; si < cfg.SitesPerClass; si++ {
			style := layoutStyles[si%len(layoutStyles)]
			site := &Site{
				Host:  fmt.Sprintf("%s-%d.example.com", strings.ToLower(class), si),
				Class: class,
				Style: style,
			}
			siteCfg := cfg
			if cfg.HeterogeneousSites {
				factors := []float64{0.2, 0.6, 1.0, 2.5}
				rate := cfg.ValueErrorRate * factors[si%len(factors)]
				if rate > 0.9 {
					rate = 0.9
				}
				siteCfg.ValueErrorRate = rate
			}
			entities := w.EntitiesOf(class)
			for pi := 0; pi < cfg.PagesPerSite && pi < len(entities); pi++ {
				// Different sites start at different entities so coverage
				// overlaps only partially (needed for fusion conflicts).
				e := entities[(pi+si*cfg.PagesPerSite/2)%len(entities)]
				site.Pages = append(site.Pages, renderPage(w, e, style, siteCfg, r))
			}
			sites = append(sites, site)
		}
	}
	return sites
}

func renderPage(w *kb.World, e *kb.Entity, style string, cfg SiteConfig, r *rand.Rand) *Page {
	attrs := pageAttrs(e, cfg.AttrsPerPage, r)
	var rows []PairTruth
	for _, attr := range attrs {
		val := e.Value(attr)
		correct := true
		if r.Float64() < cfg.ValueErrorRate {
			val = wrongValue(w, e, attr, r)
			correct = false
		} else {
			val = maybeGeneralize(w, val, cfg.GeneralizeProb, r)
		}
		if cfg.TypoProb > 0 && r.Float64() < cfg.TypoProb {
			if typoed := typoValue(val, r); typoed != val {
				val = typoed
				correct = false
			}
		}
		surface := attr
		if cfg.SynonymProb > 0 && r.Float64() < cfg.SynonymProb {
			surface = SynonymName(attr)
		}
		rows = append(rows, PairTruth{Attr: surface, Value: val, Correct: correct})
	}

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>")
	b.WriteString(esc(e.Name))
	b.WriteString("</title></head>\n<body>\n")
	b.WriteString(`<div id="nav"><a href="/">Home</a> <a href="/about">About</a></div>` + "\n")
	b.WriteString(`<h1 class="entity-name">` + esc(e.Name) + "</h1>\n")
	renderInfobox(&b, style, rows, cfg.JitterProb, r)
	for i := 0; i < cfg.NoiseNodes; i++ {
		b.WriteString(noiseBlock(r))
	}
	b.WriteString("</body></html>\n")

	return &Page{
		URL:    "/" + strings.ReplaceAll(strings.ToLower(e.Name), " ", "-"),
		Entity: e.Name,
		HTML:   b.String(),
		Truth:  rows,
	}
}

// pageAttrs samples up to n attributes of the entity, deterministically per
// call sequence, always starting from its most common attributes.
func pageAttrs(e *kb.Entity, n int, r *rand.Rand) []string {
	all := make([]string, 0, len(e.Values))
	for a := range e.Values {
		all = append(all, a)
	}
	// Sort for determinism, then shuffle with the shared rng.
	sortStrings(all)
	r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// maybeGeneralize replaces a hierarchical value with one of its true
// generalisations with the given probability.
func maybeGeneralize(w *kb.World, val string, prob float64, r *rand.Rand) string {
	if prob <= 0 || r.Float64() >= prob {
		return val
	}
	ancs := w.Hier.Ancestors(val)
	if len(ancs) == 0 {
		return val
	}
	return ancs[r.Intn(len(ancs))]
}

func wrongValue(w *kb.World, e *kb.Entity, attr string, r *rand.Rand) string {
	// Plausible confusion: another entity's value for the same attribute,
	// falling back to a corrupted string.
	others := w.EntitiesOf(e.Class)
	for tries := 0; tries < 8; tries++ {
		o := others[r.Intn(len(others))]
		if o != e && o.Value(attr) != "" && o.Value(attr) != e.Value(attr) {
			return o.Value(attr)
		}
	}
	return e.Value(attr) + " Jr"
}

// SynonymName renders a synonymous surface form for a multi-word attribute
// name by reversing it around "of": "release date" -> "date of release".
// Single-word names have no variant and are returned unchanged.
func SynonymName(attr string) string {
	words := strings.Fields(attr)
	if len(words) < 2 {
		return attr
	}
	last := words[len(words)-1]
	rest := strings.Join(words[:len(words)-1], " ")
	return last + " of " + rest
}

// typoValue introduces a single adjacent-character transposition into
// non-numeric values of reasonable length.
func typoValue(v string, r *rand.Rand) string {
	if len(v) < 5 {
		return v
	}
	digits := 0
	for _, c := range v {
		if c >= '0' && c <= '9' {
			digits++
		}
	}
	if digits*2 > len(v) {
		return v
	}
	b := []byte(v)
	// Swap two adjacent letters somewhere inside the word.
	for tries := 0; tries < 8; tries++ {
		i := 1 + r.Intn(len(b)-2)
		if b[i] != ' ' && b[i+1] != ' ' && b[i] != b[i+1] {
			b[i], b[i+1] = b[i+1], b[i]
			return string(b)
		}
	}
	return v
}

// labelText renders an attribute's on-page label: Title Case plus a colon,
// as sites commonly style infobox labels.
func labelText(attr string) string {
	words := strings.Fields(attr)
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ") + ":"
}

func renderInfobox(b *strings.Builder, style string, rows []PairTruth, jitter float64, r *rand.Rand) {
	wrapVal := func(v string) string {
		v = esc(v)
		if r.Float64() < jitter {
			return "<b>" + v + "</b>"
		}
		return v
	}
	switch style {
	case "table":
		b.WriteString(`<table class="infobox">` + "\n")
		for _, row := range rows {
			b.WriteString("<tr><th>" + esc(labelText(row.Attr)) + "</th><td>" + wrapVal(row.Value) + "</td></tr>\n")
		}
		b.WriteString("</table>\n")
	case "dl":
		b.WriteString(`<dl class="facts">` + "\n")
		for _, row := range rows {
			b.WriteString("<dt>" + esc(labelText(row.Attr)) + "</dt><dd>" + wrapVal(row.Value) + "</dd>\n")
		}
		b.WriteString("</dl>\n")
	case "ul":
		b.WriteString(`<ul class="props">` + "\n")
		for _, row := range rows {
			b.WriteString(`<li><span class="k">` + esc(labelText(row.Attr)) + `</span> <span class="v">` + wrapVal(row.Value) + "</span></li>\n")
		}
		b.WriteString("</ul>\n")
	default: // divgrid
		b.WriteString(`<div class="grid">` + "\n")
		for _, row := range rows {
			b.WriteString(`<div class="row"><div class="key">` + esc(labelText(row.Attr)) + `</div><div class="val">` + wrapVal(row.Value) + "</div></div>\n")
		}
		b.WriteString("</div>\n")
	}
}

var noiseTexts = []string{
	"Advertisement", "Sign up for our newsletter", "Related articles",
	"Trending now", "Share this page", "Copyright 2015 Example Media",
	"Sponsored content", "Popular this week", "Cookie policy",
}

func noiseBlock(r *rand.Rand) string {
	t := noiseTexts[r.Intn(len(noiseTexts))]
	switch r.Intn(3) {
	case 0:
		return `<div class="ad">` + esc(t) + "</div>\n"
	case 1:
		return "<p>" + esc(t) + "</p>\n"
	default:
		return `<aside><span>` + esc(t) + "</span></aside>\n"
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
