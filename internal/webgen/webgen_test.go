package webgen

import (
	"strings"
	"testing"

	"akb/internal/htmldom"
	"akb/internal/kb"
)

func testWorld() *kb.World {
	return kb.NewWorld(kb.WorldConfig{Seed: 4, EntitiesPerClass: 20, AttrsPerEntity: 14})
}

func TestGenerateSitesShape(t *testing.T) {
	w := testWorld()
	cfg := SiteConfig{Seed: 4, SitesPerClass: 3, PagesPerSite: 5, AttrsPerPage: 6, NoiseNodes: 3}
	sites := GenerateSites(w, cfg)
	if len(sites) != 5*3 {
		t.Fatalf("got %d sites, want 15", len(sites))
	}
	hosts := map[string]bool{}
	for _, s := range sites {
		if hosts[s.Host] {
			t.Errorf("duplicate host %q", s.Host)
		}
		hosts[s.Host] = true
		if len(s.Pages) != 5 {
			t.Errorf("%s: %d pages, want 5", s.Host, len(s.Pages))
		}
		for _, p := range s.Pages {
			if p.Entity == "" || p.HTML == "" || p.URL == "" {
				t.Errorf("%s: incomplete page %+v", s.Host, p)
			}
			if len(p.Truth) == 0 {
				t.Errorf("%s/%s: no rendered pairs", s.Host, p.URL)
			}
		}
	}
}

func TestGeneratedPagesParse(t *testing.T) {
	w := testWorld()
	sites := GenerateSites(w, DefaultSiteConfig())
	for _, s := range sites[:4] {
		for _, p := range s.Pages {
			doc := htmldom.Parse(p.HTML)
			h1 := doc.Find("h1")
			if h1 == nil {
				t.Fatalf("%s%s: no h1", s.Host, p.URL)
			}
			if got := h1.InnerText(); got != p.Entity {
				t.Errorf("%s%s: h1 = %q, want %q", s.Host, p.URL, got, p.Entity)
			}
			// Every rendered pair's label and value must appear as text.
			text := doc.InnerText()
			for _, pair := range p.Truth {
				if !strings.Contains(text, pair.Value) {
					t.Errorf("%s%s: value %q not on page", s.Host, p.URL, pair.Value)
				}
			}
		}
	}
}

func TestSiteStylesDiffer(t *testing.T) {
	w := testWorld()
	cfg := SiteConfig{Seed: 4, SitesPerClass: 4, PagesPerSite: 2, AttrsPerPage: 4}
	sites := GenerateSites(w, cfg)
	styles := map[string]bool{}
	for _, s := range sites {
		if s.Class == "Film" {
			styles[s.Style] = true
		}
	}
	if len(styles) != 4 {
		t.Fatalf("Film sites use %d styles, want 4: %v", len(styles), styles)
	}
	// Structural check: a table site has <th>, a dl site has <dt>.
	for _, s := range sites {
		doc := htmldom.Parse(s.Pages[0].HTML)
		switch s.Style {
		case "table":
			if doc.Find("th") == nil {
				t.Errorf("%s: table style lacks th", s.Host)
			}
		case "dl":
			if doc.Find("dt") == nil {
				t.Errorf("%s: dl style lacks dt", s.Host)
			}
		case "ul":
			if doc.Find("li") == nil {
				t.Errorf("%s: ul style lacks li", s.Host)
			}
		case "divgrid":
			if len(doc.FindByAttr("class", "row")) == 0 {
				t.Errorf("%s: divgrid style lacks rows", s.Host)
			}
		}
	}
}

func TestValueErrorRateRoughlyHolds(t *testing.T) {
	w := testWorld()
	cfg := SiteConfig{Seed: 9, SitesPerClass: 4, PagesPerSite: 15, AttrsPerPage: 10, ValueErrorRate: 0.2}
	sites := GenerateSites(w, cfg)
	total, wrong := 0, 0
	for _, s := range sites {
		for _, p := range s.Pages {
			for _, pair := range p.Truth {
				total++
				if !pair.Correct {
					wrong++
				}
			}
		}
	}
	rate := float64(wrong) / float64(total)
	if rate < 0.12 || rate > 0.28 {
		t.Errorf("error rate = %.3f over %d pairs, want ~0.2", rate, total)
	}
}

func TestWrongValuesAreActuallyWrong(t *testing.T) {
	w := testWorld()
	sites := GenerateSites(w, SiteConfig{Seed: 7, SitesPerClass: 2, PagesPerSite: 10, AttrsPerPage: 8, ValueErrorRate: 0.5})
	checked := 0
	for _, s := range sites {
		for _, p := range s.Pages {
			e, ok := w.Entity(p.Entity)
			if !ok {
				t.Fatalf("unknown entity %q", p.Entity)
			}
			for _, pair := range p.Truth {
				if pair.Correct {
					if !w.IsTrue(e, pair.Attr, pair.Value) {
						t.Errorf("pair marked correct but false: %s/%s = %q", p.Entity, pair.Attr, pair.Value)
					}
				} else {
					checked++
					if pair.Value == e.Value(pair.Attr) {
						t.Errorf("pair marked wrong but matches truth: %s/%s = %q", p.Entity, pair.Attr, pair.Value)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no wrong pairs generated at 0.5 error rate")
	}
}

func TestGenerateSitesDeterministic(t *testing.T) {
	cfg := DefaultSiteConfig()
	a := GenerateSites(testWorld(), cfg)
	b := GenerateSites(testWorld(), cfg)
	if len(a) != len(b) {
		t.Fatal("site counts differ")
	}
	for i := range a {
		if a[i].Host != b[i].Host || len(a[i].Pages) != len(b[i].Pages) {
			t.Fatalf("site %d differs", i)
		}
		for j := range a[i].Pages {
			if a[i].Pages[j].HTML != b[i].Pages[j].HTML {
				t.Fatalf("page %d/%d differs", i, j)
			}
		}
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	w := testWorld()
	cfg := TextConfig{Seed: 4, DocsPerClass: 3, FactsPerDoc: 5, ValueErrorRate: 0.1, DistractorShare: 0.5}
	docs := GenerateCorpus(w, cfg)
	if len(docs) != 5*3 {
		t.Fatalf("got %d docs, want 15", len(docs))
	}
	for _, d := range docs {
		if d.Text == "" || d.ID == "" || d.Source == "" {
			t.Errorf("incomplete doc %+v", d)
		}
		if len(d.Truth) == 0 {
			t.Errorf("%s: no facts", d.ID)
		}
		for _, f := range d.Truth {
			if !strings.Contains(d.Text, f.Value) {
				t.Errorf("%s: value %q not in text", d.ID, f.Value)
			}
			if !strings.Contains(d.Text, f.Entity) {
				t.Errorf("%s: entity %q not in text", d.ID, f.Entity)
			}
		}
	}
}

func TestCorpusFactSentencesMatchPatterns(t *testing.T) {
	w := testWorld()
	docs := GenerateCorpus(w, TextConfig{Seed: 8, DocsPerClass: 2, FactsPerDoc: 6})
	for _, d := range docs {
		for _, f := range d.Truth {
			found := false
			for _, pat := range sentencePatterns {
				if strings.Contains(d.Text, pat(f.Entity, f.Attr, f.Value)) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: fact %v not rendered by any pattern", d.ID, f)
			}
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := DefaultTextConfig()
	a := GenerateCorpus(testWorld(), cfg)
	b := GenerateCorpus(testWorld(), cfg)
	if len(a) != len(b) {
		t.Fatal("doc counts differ")
	}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("doc %d differs", i)
		}
	}
}

func TestLabelText(t *testing.T) {
	if got := labelText("release date"); got != "Release Date:" {
		t.Errorf("labelText = %q", got)
	}
	if got := labelText("gdp"); got != "Gdp:" {
		t.Errorf("labelText = %q", got)
	}
}
