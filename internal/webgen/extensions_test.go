package webgen

import (
	"math/rand"
	"strings"
	"testing"

	"akb/internal/kb"
)

func TestSynonymName(t *testing.T) {
	cases := map[string]string{
		"release date":  "date of release",
		"head of state": "state of head of",
		"gdp":           "gdp", // single word: unchanged
		"total area":    "area of total",
	}
	for in, want := range cases {
		if got := SynonymName(in); got != want {
			t.Errorf("SynonymName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSynonymLabelsRendered(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 4, EntitiesPerClass: 15, AttrsPerEntity: 12})
	sites := GenerateSites(w, SiteConfig{
		Seed: 4, SitesPerClass: 2, PagesPerSite: 10, AttrsPerPage: 8, SynonymProb: 1,
	})
	// With probability 1, every multi-word attribute renders as a variant.
	variants := 0
	for _, s := range sites {
		for _, p := range s.Pages {
			for _, pair := range p.Truth {
				if strings.Contains(pair.Attr, " of ") {
					variants++
				}
			}
		}
	}
	if variants == 0 {
		t.Fatal("no synonym labels rendered at SynonymProb=1")
	}
}

func TestTypoValue(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 4, EntitiesPerClass: 15, AttrsPerEntity: 12})
	sites := GenerateSites(w, SiteConfig{
		Seed: 9, SitesPerClass: 2, PagesPerSite: 10, AttrsPerPage: 8, TypoProb: 0.5,
	})
	typos := 0
	for _, s := range sites {
		for _, p := range s.Pages {
			e, _ := w.Entity(p.Entity)
			for _, pair := range p.Truth {
				if !pair.Correct && !w.IsTrue(e, pair.Attr, pair.Value) {
					typos++
				}
			}
		}
	}
	if typos == 0 {
		t.Fatal("no typo values at TypoProb=0.5")
	}
}

func TestTypoValueGuards(t *testing.T) {
	// Short and numeric values are never typo'd (typoValue is exercised
	// through the generator; here we call it via a deterministic wrapper).
	w := kb.NewWorld(kb.WorldConfig{Seed: 4, EntitiesPerClass: 5, AttrsPerEntity: 8})
	_ = w
	// Direct checks on the helper.
	r := newTestRand()
	if got := typoValue("abcd", r); got != "abcd" {
		t.Errorf("short value typo'd: %q", got)
	}
	if got := typoValue("1234567", r); got != "1234567" {
		t.Errorf("numeric value typo'd: %q", got)
	}
	long := "Michael Curtiz"
	changed := false
	for i := 0; i < 16; i++ {
		if typoValue(long, r) != long {
			changed = true
		}
	}
	if !changed {
		t.Error("long text value never typo'd")
	}
}

func TestCorpusTemporalFacts(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 4, EntitiesPerClass: 15, AttrsPerEntity: 12})
	docs := GenerateCorpus(w, TextConfig{
		Seed: 4, DocsPerClass: 5, FactsPerDoc: 3, TemporalFacts: 4,
	})
	temporal := 0
	for _, d := range docs {
		temporal += len(d.TemporalTruthRows)
		for _, tt := range d.TemporalTruthRows {
			if tt.From > tt.To {
				t.Errorf("reversed span %+v", tt)
			}
			if !strings.Contains(d.Text, tt.Value) {
				t.Errorf("temporal value %q not in text", tt.Value)
			}
			e, ok := w.Entity(tt.Entity)
			if !ok {
				t.Fatalf("unknown entity %q", tt.Entity)
			}
			if tt.Correct && e.ValueAt(tt.Attr, tt.From) != tt.Value {
				t.Errorf("correct temporal fact disagrees with timeline: %+v", tt)
			}
		}
	}
	// Only classes with temporal attributes produce temporal sentences.
	if temporal == 0 {
		t.Fatal("no temporal sentences generated")
	}
}

func TestGenerateListPagesShape(t *testing.T) {
	w := kb.NewWorld(kb.WorldConfig{Seed: 4, EntitiesPerClass: 12, AttrsPerEntity: 10})
	pages := GenerateListPages(w, 2, ListConfig{PagesPerSite: 3, RowsPerPage: 6, Columns: 3, ValueErrorRate: 0.2})
	if len(pages) != 10 { // 5 classes x 2 sites
		t.Fatalf("hosts = %d, want 10", len(pages))
	}
	for host, ps := range pages {
		if len(ps) != 3 {
			t.Errorf("%s: %d pages, want 3", host, len(ps))
		}
		for _, p := range ps {
			if len(p.Attrs) != 3 {
				t.Errorf("%s%s: %d columns", host, p.URL, len(p.Attrs))
			}
			if len(p.Rows) != 6 {
				t.Errorf("%s%s: %d rows", host, p.URL, len(p.Rows))
			}
			if !strings.Contains(p.HTML, `class="listing"`) {
				t.Errorf("%s%s: no listing table", host, p.URL)
			}
		}
	}
	if dc := DefaultListConfig(); dc.RowsPerPage <= 0 || dc.Columns <= 0 {
		t.Error("bad default list config")
	}
}

// newTestRand gives tests a deterministic rng without importing math/rand
// at every call site.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }
