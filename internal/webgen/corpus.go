package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"akb/internal/kb"
)

// Document is one generated Web-text document.
type Document struct {
	// ID identifies the document within the corpus.
	ID string
	// Source is the synthetic hostname the document "came from".
	Source string
	// Class is the dominant entity class of the document.
	Class string
	// Text is the document body: a sequence of sentences.
	Text string
	// Truth records the factual (entity, attribute, value) sentences
	// rendered, for test assertions.
	Truth []FactTruth
	// TemporalTruthRows records rendered time-scoped sentences.
	TemporalTruthRows []TemporalTruth
}

// FactTruth records one rendered factual sentence.
type FactTruth struct {
	Entity  string
	Attr    string
	Value   string
	Correct bool
}

// TemporalTruth records one rendered time-scoped sentence.
type TemporalTruth struct {
	Entity   string
	Attr     string
	Value    string
	From, To int
	Correct  bool
}

// TextConfig controls text-corpus generation.
type TextConfig struct {
	Seed int64
	// DocsPerClass is the number of documents per class.
	DocsPerClass int
	// FactsPerDoc is the number of factual sentences per document.
	FactsPerDoc int
	// ValueErrorRate is the probability a factual sentence states a wrong
	// value.
	ValueErrorRate float64
	// DistractorShare is the ratio of non-factual filler sentences to
	// factual ones.
	DistractorShare float64
	// GeneralizeProb is the probability a hierarchical value is stated at a
	// coarser level (see webgen.SiteConfig.GeneralizeProb).
	GeneralizeProb float64
	// TemporalFacts, when positive, adds that many time-scoped sentences
	// per document about temporal attributes ("X was the head of state of
	// Y from 1996 to 2003."), feeding the temporal extractor.
	TemporalFacts int
}

// DefaultTextConfig returns a moderate corpus configuration.
func DefaultTextConfig() TextConfig {
	return TextConfig{Seed: 1, DocsPerClass: 10, FactsPerDoc: 12, ValueErrorRate: 0.12, DistractorShare: 0.8, GeneralizeProb: 0.2}
}

// sentencePatterns are the regular lexical patterns factual sentences
// instantiate; the text extractor learns these surface shapes from seed
// attributes and applies them to find new ones (paper §3.1).
var sentencePatterns = []func(e, a, v string) string{
	func(e, a, v string) string { return "The " + a + " of " + e + " is " + v + "." },
	func(e, a, v string) string { return e + "'s " + a + " is " + v + "." },
	func(e, a, v string) string { return v + " is the " + a + " of " + e + "." },
	func(e, a, v string) string { return e + " has a " + a + " of " + v + "." },
}

var distractors = []string{
	"Critics were divided at the time.",
	"More details can be found in the archive.",
	"The announcement drew wide attention.",
	"Historians continue to debate this period.",
	"Visitors often remark on the atmosphere.",
	"The records from that era are incomplete.",
	"Local newspapers covered the story extensively.",
	"Many consider it a defining moment.",
}

// GenerateCorpus builds a Web-text corpus over the world's classes.
func GenerateCorpus(w *kb.World, cfg TextConfig) []*Document {
	if cfg.DocsPerClass <= 0 {
		cfg.DocsPerClass = 10
	}
	if cfg.FactsPerDoc <= 0 {
		cfg.FactsPerDoc = 12
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	var docs []*Document
	for _, class := range w.Ontology.ClassNames() {
		entities := w.EntitiesOf(class)
		if len(entities) == 0 {
			continue
		}
		for d := 0; d < cfg.DocsPerClass; d++ {
			doc := &Document{
				ID:     fmt.Sprintf("%s-doc-%d", strings.ToLower(class), d),
				Source: fmt.Sprintf("%s-news-%d.example.org", strings.ToLower(class), d%3),
				Class:  class,
			}
			var sentences []string
			for f := 0; f < cfg.FactsPerDoc; f++ {
				e := entities[r.Intn(len(entities))]
				attr := randomAttr(e, r)
				if attr == "" {
					continue
				}
				val := e.Value(attr)
				correct := true
				if r.Float64() < cfg.ValueErrorRate {
					val = wrongValue(w, e, attr, r)
					correct = false
				} else {
					val = maybeGeneralize(w, val, cfg.GeneralizeProb, r)
				}
				pat := sentencePatterns[r.Intn(len(sentencePatterns))]
				sentences = append(sentences, pat(e.Name, attr, val))
				doc.Truth = append(doc.Truth, FactTruth{Entity: e.Name, Attr: attr, Value: val, Correct: correct})
				// Interleave distractor sentences.
				if r.Float64() < cfg.DistractorShare {
					sentences = append(sentences, distractors[r.Intn(len(distractors))])
				}
			}
			for f := 0; f < cfg.TemporalFacts; f++ {
				e := entities[r.Intn(len(entities))]
				attr, spans := randomTimelineAttr(e, r)
				if attr == "" {
					continue
				}
				sp := spans[r.Intn(len(spans))]
				val := sp.Value
				correct := true
				if r.Float64() < cfg.ValueErrorRate {
					val = kb.RandomPersonName(r)
					correct = false
				}
				var sent string
				if sp.To >= 2015 {
					sent = fmt.Sprintf("%s has been the %s of %s since %d.", val, attr, e.Name, sp.From)
				} else {
					sent = fmt.Sprintf("%s was the %s of %s from %d to %d.", val, attr, e.Name, sp.From, sp.To)
				}
				sentences = append(sentences, sent)
				doc.TemporalTruthRows = append(doc.TemporalTruthRows, TemporalTruth{
					Entity: e.Name, Attr: attr, Value: val, From: sp.From, To: sp.To, Correct: correct,
				})
			}
			doc.Text = strings.Join(sentences, " ")
			docs = append(docs, doc)
		}
	}
	return docs
}

// randomTimelineAttr picks one of the entity's temporal attributes.
func randomTimelineAttr(e *kb.Entity, r *rand.Rand) (string, []kb.Span) {
	keys := make([]string, 0, len(e.Timelines))
	for a := range e.Timelines {
		keys = append(keys, a)
	}
	if len(keys) == 0 {
		return "", nil
	}
	sortStrings(keys)
	a := keys[r.Intn(len(keys))]
	return a, e.Timelines[a]
}

func randomAttr(e *kb.Entity, r *rand.Rand) string {
	keys := make([]string, 0, len(e.Values))
	for a := range e.Values {
		keys = append(keys, a)
	}
	if len(keys) == 0 {
		return ""
	}
	sortStrings(keys)
	return keys[r.Intn(len(keys))]
}
