package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"akb/internal/kb"
)

// ListRow records one entity row rendered on a list page.
type ListRow struct {
	Entity string
	Pairs  []PairTruth
}

// ListPage is a multi-record page: a table of entities sharing the same
// attribute columns, the "list page" setting of the record-mining
// literature the paper surveys (Liu et al., Bing et al.).
type ListPage struct {
	URL string
	// Attrs are the column attributes (after the leading name column).
	Attrs []string
	HTML  string
	Rows  []ListRow
}

// ListConfig controls list-page generation.
type ListConfig struct {
	// PagesPerSite is the number of list pages per site.
	PagesPerSite int
	// RowsPerPage is the number of entity rows per list page.
	RowsPerPage int
	// Columns is the number of attribute columns (besides the name).
	Columns int
	// ValueErrorRate corrupts cell values.
	ValueErrorRate float64
}

// DefaultListConfig returns a moderate configuration.
func DefaultListConfig() ListConfig {
	return ListConfig{PagesPerSite: 2, RowsPerPage: 8, Columns: 4, ValueErrorRate: 0.1}
}

// GenerateListPages builds list pages for every class, one batch per
// (class, site index). Column attributes are drawn from the class's curated
// core so most listed entities have values.
func GenerateListPages(w *kb.World, sitesPerClass int, cfg ListConfig) map[string][]*ListPage {
	if cfg.PagesPerSite <= 0 {
		cfg.PagesPerSite = 2
	}
	if cfg.RowsPerPage <= 0 {
		cfg.RowsPerPage = 8
	}
	if cfg.Columns <= 0 {
		cfg.Columns = 4
	}
	r := rand.New(rand.NewSource(77))
	out := map[string][]*ListPage{}
	for _, class := range w.Ontology.ClassNames() {
		entities := w.EntitiesOf(class)
		attrs := w.Ontology.Class(class).AttributeNames()
		if cfg.Columns < len(attrs) {
			attrs = attrs[:cfg.Columns]
		}
		for si := 0; si < sitesPerClass; si++ {
			host := fmt.Sprintf("%s-%d.example.com", strings.ToLower(class), si)
			for pi := 0; pi < cfg.PagesPerSite; pi++ {
				page := renderListPage(w, entities, attrs, si, pi, cfg, r)
				out[host] = append(out[host], page)
			}
		}
	}
	return out
}

func renderListPage(w *kb.World, entities []*kb.Entity, attrs []string, si, pi int, cfg ListConfig, r *rand.Rand) *ListPage {
	page := &ListPage{
		URL:   fmt.Sprintf("/list-%d", pi),
		Attrs: append([]string(nil), attrs...),
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>Listing</title></head>\n<body>\n")
	b.WriteString("<h2>Top entries</h2>\n")
	b.WriteString(`<table class="listing">` + "\n<tr><th>Name</th>")
	for _, a := range attrs {
		b.WriteString("<th>" + esc(labelText(a)) + "</th>")
	}
	b.WriteString("</tr>\n")
	start := (si*cfg.PagesPerSite + pi) * cfg.RowsPerPage / 2
	for i := 0; i < cfg.RowsPerPage && i < len(entities); i++ {
		e := entities[(start+i)%len(entities)]
		row := ListRow{Entity: e.Name}
		b.WriteString("<tr><td>" + esc(e.Name) + "</td>")
		for _, a := range attrs {
			val := e.Value(a)
			correct := true
			if val == "" {
				b.WriteString("<td>-</td>")
				continue
			}
			if r.Float64() < cfg.ValueErrorRate {
				val = wrongValue(w, e, a, r)
				correct = false
			}
			b.WriteString("<td>" + esc(val) + "</td>")
			row.Pairs = append(row.Pairs, PairTruth{Attr: a, Value: val, Correct: correct})
		}
		b.WriteString("</tr>\n")
		page.Rows = append(page.Rows, row)
	}
	b.WriteString("</table>\n<p>Generated listing.</p>\n</body></html>\n")
	page.HTML = b.String()
	return page
}
