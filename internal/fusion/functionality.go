package fusion

import (
	"sort"
)

// This file implements the paper's observation that "very few works have
// considered the functionality degree of attributes": the degree to which
// an attribute admits a single true value per entity. The Adaptive method
// estimates each predicate's functionality from the claims themselves and
// routes its items to a single-truth or a multi-truth fuser accordingly —
// a film has one director (functional) but several producers
// (non-functional), and fusing both through the same truth model wastes
// either precision or recall.

// Functionality is a per-predicate functionality estimate in (0, 1]:
// 1 means strictly functional (one true value per entity).
type Functionality map[string]float64

// EstimateFunctionality measures, for every predicate, the reciprocal of
// the average number of *corroborated* distinct values per item (values
// asserted by at least minSupport sources). Corroboration filters the
// one-off extraction errors that would otherwise make every attribute look
// non-functional.
func EstimateFunctionality(c *Claims, minSupport int) Functionality {
	if minSupport <= 0 {
		minSupport = 2
	}
	type agg struct {
		items  int
		values int
	}
	byPred := map[string]*agg{}
	for _, it := range c.Items {
		pk := it.Predicate.Key()
		a := byPred[pk]
		if a == nil {
			a = &agg{}
			byPred[pk] = a
		}
		corroborated := 0
		for _, vc := range it.Values {
			if len(vc.Sources) >= minSupport {
				corroborated++
			}
		}
		if corroborated == 0 {
			// Uncorroborated items carry no functionality signal.
			continue
		}
		a.items++
		a.values += corroborated
	}
	out := make(Functionality, len(byPred))
	for pk, a := range byPred {
		if a.items == 0 {
			out[pk] = 1
			continue
		}
		out[pk] = float64(a.items) / float64(a.values)
	}
	return out
}

// Degree returns the predicate's functionality (1 when never estimated).
func (f Functionality) Degree(predicateKey string) float64 {
	if d, ok := f[predicateKey]; ok {
		return d
	}
	return 1
}

// Adaptive routes each item to a single-truth or multi-truth fuser based on
// its predicate's estimated functionality degree.
type Adaptive struct {
	// Threshold is the functionality degree at or above which a predicate
	// is treated as functional (default 0.8).
	Threshold float64
	// MinSupport configures corroboration during estimation (default 2).
	MinSupport int
	// Single fuses functional predicates (default ACCU+conf).
	Single Method
	// Multi fuses non-functional predicates (default MULTI+conf).
	Multi Method
}

// Name implements Method.
func (a *Adaptive) Name() string { return "ADAPTIVE(func-degree)" }

// Fuse implements Method.
func (a *Adaptive) Fuse(c *Claims) *Result {
	thresh := a.Threshold
	if thresh <= 0 {
		thresh = 0.8
	}
	single := a.Single
	if single == nil {
		single = &Accu{Weighted: true}
	}
	multi := a.Multi
	if multi == nil {
		multi = &MultiTruth{Weighted: true}
	}
	fn := EstimateFunctionality(c, a.MinSupport)

	fc := &Claims{SourceNames: c.SourceNames}
	nc := &Claims{SourceNames: c.SourceNames}
	for _, it := range c.Items {
		if fn.Degree(it.Predicate.Key()) >= thresh {
			fc.Items = append(fc.Items, it)
		} else {
			nc.Items = append(nc.Items, it)
		}
	}
	res := &Result{
		Method:        a.Name(),
		Decisions:     make(map[string]*Decision, len(c.Items)),
		SourceQuality: map[string]float64{},
	}
	merge := func(r *Result) {
		for k, d := range r.Decisions {
			res.Decisions[k] = d
		}
		for s, q := range r.SourceQuality {
			// Keep the max estimate when both fusers rate a source.
			if q > res.SourceQuality[s] {
				res.SourceQuality[s] = q
			}
		}
	}
	if len(fc.Items) > 0 {
		merge(single.Fuse(fc))
	}
	if len(nc.Items) > 0 {
		merge(multi.Fuse(nc))
	}
	return res
}

// FunctionalityReport lists predicates with their estimated degree, sorted
// by degree then key, for inspection in the CLI.
type FunctionalityReport struct {
	PredicateKey string
	Degree       float64
}

// Report renders the estimate as sorted rows.
func (f Functionality) Report() []FunctionalityReport {
	out := make([]FunctionalityReport, 0, len(f))
	for pk, d := range f {
		out = append(out, FunctionalityReport{PredicateKey: pk, Degree: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree != out[j].Degree {
			return out[i].Degree > out[j].Degree
		}
		return out[i].PredicateKey < out[j].PredicateKey
	})
	return out
}
