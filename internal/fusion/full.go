package fusion

import (
	"akb/internal/hierarchy"
	"akb/internal/obs"
)

// NewFull composes the paper's complete proposed fusion method: multi-truth
// latent-truth fusion, weighted by extractor confidence scores, with
// copy-correlated sources discounted and hierarchical value spaces resolved.
// Correlations are detected from the claims themselves at fuse time.
type Full struct {
	Forest *hierarchy.Forest
	// CorrCfg configures copy detection; zero value uses defaults.
	CorrCfg CorrelationConfig
	// Workers configures map-reduce parallelism.
	Workers int
	// Obs optionally records executor telemetry into the registry; it is
	// threaded to the composed multi-truth base.
	Obs *obs.Registry
}

// Name implements Method.
func (f *Full) Name() string { return "FULL(multi+conf+corr+hier)" }

// Fuse implements Method.
func (f *Full) Fuse(c *Claims) *Result {
	corr := DetectCorrelations(c, f.CorrCfg)
	base := &MultiTruth{Weighted: true, Discount: corr, Workers: f.Workers, Obs: f.Obs}
	m := &Hierarchical{Base: base, Forest: f.Forest}
	res := m.Fuse(c)
	res.Method = f.Name()
	return res
}

// Baselines returns the three baseline methods the paper adopts from Dong
// et al. (VLDB'14).
func Baselines() []Method {
	return []Method{&Vote{}, &Accu{}, &Accu{Popularity: true}}
}

// AllMethods returns the full comparison suite for the fusion experiments:
// the three baselines, the plain multi-truth model, and the paper's
// incremental improvements up to the composed FULL method.
func AllMethods(forest *hierarchy.Forest) []Method {
	return []Method{
		&Vote{},
		&Accu{},
		&Accu{Popularity: true},
		&MultiTruth{},
		&MultiTruth{Weighted: true},
		&Hierarchical{Base: &MultiTruth{}, Forest: forest},
		&Full{Forest: forest},
	}
}
