package fusion

import (
	"fmt"
	"testing"

	"akb/internal/rdf"
)

func TestFactFinderNames(t *testing.T) {
	want := map[FactFinderKind]string{
		KindSums:        "SUMS",
		KindAverageLog:  "AVGLOG",
		KindTruthFinder: "TRUTHFINDER",
	}
	for kind, name := range want {
		ff := &FactFinder{Kind: kind}
		if ff.Name() != name {
			t.Errorf("name = %q, want %q", ff.Name(), name)
		}
		ffw := &FactFinder{Kind: kind, Weighted: true}
		if ffw.Name() != name+"+conf" {
			t.Errorf("weighted name = %q", ffw.Name())
		}
	}
}

func TestFactFindersRecoverTruth(t *testing.T) {
	srcAcc := map[string]float64{
		"good1": 0.95, "good2": 0.9, "mid": 0.7, "bad": 0.3,
	}
	stmts, truth := synthWorld(t, 13, 100, srcAcc)
	c := BuildClaims(stmts, BySource)
	for _, m := range FactFinders() {
		res := m.Fuse(c)
		acc := accuracyOf(t, res, truth)
		if acc < 0.8 {
			t.Errorf("%s accuracy = %.3f, want >= 0.8", m.Name(), acc)
		}
		// Trust estimates must rank the good source above the bad one.
		if res.SourceQuality["good1"] <= res.SourceQuality["bad"] {
			t.Errorf("%s: good1 trust %.3f <= bad trust %.3f",
				m.Name(), res.SourceQuality["good1"], res.SourceQuality["bad"])
		}
	}
}

func TestFactFinderSingleTruth(t *testing.T) {
	stmts := []rdf.Statement{
		stmt("i", "a", "s1", 0.9),
		stmt("i", "b", "s2", 0.9),
		stmt("i", "b", "s3", 0.9),
	}
	c := BuildClaims(stmts, BySource)
	for _, m := range FactFinders() {
		res := m.Fuse(c)
		d := res.Decisions[c.Items[0].Key]
		if len(d.Truths) != 1 {
			t.Errorf("%s: %d truths, want 1", m.Name(), len(d.Truths))
		}
		if d.Truths[0] != rdf.Literal("b") {
			t.Errorf("%s picked %v, want b", m.Name(), d.Truths)
		}
	}
}

func TestWeightedTruthFinderUsesConfidence(t *testing.T) {
	stmts := []rdf.Statement{
		stmt("i", "low", "s1", 0.05),
		stmt("i", "low", "s2", 0.05),
		stmt("i", "high", "s3", 0.95),
	}
	c := BuildClaims(stmts, BySource)
	plain := (&FactFinder{Kind: KindTruthFinder}).Fuse(c)
	weighted := (&FactFinder{Kind: KindTruthFinder, Weighted: true}).Fuse(c)
	if plain.Decisions[c.Items[0].Key].Truths[0] != rdf.Literal("low") {
		t.Fatalf("plain TruthFinder picked %v", plain.Decisions[c.Items[0].Key].Truths)
	}
	if weighted.Decisions[c.Items[0].Key].Truths[0] != rdf.Literal("high") {
		t.Fatalf("weighted TruthFinder picked %v", weighted.Decisions[c.Items[0].Key].Truths)
	}
}

func TestEstimateFunctionality(t *testing.T) {
	var stmts []rdf.Statement
	// "director": 20 items, every item one corroborated value.
	for i := 0; i < 20; i++ {
		e := fmt.Sprintf("f%d", i)
		v := fmt.Sprintf("dir%d", i)
		stmts = append(stmts,
			rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/director"), rdf.Literal(v)), rdf.Provenance{Source: "s1"}, 0.9),
			rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/director"), rdf.Literal(v)), rdf.Provenance{Source: "s2"}, 0.9),
			// One-off noise that corroboration must ignore.
			rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/director"), rdf.Literal(v+"x")), rdf.Provenance{Source: "s3"}, 0.3),
		)
	}
	// "producer": 20 items, three corroborated values each.
	for i := 0; i < 20; i++ {
		e := fmt.Sprintf("f%d", i)
		for k := 0; k < 3; k++ {
			v := fmt.Sprintf("prod%d_%d", i, k)
			stmts = append(stmts,
				rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/producer"), rdf.Literal(v)), rdf.Provenance{Source: "s1"}, 0.9),
				rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/producer"), rdf.Literal(v)), rdf.Provenance{Source: "s2"}, 0.9),
			)
		}
	}
	c := BuildClaims(stmts, BySource)
	fn := EstimateFunctionality(c, 2)
	dirKey := rdf.AKB.IRI("attr/director").Key()
	prodKey := rdf.AKB.IRI("attr/producer").Key()
	if d := fn.Degree(dirKey); d != 1 {
		t.Errorf("director functionality = %g, want 1", d)
	}
	if d := fn.Degree(prodKey); d < 0.3 || d > 0.4 {
		t.Errorf("producer functionality = %g, want ~1/3", d)
	}
	if fn.Degree("unknown") != 1 {
		t.Error("unknown predicate should default to functional")
	}
	rep := fn.Report()
	if len(rep) != 2 || rep[0].Degree < rep[1].Degree {
		t.Errorf("report = %v", rep)
	}
}

func TestAdaptiveRoutesByFunctionality(t *testing.T) {
	var stmts []rdf.Statement
	// Functional predicate with a noisy minority: single-truth wins.
	for i := 0; i < 30; i++ {
		e := fmt.Sprintf("e%d", i)
		v := fmt.Sprintf("v%d", i)
		stmts = append(stmts,
			rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/capital"), rdf.Literal(v)), rdf.Provenance{Source: "s1"}, 0.9),
			rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/capital"), rdf.Literal(v)), rdf.Provenance{Source: "s2"}, 0.9),
			rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/capital"), rdf.Literal(v+"-wrong")), rdf.Provenance{Source: "s4"}, 0.4),
		)
	}
	// Non-functional predicate with two corroborated values per item.
	for i := 0; i < 30; i++ {
		e := fmt.Sprintf("e%d", i)
		for k := 0; k < 2; k++ {
			v := fmt.Sprintf("lang%d_%d", i, k)
			stmts = append(stmts,
				rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/language"), rdf.Literal(v)), rdf.Provenance{Source: "s1"}, 0.9),
				rdf.S(rdf.T(rdf.AKB.IRI(e), rdf.AKB.IRI("attr/language"), rdf.Literal(v)), rdf.Provenance{Source: "s3"}, 0.9),
			)
		}
	}
	c := BuildClaims(stmts, BySource)
	res := (&Adaptive{}).Fuse(c)
	if len(res.Decisions) != len(c.Items) {
		t.Fatalf("decisions = %d, want %d", len(res.Decisions), len(c.Items))
	}
	// Non-functional items must keep both corroborated values.
	langKey := rdf.T(rdf.AKB.IRI("e0"), rdf.AKB.IRI("attr/language"), rdf.Term{}).ItemKey()
	if d := res.Decisions[langKey]; len(d.Truths) != 2 {
		t.Errorf("language item truths = %v, want both values", d.Truths)
	}
	// Functional items must keep exactly one.
	capKey := rdf.T(rdf.AKB.IRI("e0"), rdf.AKB.IRI("attr/capital"), rdf.Term{}).ItemKey()
	if d := res.Decisions[capKey]; len(d.Truths) != 1 || d.Truths[0] != rdf.Literal("v0") {
		t.Errorf("capital item truths = %v, want [v0]", d.Truths)
	}
	if res.Method != "ADAPTIVE(func-degree)" {
		t.Errorf("name = %q", res.Method)
	}
}

func TestAdaptiveEmptyClaims(t *testing.T) {
	res := (&Adaptive{}).Fuse(&Claims{})
	if len(res.Decisions) != 0 {
		t.Fatal("decisions from empty claims")
	}
}
