package fusion

import (
	"math"

	"akb/internal/rdf"
)

// This file implements the classic Web-link-based fact-finding algorithms
// the paper's fourth fusion bullet builds on (Pasternack & Roth, IJCAI'11,
// "Making Better Informed Trust Decisions with Generalized Fact-finding"):
// Sums (Hubs & Authorities), AverageLog, and TruthFinder (Yin et al.).
// They serve as additional baselines in the fusion comparison; the
// generalized fact-finding idea — weighting the source→claim edges by
// extraction confidence — is available on each via the Weighted flag.

// FactFinder selects one of the classic fact-finding algorithms.
type FactFinderKind uint8

const (
	// KindSums is Hubs & Authorities: source trust = sum of its claims'
	// beliefs, claim belief = sum of its sources' trusts.
	KindSums FactFinderKind = iota
	// KindAverageLog tempers Sums with log-scaled claim counts:
	// trust = log(|claims|) * avg belief.
	KindAverageLog
	// KindTruthFinder is Yin et al.'s probabilistic model: belief is one
	// minus the product of source error probabilities.
	KindTruthFinder
)

// FactFinder implements Method with one of the classic algorithms.
type FactFinder struct {
	Kind FactFinderKind
	// Weighted applies Pasternack & Roth's generalisation: source→claim
	// edges are weighted by extraction confidence.
	Weighted bool
	// Iterations bounds the fixpoint loop (default 20).
	Iterations int
	// Dampening is TruthFinder's γ factor guarding against source
	// correlation (default 0.3).
	Dampening float64
}

// Name implements Method.
func (f *FactFinder) Name() string {
	var name string
	switch f.Kind {
	case KindSums:
		name = "SUMS"
	case KindAverageLog:
		name = "AVGLOG"
	default:
		name = "TRUTHFINDER"
	}
	if f.Weighted {
		name += "+conf"
	}
	return name
}

// Fuse implements Method.
func (f *FactFinder) Fuse(c *Claims) *Result {
	iters := f.Iterations
	if iters <= 0 {
		iters = 20
	}
	damp := f.Dampening
	if damp <= 0 {
		damp = 0.3
	}

	// Edge lists: claim id -> sources (with weight), source -> claim ids.
	type edge struct {
		source string
		w      float64
	}
	type claimRef struct {
		item  int
		value int
	}
	var claimEdges [][]edge
	var claimRefs []claimRef
	srcClaims := map[string][]int{}
	for ii, it := range c.Items {
		for vi, vc := range it.Values {
			id := len(claimEdges)
			claimRefs = append(claimRefs, claimRef{item: ii, value: vi})
			var edges []edge
			for _, sc := range vc.Sources {
				w := 1.0
				if f.Weighted {
					w = sc.Confidence
					if w <= 0 {
						w = 0.5
					}
				}
				edges = append(edges, edge{source: sc.Source, w: w})
				srcClaims[sc.Source] = append(srcClaims[sc.Source], id)
			}
			claimEdges = append(claimEdges, edges)
		}
	}

	trust := make(map[string]float64, len(c.SourceNames))
	for _, s := range c.SourceNames {
		trust[s] = 0.9
	}
	belief := make([]float64, len(claimEdges))

	for iter := 0; iter < iters; iter++ {
		// Claim beliefs from source trusts.
		maxB := 0.0
		for id, edges := range claimEdges {
			switch f.Kind {
			case KindTruthFinder:
				// σ(v) = 1 - ∏ (1 - t(s))^(γ·w)
				sum := 0.0
				for _, e := range edges {
					t := trust[e.source]
					if t > 0.999999 {
						t = 0.999999
					}
					sum += -math.Log(1-t) * e.w
				}
				belief[id] = 1 - math.Exp(-damp*sum)
			default:
				b := 0.0
				for _, e := range edges {
					b += trust[e.source] * e.w
				}
				belief[id] = b
				if b > maxB {
					maxB = b
				}
			}
		}
		if f.Kind != KindTruthFinder && maxB > 0 {
			for id := range belief {
				belief[id] /= maxB
			}
		}
		// Source trusts from claim beliefs.
		maxT := 0.0
		for _, s := range c.SourceNames {
			ids := srcClaims[s]
			if len(ids) == 0 {
				continue
			}
			sum := 0.0
			for _, id := range ids {
				sum += belief[id]
			}
			var t float64
			switch f.Kind {
			case KindSums:
				t = sum
			case KindAverageLog:
				t = math.Log(float64(len(ids))+1) * sum / float64(len(ids))
			default: // TruthFinder: trust is the average claim belief
				t = sum / float64(len(ids))
			}
			trust[s] = t
			if t > maxT {
				maxT = t
			}
		}
		if f.Kind != KindTruthFinder && maxT > 0 {
			for s := range trust {
				trust[s] /= maxT
			}
		}
	}

	res := &Result{
		Method:        f.Name(),
		Decisions:     make(map[string]*Decision, len(c.Items)),
		SourceQuality: trust,
	}
	// Per-item argmax over claim beliefs (single truth).
	for ii, it := range c.Items {
		d := &Decision{Item: it, Belief: make(map[string]float64, len(it.Values))}
		res.Decisions[it.Key] = d
		_ = ii
	}
	for id, ref := range claimRefs {
		it := c.Items[ref.item]
		d := res.Decisions[it.Key]
		d.Belief[it.Values[ref.value].Value.Key()] = belief[id]
	}
	for _, it := range c.Items {
		d := res.Decisions[it.Key]
		var best rdf.Term
		bestB := -1.0
		for _, vc := range it.Values {
			b := d.Belief[vc.Value.Key()]
			if b > bestB || (b == bestB && vc.Value.Compare(best) < 0) {
				best, bestB = vc.Value, b
			}
		}
		if bestB >= 0 {
			d.Truths = []rdf.Term{best}
		}
	}
	return res
}

// FactFinders returns the three classic algorithms plus their
// confidence-generalised variants.
func FactFinders() []Method {
	return []Method{
		&FactFinder{Kind: KindSums},
		&FactFinder{Kind: KindAverageLog},
		&FactFinder{Kind: KindTruthFinder},
		&FactFinder{Kind: KindTruthFinder, Weighted: true},
	}
}
