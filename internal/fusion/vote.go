package fusion

import (
	"akb/internal/mapreduce"
	"akb/internal/obs"
	"akb/internal/rdf"
)

// Vote is the VOTE baseline: each item's truth is the value asserted by the
// most sources; ties break towards the lexicographically smaller value so
// results are deterministic. With Weighted set, each source's vote counts
// its extractor confidence instead of 1 (the paper's "leveraging confidence
// scores" improvement applied to the simplest baseline).
type Vote struct {
	// Weighted makes votes count claim confidence instead of 1.
	Weighted bool
	// Discount optionally down-weights votes from correlated sources; nil
	// means independence is assumed.
	Discount *Correlations
	// Workers configures map-reduce parallelism (0 = GOMAXPROCS).
	Workers int
	// Obs optionally records executor telemetry (worker fanout, task
	// latency, queue wait) into the registry.
	Obs *obs.Registry
}

// Name implements Method.
func (v *Vote) Name() string {
	switch {
	case v.Weighted && v.Discount != nil:
		return "VOTE+conf+corr"
	case v.Weighted:
		return "VOTE+conf"
	case v.Discount != nil:
		return "VOTE+corr"
	default:
		return "VOTE"
	}
}

// Fuse implements Method. Items are independent, so the whole method is one
// map-reduce pass keyed by item.
func (v *Vote) Fuse(c *Claims) *Result {
	decisions := mapreduce.Run(mapreduce.Config{Workers: v.Workers, Obs: v.Obs}, c.Items,
		func(it *Item) []mapreduce.KV[*Decision] {
			return []mapreduce.KV[*Decision]{{Key: it.Key, Value: v.decide(it)}}
		},
		func(key string, ds []*Decision) []*Decision { return ds })
	res := &Result{Method: v.Name(), Decisions: make(map[string]*Decision, len(decisions))}
	for _, d := range decisions {
		res.Decisions[d.Item.Key] = d
	}
	return res
}

func (v *Vote) decide(it *Item) *Decision {
	d := &Decision{Item: it, Belief: make(map[string]float64, len(it.Values))}
	var best rdf.Term
	bestScore := -1.0
	total := 0.0
	for _, vc := range it.Values {
		score := 0.0
		for _, sc := range vc.Sources {
			w := 1.0
			if v.Weighted {
				w = sc.Confidence
				if w <= 0 {
					w = 0.5
				}
			}
			if v.Discount != nil {
				w *= v.Discount.Weight(sc.Source)
			}
			score += w
		}
		d.Belief[vc.Value.Key()] = score
		total += score
		if score > bestScore || (score == bestScore && vc.Value.Compare(best) < 0) {
			best, bestScore = vc.Value, score
		}
	}
	if total > 0 {
		for k := range d.Belief {
			d.Belief[k] /= total
		}
	}
	if bestScore >= 0 {
		d.Truths = []rdf.Term{best}
	}
	return d
}
