package fusion

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"akb/internal/hierarchy"
	"akb/internal/rdf"
)

// stmt builds a test statement.
func stmt(item, value, source string, conf float64) rdf.Statement {
	return rdf.S(
		rdf.T(rdf.AKB.IRI("e/"+item), rdf.AKB.IRI("attr/p"), rdf.Literal(value)),
		rdf.Provenance{Source: source, Extractor: "x"},
		conf,
	)
}

// synthWorld generates items with one true value each and claims from
// sources of differing accuracy. Wrong claims are drawn from a shared
// confusion pool so they disagree with truth but can agree with each other.
func synthWorld(t *testing.T, seed int64, nItems int, srcAcc map[string]float64) (stmts []rdf.Statement, truth map[string]string) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	truth = map[string]string{}
	sources := make([]string, 0, len(srcAcc))
	for s := range srcAcc {
		sources = append(sources, s)
	}
	// Deterministic iteration order.
	for i := 1; i < len(sources); i++ {
		for j := i; j > 0 && sources[j] < sources[j-1]; j-- {
			sources[j], sources[j-1] = sources[j-1], sources[j]
		}
	}
	for i := 0; i < nItems; i++ {
		item := fmt.Sprintf("item%03d", i)
		tv := fmt.Sprintf("true%03d", i)
		truth[item] = tv
		for _, s := range sources {
			v := tv
			if r.Float64() > srcAcc[s] {
				// Wrong claims concentrate on a per-item "popular wrong"
				// value, so inaccurate sources can form a wrong majority.
				pick := 0
				if r.Float64() > 0.8 {
					pick = 1 + r.Intn(2)
				}
				v = fmt.Sprintf("wrong%03d_%d", i, pick)
			}
			stmts = append(stmts, stmt(item, v, s, 0.8))
		}
	}
	return stmts, truth
}

func accuracyOf(t *testing.T, res *Result, truth map[string]string) float64 {
	t.Helper()
	correct := 0
	for item, tv := range truth {
		key := rdf.T(rdf.AKB.IRI("e/"+item), rdf.AKB.IRI("attr/p"), rdf.Literal("")).ItemKey()
		d := res.Decisions[key]
		if d == nil {
			t.Fatalf("no decision for %s", item)
		}
		if d.Accepted(rdf.Literal(tv)) {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

func TestBuildClaimsGrouping(t *testing.T) {
	stmts := []rdf.Statement{
		stmt("i1", "a", "s1", 0.9),
		stmt("i1", "a", "s2", 0.7),
		stmt("i1", "b", "s3", 0.5),
		stmt("i2", "c", "s1", 0.6),
		stmt("i1", "a", "s1", 0.4), // duplicate source: keep max confidence
	}
	c := BuildClaims(stmts, BySource)
	if len(c.Items) != 2 {
		t.Fatalf("items = %d, want 2", len(c.Items))
	}
	if c.NumClaims() != 4 {
		t.Fatalf("claims = %d, want 4", c.NumClaims())
	}
	it := c.Items[0]
	if len(it.Values) != 2 {
		t.Fatalf("i1 values = %d, want 2", len(it.Values))
	}
	va := it.Value(rdf.Literal("a"))
	if va == nil || va.SupportCount() != 2 {
		t.Fatalf("value a support wrong: %+v", va)
	}
	for _, sc := range va.Sources {
		if sc.Source == "s1" && sc.Confidence != 0.9 {
			t.Errorf("s1 confidence = %g, want max 0.9", sc.Confidence)
		}
	}
	if len(c.SourceNames) != 3 {
		t.Errorf("sources = %v", c.SourceNames)
	}
}

func TestBuildClaimsGranularity(t *testing.T) {
	stmts := []rdf.Statement{
		rdf.S(rdf.T(rdf.AKB.IRI("e/i"), rdf.AKB.IRI("attr/p"), rdf.Literal("v")),
			rdf.Provenance{Source: "site", Extractor: "domx"}, 0.5),
		rdf.S(rdf.T(rdf.AKB.IRI("e/i"), rdf.AKB.IRI("attr/p"), rdf.Literal("v")),
			rdf.Provenance{Source: "site", Extractor: "textx"}, 0.5),
	}
	if got := len(BuildClaims(stmts, BySource).SourceNames); got != 1 {
		t.Errorf("BySource = %d sources, want 1", got)
	}
	if got := len(BuildClaims(stmts, BySourceExtractor).SourceNames); got != 2 {
		t.Errorf("BySourceExtractor = %d sources, want 2", got)
	}
	if got := len(BuildClaims(stmts, ByExtractor).SourceNames); got != 2 {
		t.Errorf("ByExtractor = %d sources, want 2", got)
	}
}

func TestVoteMajority(t *testing.T) {
	stmts := []rdf.Statement{
		stmt("i", "right", "s1", 0.9),
		stmt("i", "right", "s2", 0.9),
		stmt("i", "wrong", "s3", 0.9),
	}
	c := BuildClaims(stmts, BySource)
	res := (&Vote{}).Fuse(c)
	d := res.Decisions[c.Items[0].Key]
	if len(d.Truths) != 1 || d.Truths[0] != rdf.Literal("right") {
		t.Fatalf("vote picked %v", d.Truths)
	}
	if d.Belief[rdf.Literal("right").Key()] <= d.Belief[rdf.Literal("wrong").Key()] {
		t.Error("belief ordering wrong")
	}
}

func TestVoteDeterministicTieBreak(t *testing.T) {
	stmts := []rdf.Statement{
		stmt("i", "bbb", "s1", 0.9),
		stmt("i", "aaa", "s2", 0.9),
	}
	c := BuildClaims(stmts, BySource)
	res := (&Vote{}).Fuse(c)
	d := res.Decisions[c.Items[0].Key]
	if d.Truths[0] != rdf.Literal("aaa") {
		t.Fatalf("tie break picked %v, want lexicographically smaller", d.Truths)
	}
}

func TestWeightedVoteUsesConfidence(t *testing.T) {
	stmts := []rdf.Statement{
		stmt("i", "low", "s1", 0.1),
		stmt("i", "low", "s2", 0.1),
		stmt("i", "high", "s3", 0.9),
	}
	c := BuildClaims(stmts, BySource)
	plain := (&Vote{}).Fuse(c).Decisions[c.Items[0].Key]
	weighted := (&Vote{Weighted: true}).Fuse(c).Decisions[c.Items[0].Key]
	if plain.Truths[0] != rdf.Literal("low") {
		t.Fatalf("plain vote picked %v", plain.Truths)
	}
	if weighted.Truths[0] != rdf.Literal("high") {
		t.Fatalf("weighted vote picked %v, want high-confidence value", weighted.Truths)
	}
}

func TestAccuBeatsVoteWithBadMajority(t *testing.T) {
	srcAcc := map[string]float64{
		"good1": 0.95, "good2": 0.95,
		"bad1": 0.2, "bad2": 0.2, "bad3": 0.2,
	}
	stmts, truth := synthWorld(t, 42, 120, srcAcc)
	c := BuildClaims(stmts, BySource)
	vote := accuracyOf(t, (&Vote{}).Fuse(c), truth)
	accuRes := (&Accu{}).Fuse(c)
	accu := accuracyOf(t, accuRes, truth)
	if accu <= vote {
		t.Errorf("ACCU (%.3f) should beat VOTE (%.3f) with an inaccurate majority", accu, vote)
	}
	if accu < 0.85 {
		t.Errorf("ACCU accuracy = %.3f, want >= 0.85", accu)
	}
	// Source quality estimates must rank good sources above bad.
	if accuRes.SourceQuality["good1"] <= accuRes.SourceQuality["bad1"] {
		t.Errorf("ACCU source quality: good1=%.3f <= bad1=%.3f",
			accuRes.SourceQuality["good1"], accuRes.SourceQuality["bad1"])
	}
}

func TestPopAccuRuns(t *testing.T) {
	srcAcc := map[string]float64{"a": 0.9, "b": 0.8, "c": 0.5}
	stmts, truth := synthWorld(t, 7, 80, srcAcc)
	c := BuildClaims(stmts, BySource)
	res := (&Accu{Popularity: true}).Fuse(c)
	if res.Method != "POPACCU" {
		t.Errorf("method name = %q", res.Method)
	}
	if acc := accuracyOf(t, res, truth); acc < 0.75 {
		t.Errorf("POPACCU accuracy = %.3f, want >= 0.75", acc)
	}
}

func TestMultiTruthAcceptsMultipleValues(t *testing.T) {
	// A non-functional item with two true values, each asserted by three
	// sources, plus one noise value from a single source.
	var stmts []rdf.Statement
	for _, s := range []string{"s1", "s2", "s3"} {
		stmts = append(stmts, stmt("i", "truthA", s, 0.9))
	}
	for _, s := range []string{"s4", "s5", "s6"} {
		stmts = append(stmts, stmt("i", "truthB", s, 0.9))
	}
	stmts = append(stmts, stmt("i", "noise", "s7", 0.9))
	// Background items let sources prove themselves.
	for i := 0; i < 30; i++ {
		for _, s := range []string{"s1", "s2", "s3", "s4", "s5", "s6"} {
			stmts = append(stmts, stmt(fmt.Sprintf("bg%d", i), fmt.Sprintf("v%d", i), s, 0.9))
		}
		stmts = append(stmts, stmt(fmt.Sprintf("bg%d", i), fmt.Sprintf("junk%d", i), "s7", 0.9))
	}
	c := BuildClaims(stmts, BySource)
	res := (&MultiTruth{}).Fuse(c)
	key := rdf.T(rdf.AKB.IRI("e/i"), rdf.AKB.IRI("attr/p"), rdf.Literal("")).ItemKey()
	d := res.Decisions[key]
	if !d.Accepted(rdf.Literal("truthA")) || !d.Accepted(rdf.Literal("truthB")) {
		t.Fatalf("multi-truth missed a true value: %v (beliefs %v)", d.Truths, d.Belief)
	}
	if d.Accepted(rdf.Literal("noise")) {
		t.Fatalf("multi-truth accepted noise: %v", d.Truths)
	}
	// Single-truth ACCU structurally cannot accept both.
	ad := (&Accu{}).Fuse(c).Decisions[key]
	if len(ad.Truths) != 1 {
		t.Fatalf("ACCU returned %d truths, want 1", len(ad.Truths))
	}
}

func TestHierarchicalResolvesPaperExample(t *testing.T) {
	forest := hierarchy.NewForest()
	forest.MustAddChain("Wuhan", "Hubei", "China")
	forest.MustAddChain("Beijing2", "Hebei2", "China2")
	// birth place: Wuhan x2, China x2, Beijing2 x3. Flat vote picks
	// Beijing2 (3 > 2 > 2); hierarchy-aware folding gives Wuhan 4 votes.
	var stmts []rdf.Statement
	stmts = append(stmts,
		stmt("fang", "Wuhan", "s1", 0.9),
		stmt("fang", "Wuhan", "s2", 0.9),
		stmt("fang", "China", "s3", 0.9),
		stmt("fang", "China", "s4", 0.9),
		stmt("fang", "Beijing2", "s5", 0.9),
		stmt("fang", "Beijing2", "s6", 0.9),
		stmt("fang", "Beijing2", "s7", 0.9),
	)
	c := BuildClaims(stmts, BySource)
	key := c.Items[0].Key

	flat := (&Vote{}).Fuse(c).Decisions[key]
	if flat.Truths[0] != rdf.Literal("Beijing2") {
		t.Fatalf("flat vote picked %v, expected Beijing2", flat.Truths)
	}

	h := &Hierarchical{Base: &Vote{}, Forest: forest}
	res := h.Fuse(c)
	d := res.Decisions[key]
	if !d.Accepted(rdf.Literal("Wuhan")) {
		t.Fatalf("hierarchical vote picked %v, want Wuhan", d.Truths)
	}
	// The claimed generalisation "China" is also true.
	if !d.Accepted(rdf.Literal("China")) {
		t.Fatalf("generalisation China not accepted: %v", d.Truths)
	}
	if d.Accepted(rdf.Literal("Hubei")) {
		t.Fatal("unclaimed intermediate Hubei must not be invented")
	}
	if res.Method != "VOTE+hier" {
		t.Errorf("method name = %q", res.Method)
	}
}

func TestDetectCorrelations(t *testing.T) {
	var stmts []rdf.Statement
	r := rand.New(rand.NewSource(3))
	// indep1, indep2: independent accurate sources. copyA and its two
	// copiers share identical claim sets including errors.
	for i := 0; i < 40; i++ {
		item := fmt.Sprintf("i%d", i)
		tv := fmt.Sprintf("t%d", i)
		stmts = append(stmts, stmt(item, tv, "indep1", 0.8))
		if r.Float64() < 0.8 {
			stmts = append(stmts, stmt(item, tv, "indep2", 0.8))
		} else {
			stmts = append(stmts, stmt(item, "x"+tv, "indep2", 0.8))
		}
		copied := tv
		if r.Float64() < 0.4 {
			copied = "wrong" + tv
		}
		for _, s := range []string{"copyA", "copyB", "copyC"} {
			stmts = append(stmts, stmt(item, copied, s, 0.8))
		}
	}
	c := BuildClaims(stmts, BySource)
	corr := DetectCorrelations(c, DefaultCorrelationConfig())
	clusters := corr.Clusters()
	if len(clusters) != 1 {
		t.Fatalf("clusters = %v, want exactly the copier cluster", clusters)
	}
	if len(clusters[0]) != 3 {
		t.Fatalf("copier cluster = %v, want 3 members", clusters[0])
	}
	if corr.Weight("indep1") != 1 {
		t.Errorf("independent source discounted: %g", corr.Weight("indep1"))
	}
	full := 0
	for _, s := range clusters[0] {
		if corr.Weight(s) == 1 {
			full++
		}
	}
	if full != 1 {
		t.Errorf("cluster has %d full-weight members, want 1", full)
	}
}

func TestCorrelationDiscountFixesCopiedMajority(t *testing.T) {
	// Copiers replicate a mediocre source; two good independent sources
	// disagree with the copy cluster on the items the original got wrong.
	r := rand.New(rand.NewSource(9))
	var stmts []rdf.Statement
	truth := map[string]string{}
	for i := 0; i < 60; i++ {
		item := fmt.Sprintf("i%02d", i)
		tv := fmt.Sprintf("t%02d", i)
		truth[item] = tv
		for _, s := range []string{"good1", "good2"} {
			v := tv
			if r.Float64() > 0.95 {
				v = "g-wrong" + tv
			}
			stmts = append(stmts, stmt(item, v, s, 0.8))
		}
		copied := tv
		if r.Float64() > 0.6 {
			copied = "c-wrong" + tv
		}
		for _, s := range []string{"orig", "copy1", "copy2"} {
			stmts = append(stmts, stmt(item, copied, s, 0.8))
		}
	}
	c := BuildClaims(stmts, BySource)
	plain := accuracyOf(t, (&Vote{}).Fuse(c), truth)
	corr := DetectCorrelations(c, DefaultCorrelationConfig())
	discounted := accuracyOf(t, (&Vote{Discount: corr}).Fuse(c), truth)
	if discounted <= plain {
		t.Errorf("correlation discount did not help: plain=%.3f discounted=%.3f", plain, discounted)
	}
	if discounted < 0.9 {
		t.Errorf("discounted vote accuracy = %.3f, want >= 0.9", discounted)
	}
}

func TestFullMethodComposes(t *testing.T) {
	forest := hierarchy.NewForest()
	forest.MustAddChain("cityX", "regionX", "countryX")
	srcAcc := map[string]float64{"a": 0.9, "b": 0.85, "c": 0.5}
	stmts, truth := synthWorld(t, 11, 60, srcAcc)
	// Add a hierarchical item.
	stmts = append(stmts,
		stmt("hier", "cityX", "a", 0.9),
		stmt("hier", "countryX", "b", 0.9),
	)
	c := BuildClaims(stmts, BySource)
	f := &Full{Forest: forest}
	res := f.Fuse(c)
	if res.Method != "FULL(multi+conf+corr+hier)" {
		t.Errorf("name = %q", res.Method)
	}
	if acc := accuracyOf(t, res, truth); acc < 0.8 {
		t.Errorf("FULL accuracy = %.3f", acc)
	}
	key := rdf.T(rdf.AKB.IRI("e/hier"), rdf.AKB.IRI("attr/p"), rdf.Literal("")).ItemKey()
	d := res.Decisions[key]
	if !d.Accepted(rdf.Literal("cityX")) || !d.Accepted(rdf.Literal("countryX")) {
		t.Errorf("hierarchical item decisions = %v", d.Truths)
	}
}

func TestAllMethodsInvariants(t *testing.T) {
	forest := hierarchy.NewForest()
	forest.MustAddChain("leaf", "mid", "root")
	srcAcc := map[string]float64{"a": 0.9, "b": 0.7, "c": 0.5, "d": 0.3}
	stmts, _ := synthWorld(t, 5, 40, srcAcc)
	c := BuildClaims(stmts, BySource)
	for _, m := range AllMethods(forest) {
		res := m.Fuse(c)
		if len(res.Decisions) != len(c.Items) {
			t.Errorf("%s: %d decisions for %d items", m.Name(), len(res.Decisions), len(c.Items))
		}
		for key, d := range res.Decisions {
			if len(d.Truths) == 0 {
				t.Errorf("%s: no truth for %s", m.Name(), key)
			}
			for vk, b := range d.Belief {
				if b < 0 || b > 1.0000001 {
					t.Errorf("%s: belief %g out of range for %s", m.Name(), b, vk)
				}
			}
			// Every accepted value must have been claimed.
			for _, tr := range d.Truths {
				if d.Item.Value(tr) == nil {
					// Hierarchy expansion may add claimed ancestors, which
					// exist in the original item; here items are flat so
					// everything must be claimed.
					t.Errorf("%s: accepted unclaimed value %v", m.Name(), tr)
				}
			}
		}
	}
}

func TestMethodNames(t *testing.T) {
	forest := hierarchy.NewForest()
	names := map[string]bool{}
	for _, m := range AllMethods(forest) {
		n := m.Name()
		if n == "" || names[n] {
			t.Errorf("duplicate or empty method name %q", n)
		}
		names[n] = true
	}
}

// Property: BuildClaims is deterministic and preserves every (item, value,
// source) assertion exactly once.
func TestBuildClaimsInvariantsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(n%50) + 1
		var stmts []rdf.Statement
		type key struct{ item, value, source string }
		want := map[key]bool{}
		for i := 0; i < k; i++ {
			item := fmt.Sprintf("i%d", r.Intn(8))
			value := fmt.Sprintf("v%d", r.Intn(4))
			source := fmt.Sprintf("s%d", r.Intn(5))
			stmts = append(stmts, stmt(item, value, source, 0.5+0.4*r.Float64()))
			want[key{item, value, source}] = true
		}
		a := BuildClaims(stmts, BySource)
		b := BuildClaims(stmts, BySource)
		if a.NumClaims() != len(want) || b.NumClaims() != len(want) {
			return false
		}
		got := map[key]bool{}
		for _, it := range a.Items {
			for _, vc := range it.Values {
				for _, sc := range vc.Sources {
					got[key{extractLocal(it.Subject.Value), vc.Value.Value, sc.Source}] = true
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for kk := range want {
			if !got[kk] {
				return false
			}
		}
		// Determinism of ordering.
		for i := range a.Items {
			if a.Items[i].Key != b.Items[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func extractLocal(iri string) string {
	i := strings.LastIndexByte(iri, '/')
	return strings.ReplaceAll(iri[i+1:], "_", " ")
}
