package fusion

import (
	"math"

	"akb/internal/mapreduce"
	"akb/internal/obs"
	"akb/internal/rdf"
)

// Accu implements the ACCU baseline (Dong et al., PVLDB 2009 / VLDB'14
// adaptation): iterative joint estimation of source accuracy and value
// probability under a single-truth assumption. Each value's vote count is
//
//	C(v) = Σ_{s asserts v} w_s · ln( n·A(s) / (1 − A(s)) )
//
// where n is the number of possible false values; value probabilities are
// the softmax of vote counts, and source accuracies are re-estimated as the
// average probability of the values the source claims.
//
// With Popularity set, the uniform false-value distribution 1/n is replaced
// by each value's empirical popularity, turning ACCU into POPACCU: popular
// false values are less surprising, so agreeing on a popular value is
// weaker evidence of truth.
type Accu struct {
	// Popularity switches to the POPACCU false-value model.
	Popularity bool
	// Weighted multiplies each vote by the claim's extractor confidence.
	Weighted bool
	// Discount optionally down-weights correlated sources.
	Discount *Correlations
	// Iterations bounds the EM loop (default 20).
	Iterations int
	// InitialAccuracy seeds source accuracy (default 0.8, as in the
	// literature when no gold standard is available).
	InitialAccuracy float64
	// Workers configures map-reduce parallelism.
	Workers int
	// Obs optionally records executor telemetry into the registry.
	Obs *obs.Registry
}

// Name implements Method.
func (a *Accu) Name() string {
	name := "ACCU"
	if a.Popularity {
		name = "POPACCU"
	}
	if a.Weighted {
		name += "+conf"
	}
	if a.Discount != nil {
		name += "+corr"
	}
	return name
}

const (
	minAccuracy = 0.01
	maxAccuracy = 0.99
)

// Fuse implements Method.
func (a *Accu) Fuse(c *Claims) *Result {
	iters := a.Iterations
	if iters <= 0 {
		iters = 20
	}
	init := a.InitialAccuracy
	if init <= 0 || init >= 1 {
		init = 0.8
	}
	acc := make(map[string]float64, len(c.SourceNames))
	for _, s := range c.SourceNames {
		acc[s] = init
	}

	type itemProbs struct {
		item  *Item
		probs map[string]float64 // value key -> probability
	}
	var lastE []itemProbs

	for iter := 0; iter < iters; iter++ {
		// E-step: per-item value probabilities given source accuracies.
		// Items are independent — one map-reduce pass.
		lastE = mapreduce.Run(mapreduce.Config{Workers: a.Workers, Obs: a.Obs}, c.Items,
			func(it *Item) []mapreduce.KV[itemProbs] {
				return []mapreduce.KV[itemProbs]{{Key: it.Key, Value: itemProbs{item: it, probs: a.eStep(it, acc)}}}
			},
			func(key string, vs []itemProbs) []itemProbs { return vs })

		// M-step: source accuracy = mean probability of claimed values.
		sum := make(map[string]float64, len(acc))
		cnt := make(map[string]float64, len(acc))
		for _, ip := range lastE {
			for _, vc := range ip.item.Values {
				p := ip.probs[vc.Value.Key()]
				for _, sc := range vc.Sources {
					sum[sc.Source] += p
					cnt[sc.Source]++
				}
			}
		}
		converged := true
		for s := range acc {
			next := acc[s]
			if cnt[s] > 0 {
				next = clampAcc(sum[s] / cnt[s])
			}
			if math.Abs(next-acc[s]) > 1e-6 {
				converged = false
			}
			acc[s] = next
		}
		if converged && iter > 0 {
			break
		}
	}

	res := &Result{Method: a.Name(), Decisions: make(map[string]*Decision, len(c.Items)), SourceQuality: acc}
	for _, ip := range lastE {
		d := &Decision{Item: ip.item, Belief: ip.probs}
		var best rdf.Term
		bestP := -1.0
		for _, vc := range ip.item.Values {
			p := ip.probs[vc.Value.Key()]
			if p > bestP || (p == bestP && vc.Value.Compare(best) < 0) {
				best, bestP = vc.Value, p
			}
		}
		if bestP >= 0 {
			d.Truths = []rdf.Term{best}
		}
		res.Decisions[ip.item.Key] = d
	}
	return res
}

// eStep computes value probabilities for one item.
func (a *Accu) eStep(it *Item, acc map[string]float64) map[string]float64 {
	nFalse := float64(len(it.Values) - 1)
	if nFalse < 1 {
		nFalse = 1
	}
	// Popularity of each value among the item's claims (smoothed), used by
	// POPACCU as the false-claim emission distribution.
	var totalClaims float64
	for _, vc := range it.Values {
		totalClaims += float64(len(vc.Sources))
	}
	scores := make(map[string]float64, len(it.Values))
	maxScore := math.Inf(-1)
	for _, vc := range it.Values {
		score := 0.0
		for _, sc := range vc.Sources {
			A := clampAcc(acc[sc.Source])
			var falseProb float64
			if a.Popularity {
				falseProb = (float64(len(vc.Sources)) + 1) / (totalClaims + float64(len(it.Values)))
			} else {
				falseProb = 1 / nFalse
			}
			w := 1.0
			if a.Weighted {
				w = sc.Confidence
				if w <= 0 {
					w = 0.5
				}
			}
			if a.Discount != nil {
				w *= a.Discount.Weight(sc.Source)
			}
			score += w * math.Log(A/((1-A)*falseProb))
		}
		scores[vc.Value.Key()] = score
		if score > maxScore {
			maxScore = score
		}
	}
	// Softmax with max-shift for numerical stability.
	var z float64
	for k := range scores {
		scores[k] = math.Exp(scores[k] - maxScore)
		z += scores[k]
	}
	for k := range scores {
		scores[k] /= z
	}
	return scores
}

func clampAcc(a float64) float64 {
	if a < minAccuracy {
		return minAccuracy
	}
	if a > maxAccuracy {
		return maxAccuracy
	}
	return a
}
