package fusion

import (
	"akb/internal/hierarchy"
	"akb/internal/rdf"
)

// Hierarchical wraps a base fusion method with hierarchical value-space
// reasoning — the paper's second fusion bullet. Values of one item that lie
// on a generalisation path (Wuhan ⊂ Hubei ⊂ China) are not conflicting:
//
//   - every claim on a strict generalisation also supports each claimed
//     most-specific descendant (at AncestorWeight discount, since "China"
//     is genuinely ambiguous between Chinese cities);
//   - pure-generalisation values do not compete as candidates themselves —
//     their truth is implied by whichever specific value wins;
//   - after base fusion, claimed generalisations of every accepted value
//     are accepted too (the paper's "(birth place, China) and (birth
//     place, Wuhan) can both be true").
//
// Without this, generalisation claims split the vote and a flat fuser may
// prefer an unrelated-but-better-supported wrong value.
type Hierarchical struct {
	// Base is the underlying fusion method run on the folded claims.
	Base Method
	// Forest is the value hierarchy.
	Forest *hierarchy.Forest
	// AncestorWeight discounts the confidence of ancestor claims folded
	// into a descendant candidate (default 0.7).
	AncestorWeight float64
}

// Name implements Method.
func (h *Hierarchical) Name() string { return h.Base.Name() + "+hier" }

// Fuse implements Method.
func (h *Hierarchical) Fuse(c *Claims) *Result {
	folded, expansions := h.fold(c)
	res := h.Base.Fuse(folded)
	res.Method = h.Name()

	// Expand accepted values with their claimed generalisations. Values are
	// never invented: only generalisations actually claimed by some source
	// are added.
	for key, d := range res.Decisions {
		claimedAncestors := expansions[key]
		if len(claimedAncestors) == 0 {
			continue
		}
		var extra []rdf.Term
		for _, t := range d.Truths {
			if !t.IsLiteral() {
				continue
			}
			for _, anc := range h.Forest.Ancestors(t.Value) {
				if claimedAncestors[anc] {
					at := rdf.Literal(anc)
					if !d.Accepted(at) && !contains(extra, at) {
						extra = append(extra, at)
						if d.Belief != nil {
							d.Belief[at.Key()] = d.Belief[t.Key()]
						}
					}
				}
			}
		}
		d.Truths = sortedTruths(append(d.Truths, extra...))
	}
	return res
}

func contains(ts []rdf.Term, t rdf.Term) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// fold rewrites each item's hierarchical values: maximal-specific claimed
// values become the only candidates, each absorbing its claimed ancestors'
// sources at AncestorWeight. It returns the folded claims plus, per item,
// the set of claimed pure-generalisation values for post-fusion expansion.
func (h *Hierarchical) fold(c *Claims) (*Claims, map[string]map[string]bool) {
	aw := h.AncestorWeight
	if aw <= 0 || aw > 1 {
		aw = 0.7
	}
	out := &Claims{SourceNames: c.SourceNames}
	expansions := make(map[string]map[string]bool)
	for _, it := range c.Items {
		newItem := &Item{Key: it.Key, Subject: it.Subject, Predicate: it.Predicate}
		var hierVals []string
		byValue := map[string]*ValueClaims{}
		for _, vc := range it.Values {
			if vc.Value.IsLiteral() && h.Forest.Known(vc.Value.Value) {
				hierVals = append(hierVals, vc.Value.Value)
				byValue[vc.Value.Value] = vc
			}
		}
		clusters := h.Forest.ClusterCompatible(hierVals)
		handled := map[string]bool{}
		claimedAnc := map[string]bool{}
		for _, cluster := range clusters {
			if len(cluster) < 2 {
				continue
			}
			// Record claimed generalisations for post-fusion expansion.
			for _, v := range cluster {
				for _, b := range cluster {
					if v != b && h.Forest.IsAncestor(v, b) {
						claimedAnc[v] = true
					}
				}
			}
			// Fold only pure chains (every pair on one generalisation path):
			// a country claim on a chain item is a vote for its city — the
			// paper's (Wuhan, China) example. Clusters with sibling
			// branches are left untouched: there the generalisation is
			// genuinely ambiguous between the siblings, and folding it onto
			// one of them would manufacture support (and, for the EM-based
			// methods, corrupt the source-quality estimates).
			if !isChain(h.Forest, cluster) {
				continue
			}
			// ClusterCompatible orders most-general first; the chain's most
			// specific member absorbs everything.
			rep := cluster[len(cluster)-1]
			merged := &ValueClaims{Value: rdf.Literal(rep)}
			conf := map[string]float64{}
			for _, sc := range byValue[rep].Sources {
				conf[sc.Source] = sc.Confidence
			}
			for _, a := range cluster {
				if a == rep {
					continue
				}
				for _, sc := range byValue[a].Sources {
					w := sc.Confidence * aw
					if w > conf[sc.Source] {
						conf[sc.Source] = w
					}
				}
			}
			for _, src := range sortedKeys(conf) {
				merged.Sources = append(merged.Sources, SourceClaim{Source: src, Confidence: conf[src]})
			}
			newItem.Values = append(newItem.Values, merged)
			for _, v := range cluster {
				handled[v] = true
			}
		}
		// Values outside any multi-member cluster pass through unchanged.
		for _, vc := range it.Values {
			if vc.Value.IsLiteral() && handled[vc.Value.Value] {
				continue
			}
			newItem.Values = append(newItem.Values, vc)
		}
		sortValues(newItem)
		out.Items = append(out.Items, newItem)
		if len(claimedAnc) > 0 {
			expansions[it.Key] = claimedAnc
		}
	}
	return out, expansions
}

// isChain reports whether every pair of cluster values lies on a single
// generalisation path.
func isChain(f *hierarchy.Forest, cluster []string) bool {
	for i := 0; i < len(cluster); i++ {
		for j := i + 1; j < len(cluster); j++ {
			a, b := cluster[i], cluster[j]
			if a != b && !f.IsAncestor(a, b) && !f.IsAncestor(b, a) {
				return false
			}
		}
	}
	return true
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sortValues(it *Item) {
	vs := it.Values
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Value.Compare(vs[j-1].Value) < 0; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
