// Package fusion implements knowledge fusion: resolving conflicts among the
// multi-source, multi-extractor statements produced by the extraction phase.
// It provides the three baselines the paper adopts from Dong et al.
// (VLDB'14) — VOTE, ACCU, POPACCU — plus the techniques the paper proposes
// to add on top:
//
//   - multi-truth fusion with per-source sensitivity/specificity (after
//     Zhao et al.'s latent truth model), handling non-functional attributes;
//   - hierarchical value spaces (Wuhan ⊂ China both true);
//   - inter-source copy-correlation detection with vote discounting (after
//     Dong et al., PVLDB 2010);
//   - leveraging extractor confidence scores (after Pasternack & Roth).
//
// All iterative methods run their per-item expectation step on the
// internal/mapreduce executor, mirroring the MapReduce-based scaling of the
// knowledge-fusion literature.
package fusion

import (
	"sort"

	"akb/internal/rdf"
)

// Granularity selects what counts as a "source" during fusion.
type Granularity uint8

const (
	// BySource treats each Web source (site, KB, corpus host) as a source.
	BySource Granularity = iota
	// BySourceExtractor treats each (source, extractor) pair as a source —
	// the finer provenance granularity Dong et al. found beneficial.
	BySourceExtractor
	// ByExtractor treats each extractor as one big source, the coarse
	// granularity Pochampally et al. use.
	ByExtractor
)

// SourceClaim is one source's assertion of a value.
type SourceClaim struct {
	// Source is the source identity at the chosen granularity.
	Source string
	// Confidence is the extractor-assigned confidence (max across
	// duplicate statements from the same source).
	Confidence float64
}

// ValueClaims groups the assertions of a single value of one item.
type ValueClaims struct {
	Value   rdf.Term
	Sources []SourceClaim
}

// SupportCount returns the number of asserting sources.
func (v *ValueClaims) SupportCount() int { return len(v.Sources) }

// Item is one data item (subject, predicate) with its claimed values.
type Item struct {
	Key       string
	Subject   rdf.Term
	Predicate rdf.Term
	Values    []*ValueClaims
}

// Value returns the claims for a specific value, or nil.
func (it *Item) Value(v rdf.Term) *ValueClaims {
	for _, vc := range it.Values {
		if vc.Value == v {
			return vc
		}
	}
	return nil
}

// Claims is the fusion input: all data items with their claimed values.
type Claims struct {
	Items []*Item
	// SourceNames lists every distinct source in sorted order.
	SourceNames []string
}

// NumClaims returns the total number of (item, value, source) assertions.
func (c *Claims) NumClaims() int {
	n := 0
	for _, it := range c.Items {
		for _, vc := range it.Values {
			n += len(vc.Sources)
		}
	}
	return n
}

// BuildClaims groups statements into items and values at the chosen source
// granularity. Output ordering is deterministic: items by key, values by
// term order, sources by name.
func BuildClaims(stmts []rdf.Statement, g Granularity) *Claims {
	b := NewClaimBuilder(g)
	b.Add(stmts...)
	return b.Build()
}

// valueKey identifies one claimed value of one item inside a builder.
type valueKey struct {
	item  string
	value string
}

// ClaimBuilder accumulates statements into fusion claims incrementally. It
// is the streaming counterpart of BuildClaims: statements may arrive in
// any number of batches, in any order, and builders filled from disjoint
// statement partitions may be combined with Merge — Build always produces
// the same fully sorted *Claims that BuildClaims would produce on the
// union, because item keys, value terms and source names alone determine
// the output order and duplicate (item, value, source) assertions keep
// only the maximum confidence (an order-free reduction).
//
// A builder is not safe for concurrent use, and Build finalises it: the
// builder must not be reused afterwards.
type ClaimBuilder struct {
	g       Granularity
	items   map[string]*Item
	values  map[valueKey]*ValueClaims
	srcConf map[valueKey]map[string]float64
}

// NewClaimBuilder returns an empty builder at the chosen granularity.
func NewClaimBuilder(g Granularity) *ClaimBuilder {
	return &ClaimBuilder{
		g:       g,
		items:   map[string]*Item{},
		values:  map[valueKey]*ValueClaims{},
		srcConf: map[valueKey]map[string]float64{},
	}
}

// Add folds statements into the builder.
func (b *ClaimBuilder) Add(stmts ...rdf.Statement) {
	for _, s := range stmts {
		ik := s.ItemKey()
		it, ok := b.items[ik]
		if !ok {
			it = &Item{Key: ik, Subject: s.Subject, Predicate: s.Predicate}
			b.items[ik] = it
		}
		vk := valueKey{item: ik, value: s.Object.Key()}
		vc, ok := b.values[vk]
		if !ok {
			vc = &ValueClaims{Value: s.Object}
			b.values[vk] = vc
			it.Values = append(it.Values, vc)
		}
		src := sourceName(s.Provenance, b.g)
		m := b.srcConf[vk]
		if m == nil {
			m = map[string]float64{}
			b.srcConf[vk] = m
		}
		if s.Confidence > m[src] {
			m[src] = s.Confidence
		}
	}
}

// Merge folds another builder (of the same granularity) into b. The other
// builder's state is adopted destructively and must not be used again.
func (b *ClaimBuilder) Merge(o *ClaimBuilder) {
	for ik, oit := range o.items {
		it, ok := b.items[ik]
		if !ok {
			b.items[ik] = oit
			for _, vc := range oit.Values {
				vk := valueKey{item: ik, value: vc.Value.Key()}
				b.values[vk] = vc
				b.srcConf[vk] = o.srcConf[vk]
			}
			continue
		}
		for _, ovc := range oit.Values {
			vk := valueKey{item: ik, value: ovc.Value.Key()}
			om := o.srcConf[vk]
			if _, ok := b.values[vk]; !ok {
				b.values[vk] = ovc
				it.Values = append(it.Values, ovc)
				b.srcConf[vk] = om
				continue
			}
			m := b.srcConf[vk]
			for src, conf := range om {
				if conf > m[src] {
					m[src] = conf
				}
			}
		}
	}
}

// Build assembles the canonical *Claims: items sorted by key, values by
// term order, sources by name. The builder must not be used afterwards.
func (b *ClaimBuilder) Build() *Claims {
	out := &Claims{}
	srcSet := map[string]struct{}{}
	keys := make([]string, 0, len(b.items))
	for k := range b.items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		it := b.items[k]
		sort.Slice(it.Values, func(i, j int) bool {
			return it.Values[i].Value.Compare(it.Values[j].Value) < 0
		})
		for _, vc := range it.Values {
			m := b.srcConf[valueKey{item: k, value: vc.Value.Key()}]
			names := make([]string, 0, len(m))
			for s := range m {
				names = append(names, s)
			}
			sort.Strings(names)
			for _, s := range names {
				vc.Sources = append(vc.Sources, SourceClaim{Source: s, Confidence: m[s]})
				srcSet[s] = struct{}{}
			}
		}
		out.Items = append(out.Items, it)
	}
	for s := range srcSet {
		out.SourceNames = append(out.SourceNames, s)
	}
	sort.Strings(out.SourceNames)
	return out
}

func sourceName(p rdf.Provenance, g Granularity) string {
	switch g {
	case BySourceExtractor:
		return p.Source + "+" + p.Extractor
	case ByExtractor:
		return p.Extractor
	default:
		return p.Source
	}
}

// Decision is the fused outcome for one item.
type Decision struct {
	Item *Item
	// Truths are the accepted values. Single-truth methods return exactly
	// one (when any value was claimed); multi-truth methods may return
	// several; hierarchy-aware fusion may add implied generalisations.
	Truths []rdf.Term
	// Belief maps value keys to the method's belief the value is true.
	Belief map[string]float64
}

// Accepted reports whether the decision accepts the value.
func (d *Decision) Accepted(v rdf.Term) bool {
	for _, t := range d.Truths {
		if t == v {
			return true
		}
	}
	return false
}

// Result is a fusion method's output over all items.
type Result struct {
	Method    string
	Decisions map[string]*Decision
	// SourceQuality reports the method's final per-source quality estimate
	// (accuracy for single-truth methods, sensitivity for multi-truth),
	// when the method estimates one.
	SourceQuality map[string]float64
}

// Method is a knowledge-fusion algorithm.
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// Fuse resolves the claims into per-item decisions.
	Fuse(c *Claims) *Result
}

// sortedTruths orders accepted values deterministically.
func sortedTruths(ts []rdf.Term) []rdf.Term {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	return ts
}
