package fusion

import (
	"sort"
)

// Correlations captures detected copy-correlations between sources and the
// resulting per-source vote weights. Following the paper's third fusion
// bullet (and simplifying the Bayesian copy-detection of Dong et al.,
// PVLDB 2010), sources that (nearly) always provide identical values on the
// items they share are grouped into correlation clusters; within a cluster
// only one representative votes at full weight and the rest are discounted,
// so a copier cannot amplify its original's (possibly wrong) claims.
//
// The discriminating signal is the agreement ratio on shared items: two
// independent sources with accuracies A1, A2 agree with probability about
// A1·A2 plus a small same-error term, which stays visibly below 1, whereas
// replication drives agreement to (nearly) 1. This detects exact and
// near-exact copying; partially-overlapping copying requires the full joint
// Bayesian treatment of Dong et al., which the paper leaves as future work.
type Correlations struct {
	// ClusterOf maps each source to its cluster representative.
	ClusterOf map[string]string
	// weights maps each source to its vote multiplier.
	weights map[string]float64
	// Pairs lists detected correlated pairs with their agreement ratio.
	Pairs []CorrelatedPair
}

// CorrelatedPair is one detected source correlation.
type CorrelatedPair struct {
	A, B      string
	Agreement float64
}

// Weight returns the vote multiplier for a source (1 for uncorrelated
// sources).
func (c *Correlations) Weight(source string) float64 {
	if c == nil {
		return 1
	}
	if w, ok := c.weights[source]; ok {
		return w
	}
	return 1
}

// CorrelationConfig controls copy detection.
type CorrelationConfig struct {
	// AgreementThreshold is the same-value agreement ratio on shared items
	// above which two sources are considered correlated (default 0.98).
	// The high default means only (near-)exact replication is flagged: two
	// independently accurate sources (e.g. two curated KBs at 98% accuracy
	// each) agree on roughly the product of their accuracies, which stays
	// safely below it.
	AgreementThreshold float64
	// MinCommonItems is the minimum number of shared items before the
	// agreement ratio is meaningful (default 3).
	MinCommonItems int
	// CopierWeight is the vote multiplier for non-representative members of
	// a correlation cluster (default 0.2).
	CopierWeight float64
}

// DefaultCorrelationConfig returns the standard configuration.
func DefaultCorrelationConfig() CorrelationConfig {
	return CorrelationConfig{AgreementThreshold: 0.98, MinCommonItems: 3, CopierWeight: 0.2}
}

// DetectCorrelations measures pairwise agreement on shared items and groups
// sources into correlation clusters via union-find.
func DetectCorrelations(c *Claims, cfg CorrelationConfig) *Correlations {
	if cfg.AgreementThreshold <= 0 {
		cfg.AgreementThreshold = 0.98
	}
	if cfg.MinCommonItems <= 0 {
		cfg.MinCommonItems = 3
	}
	if cfg.CopierWeight <= 0 {
		cfg.CopierWeight = 0.2
	}

	// Per source: item -> set of value keys asserted.
	claimed := map[string]map[string]map[string]struct{}{}
	for _, it := range c.Items {
		for _, vc := range it.Values {
			for _, sc := range vc.Sources {
				byItem := claimed[sc.Source]
				if byItem == nil {
					byItem = map[string]map[string]struct{}{}
					claimed[sc.Source] = byItem
				}
				vs := byItem[it.Key]
				if vs == nil {
					vs = map[string]struct{}{}
					byItem[it.Key] = vs
				}
				vs[vc.Value.Key()] = struct{}{}
			}
		}
	}

	parent := map[string]string{}
	var find func(string) string
	find = func(s string) string {
		p, ok := parent[s]
		if !ok || p == s {
			parent[s] = s
			return s
		}
		r := find(p)
		parent[s] = r
		return r
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}

	out := &Correlations{ClusterOf: map[string]string{}, weights: map[string]float64{}}
	names := c.SourceNames
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := names[i], names[j]
			shared, agree := 0, 0
			for item, va := range claimed[a] {
				vb, ok := claimed[b][item]
				if !ok {
					continue
				}
				shared++
				if sameValueSet(va, vb) {
					agree++
				}
			}
			if shared < cfg.MinCommonItems {
				continue
			}
			ratio := float64(agree) / float64(shared)
			if ratio >= cfg.AgreementThreshold {
				out.Pairs = append(out.Pairs, CorrelatedPair{A: a, B: b, Agreement: ratio})
				union(a, b)
			}
		}
	}
	sort.Slice(out.Pairs, func(i, j int) bool {
		if out.Pairs[i].A != out.Pairs[j].A {
			return out.Pairs[i].A < out.Pairs[j].A
		}
		return out.Pairs[i].B < out.Pairs[j].B
	})
	for _, s := range names {
		rep := find(s)
		out.ClusterOf[s] = rep
		if rep == s {
			out.weights[s] = 1
		} else {
			out.weights[s] = cfg.CopierWeight
		}
	}
	return out
}

func sameValueSet(a, b map[string]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// Clusters returns the correlation clusters with more than one member, each
// sorted, ordered by representative.
func (c *Correlations) Clusters() [][]string {
	groups := map[string][]string{}
	for s, rep := range c.ClusterOf {
		groups[rep] = append(groups[rep], s)
	}
	var reps []string
	for rep, members := range groups {
		if len(members) > 1 {
			reps = append(reps, rep)
		}
	}
	sort.Strings(reps)
	out := make([][]string, 0, len(reps))
	for _, rep := range reps {
		members := groups[rep]
		sort.Strings(members)
		out = append(out, members)
	}
	return out
}
