package fusion

import (
	"fmt"
	"math/rand"
	"testing"

	"akb/internal/rdf"
)

func benchClaims(b *testing.B, nItems, nSources int) *Claims {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	var stmts []rdf.Statement
	for i := 0; i < nItems; i++ {
		item := fmt.Sprintf("item%05d", i)
		tv := fmt.Sprintf("true%05d", i)
		for s := 0; s < nSources; s++ {
			v := tv
			if r.Float64() > 0.8 {
				v = fmt.Sprintf("wrong%05d_%d", i, r.Intn(2))
			}
			stmts = append(stmts, stmt(item, v, fmt.Sprintf("src%02d", s), 0.8))
		}
	}
	return BuildClaims(stmts, BySource)
}

func BenchmarkVote1000Items(b *testing.B) {
	c := benchClaims(b, 1000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&Vote{}).Fuse(c)
	}
}

func BenchmarkAccu1000Items(b *testing.B) {
	c := benchClaims(b, 1000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&Accu{}).Fuse(c)
	}
}

func BenchmarkPopAccu1000Items(b *testing.B) {
	c := benchClaims(b, 1000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&Accu{Popularity: true}).Fuse(c)
	}
}

func BenchmarkMultiTruth1000Items(b *testing.B) {
	c := benchClaims(b, 1000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&MultiTruth{}).Fuse(c)
	}
}

func BenchmarkDetectCorrelations(b *testing.B) {
	c := benchClaims(b, 1000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectCorrelations(c, DefaultCorrelationConfig())
	}
}

func BenchmarkBuildClaims(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	var stmts []rdf.Statement
	for i := 0; i < 5000; i++ {
		stmts = append(stmts, stmt(
			fmt.Sprintf("item%04d", i%1000),
			fmt.Sprintf("v%d", r.Intn(3)),
			fmt.Sprintf("src%02d", r.Intn(12)),
			0.8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildClaims(stmts, BySource)
	}
}

// BenchmarkAccuScaling shows per-item cost stays roughly flat as the item
// count grows (the map-reduce dataflow the knowledge-fusion literature
// relies on for scale).
func BenchmarkAccuScaling(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		c := benchClaims(b, n, 6)
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				(&Accu{}).Fuse(c)
			}
		})
	}
}
