package fusion

import (
	"math"
	"sort"

	"akb/internal/mapreduce"
	"akb/internal/obs"
	"akb/internal/rdf"
)

// MultiTruth implements a latent-truth-model-style multi-truth fusion after
// Zhao et al. (PVLDB 2012): each (item, value) pair has an independent
// truth variable, and each source is characterised by sensitivity (recall —
// the probability it asserts a true value of an item it covers) and
// specificity (the probability it refrains from asserting a false value).
// Unlike the single-truth baselines it can accept several values per item,
// handling non-functional attributes (a film's several producers) — the
// first bullet of the paper's fusion design.
//
// Inference is EM: the E-step computes per-(item, value) posteriors on the
// map-reduce executor; the M-step re-estimates source sensitivity and
// specificity from the posteriors.
type MultiTruth struct {
	// Prior is the prior probability a claimed value is true (default 0.5).
	Prior float64
	// AcceptThreshold is the posterior needed to accept a value
	// (default 0.5).
	AcceptThreshold float64
	// Weighted exponentiates each source's likelihood ratio by its claim
	// confidence, softening the influence of low-confidence extractions.
	Weighted bool
	// Discount optionally down-weights correlated sources.
	Discount *Correlations
	// Iterations bounds the EM loop (default 15).
	Iterations int
	// Workers configures map-reduce parallelism.
	Workers int
	// Obs optionally records executor telemetry into the registry.
	Obs *obs.Registry
}

// Name implements Method.
func (m *MultiTruth) Name() string {
	name := "MULTI"
	if m.Weighted {
		name += "+conf"
	}
	if m.Discount != nil {
		name += "+corr"
	}
	return name
}

type sourceStats struct {
	sens float64
	spec float64
}

// Fuse implements Method.
func (m *MultiTruth) Fuse(c *Claims) *Result {
	prior := m.Prior
	if prior <= 0 || prior >= 1 {
		prior = 0.5
	}
	thresh := m.AcceptThreshold
	if thresh <= 0 {
		thresh = 0.5
	}
	iters := m.Iterations
	if iters <= 0 {
		iters = 15
	}
	stats := make(map[string]sourceStats, len(c.SourceNames))
	for _, s := range c.SourceNames {
		stats[s] = sourceStats{sens: 0.8, spec: 0.9}
	}

	// Precompute, per item, which sources cover it (assert any value).
	covering := make([][]string, len(c.Items))
	for i, it := range c.Items {
		set := map[string]struct{}{}
		for _, vc := range it.Values {
			for _, sc := range vc.Sources {
				set[sc.Source] = struct{}{}
			}
		}
		for s := range set {
			covering[i] = append(covering[i], s)
		}
		// Deterministic order: float accumulation in eStep must not depend
		// on map iteration, or near-tie decisions flip between runs.
		sort.Strings(covering[i])
	}
	itemIdx := make(map[string]int, len(c.Items))
	for i, it := range c.Items {
		itemIdx[it.Key] = i
	}

	type itemPost struct {
		item  *Item
		probs map[string]float64
	}
	var lastE []itemPost

	for iter := 0; iter < iters; iter++ {
		lastE = mapreduce.Run(mapreduce.Config{Workers: m.Workers, Obs: m.Obs}, c.Items,
			func(it *Item) []mapreduce.KV[itemPost] {
				probs := m.eStep(it, covering[itemIdx[it.Key]], stats, prior)
				return []mapreduce.KV[itemPost]{{Key: it.Key, Value: itemPost{item: it, probs: probs}}}
			},
			func(key string, vs []itemPost) []itemPost { return vs })

		// M-step.
		type acc struct{ tpSens, totSens, tnSpec, totSpec float64 }
		accs := make(map[string]*acc, len(stats))
		for s := range stats {
			accs[s] = &acc{}
		}
		for i, ip := range lastE {
			asserted := make(map[string]map[string]struct{}) // source -> value keys
			for _, vc := range ip.item.Values {
				for _, sc := range vc.Sources {
					vs := asserted[sc.Source]
					if vs == nil {
						vs = map[string]struct{}{}
						asserted[sc.Source] = vs
					}
					vs[vc.Value.Key()] = struct{}{}
				}
			}
			for _, src := range covering[i] {
				a := accs[src]
				for _, vc := range ip.item.Values {
					p := ip.probs[vc.Value.Key()]
					_, claims := asserted[src][vc.Value.Key()]
					// Sensitivity: of true values, how many does src assert?
					a.totSens += p
					if claims {
						a.tpSens += p
					}
					// Specificity: of false values, how many does src skip?
					a.totSpec += 1 - p
					if !claims {
						a.tnSpec += 1 - p
					}
				}
			}
		}
		for s, a := range accs {
			st := stats[s]
			if a.totSens > 0 {
				st.sens = clampRate(a.tpSens / a.totSens)
			}
			if a.totSpec > 0 {
				st.spec = clampRate(a.tnSpec / a.totSpec)
			}
			stats[s] = st
		}
	}

	res := &Result{
		Method:        m.Name(),
		Decisions:     make(map[string]*Decision, len(c.Items)),
		SourceQuality: make(map[string]float64, len(stats)),
	}
	for s, st := range stats {
		res.SourceQuality[s] = st.sens
	}
	for _, ip := range lastE {
		d := &Decision{Item: ip.item, Belief: ip.probs}
		for _, vc := range ip.item.Values {
			if ip.probs[vc.Value.Key()] >= thresh {
				d.Truths = append(d.Truths, vc.Value)
			}
		}
		// Guarantee at least one truth per claimed item: take the argmax
		// when nothing clears the threshold.
		if len(d.Truths) == 0 && len(ip.item.Values) > 0 {
			var best rdf.Term
			bestP := -1.0
			for _, vc := range ip.item.Values {
				if p := ip.probs[vc.Value.Key()]; p > bestP || (p == bestP && vc.Value.Compare(best) < 0) {
					best, bestP = vc.Value, p
				}
			}
			d.Truths = []rdf.Term{best}
		}
		d.Truths = sortedTruths(d.Truths)
		res.Decisions[ip.item.Key] = d
	}
	return res
}

func (m *MultiTruth) eStep(it *Item, covering []string, stats map[string]sourceStats, prior float64) map[string]float64 {
	probs := make(map[string]float64, len(it.Values))
	for _, vc := range it.Values {
		asserters := make(map[string]float64, len(vc.Sources))
		for _, sc := range vc.Sources {
			asserters[sc.Source] = sc.Confidence
		}
		logOdds := math.Log(prior / (1 - prior))
		for _, src := range covering {
			st := stats[src]
			var ratio float64
			conf, claims := asserters[src]
			if claims {
				ratio = st.sens / (1 - st.spec)
			} else {
				ratio = (1 - st.sens) / st.spec
				conf = 1
			}
			w := 1.0
			if m.Weighted && claims {
				if conf <= 0 {
					conf = 0.5
				}
				// Map confidence into [0.5, 1]: low-confidence claims are
				// dampened but not annihilated. Using raw confidence as the
				// exponent would bias fusion toward rejection, because
				// assertions would count less than the full-weight silent
				// negatives of non-claiming sources.
				w = 0.5 + conf/2
			}
			if m.Discount != nil {
				w *= m.Discount.Weight(src)
			}
			logOdds += w * math.Log(ratio)
		}
		probs[vc.Value.Key()] = 1 / (1 + math.Exp(-logOdds))
	}
	return probs
}

func clampRate(r float64) float64 {
	if r < 0.05 {
		return 0.05
	}
	if r > 0.95 {
		return 0.95
	}
	return r
}
