package fusion

import (
	"math"
	"sort"

	"akb/internal/mapreduce"
	"akb/internal/obs"
	"akb/internal/rdf"
)

// MultiTruth implements a latent-truth-model-style multi-truth fusion after
// Zhao et al. (PVLDB 2012): each (item, value) pair has an independent
// truth variable, and each source is characterised by sensitivity (recall —
// the probability it asserts a true value of an item it covers) and
// specificity (the probability it refrains from asserting a false value).
// Unlike the single-truth baselines it can accept several values per item,
// handling non-functional attributes (a film's several producers) — the
// first bullet of the paper's fusion design.
//
// Inference is EM: the E-step computes per-(item, value) posteriors on the
// map-reduce executor; the M-step re-estimates source sensitivity and
// specificity from the posteriors. The loop is allocation-free: sources
// are interned to dense indices, each item's (value × covering-source)
// claim matrix is precomputed once, and posteriors are written into
// per-item buffers reused across iterations — the per-iteration maps and
// the identity-reducer Shuffle the first implementation paid are gone.
type MultiTruth struct {
	// Prior is the prior probability a claimed value is true (default 0.5).
	Prior float64
	// AcceptThreshold is the posterior needed to accept a value
	// (default 0.5).
	AcceptThreshold float64
	// Weighted exponentiates each source's likelihood ratio by its claim
	// confidence, softening the influence of low-confidence extractions.
	Weighted bool
	// Discount optionally down-weights correlated sources.
	Discount *Correlations
	// Iterations bounds the EM loop (default 15).
	Iterations int
	// Workers configures map-reduce parallelism.
	Workers int
	// Obs optionally records executor telemetry into the registry.
	Obs *obs.Registry
}

// Name implements Method.
func (m *MultiTruth) Name() string {
	name := "MULTI"
	if m.Weighted {
		name += "+conf"
	}
	if m.Discount != nil {
		name += "+corr"
	}
	return name
}

type sourceStats struct {
	sens float64
	spec float64
}

// mtValue is one claimed value's rows of the per-item claim matrix,
// aligned with the item's covering-source list.
type mtValue struct {
	claimed []bool
	conf    []float64
}

// mtItem is the precomputed EM state for one item.
type mtItem struct {
	// covering lists the indices of sources asserting any value of the
	// item, ascending. SourceNames is sorted, so ascending index order is
	// exactly the sorted-name order the original string-keyed loop used —
	// float accumulation order is unchanged.
	covering []int
	values   []mtValue
	// probs holds the current posterior per value, overwritten each
	// iteration.
	probs []float64
}

// Fuse implements Method.
func (m *MultiTruth) Fuse(c *Claims) *Result {
	prior := m.Prior
	if prior <= 0 || prior >= 1 {
		prior = 0.5
	}
	thresh := m.AcceptThreshold
	if thresh <= 0 {
		thresh = 0.5
	}
	iters := m.Iterations
	if iters <= 0 {
		iters = 15
	}
	nsrc := len(c.SourceNames)
	srcIdx := make(map[string]int, nsrc)
	for i, s := range c.SourceNames {
		srcIdx[s] = i
	}
	stats := make([]sourceStats, nsrc)
	for i := range stats {
		stats[i] = sourceStats{sens: 0.8, spec: 0.9}
	}
	var discount []float64
	if m.Discount != nil {
		discount = make([]float64, nsrc)
		for i, s := range c.SourceNames {
			discount[i] = m.Discount.Weight(s)
		}
	}

	// Precompute every item's covering list and claim matrix once.
	items := make([]mtItem, len(c.Items))
	seen := make([]bool, nsrc)
	pos := make([]int, nsrc) // covering position of each source index
	for i, it := range c.Items {
		mi := &items[i]
		for _, vc := range it.Values {
			for _, sc := range vc.Sources {
				if si := srcIdx[sc.Source]; !seen[si] {
					seen[si] = true
					mi.covering = append(mi.covering, si)
				}
			}
		}
		sort.Ints(mi.covering)
		for ci, si := range mi.covering {
			seen[si] = false
			pos[si] = ci
		}
		nc := len(mi.covering)
		mi.values = make([]mtValue, len(it.Values))
		mi.probs = make([]float64, len(it.Values))
		for vi, vc := range it.Values {
			v := &mi.values[vi]
			v.claimed = make([]bool, nc)
			v.conf = make([]float64, nc)
			for _, sc := range vc.Sources {
				ci := pos[srcIdx[sc.Source]]
				v.claimed[ci] = true
				v.conf[ci] = sc.Confidence
			}
		}
	}

	cfg := mapreduce.Config{Workers: m.Workers, Obs: m.Obs}
	logPrior := math.Log(prior / (1 - prior))
	type acc struct{ tpSens, totSens, tnSpec, totSpec float64 }
	accs := make([]acc, nsrc)
	for iter := 0; iter < iters; iter++ {
		// E-step: items are independent, so per-item posteriors can be
		// computed in parallel into their preallocated buffers.
		mapreduce.ForEach(cfg, len(items), func(i int) {
			mi := &items[i]
			for vi := range mi.values {
				v := &mi.values[vi]
				logOdds := logPrior
				for ci, si := range mi.covering {
					st := stats[si]
					var ratio float64
					conf := 1.0
					claims := v.claimed[ci]
					if claims {
						ratio = st.sens / (1 - st.spec)
						conf = v.conf[ci]
					} else {
						ratio = (1 - st.sens) / st.spec
					}
					w := 1.0
					if m.Weighted && claims {
						if conf <= 0 {
							conf = 0.5
						}
						// Map confidence into [0.5, 1]: low-confidence claims
						// are dampened but not annihilated. Using raw
						// confidence as the exponent would bias fusion toward
						// rejection, because assertions would count less than
						// the full-weight silent negatives of non-claiming
						// sources.
						w = 0.5 + conf/2
					}
					if discount != nil {
						w *= discount[si]
					}
					logOdds += w * math.Log(ratio)
				}
				mi.probs[vi] = 1 / (1 + math.Exp(-logOdds))
			}
		})

		// M-step: serial, in item order then covering order then value
		// order — the same accumulation order at any parallelism.
		for i := range accs {
			accs[i] = acc{}
		}
		for i := range items {
			mi := &items[i]
			for ci, si := range mi.covering {
				a := &accs[si]
				for vi := range mi.values {
					p := mi.probs[vi]
					claims := mi.values[vi].claimed[ci]
					// Sensitivity: of true values, how many does src assert?
					a.totSens += p
					if claims {
						a.tpSens += p
					}
					// Specificity: of false values, how many does src skip?
					a.totSpec += 1 - p
					if !claims {
						a.tnSpec += 1 - p
					}
				}
			}
		}
		for si := range accs {
			a := &accs[si]
			st := &stats[si]
			if a.totSens > 0 {
				st.sens = clampRate(a.tpSens / a.totSens)
			}
			if a.totSpec > 0 {
				st.spec = clampRate(a.tnSpec / a.totSpec)
			}
		}
	}

	res := &Result{
		Method:        m.Name(),
		Decisions:     make(map[string]*Decision, len(c.Items)),
		SourceQuality: make(map[string]float64, nsrc),
	}
	for si, s := range c.SourceNames {
		res.SourceQuality[s] = stats[si].sens
	}
	for i, it := range c.Items {
		mi := &items[i]
		belief := make(map[string]float64, len(it.Values))
		d := &Decision{Item: it, Belief: belief}
		for vi, vc := range it.Values {
			p := mi.probs[vi]
			belief[vc.Value.Key()] = p
			if p >= thresh {
				d.Truths = append(d.Truths, vc.Value)
			}
		}
		// Guarantee at least one truth per claimed item: take the argmax
		// when nothing clears the threshold.
		if len(d.Truths) == 0 && len(it.Values) > 0 {
			var best rdf.Term
			bestP := -1.0
			for vi, vc := range it.Values {
				if p := mi.probs[vi]; p > bestP || (p == bestP && vc.Value.Compare(best) < 0) {
					best, bestP = vc.Value, p
				}
			}
			d.Truths = []rdf.Term{best}
		}
		d.Truths = sortedTruths(d.Truths)
		res.Decisions[it.Key] = d
	}
	return res
}

func clampRate(r float64) float64 {
	if r < 0.05 {
		return 0.05
	}
	if r > 0.95 {
		return 0.95
	}
	return r
}
