package rdf

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		want string
	}{
		{"iri", IRI("http://x/a"), KindIRI, "<http://x/a>"},
		{"plain literal", Literal("hello"), KindLiteral, `"hello"`},
		{"typed literal", TypedLiteral("3", XSDInteger), KindLiteral, `"3"^^<` + XSDInteger + `>`},
		{"lang literal", LangLiteral("bonjour", "fr"), KindLiteral, `"bonjour"@fr`},
		{"blank", Blank("b0"), KindBlank, "_:b0"},
		{"integer", Integer(42), KindLiteral, `"42"^^<` + XSDInteger + `>`},
		{"bool", Bool(true), KindLiteral, `"true"^^<` + XSDBoolean + `>`},
		{"xsd string elided", TypedLiteral("s", XSDString), KindLiteral, `"s"`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if got := tc.term.String(); got != tc.want {
				t.Errorf("String() = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestTermPredicates(t *testing.T) {
	if !IRI("http://x").IsIRI() || IRI("http://x").IsLiteral() || IRI("http://x").IsBlank() {
		t.Error("IRI kind predicates wrong")
	}
	if !Literal("v").IsLiteral() {
		t.Error("Literal not IsLiteral")
	}
	if !Blank("b").IsBlank() {
		t.Error("Blank not IsBlank")
	}
}

func TestTermIsZero(t *testing.T) {
	var zero Term
	if !zero.IsZero() {
		t.Error("zero Term should be IsZero")
	}
	if IRI("x").IsZero() || Literal("").IsZero() == true && false {
		t.Error("non-zero term reported zero")
	}
	// A plain empty literal is NOT the wildcard.
	if Literal("").IsZero() {
		// Literal("") has Kind KindLiteral, so it is not zero.
		t.Error("empty literal must not be the wildcard")
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{
		"plain",
		`with "quotes"`,
		"tab\tand\nnewline",
		`back\slash`,
		"\r carriage",
		"",
		"unicode: 日本語",
	}
	for _, s := range cases {
		if got := unescapeLiteral(escapeLiteral(s)); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		return unescapeLiteral(escapeLiteral(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTermKeyUniqueness(t *testing.T) {
	terms := []Term{
		IRI("a"), Literal("a"), Blank("a"),
		TypedLiteral("a", XSDInteger), LangLiteral("a", "en"),
		IRI("b"), Literal("b"),
	}
	seen := map[string]Term{}
	for _, tm := range terms {
		k := tm.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, tm)
		}
		seen[k] = tm
	}
}

func TestTermCompare(t *testing.T) {
	ordered := []Term{
		IRI("a"), IRI("b"),
		Literal("a"), TypedLiteral("a", XSDInteger), Literal("b"),
		Blank("a"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "iri" || KindLiteral.String() != "literal" || KindBlank.String() != "blank" {
		t.Error("TermKind.String wrong")
	}
	if got := TermKind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestNamespaceIRI(t *testing.T) {
	got := AKB.IRI("Barack Obama")
	want := "http://akb.example.org/Barack_Obama"
	if got.Value != want {
		t.Errorf("Namespace.IRI = %q, want %q", got.Value, want)
	}
}

func TestLocalName(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{IRI("http://x/path/Name"), "Name"},
		{IRI("http://x/ns#frag"), "frag"},
		{IRI("bare"), "bare"},
		{Literal("lit"), "lit"},
	}
	for _, tc := range tests {
		if got := LocalName(tc.term); got != tc.want {
			t.Errorf("LocalName(%v) = %q, want %q", tc.term, got, tc.want)
		}
	}
}

// randomTerm generates arbitrary printable terms for property tests.
func randomTerm(r *rand.Rand) Term {
	alphabet := "abcdefghijklmnopqrstuvwxyz0123456789"
	word := func(n int) string {
		b := make([]byte, 1+r.Intn(n))
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(b)
	}
	switch r.Intn(3) {
	case 0:
		return IRI("http://t.example/" + word(12))
	case 1:
		switch r.Intn(3) {
		case 0:
			return Literal(word(16))
		case 1:
			return TypedLiteral(word(8), XSDInteger)
		default:
			return LangLiteral(word(8), "en")
		}
	default:
		return Blank(word(6))
	}
}

// Generate lets testing/quick produce random Terms.
func (Term) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomTerm(r))
}

func TestCompareIsAntisymmetricProperty(t *testing.T) {
	f := func(a, b Term) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKeyEqualityMatchesTermEqualityProperty(t *testing.T) {
	f := func(a, b Term) bool {
		return (a == b) == (a.Key() == b.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
