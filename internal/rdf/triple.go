package rdf

import (
	"fmt"
	"strings"
)

// Triple is a bare RDF triple: subject, predicate, object.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// T is a convenience constructor for a Triple.
func T(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// String renders the triple in N-Triples syntax (without trailing newline).
func (t Triple) String() string {
	return t.Subject.String() + " " + t.Predicate.String() + " " + t.Object.String() + " ."
}

// Key returns a unique key for the triple for use in maps.
func (t Triple) Key() string {
	return t.Subject.Key() + "|" + t.Predicate.Key() + "|" + t.Object.Key()
}

// ItemKey returns the data-item key (subject, predicate) of the triple. A
// "data item" in the fusion literature is the pair an extraction claims a
// value for, e.g. (Barack Obama, profession).
func (t Triple) ItemKey() string {
	return t.Subject.Key() + "|" + t.Predicate.Key()
}

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(o Triple) int {
	if c := t.Subject.Compare(o.Subject); c != 0 {
		return c
	}
	if c := t.Predicate.Compare(o.Predicate); c != 0 {
		return c
	}
	return t.Object.Compare(o.Object)
}

// Provenance records where a statement came from: the original Web source
// (site or corpus) and the extractor that produced it. The knowledge-fusion
// phase reasons over (source, extractor) pairs with finer granularity than
// classical data fusion, following Dong et al. (VLDB'14).
type Provenance struct {
	// Source identifies the original data source, e.g. a website host,
	// "querystream", "freebase", or "dbpedia".
	Source string
	// Extractor names the extraction system, e.g. "domx", "textx", "qsx",
	// "kbx".
	Extractor string
	// Document optionally identifies the page or record within the source.
	Document string
}

// Key returns a unique key for the provenance.
func (p Provenance) Key() string {
	return p.Source + "\x00" + p.Extractor + "\x00" + p.Document
}

// SourceExtractorKey returns the coarser (source, extractor) key used by the
// fusion methods when per-document granularity is too sparse.
func (p Provenance) SourceExtractorKey() string {
	return p.Source + "\x00" + p.Extractor
}

// String renders the provenance compactly for logs.
func (p Provenance) String() string {
	if p.Document == "" {
		return p.Extractor + "@" + p.Source
	}
	return p.Extractor + "@" + p.Source + "/" + p.Document
}

// Statement is a triple annotated with provenance and an extractor-assigned
// confidence score in [0, 1]. Statements are what extractors emit and what
// knowledge fusion fuses; the confidence score implements the paper's
// "unified criterion" for extraction uncertainty.
type Statement struct {
	Triple
	Provenance Provenance
	// Confidence is the extractor's belief that the triple is true, in
	// [0, 1]. A value of 0 means "unscored"; extractors always assign a
	// strictly positive score.
	Confidence float64
}

// S constructs a Statement.
func S(t Triple, prov Provenance, conf float64) Statement {
	return Statement{Triple: t, Provenance: prov, Confidence: conf}
}

// String renders the statement with its annotations as a comment.
func (s Statement) String() string {
	return fmt.Sprintf("%s # conf=%.3f prov=%s", s.Triple.String(), s.Confidence, s.Provenance)
}

// Valid reports whether the statement is structurally well formed: subject
// and predicate are IRIs or blanks (predicate must be an IRI), the object is
// any term, and the confidence is within [0, 1].
func (s Statement) Valid() error {
	if s.Subject.IsLiteral() {
		return fmt.Errorf("rdf: subject must not be a literal: %s", s.Subject)
	}
	if !s.Predicate.IsIRI() {
		return fmt.Errorf("rdf: predicate must be an IRI: %s", s.Predicate)
	}
	if s.Subject.Value == "" || s.Predicate.Value == "" {
		return fmt.Errorf("rdf: empty subject or predicate in %s", s.Triple)
	}
	if s.Confidence < 0 || s.Confidence > 1 {
		return fmt.Errorf("rdf: confidence %g out of [0,1]", s.Confidence)
	}
	return nil
}

// Namespace helps build IRIs under a common prefix.
type Namespace string

// Common namespaces used by the pipeline.
const (
	// AKB is the namespace for resources minted by this system.
	AKB Namespace = "http://akb.example.org/"
	// RDFNS is the RDF namespace.
	RDFNS Namespace = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	// RDFSNS is the RDF Schema namespace.
	RDFSNS Namespace = "http://www.w3.org/2000/01/rdf-schema#"
)

// IRI mints an IRI term in the namespace. The local name is percent-free and
// is expected to already be IRI-safe; spaces are replaced with underscores as
// is conventional for DBpedia-style resource names.
func (ns Namespace) IRI(local string) Term {
	if strings.ContainsRune(local, ' ') {
		local = strings.ReplaceAll(local, " ", "_")
	}
	return IRI(string(ns) + local)
}

// Standard predicates.
var (
	// RDFType is rdf:type.
	RDFType = IRI(string(RDFNS) + "type")
	// RDFSLabel is rdfs:label.
	RDFSLabel = IRI(string(RDFSNS) + "label")
	// RDFSSubClassOf is rdfs:subClassOf.
	RDFSSubClassOf = IRI(string(RDFSNS) + "subClassOf")
)

// LocalName extracts the final path or fragment segment of an IRI term,
// e.g. "Barack_Obama" from "http://akb.example.org/Barack_Obama". For
// non-IRI terms it returns the term value unchanged.
func LocalName(t Term) string {
	if !t.IsIRI() {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexByte(v, '#'); i >= 0 {
		return v[i+1:]
	}
	if i := strings.LastIndexByte(v, '/'); i >= 0 {
		return v[i+1:]
	}
	return v
}
