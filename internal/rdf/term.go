// Package rdf implements the Resource Description Framework data model used
// throughout the knowledge-base construction pipeline: terms (IRIs, literals,
// blank nodes), triples, confidence- and provenance-annotated statements, an
// indexed in-memory triple store, and an N-Triples-style serialisation.
//
// The paper represents all "actionable knowledge" as RDF triples; every
// extractor in internal/extract emits rdf.Statement values and every fusion
// method in internal/fusion consumes them.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three syntactic categories of RDF terms.
type TermKind uint8

const (
	// KindIRI identifies a resource by an IRI reference.
	KindIRI TermKind = iota
	// KindLiteral is a (possibly typed) literal value.
	KindLiteral
	// KindBlank is a blank node with a document-scoped label.
	KindBlank
)

// String returns the conventional name of the kind.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term. Terms are small immutable values and are safe to
// copy and to use as map keys.
type Term struct {
	// Kind says which syntactic category the term belongs to.
	Kind TermKind
	// Value is the IRI string, the literal lexical form, or the blank label.
	Value string
	// Datatype is the datatype IRI for typed literals. Empty for plain
	// literals and for non-literal terms.
	Datatype string
	// Lang is the language tag for language-tagged literals, e.g. "en".
	Lang string
}

// Well-known datatype IRIs (an XSD subset sufficient for the pipeline).
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate    = "http://www.w3.org/2001/XMLSchema#date"
)

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// Literal returns a plain (untyped) literal term.
func Literal(lexical string) Term { return Term{Kind: KindLiteral, Value: lexical} }

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lexical, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: datatype}
}

// LangLiteral returns a language-tagged literal.
func LangLiteral(lexical, lang string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Lang: lang}
}

// Blank returns a blank node with the given label (without the "_:" prefix).
func Blank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// Integer returns an xsd:integer literal.
func Integer(v int64) Term { return TypedLiteral(fmt.Sprintf("%d", v), XSDInteger) }

// Double returns an xsd:double literal.
func Double(v float64) Term { return TypedLiteral(fmt.Sprintf("%g", v), XSDDouble) }

// Bool returns an xsd:boolean literal.
func Bool(v bool) Term { return TypedLiteral(fmt.Sprintf("%t", v), XSDBoolean) }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsZero reports whether the term is the zero Term, used as a wildcard in
// store pattern queries.
func (t Term) IsZero() bool {
	return t.Kind == KindIRI && t.Value == "" && t.Datatype == "" && t.Lang == ""
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindLiteral:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return fmt.Sprintf("<<invalid term kind %d>>", t.Kind)
	}
}

// Key returns a compact unique key for the term, suitable for deduplication
// maps where the full N-Triples rendering would be wasteful.
func (t Term) Key() string {
	var b strings.Builder
	b.Grow(len(t.Value) + len(t.Datatype) + len(t.Lang) + 4)
	switch t.Kind {
	case KindIRI:
		b.WriteByte('i')
	case KindLiteral:
		b.WriteByte('l')
	case KindBlank:
		b.WriteByte('b')
	}
	b.WriteString(t.Value)
	if t.Datatype != "" {
		b.WriteByte('\x00')
		b.WriteString(t.Datatype)
	}
	if t.Lang != "" {
		b.WriteByte('\x01')
		b.WriteString(t.Lang)
	}
	return b.String()
}

// Compare orders terms: IRIs < literals < blanks, then by value, datatype,
// language. It returns -1, 0 or +1.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		if t.Kind < o.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, o.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, o.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, o.Lang)
}

func escapeLiteral(s string) string {
	// Fast path: nothing to escape.
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	// Byte-wise iteration: every escaped character is ASCII, and non-UTF-8
	// bytes must pass through unchanged (rune iteration would replace them
	// with U+FFFD and break round-tripping).
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 >= len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
