package rdf

import (
	"bytes"
	"fmt"
	"testing"
)

func benchTriples(n int) []Triple {
	out := make([]Triple, n)
	for i := range out {
		out[i] = T(
			AKB.IRI(fmt.Sprintf("entity-%d", i%500)),
			AKB.IRI(fmt.Sprintf("attr/p%d", i%20)),
			Literal(fmt.Sprintf("value %d", i)),
		)
	}
	return out
}

func BenchmarkStoreAdd(b *testing.B) {
	ts := benchTriples(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := NewStore()
		st.AddAll(ts)
	}
}

func BenchmarkStoreMatchSP(b *testing.B) {
	st := NewStore()
	st.AddAll(benchTriples(10000))
	s := AKB.IRI("entity-42")
	p := AKB.IRI("attr/p2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Match(s, p, Term{})
	}
}

func BenchmarkStoreMatchPredicate(b *testing.B) {
	st := NewStore()
	st.AddAll(benchTriples(10000))
	p := AKB.IRI("attr/p2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Match(Term{}, p, Term{})
	}
}

func BenchmarkNTriplesWrite(b *testing.B) {
	ts := benchTriples(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, ts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNTriplesRead(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, benchTriples(5000)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadNTriples(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
