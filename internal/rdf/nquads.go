package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Provenance-preserving serialisation: statements are written as N-Quads,
// with the graph term encoding (source, extractor, document) so the fusion
// input can be exported, inspected and re-imported losslessly. Confidence
// rides in a trailing comment the reader understands.

// provGraphNS is the namespace for provenance graph IRIs.
const provGraphNS = "http://akb.example.org/prov/"

// provenanceIRI encodes a Provenance as a graph IRI.
func provenanceIRI(p Provenance) Term {
	esc := func(s string) string {
		s = strings.ReplaceAll(s, "%", "%25")
		s = strings.ReplaceAll(s, "/", "%2F")
		s = strings.ReplaceAll(s, " ", "%20")
		s = strings.ReplaceAll(s, ">", "%3E")
		return s
	}
	return IRI(provGraphNS + esc(p.Source) + "/" + esc(p.Extractor) + "/" + esc(p.Document))
}

// parseProvenanceIRI decodes a provenance graph IRI.
func parseProvenanceIRI(t Term) (Provenance, bool) {
	if !t.IsIRI() || !strings.HasPrefix(t.Value, provGraphNS) {
		return Provenance{}, false
	}
	rest := t.Value[len(provGraphNS):]
	parts := strings.Split(rest, "/")
	if len(parts) != 3 {
		return Provenance{}, false
	}
	unesc := func(s string) string {
		s = strings.ReplaceAll(s, "%3E", ">")
		s = strings.ReplaceAll(s, "%20", " ")
		s = strings.ReplaceAll(s, "%2F", "/")
		s = strings.ReplaceAll(s, "%25", "%")
		return s
	}
	return Provenance{Source: unesc(parts[0]), Extractor: unesc(parts[1]), Document: unesc(parts[2])}, true
}

// WriteNQuads serialises statements as N-Quads with a confidence comment:
//
//	<s> <p> "o" <graph> . # conf=0.84
func WriteNQuads(w io.Writer, stmts []Statement) error {
	bw := bufio.NewWriter(w)
	for _, s := range stmts {
		line := fmt.Sprintf("%s %s %s %s . # conf=%.6f\n",
			s.Subject.String(), s.Predicate.String(), s.Object.String(),
			provenanceIRI(s.Provenance).String(), s.Confidence)
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNQuads parses the N-Quads subset produced by WriteNQuads, recovering
// provenance and confidence.
func ReadNQuads(r io.Reader) ([]Statement, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Statement
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Split off the confidence comment.
		conf := 0.0
		if i := strings.LastIndex(line, "# conf="); i >= 0 {
			fmt.Sscanf(line[i:], "# conf=%f", &conf)
			line = strings.TrimSpace(line[:i])
		}
		p := &ntParser{s: line}
		subj, err := p.term()
		if err != nil {
			return nil, fmt.Errorf("rdf: nquads line %d: %w", lineNo, err)
		}
		pred, err := p.term()
		if err != nil {
			return nil, fmt.Errorf("rdf: nquads line %d: %w", lineNo, err)
		}
		obj, err := p.term()
		if err != nil {
			return nil, fmt.Errorf("rdf: nquads line %d: %w", lineNo, err)
		}
		graph, err := p.term()
		if err != nil {
			return nil, fmt.Errorf("rdf: nquads line %d: %w", lineNo, err)
		}
		p.skipSpace()
		if !strings.HasPrefix(p.rest(), ".") {
			return nil, fmt.Errorf("rdf: nquads line %d: missing '.'", lineNo)
		}
		prov, ok := parseProvenanceIRI(graph)
		if !ok {
			return nil, fmt.Errorf("rdf: nquads line %d: bad provenance graph %s", lineNo, graph)
		}
		out = append(out, Statement{
			Triple:     Triple{Subject: subj, Predicate: pred, Object: obj},
			Provenance: prov,
			Confidence: conf,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
