package rdf

import (
	"strings"
	"testing"
)

// FuzzReadNTriples asserts the parser never panics, and that anything it
// accepts round-trips through the writer.
func FuzzReadNTriples(f *testing.F) {
	seeds := []string{
		"<http://x/s> <http://x/p> \"v\" .",
		"<http://x/s> <http://x/p> <http://x/o> .",
		"_:b0 <http://x/p> \"v\"@en .",
		"<http://x/s> <http://x/p> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
		"# comment\n\n<http://x/s> <http://x/p> \"esc\\\"aped\" .",
		"malformed",
		"<unterminated",
		"\"just a literal\" .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ts, err := ReadNTriples(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteNTriples(writerOf(&buf), ts); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadNTriples(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\noutput: %q", err, buf.String())
		}
		if len(back) != len(ts) {
			t.Fatalf("round trip changed count: %d -> %d", len(ts), len(back))
		}
		for i := range ts {
			if back[i] != ts[i] {
				t.Fatalf("round trip changed triple %d: %v -> %v", i, ts[i], back[i])
			}
		}
	})
}

type sbWriter struct{ b *strings.Builder }

func (w sbWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

func writerOf(b *strings.Builder) sbWriter { return sbWriter{b} }
