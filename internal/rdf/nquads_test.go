package rdf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNQuadsRoundTrip(t *testing.T) {
	stmts := []Statement{
		S(T(IRI("http://x/s"), IRI("http://x/p"), Literal("v")),
			Provenance{Source: "film-0.example.com", Extractor: "domx", Document: "/page-1"}, 0.84),
		S(T(IRI("http://x/s2"), IRI("http://x/p"), Literal("with spaces & stuff")),
			Provenance{Source: "query stream", Extractor: "qsx", Document: ""}, 0.5),
		S(T(IRI("http://x/s3"), IRI("http://x/p"), TypedLiteral("7", XSDInteger)),
			Provenance{Source: "a/b", Extractor: "kbx", Document: "d%e"}, 0.99),
	}
	var buf bytes.Buffer
	if err := WriteNQuads(&buf, stmts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNQuads(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(stmts) {
		t.Fatalf("count %d, want %d", len(back), len(stmts))
	}
	for i := range stmts {
		if back[i].Triple != stmts[i].Triple {
			t.Errorf("triple %d: %v != %v", i, back[i].Triple, stmts[i].Triple)
		}
		if back[i].Provenance != stmts[i].Provenance {
			t.Errorf("provenance %d: %+v != %+v", i, back[i].Provenance, stmts[i].Provenance)
		}
		if math.Abs(back[i].Confidence-stmts[i].Confidence) > 1e-5 {
			t.Errorf("confidence %d: %g != %g", i, back[i].Confidence, stmts[i].Confidence)
		}
	}
}

func TestProvenanceIRIRoundTrip(t *testing.T) {
	cases := []Provenance{
		{Source: "plain", Extractor: "domx", Document: "doc"},
		{Source: "with space", Extractor: "a/b", Document: ""},
		{Source: "pct%sign", Extractor: "x", Document: "a/b c"},
	}
	for _, p := range cases {
		got, ok := parseProvenanceIRI(provenanceIRI(p))
		if !ok || got != p {
			t.Errorf("round trip %+v -> %+v, ok=%v", p, got, ok)
		}
	}
	if _, ok := parseProvenanceIRI(IRI("http://other/graph")); ok {
		t.Error("foreign IRI parsed as provenance")
	}
	if _, ok := parseProvenanceIRI(Literal("x")); ok {
		t.Error("literal parsed as provenance")
	}
}

func TestReadNQuadsErrors(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p> "v" .`,                               // missing graph
		`<http://x/s> <http://x/p> "v" <http://other/g> .`,              // foreign graph
		`<http://x/s> <http://x/p> "v" <http://akb.example.org/prov/a>`, // malformed graph + no dot
	}
	for _, in := range bad {
		if _, err := ReadNQuads(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	// Comments and blank lines are fine.
	got, err := ReadNQuads(strings.NewReader("# header\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("comment handling: %v, %v", got, err)
	}
}
