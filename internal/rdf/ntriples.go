package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteNTriples writes the triples in N-Triples syntax, one per line.
func WriteNTriples(w io.Writer, ts []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNTriples parses N-Triples input: one triple per line, '#' comments and
// blank lines allowed. It supports the subset of the grammar produced by
// WriteNTriples (IRIs, blank nodes, plain/typed/language-tagged literals).
func ReadNTriples(r io.Reader) ([]Triple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Triple
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseTripleLine(line string) (Triple, error) {
	p := &ntParser{s: line}
	subj, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pred, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	obj, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipSpace()
	if !strings.HasPrefix(p.rest(), ".") {
		return Triple{}, fmt.Errorf("missing terminating '.' in %q", line)
	}
	return Triple{Subject: subj, Predicate: pred, Object: obj}, nil
}

type ntParser struct {
	s string
	i int
}

func (p *ntParser) rest() string { return p.s[p.i:] }

func (p *ntParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		end := strings.IndexByte(p.s[p.i:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.s[p.i+1 : p.i+end]
		p.i += end + 1
		return IRI(iri), nil
	case '_':
		if !strings.HasPrefix(p.rest(), "_:") {
			return Term{}, fmt.Errorf("malformed blank node")
		}
		p.i += 2
		start := p.i
		for p.i < len(p.s) && p.s[p.i] != ' ' && p.s[p.i] != '\t' {
			p.i++
		}
		return Blank(p.s[start:p.i]), nil
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.s[p.i])
	}
}

func (p *ntParser) literal() (Term, error) {
	// p.s[p.i] == '"'. Find the closing unescaped quote.
	j := p.i + 1
	for j < len(p.s) {
		if p.s[j] == '\\' {
			j += 2
			continue
		}
		if p.s[j] == '"' {
			break
		}
		j++
	}
	if j >= len(p.s) {
		return Term{}, fmt.Errorf("unterminated literal")
	}
	lex := unescapeLiteral(p.s[p.i+1 : j])
	p.i = j + 1
	// Optional language tag or datatype.
	if strings.HasPrefix(p.rest(), "@") {
		p.i++
		start := p.i
		for p.i < len(p.s) && p.s[p.i] != ' ' && p.s[p.i] != '\t' {
			p.i++
		}
		return LangLiteral(lex, p.s[start:p.i]), nil
	}
	if strings.HasPrefix(p.rest(), "^^<") {
		p.i += 3
		end := strings.IndexByte(p.s[p.i:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated datatype IRI")
		}
		dt := p.s[p.i : p.i+end]
		p.i += end + 1
		return TypedLiteral(lex, dt), nil
	}
	return Literal(lex), nil
}
