package rdf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNTriplesRoundTrip(t *testing.T) {
	ts := []Triple{
		T(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o")),
		T(IRI("http://x/s"), IRI("http://x/p"), Literal("plain value")),
		T(IRI("http://x/s"), IRI("http://x/p"), TypedLiteral("42", XSDInteger)),
		T(IRI("http://x/s"), IRI("http://x/p"), LangLiteral("hello", "en")),
		T(Blank("b0"), IRI("http://x/p"), Literal(`quoted "text" and \ backslash`)),
		T(IRI("http://x/s"), IRI("http://x/p"), Literal("line1\nline2\ttabbed")),
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, ts); err != nil {
		t.Fatalf("WriteNTriples: %v", err)
	}
	got, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("got %d triples, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Errorf("triple %d: got %v, want %v", i, got[i], ts[i])
		}
	}
}

func TestReadNTriplesSkipsCommentsAndBlanks(t *testing.T) {
	in := `# a comment

<http://x/s> <http://x/p> "v" .
   # indented comment
<http://x/s2> <http://x/p> "v2" .
`
	ts, err := ReadNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p> "v"`,             // missing dot
		`<http://x/s <http://x/p> "v" .`,            // unterminated IRI
		`<http://x/s> <http://x/p> "unterminated .`, // unterminated literal
		`<http://x/s> <http://x/p> "v"^^<missing .`, // unterminated datatype
		`<http://x/s> .`,                            // too few terms
		`% <http://x/p> "v" .`,                      // junk first char
	}
	for _, in := range bad {
		if _, err := ReadNTriples(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed input %q", in)
		}
	}
}

func TestNTriplesRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(n%20) + 1
		ts := make([]Triple, k)
		for i := range ts {
			s := randomTerm(r)
			for s.IsLiteral() {
				s = randomTerm(r)
			}
			p := IRI("http://t.example/p" + string(rune('a'+r.Intn(5))))
			ts[i] = T(s, p, randomTerm(r))
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, ts); err != nil {
			return false
		}
		got, err := ReadNTriples(&buf)
		if err != nil || len(got) != len(ts) {
			return false
		}
		for i := range ts {
			if got[i] != ts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
