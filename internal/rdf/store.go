package rdf

import (
	"sort"
	"sync"
)

// Store is an in-memory triple store with three permutation indexes
// (SPO, POS, OSP) providing efficient lookups for every single- or
// two-term-bound pattern. It is safe for concurrent use.
//
// The store deduplicates triples: adding the same triple twice is a no-op
// for the second call. Statements (annotated triples) are kept separately by
// AddStatement; the same triple may carry many statements with distinct
// provenances.
type Store struct {
	mu sync.RWMutex

	// spo/pos/osp map first term key -> second term key -> set of triples.
	spo map[string]map[string][]Triple
	pos map[string]map[string][]Triple
	osp map[string]map[string][]Triple

	// present deduplicates triples by Triple.Key.
	present map[string]struct{}
	size    int

	// statements groups annotated statements by triple key.
	statements map[string][]Statement
	nstmts     int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		spo:        make(map[string]map[string][]Triple),
		pos:        make(map[string]map[string][]Triple),
		osp:        make(map[string]map[string][]Triple),
		present:    make(map[string]struct{}),
		statements: make(map[string][]Statement),
	}
}

// Add inserts a triple. It reports whether the triple was newly added
// (false means it was already present).
func (st *Store) Add(t Triple) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.addLocked(t)
}

func (st *Store) addLocked(t Triple) bool {
	k := t.Key()
	if _, ok := st.present[k]; ok {
		return false
	}
	st.present[k] = struct{}{}
	st.size++
	insert(st.spo, t.Subject.Key(), t.Predicate.Key(), t)
	insert(st.pos, t.Predicate.Key(), t.Object.Key(), t)
	insert(st.osp, t.Object.Key(), t.Subject.Key(), t)
	return true
}

func insert(idx map[string]map[string][]Triple, k1, k2 string, t Triple) {
	m, ok := idx[k1]
	if !ok {
		m = make(map[string][]Triple)
		idx[k1] = m
	}
	m[k2] = append(m[k2], t)
}

// AddAll inserts every triple in ts and returns the number newly added.
func (st *Store) AddAll(ts []Triple) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, t := range ts {
		if st.addLocked(t) {
			n++
		}
	}
	return n
}

// AddStatement inserts the statement's triple (deduplicated) and records the
// annotated statement alongside it. Duplicate statements (same triple and
// same provenance) are dropped.
func (st *Store) AddStatement(s Statement) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.addLocked(s.Triple)
	k := s.Triple.Key()
	for _, prev := range st.statements[k] {
		if prev.Provenance == s.Provenance {
			return
		}
	}
	st.statements[k] = append(st.statements[k], s)
	st.nstmts++
}

// StatementsFor returns the annotated statements recorded for a triple.
// The returned slice must not be modified.
func (st *Store) StatementsFor(t Triple) []Statement {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.statements[t.Key()]
}

// Len returns the number of distinct triples in the store.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.size
}

// StatementCount returns the number of annotated statements in the store.
func (st *Store) StatementCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.nstmts
}

// Contains reports whether the exact triple is present.
func (st *Store) Contains(t Triple) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.present[t.Key()]
	return ok
}

// Match returns all triples matching the pattern; zero-valued terms act as
// wildcards. The result is a fresh slice in deterministic (sorted) order.
func (st *Store) Match(s, p, o Term) []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()

	var out []Triple
	sw, pw, ow := s.IsZero(), p.IsZero(), o.IsZero()
	switch {
	case !sw && !pw: // S P ?
		for _, t := range st.spo[s.Key()][p.Key()] {
			if ow || t.Object == o {
				out = append(out, t)
			}
		}
	case !sw: // S ? ?
		for _, byP := range st.spo[s.Key()] {
			for _, t := range byP {
				if ow || t.Object == o {
					out = append(out, t)
				}
			}
		}
	case !pw: // ? P ?
		if !ow { // ? P O
			out = append(out, st.pos[p.Key()][o.Key()]...)
			break
		}
		for _, byO := range st.pos[p.Key()] {
			out = append(out, byO...)
		}
	case !ow: // ? ? O
		for _, byS := range st.osp[o.Key()] {
			out = append(out, byS...)
		}
	default: // ? ? ?
		for _, byP := range st.spo {
			for _, ts := range byP {
				out = append(out, ts...)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Subjects returns the distinct subjects of triples matching (?, p, o);
// zero-valued terms act as wildcards.
func (st *Store) Subjects(p, o Term) []Term {
	ts := st.Match(Term{}, p, o)
	return distinct(ts, func(t Triple) Term { return t.Subject })
}

// Objects returns the distinct objects of triples matching (s, p, ?);
// zero-valued terms act as wildcards.
func (st *Store) Objects(s, p Term) []Term {
	ts := st.Match(s, p, Term{})
	return distinct(ts, func(t Triple) Term { return t.Object })
}

// Predicates returns the distinct predicates of triples matching (s, ?, o);
// zero-valued terms act as wildcards.
func (st *Store) Predicates(s, o Term) []Term {
	ts := st.Match(s, Term{}, o)
	return distinct(ts, func(t Triple) Term { return t.Predicate })
}

func distinct(ts []Triple, pick func(Triple) Term) []Term {
	seen := make(map[string]struct{}, len(ts))
	var out []Term
	for _, t := range ts {
		term := pick(t)
		k := term.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, term)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// All returns every triple in deterministic order.
func (st *Store) All() []Triple { return st.Match(Term{}, Term{}, Term{}) }

// AllStatements returns every annotated statement grouped arbitrarily by
// triple but in deterministic overall order.
func (st *Store) AllStatements() []Statement {
	st.mu.RLock()
	keys := make([]string, 0, len(st.statements))
	for k := range st.statements {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Statement, 0, st.nstmts)
	for _, k := range keys {
		out = append(out, st.statements[k]...)
	}
	st.mu.RUnlock()
	return out
}

// Remove deletes a triple and its statements. It reports whether the triple
// was present.
func (st *Store) Remove(t Triple) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	k := t.Key()
	if _, ok := st.present[k]; !ok {
		return false
	}
	delete(st.present, k)
	st.size--
	st.nstmts -= len(st.statements[k])
	delete(st.statements, k)
	removeFrom(st.spo, t.Subject.Key(), t.Predicate.Key(), t)
	removeFrom(st.pos, t.Predicate.Key(), t.Object.Key(), t)
	removeFrom(st.osp, t.Object.Key(), t.Subject.Key(), t)
	return true
}

func removeFrom(idx map[string]map[string][]Triple, k1, k2 string, t Triple) {
	m := idx[k1]
	ts := m[k2]
	for i, cand := range ts {
		if cand == t {
			ts = append(ts[:i], ts[i+1:]...)
			break
		}
	}
	if len(ts) == 0 {
		delete(m, k2)
		if len(m) == 0 {
			delete(idx, k1)
		}
	} else {
		m[k2] = ts
	}
}
