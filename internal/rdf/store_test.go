package rdf

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func tri(s, p, o string) Triple {
	return T(AKB.IRI(s), AKB.IRI(p), Literal(o))
}

func TestStoreAddAndContains(t *testing.T) {
	st := NewStore()
	a := tri("s1", "p1", "o1")
	if !st.Add(a) {
		t.Fatal("first Add returned false")
	}
	if st.Add(a) {
		t.Fatal("duplicate Add returned true")
	}
	if !st.Contains(a) {
		t.Fatal("Contains false after Add")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}

func TestStoreMatchPatterns(t *testing.T) {
	st := NewStore()
	triples := []Triple{
		tri("s1", "p1", "o1"),
		tri("s1", "p1", "o2"),
		tri("s1", "p2", "o1"),
		tri("s2", "p1", "o1"),
		tri("s2", "p2", "o3"),
	}
	st.AddAll(triples)

	s1 := AKB.IRI("s1")
	p1 := AKB.IRI("p1")
	o1 := Literal("o1")

	tests := []struct {
		name    string
		s, p, o Term
		want    int
	}{
		{"SPO exact hit", s1, p1, o1, 1},
		{"SPO exact miss", s1, p1, Literal("nope"), 0},
		{"SP?", s1, p1, Term{}, 2},
		{"S??", s1, Term{}, Term{}, 3},
		{"?P?", Term{}, p1, Term{}, 3},
		{"?PO", Term{}, p1, o1, 2},
		{"??O", Term{}, Term{}, o1, 3},
		{"S?O", s1, Term{}, o1, 2},
		{"???", Term{}, Term{}, Term{}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := st.Match(tc.s, tc.p, tc.o)
			if len(got) != tc.want {
				t.Errorf("Match returned %d triples, want %d: %v", len(got), tc.want, got)
			}
			for i := 1; i < len(got); i++ {
				if got[i-1].Compare(got[i]) >= 0 {
					t.Errorf("Match result not sorted at %d", i)
				}
			}
		})
	}
}

func TestStoreDistinctAccessors(t *testing.T) {
	st := NewStore()
	st.AddAll([]Triple{
		tri("s1", "p1", "o1"),
		tri("s2", "p1", "o1"),
		tri("s1", "p2", "o2"),
	})
	if got := st.Subjects(AKB.IRI("p1"), Literal("o1")); len(got) != 2 {
		t.Errorf("Subjects = %v, want 2", got)
	}
	if got := st.Objects(AKB.IRI("s1"), Term{}); len(got) != 2 {
		t.Errorf("Objects = %v, want 2", got)
	}
	if got := st.Predicates(AKB.IRI("s1"), Term{}); len(got) != 2 {
		t.Errorf("Predicates = %v, want 2", got)
	}
}

func TestStoreRemove(t *testing.T) {
	st := NewStore()
	a := tri("s", "p", "o")
	b := tri("s", "p", "o2")
	st.Add(a)
	st.Add(b)
	st.AddStatement(S(a, Provenance{Source: "w", Extractor: "x"}, 0.9))

	if !st.Remove(a) {
		t.Fatal("Remove returned false for present triple")
	}
	if st.Remove(a) {
		t.Fatal("Remove returned true for absent triple")
	}
	if st.Contains(a) {
		t.Fatal("triple still present after Remove")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if st.StatementCount() != 0 {
		t.Fatalf("StatementCount = %d, want 0", st.StatementCount())
	}
	if got := st.Match(Term{}, AKB.IRI("p"), Term{}); len(got) != 1 {
		t.Fatalf("index not cleaned: %v", got)
	}
}

func TestStoreStatements(t *testing.T) {
	st := NewStore()
	a := tri("s", "p", "o")
	p1 := Provenance{Source: "siteA", Extractor: "domx"}
	p2 := Provenance{Source: "siteB", Extractor: "textx"}
	st.AddStatement(S(a, p1, 0.8))
	st.AddStatement(S(a, p2, 0.5))
	st.AddStatement(S(a, p1, 0.9)) // same provenance: dropped

	got := st.StatementsFor(a)
	if len(got) != 2 {
		t.Fatalf("StatementsFor = %d statements, want 2", len(got))
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (statements share one triple)", st.Len())
	}
	if st.StatementCount() != 2 {
		t.Fatalf("StatementCount = %d, want 2", st.StatementCount())
	}
	all := st.AllStatements()
	if len(all) != 2 {
		t.Fatalf("AllStatements = %d, want 2", len(all))
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	st := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				tr := tri("s", "p", string(rune('a'+r.Intn(26))))
				st.Add(tr)
				st.Contains(tr)
				st.Match(Term{}, AKB.IRI("p"), Term{})
			}
		}(g)
	}
	wg.Wait()
	if st.Len() > 26 {
		t.Fatalf("Len = %d, want <= 26 (dedup under concurrency)", st.Len())
	}
}

// Property: after adding any set of triples, Len equals the number of
// distinct triples, and every added triple is found by every pattern that
// matches it.
func TestStoreInvariantsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		st := NewStore()
		distinctKeys := map[string]struct{}{}
		var added []Triple
		for i := 0; i < int(n%40)+1; i++ {
			tr := T(
				AKB.IRI(string(rune('a'+r.Intn(4)))),
				AKB.IRI(string(rune('p'+r.Intn(3)))),
				Literal(string(rune('x'+r.Intn(3)))),
			)
			st.Add(tr)
			distinctKeys[tr.Key()] = struct{}{}
			added = append(added, tr)
		}
		if st.Len() != len(distinctKeys) {
			return false
		}
		for _, tr := range added {
			if !st.Contains(tr) {
				return false
			}
			found := false
			for _, got := range st.Match(tr.Subject, Term{}, Term{}) {
				if got == tr {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatementValid(t *testing.T) {
	good := S(tri("s", "p", "o"), Provenance{Source: "w", Extractor: "x"}, 0.5)
	if err := good.Valid(); err != nil {
		t.Errorf("valid statement rejected: %v", err)
	}
	bad := []Statement{
		S(T(Literal("s"), AKB.IRI("p"), Literal("o")), Provenance{}, 0.5),
		S(T(AKB.IRI("s"), Literal("p"), Literal("o")), Provenance{}, 0.5),
		S(tri("s", "p", "o"), Provenance{}, 1.5),
		S(tri("s", "p", "o"), Provenance{}, -0.1),
		S(T(IRI(""), AKB.IRI("p"), Literal("o")), Provenance{}, 0.5),
	}
	for i, s := range bad {
		if err := s.Valid(); err == nil {
			t.Errorf("bad statement %d accepted", i)
		}
	}
}

func TestProvenanceKeys(t *testing.T) {
	p := Provenance{Source: "imdb.example", Extractor: "domx", Document: "page7"}
	if p.Key() == p.SourceExtractorKey() {
		t.Error("Key and SourceExtractorKey must differ when Document set")
	}
	q := p
	q.Document = ""
	if q.SourceExtractorKey() != p.SourceExtractorKey() {
		t.Error("SourceExtractorKey must ignore Document")
	}
	if p.String() == "" || q.String() == "" {
		t.Error("String must be non-empty")
	}
}

func TestTripleItemKey(t *testing.T) {
	a := tri("s", "p", "o1")
	b := tri("s", "p", "o2")
	c := tri("s", "q", "o1")
	if a.ItemKey() != b.ItemKey() {
		t.Error("same (s,p) must share ItemKey")
	}
	if a.ItemKey() == c.ItemKey() {
		t.Error("different predicates must not share ItemKey")
	}
}
