// Package querystream models Web search query logs and generates the
// synthetic stand-in for the paper's 29,283,918-record Google+AOL stream
// (scaled down 100x by default). Query-stream attribute extraction
// (internal/extract/qsx) mines attribute mentions like "what is the capital
// of Fooland" out of these records; Table 3 of the paper is computed over
// this stream.
package querystream

import (
	"fmt"
	"math/rand"
	"strings"

	"akb/internal/kb"
)

// Record is a single query-log record.
type Record struct {
	// Text is the raw query string.
	Text string
	// Origin identifies the contributing log ("google" or "aol").
	Origin string
}

// Stream is an ordered collection of query records.
type Stream struct {
	Records []Record
}

// Len returns the number of records.
func (s *Stream) Len() int { return len(s.Records) }

// Combine concatenates streams, mirroring the paper's combination of the
// Google and AOL logs into one stream.
func Combine(streams ...*Stream) *Stream {
	total := 0
	for _, s := range streams {
		total += len(s.Records)
	}
	out := &Stream{Records: make([]Record, 0, total)}
	for _, s := range streams {
		out.Records = append(out.Records, s.Records...)
	}
	return out
}

// ClassPlan controls the planted attribute-question records for one class.
type ClassPlan struct {
	// Class names the target class.
	Class string
	// Relevant is the number of records that mention a class entity inside
	// an attribute-question pattern (the "Relevant Query Records" column of
	// Table 3, scaled).
	Relevant int
	// Credible is the number of distinct attributes that should accumulate
	// enough well-formed support to pass the extractor's credibility
	// threshold (the "Credible Attributes" column). Zero models Table 3's
	// Hotel row: relevant records exist but support is too diffuse.
	Credible int
	// NoncrediblePool is the number of additional attributes mentioned only
	// a sub-threshold number of times.
	NoncrediblePool int
	// MeaninglessShare is the fraction of relevant records that ask about
	// meaningless attributes ("photos", "lyrics", ...) which the filtering
	// rules must reject. Defaults to 0.05.
	MeaninglessShare float64
}

// DefaultPlans returns per-class plans reproducing the shape of Table 3 at
// 1/100 scale: relevant-record counts are the paper's divided by 100.
func DefaultPlans() []ClassPlan {
	return []ClassPlan{
		{Class: "Book", Relevant: 2596, Credible: 96, NoncrediblePool: 30},
		{Class: "Film", Relevant: 4037, Credible: 59, NoncrediblePool: 40},
		{Class: "Country", Relevant: 3932, Credible: 182, NoncrediblePool: 50},
		{Class: "University", Relevant: 246, Credible: 20, NoncrediblePool: 20},
		{Class: "Hotel", Relevant: 155, Credible: 0, NoncrediblePool: 60},
	}
}

// GenConfig controls stream generation.
type GenConfig struct {
	// Seed drives all randomness.
	Seed int64
	// TotalRecords is the stream size including noise; defaults to 292,839
	// (the paper's 29,283,918 scaled by 100).
	TotalRecords int
	// Threshold is the support count the downstream extractor requires; the
	// generator plants credible attributes with at least this many
	// well-formed mentions and non-credible ones with fewer.
	Threshold int
	// Plans defaults to DefaultPlans().
	Plans []ClassPlan
}

// DefaultGenConfig returns the full-scale (1/100 of the paper) config.
func DefaultGenConfig() GenConfig {
	return GenConfig{Seed: 1, TotalRecords: 292839, Threshold: 5, Plans: DefaultPlans()}
}

// questionPatterns render an (attribute, entity) mention as a query. These
// are exactly the surface forms the paper's improved extractor matches:
// "what/how/when/who is the A of (the/a/an) E", "the A of (the/a/an) E",
// and "E's A".
var questionPatterns = []func(a, e string) string{
	func(a, e string) string { return "what is the " + a + " of " + e },
	func(a, e string) string { return "what is the " + a + " of the " + e },
	func(a, e string) string { return "how is the " + a + " of " + e },
	func(a, e string) string { return "when is the " + a + " of " + e },
	func(a, e string) string { return "who is the " + a + " of " + e },
	func(a, e string) string { return "the " + a + " of " + e },
	func(a, e string) string { return "the " + a + " of a " + e },
	func(a, e string) string { return e + "'s " + a },
}

// MeaninglessAttributes are surface attributes users ask about that carry no
// ontological content; the extractor's filtering rules must drop them.
var MeaninglessAttributes = []string{
	"photos", "pictures", "images", "lyrics", "meaning", "wiki", "review",
	"reviews", "trailer", "wallpaper", "news", "quotes", "cast photos",
	"full movie", "pdf", "summary",
}

// Generate builds a synthetic combined query stream over the world's
// classes. The planted structure makes the class-level outcomes of Table 3
// emerge from the extractor: per-class relevant-record counts match the
// plan, and the number of attributes passing (threshold, filter rules)
// equals the plan's Credible count.
func Generate(w *kb.World, cfg GenConfig) *Stream {
	if cfg.TotalRecords == 0 {
		cfg.TotalRecords = 292839
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 5
	}
	if cfg.Plans == nil {
		cfg.Plans = DefaultPlans()
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	var records []Record

	for _, plan := range cfg.Plans {
		records = append(records, generateClassRecords(w, plan, cfg.Threshold, r)...)
	}
	noise := cfg.TotalRecords - len(records)
	for i := 0; i < noise; i++ {
		records = append(records, noiseRecord(w, r))
	}
	// Shuffle so class records are interleaved like a real log.
	r.Shuffle(len(records), func(i, j int) {
		records[i], records[j] = records[j], records[i]
	})
	return &Stream{Records: records}
}

func generateClassRecords(w *kb.World, plan ClassPlan, threshold int, r *rand.Rand) []Record {
	entities := w.EntityNames(plan.Class)
	if len(entities) == 0 {
		return nil
	}
	if plan.MeaninglessShare == 0 {
		plan.MeaninglessShare = 0.05
	}
	meaningless := int(float64(plan.Relevant) * plan.MeaninglessShare)
	budget := plan.Relevant - meaningless

	// The attribute pool is stride-sampled across the class's full attribute
	// universe, which extends past what the KBs record: query streams
	// surface attributes no KB has, which is why Table 3's Book row (96)
	// exceeds the combined KB attribute count (60).
	poolSize := plan.Credible + plan.NoncrediblePool
	var pool []kb.Attribute
	if cls := w.Ontology.Class(plan.Class); cls != nil && len(cls.Attributes) >= poolSize {
		universe := cls.Attributes
		meaningless := make(map[string]bool, len(MeaninglessAttributes))
		for _, m := range MeaninglessAttributes {
			meaningless[m] = true
		}
		chosen := make(map[int]bool, poolSize)
		pool = make([]kb.Attribute, 0, poolSize)
		// Credible attributes stride across the whole universe — including
		// the span no KB records — so the query stream genuinely augments
		// the ontology. Names on the meaningless-filter list are skipped:
		// a "credible" attribute the extractor is required to reject would
		// contradict the plan.
		for i := 0; i < plan.Credible; i++ {
			idx := i * len(universe) / plan.Credible
			for chosen[idx] || meaningless[universe[idx].Canonical] {
				idx = (idx + 1) % len(universe)
			}
			chosen[idx] = true
			pool = append(pool, universe[idx])
		}
		for j := 0; len(pool) < poolSize; j++ {
			if !chosen[j] {
				chosen[j] = true
				pool = append(pool, universe[j])
			}
		}
	} else {
		pool = kb.AttributeUniverse(plan.Class, poolSize)
	}

	// Allocate mentions: credible attributes get >= threshold each,
	// non-credible get 1..threshold-1, and any remaining budget goes to the
	// credible attributes Zipf-style (head attributes asked most).
	mentions := make([]int, poolSize)
	reserved := plan.Credible * threshold // floor for credible attributes
	spent := 0
	for i := plan.Credible; i < poolSize && spent < budget-reserved; i++ {
		m := 1 + (i % (threshold - 1))
		if spent+m > budget-reserved {
			m = budget - reserved - spent
		}
		mentions[i] = m
		spent += m
	}
	for i := 0; i < plan.Credible; i++ {
		mentions[i] = threshold
		spent += threshold
	}
	if spent > budget {
		panic(fmt.Sprintf("querystream: plan for %s over budget (%d > %d): raise Relevant or lower Credible",
			plan.Class, spent, budget))
	}
	// Zipf-ish distribution of the leftover over credible attributes; when
	// the class has none (Table 3's Hotel row), top non-credible attributes
	// up while keeping every one strictly below the threshold.
	left := budget - spent
	for left > 0 && plan.Credible > 0 {
		for i := 0; i < plan.Credible && left > 0; i++ {
			add := left / (i + 2)
			if add == 0 {
				add = 1
			}
			if add > left {
				add = left
			}
			mentions[i] += add
			left -= add
		}
	}
	for i := plan.Credible; i < poolSize && left > 0; i++ {
		add := threshold - 1 - mentions[i]
		if add > left {
			add = left
		}
		if add > 0 {
			mentions[i] += add
			left -= add
		}
	}
	if left > 0 {
		panic(fmt.Sprintf("querystream: plan for %s cannot absorb %d leftover mentions below threshold: grow NoncrediblePool",
			plan.Class, left))
	}

	var out []Record
	emit := func(attr string) {
		e := entities[r.Intn(len(entities))]
		p := questionPatterns[r.Intn(len(questionPatterns))]
		out = append(out, Record{Text: p(attr, e), Origin: origin(r)})
	}
	for i, m := range mentions {
		attr := pool[i].Canonical
		for k := 0; k < m; k++ {
			emit(attr)
		}
	}
	for k := 0; k < meaningless; k++ {
		emit(MeaninglessAttributes[r.Intn(len(MeaninglessAttributes))])
	}
	return out
}

func origin(r *rand.Rand) string {
	if r.Intn(2) == 0 {
		return "google"
	}
	return "aol"
}

var noiseSites = []string{
	"facebook", "youtube", "weather", "maps", "craigslist", "ebay", "gmail",
	"netflix", "twitter", "amazon",
}

var noiseTails = []string{
	"login", "download", "free online", "near me", "customer service",
	"phone number", "hours", "coupon", "sale",
}

// noiseRecord produces a record that must not count as relevant for any
// class: either it has no attribute-question pattern, or its pattern names
// an entity outside every class's entity set.
func noiseRecord(w *kb.World, r *rand.Rand) Record {
	switch r.Intn(4) {
	case 0: // navigational
		return Record{
			Text:   noiseSites[r.Intn(len(noiseSites))] + " " + noiseTails[r.Intn(len(noiseTails))],
			Origin: origin(r),
		}
	case 1: // entity mention without a pattern
		classes := w.Ontology.ClassNames()
		cls := classes[r.Intn(len(classes))]
		names := w.EntityNames(cls)
		return Record{
			Text:   names[r.Intn(len(names))] + " " + noiseTails[r.Intn(len(noiseTails))],
			Origin: origin(r),
		}
	case 2: // pattern with an unknown entity
		return Record{
			Text:   "what is the capital of " + kb.RandomProperNoun(r, 3) + " Nowhere",
			Origin: origin(r),
		}
	default: // word salad
		return Record{
			Text:   strings.ToLower(kb.RandomProperNoun(r, 2) + " " + kb.RandomProperNoun(r, 2)),
			Origin: origin(r),
		}
	}
}
