package querystream

import (
	"strings"
	"testing"

	"akb/internal/kb"
)

func smallWorld() *kb.World {
	return kb.NewWorld(kb.WorldConfig{Seed: 2, EntitiesPerClass: 20, AttrsPerEntity: 12})
}

func smallConfig() GenConfig {
	return GenConfig{
		Seed:         2,
		TotalRecords: 5000,
		Threshold:    5,
		Plans: []ClassPlan{
			{Class: "Book", Relevant: 300, Credible: 10, NoncrediblePool: 8},
			{Class: "Film", Relevant: 400, Credible: 6, NoncrediblePool: 10},
			{Class: "Hotel", Relevant: 40, Credible: 0, NoncrediblePool: 15},
		},
	}
}

func TestGenerateTotalSize(t *testing.T) {
	w := smallWorld()
	s := Generate(w, smallConfig())
	if s.Len() != 5000 {
		t.Fatalf("stream size = %d, want 5000", s.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := smallWorld()
	a := Generate(w, smallConfig())
	b := Generate(smallWorld(), smallConfig())
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %q vs %q", i, a.Records[i].Text, b.Records[i].Text)
		}
	}
}

func TestGenerateOrigins(t *testing.T) {
	s := Generate(smallWorld(), smallConfig())
	counts := map[string]int{}
	for _, rec := range s.Records {
		counts[rec.Origin]++
	}
	if counts["google"] == 0 || counts["aol"] == 0 {
		t.Fatalf("origin mix = %v, want both google and aol", counts)
	}
	if len(counts) != 2 {
		t.Fatalf("unexpected origins: %v", counts)
	}
}

// countPlanted counts records that textually embed an entity of the class in
// a question pattern; it is an upper bound check on the generator's
// bookkeeping, independent of the extractor.
func countPlanted(w *kb.World, s *Stream, class string) int {
	names := map[string]bool{}
	for _, n := range w.EntityNames(class) {
		names[n] = true
	}
	count := 0
	for _, rec := range s.Records {
		q := rec.Text
		matched := false
		if i := strings.Index(q, "'s "); i > 0 && names[q[:i]] {
			matched = true
		}
		for j := 0; !matched; {
			k := strings.Index(q[j:], " of ")
			if k < 0 {
				break
			}
			j += k + len(" of ")
			suffix := q[j:]
			suffix = strings.TrimPrefix(suffix, "the ")
			suffix = strings.TrimPrefix(suffix, "a ")
			if names[suffix] {
				matched = true
			}
		}
		if matched {
			count++
		}
	}
	return count
}

func TestGeneratePlantsRelevantCounts(t *testing.T) {
	w := smallWorld()
	cfg := smallConfig()
	s := Generate(w, cfg)
	for _, plan := range cfg.Plans {
		got := countPlanted(w, s, plan.Class)
		if got != plan.Relevant {
			t.Errorf("%s: planted %d relevant records, want %d", plan.Class, got, plan.Relevant)
		}
	}
}

func TestGenerateSupportAllocation(t *testing.T) {
	w := smallWorld()
	cfg := smallConfig()
	s := Generate(w, cfg)
	// Count per-attribute mention support for Book the way the extractor
	// will: attribute = text between the pattern head and " of <entity>".
	names := map[string]bool{}
	for _, n := range w.EntityNames("Book") {
		names[n] = true
	}
	support := map[string]int{}
	for _, rec := range s.Records {
		q := rec.Text
		for _, head := range []string{"what is the ", "how is the ", "when is the ", "who is the ", "the "} {
			if !strings.HasPrefix(q, head) {
				continue
			}
			rest := q[len(head):]
			j := 0
			for {
				k := strings.Index(rest[j:], " of ")
				if k < 0 {
					break
				}
				attr := rest[:j+k]
				suffix := rest[j+k+len(" of "):]
				suffix = strings.TrimPrefix(suffix, "the ")
				suffix = strings.TrimPrefix(suffix, "a ")
				if names[suffix] {
					support[attr]++
					break
				}
				j += k + len(" of ")
			}
			break
		}
		if i := strings.Index(q, "'s "); i > 0 && names[q[:i]] {
			support[q[i+len("'s "):]]++
		}
	}
	credible := 0
	meaningless := map[string]bool{}
	for _, m := range MeaninglessAttributes {
		meaningless[m] = true
	}
	for attr, n := range support {
		if n >= cfg.Threshold && !meaningless[attr] {
			credible++
		}
	}
	if credible != 10 {
		t.Errorf("Book credible attributes = %d, want 10", credible)
	}
}

func TestHotelPlanYieldsNoCredible(t *testing.T) {
	w := smallWorld()
	cfg := smallConfig()
	s := Generate(w, cfg)
	names := map[string]bool{}
	for _, n := range w.EntityNames("Hotel") {
		names[n] = true
	}
	support := map[string]int{}
	for _, rec := range s.Records {
		if i := strings.Index(rec.Text, "'s "); i > 0 && names[rec.Text[:i]] {
			support[rec.Text[i+3:]]++
		}
	}
	meaningless := map[string]bool{}
	for _, m := range MeaninglessAttributes {
		meaningless[m] = true
	}
	for attr, n := range support {
		if n >= cfg.Threshold && !meaningless[attr] {
			t.Errorf("Hotel attribute %q has support %d >= threshold", attr, n)
		}
	}
}

func TestCombine(t *testing.T) {
	a := &Stream{Records: []Record{{Text: "one", Origin: "google"}}}
	b := &Stream{Records: []Record{{Text: "two", Origin: "aol"}, {Text: "three", Origin: "aol"}}}
	c := Combine(a, b)
	if c.Len() != 3 {
		t.Fatalf("combined length = %d, want 3", c.Len())
	}
	if c.Records[0].Text != "one" || c.Records[2].Text != "three" {
		t.Error("combine order wrong")
	}
}

func TestDefaultPlansMatchTable3Shape(t *testing.T) {
	plans := DefaultPlans()
	byClass := map[string]ClassPlan{}
	for _, p := range plans {
		byClass[p.Class] = p
	}
	// Paper's relevant-record counts scaled by 100.
	want := map[string]int{
		"Book": 2596, "Film": 4037, "Country": 3932, "University": 246, "Hotel": 155,
	}
	for cls, rel := range want {
		if byClass[cls].Relevant != rel {
			t.Errorf("%s relevant = %d, want %d", cls, byClass[cls].Relevant, rel)
		}
	}
	// Credible-attribute ordering from Table 3: Country > Book > Film >
	// University > Hotel (N/A).
	if !(byClass["Country"].Credible > byClass["Book"].Credible &&
		byClass["Book"].Credible > byClass["Film"].Credible &&
		byClass["Film"].Credible > byClass["University"].Credible &&
		byClass["University"].Credible > byClass["Hotel"].Credible &&
		byClass["Hotel"].Credible == 0) {
		t.Errorf("credible ordering broken: %+v", byClass)
	}
}

func TestFullScaleGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale stream generation skipped in -short")
	}
	w := kb.NewWorld(kb.DefaultWorldConfig())
	s := Generate(w, DefaultGenConfig())
	if s.Len() != 292839 {
		t.Fatalf("full stream = %d records, want 292839 (29,283,918 / 100)", s.Len())
	}
}
