package core

import (
	"testing"

	"akb/internal/fusion"
)

func TestPipelineEndToEnd(t *testing.T) {
	res := Run(DefaultConfig())

	if res.World == nil || res.KBX == nil || res.QSX == nil || res.DOMX == nil || res.TextX == nil {
		t.Fatal("pipeline stages missing")
	}
	if len(res.Statements) == 0 {
		t.Fatal("no statements extracted")
	}
	if res.Fused() == nil || len(res.Fused().Decisions) == 0 {
		t.Fatal("no fusion decisions")
	}
	if res.Augmented.Len() == 0 {
		t.Fatal("no triples in the augmented KB")
	}
	// The paper's goal: high precision and recall for the fused knowledge.
	if p := res.FusionMetrics.Precision(); p < 0.85 {
		t.Errorf("fusion precision = %.3f, want >= 0.85 (%+v)", p, res.FusionMetrics)
	}
	if r := res.FusionMetrics.Recall(); r < 0.7 {
		t.Errorf("fusion recall = %.3f, want >= 0.7 (%+v)", r, res.FusionMetrics)
	}
}

func TestPipelineStagesReported(t *testing.T) {
	res := Run(DefaultConfig())
	wantStages := []string{"extract/kbx", "extract/qsx", "extract/domx", "extract/textx"}
	if len(res.Stats()) < len(wantStages)+2 {
		t.Fatalf("got %d stages: %+v", len(res.Stats()), res.Stats())
	}
	for i, w := range wantStages {
		if res.Stats()[i].Stage != w {
			t.Errorf("stage %d = %q, want %q", i, res.Stats()[i].Stage, w)
		}
	}
	// KB extraction is near-perfect; DOM and text are noisier but usable.
	if res.Stats()[0].Precision < 0.9 {
		t.Errorf("kbx precision = %.3f", res.Stats()[0].Precision)
	}
	for _, st := range res.Stats()[2:4] {
		if st.Statements == 0 {
			t.Errorf("%s produced no statements", st.Stage)
		}
		if st.Precision < 0.7 {
			t.Errorf("%s precision = %.3f, want >= 0.7", st.Stage, st.Precision)
		}
	}
}

func TestPipelineGrowthMonotone(t *testing.T) {
	res := Run(DefaultConfig())
	growth := res.Growth()
	if len(growth) != 5 {
		t.Fatalf("growth rows = %d, want 5", len(growth))
	}
	for _, g := range growth {
		if g.KBCombined <= 0 {
			t.Errorf("%s: empty KB seed set", g.Class)
		}
		if g.WithQuery < g.KBCombined {
			t.Errorf("%s: query stage shrank attrs (%d < %d)", g.Class, g.WithQuery, g.KBCombined)
		}
		if g.WithDOM < g.WithQuery {
			t.Errorf("%s: DOM stage shrank attrs (%d < %d)", g.Class, g.WithDOM, g.WithQuery)
		}
		if g.WithText < g.WithDOM {
			t.Errorf("%s: text stage shrank attrs (%d < %d)", g.Class, g.WithText, g.WithDOM)
		}
	}
	// At least one class must show open-Web discovery beyond the seeds.
	grew := false
	for _, g := range growth {
		if g.WithDOM > g.WithQuery {
			grew = true
		}
	}
	if !grew {
		t.Error("DOM extraction discovered nothing beyond seeds in any class")
	}
}

func TestPipelineFusionBeatsBaselineVote(t *testing.T) {
	cfg := DefaultConfig()
	full := Run(cfg)

	cfgVote := cfg
	cfgVote.Method = &fusion.Vote{}
	vote := Run(cfgVote)

	if full.FusionMetrics.F1() < vote.FusionMetrics.F1() {
		t.Errorf("FULL F1 (%.3f) below VOTE F1 (%.3f)",
			full.FusionMetrics.F1(), vote.FusionMetrics.F1())
	}
}

func TestPipelineDeterministic(t *testing.T) {
	a := Run(DefaultConfig())
	b := Run(DefaultConfig())
	if len(a.Statements) != len(b.Statements) {
		t.Fatalf("statement counts differ: %d vs %d", len(a.Statements), len(b.Statements))
	}
	if a.Augmented.Len() != b.Augmented.Len() {
		t.Fatalf("augmented sizes differ: %d vs %d", a.Augmented.Len(), b.Augmented.Len())
	}
	if a.FusionMetrics != b.FusionMetrics {
		t.Fatalf("metrics differ: %+v vs %+v", a.FusionMetrics, b.FusionMetrics)
	}
}

func TestPipelineQSXHotelNA(t *testing.T) {
	res := Run(DefaultConfig())
	rows := res.QSX.Table3()
	for _, row := range rows {
		if row.Class == "Hotel" && row.CredibleAttrs != -1 {
			t.Errorf("Hotel credible = %d, want N/A", row.CredibleAttrs)
		}
	}
}
