package core

import (
	"fmt"
	"strings"

	"akb/internal/resilience"
)

// StageHealth is one supervised stage's outcome in the run's health
// report.
type StageHealth struct {
	// Stage is the supervised stage name (a Stage* constant).
	Stage string
	// Health is the supervisor's verdict for the stage.
	Health resilience.Health
	// Attempts is how many attempts the stage consumed.
	Attempts int
	// Optional records whether the stage was allowed to fail soft.
	Optional bool
	// Err is the final error message for degraded or failed stages.
	Err string
}

// HealthReport aggregates supervised outcomes across the run, including
// stages (substrates, seeds) that emit no statement statistics.
type HealthReport struct {
	// Stages lists every supervised stage in execution order.
	Stages []StageHealth
}

// Stage returns the health entry for a stage name.
func (h HealthReport) Stage(name string) (StageHealth, bool) {
	for _, s := range h.Stages {
		if s.Stage == name {
			return s, true
		}
	}
	return StageHealth{}, false
}

// Degraded returns the names of stages that failed soft, in execution
// order.
func (h HealthReport) Degraded() []string {
	var out []string
	for _, s := range h.Stages {
		if s.Health == resilience.Degraded {
			out = append(out, s.Stage)
		}
	}
	return out
}

// Healthy reports whether every supervised stage completed cleanly.
func (h HealthReport) Healthy() bool {
	for _, s := range h.Stages {
		if s.Health != resilience.OK {
			return false
		}
	}
	return true
}

// String renders a one-line summary ("11 stages, degraded: extract/textx,
// discover").
func (h HealthReport) String() string {
	deg := h.Degraded()
	if len(deg) == 0 {
		return fmt.Sprintf("%d stages, all healthy", len(h.Stages))
	}
	return fmt.Sprintf("%d stages, degraded: %s", len(h.Stages), strings.Join(deg, ", "))
}
