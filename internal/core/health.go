package core

import (
	"fmt"
	"strings"

	"akb/internal/resilience"
)

// StageHealth is one supervised stage's outcome in the run's health
// report.
type StageHealth struct {
	// Stage is the supervised stage name (a Stage* constant).
	Stage string `json:"stage"`
	// Health is the supervisor's verdict for the stage; it serialises as
	// its lowercase string form ("ok", "degraded", ...).
	Health resilience.Health `json:"health"`
	// Attempts is how many attempts the stage consumed.
	Attempts int `json:"attempts"`
	// Optional records whether the stage was allowed to fail soft.
	Optional bool `json:"optional,omitempty"`
	// Err is the final error message for degraded or failed stages.
	Err string `json:"err,omitempty"`
}

// HealthReport aggregates supervised outcomes across the run, including
// stages (substrates, seeds) that emit no statement statistics. It
// serialises with stable lowercase keys so it embeds cleanly in the
// obs.RunReport JSON.
type HealthReport struct {
	// Stages lists every supervised stage in execution order.
	Stages []StageHealth `json:"stages"`
}

// Stage returns the health entry for a stage name.
func (h HealthReport) Stage(name string) (StageHealth, bool) {
	for _, s := range h.Stages {
		if s.Stage == name {
			return s, true
		}
	}
	return StageHealth{}, false
}

// Degraded returns the names of stages that failed soft, in execution
// order.
func (h HealthReport) Degraded() []string {
	var out []string
	for _, s := range h.Stages {
		if s.Health == resilience.Degraded {
			out = append(out, s.Stage)
		}
	}
	return out
}

// Healthy reports whether every supervised stage completed cleanly.
func (h HealthReport) Healthy() bool {
	for _, s := range h.Stages {
		if s.Health != resilience.OK {
			return false
		}
	}
	return true
}

// String renders a one-line summary ("11 stages, degraded: extract/textx,
// discover").
func (h HealthReport) String() string {
	deg := h.Degraded()
	if len(deg) == 0 {
		return fmt.Sprintf("%d stages, all healthy", len(h.Stages))
	}
	return fmt.Sprintf("%d stages, degraded: %s", len(h.Stages), strings.Join(deg, ", "))
}
