package core

import (
	"context"
	"time"

	"akb/internal/align"
	"akb/internal/entitydisc"
	"akb/internal/fusion"
	"akb/internal/kb"
	"akb/internal/querystream"
	"akb/internal/resilience"
	"akb/internal/webgen"
)

// Pipeline is a configured, runnable instance of the Figure-1 framework.
// It is the stable public entry point: callers construct one with New and
// a set of functional options, then execute it with Run. A Pipeline is
// immutable after construction and may be run any number of times; every
// run with the same options produces byte-identical results.
//
// The serving layer (internal/store, internal/serve) and the CLI consume
// this surface rather than the raw Config struct, so Config can keep
// growing fields without breaking callers.
type Pipeline struct {
	cfg Config
}

// Option adjusts a pipeline configuration during New. Options apply in
// order, so later options win when they touch the same setting.
type Option func(*Config)

// New builds a Pipeline from DefaultConfig with the options applied.
func New(opts ...Option) *Pipeline {
	cfg := DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Pipeline{cfg: cfg}
}

// Config returns a copy of the pipeline's resolved configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Run executes the pipeline on the dependency-DAG scheduler under the
// resilience supervisor. It returns a nil Result and a wrapped
// *resilience.StageError when a mandatory stage fails or the context is
// cancelled; optional-stage failures degrade the run (visible through
// Result.Health) but do not error.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	return runPipeline(ctx, p.cfg)
}

// WithConfig replaces the whole base configuration. It composes with the
// other options: list it first to start from an explicit Config instead of
// DefaultConfig, then layer adjustments on top.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithSeed reseeds the run: it sets both the top-level seed and the
// ground-truth world's seed, which is what the CLI's -seed flag always
// meant. Substrate-specific seeds (KBs, stream, sites, corpus) keep their
// configured offsets.
func WithSeed(seed int64) Option {
	return func(c *Config) {
		c.Seed = seed
		c.World.Seed = seed
	}
}

// WithWorld replaces the ground-truth world configuration.
func WithWorld(w kb.WorldConfig) Option {
	return func(c *Config) { c.World = w }
}

// WithScale multiplies the synthetic-substrate sizes by k: entities per
// class, pages per site, documents per class, and the query stream
// (total records and per-class relevant counts) all grow k-fold, so the
// fused KB grows roughly linearly in k. k <= 1 is a no-op. Scaling
// composes with WithSeed and WithWorld when listed after them.
func WithScale(k int) Option {
	return func(c *Config) {
		if k <= 1 {
			return
		}
		c.World.EntitiesPerClass *= k
		c.Sites.PagesPerSite *= k
		c.Corpus.DocsPerClass *= k
		c.Stream.TotalRecords *= k
		// Copy the plan slice so a caller-owned Config (WithConfig) is not
		// mutated through the shared backing array.
		plans := make([]querystream.ClassPlan, len(c.Stream.Plans))
		copy(plans, c.Stream.Plans)
		for i := range plans {
			plans[i].Relevant *= k
			// The noncredible pool must grow with the relevant volume or
			// the generator cannot place the below-threshold remainder.
			plans[i].NoncrediblePool *= k
		}
		c.Stream.Plans = plans
	}
}

// WithParallelism bounds how many independent stages execute concurrently
// on the DAG scheduler; n <= 1 runs strictly serially. Results are
// byte-identical at any value.
func WithParallelism(n int) Option {
	return func(c *Config) { c.Parallelism = n }
}

// WithGranularity selects the fusion source granularity.
func WithGranularity(g fusion.Granularity) Option {
	return func(c *Config) { c.Granularity = g }
}

// WithMethod overrides the fusion method; nil restores the paper's FULL
// composition.
func WithMethod(m fusion.Method) Option {
	return func(c *Config) { c.Method = m }
}

// WithAlignment enables pre-fusion normalisation (synonym merging,
// misspelling correction, sub-attribute identification) with the default
// tuning.
func WithAlignment() Option {
	return func(c *Config) { c.Align = true }
}

// WithAlignmentConfig enables pre-fusion normalisation with explicit
// tuning.
func WithAlignmentConfig(acfg align.Config) Option {
	return func(c *Config) {
		c.Align = true
		c.AlignCfg = acfg
	}
}

// WithEntityDiscovery enables joint entity linking and discovery with the
// default tuning.
func WithEntityDiscovery() Option {
	return func(c *Config) { c.DiscoverEntities = true }
}

// WithEntityDiscoveryConfig enables entity discovery with explicit tuning.
func WithEntityDiscoveryConfig(dcfg entitydisc.Config) Option {
	return func(c *Config) {
		c.DiscoverEntities = true
		c.DiscoverCfg = dcfg
	}
}

// WithListPages enables multi-record list-page generation and extraction
// with the default tuning.
func WithListPages() Option {
	return func(c *Config) { c.ListPages = true }
}

// WithListPagesConfig enables list-page extraction with explicit tuning.
func WithListPagesConfig(lcfg webgen.ListConfig) Option {
	return func(c *Config) {
		c.ListPages = true
		c.ListCfg = lcfg
	}
}

// WithTemporal enables temporal knowledge extraction and timeline fusion.
func WithTemporal() Option {
	return func(c *Config) { c.Temporal = true }
}

// WithFaults injects a deterministic fault plan through the resilience
// harness; nil runs fault-free.
func WithFaults(plan *resilience.FaultPlan) Option {
	return func(c *Config) { c.Faults = plan }
}

// WithRetry overrides the backoff policy for retryable stages.
func WithRetry(policy resilience.RetryPolicy) Option {
	return func(c *Config) { c.Retry = policy }
}

// WithStageTimeout bounds each supervised stage attempt; 0 disables
// per-stage deadlines.
func WithStageTimeout(d time.Duration) Option {
	return func(c *Config) { c.StageTimeout = d }
}

// WithStageHook observes every supervised stage start. With parallelism
// above one the hook fires from concurrent stage goroutines and must be
// safe for concurrent use.
func WithStageHook(hook func(stage string)) Option {
	return func(c *Config) { c.StageHook = hook }
}
