package core

import (
	"testing"

	"akb/internal/extract"
)

func discoveryConfig() Config {
	cfg := DefaultConfig()
	// Low Freebase coverage leaves many world entities unknown to the
	// entity index, so websites and texts mention entities to discover.
	cfg.Freebase.Coverage = 0.5
	cfg.DBpedia.Coverage = 0.4
	cfg.DiscoverEntities = true
	return cfg
}

func TestPipelineEntityDiscovery(t *testing.T) {
	res := Run(discoveryConfig())
	if res.Discovered == nil {
		t.Fatal("discovery did not run")
	}
	if len(res.Discovered.Entities) == 0 {
		t.Fatal("no entities discovered despite 50% KB coverage")
	}
	// Discovered entities must be genuine world entities (the generator
	// renders pages only for real entities), and must not already be in
	// the Freebase-covered index.
	for _, e := range res.Discovered.Entities {
		we, ok := res.World.Entity(e.Name)
		if !ok {
			t.Errorf("discovered entity %q does not exist in the world", e.Name)
			continue
		}
		if we.Class != e.Class {
			t.Errorf("discovered %q class = %q, want %q", e.Name, e.Class, we.Class)
		}
	}
}

func TestPipelineDiscoveryStatementsJoinFusion(t *testing.T) {
	res := Run(discoveryConfig())
	discovered := map[string]bool{}
	for _, e := range res.Discovered.Entities {
		discovered[e.Name] = true
	}
	// At least one fused decision must concern a discovered entity.
	found := false
	for _, d := range res.Fused().Decisions {
		if discovered[extract.AttrFromIRI(d.Item.Subject)] {
			found = true
			break
		}
	}
	if !found {
		t.Error("no fusion decision about a discovered entity")
	}
	// The discover stage must be reported.
	seen := false
	for _, st := range res.Stats() {
		if st.Stage == "discover" {
			seen = true
			if st.Statements == 0 {
				t.Error("discover stage reported zero statements")
			}
		}
	}
	if !seen {
		t.Error("discover stage missing from report")
	}
}

func TestPipelineDiscoveryDisabledByDefault(t *testing.T) {
	res := Run(DefaultConfig())
	if res.Discovered != nil {
		t.Error("discovery ran without being enabled")
	}
	for _, st := range res.Stats() {
		if st.Stage == "discover" {
			t.Error("discover stage present when disabled")
		}
	}
}

func TestPipelineAlignStageReported(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sites.SynonymProb = 0.3
	cfg.Sites.TypoProb = 0.1
	cfg.Align = true
	res := Run(cfg)
	if res.AlignReport == nil {
		t.Fatal("alignment did not run")
	}
	if len(res.AlignReport.Synonyms) == 0 {
		t.Error("no synonyms merged despite 30% synonym labels")
	}
	if res.AlignReport.CorrectedValues == 0 {
		t.Error("no values corrected despite 10% typos")
	}
	seen := false
	for _, st := range res.Stats() {
		if st.Stage == "align" {
			seen = true
		}
	}
	if !seen {
		t.Error("align stage missing from report")
	}
}

func TestPipelineListPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ListPages = true
	res := Run(cfg)
	if res.Lists == nil {
		t.Fatal("list extraction did not run")
	}
	if res.Lists.Regions == 0 || res.Lists.Records == 0 || len(res.Lists.Statements) == 0 {
		t.Fatalf("empty list extraction: %+v", res.Lists)
	}
	seen := false
	for _, st := range res.Stats() {
		if st.Stage == "extract/lists" {
			seen = true
			if st.Precision < 0.8 {
				t.Errorf("list stage precision = %.3f", st.Precision)
			}
		}
	}
	if !seen {
		t.Error("extract/lists stage missing")
	}
	// More claims should not hurt fused quality.
	base := Run(DefaultConfig())
	if res.FusionMetrics.F1() < base.FusionMetrics.F1()-0.02 {
		t.Errorf("list pages degraded fusion: %.3f vs %.3f",
			res.FusionMetrics.F1(), base.FusionMetrics.F1())
	}
}

func TestPipelineTemporal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Temporal = true
	res := Run(cfg)
	if len(res.Timelines) == 0 {
		t.Fatal("no timelines fused")
	}
	seen := false
	for _, st := range res.Stats() {
		if st.Stage == "extract/temporal" {
			seen = true
			if st.Precision < 0.8 {
				t.Errorf("temporal year-accuracy = %.3f, want >= 0.8", st.Precision)
			}
		}
	}
	if !seen {
		t.Error("temporal stage missing")
	}
	// Timelines concern genuinely temporal attributes.
	for _, tl := range res.Timelines {
		e, ok := res.World.Entity(tl.Entity)
		if !ok {
			t.Errorf("timeline for unknown entity %q", tl.Entity)
			continue
		}
		if len(e.Timelines[tl.Attr]) == 0 {
			t.Errorf("timeline for non-temporal attribute %s/%s", tl.Entity, tl.Attr)
		}
	}
}
