package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"akb/internal/fusion"
	"akb/internal/resilience"
)

func TestNewDefaultsMatchDefaultConfig(t *testing.T) {
	p := New()
	want := DefaultConfig()
	got := p.Config()
	// Function fields are not comparable; both are nil here.
	if got.StageHook != nil || want.StageHook != nil {
		t.Fatal("unexpected stage hook on defaults")
	}
	got.StageHook, want.StageHook = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("New() config = %+v, want DefaultConfig", got)
	}
}

func TestOptionsApplyInOrder(t *testing.T) {
	base := DefaultConfig()
	base.Parallelism = 2
	p := New(
		WithConfig(base),
		WithSeed(9),
		WithParallelism(4), // later option wins over WithConfig's value
		WithGranularity(fusion.ByExtractor),
		WithAlignment(),
		WithEntityDiscovery(),
		WithListPages(),
		WithTemporal(),
		WithStageTimeout(3*time.Second),
		WithRetry(resilience.RetryPolicy{MaxAttempts: 2}),
	)
	cfg := p.Config()
	if cfg.Seed != 9 || cfg.World.Seed != 9 {
		t.Errorf("WithSeed: Seed=%d World.Seed=%d, want 9/9", cfg.Seed, cfg.World.Seed)
	}
	if cfg.Parallelism != 4 {
		t.Errorf("Parallelism = %d, want 4 (later option wins)", cfg.Parallelism)
	}
	if cfg.Granularity != fusion.ByExtractor {
		t.Errorf("Granularity = %v", cfg.Granularity)
	}
	if !cfg.Align || !cfg.DiscoverEntities || !cfg.ListPages || !cfg.Temporal {
		t.Errorf("feature switches not all on: %+v", cfg)
	}
	if cfg.StageTimeout != 3*time.Second {
		t.Errorf("StageTimeout = %v", cfg.StageTimeout)
	}
	if cfg.Retry.MaxAttempts != 2 {
		t.Errorf("Retry = %+v", cfg.Retry)
	}
}

func TestNewDoesNotShareConfigAcrossPipelines(t *testing.T) {
	a := New(WithSeed(1))
	b := New(WithSeed(2))
	if a.Config().Seed == b.Config().Seed {
		t.Fatal("pipelines share seed state")
	}
}

// TestPipelineRunMatchesDeprecatedRunContext pins the compatibility
// contract: the new constructor surface and the deprecated wrapper are the
// same engine, so identical configs yield identical results.
func TestPipelineRunMatchesDeprecatedRunContext(t *testing.T) {
	cfg := chaosConfig()
	viaNew, err := New(WithConfig(cfg)).Run(context.Background())
	if err != nil {
		t.Fatalf("Pipeline.Run: %v", err)
	}
	viaLegacy, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if viaNew.FusionMetrics != viaLegacy.FusionMetrics {
		t.Errorf("fusion metrics differ: %+v vs %+v", viaNew.FusionMetrics, viaLegacy.FusionMetrics)
	}
	if !reflect.DeepEqual(viaNew.Stats(), viaLegacy.Stats()) {
		t.Errorf("stage stats differ")
	}
	if !reflect.DeepEqual(viaNew.Fused().Decisions, viaLegacy.Fused().Decisions) {
		t.Errorf("fusion decisions differ")
	}
	if !reflect.DeepEqual(viaNew.Health(), viaLegacy.Health()) {
		t.Errorf("health reports differ")
	}
}
