package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"
)

// assertResultsEqual deep-compares the observable output of two pipeline
// runs: statements, fusion decisions, stage stats, health, growth table
// and the augmented store size.
func assertResultsEqual(t *testing.T, serial, parallel *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(parallel.Statements, serial.Statements) {
		t.Errorf("%s: statements differ (%d vs %d)", label, len(parallel.Statements), len(serial.Statements))
	}
	if !reflect.DeepEqual(parallel.Fused().Decisions, serial.Fused().Decisions) {
		t.Errorf("%s: fusion decisions differ", label)
	}
	if parallel.FusionMetrics != serial.FusionMetrics {
		t.Errorf("%s: fusion metrics differ: %+v vs %+v", label, parallel.FusionMetrics, serial.FusionMetrics)
	}
	if !reflect.DeepEqual(parallel.Stats(), serial.Stats()) {
		t.Errorf("%s: stage stats differ:\n par: %+v\n ser: %+v", label, parallel.Stats(), serial.Stats())
	}
	if !reflect.DeepEqual(parallel.Health(), serial.Health()) {
		t.Errorf("%s: health reports differ:\n par: %+v\n ser: %+v", label, parallel.Health(), serial.Health())
	}
	if !reflect.DeepEqual(parallel.Growth(), serial.Growth()) {
		t.Errorf("%s: growth tables differ", label)
	}
	if !reflect.DeepEqual(parallel.SeedSets, serial.SeedSets) {
		t.Errorf("%s: seed sets differ", label)
	}
	if parallel.Augmented.Len() != serial.Augmented.Len() {
		t.Errorf("%s: augmented KB differs (%d vs %d triples)", label,
			parallel.Augmented.Len(), serial.Augmented.Len())
	}
}

// TestPipelineParallelMatchesSerial is the determinism acceptance test:
// the default pipeline at Parallelism GOMAXPROCS produces a Result deeply
// equal to the strictly serial run. Run under -race in CI, it also proves
// the concurrent stages share no unsynchronised state.
func TestPipelineParallelMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	serial, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultConfig()
	pcfg.Parallelism = runtime.GOMAXPROCS(0)
	parallel, err := RunContext(context.Background(), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, serial, parallel, "default config")
}

// TestPipelineParallelMatchesSerialAllFeatures exercises the full DAG:
// list pages, temporal extraction, entity discovery and alignment all on,
// so every conditional stage and edge is scheduled.
func TestPipelineParallelMatchesSerialAllFeatures(t *testing.T) {
	base := chaosConfig()
	base.ListPages = true
	base.Temporal = true
	base.DiscoverEntities = true
	base.Align = true

	cfg := base
	cfg.Parallelism = 1
	serial, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := base
	pcfg.Parallelism = 4
	parallel, err := RunContext(context.Background(), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, serial, parallel, "all features")
	if parallel.Lists == nil || parallel.Discovered == nil || len(parallel.Timelines) == 0 {
		t.Error("conditional stage outputs missing from parallel run")
	}
	if !reflect.DeepEqual(parallel.Timelines, serial.Timelines) {
		t.Error("timelines differ between serial and parallel runs")
	}
	if !reflect.DeepEqual(parallel.AlignReport, serial.AlignReport) {
		t.Error("align reports differ between serial and parallel runs")
	}
}

// TestPipelineParallelChaosDeterministic checks fault injection composes
// with the scheduler: the same fault seed degrades the same stages at
// Parallelism 1 and 4, because fault decisions hash (seed, stage,
// attempt) and never depend on execution order.
func TestPipelineParallelChaosDeterministic(t *testing.T) {
	run := func(par int) *Result {
		cfg := chaosConfig()
		cfg.Parallelism = par
		cfg.Faults = allOptionalFaults(99, 1, false)
		res, err := RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(parallel.Health().Degraded(), serial.Health().Degraded()) {
		t.Errorf("degraded sets differ: %v vs %v", parallel.Health().Degraded(), serial.Health().Degraded())
	}
	assertResultsEqual(t, serial, parallel, "chaos")
}
