package core

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"akb/internal/fusion"
)

// assertResultsEqual deep-compares the observable output of two pipeline
// runs: statements, fusion decisions, stage stats, health, growth table
// and the augmented store size.
func assertResultsEqual(t *testing.T, serial, parallel *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(parallel.Statements, serial.Statements) {
		t.Errorf("%s: statements differ (%d vs %d)", label, len(parallel.Statements), len(serial.Statements))
	}
	if !reflect.DeepEqual(parallel.Fused().Decisions, serial.Fused().Decisions) {
		t.Errorf("%s: fusion decisions differ", label)
	}
	if parallel.FusionMetrics != serial.FusionMetrics {
		t.Errorf("%s: fusion metrics differ: %+v vs %+v", label, parallel.FusionMetrics, serial.FusionMetrics)
	}
	if !reflect.DeepEqual(parallel.Stats(), serial.Stats()) {
		t.Errorf("%s: stage stats differ:\n par: %+v\n ser: %+v", label, parallel.Stats(), serial.Stats())
	}
	if !reflect.DeepEqual(parallel.Health(), serial.Health()) {
		t.Errorf("%s: health reports differ:\n par: %+v\n ser: %+v", label, parallel.Health(), serial.Health())
	}
	if !reflect.DeepEqual(parallel.Growth(), serial.Growth()) {
		t.Errorf("%s: growth tables differ", label)
	}
	if !reflect.DeepEqual(parallel.SeedSets, serial.SeedSets) {
		t.Errorf("%s: seed sets differ", label)
	}
	if parallel.Augmented.Len() != serial.Augmented.Len() {
		t.Errorf("%s: augmented KB differs (%d vs %d triples)", label,
			parallel.Augmented.Len(), serial.Augmented.Len())
	}
}

// parallelisms are the pool sizes every determinism test sweeps; 1 is
// the serial baseline the others must match byte-for-byte.
var parallelisms = []int{1, 2, 4}

// TestPipelineParallelMatchesSerial is the determinism acceptance test:
// the default pipeline (which streams claims into fusion) produces a
// Result deeply equal to the strictly serial run at every swept
// parallelism, plus GOMAXPROCS. Run under -race in CI, it also proves the
// concurrent stages share no unsynchronised state.
func TestPipelineParallelMatchesSerial(t *testing.T) {
	run := func(par int) *Result {
		cfg := DefaultConfig()
		cfg.Parallelism = par
		res, err := RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return res
	}
	serial := run(1)
	pars := append([]int{}, parallelisms[1:]...)
	if p := runtime.GOMAXPROCS(0); p > 4 {
		pars = append(pars, p)
	}
	for _, par := range pars {
		assertResultsEqual(t, serial, run(par), fmt.Sprintf("default config par=%d", par))
	}
}

// TestPipelineParallelMatchesSerialAllFeatures exercises the full DAG:
// list pages, temporal extraction, entity discovery and alignment all on,
// so every conditional stage and edge is scheduled (and, because
// alignment and discovery rewrite the union, the non-streaming fusion
// path is the one under test).
func TestPipelineParallelMatchesSerialAllFeatures(t *testing.T) {
	run := func(par int) *Result {
		cfg := chaosConfig()
		cfg.ListPages = true
		cfg.Temporal = true
		cfg.DiscoverEntities = true
		cfg.Align = true
		cfg.Parallelism = par
		res, err := RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return res
	}
	serial := run(1)
	for _, par := range parallelisms[1:] {
		parallel := run(par)
		label := fmt.Sprintf("all features par=%d", par)
		assertResultsEqual(t, serial, parallel, label)
		if parallel.Lists == nil || parallel.Discovered == nil || len(parallel.Timelines) == 0 {
			t.Errorf("%s: conditional stage outputs missing", label)
		}
		if !reflect.DeepEqual(parallel.Timelines, serial.Timelines) {
			t.Errorf("%s: timelines differ", label)
		}
		if !reflect.DeepEqual(parallel.AlignReport, serial.AlignReport) {
			t.Errorf("%s: align reports differ", label)
		}
	}
}

// TestPipelineParallelChaosDeterministic checks fault injection composes
// with the scheduler: the same fault seed degrades the same stages at
// every parallelism, because fault decisions hash (seed, stage, attempt)
// and never depend on execution order. Degraded extractors exercise the
// claim stream's discard path.
func TestPipelineParallelChaosDeterministic(t *testing.T) {
	run := func(par int) *Result {
		cfg := chaosConfig()
		cfg.Parallelism = par
		cfg.Faults = allOptionalFaults(99, 1, false)
		res, err := RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return res
	}
	serial := run(1)
	if len(serial.Health().Degraded()) == 0 {
		t.Fatal("chaos plan degraded nothing; the discard path is untested")
	}
	for _, par := range parallelisms[1:] {
		parallel := run(par)
		label := fmt.Sprintf("chaos par=%d", par)
		if !reflect.DeepEqual(parallel.Health().Degraded(), serial.Health().Degraded()) {
			t.Errorf("%s: degraded sets differ: %v vs %v", label, parallel.Health().Degraded(), serial.Health().Degraded())
		}
		assertResultsEqual(t, serial, parallel, label)
	}
}

// TestStreamedFusionMatchesUnionRebuild pins the claim-stream contract at
// the pipeline level: fusing claims rebuilt from the completed statement
// union reproduces exactly the decisions the streaming fusion stage
// produced from incrementally folded batches.
func TestStreamedFusionMatchesUnionRebuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	claims := fusion.BuildClaims(res.Statements, cfg.Granularity)
	method := &fusion.Full{Forest: res.World.Hier, Workers: cfg.Parallelism}
	rebuilt := method.Fuse(claims)
	if !reflect.DeepEqual(rebuilt.Decisions, res.Fused().Decisions) {
		t.Error("decisions from rebuilt union claims differ from streamed fusion")
	}
	if !reflect.DeepEqual(rebuilt.SourceQuality, res.Fused().SourceQuality) {
		t.Error("source quality from rebuilt union claims differs from streamed fusion")
	}
}
